#!/bin/sh
# Tier-1 CI: build and test the workspace fully offline. The workspace is
# hermetic (path-only dependencies), so an empty cargo registry must be
# sufficient; CARGO_NET_OFFLINE enforces that on every run.
set -eu

export CARGO_NET_OFFLINE=true

cargo build --release --workspace
cargo test -q --workspace

# Lint when the toolchain ships clippy; skip silently otherwise.
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
fi

echo "ci: ok"
