#!/bin/sh
# Tier-1 CI: build and test the workspace fully offline. The workspace is
# hermetic (path-only dependencies), so an empty cargo registry must be
# sufficient; CARGO_NET_OFFLINE enforces that on every run.
set -eu

export CARGO_NET_OFFLINE=true

cargo build --release --workspace
cargo test -q --workspace

# Doctests: every crate-level example and API doctest must run (the
# workspace test run above covers unit/integration tests; `--doc` is a
# separate compile mode).
cargo test -q --doc --workspace

# Documentation gate: rustdoc must build clean with warnings denied
# (broken intra-doc links, missing docs on public items, bad code fences
# all fail the build).
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

# Lint when the toolchain ships clippy; skip silently otherwise.
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
fi

# Trace smoke test: a tiny traced loopback run must audit clean and
# write a Chrome trace that round-trips through the in-repo JSON parser
# (fbuf-trace exits nonzero on either failure).
FBUF_TRACE_MSGS=4 FBUF_TRACE_SIZE=8192 FBUF_BENCH_DIR=target/bench-reports \
    cargo run --release -q -p fbuf-bench --bin fbuf-trace
test -s target/bench-reports/TRACE_loopback.json

# Ledger smoke: a small fleet run must render the per-tenant table and
# conserve — summed tenant bytes/transfers/IPC calls must reproduce the
# fleet's whole-life counters exactly (fbuf-ledger exits nonzero
# otherwise). The artifact feeds the --check pass below.
FBUF_LEDGER_SHARDS=2 FBUF_LEDGER_CYCLES=2000 FBUF_BENCH_DIR=target/bench-reports \
    cargo run --release -q -p fbuf-bench --bin fbuf-ledger
test -s target/bench-reports/LEDGER_fleet.json

# Stress smoke test, single- and multi-shard: a small fixed op budget
# must hold the §3.2.2 steady-state invariants *per shard* (fbuf-stress
# exits nonzero otherwise), drive cross-shard payloads over the SPSC
# rings at 2 threads, and write a report with a well-formed scaling
# curve (validated by the --check pass after the fan-in smoke below).
#
# Scaling gates are host-adaptive: a 2-thread run on fewer than two real
# cores just timeslices, so the speedup/efficiency floors are only armed
# when the host can physically show a speedup. On multi-core hosts the
# floor is also recorded under host.scaling_floor, which --check
# re-enforces against the written artifact.
CORES=$(nproc 2>/dev/null || echo 1)
if [ "$CORES" -ge 2 ]; then
    export FBUF_STRESS_MIN_SPEEDUP="2:1.2"
    export FBUF_STRESS_EFF_FLOOR="2:0.60"
fi
FBUF_STRESS_OPS=20000 FBUF_STRESS_PATHS=4 FBUF_STRESS_THREADS=1,2 \
    FBUF_BENCH_DIR=target/bench-reports \
    cargo run --release -q -p fbuf-bench --bin fbuf-stress

# Queueing smoke: an offered-load sweep through the event-loop engine
# must conserve transfers at every point (completed + aborted == offered),
# show zero queueing delay in the drained burst-1 regime (enforced twice:
# the built-in invariant plus the explicit SLO gate below), build real
# delay under load, and refuse work explicitly once a burst exceeds the
# bounded inbox depth (fbuf-queue exits nonzero on any violation).
FBUF_QUEUE_TRANSFERS=128 FBUF_QUEUE_BURSTS=1,4,16 FBUF_QUEUE_DEPTH=8 \
    FBUF_QUEUE_SLO_P99_NS=0 \
    FBUF_BENCH_DIR=target/bench-reports \
    cargo run --release -q -p fbuf-bench --bin fbuf-queue

# Fan-in smoke: all three chunk-admission policies drive the same
# Zipf-skewed, bursty fan-in workload at equal total buffer memory
# through the sharded event-loop engine. fbuf-fanin exits nonzero
# unless every policy conserves arrivals (offered == completed +
# dropped + unresolved) and fb-dynamic strictly beats the static quota
# on both drops and p99 alloc wait — the policy layer's reason to
# exist, enforced at smoke scale on every CI run.
FBUF_FANIN_FLOWS=2000 FBUF_FANIN_PATHS=64 FBUF_FANIN_SHARDS=2 FBUF_FANIN_STEPS=120 \
    FBUF_BENCH_DIR=target/bench-reports \
    cargo run --release -q -p fbuf-bench --bin fbuf-fanin
test -s target/bench-reports/BENCH_fanin.json

# --check re-parses every BENCH_*.json written above (stress, queue,
# fanin) for host + repro + telemetry blocks — including the
# chunk-admission policy every repro header must now name — plus
# scaling-curve sanity, and every LEDGER_*.json for schema and
# conservation.
cargo run --release -q -p fbuf-bench --bin fbuf-stress -- --check target/bench-reports

# Lockstep-fuzzer smoke: a bounded fixed-seed campaign against the
# reference model must finish with zero divergences (long campaigns run
# the same binary with FBUF_FUZZ_CASES/FBUF_FUZZ_CMDS raised), and every
# pinned corpus case must replay clean — including the adversarial
# cases (adv = K in the corpus header), which replay with containment
# armed and the hostile personas overlaid.
FBUF_FUZZ_CASES=${FBUF_FUZZ_CASES:-16} FBUF_FUZZ_CMDS=${FBUF_FUZZ_CMDS:-150} \
    cargo run --release -q -p fbuf-bench --bin fbuf-fuzz
cargo run --release -q -p fbuf-bench --bin fbuf-fuzz -- --replay tests/corpus

# Adversarial lockstep smoke: the same differ with three hostile
# personas (hoarder, stalled receiver, token forger) overlaid on every
# case and the quota jail armed on both sides. Divergence-free means
# the oracle mirrors jail denials, forced revocations, and token
# rejections exactly.
FBUF_FUZZ_CASES=8 FBUF_FUZZ_CMDS=150 FBUF_FUZZ_ADV=3 \
    cargo run --release -q -p fbuf-bench --bin fbuf-fuzz

# Hostile-tenant containment smoke: N benign tenants vs the three
# personas through the engine at equal memory. fbuf-adversary exits
# nonzero unless benign goodput stays >= 95% of the adversary-free
# baseline, zero forged tokens dereference, the jail and both
# revocation paths (forced + timeout) all fire, and the per-tenant
# ledger conserves — revocations and rejected tokens included.
FBUF_ADV_TENANTS=4 FBUF_ADV_ROUNDS=32 FBUF_BENCH_DIR=target/bench-reports \
    cargo run --release -q -p fbuf-bench --bin fbuf-adversary
test -s target/bench-reports/BENCH_adversary.json

echo "ci: ok"
