//! Quickstart: the fbuf lifecycle in five minutes.
//!
//! Builds a simulated machine, declares an I/O data path across three
//! protection domains, and walks one buffer through the paper's common
//! case — allocate from the path cache, write, transfer, read, free —
//! showing that the steady state performs *zero* page-table updates and
//! costs ~3 µs per page.
//!
//! Run with: `cargo run --example quickstart`

use fbuf::{AllocMode, FbufSystem, SendMode};
use fbuf_sim::MachineConfig;

fn main() {
    // A calibrated DecStation 5000/200: 4 KB pages, 64-entry TLB, the
    // cost model from the paper's Table 1.
    let mut fbs = FbufSystem::new(MachineConfig::decstation_5000_200());

    // Three protection domains: a device driver lives in the kernel
    // (domain 0); create a network server and an application.
    let kernel = fbuf_vm::KERNEL_DOMAIN;
    let netserver = fbs.create_domain();
    let app = fbs.create_domain();

    // Declare the I/O data path incoming packets will travel. The paper:
    // "all data that originates from a particular communication endpoint
    // travels the same I/O data path."
    let path = fbs.create_path(vec![kernel, netserver, app]).unwrap();

    println!("== first packet: builds the buffer and its mappings ==");
    let stats0 = fbs.stats().snapshot();
    deliver_packet(&mut fbs, path, b"first packet payload");
    let d = fbs.stats().snapshot().delta(&stats0);
    println!(
        "   page-table updates: {}, frames allocated: {}, cache misses: {}",
        d.pte_updates, d.frames_allocated, d.fbuf_cache_misses
    );

    println!("== second packet: the cached fast path ==");
    let t0 = fbs.machine().clock().now();
    let stats1 = fbs.stats().snapshot();
    deliver_packet(&mut fbs, path, b"second packet payload");
    let d = fbs.stats().snapshot().delta(&stats1);
    let dt = fbs.machine().clock().now() - t0;
    println!(
        "   page-table updates: {}, frames allocated: {}, cache hits: {}",
        d.pte_updates, d.frames_allocated, d.fbuf_cache_hits
    );
    println!("   simulated time for the whole hop-hop-hop cycle: {dt}");
    assert_eq!(d.pte_updates, 0, "steady state does no mapping work");

    println!("== protection still holds ==");
    // The application only ever has read access.
    let id = fbs.alloc(kernel, AllocMode::Cached(path), 64).unwrap();
    fbs.send(id, kernel, app, SendMode::Volatile).unwrap();
    let denied = fbs.write_fbuf(app, id, 0, b"tamper");
    println!(
        "   app writing a received buffer: {:?}",
        denied.unwrap_err()
    );
    fbs.free(id, app).unwrap();
    fbs.free(id, kernel).unwrap();

    println!("done.");
}

/// One packet: the kernel driver allocates from the path's cache, fills
/// it, and the buffer visits the network server and the application.
fn deliver_packet(fbs: &mut FbufSystem, path: fbuf::PathId, payload: &[u8]) {
    let kernel = fbuf_vm::KERNEL_DOMAIN;
    let domains = fbs.path(path).unwrap().domains.clone();
    let id = fbs
        .alloc(kernel, AllocMode::Cached(path), payload.len() as u64)
        .unwrap();
    fbs.write_fbuf(kernel, id, 0, payload).unwrap();
    // Hand the buffer down the path; each hop gets read access.
    for pair in domains.windows(2) {
        fbs.send(id, pair[0], pair[1], SendMode::Volatile).unwrap();
    }
    // The application consumes the data...
    let got = fbs
        .read_fbuf(*domains.last().unwrap(), id, 0, payload.len() as u64)
        .unwrap();
    assert_eq!(got, payload);
    // ...and everyone releases; the buffer parks on the path's free list
    // with all its mappings intact.
    for dom in domains.iter().rev() {
        fbs.free(id, *dom).unwrap();
    }
}
