//! A continuous-media workload: streaming video frames end-to-end.
//!
//! The paper motivates fbufs with "I/O intensive applications ...
//! real-time video, digital image retrieval". This example streams
//! 256 KB video frames from a server host to a player application that
//! sits behind a user-level network server (the worst-case, three-domain
//! placement) and compares the paper's buffer regimes: how much CPU is
//! left on the receiving host for actually *decoding* video?
//!
//! Run with: `cargo run --release --example video_server`

use fbuf::SendMode;
use fbuf_net::{DomainSetup, EndToEnd, EndToEndConfig};
use fbuf_sim::MachineConfig;

const FRAME: u64 = 256 << 10;
const FRAMES: usize = 16;

fn machine() -> MachineConfig {
    let mut cfg = MachineConfig::decstation_5000_200();
    cfg.phys_mem = 24 << 20;
    cfg
}

fn main() {
    println!(
        "streaming {FRAMES} frames of {} KB through user-netserver-user\n",
        FRAME >> 10
    );
    println!(
        "{:<26} {:>12} {:>10} {:>12} {:>14}",
        "buffer regime", "throughput", "rx CPU", "frame rate", "CPU headroom"
    );
    for (label, cfg) in [
        (
            "cached / volatile",
            EndToEndConfig::fig5(DomainSetup::UserNetserver),
        ),
        (
            "cached / secured",
            EndToEndConfig {
                send_mode: SendMode::Secure,
                ..EndToEndConfig::fig5(DomainSetup::UserNetserver)
            },
        ),
        (
            "uncached / secured",
            EndToEndConfig::fig6(DomainSetup::UserNetserver),
        ),
    ] {
        let mut e = EndToEnd::new(machine(), cfg);
        let r = e.run(FRAME, FRAMES).expect("stream");
        let fps = 1e9 / (r.elapsed.as_ns() as f64 / FRAMES as f64);
        println!(
            "{:<26} {:>7.0} Mb/s {:>9.0}% {:>8.1} f/s {:>13.0}%",
            label,
            r.throughput_mbps,
            r.rx_cpu * 100.0,
            fps,
            (1.0 - r.rx_cpu) * 100.0
        );
    }

    println!("\nOnly the cached regimes sustain the full link rate; the uncached one");
    println!("saturates the receiving CPU and drops the frame rate — with nothing");
    println!("left over for a decoder.");

    // Verify a frame actually arrives intact through the full stack.
    let mut e = EndToEnd::new(machine(), EndToEndConfig::fig5(DomainSetup::UserNetserver));
    e.send_message(FRAME, 1, true).expect("verified frame");
    assert_eq!(e.received.len(), 1);
    assert_eq!(e.received[0].len() as u64, FRAME);
    println!("frame integrity verified: {} bytes, byte-for-byte.", FRAME);
}
