//! A large-data-set workload: reading typed records out of received
//! buffers without copying.
//!
//! The paper's §5.2 interface lets an application consume a potentially
//! non-contiguous buffer aggregate "at the granularity of an
//! application-defined data unit, such as a structure ... copying only
//! occurs when a data unit crosses a buffer fragment boundary." This
//! example receives a scientific data set as PDU-sized fragments and
//! iterates 48-byte sample records over it, counting how rarely a copy is
//! actually needed.
//!
//! Run with: `cargo run --release --example scientific_records`

use fbuf::{AllocMode, FbufSystem, SendMode};
use fbuf_sim::MachineConfig;
use fbuf_vm::KERNEL_DOMAIN;
use fbuf_xkernel::{Generator, Msg, MsgRefs};

/// One 48-byte sample record: a timestamp and five f64 channels.
const RECORD: u64 = 48;
/// Fragment (PDU) size the data set arrives in.
const FRAGMENT: u64 = 16 << 10;
/// Number of fragments (¾ MB total).
const FRAGMENTS: u64 = 48;

fn main() {
    let mut cfg = MachineConfig::decstation_5000_200();
    cfg.phys_mem = 24 << 20;
    let mut fbs = FbufSystem::new(cfg);
    let mut refs = MsgRefs::new();
    let analysis = fbs.create_domain();
    let path = fbs.create_path(vec![KERNEL_DOMAIN, analysis]).unwrap();

    // The "network" delivers the data set as PDU-sized fbufs, exactly as
    // a driver would: "an incoming ADU is typically stored as a sequence
    // of non-contiguous, PDU-sized buffers."
    let mut msg = Msg::empty();
    for frag in 0..FRAGMENTS {
        let id = fbs
            .alloc(KERNEL_DOMAIN, AllocMode::Cached(path), FRAGMENT)
            .unwrap();
        // Synthesize sample data (the driver's DMA would do this).
        let bytes: Vec<u8> = (0..FRAGMENT)
            .map(|i| ((frag * FRAGMENT + i) % 251) as u8)
            .collect();
        fbs.write_fbuf(KERNEL_DOMAIN, id, 0, &bytes).unwrap();
        fbs.send(id, KERNEL_DOMAIN, analysis, SendMode::Volatile)
            .unwrap();
        msg = msg.concat(&Msg::from_fbuf(id, 0, FRAGMENT));
    }
    refs.adopt(KERNEL_DOMAIN, &msg);
    refs.adopt(analysis, &msg);
    let total = msg.len();
    println!(
        "received {} KB as {} fragments of {} KB",
        total >> 10,
        msg.fragments(),
        FRAGMENT >> 10
    );

    // Iterate records with the generator interface.
    let mut generator = Generator::new(msg.clone(), RECORD);
    let mut records: u64 = 0;
    let mut copied: u64 = 0;
    let mut checksum: u64 = 0;
    while let Some(unit) = generator.next_unit(&mut fbs, analysis).unwrap() {
        if !unit.is_zero_copy() {
            copied += 1;
        }
        let bytes = unit.bytes(&mut fbs, analysis).unwrap();
        checksum = checksum.wrapping_add(bytes.iter().map(|&b| b as u64).sum::<u64>());
        records += 1;
    }
    println!(
        "iterated {records} records of {RECORD} bytes: {copied} required a copy \
         ({:.3}% — only records straddling a fragment boundary)",
        100.0 * copied as f64 / records as f64
    );
    println!("analysis checksum: {checksum:#x}");

    // Sanity: a 48-byte record straddles a 16 KB boundary about every
    // 341 records; everything else is read in place.
    let boundaries = FRAGMENTS - 1;
    assert!(
        copied <= boundaries,
        "at most one copy per fragment boundary"
    );
    assert_eq!(records, total.div_ceil(RECORD));
    assert_eq!(fbs.stats().generator_copies(), copied);

    // Release everything; cached buffers park for the next data set.
    refs.release(&mut fbs, analysis, &msg).unwrap();
    refs.release(&mut fbs, KERNEL_DOMAIN, &msg).unwrap();
    println!(
        "released: {} buffers parked on the path free list for reuse",
        fbs.path(path).unwrap().parked()
    );
}
