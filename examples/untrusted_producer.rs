//! Security walkthrough: everything a malicious or buggy application can
//! try against the fbuf facility, and why each attempt fails.
//!
//! The paper (§2.1.3, §3.2.4) identifies the attack surface of a
//! zero-copy transfer facility: asynchronous mutation of volatile
//! buffers, writes by receivers, forged aggregate DAGs with wild pointers
//! or cycles, and receivers that never deallocate. This example exercises
//! all of them against the real protection machinery.
//!
//! Run with: `cargo run --example untrusted_producer`

use fbuf::{AllocMode, FbufError, FbufSystem, SendMode};
use fbuf_sim::MachineConfig;
use fbuf_vm::Fault;
use fbuf_xkernel::integrated::{self, DagBuilder, TraverseLimits};

fn main() {
    let mut fbs = FbufSystem::new(MachineConfig::decstation_5000_200());
    integrated::install_null_template(&mut fbs);
    let evil_app = fbs.create_domain();
    let server = fbs.create_domain();

    println!("== 1. volatile buffers may change under the receiver ==");
    let id = fbs.alloc(evil_app, AllocMode::Uncached, 64).unwrap();
    fbs.write_fbuf(evil_app, id, 0, b"benign request").unwrap();
    fbs.send(id, evil_app, server, SendMode::Volatile).unwrap();
    fbs.write_fbuf(evil_app, id, 0, b"MUTATED after!").unwrap();
    let seen = fbs.read_fbuf(server, id, 0, 14).unwrap();
    println!("   server sees: {:?}", String::from_utf8_lossy(&seen));
    println!("   -> a receiver that must trust the bytes secures the buffer first:");
    fbs.secure(id, server).unwrap();
    let blocked = fbs.write_fbuf(evil_app, id, 0, b"again?");
    println!(
        "   originator write after secure(): {:?}",
        blocked.unwrap_err()
    );
    fbs.free(id, server).unwrap();
    fbs.free(id, evil_app).unwrap();

    println!("\n== 2. receivers can never write ==");
    let id = fbs.alloc(server, AllocMode::Uncached, 64).unwrap();
    fbs.send(id, server, evil_app, SendMode::Volatile).unwrap();
    match fbs.write_fbuf(evil_app, id, 0, b"overwrite") {
        Err(FbufError::Vm(Fault::AccessViolation { .. })) => {
            println!("   receiver write faults, as required")
        }
        other => panic!("expected an access violation, got {other:?}"),
    }
    fbs.free(id, evil_app).unwrap();
    fbs.free(id, server).unwrap();

    println!("\n== 3. forged DAGs: wild pointers ==");
    let mut builder = DagBuilder::new(&mut fbs, evil_app, AllocMode::Uncached, 8).unwrap();
    let wild = builder
        .raw(&mut fbs, [2 /* concat */, 0xdead_beef, 0x1000])
        .unwrap();
    fbs.send(builder.node_fbuf(), evil_app, server, SendMode::Volatile)
        .unwrap();
    let out = integrated::traverse(&mut fbs, server, wild, TraverseLimits::default()).unwrap();
    println!(
        "   traversal survived: {} range-check rejections, {} bytes of data",
        out.range_failures,
        out.len()
    );

    println!("\n== 4. forged DAGs: cycles ==");
    let mut builder = DagBuilder::new(&mut fbs, evil_app, AllocMode::Uncached, 8).unwrap();
    let base = fbs.fbuf(builder.node_fbuf()).unwrap().va;
    let n1 = builder.raw(&mut fbs, [2, base, base]).unwrap(); // self-referential
    fbs.send(builder.node_fbuf(), evil_app, server, SendMode::Volatile)
        .unwrap();
    let out = integrated::traverse(&mut fbs, server, n1, TraverseLimits::default()).unwrap();
    println!(
        "   traversal terminated: cycle detected = {}, nodes visited = {}",
        out.cycle_detected, out.nodes
    );

    println!("\n== 5. pointers into unmapped fbuf-region memory ==");
    let region = fbs.machine().config().fbuf_region_base;
    let out = integrated::traverse(
        &mut fbs,
        server,
        region + (40 << 20),
        TraverseLimits::default(),
    )
    .unwrap();
    println!(
        "   read completed against a synthetic empty leaf: {} extents, {} null-page reads so far",
        out.extents.len(),
        fbs.stats().wild_reads_nullified()
    );

    println!("\n== 6. a hoarder cannot exhaust the fbuf region ==");
    let mut hoarded = Vec::new();
    let quota_hit = loop {
        match fbs.alloc(evil_app, AllocMode::Uncached, 16 << 10) {
            Ok(id) => hoarded.push(id),
            Err(FbufError::QuotaExceeded { .. }) => break true,
            Err(e) => panic!("unexpected error: {e}"),
        }
        if hoarded.len() > 100_000 {
            break false;
        }
    };
    println!(
        "   allocator cut off after {} buffers (quota enforced: {})",
        hoarded.len(),
        quota_hit
    );
    assert!(quota_hit);
    // The server can still allocate: the quota is per allocator.
    fbs.alloc(server, AllocMode::Uncached, 16 << 10).unwrap();
    println!("   other domains unaffected.");

    println!("\n== 7. termination reclaims everything ==");
    let frames_low = fbs.machine().free_frames();
    fbs.terminate_domain(evil_app).unwrap();
    println!(
        "   free frames: {} -> {} after terminating the hoarder",
        frames_low,
        fbs.machine().free_frames()
    );
    assert!(fbs.machine().free_frames() > frames_low);
    println!("\nall defenses held.");
}
