//! Digital image retrieval — the paper's second motivating application —
//! built from the extension layers: the §5.2 high-bandwidth I/O interface,
//! a presentation-layer cipher (immutability discipline), and a reliable
//! transport retransmitting from retained fbufs over a lossy wire.
//!
//! Run with: `cargo run --release --example image_retrieval`

use fbufs::fbuf::{AllocMode, FbufSystem};
use fbufs::net::reliable::{ReliableChannel, ReliableConfig};
use fbufs::net::transform::{transform_whole, xor_cipher};
use fbufs::sim::MachineConfig;
use fbufs::xkernel::{HbioEndpoint, MsgRefs};

const IMAGE: u64 = 300_000; // one ~300 KB image
const KEY: u8 = 0x5A;

fn main() {
    let mut cfg = MachineConfig::decstation_5000_200();
    cfg.phys_mem = 24 << 20;
    // Whole images live in single buffers; size the chunks accordingly.
    cfg.chunk_size = 1 << 20;
    let mut fbs = FbufSystem::new(cfg);
    let mut refs = MsgRefs::new();
    let server = fbs.create_domain();
    let client = fbs.create_domain();

    // The image "on disk": deterministic pixels.
    let pixels: Vec<u8> = (0..IMAGE).map(|i| (i.wrapping_mul(7) >> 3) as u8).collect();

    // --- server side -----------------------------------------------------
    // The server's high-bandwidth endpoint allocates the image buffer in
    // place (no staging copy) and fills it from "disk".
    let out_path = fbs.create_path(vec![server, client]).unwrap();
    let mut server_ep = HbioEndpoint::new(server, Some(out_path));
    let buf = server_ep.alloc_buffer(&mut fbs, IMAGE).unwrap();
    server_ep.fill(&mut fbs, &buf, 0, &pixels).unwrap();
    let image_msg = server_ep.write(&mut refs, buf);
    println!(
        "server: image staged as a {}-fragment aggregate, {} KB",
        image_msg.fragments(),
        image_msg.len() >> 10
    );

    // Presentation layer: encrypt into a fresh buffer (fbufs are
    // immutable; the plaintext is untouched).
    let cipher = xor_cipher(KEY);
    let encrypted = transform_whole(
        &mut fbs,
        &mut refs,
        server,
        &image_msg,
        AllocMode::Uncached,
        &cipher,
    )
    .unwrap();
    println!("server: encrypted into a new buffer (plaintext immutable)");

    // --- the wire ---------------------------------------------------------
    // A reliable channel over a wire that drops every 5th transmission.
    let mut channel = ReliableChannel::new(
        &mut fbs,
        server,
        client,
        ReliableConfig {
            drop_every: 5,
            segment: 16 << 10,
            ..ReliableConfig::default()
        },
    )
    .unwrap();
    let ciphertext = encrypted.gather(&mut fbs, server).unwrap();
    channel.send(&mut fbs, &mut refs, &ciphertext).unwrap();
    println!(
        "wire:   {} segments sent, {} dropped, {} retransmitted from retained fbufs",
        channel.stats.transmissions, channel.stats.drops, channel.stats.retransmissions
    );

    // --- client side -------------------------------------------------------
    // Decrypt and verify.
    let received = channel.received().to_vec();
    let decrypted: Vec<u8> = received
        .iter()
        .enumerate()
        .map(|(i, &b)| cipher(b, i as u64))
        .collect();
    assert_eq!(decrypted, pixels, "image corrupted in transit");
    println!(
        "client: image decrypted and verified, {} KB intact",
        IMAGE >> 10
    );

    // A client-side endpoint consumes the image as raster rows via the
    // record generator (zero-copy within fragments).
    let mut client_ep = HbioEndpoint::new(client, None);
    let id = fbs.alloc(client, AllocMode::Uncached, IMAGE).unwrap();
    fbs.write_fbuf(client, id, 0, &decrypted).unwrap();
    let msg = fbufs::xkernel::Msg::from_fbuf(id, 0, IMAGE);
    refs.adopt(client, &msg);
    client_ep.deliver(msg.clone());
    let mut rows = client_ep.read_records(1500).unwrap(); // one scanline
    let mut n = 0;
    let mut zero_copy = 0;
    while let Some(u) = rows.next_unit(&mut fbs, client).unwrap() {
        if u.is_zero_copy() {
            zero_copy += 1;
        }
        n += 1;
    }
    println!(
        "client: rendered {n} scanlines, {zero_copy} read in place ({:.1}% zero-copy)",
        100.0 * zero_copy as f64 / n as f64
    );

    // Cleanup.
    refs.release(&mut fbs, client, &msg).unwrap();
    refs.release(&mut fbs, server, &encrypted).unwrap();
    refs.release(&mut fbs, server, &image_msg).unwrap();
    assert_eq!(refs.outstanding(), 0);
    println!("done: no buffer leaks.");
}
