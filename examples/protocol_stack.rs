//! A full protocol-stack tour: UDP/IP over the simulated Osiris link,
//! with the loopback variant alongside.
//!
//! Sends verified messages through every domain placement the paper
//! evaluates and prints a cost breakdown showing *where* simulated time
//! goes (VM, TLB, IPC, protocol, driver) — the observability the paper's
//! argument is built on.
//!
//! Run with: `cargo run --release --example protocol_stack`

use fbuf_net::{DomainSetup, EndToEnd, EndToEndConfig, LoopbackConfig, LoopbackStack};
use fbuf_sim::MachineConfig;

fn machine() -> MachineConfig {
    let mut cfg = MachineConfig::decstation_5000_200();
    cfg.phys_mem = 24 << 20;
    cfg
}

fn main() {
    println!("== end-to-end over the Osiris null modem (verified payloads) ==");
    for setup in [
        DomainSetup::KernelOnly,
        DomainSetup::User,
        DomainSetup::UserNetserver,
    ] {
        let mut e = EndToEnd::new(machine(), EndToEndConfig::fig5(setup));
        // One verified message proves integrity...
        e.send_message(200_000, 1, true).expect("verified send");
        assert_eq!(e.received[0].len(), 200_000);
        // ...then a short run measures the configuration.
        let r = e.run(256 << 10, 8).expect("run");
        println!(
            "{:>22}: {:>6.0} Mb/s, rx CPU {:>3.0}%, verified 200000 bytes",
            format!("{setup:?}"),
            r.throughput_mbps,
            r.rx_cpu * 100.0
        );
    }

    println!("\n== where does receive-side time go? (user-netserver-user, 256 KB) ==");
    let mut e = EndToEnd::new(machine(), EndToEndConfig::fig5(DomainSetup::UserNetserver));
    e.run(256 << 10, 8).expect("run");
    let clock = e.rx.fbs.machine().clock();
    let busy = clock.busy();
    for (cat, spent) in clock.breakdown() {
        if spent.as_ns() > 0 {
            println!(
                "{:>10}: {:>10}  ({:>4.1}% of busy time)",
                cat.label(),
                spent,
                100.0 * spent.as_ns() as f64 / busy.as_ns() as f64
            );
        }
    }

    println!("\n== the same stack over an infinitely fast network (loopback) ==");
    let mut stack = LoopbackStack::new(machine(), LoopbackConfig::paper(true, true));
    stack
        .send_message(64 << 10, true)
        .expect("verified loopback");
    let mbps = stack.throughput(64 << 10, 4).expect("loopback throughput");
    println!("3-domain cached loopback at 64 KB: {mbps:.0} Mb/s (no I/O bound)");
}
