//! The paper's prose claims, asserted end-to-end through the public API.
//! Each test cites the sentence it pins down.

use fbufs::fbuf::{AllocMode, FbufSystem, SendMode};
use fbufs::net::{DomainSetup, EndToEnd, EndToEndConfig};
use fbufs::sim::MachineConfig;

fn machine() -> MachineConfig {
    let mut cfg = MachineConfig::decstation_5000_200();
    cfg.phys_mem = 24 << 20;
    cfg
}

#[test]
fn no_kernel_involvement_in_the_common_case() {
    // "In the common case, no kernel involvement is required during
    // cross-domain data transfer." (§3.2.5) — zero VM-category time is
    // charged by a steady-state cached/volatile transfer.
    let mut fbs = FbufSystem::new(machine());
    fbs.charge_clearing = false;
    let a = fbs.create_domain();
    let b = fbs.create_domain();
    let path = fbs.create_path(vec![a, b]).unwrap();
    let cycle = |fbs: &mut FbufSystem| {
        let id = fbs.alloc(a, AllocMode::Cached(path), 8192).unwrap();
        fbs.send(id, a, b, SendMode::Volatile).unwrap();
        fbs.free(id, b).unwrap();
        fbs.free(id, a).unwrap();
    };
    cycle(&mut fbs);
    let vm_before = fbs.machine().clock().spent_on(fbufs::sim::CostCategory::Vm);
    for _ in 0..5 {
        cycle(&mut fbs);
    }
    let vm_after = fbs.machine().clock().spent_on(fbufs::sim::CostCategory::Vm);
    assert_eq!(vm_before, vm_after, "no VM work in the steady state");
}

#[test]
fn two_page_table_updates_regardless_of_transfer_count() {
    // "It reduces the number of page table updates required to two,
    // irrespective of the number of transfers." (§3.2.2)
    for receivers in 1..4u32 {
        let mut fbs = FbufSystem::new(machine());
        fbs.charge_clearing = false;
        let origin = fbs.create_domain();
        let doms: Vec<_> = (0..receivers).map(|_| fbs.create_domain()).collect();
        let mut all = vec![origin];
        all.extend(&doms);
        let path = fbs.create_path(all.clone()).unwrap();
        let cycle = |fbs: &mut FbufSystem| {
            let id = fbs.alloc(origin, AllocMode::Cached(path), 4096).unwrap();
            let mut prev = origin;
            for &d in &doms {
                fbs.send(id, prev, d, SendMode::Secure).unwrap();
                prev = d;
            }
            for d in all.iter().rev() {
                fbs.free(id, *d).unwrap();
            }
        };
        cycle(&mut fbs); // builds mappings
        let ptes = fbs.stats().pte_updates();
        cycle(&mut fbs);
        assert_eq!(
            fbs.stats().pte_updates() - ptes,
            2,
            "{receivers} receivers: protect at send + unprotect at dealloc"
        );
    }
}

#[test]
fn end_to_end_plateau_is_io_bound_at_55_percent_of_link() {
    // "The maximal throughput achieved is 285 Mb/s, or 55% of the net
    // bandwidth supported by the network link. This limitation is due to
    // the capacity of the DecStation's TurboChannel bus, not software
    // overheads." (§4)
    let mut e = EndToEnd::new(machine(), EndToEndConfig::fig5(DomainSetup::KernelOnly));
    let r = e.run(1 << 20, 4).unwrap();
    let link_net = 516.0;
    let fraction = r.throughput_mbps / link_net;
    assert!((fraction - 0.55).abs() < 0.04, "fraction {fraction:.3}");
    // Not software-bound: the receiving CPU has idle time.
    assert!(r.rx_cpu < 0.95);
}

#[test]
fn uncached_degradation_is_about_12_percent_user_user() {
    // "The maximal user-user throughput is 252 Mb/s. Thus, the use of
    // uncached fbufs leads to a throughput degradation of 12% when one
    // boundary crossing occurs on each host." (§4, Figure 6; the exact
    // digits are reconstructed — see DESIGN.md §6.)
    let mut cached = EndToEnd::new(machine(), EndToEndConfig::fig5(DomainSetup::User));
    let mut uncached = EndToEnd::new(machine(), EndToEndConfig::fig6(DomainSetup::User));
    let c = cached.run(1 << 20, 4).unwrap().throughput_mbps;
    let u = uncached.run(1 << 20, 4).unwrap().throughput_mbps;
    assert!((u - 252.0).abs() < 15.0, "uncached user-user {u:.0} Mb/s");
    let degradation = 1.0 - u / c;
    assert!(
        (degradation - 0.12).abs() < 0.05,
        "degradation {degradation:.2}"
    );
}

#[test]
fn netserver_case_only_marginally_lower_when_uncached() {
    // "The throughput achieved in the user-netserver-user case is only
    // marginally lower. The reason is that UDP ... does not access the
    // message's body." (§4)
    let mut uu = EndToEnd::new(machine(), EndToEndConfig::fig6(DomainSetup::User));
    let mut unu = EndToEnd::new(machine(), EndToEndConfig::fig6(DomainSetup::UserNetserver));
    let a = uu.run(1 << 20, 4).unwrap().throughput_mbps;
    let b = unu.run(1 << 20, 4).unwrap().throughput_mbps;
    assert!(
        b > 0.93 * a,
        "user-user {a:.0} vs user-netserver-user {b:.0}"
    );
    // And mechanically: the netserver never received any mappings — no
    // page-table updates were performed in its address space for message
    // bodies (we can't observe per-domain PTEs directly here, but the
    // closeness of the two curves is the paper's own evidence).
}

#[test]
fn cpu_load_gap_between_cached_and_uncached() {
    // "The CPU load on the receiving host during the reception of 1 MB
    // packets is 88% when cached fbufs are used, while the CPU is
    // saturated when uncached fbufs are used." (§4)
    let mut cached = EndToEnd::new(machine(), EndToEndConfig::fig5(DomainSetup::User));
    let mut uncached = EndToEnd::new(machine(), EndToEndConfig::fig6(DomainSetup::User));
    let c = cached.run(1 << 20, 4).unwrap();
    let u = uncached.run(1 << 20, 4).unwrap();
    assert!(
        (c.rx_cpu - 0.88).abs() < 0.06,
        "cached load {:.2}",
        c.rx_cpu
    );
    assert!(u.rx_cpu > 0.99, "uncached load {:.2}", u.rx_cpu);
}

#[test]
fn medium_messages_pay_more_for_the_second_crossing() {
    // "For medium sized messages, the throughput penalty for a second
    // domain crossing is much larger than the penalty for the first
    // crossing." (§4)
    let size = 16 << 10;
    let mut t = [0.0f64; 3];
    for (i, setup) in [
        DomainSetup::KernelOnly,
        DomainSetup::User,
        DomainSetup::UserNetserver,
    ]
    .iter()
    .enumerate()
    {
        let mut e = EndToEnd::new(machine(), EndToEndConfig::fig5(*setup));
        t[i] = e.run(size, 6).unwrap().throughput_mbps;
    }
    let first = t[0] - t[1];
    let second = t[1] - t[2];
    assert!(
        second > 2.0 * first,
        "first penalty {first:.1}, second {second:.1} Mb/s"
    );
}
