//! Integration pins for the observability stack (DESIGN.md §13):
//! merged fleet traces, the Chrome export schema, causal span
//! propagation across shard rings, and per-tenant ledger conservation.

use fbufs::fbuf::shard::{fleet_ledger, fleet_trace, run_fleet, FleetConfig};
use fbufs::fbuf::{AllocMode, FbufSystem, SendMode};
use fbufs::sim::spans::reconstruct;
use fbufs::sim::{EventKind, Json, MachineConfig, StatsSnapshot};

fn fleet_machine() -> MachineConfig {
    let mut cfg = MachineConfig::decstation_5000_200();
    cfg.phys_mem = 32 << 20;
    cfg.chunk_size = 1 << 20;
    cfg
}

fn traced_fleet(shards: usize, cycles: u64) -> FleetConfig {
    FleetConfig {
        trace: true,
        metrics: true,
        cross_every: 2,
        ..FleetConfig::new(shards, fleet_machine(), cycles)
    }
}

#[test]
fn merged_fleet_trace_is_lossless_and_time_ordered() {
    let reports = run_fleet(&traced_fleet(2, 400));
    let merged = fleet_trace(&reports);

    // Lossless: every shard event survives the merge (ring overflow
    // would show up in `events_dropped`, not as silent loss here).
    let per_shard: usize = reports.iter().map(|r| r.events.len()).sum();
    assert!(per_shard > 0, "traced fleet produced events");
    assert_eq!(merged.len(), per_shard, "merge drops nothing");

    // Time-ordered and re-sequenced 0..n.
    assert!(
        merged.windows(2).all(|w| w[0].at <= w[1].at),
        "merged events sorted by simulated time"
    );
    for (i, e) in merged.iter().enumerate() {
        assert_eq!(e.seq, i as u64, "merge re-sequences densely");
    }

    // Domain offsetting: shard 1's events must not collide with shard
    // 0's domain ids (shard 0 created `reports[0].domains` domains).
    let base = reports[0].domains;
    assert!(
        merged.iter().any(|e| e.dom >= base),
        "second shard's events landed past the first shard's domain base"
    );
}

#[test]
fn chrome_trace_export_has_the_documented_schema() {
    let mut s = FbufSystem::new(fleet_machine());
    let tracer = s.machine().tracer();
    tracer.set_enabled(true);
    let a = s.create_domain();
    let b = s.create_domain();
    let path = s.create_path(vec![a, b]).unwrap();
    for _ in 0..4 {
        let id = s.alloc(a, AllocMode::Cached(path), 4096).unwrap();
        s.hop(a, b);
        s.send(id, a, b, SendMode::Volatile).unwrap();
        s.free(id, b).unwrap();
        s.free(id, a).unwrap();
    }

    let doc = tracer.chrome_trace();
    let rendered = doc.render();
    let parsed = Json::parse(&rendered).expect("chrome trace renders valid JSON");

    assert!(parsed.get("displayTimeUnit").is_some());
    assert_eq!(
        parsed.get("dropped_events").and_then(Json::as_f64),
        Some(0.0),
        "an un-wrapped ring reports zero drops"
    );
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    for e in events {
        assert!(e.get("name").and_then(Json::as_str).is_some());
        assert!(e.get("ph").and_then(Json::as_str).is_some());
        assert!(e.get("pid").and_then(Json::as_f64).is_some());
        // Span events use their *start* instant as ts, so the stream is
        // not globally sorted — but no event starts before time zero.
        let ts = e.get("ts").and_then(Json::as_f64).expect("ts present");
        assert!(ts >= 0.0);
    }
}

#[test]
fn cross_shard_transfers_reconstruct_as_connected_span_trees() {
    let reports = run_fleet(&traced_fleet(2, 400));
    let merged = fleet_trace(&reports);
    let crossings = merged
        .iter()
        .filter(|e| e.kind == EventKind::RingCross)
        .count();
    assert!(crossings > 0, "cross traffic actually crossed rings");

    let trees = reconstruct(&merged);
    assert!(!trees.is_empty());
    let mut crossing_trees = 0;
    for tree in &trees {
        let has_crossing = tree
            .nodes
            .iter()
            .flat_map(|n| n.events.iter())
            .any(|e| e.kind == EventKind::RingCross);
        if !has_crossing {
            continue;
        }
        crossing_trees += 1;
        // The sender's token span and the receiver's child span must have
        // folded into ONE tree — a disconnected forest means the span id
        // broke somewhere across the SPSC ring.
        assert!(
            tree.is_connected(),
            "span tree {:#x} reconstructs connected",
            tree.root
        );
        assert!(
            tree.nodes.len() >= 2,
            "a ring crossing spans both sides (tree {:#x})",
            tree.root
        );
    }
    assert!(
        crossing_trees > 0,
        "at least one reconstructed tree covers a ring crossing"
    );
}

#[test]
fn ledger_conserves_on_a_single_system_workload() {
    // Mixed cached/uncached traffic across two tenants; the always-on
    // ledger's totals must reproduce the system's own counters exactly.
    let mut s = FbufSystem::new(fleet_machine());
    let a = s.create_domain();
    let b = s.create_domain();
    let path = s.create_path(vec![a, b]).unwrap();
    for round in 0..6u64 {
        let mode = if round % 2 == 0 {
            AllocMode::Cached(path)
        } else {
            AllocMode::Uncached
        };
        let id = s.alloc(a, mode, 8192).unwrap();
        s.write_fbuf(a, id, 0, &[round as u8]).unwrap();
        s.hop(a, b);
        s.send(id, a, b, SendMode::Volatile).unwrap();
        s.free(id, b).unwrap();
        s.free(id, a).unwrap();
    }

    let ledger = s.ledger_snapshot();
    let violations = ledger.conserves(&s.stats().snapshot());
    assert!(violations.is_empty(), "conservation violated: {violations:?}");

    let totals = ledger.totals();
    assert!(totals.bytes > 0, "tenants were charged for bytes");
    assert!(totals.transfers > 0);
    assert!(totals.hold_ns > 0, "freed buffers accumulated hold time");
    // Attribution went to the tenants that did the work.
    assert!(ledger.domains[a.0 as usize].transfers > 0);
    assert!(ledger.paths[path.0 as usize].bytes > 0);
}

#[test]
fn fleet_ledger_conserves_against_whole_life_counters() {
    let reports = run_fleet(&traced_fleet(2, 400));
    let ledger = fleet_ledger(&reports);
    let life = StatsSnapshot::merge_all(reports.iter().map(|r| &r.life));
    let violations = ledger.conserves(&life);
    assert!(violations.is_empty(), "fleet conservation violated: {violations:?}");
    assert!(ledger.totals().bytes > 0);
    // Telemetry rode along: the metrics flag filled per-shard series.
    assert!(reports.iter().all(|r| !r.telemetry.is_empty()));
}
