//! Pins the paper's operation-count claims *exactly*, using counter
//! deltas over a warmed cached loopback run.
//!
//! §3.2.2: "only two page table updates are required, irrespective of
//! the number of transfers" — and both of those happen while the path
//! warms up. In steady state a cached fbuf shuttles between the free
//! list and the path with **zero** page table updates and **zero**
//! security page clears; every allocation is a cache hit.

use fbufs::fbuf::shard::{run_fleet, FleetConfig, NOTICE_BATCH_MAX};
use fbufs::fbuf::{AllocMode, FbufSystem, SendMode, TransferMode};
use fbufs::net::{DomainSetup, EndToEnd, EndToEndConfig, LoopbackConfig, LoopbackStack};
use fbufs::sim::{audit_tracer, EventKind, MachineConfig};
use fbufs::vm::{Machine, Prot};
use fbufs::xkernel::integrated::{self, DagBuilder, TraverseLimits};
use fbufs::xkernel::proxy::deliver_integrated;
use fbufs::xkernel::{deliver, Msg, MsgRefs};

fn machine() -> MachineConfig {
    let mut cfg = MachineConfig::decstation_5000_200();
    cfg.phys_mem = 24 << 20;
    cfg
}

#[test]
fn cached_steady_state_counter_deltas_are_exact() {
    let msgs = 8u64;
    let size = 16 << 10; // 4 PDU-sized fbufs per message
    let frags = size / 4096;

    let mut s = LoopbackStack::new(machine(), LoopbackConfig::paper(true, true));
    // Warm-up populates the per-path free list (the only point where
    // mappings are installed and pages cleared).
    for _ in 0..2 {
        s.send_message(size, false).unwrap();
    }
    let mark = s.fbs.stats().snapshot();
    for _ in 0..msgs {
        s.send_message(size, false).unwrap();
    }
    let d = s.fbs.stats().snapshot().delta(&mark);

    // The §3.2.2 claim, pinned exactly: zero VM work in steady state.
    assert_eq!(d.pte_updates, 0, "cached path re-maps nothing");
    assert_eq!(d.pages_cleared, 0, "cached path re-clears nothing");
    assert_eq!(d.tlb_flushes, 0);
    assert_eq!(d.frames_allocated, 0);

    // Every allocation is served from the path's free list.
    assert_eq!(d.fbuf_cache_hits, msgs * frags);
    assert_eq!(d.fbuf_cache_misses, 0);

    // Each fragment makes two body-mapped crossings per round trip
    // (originator->netserver down, netserver->receiver up).
    assert_eq!(d.fbuf_transfers, msgs * frags * 2);

    // Two RPCs per message; dealloc notices ride the replies.
    assert_eq!(d.ipc_messages, msgs * 2);
    assert_eq!(d.explicit_notice_messages, 0);
}

#[test]
fn uncached_steady_state_pays_vm_work_every_message() {
    // The contrast case: without caching, each message's buffers are
    // built and retired, so PTE updates and clears recur per message.
    let mut s = LoopbackStack::new(machine(), LoopbackConfig::paper(true, false));
    for _ in 0..2 {
        s.send_message(16 << 10, false).unwrap();
    }
    let mark = s.fbs.stats().snapshot();
    s.send_message(16 << 10, false).unwrap();
    let d = s.fbs.stats().snapshot().delta(&mark);
    assert!(d.pte_updates > 0, "uncached transfers update page tables");
    assert!(d.pages_cleared > 0, "uncached allocations clear pages");
    assert_eq!(d.fbuf_cache_hits, 0);
}

#[test]
fn traced_cached_run_audits_clean_with_expected_events() {
    let mut s = LoopbackStack::new(machine(), LoopbackConfig::paper(true, true));
    let tracer = s.fbs.machine().tracer();
    tracer.set_enabled(true);
    for _ in 0..4 {
        s.send_message(16 << 10, false).unwrap();
    }
    for kind in [
        EventKind::Alloc,
        EventKind::Transfer,
        EventKind::CacheHit,
        EventKind::Free,
    ] {
        assert!(tracer.count_of(kind) > 0, "expected {kind:?} events");
    }
    audit_tracer(&tracer).assert_clean();
}

#[test]
fn batched_range_ops_charge_identically_to_per_page_loops() {
    // The batched `map_range`/`protect_range`/`unmap_range` primitives are
    // a *host-time* optimisation only: the same workload must charge a
    // byte-identical simulated clock and an identical counter snapshot
    // whether it is driven page-at-a-time or as ranges.
    let run = |batched: bool| {
        let mut m = Machine::new(MachineConfig::decstation_5000_200());
        let dom = m.create_domain();
        let base = 0x9000_0000u64;
        let page = m.page_size();
        let pages = 8u64;
        m.map_explicit_region(dom, base, pages, Prot::ReadWrite)
            .unwrap();
        let frames: Vec<_> = (0..4).map(|_| m.alloc_frame().unwrap()).collect();
        if batched {
            m.map_range(dom, base, &frames, Prot::ReadWrite).unwrap();
        } else {
            for (i, &f) in frames.iter().enumerate() {
                m.map_page(dom, base + i as u64 * page, f, Prot::ReadWrite)
                    .unwrap();
            }
        }
        // Touch every mapped page so downgrades later hit resident TLB
        // entries (the expensive consistency-flush case).
        for i in 0..frames.len() as u64 {
            m.write(dom, base + i * page, &[i as u8]).unwrap();
        }
        if batched {
            m.protect_range(dom, base, frames.len() as u64, Prot::Read)
                .unwrap();
            m.protect_range(dom, base, frames.len() as u64, Prot::ReadWrite)
                .unwrap();
        } else {
            for i in 0..frames.len() as u64 {
                m.protect_page(dom, base + i * page, Prot::Read).unwrap();
            }
            for i in 0..frames.len() as u64 {
                m.protect_page(dom, base + i * page, Prot::ReadWrite)
                    .unwrap();
            }
        }
        // Replacement maps (old frame displaced) and a window-sized unmap
        // with holes in the upper half.
        let reversed: Vec<_> = frames.iter().rev().copied().collect();
        if batched {
            m.map_range(dom, base, &reversed, Prot::ReadWrite).unwrap();
            m.unmap_range(dom, base, pages).unwrap();
        } else {
            for (i, &f) in reversed.iter().enumerate() {
                m.map_page(dom, base + i as u64 * page, f, Prot::ReadWrite)
                    .unwrap();
            }
            for i in 0..pages {
                m.unmap_page(dom, base + i * page).unwrap();
            }
        }
        (m.now(), m.stats().snapshot())
    };
    let (t_page, s_page) = run(false);
    let (t_range, s_range) = run(true);
    assert_eq!(t_page, t_range, "simulated clock must match exactly");
    assert_eq!(s_page, s_range, "counter snapshot must match exactly");
    // The workload is non-trivial: it really exercised the counters.
    assert!(s_page.pte_updates >= 20);
    assert!(s_page.tlb_flushes >= 8);
}

// ---------------------------------------------------------------------
// Event-loop engine exactness: replacing the synchronous depth-first
// descent with enqueue → dequeue → handler → completion must not move a
// single simulated nanosecond or counter on any existing workload. Each
// test below runs the same workload under TransferMode::DirectCall (the
// old inline descent) and TransferMode::EventLoop (hops as scheduled
// events) and requires byte-identical (clock, full counter snapshot).
// ---------------------------------------------------------------------

#[test]
fn event_loop_is_counter_exact_on_cached_loopback() {
    let run = |mode: TransferMode| {
        let mut s = LoopbackStack::new(machine(), LoopbackConfig::paper(true, true));
        s.fbs.set_transfer_mode(mode);
        for _ in 0..6 {
            s.send_message(16 << 10, false).unwrap();
        }
        (s.fbs.machine().now(), s.fbs.stats().snapshot(), s)
    };
    let (t_d, s_d, _) = run(TransferMode::DirectCall);
    let (t_e, s_e, sys) = run(TransferMode::EventLoop);
    assert_eq!(t_d, t_e, "simulated clock must match exactly");
    assert_eq!(s_d, s_e, "counter snapshot must match exactly");
    // The event engine really ran: every hop was measured, all with zero
    // queueing delay (sequential workloads drain between hops).
    let h = sys.fbs.queue_delay();
    assert!(h.count() > 0, "hops flowed through the loop");
    assert_eq!(h.max(), 0, "a drained pipeline queues nothing");
    assert_eq!(s_e.overload_drops, 0);
}

#[test]
fn event_loop_is_counter_exact_on_uncached_loopback() {
    let run = |mode: TransferMode| {
        let mut s = LoopbackStack::new(machine(), LoopbackConfig::paper(true, false));
        s.fbs.set_transfer_mode(mode);
        for _ in 0..4 {
            s.send_message(16 << 10, false).unwrap();
        }
        (s.fbs.machine().now(), s.fbs.stats().snapshot())
    };
    assert_eq!(run(TransferMode::DirectCall), run(TransferMode::EventLoop));
}

#[test]
fn event_loop_is_counter_exact_on_osiris_end_to_end() {
    let run = |mode: TransferMode| {
        let mut cfg = machine();
        cfg.phys_mem = 16 << 20;
        let mut e = EndToEnd::new(cfg, EndToEndConfig::fig5(DomainSetup::User));
        e.tx.fbs.set_transfer_mode(mode);
        e.rx.fbs.set_transfer_mode(mode);
        for _ in 0..3 {
            e.send_message(50_000, 1, true).unwrap();
        }
        (
            e.tx.fbs.machine().now(),
            e.rx.fbs.machine().now(),
            e.tx.fbs.stats().snapshot(),
            e.rx.fbs.stats().snapshot(),
        )
    };
    assert_eq!(run(TransferMode::DirectCall), run(TransferMode::EventLoop));
}

#[test]
fn event_loop_is_counter_exact_on_proxy_graph_chain() {
    // The x-kernel proxy path: multi-fbuf messages forwarded down a
    // three-domain protocol chain, secured at the boundary, then freed.
    let run = |mode: TransferMode| {
        let mut fbs = FbufSystem::new(machine());
        fbs.set_transfer_mode(mode);
        let producer = fbs.create_domain();
        let middle = fbs.create_domain();
        let consumer = fbs.create_domain();
        let path = fbs.create_path(vec![producer, middle, consumer]).unwrap();
        let mut refs = MsgRefs::new();
        for round in 0..4u8 {
            let a = fbs
                .alloc(producer, AllocMode::Cached(path), 4096)
                .unwrap();
            let b = fbs.alloc(producer, AllocMode::Uncached, 8192).unwrap();
            fbs.write_fbuf(producer, a, 0, &[round; 16]).unwrap();
            fbs.write_fbuf(producer, b, 0, &[round; 16]).unwrap();
            let msg = Msg::from_fbuf(a, 0, 4096).concat(&Msg::from_fbuf(b, 0, 8192));
            refs.adopt(producer, &msg);
            deliver(&mut fbs, &mut refs, &msg, producer, middle, SendMode::Volatile).unwrap();
            deliver(&mut fbs, &mut refs, &msg, middle, consumer, SendMode::Secure).unwrap();
            refs.release(&mut fbs, consumer, &msg).unwrap();
            refs.release(&mut fbs, middle, &msg).unwrap();
            refs.release(&mut fbs, producer, &msg).unwrap();
        }
        (fbs.machine().now(), fbs.stats().snapshot())
    };
    assert_eq!(run(TransferMode::DirectCall), run(TransferMode::EventLoop));
}

#[test]
fn event_loop_is_counter_exact_on_integrated_aggregates() {
    // The integrated-aggregate path: one RPC carries only a root pointer;
    // the kernel walks the DAG and transfers every reachable fbuf.
    let run = |mode: TransferMode| {
        let mut fbs = FbufSystem::new(machine());
        fbs.set_transfer_mode(mode);
        integrated::install_null_template(&mut fbs);
        let a = fbs.create_domain();
        let b = fbs.create_domain();
        for _ in 0..3 {
            let data = fbs.alloc(a, AllocMode::Uncached, 8192).unwrap();
            fbs.write_fbuf(a, data, 0, b"hello ").unwrap();
            fbs.write_fbuf(a, data, 4096, b"world").unwrap();
            let va = fbs.fbuf(data).unwrap().va;
            let mut builder = DagBuilder::new(&mut fbs, a, AllocMode::Uncached, 8).unwrap();
            let l1 = builder.leaf(&mut fbs, va, 6).unwrap();
            let l2 = builder.leaf(&mut fbs, va + 4096, 5).unwrap();
            let root = builder.concat(&mut fbs, l1, l2).unwrap();
            let msg = integrated::IntegratedMsg { root };
            deliver_integrated(&mut fbs, msg, a, b, SendMode::Volatile, TraverseLimits::default())
                .unwrap();
            let got = integrated::gather(&mut fbs, b, msg, TraverseLimits::default()).unwrap();
            assert_eq!(got, b"hello world");
        }
        (fbs.machine().now(), fbs.stats().snapshot())
    };
    assert_eq!(run(TransferMode::DirectCall), run(TransferMode::EventLoop));
}

#[test]
fn batched_notice_plane_charges_identically_to_per_element() {
    // The coalesced notice plane (NoticeBatch payloads, flushed when the
    // window fills or at the poll boundary) is a *host-plane* change: it
    // moves fewer ring slots, but every simulated charge and counter of
    // the workload must be byte-identical to the one-token-per-slot
    // plane. Pinned over five fleet workload shapes on a single-shard
    // (self-linked, fully deterministic) fleet, at the per-element
    // window (1), two interior windows, and the maximum.
    let shapes: [(&str, u64, u64, usize, u64, usize); 5] = [
        // (name, cycles, cross_every, paths, pages, channel_capacity)
        ("no-cross", 400, 0, 2, 1, 8),
        ("dense-cross", 400, 2, 2, 1, 8),
        ("multi-path", 400, 4, 6, 1, 8),
        ("multi-page", 300, 4, 2, 4, 8),
        ("tight-ring", 400, 2, 2, 1, 2),
    ];
    for (name, cycles, cross_every, paths, pages, channel_capacity) in shapes {
        let mut cfg = machine();
        cfg.phys_mem = 32 << 20;
        let run = |notice_batch: usize| {
            let fleet = FleetConfig {
                paths,
                pages,
                cross_every,
                channel_capacity,
                notice_batch,
                ..FleetConfig::new(1, cfg.clone(), cycles)
            };
            let mut reports = run_fleet(&fleet);
            let r = reports.remove(0);
            (
                (r.sim_elapsed, r.delta, r.life, r.fbuf_ops, r.sent, r.received),
                (r.notice_batches, r.notice_tokens, r.orphan_notices),
            )
        };
        let (base, (base_batches, base_tokens, base_orphans)) = run(1);
        assert_eq!(base_batches, base_tokens, "window 1 is the per-element plane");
        assert_eq!(base_orphans, 0, "{name}: fault-free fleet has no orphans");
        for window in [4, 8, NOTICE_BATCH_MAX] {
            let (batched, (batches, tokens, orphans)) = run(window);
            assert_eq!(
                base, batched,
                "{name}: window {window} moved a simulated charge or counter"
            );
            assert_eq!(tokens, base_tokens, "{name}: same tokens cross the plane");
            assert!(batches <= base_batches, "{name}: coalescing never adds slots");
            assert_eq!(orphans, 0);
        }
    }
}

#[test]
fn overload_is_explicit_counted_and_audited() {
    // A full bounded inbox yields the explicit Overload outcome — never
    // silent growth, never recursion. The drop is counted in the stats
    // and traced, and the trace still audits clean (rule 5: an Overload
    // leaves inbox balance untouched).
    let mut fbs = FbufSystem::new(machine());
    let tracer = fbs.machine().tracer();
    tracer.set_enabled(true);
    fbs.set_inbox_depth(1);
    let a = fbs.create_domain();
    let route = vec![fbufs::vm::KERNEL_DOMAIN, a];
    let path = fbs.create_path(route.clone()).unwrap();

    let b1 = fbs
        .alloc(fbufs::vm::KERNEL_DOMAIN, AllocMode::Cached(path), 4096)
        .unwrap();
    let b2 = fbs
        .alloc(fbufs::vm::KERNEL_DOMAIN, AllocMode::Cached(path), 4096)
        .unwrap();
    assert!(!fbs.submit_transfer(b1, &route).is_overload());
    assert!(
        fbs.submit_transfer(b2, &route).is_overload(),
        "depth-1 inbox refuses the second transfer"
    );
    assert_eq!(fbs.stats().overload_drops(), 1);
    assert_eq!(fbs.engine_overloads(), 1);
    assert_eq!(tracer.count_of(EventKind::Overload), 1);

    fbs.pump();
    assert_eq!(fbs.transfers_completed(), 1);
    // The refused transfer never started: its buffer is still ours.
    fbs.free(b2, fbufs::vm::KERNEL_DOMAIN).unwrap();
    audit_tracer(&tracer).assert_clean();
}

#[test]
fn tracing_is_zero_cost_in_simulated_time() {
    // Enabling the tracer must not move a single simulated nanosecond:
    // recording never charges the clock.
    let run = |traced: bool| {
        let mut s = LoopbackStack::new(machine(), LoopbackConfig::paper(true, true));
        s.fbs.machine().tracer().set_enabled(traced);
        for _ in 0..3 {
            s.send_message(32 << 10, false).unwrap();
        }
        s.fbs.machine().clock().now()
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn observability_is_zero_cost_on_loopback() {
    // Spans, metrics sampling, and the always-on ledger together: with
    // everything switched on, a pinned workload must reach the identical
    // simulated instant with an identical counter snapshot. Observation
    // never perturbs the observed system.
    let run = |on: bool| {
        let mut s = LoopbackStack::new(machine(), LoopbackConfig::paper(true, true));
        s.fbs.machine().tracer().set_enabled(on);
        s.fbs.machine().metrics_ref().set_enabled(on);
        for _ in 0..4 {
            s.send_message(32 << 10, false).unwrap();
        }
        (s.fbs.machine().clock().now(), s.fbs.stats().snapshot())
    };
    let (t_off, s_off) = run(false);
    let (t_on, s_on) = run(true);
    assert_eq!(t_off, t_on, "observability must not move the clock");
    assert_eq!(s_off, s_on, "observability must not touch a counter");
}

#[test]
fn observability_is_zero_cost_on_osiris_end_to_end() {
    // Same pin across the two-machine path, where every datagram mints a
    // TX span and links an RX child span.
    let run = |on: bool| {
        let mut cfg = machine();
        cfg.phys_mem = 16 << 20;
        let mut e = EndToEnd::new(cfg, EndToEndConfig::fig5(DomainSetup::User));
        for fbs in [&mut e.tx.fbs, &mut e.rx.fbs] {
            fbs.machine().tracer().set_enabled(on);
            fbs.machine().metrics_ref().set_enabled(on);
        }
        for _ in 0..3 {
            e.send_message(50_000, 1, true).unwrap();
        }
        (
            e.tx.fbs.machine().now(),
            e.rx.fbs.machine().now(),
            e.tx.fbs.stats().snapshot(),
            e.rx.fbs.stats().snapshot(),
        )
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn armed_containment_is_byte_identical_on_benign_workloads() {
    // DESIGN.md §16: the hostile-tenant containment machinery (quota
    // jail + transfer revocation deadline) armed at its default
    // thresholds must be invisible to every benign workload — not one
    // simulated nanosecond, not one counter. Pinned across the five
    // workload shapes this file already pins for the event loop.
    use fbufs::fbuf::JailConfig;
    use fbufs::sim::Ns;

    let arm = |fbs: &mut FbufSystem, on: bool| {
        if on {
            fbs.set_jail(Some(JailConfig::default()));
            fbs.set_revoke_timeout(Some(Ns(1_000_000_000))); // 1 s
        }
    };

    // 1. Cached loopback.
    let cached = |on: bool| {
        let mut s = LoopbackStack::new(machine(), LoopbackConfig::paper(true, true));
        arm(&mut s.fbs, on);
        for _ in 0..4 {
            s.send_message(16 << 10, false).unwrap();
        }
        (s.fbs.machine().now(), s.fbs.stats().snapshot())
    };
    // 2. Uncached loopback.
    let uncached = |on: bool| {
        let mut s = LoopbackStack::new(machine(), LoopbackConfig::paper(true, false));
        arm(&mut s.fbs, on);
        for _ in 0..3 {
            s.send_message(16 << 10, false).unwrap();
        }
        (s.fbs.machine().now(), s.fbs.stats().snapshot())
    };
    // 3. Osiris end-to-end.
    let osiris = |on: bool| {
        let mut cfg = machine();
        cfg.phys_mem = 16 << 20;
        let mut e = EndToEnd::new(cfg, EndToEndConfig::fig5(DomainSetup::User));
        arm(&mut e.tx.fbs, on);
        arm(&mut e.rx.fbs, on);
        for _ in 0..2 {
            e.send_message(50_000, 1, true).unwrap();
        }
        (
            e.tx.fbs.machine().now(),
            e.rx.fbs.machine().now(),
            e.tx.fbs.stats().snapshot(),
            e.rx.fbs.stats().snapshot(),
        )
    };
    // 4. Proxy graph chain.
    let proxy = |on: bool| {
        let mut fbs = FbufSystem::new(machine());
        arm(&mut fbs, on);
        let producer = fbs.create_domain();
        let middle = fbs.create_domain();
        let consumer = fbs.create_domain();
        let path = fbs.create_path(vec![producer, middle, consumer]).unwrap();
        let mut refs = MsgRefs::new();
        for round in 0..3u8 {
            let a = fbs.alloc(producer, AllocMode::Cached(path), 4096).unwrap();
            fbs.write_fbuf(producer, a, 0, &[round; 16]).unwrap();
            let msg = Msg::from_fbuf(a, 0, 4096);
            refs.adopt(producer, &msg);
            deliver(&mut fbs, &mut refs, &msg, producer, middle, SendMode::Volatile).unwrap();
            deliver(&mut fbs, &mut refs, &msg, middle, consumer, SendMode::Secure).unwrap();
            refs.release(&mut fbs, consumer, &msg).unwrap();
            refs.release(&mut fbs, middle, &msg).unwrap();
            refs.release(&mut fbs, producer, &msg).unwrap();
        }
        (fbs.machine().now(), fbs.stats().snapshot())
    };
    // 5. Engine offered-load via submit_transfer (deadline-stamped when
    // armed — the stamp itself must be free).
    let engine = |on: bool| {
        let mut fbs = FbufSystem::new(machine());
        arm(&mut fbs, on);
        let a = fbs.create_domain();
        let route = vec![fbufs::vm::KERNEL_DOMAIN, a];
        let path = fbs.create_path(route.clone()).unwrap();
        for _ in 0..8 {
            let b = fbs
                .alloc(fbufs::vm::KERNEL_DOMAIN, AllocMode::Cached(path), 4096)
                .unwrap();
            assert!(!fbs.submit_transfer(b, &route).is_overload());
            fbs.pump();
        }
        (fbs.machine().now(), fbs.stats().snapshot())
    };

    assert_eq!(cached(false), cached(true), "cached loopback moved");
    assert_eq!(uncached(false), uncached(true), "uncached loopback moved");
    assert_eq!(osiris(false), osiris(true), "osiris end-to-end moved");
    assert_eq!(proxy(false), proxy(true), "proxy chain moved");
    assert_eq!(engine(false), engine(true), "engine offered load moved");
    // The armed runs really had the jail on and never tripped it.
    let (_, snap) = cached(true);
    assert_eq!(snap.jail_denials, 0);
    assert_eq!(snap.fbufs_revoked, 0);
}

#[test]
fn injected_domain_crash_never_bills_the_ledger_or_trips_the_jail() {
    // A fault-injected domain teardown reclaims the victim's buffers
    // through the crash path. That reclamation is bookkeeping, not
    // traffic: the tenant ledger's transfer bytes must not move, the
    // armed jail must not count the teardown against any tenant, and
    // the hoard charge of the victim must return to zero.
    use fbufs::fbuf::JailConfig;

    let mut fbs = FbufSystem::new(machine());
    fbs.set_jail(Some(JailConfig::default()));
    let a = fbs.create_domain();
    let b = fbs.create_domain();
    let path = fbs.create_path(vec![a, b]).unwrap();
    for _ in 0..4 {
        let buf = fbs.alloc(a, AllocMode::Cached(path), 4096).unwrap();
        fbs.send(buf, a, b, SendMode::Volatile).unwrap();
        fbs.free(buf, b).unwrap();
        fbs.free(buf, a).unwrap();
    }
    // Leave two buffers live in the victim's hands, then crash it.
    let held1 = fbs.alloc(a, AllocMode::Cached(path), 4096).unwrap();
    let held2 = fbs.alloc(a, AllocMode::Uncached, 4096).unwrap();
    fbs.send(held1, a, b, SendMode::Volatile).unwrap();
    let before = fbs.ledger_snapshot();
    fbs.terminate_domain(b).unwrap();
    let after = fbs.ledger_snapshot();
    assert_eq!(
        before.totals().bytes,
        after.totals().bytes,
        "teardown reclamation billed transfer bytes"
    );
    let snap = fbs.stats().snapshot();
    assert_eq!(snap.jail_denials, 0, "teardown tripped the jail");
    assert_eq!(fbs.charged_bytes(b), 0, "the dead tenant still carries hoard charge");
    assert!(after.conserves(&snap).is_empty(), "ledger must conserve");
    // The survivor keeps working — and its jail history is untouched
    // (the path died with its peer, so the survivor falls back to the
    // default allocator).
    fbs.free(held2, a).unwrap();
    fbs.free(held1, a).unwrap();
    fbs.alloc(a, AllocMode::Uncached, 4096).unwrap();
    assert_eq!(fbs.stats().snapshot().jail_denials, 0);
}

#[test]
fn injected_ring_full_faults_keep_the_fleet_ledger_conserving() {
    // FaultSite::RingFull on the cross-shard data plane: pushes refused
    // by the injected backpressure must surface as survivable aborts,
    // never as phantom ledger billing. And merely *arming* a zero-rate
    // plan must not move a byte anywhere — the same counter-exactness
    // discipline every other plane in this file obeys.
    use fbufs::fbuf::{fleet_ledger, fleet_snapshot};
    use fbufs::sim::{FaultSite, FaultSpec};

    let mut cfg = machine();
    cfg.phys_mem = 32 << 20;
    let base = FleetConfig {
        paths: 2,
        pages: 1,
        cross_every: 2,
        channel_capacity: 4,
        ..FleetConfig::new(1, cfg, 300)
    };
    let run = |fault: Option<FaultSpec>| {
        let mut f = base.clone();
        f.fault = fault;
        run_fleet(&f)
    };

    let clean = run(None);
    let armed_zero = run(Some(FaultSpec::new(11)));
    assert_eq!(
        fleet_snapshot(&clean),
        fleet_snapshot(&armed_zero),
        "arming a zero-rate plan moved a counter"
    );

    let faulted = run(Some(FaultSpec::new(11).rate(FaultSite::RingFull, 20_000)));
    let injected: u64 = faulted.iter().map(|r| r.faults_injected).sum();
    assert!(injected > 0, "the plan never fired");
    // Conservation is a whole-life invariant (the ledger is cumulative;
    // the windowed delta excludes warm-up — see tests/observability.rs).
    let life = fbufs::sim::StatsSnapshot::merge_all(faulted.iter().map(|r| &r.life));
    assert_eq!(life.jail_denials, 0, "backpressure faults are not tenant hoarding");
    assert_eq!(life.tokens_rejected, 0, "backpressure faults are not forgeries");
    let violations = fleet_ledger(&faulted).conserves(&life);
    assert!(
        violations.is_empty(),
        "injected ring-full unbalanced the ledger: {violations:?}"
    );
}

#[test]
fn static_policy_is_bit_identical_to_the_fixed_quota() {
    // The pluggable admission layer must leave the default behaviour
    // untouched: a system with `QuotaPolicy::Static` set explicitly and
    // one that never heard of policies run the same allocation storm to
    // the identical simulated instant with identical counters, and both
    // deny exactly at the configured chunk quota.
    use fbufs::fbuf::{FbufError, QuotaPolicy};
    use fbufs::sim::MachineConfig as MC;

    let storm = |set_policy: bool| {
        let mut fbs = FbufSystem::new(MC::tiny());
        if set_policy {
            fbs.set_quota_policy(QuotaPolicy::Static);
        }
        let a = fbs.create_domain();
        let b = fbs.create_domain();
        let path = fbs.create_path(vec![a, b]).unwrap();
        let quota = fbs.machine().config().max_chunks_per_path;
        // Chunk-sized buffers, all held live: every allocation needs a
        // fresh chunk, so the quota is the exact admission boundary.
        let chunk = fbs.machine().config().chunk_size;
        for _ in 0..quota {
            fbs.alloc(a, AllocMode::Cached(path), chunk).unwrap();
        }
        let denied = fbs.alloc(a, AllocMode::Cached(path), chunk);
        assert_eq!(denied, Err(FbufError::QuotaExceeded { path: Some(path) }));
        (fbs.machine().clock().now(), fbs.stats().snapshot())
    };
    let (t_default, s_default) = storm(false);
    let (t_static, s_static) = storm(true);
    assert_eq!(t_default, t_static, "Static must not move the clock");
    assert_eq!(s_default, s_static, "Static must not touch a counter");
    assert_eq!(s_static.chunk_quota_denials, 1, "exactly the one organic denial");
}

#[test]
fn injected_quota_denials_never_count_as_organic() {
    // The `chunk_quota_denials` counter tallies *policy* refusals only.
    // A fault-plan `QuotaExhausted` injection produces the same error at
    // the same site but is the plan's statistic, not the counter's —
    // the split the oracle pins from its side in
    // `fbuf-model::oracle` (injected_quota_and_chunk_grant_decisions).
    use fbufs::fbuf::{FbufError, QuotaPolicy};
    use fbufs::sim::{FaultSite, FaultSpec, MachineConfig as MC};
    use std::rc::Rc;

    let mut fbs = FbufSystem::new(MC::tiny());
    fbs.set_quota_policy(QuotaPolicy::Static);
    let a = fbs.create_domain();
    let b = fbs.create_domain();
    let path = fbs.create_path(vec![a, b]).unwrap();
    let chunk = fbs.machine().config().chunk_size;

    // Rate 65535/65536 with a fixed seed: the first consult fires
    // (deterministic — the plan's stream is a pure function of the
    // seed; the assertion below would catch a seed that rolls a miss).
    let plan = Rc::new(FaultSpec::new(7).rate(FaultSite::QuotaExhausted, u16::MAX).arm());
    fbs.arm_faults(Rc::clone(&plan));
    let denied = fbs.alloc(a, AllocMode::Cached(path), chunk);
    assert_eq!(denied, Err(FbufError::QuotaExceeded { path: Some(path) }));
    assert_eq!(plan.injected(FaultSite::QuotaExhausted), 1, "the plan fired");
    assert_eq!(
        fbs.stats().snapshot().chunk_quota_denials,
        0,
        "an injected denial is the fault plan's tally, not the organic counter's"
    );

    // Disarmed, the same system fills to quota and overflows: only now
    // does the organic counter move.
    fbs.disarm_faults();
    let quota = fbs.machine().config().max_chunks_per_path;
    for _ in 0..quota {
        fbs.alloc(a, AllocMode::Cached(path), chunk).unwrap();
    }
    let denied = fbs.alloc(a, AllocMode::Cached(path), chunk);
    assert_eq!(denied, Err(FbufError::QuotaExceeded { path: Some(path) }));
    assert_eq!(fbs.stats().snapshot().chunk_quota_denials, 1);
}
