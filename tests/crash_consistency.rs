//! Crash consistency: `terminate_domain` in awkward states.
//!
//! The paper's termination story (§3.2.3) has three hard cases: the
//! dying domain still *holds* buffers, still has buffers *parked* on its
//! paths' free lists, and still has payloads *in flight* toward another
//! shard. These tests pin that every frame is reclaimed exactly once
//! (physical free-frame count returns to its baseline), that the replay
//! auditor stays clean through the teardown, and that a sharded fleet
//! under injected ring backpressure keeps its per-shard steady-state
//! invariants.

use fbufs::fbuf::shard::{run_fleet, FleetConfig};
use fbufs::fbuf::{AllocMode, FbufError, FbufSystem, SendMode};
use fbufs::model::cmd::{self, Cmd};
use fbufs::model::lockstep::Harness;
use fbufs::sim::{audit_tracer, FaultSite, FaultSpec, MachineConfig, Ns};

#[test]
fn terminate_with_held_and_parked_buffers_reclaims_frames_exactly_once() {
    let mut sys = FbufSystem::new(MachineConfig::tiny());
    sys.machine().tracer_ref().set_enabled(true);
    let a = sys.create_domain();
    let b = sys.create_domain();
    let p = sys.create_path(vec![a, b]).unwrap();
    let frames0 = sys.machine().free_frames();

    // Allocate all three up front (freeing first would make the next
    // cached alloc a cache *hit* of the same buffer).
    let parked = sys.alloc(a, AllocMode::Cached(p), 4096).unwrap();
    let shared = sys.alloc(a, AllocMode::Cached(p), 4096).unwrap();
    let held = sys.alloc(a, AllocMode::Cached(p), 4096).unwrap();
    // Parked: returned to the path's free list before the crash.
    sys.free(parked, a).unwrap();
    // Shared: transferred to b, then released by a — survives a's death.
    sys.send(shared, a, b, SendMode::Secure).unwrap();
    sys.free(shared, a).unwrap();
    // `held` is still owned solely by the dying domain.

    sys.terminate_domain(a).unwrap();
    // The path died with its originator; the parked and held buffers are
    // gone, the shared one lives on b's reference alone.
    assert!(!sys.path(p).unwrap().live);
    assert!(sys.fbuf(parked).is_err());
    assert!(sys.fbuf(held).is_err());
    assert!(sys.fbuf(shared).is_ok());
    assert_eq!(sys.live_fbufs(), 1);

    // A second termination of the same domain is an error, not a second
    // reclamation pass.
    assert!(matches!(
        sys.terminate_domain(a),
        Err(FbufError::UnknownDomain(_))
    ));

    sys.free(shared, b).unwrap();
    assert_eq!(sys.live_fbufs(), 0);
    assert_eq!(
        sys.machine().free_frames(),
        frames0,
        "every frame reclaimed exactly once"
    );
    audit_tracer(sys.machine().tracer_ref()).assert_clean();
}

#[test]
fn terminate_the_receiver_keeps_the_path_dead_and_frames_balanced() {
    let mut sys = FbufSystem::new(MachineConfig::tiny());
    sys.machine().tracer_ref().set_enabled(true);
    let a = sys.create_domain();
    let b = sys.create_domain();
    let p = sys.create_path(vec![a, b]).unwrap();
    let frames0 = sys.machine().free_frames();

    // b holds a reference and then dies; a still holds its own.
    let id = sys.alloc(a, AllocMode::Cached(p), 2 * 4096).unwrap();
    sys.send(id, a, b, SendMode::Volatile).unwrap();
    sys.terminate_domain(b).unwrap();
    // a's reference survives; the buffer is now uncacheable (dead path)
    // so a's free retires it.
    let f = sys.fbuf(id).unwrap();
    assert_eq!(f.holders.len(), 1);
    assert!(!sys.path(p).unwrap().live);
    sys.free(id, a).unwrap();
    assert!(sys.fbuf(id).is_err(), "dead path ⇒ retire, not park");
    assert_eq!(sys.machine().free_frames(), frames0);
    audit_tracer(sys.machine().tracer_ref()).assert_clean();
}

#[test]
fn crash_with_tokens_in_flight_stays_in_lockstep() {
    // An injected crash (driver-level DomainCrash) lands while payload
    // tokens sit unacknowledged in the data/notice rings. The lockstep
    // differ checks ring occupancy, buffer population, and all eight
    // counters after every command, and the replay auditor runs at the
    // end — any double-free or leaked token would surface as a
    // divergence or an audit violation.
    for crash_at in [5u64, 12, 23] {
        let spec = FaultSpec::new(0xc4a5_4000 + crash_at)
            .crash_after(crash_at)
            .rate(FaultSite::RingFull, 6000);
        let mut h = Harness::new(&spec, None);
        let mut cmds = Vec::new();
        for i in 0..80u64 {
            cmds.push(match i % 4 {
                0 | 2 => Cmd::CrossSend,
                1 => cmd::generate(i, 1)[0],
                _ => Cmd::CrossPoll,
            });
        }
        h.run(&cmds).unwrap_or_else(|(i, e)| {
            panic!("crash_at {crash_at}: diverged at command {i}: {e}");
        });
    }
}

#[test]
fn revocation_deadline_mid_route_reclaims_frames_exactly_once() {
    // A burst of deadline-stamped transfers through a three-domain
    // chain, serviced late: the tail of the burst blows its deadline
    // while legs are still queued, and the engine revokes the stalled
    // buffers mid-route instead of delivering them. Every frame must
    // come back exactly once, the replay auditor must accept the
    // Revoked lifecycle, and the ledger must conserve — revocations
    // included. (The paper machine, not `tiny`: deadline expiry needs a
    // clock that actually charges for work.)
    let mut sys = FbufSystem::new(MachineConfig::decstation_5000_200());
    sys.machine().tracer_ref().set_enabled(true);
    let a = sys.create_domain();
    let b = sys.create_domain();
    let c = sys.create_domain();
    let route = vec![a, b, c];
    let p = sys.create_path(route.clone()).unwrap();
    let frames0 = sys.machine().free_frames();

    // Tight enough that queued legs at the tail of the burst expire,
    // generous enough that the head is delivered.
    sys.set_revoke_timeout(Some(Ns(400_000)));
    let mut refused = Vec::new();
    for _ in 0..8 {
        let id = sys.alloc(a, AllocMode::Cached(p), 4096).unwrap();
        if sys.submit_transfer(id, &route).is_overload() {
            refused.push(id);
        }
    }
    sys.pump();
    for id in refused {
        sys.free(id, a).unwrap();
    }

    assert!(
        sys.transfers_revoked() > 0,
        "the burst tail must blow the 400 µs deadline"
    );
    assert_eq!(sys.stats().snapshot().fbufs_revoked, sys.transfers_revoked());
    let violations = sys.ledger_snapshot().conserves(&sys.stats().snapshot());
    assert!(violations.is_empty(), "ledger must conserve: {violations:?}");

    // Tear the chain down: parked buffers retire with their path, and
    // the physical frame count returns to its pre-workload baseline.
    sys.terminate_domain(a).unwrap();
    sys.terminate_domain(b).unwrap();
    sys.terminate_domain(c).unwrap();
    assert_eq!(sys.live_fbufs(), 0);
    assert_eq!(
        sys.machine().free_frames(),
        frames0,
        "every frame reclaimed exactly once"
    );
    audit_tracer(sys.machine().tracer_ref()).assert_clean();
}

#[test]
fn revocation_deadline_during_terminate_reclaims_frames_exactly_once() {
    // The other hard interleaving: deadline-stamped transfers sit
    // queued toward a receiver that is torn down *before* the engine
    // services them. The teardown and the expired deadlines race over
    // the same buffers; each frame must still be reclaimed exactly
    // once, with a clean audit and a conserving ledger.
    let mut sys = FbufSystem::new(MachineConfig::decstation_5000_200());
    sys.machine().tracer_ref().set_enabled(true);
    let a = sys.create_domain();
    let b = sys.create_domain();
    let route = vec![a, b];
    let p = sys.create_path(route.clone()).unwrap();
    let frames0 = sys.machine().free_frames();

    sys.set_revoke_timeout(Some(Ns(1)));
    let mut refused = Vec::new();
    for _ in 0..4 {
        let id = sys.alloc(a, AllocMode::Cached(p), 4096).unwrap();
        if sys.submit_transfer(id, &route).is_overload() {
            refused.push(id);
        }
    }
    // The receiver dies with every transfer still in its inbox, every
    // deadline already blown (1 ns). Only then is the engine pumped.
    sys.terminate_domain(b).unwrap();
    sys.pump();
    for id in refused {
        sys.free(id, a).unwrap();
    }

    let violations = sys.ledger_snapshot().conserves(&sys.stats().snapshot());
    assert!(violations.is_empty(), "ledger must conserve: {violations:?}");
    sys.terminate_domain(a).unwrap();
    assert_eq!(sys.live_fbufs(), 0);
    assert_eq!(
        sys.machine().free_frames(),
        frames0,
        "every frame reclaimed exactly once"
    );
    audit_tracer(sys.machine().tracer_ref()).assert_clean();
}

#[test]
fn fleet_under_injected_backpressure_keeps_steady_state_invariants() {
    let mut machine = MachineConfig::tiny();
    machine.phys_mem = 8 << 20;
    let cfg = FleetConfig {
        cross_every: 8,
        channel_capacity: 4,
        fault: Some(FaultSpec::new(0xbacc_9e55).rate(FaultSite::RingFull, 12_000)),
        ..FleetConfig::new(2, machine, 600)
    };
    let reports = run_fleet(&cfg);
    assert_eq!(reports.len(), 2);
    let mut injected = 0;
    for r in &reports {
        assert!(
            r.steady_state_violations().is_empty(),
            "shard {}: {:?}",
            r.shard,
            r.steady_state_violations()
        );
        injected += r.faults_injected;
    }
    assert!(injected > 0, "backpressure faults actually fired");
    // Conservation holds even with injected ring-full stalls: the
    // engines retry, so nothing is lost or duplicated.
    let sent: u64 = reports.iter().map(|r| r.sent).sum();
    let received: u64 = reports.iter().map(|r| r.received).sum();
    assert_eq!(sent, received);
    assert!(sent > 0);
}
