//! Tier-1 fuzzer gates: corpus replay, a small always-on campaign, and
//! the planted-divergence self-test.
//!
//! Every `.case` file under `tests/corpus/` is a seed+keep-list record
//! (see `fbuf_model::fuzz` for the format) that once exercised a
//! hard-won execution — it replays here forever. The campaign test runs
//! a bounded number of fresh seeded cases on every `cargo test`; long
//! campaigns live in `fbuf-fuzz` behind `FBUF_FUZZ_CASES`. The planted
//! divergence proves the whole detection-and-shrinking pipeline still
//! has teeth: a deliberately wrong model transition must be caught and
//! shrunk to a handful of commands.

use std::path::PathBuf;

use fbufs::model::fuzz::{self, CorpusCase};
use fbufs::model::oracle::Sabotage;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn every_corpus_case_replays_clean() {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "the corpus ships with seed cases");
    for path in paths {
        let text = std::fs::read_to_string(&path).unwrap();
        let case = fuzz::parse_corpus(&text)
            .unwrap_or_else(|e| panic!("{}: malformed: {e}", path.display()));
        let out = fuzz::replay(&case, None).unwrap_or_else(|fail| {
            panic!(
                "{}: diverged at command {}: {}",
                path.display(),
                fail.fail_index,
                fail.message
            )
        });
        assert!(out.commands > 0, "{}: empty case", path.display());
    }
}

#[test]
fn smoke_campaign_stays_divergence_free() {
    // Small but real: every command type, every fault site reachable.
    let report = fuzz::campaign(0x7e57_0c0d_e001, 8, 150, None, 0);
    assert!(
        report.failures.is_empty(),
        "divergences: {:?}",
        report.failures
    );
    assert_eq!(report.commands, 8 * 150);
}

#[test]
fn adversarial_smoke_campaign_stays_divergence_free() {
    // Hostile personas overlaid, containment armed on both sides of the
    // differ: the jail, revocation, and token-defense paths must agree.
    let report = fuzz::campaign(0x7e57_adbe_e002, 4, 150, None, 3);
    assert!(
        report.failures.is_empty(),
        "adversarial divergences: {:?}",
        report.failures
    );
    assert_eq!(report.commands, 4 * 150);
}

#[test]
fn adversarial_corpus_cases_exercise_the_containment_paths() {
    // The two pinned adversarial cases aren't just divergence-free —
    // each must still trip the specific mechanism it was shrunk to
    // witness, and replay twice bit-identically.
    let load = |name: &str| {
        let text = std::fs::read_to_string(corpus_dir().join(name)).unwrap();
        fuzz::parse_corpus(&text).unwrap()
    };
    let jail = load("adv-jail-000000000000000d.case");
    assert_eq!(jail.adv, 3);
    let a = fuzz::replay(&jail, None).expect("jail pin replays clean");
    let b = fuzz::replay(&jail, None).expect("jail pin replays clean twice");
    assert_eq!(a.containment, b.containment, "replay is deterministic");
    assert!(a.containment[0] >= 1, "jail pin no longer trips the jail: {:?}", a.containment);

    let rev = load("adv-revoke-000000000000001b.case");
    assert_eq!(rev.adv, 3);
    let a = fuzz::replay(&rev, None).expect("revocation pin replays clean");
    let b = fuzz::replay(&rev, None).expect("revocation pin replays clean twice");
    assert_eq!(a.containment, b.containment, "replay is deterministic");
    assert!(a.containment[1] >= 1, "revocation pin no longer revokes: {:?}", a.containment);
    assert_eq!(a.containment[0], 0, "revocation pin must not involve the jail: {:?}", a.containment);
}

#[test]
fn planted_model_bug_is_caught_and_shrunk_to_a_short_witness() {
    let sab = Some(Sabotage::FifoReuse);
    let mut caught = None;
    for seed in 0..16u64 {
        if let Err(fail) = fuzz::run_case(seed, 250, sab, 0) {
            caught = Some((seed, fail));
            break;
        }
    }
    let (seed, fail) = caught.expect("the sabotaged model must diverge");
    let keep = fuzz::shrink(seed, 250, &fail, sab, 0);
    assert!(
        keep.len() <= 10,
        "minimal witness should be a handful of commands, got {}: {keep:?}",
        keep.len()
    );
    let case = CorpusCase {
        seed,
        cmds: 250,
        keep: Some(keep),
        adv: 0,
    };
    assert!(
        fuzz::replay(&case, sab).is_err(),
        "shrunk witness must still diverge under the sabotage"
    );
    assert!(
        fuzz::replay(&case, None).is_ok(),
        "the same witness is clean on the honest model"
    );
}
