//! Tier-1 fuzzer gates: corpus replay, a small always-on campaign, and
//! the planted-divergence self-test.
//!
//! Every `.case` file under `tests/corpus/` is a seed+keep-list record
//! (see `fbuf_model::fuzz` for the format) that once exercised a
//! hard-won execution — it replays here forever. The campaign test runs
//! a bounded number of fresh seeded cases on every `cargo test`; long
//! campaigns live in `fbuf-fuzz` behind `FBUF_FUZZ_CASES`. The planted
//! divergence proves the whole detection-and-shrinking pipeline still
//! has teeth: a deliberately wrong model transition must be caught and
//! shrunk to a handful of commands.

use std::path::PathBuf;

use fbufs::model::fuzz::{self, CorpusCase};
use fbufs::model::oracle::Sabotage;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn every_corpus_case_replays_clean() {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "the corpus ships with seed cases");
    for path in paths {
        let text = std::fs::read_to_string(&path).unwrap();
        let case = fuzz::parse_corpus(&text)
            .unwrap_or_else(|e| panic!("{}: malformed: {e}", path.display()));
        let out = fuzz::replay(&case, None).unwrap_or_else(|fail| {
            panic!(
                "{}: diverged at command {}: {}",
                path.display(),
                fail.fail_index,
                fail.message
            )
        });
        assert!(out.commands > 0, "{}: empty case", path.display());
    }
}

#[test]
fn smoke_campaign_stays_divergence_free() {
    // Small but real: every command type, every fault site reachable.
    let report = fuzz::campaign(0x7e57_0c0d_e001, 8, 150, None);
    assert!(
        report.failures.is_empty(),
        "divergences: {:?}",
        report.failures
    );
    assert_eq!(report.commands, 8 * 150);
}

#[test]
fn planted_model_bug_is_caught_and_shrunk_to_a_short_witness() {
    let sab = Some(Sabotage::FifoReuse);
    let mut caught = None;
    for seed in 0..16u64 {
        if let Err(fail) = fuzz::run_case(seed, 250, sab) {
            caught = Some((seed, fail));
            break;
        }
    }
    let (seed, fail) = caught.expect("the sabotaged model must diverge");
    let keep = fuzz::shrink(seed, 250, &fail, sab);
    assert!(
        keep.len() <= 10,
        "minimal witness should be a handful of commands, got {}: {keep:?}",
        keep.len()
    );
    let case = CorpusCase {
        seed,
        cmds: 250,
        keep: Some(keep),
    };
    assert!(
        fuzz::replay(&case, sab).is_err(),
        "shrunk witness must still diverge under the sabotage"
    );
    assert!(
        fuzz::replay(&case, None).is_ok(),
        "the same witness is clean on the honest model"
    );
}
