//! Property-based tests over the core data structures and invariants.

use fbufs::fbuf::{AllocMode, FbufId, FbufSystem, SendMode};
use fbufs::net::ip;
use fbufs::sim::MachineConfig;
use fbufs::xkernel::{Extent, Msg};
use proptest::prelude::*;

/// Arbitrary extent lists (bounded fbuf ids/offsets/lengths).
fn arb_extents() -> impl Strategy<Value = Vec<Extent>> {
    prop::collection::vec(
        (0u64..8, 0u64..10_000, 1u64..5_000).prop_map(|(f, off, len)| Extent {
            fbuf: FbufId(f),
            off,
            len,
        }),
        0..12,
    )
}

/// The logical byte positions a message covers: (fbuf, byte) pairs in
/// order. Editing operations must preserve these exactly.
fn logical_bytes(msg: &Msg) -> Vec<(u64, u64)> {
    let mut v = Vec::new();
    for e in msg.extents() {
        for i in 0..e.len {
            v.push((e.fbuf.0, e.off + i));
        }
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn split_preserves_every_byte(extents in arb_extents(), at in 0u64..70_000) {
        let msg = Msg::from_extents(extents);
        let (head, tail) = msg.split(at);
        let mut combined = logical_bytes(&head);
        combined.extend(logical_bytes(&tail));
        prop_assert_eq!(combined, logical_bytes(&msg));
        prop_assert_eq!(head.len(), at.min(msg.len()));
    }

    #[test]
    fn pop_then_prepend_is_identity(extents in arb_extents(), n in 0u64..5_000) {
        let msg = Msg::from_extents(extents);
        let mut rest = msg.clone();
        if let Some(head) = rest.pop(n) {
            let rejoined = head.concat(&rest);
            prop_assert_eq!(logical_bytes(&rejoined), logical_bytes(&msg));
        } else {
            prop_assert!(msg.len() < n);
        }
    }

    #[test]
    fn truncate_is_a_prefix(extents in arb_extents(), n in 0u64..70_000) {
        let msg = Msg::from_extents(extents);
        let mut t = msg.clone();
        t.truncate(n);
        let full = logical_bytes(&msg);
        prop_assert_eq!(logical_bytes(&t), full[..t.len() as usize].to_vec());
    }

    #[test]
    fn fragmentation_reassembly_roundtrip(
        extents in arb_extents(),
        pdu in 1u64..9_000,
        seed in 0u64..u64::MAX,
    ) {
        let msg = Msg::from_extents(extents);
        let frags = ip::fragment(&msg, 1, pdu);
        // Every fragment respects the PDU bound.
        for (h, body) in &frags {
            prop_assert!(body.len() <= pdu);
            prop_assert_eq!(h.total_len, msg.len());
        }
        // Reassemble in a shuffled order.
        let mut order: Vec<usize> = (0..frags.len()).collect();
        let mut s = seed;
        for i in (1..order.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }
        let mut r = ip::Reassembler::new(0);
        let mut done = None;
        for (k, &i) in order.iter().enumerate() {
            let out = r.add(frags[i].0, frags[i].1.clone());
            if k + 1 < order.len() {
                prop_assert!(out.is_none(), "completed early");
            } else {
                done = out;
            }
        }
        if msg.is_empty() {
            prop_assert!(frags.is_empty());
        } else {
            let done = done.expect("reassembly completes on the last fragment");
            prop_assert_eq!(logical_bytes(&done), logical_bytes(&msg));
        }
    }

    #[test]
    fn allocator_never_overlaps_live_buffers(
        ops in prop::collection::vec((0u64..3, 1u64..40_000), 1..40),
    ) {
        // Random interleaving of allocs (in three domains) and frees; no
        // two live fbufs may ever overlap in the shared virtual region.
        let mut fbs = FbufSystem::new(MachineConfig::decstation_5000_200());
        let doms = [fbs.create_domain(), fbs.create_domain(), fbs.create_domain()];
        let mut live: Vec<(u64, u64, FbufId, usize)> = Vec::new();
        let page = fbs.machine().page_size();
        for (which, len) in ops {
            let d = which as usize;
            // Free one of this domain's buffers every other step.
            if live.len() % 2 == 1 {
                if let Some(pos) = live.iter().position(|&(_, _, _, owner)| owner == d) {
                    let (_, _, id, _) = live.remove(pos);
                    fbs.free(id, doms[d]).unwrap();
                }
            }
            // Quota/region exhaustion is an acceptable outcome; overlap
            // of live buffers never is.
            if let Ok(id) = fbs.alloc(doms[d], AllocMode::Uncached, len) {
                let f = fbs.fbuf(id).unwrap();
                let (start, end) = (f.va, f.va + f.pages * page);
                prop_assert_eq!(start % page, 0, "page aligned");
                for &(s, e, _, _) in &live {
                    prop_assert!(end <= s || start >= e,
                        "overlap: [{start:#x},{end:#x}) vs [{s:#x},{e:#x})");
                }
                live.push((start, end, id, d));
            }
        }
    }

    #[test]
    fn no_writable_mapping_of_secured_pages_outside_originator(
        pages in 1u64..6,
        receivers in 1usize..3,
    ) {
        let mut fbs = FbufSystem::new(MachineConfig::decstation_5000_200());
        let origin = fbs.create_domain();
        let doms: Vec<_> = (0..receivers).map(|_| fbs.create_domain()).collect();
        let page = fbs.machine().page_size();
        let id = fbs.alloc(origin, AllocMode::Uncached, pages * page).unwrap();
        fbs.write_fbuf(origin, id, 0, &[1u8]).unwrap();
        let mut prev = origin;
        for &d in &doms {
            fbs.send(id, prev, d, SendMode::Secure).unwrap();
            prev = d;
        }
        let va = fbs.fbuf(id).unwrap().va;
        // Invariant: nobody, including the originator, can write any page.
        for i in 0..pages {
            prop_assert!(fbs.write_fbuf(origin, id, i * page, &[0]).is_err());
            for &d in &doms {
                prop_assert!(fbs.write_fbuf(d, id, i * page, &[0]).is_err());
                // But everyone can read.
                prop_assert!(fbs.read_fbuf(d, id, i * page, 1).is_ok());
            }
        }
        let _ = va;
    }

    #[test]
    fn cached_reuse_returns_zero_pte_steady_state(pages in 1u64..4, cycles in 2usize..6) {
        let mut fbs = FbufSystem::new(MachineConfig::decstation_5000_200());
        fbs.charge_clearing = false;
        let a = fbs.create_domain();
        let b = fbs.create_domain();
        let path = fbs.create_path(vec![a, b]).unwrap();
        let len = pages * fbs.machine().page_size();
        let cycle = |fbs: &mut FbufSystem| {
            let id = fbs.alloc(a, AllocMode::Cached(path), len).unwrap();
            fbs.send(id, a, b, SendMode::Volatile).unwrap();
            fbs.free(id, b).unwrap();
            fbs.free(id, a).unwrap();
        };
        cycle(&mut fbs);
        let ptes = fbs.stats().pte_updates();
        for _ in 0..cycles {
            cycle(&mut fbs);
        }
        prop_assert_eq!(fbs.stats().pte_updates(), ptes,
            "steady-state cached/volatile transfers must do no mapping work");
    }
}
