//! Property-based tests over the core data structures and invariants,
//! driven by the in-repo harness (`fbuf_sim::Checker`): each property
//! generates its inputs from a seeded `Rng` and runs for at least the case
//! count the old proptest suite used (64); failures print a replayable
//! seed.

use fbufs::fbuf::{AllocMode, FbufId, FbufSystem, SendMode};
use fbufs::net::ip;
use fbufs::sim::{Checker, Histogram, MachineConfig, Rng};
use fbufs::xkernel::{Extent, Msg};

const CASES: u64 = 64;

/// Arbitrary extent lists (bounded fbuf ids/offsets/lengths).
fn arb_extents(rng: &mut Rng) -> Vec<Extent> {
    rng.vec_with(0, 12, |r| Extent {
        fbuf: FbufId(r.below(8)),
        off: r.below(10_000),
        len: r.range(1, 5_000),
    })
}

/// The logical byte positions a message covers: (fbuf, byte) pairs in
/// order. Editing operations must preserve these exactly.
fn logical_bytes(msg: &Msg) -> Vec<(u64, u64)> {
    let mut v = Vec::new();
    for e in msg.extents() {
        for i in 0..e.len {
            v.push((e.fbuf.0, e.off + i));
        }
    }
    v
}

#[test]
fn split_preserves_every_byte() {
    Checker::new("split_preserves_every_byte")
        .cases(CASES)
        .run(|rng| {
            let extents = arb_extents(rng);
            let at = rng.below(70_000);
            let msg = Msg::from_extents(extents);
            let (head, tail) = msg.split(at);
            let mut combined = logical_bytes(&head);
            combined.extend(logical_bytes(&tail));
            assert_eq!(combined, logical_bytes(&msg));
            assert_eq!(head.len(), at.min(msg.len()));
        });
}

#[test]
fn pop_then_prepend_is_identity() {
    Checker::new("pop_then_prepend_is_identity")
        .cases(CASES)
        .run(|rng| {
            let extents = arb_extents(rng);
            let n = rng.below(5_000);
            let msg = Msg::from_extents(extents);
            let mut rest = msg.clone();
            if let Some(head) = rest.pop(n) {
                let rejoined = head.concat(&rest);
                assert_eq!(logical_bytes(&rejoined), logical_bytes(&msg));
            } else {
                assert!(msg.len() < n);
            }
        });
}

#[test]
fn truncate_is_a_prefix() {
    Checker::new("truncate_is_a_prefix")
        .cases(CASES)
        .run(|rng| {
            let extents = arb_extents(rng);
            let n = rng.below(70_000);
            let msg = Msg::from_extents(extents);
            let mut t = msg.clone();
            t.truncate(n);
            let full = logical_bytes(&msg);
            assert_eq!(logical_bytes(&t), full[..t.len() as usize].to_vec());
        });
}

#[test]
fn fragmentation_reassembly_roundtrip() {
    Checker::new("fragmentation_reassembly_roundtrip")
        .cases(CASES)
        .run(|rng| {
            let extents = arb_extents(rng);
            let pdu = rng.range(1, 9_000);
            let msg = Msg::from_extents(extents);
            let frags = ip::fragment(&msg, 1, pdu);
            // Every fragment respects the PDU bound.
            for (h, body) in &frags {
                assert!(body.len() <= pdu);
                assert_eq!(h.total_len, msg.len());
            }
            // Reassemble in a shuffled order.
            let mut order: Vec<usize> = (0..frags.len()).collect();
            rng.shuffle(&mut order);
            let mut r = ip::Reassembler::new(0);
            let mut done = None;
            for (k, &i) in order.iter().enumerate() {
                let out = r.add(frags[i].0, frags[i].1.clone());
                if k + 1 < order.len() {
                    assert!(out.is_none(), "completed early");
                } else {
                    done = out;
                }
            }
            if msg.is_empty() {
                assert!(frags.is_empty());
            } else {
                let done = done.expect("reassembly completes on the last fragment");
                assert_eq!(logical_bytes(&done), logical_bytes(&msg));
            }
        });
}

#[test]
fn allocator_never_overlaps_live_buffers() {
    Checker::new("allocator_never_overlaps_live_buffers")
        .cases(CASES)
        .run(|rng| {
            // Random interleaving of allocs (in three domains) and frees; no
            // two live fbufs may ever overlap in the shared virtual region.
            let ops = rng.vec_with(1, 40, |r| (r.below(3), r.range(1, 40_000)));
            let mut fbs = FbufSystem::new(MachineConfig::decstation_5000_200());
            let doms = [fbs.create_domain(), fbs.create_domain(), fbs.create_domain()];
            let mut live: Vec<(u64, u64, FbufId, usize)> = Vec::new();
            let page = fbs.machine().page_size();
            for (which, len) in ops {
                let d = which as usize;
                // Free one of this domain's buffers every other step.
                if live.len() % 2 == 1 {
                    if let Some(pos) = live.iter().position(|&(_, _, _, owner)| owner == d) {
                        let (_, _, id, _) = live.remove(pos);
                        fbs.free(id, doms[d]).unwrap();
                    }
                }
                // Quota/region exhaustion is an acceptable outcome; overlap
                // of live buffers never is.
                if let Ok(id) = fbs.alloc(doms[d], AllocMode::Uncached, len) {
                    let f = fbs.fbuf(id).unwrap();
                    let (start, end) = (f.va, f.va + f.pages * page);
                    assert_eq!(start % page, 0, "page aligned");
                    for &(s, e, _, _) in &live {
                        assert!(
                            end <= s || start >= e,
                            "overlap: [{start:#x},{end:#x}) vs [{s:#x},{e:#x})"
                        );
                    }
                    live.push((start, end, id, d));
                }
            }
        });
}

#[test]
fn no_writable_mapping_of_secured_pages_outside_originator() {
    Checker::new("no_writable_mapping_of_secured_pages_outside_originator")
        .cases(CASES)
        .run(|rng| {
            let pages = rng.range(1, 6);
            let receivers = rng.range(1, 3) as usize;
            let mut fbs = FbufSystem::new(MachineConfig::decstation_5000_200());
            let origin = fbs.create_domain();
            let doms: Vec<_> = (0..receivers).map(|_| fbs.create_domain()).collect();
            let page = fbs.machine().page_size();
            let id = fbs.alloc(origin, AllocMode::Uncached, pages * page).unwrap();
            fbs.write_fbuf(origin, id, 0, &[1u8]).unwrap();
            let mut prev = origin;
            for &d in &doms {
                fbs.send(id, prev, d, SendMode::Secure).unwrap();
                prev = d;
            }
            // Invariant: nobody, including the originator, can write any
            // page; everyone can read.
            for i in 0..pages {
                assert!(fbs.write_fbuf(origin, id, i * page, &[0]).is_err());
                for &d in &doms {
                    assert!(fbs.write_fbuf(d, id, i * page, &[0]).is_err());
                    assert!(fbs.read_fbuf(d, id, i * page, 1).is_ok());
                }
            }
        });
}

#[test]
fn cached_reuse_returns_zero_pte_steady_state() {
    Checker::new("cached_reuse_returns_zero_pte_steady_state")
        .cases(CASES)
        .run(|rng| {
            let pages = rng.range(1, 4);
            let cycles = rng.range(2, 6) as usize;
            let mut fbs = FbufSystem::new(MachineConfig::decstation_5000_200());
            fbs.charge_clearing = false;
            let a = fbs.create_domain();
            let b = fbs.create_domain();
            let path = fbs.create_path(vec![a, b]).unwrap();
            let len = pages * fbs.machine().page_size();
            let cycle = |fbs: &mut FbufSystem| {
                let id = fbs.alloc(a, AllocMode::Cached(path), len).unwrap();
                fbs.send(id, a, b, SendMode::Volatile).unwrap();
                fbs.free(id, b).unwrap();
                fbs.free(id, a).unwrap();
            };
            cycle(&mut fbs);
            let ptes = fbs.stats().pte_updates();
            for _ in 0..cycles {
                cycle(&mut fbs);
            }
            assert_eq!(
                fbs.stats().pte_updates(),
                ptes,
                "steady-state cached/volatile transfers must do no mapping work"
            );
        });
}

#[test]
fn retired_fbuf_ids_never_resolve_after_recycling() {
    // Generational slab handles: once an fbuf is retired its id must keep
    // failing forever, even after the arena slot has been recycled by
    // later allocations — and `live_fbufs` must track the model exactly.
    Checker::new("retired_fbuf_ids_never_resolve_after_recycling")
        .cases(CASES)
        .run(|rng| {
            let ops = rng.vec_with(1, 50, |r| (r.below(3), r.range(1, 20_000)));
            let mut fbs = FbufSystem::new(MachineConfig::decstation_5000_200());
            let dom = fbs.create_domain();
            let mut live: Vec<FbufId> = Vec::new();
            let mut retired: Vec<FbufId> = Vec::new();
            for (op, len) in ops {
                if op == 0 || live.is_empty() {
                    if let Ok(id) = fbs.alloc(dom, AllocMode::Uncached, len) {
                        assert!(
                            !retired.contains(&id),
                            "recycled slot produced a previously retired id"
                        );
                        live.push(id);
                    }
                } else {
                    let id = live.remove(len as usize % live.len());
                    fbs.free(id, dom).unwrap();
                    retired.push(id);
                }
                assert_eq!(fbs.live_fbufs(), live.len(), "arena/model count drift");
                for &id in &retired {
                    assert!(fbs.fbuf(id).is_err(), "retired {id:?} resolved");
                }
                for &id in &live {
                    assert!(fbs.fbuf(id).is_ok(), "live {id:?} lost");
                }
            }
        });
}

#[test]
fn retired_vm_object_ids_never_resolve_after_recycling() {
    // Same property one layer down: anonymous VM objects live in a
    // generational arena, so a torn-down region's ObjectId must stay dead
    // even when a new region recycles the slot.
    Checker::new("retired_vm_object_ids_never_resolve_after_recycling")
        .cases(CASES)
        .run(|rng| {
            let rounds = rng.range(2, 8);
            let mut m = fbufs::vm::Machine::new(MachineConfig::decstation_5000_200());
            let dom = m.create_domain();
            let page = m.page_size();
            let base = 0xA000_0000u64;
            let mut dead = Vec::new();
            for r in 0..rounds {
                let va = base + r * 16 * page;
                let pages = rng.range(1, 5);
                m.map_anon_region(dom, va, pages).unwrap();
                let obj = m.region_object(dom, va).expect("fresh region has object");
                assert!(m.object_live(obj));
                for &d in &dead {
                    assert!(!m.object_live(d), "retired object id resolved");
                }
                m.unmap_region(dom, va).unwrap();
                assert!(!m.object_live(obj));
                dead.push(obj);
            }
            assert_eq!(m.live_objects(), 0);
        });
}

#[test]
fn parked_reuse_round_trips_preserve_live_fbufs() {
    // Cached park → reuse cycles (with the pageout daemon occasionally
    // stealing frames) must neither leak nor retire fbuf objects: the
    // arena population is invariant and the parked id stays resolvable.
    Checker::new("parked_reuse_round_trips_preserve_live_fbufs")
        .cases(CASES)
        .run(|rng| {
            let cycles = rng.range(2, 10);
            let pages = rng.range(1, 4);
            let mut fbs = FbufSystem::new(MachineConfig::decstation_5000_200());
            let a = fbs.create_domain();
            let b = fbs.create_domain();
            let path = fbs.create_path(vec![a, b]).unwrap();
            let len = pages * fbs.machine().page_size();
            let first = fbs.alloc(a, AllocMode::Cached(path), len).unwrap();
            fbs.free(first, a).unwrap();
            let live0 = fbs.live_fbufs();
            for _ in 0..cycles {
                if rng.below(3) == 0 {
                    fbs.reclaim_frames(rng.range(1, 4) as usize);
                }
                let id = fbs.alloc(a, AllocMode::Cached(path), len).unwrap();
                assert_eq!(id, first, "LIFO reuse hands back the parked buffer");
                fbs.send(id, a, b, SendMode::Volatile).unwrap();
                fbs.free(id, b).unwrap();
                fbs.free(id, a).unwrap();
                assert_eq!(fbs.live_fbufs(), live0, "park/reuse leaked or retired");
                assert!(fbs.fbuf(id).is_ok(), "parked fbuf fell out of the arena");
            }
        });
}

#[test]
fn forged_and_stale_tokens_never_resolve_and_never_mutate_state() {
    // The generation-tag defense, as a property: no matter how a raw
    // token is forged — generation bits flipped on a live id, the id of
    // a retired buffer, or pure noise — `check_token` must refuse it,
    // must not move the simulated clock or any counter besides the
    // rejection tally, and must bill exactly one rejection to exactly
    // the probing tenant's ledger row.
    Checker::new("forged_and_stale_tokens_never_resolve_and_never_mutate_state")
        .cases(CASES)
        .run(|rng| {
            let mut fbs = FbufSystem::new(MachineConfig::decstation_5000_200());
            let a = fbs.create_domain();
            let b = fbs.create_domain();
            let path = fbs.create_path(vec![a, b]).unwrap();
            let len = fbs.machine().page_size();

            // Random live population plus one guaranteed-stale id.
            let mut live = Vec::new();
            for _ in 0..rng.range(1, 6) {
                live.push(fbs.alloc(a, AllocMode::Cached(path), len).unwrap());
            }
            let stale = fbs.alloc(a, AllocMode::Uncached, len).unwrap();
            fbs.free(stale, a).unwrap(); // uncached free retires: the id is dead
            assert!(fbs.fbuf(stale).is_err());

            for probe_round in 0..rng.range(4, 12) {
                let victim = live[rng.below(live.len() as u64) as usize];
                let raw = match probe_round % 3 {
                    // Generation bits flipped on a live id: same arena
                    // slot, wrong generation.
                    0 => victim.0 ^ ((rng.range(1, u32::MAX as u64)) << 32),
                    // A retired buffer's id replayed verbatim.
                    1 => stale.0,
                    // Pure noise, index bits included.
                    _ => rng.next_u64(),
                };
                if fbs.fbuf(FbufId(raw)).is_ok() {
                    continue; // noise accidentally minted a valid token
                }
                let dom = if rng.below(2) == 0 { a } else { b };
                let clock = fbs.machine().now();
                let before = fbs.stats().snapshot();
                let live_before = fbs.live_fbufs();
                let row_before = fbs.ledger_snapshot().dom(dom.0).rejected_tokens;

                assert!(
                    !fbs.check_token(dom, Some(path), raw),
                    "forged token {raw:#x} resolved"
                );

                assert_eq!(fbs.machine().now(), clock, "rejection charged the clock");
                assert_eq!(fbs.live_fbufs(), live_before, "rejection touched the arena");
                let mut expect = before.clone();
                expect.tokens_rejected += 1;
                assert_eq!(
                    fbs.stats().snapshot(),
                    expect,
                    "rejection moved a counter other than tokens_rejected"
                );
                assert_eq!(
                    fbs.ledger_snapshot().dom(dom.0).rejected_tokens,
                    row_before + 1,
                    "exactly one rejection billed to the probing tenant"
                );
                // Every live buffer still resolves — the forgery
                // dereferenced nothing and invalidated nothing.
                for &id in &live {
                    assert!(fbs.fbuf(id).is_ok());
                }
            }
        });
}

/// Arbitrary latency-like samples, spanning many histogram buckets
/// (zeros, small, and large values all occur).
fn arb_samples(rng: &mut Rng) -> Vec<u64> {
    rng.vec_with(0, 40, |r| {
        let shift = r.below(40) as u32;
        r.below(1u64 << shift.max(1))
    })
}

fn hist_of(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

#[test]
fn histogram_merge_is_associative_and_commutative() {
    Checker::new("histogram_merge_is_associative_and_commutative")
        .cases(CASES)
        .run(|rng| {
            let (a, b, c) = (
                hist_of(&arb_samples(rng)),
                hist_of(&arb_samples(rng)),
                hist_of(&arb_samples(rng)),
            );
            // (a + b) + c
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            // a + (b + c)
            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);
            assert_eq!(left, right, "merge associativity");
            // b + a == a + b
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            assert_eq!(ab, ba, "merge commutativity");
        });
}

#[test]
fn histogram_percentiles_are_monotone_and_bounded() {
    Checker::new("histogram_percentiles_are_monotone_and_bounded")
        .cases(CASES)
        .run(|rng| {
            let samples = arb_samples(rng);
            let h = hist_of(&samples);
            if h.is_empty() {
                return;
            }
            assert!(h.p50() <= h.p90());
            assert!(h.p90() <= h.p99());
            assert!(h.min() <= h.p50());
            assert!(h.p99() <= h.max());
            assert_eq!(h.count(), samples.len() as u64);
        });
}

#[test]
fn histogram_split_then_merge_preserves_contents() {
    Checker::new("histogram_split_then_merge_preserves_contents")
        .cases(CASES)
        .run(|rng| {
            let h = hist_of(&arb_samples(rng));
            let b = rng.below(70) as usize; // including out-of-range splits
            let (lo, hi) = h.split_at_bucket(b);
            assert_eq!(lo.count() + hi.count(), h.count(), "count preserved");
            let mut back = lo.clone();
            back.merge(&hi);
            assert_eq!(back.buckets(), h.buckets(), "bucket-exact recombination");
            assert_eq!(back.count(), h.count());
        });
}

// ---------------------------------------------------------------------------
// StatsSnapshot::merge: the algebra the sharded fleet relies on.
// ---------------------------------------------------------------------------

use fbufs::fbuf::shard::shard_of_path;
use fbufs::sim::StatsSnapshot;

/// Arbitrary snapshots over a representative spread of counters (the
/// macro generates `merge` identically for every field, so exercising a
/// subset exercises them all; the final equality compares every field).
fn arb_snapshot(rng: &mut Rng) -> StatsSnapshot {
    StatsSnapshot {
        pte_updates: rng.below(1_000),
        pages_cleared: rng.below(1_000),
        fbuf_cache_hits: rng.below(100_000),
        fbuf_cache_misses: rng.below(1_000),
        fbuf_transfers: rng.below(100_000),
        ipc_messages: rng.below(50_000),
        frames_allocated: rng.below(10_000),
        pdus_sent: rng.below(10_000),
        ..StatsSnapshot::default()
    }
}

#[test]
fn snapshot_merge_is_associative_and_commutative_with_identity() {
    Checker::new("snapshot_merge_is_associative_and_commutative_with_identity")
        .cases(CASES)
        .run(|rng| {
            let (a, b, c) = (arb_snapshot(rng), arb_snapshot(rng), arb_snapshot(rng));
            // Associativity: (a + b) + c == a + (b + c), every field.
            assert_eq!(
                a.merge(&b).merge(&c).counters(),
                a.merge(&b.merge(&c)).counters()
            );
            // Commutativity: a + b == b + a.
            assert_eq!(a.merge(&b).counters(), b.merge(&a).counters());
            // Identity: the zero snapshot is neutral on both sides.
            let zero = StatsSnapshot::default();
            assert_eq!(a.merge(&zero).counters(), a.counters());
            assert_eq!(zero.merge(&a).counters(), a.counters());
            // merge_all folds the same algebra.
            assert_eq!(
                StatsSnapshot::merge_all([&a, &b, &c]).counters(),
                a.merge(&b).merge(&c).counters()
            );
            assert_eq!(
                StatsSnapshot::merge_all(std::iter::empty()).counters(),
                zero.counters()
            );
        });
}

/// A minimal engine for the partitioning property: two-domain paths on a
/// private machine, cycled with the same alloc → RPC → send → free shape
/// the stress harness uses.
struct MiniEngine {
    sys: FbufSystem,
    paths: Vec<(fbufs::fbuf::PathId, fbufs::vm::DomainId, fbufs::vm::DomainId)>,
}

impl MiniEngine {
    fn new(npaths: u64) -> MiniEngine {
        let mut cfg = MachineConfig::decstation_5000_200();
        cfg.phys_mem = 16 << 20;
        cfg.chunk_size = 1 << 20;
        let mut sys = FbufSystem::new(cfg);
        let paths = (0..npaths)
            .map(|_| {
                let a = sys.create_domain();
                let b = sys.create_domain();
                let p = sys.create_path(vec![a, b]).expect("fresh domains");
                (p, a, b)
            })
            .collect();
        MiniEngine { sys, paths }
    }

    fn cycle(&mut self, path_index: usize) {
        let (p, a, b) = self.paths[path_index];
        let id = self
            .sys
            .alloc(a, AllocMode::Cached(p), 4096)
            .expect("cached alloc");
        self.sys.rpc_mut().call(a, b);
        self.sys.send(id, a, b, SendMode::Volatile).expect("send");
        self.sys.free(id, b).expect("free b");
        self.sys.free(id, a).expect("free a");
    }

    fn delta(&self) -> StatsSnapshot {
        self.sys.stats().snapshot()
    }
}

#[test]
fn merged_shard_snapshots_equal_single_engine_over_concatenated_workload() {
    Checker::new("merged_shard_snapshots_equal_single_engine_over_concatenated_workload")
        .cases(16)
        .run(|rng| {
            let shards = rng.range(1, 4) as usize;
            let npaths = rng.range(shards as u64, 8);
            let ops = rng.range(20, 120);
            let workload: Vec<u64> = (0..ops).map(|_| rng.below(npaths)).collect();

            // One engine owning every path, running the whole workload.
            let mut single = MiniEngine::new(npaths);
            for &p in &workload {
                single.cycle(p as usize);
            }

            // N engines, each owning its partition of the paths (the
            // fleet's round-robin scheme) and running its share.
            let mut engines: Vec<MiniEngine> = (0..shards)
                .map(|s| {
                    MiniEngine::new((0..npaths).filter(|&p| shard_of_path(p, shards) == s).count()
                        as u64)
                })
                .collect();
            for &p in &workload {
                let s = shard_of_path(p, shards);
                // Global path id -> index within the shard's partition.
                let local = (0..p).filter(|&q| shard_of_path(q, shards) == s).count();
                engines[s].cycle(local);
            }

            let deltas: Vec<StatsSnapshot> = engines.iter().map(MiniEngine::delta).collect();
            let merged = StatsSnapshot::merge_all(deltas.iter());
            assert_eq!(
                merged.counters(),
                single.delta().counters(),
                "partitioning a path-local workload across shards must not \
                 change any operation count"
            );
        });
}

/// The SPSC ring against a `VecDeque` reference model: an arbitrary
/// interleaving of pushes and pops must agree with the model on every
/// accepted value, every rejection (ring full hands the value back),
/// every popped element (strict FIFO), and the occupancy both endpoints
/// report.
#[test]
fn spsc_ring_matches_a_deque_model() {
    use std::collections::VecDeque;
    Checker::new("spsc_ring_matches_a_deque_model")
        .cases(CASES)
        .run(|rng| {
            let cap = rng.range(1, 9) as usize;
            let (mut tx, mut rx) = fbufs::sim::spsc::ring::<u64>(cap);
            let mut model: VecDeque<u64> = VecDeque::new();
            let mut next = 0u64;
            for _ in 0..rng.range(50, 400) {
                if rng.chance(0.55) {
                    let v = next;
                    next += 1;
                    match tx.push(v) {
                        Ok(()) => {
                            assert!(model.len() < cap, "push accepted past capacity");
                            model.push_back(v);
                        }
                        Err(back) => {
                            assert_eq!(back, v, "a rejected push returns its value");
                            assert_eq!(model.len(), cap, "push refused below capacity");
                        }
                    }
                } else {
                    assert_eq!(rx.pop(), model.pop_front(), "FIFO order");
                }
                assert_eq!(tx.len(), model.len());
                assert_eq!(rx.len(), model.len());
                assert_eq!(tx.is_empty(), model.is_empty());
            }
            // Drain: everything accepted comes out exactly once, in order.
            while let Some(v) = rx.pop() {
                assert_eq!(Some(v), model.pop_front());
            }
            assert!(model.is_empty(), "ring lost accepted elements");
        });
}

/// Burst operations against the scalar ops and the `VecDeque` oracle:
/// the same random schedule of offered elements and drain opportunities
/// is applied three ways — batch (`push_n`/`drain_into`), scalar
/// (`push`/`pop` loops), and the pure model — and all three must agree
/// after every step on accepted counts (backpressure outcomes), drained
/// contents (FIFO order), and occupancy. A burst is just an amortized
/// publication of the same elements, so any divergence is a bug.
#[test]
fn spsc_bursts_match_scalar_ops_and_the_deque_model() {
    use std::collections::VecDeque;
    Checker::new("spsc_bursts_match_scalar_ops_and_the_deque_model")
        .cases(CASES)
        .run(|rng| {
            let cap = rng.range(1, 9) as usize;
            let (mut btx, mut brx) = fbufs::sim::spsc::ring::<u64>(cap);
            let (mut stx, mut srx) = fbufs::sim::spsc::ring::<u64>(cap);
            let mut model: VecDeque<u64> = VecDeque::new();
            let mut next = 0u64;
            for _ in 0..rng.range(40, 200) {
                if rng.chance(0.55) {
                    // Offer the same burst to both rings and the model.
                    let burst = rng.range(0, cap as u64 + 3);
                    let vals: Vec<u64> = (0..burst).map(|i| next + i).collect();
                    next += burst;
                    let mut bq: VecDeque<u64> = vals.iter().copied().collect();
                    let accepted = btx.push_n(&mut bq);
                    let mut scalar_accepted = 0;
                    for &v in &vals {
                        match stx.push(v) {
                            Ok(()) => scalar_accepted += 1,
                            Err(back) => {
                                assert_eq!(back, v);
                                break;
                            }
                        }
                    }
                    assert_eq!(
                        accepted, scalar_accepted,
                        "batch and scalar pushes accept the same prefix"
                    );
                    let room = cap - model.len();
                    assert_eq!(accepted, (burst as usize).min(room), "model backpressure");
                    model.extend(&vals[..accepted]);
                    assert_eq!(
                        bq.iter().copied().collect::<Vec<u64>>(),
                        vals[accepted..],
                        "refused elements stay, in order"
                    );
                } else {
                    // Drain the same bounded burst from both rings.
                    let max = rng.range(0, cap as u64 + 2) as usize;
                    let mut got = Vec::new();
                    let n = brx.drain_into(&mut got, max);
                    assert_eq!(n, got.len());
                    for &v in &got {
                        assert_eq!(srx.pop(), Some(v), "scalar pops the same elements");
                        assert_eq!(model.pop_front(), Some(v), "model agrees on FIFO order");
                    }
                    if n < max {
                        assert_eq!(srx.pop(), None, "batch drained everything available");
                        assert!(model.is_empty());
                    }
                }
                assert_eq!(btx.len(), model.len());
                assert_eq!(brx.len(), model.len());
                assert_eq!(stx.len(), model.len());
            }
            // Final drain: both rings hold exactly the model's residue.
            let rest = brx.pop_n(usize::MAX);
            assert_eq!(rest, model.iter().copied().collect::<Vec<u64>>());
            for v in rest {
                assert_eq!(srx.pop(), Some(v));
            }
            assert_eq!(srx.pop(), None);
        });
}

/// Backpressure is lossless: a producer that retries every refused push
/// against a consumer that drains in arbitrary bursts delivers the whole
/// sequence intact. The refusal count is bounded by the number of
/// drain-burst boundaries (each full state persists until a pop).
#[test]
fn spsc_backpressure_retries_lose_nothing() {
    Checker::new("spsc_backpressure_retries_lose_nothing")
        .cases(CASES)
        .run(|rng| {
            let cap = rng.range(1, 5) as usize;
            let total = rng.range(20, 200);
            let (mut tx, mut rx) = fbufs::sim::spsc::ring::<u64>(cap);
            let mut got = Vec::new();
            let mut refusals = 0u64;
            let mut pending: Option<u64> = None;
            let mut sent = 0u64;
            while (got.len() as u64) < total {
                // Producer step: retry the refused value before a new one.
                if pending.is_some() || sent < total {
                    let v = pending.take().unwrap_or_else(|| {
                        let v = sent;
                        sent += 1;
                        v
                    });
                    if let Err(back) = tx.push(v) {
                        refusals += 1;
                        pending = Some(back);
                    }
                }
                // Consumer step: drain a burst only some of the time, so
                // full states actually occur.
                if rng.chance(0.4) {
                    let burst = rng.range(1, cap as u64 + 2);
                    for _ in 0..burst {
                        match rx.pop() {
                            Some(v) => got.push(v),
                            None => break,
                        }
                    }
                }
            }
            assert_eq!(got, (0..total).collect::<Vec<u64>>());
            assert!(tx.is_empty(), "all retried values eventually landed");
            // Tiny capacities under a slow consumer must exhibit real
            // backpressure, or the property is vacuous.
            if cap == 1 && total >= 50 {
                assert!(refusals > 0, "capacity-1 ring never filled");
            }
        });
}
