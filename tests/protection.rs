//! Full-stack protection and fault-injection tests: the paper's security
//! argument exercised through the public API.

use fbufs::fbuf::{AllocMode, FbufError, FbufSystem, SendMode};
use fbufs::sim::MachineConfig;
use fbufs::vm::{Fault, KERNEL_DOMAIN};
use fbufs::xkernel::integrated::{self, DagBuilder, TraverseLimits};
use fbufs::xkernel::{deliver, Msg, MsgRefs};

fn system() -> FbufSystem {
    let mut fbs = FbufSystem::new(MachineConfig::decstation_5000_200());
    integrated::install_null_template(&mut fbs);
    fbs
}

#[test]
fn immutability_is_enforced_not_assumed() {
    let mut fbs = system();
    let producer = fbs.create_domain();
    let consumer = fbs.create_domain();
    let id = fbs.alloc(producer, AllocMode::Uncached, 4096).unwrap();
    fbs.write_fbuf(producer, id, 0, b"checked data").unwrap();
    fbs.send(id, producer, consumer, SendMode::Secure).unwrap();
    // Every byte of every page is now immutable from the producer's side.
    for off in [0u64, 1, 4095] {
        assert!(
            matches!(
                fbs.write_fbuf(producer, id, off, &[0]),
                Err(FbufError::Vm(Fault::AccessViolation { .. }))
            ),
            "write at {off} must fault"
        );
    }
    // Securing is idempotent.
    fbs.secure(id, consumer).unwrap();
    // Reads remain fine on both sides.
    assert_eq!(fbs.read_fbuf(producer, id, 0, 4).unwrap(), b"chec");
    assert_eq!(fbs.read_fbuf(consumer, id, 0, 4).unwrap(), b"chec");
}

#[test]
fn write_permission_returns_with_the_free_list() {
    // "Write permissions are returned to the originator, and the fbuf is
    // placed on a free list" — after deallocation the producer can write
    // again (into its reused buffer), without affecting past receivers.
    let mut fbs = system();
    let producer = fbs.create_domain();
    let consumer = fbs.create_domain();
    let path = fbs.create_path(vec![producer, consumer]).unwrap();
    let id = fbs.alloc(producer, AllocMode::Cached(path), 64).unwrap();
    fbs.write_fbuf(producer, id, 0, b"v1").unwrap();
    fbs.send(id, producer, consumer, SendMode::Secure).unwrap();
    assert!(fbs.write_fbuf(producer, id, 0, b"v2").is_err());
    fbs.free(id, consumer).unwrap();
    // Still secured: the producer itself has not freed yet.
    assert!(fbs.write_fbuf(producer, id, 0, b"v2").is_err());
    fbs.free(id, producer).unwrap();
    let id2 = fbs.alloc(producer, AllocMode::Cached(path), 64).unwrap();
    assert_eq!(id2, id, "recycled from the free list");
    fbs.write_fbuf(producer, id2, 0, b"v2").unwrap();
}

#[test]
fn hostile_integrated_aggregate_through_proxy() {
    // A malicious producer ships a DAG whose nodes it keeps mutating and
    // whose pointers aim everywhere; the consumer must never crash and
    // never read outside the fbuf region.
    let mut fbs = system();
    let producer = fbs.create_domain();
    let consumer = fbs.create_domain();

    let data = fbs.alloc(producer, AllocMode::Uncached, 4096).unwrap();
    fbs.write_fbuf(producer, data, 0, b"real").unwrap();
    let data_va = fbs.fbuf(data).unwrap().va;
    let region_base = fbs.machine().config().fbuf_region_base;

    let mut b = DagBuilder::new(&mut fbs, producer, AllocMode::Uncached, 16).unwrap();
    let ok_leaf = b.leaf(&mut fbs, data_va, 4).unwrap();
    let wild_leaf = b.raw(&mut fbs, [1, 0x12_3456, 64]).unwrap(); // out of region
    let null_leaf = b.raw(&mut fbs, [1, region_base + (30 << 20), 8]).unwrap(); // unmapped
    let garbage = b.raw(&mut fbs, [777, 1, 2]).unwrap(); // unknown kind
    let c1 = b.concat(&mut fbs, ok_leaf, wild_leaf).unwrap();
    let c2 = b.concat(&mut fbs, null_leaf, garbage).unwrap();
    let root = b.concat(&mut fbs, c1, c2).unwrap();

    fbs.send(b.node_fbuf(), producer, consumer, SendMode::Volatile)
        .unwrap();
    fbs.send(data, producer, consumer, SendMode::Volatile)
        .unwrap();

    let out = integrated::traverse(&mut fbs, consumer, root, TraverseLimits::default()).unwrap();
    // The one honest leaf and the null-page leaf survive; the wild leaf is
    // rejected; the garbage node reads as empty.
    assert_eq!(out.range_failures, 1);
    assert!(!out.cycle_detected);
    let gathered = integrated::gather(
        &mut fbs,
        consumer,
        integrated::IntegratedMsg { root },
        TraverseLimits::default(),
    )
    .unwrap();
    // "real" plus 8 bytes from the synthetic null page (the empty-leaf
    // template pattern — safe, receiver-local, never another domain's
    // memory).
    assert_eq!(&gathered[..4], b"real");
    assert_eq!(gathered.len(), 12);
    assert!(fbs.stats().wild_reads_nullified() >= 1);
}

#[test]
fn receiver_crash_mid_path_cleans_up() {
    let mut fbs = system();
    let mut refs = MsgRefs::new();
    let producer = fbs.create_domain();
    let middle = fbs.create_domain();
    let consumer = fbs.create_domain();

    let id = fbs.alloc(producer, AllocMode::Uncached, 8192).unwrap();
    fbs.write_fbuf(producer, id, 0, b"in flight").unwrap();
    let msg = Msg::from_fbuf(id, 0, 8192);
    refs.adopt(producer, &msg);
    deliver(
        &mut fbs,
        &mut refs,
        &msg,
        producer,
        middle,
        SendMode::Volatile,
    )
    .unwrap();
    deliver(
        &mut fbs,
        &mut refs,
        &msg,
        middle,
        consumer,
        SendMode::Volatile,
    )
    .unwrap();

    // The middle domain dies abnormally without releasing anything.
    fbs.terminate_domain(middle).unwrap();

    // The consumer still reads its data.
    assert_eq!(fbs.read_fbuf(consumer, id, 0, 9).unwrap(), b"in flight");
    // Producer and consumer release normally; the buffer is retired.
    refs.release(&mut fbs, consumer, &msg).unwrap();
    refs.release(&mut fbs, producer, &msg).unwrap();
    assert!(fbs.fbuf(id).is_err());
}

#[test]
fn originator_crash_preserves_receivers_data_then_reclaims() {
    let mut fbs = system();
    let producer = fbs.create_domain();
    let consumer = fbs.create_domain();
    let frames0 = fbs.machine().free_frames();

    let id = fbs.alloc(producer, AllocMode::Uncached, 4096).unwrap();
    fbs.write_fbuf(producer, id, 0, b"survivor").unwrap();
    fbs.send(id, producer, consumer, SendMode::Volatile)
        .unwrap();
    fbs.terminate_domain(producer).unwrap();
    assert_eq!(fbs.read_fbuf(consumer, id, 0, 8).unwrap(), b"survivor");
    fbs.free(id, consumer).unwrap();
    // Everything (frames and chunks) is back.
    assert_eq!(fbs.machine().free_frames(), frames0);
}

#[test]
fn kernel_buffers_never_need_securing() {
    let mut fbs = system();
    let consumer = fbs.create_domain();
    let id = fbs.alloc(KERNEL_DOMAIN, AllocMode::Uncached, 64).unwrap();
    fbs.send(id, KERNEL_DOMAIN, consumer, SendMode::Secure)
        .unwrap();
    // Eager securing of a trusted (kernel) originator is a no-op: the
    // kernel can still write, and nothing was counted.
    fbs.write_fbuf(KERNEL_DOMAIN, id, 0, b"k").unwrap();
    assert_eq!(fbs.stats().fbufs_secured(), 0);
}

#[test]
fn quota_denial_is_clean_and_recoverable() {
    let mut fbs = system();
    let producer = fbs.create_domain();
    let consumer = fbs.create_domain();
    let path = fbs.create_path(vec![producer, consumer]).unwrap();
    let chunk = fbs.machine().config().chunk_size;
    let mut held = Vec::new();
    loop {
        match fbs.alloc(producer, AllocMode::Cached(path), chunk) {
            Ok(id) => held.push(id),
            Err(FbufError::QuotaExceeded { path: Some(p) }) => {
                assert_eq!(p, path);
                break;
            }
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    assert_eq!(held.len(), fbs.machine().config().max_chunks_per_path);
    // Freeing restores allocatability without growing the chunk count.
    let granted = fbs.stats().chunks_granted();
    fbs.free(held[0], producer).unwrap();
    fbs.alloc(producer, AllocMode::Cached(path), chunk).unwrap();
    assert_eq!(fbs.stats().chunks_granted(), granted);
}
