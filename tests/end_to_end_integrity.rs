//! Cross-crate integration: every byte written by a source application
//! arrives intact at the sink, through every mechanism and every domain
//! placement.

use fbufs::net::{DomainSetup, EndToEnd, EndToEndConfig, LoopbackConfig, LoopbackStack};
use fbufs::sim::{audit_tracer, MachineConfig};

fn machine() -> MachineConfig {
    let mut cfg = MachineConfig::decstation_5000_200();
    cfg.phys_mem = 24 << 20;
    cfg
}

#[test]
fn osiris_delivers_every_configuration() {
    for setup in [
        DomainSetup::KernelOnly,
        DomainSetup::User,
        DomainSetup::UserNetserver,
    ] {
        for cached in [true, false] {
            let cfg = if cached {
                EndToEndConfig::fig5(setup)
            } else {
                EndToEndConfig::fig6(setup)
            };
            let mut e = EndToEnd::new(machine(), cfg);
            e.tx.fbs.machine().tracer().set_enabled(true);
            e.rx.fbs.machine().tracer().set_enabled(true);
            // Several messages, odd sizes spanning fragment boundaries.
            for (i, size) in [1u64, 100, 4096, 16_384, 16_385, 100_000]
                .iter()
                .enumerate()
            {
                e.send_message(*size, 1, true)
                    .unwrap_or_else(|err| panic!("{setup:?}/{cached}: {err}"));
                assert_eq!(
                    e.received[i].len() as u64,
                    *size,
                    "{setup:?} cached={cached} size={size}"
                );
            }
            // Payloads differ per message (datagram-seeded), so any
            // cross-message buffer aliasing would show up here.
            assert_ne!(e.received[2], e.received[3][..4096].to_vec());
            // The traced event streams obey the lifecycle invariants on
            // both hosts.
            audit_tracer(&e.tx.fbs.machine().tracer()).assert_clean();
            audit_tracer(&e.rx.fbs.machine().tracer()).assert_clean();
        }
    }
}

#[test]
fn loopback_delivers_all_configurations() {
    for three in [false, true] {
        for cached in [true, false] {
            let mut s = LoopbackStack::new(machine(), LoopbackConfig::paper(three, cached));
            s.fbs.machine().tracer().set_enabled(true);
            for size in [1u64, 4095, 4096, 4097, 50_000, 300_000] {
                s.send_message(size, true)
                    .unwrap_or_else(|err| panic!("three={three} cached={cached}: {err}"));
            }
            audit_tracer(&s.fbs.machine().tracer()).assert_clean();
        }
    }
}

#[test]
fn sustained_traffic_does_not_leak() {
    let mut e = EndToEnd::new(machine(), EndToEndConfig::fig5(DomainSetup::UserNetserver));
    for i in 0..50 {
        e.send_message(64 << 10, 1, false).unwrap();
        let _ = i;
    }
    // All message references drained on both hosts.
    assert_eq!(e.tx.refs.outstanding(), 0);
    assert_eq!(e.rx.refs.outstanding(), 0);
    // Cached buffers park rather than accumulate: the live set is bounded
    // by the window's worth of buffers, not by the number of messages.
    assert!(e.tx.fbs.live_fbufs() < 40, "tx {}", e.tx.fbs.live_fbufs());
    assert!(e.rx.fbs.live_fbufs() < 80, "rx {}", e.rx.fbs.live_fbufs());
}

#[test]
fn uncached_traffic_retires_buffers_completely() {
    let mut cfg = EndToEndConfig::fig6(DomainSetup::User);
    cfg.window = 1;
    let mut e = EndToEnd::new(machine(), cfg);
    for _ in 0..10 {
        e.send_message(64 << 10, 1, false).unwrap();
    }
    // The receiver allocates uncached buffers per PDU; all must be gone.
    // (The sender's cached buffers may park.)
    let parked_rx = e.rx.fbs.live_fbufs();
    assert!(parked_rx == 0, "rx live fbufs: {parked_rx}");
}

#[test]
fn interleaved_flows_on_distinct_vcis() {
    let mut e = EndToEnd::new(machine(), EndToEndConfig::fig5(DomainSetup::User));
    // Alternate two flows; both must deliver intact data.
    for round in 0..6 {
        e.send_message(30_000, round % 2, true).unwrap();
    }
    assert_eq!(e.received.len(), 6);
    for r in &e.received {
        assert_eq!(r.len(), 30_000);
    }
}
