//! Buffer lifecycle under stress: pageout pressure, chunk recycling,
//! deallocation notices, and domain churn combined.

use fbufs::fbuf::{AllocMode, FbufSystem, SendMode};
use fbufs::sim::{audit_tracer, MachineConfig};
use fbufs::vm::KERNEL_DOMAIN;

fn small_memory_system() -> FbufSystem {
    let mut cfg = MachineConfig::decstation_5000_200();
    // Tight memory: 128 frames total.
    cfg.phys_mem = 512 << 10;
    FbufSystem::new(cfg)
}

#[test]
fn pageout_keeps_io_running_under_memory_pressure() {
    let mut fbs = small_memory_system();
    fbs.machine().tracer().set_enabled(true);
    let app = fbs.create_domain();
    let path = fbs.create_path(vec![KERNEL_DOMAIN, app]).unwrap();
    // Occupy most of memory with parked fbufs, then keep allocating:
    // reclamation must kick in rather than running out of memory.
    let mut parked = Vec::new();
    for _ in 0..20 {
        let id = fbs
            .alloc(KERNEL_DOMAIN, AllocMode::Cached(path), 4 * 4096)
            .unwrap();
        parked.push(id);
    }
    for id in parked {
        fbs.free(id, KERNEL_DOMAIN).unwrap();
    }
    // Competing system activity eats most of the remaining memory ("the
    // amount of physical memory allocated to fbufs depends on the level of
    // I/O traffic compared to other system activity").
    let hog_pages = (fbs.machine().free_frames() as u64).saturating_sub(6);
    fbs.machine_mut()
        .map_anon_region(KERNEL_DOMAIN, 0x1000_0000, hog_pages)
        .unwrap();
    for i in 0..hog_pages {
        fbs.machine_mut()
            .write(KERNEL_DOMAIN, 0x1000_0000 + i * 4096, &[1])
            .unwrap();
    }
    for round in 0..30 {
        if fbs.machine().free_frames() < 8 {
            let got = fbs.reclaim_frames(16);
            assert!(got > 0, "round {round}: nothing reclaimable");
        }
        let id = fbs
            .alloc(KERNEL_DOMAIN, AllocMode::Cached(path), 4 * 4096)
            .unwrap();
        fbs.write_fbuf(KERNEL_DOMAIN, id, 0, &[round as u8; 16])
            .unwrap();
        fbs.send(id, KERNEL_DOMAIN, app, SendMode::Volatile)
            .unwrap();
        assert_eq!(
            fbs.read_fbuf(app, id, 0, 16).unwrap(),
            vec![round as u8; 16]
        );
        fbs.free(id, app).unwrap();
        fbs.free(id, KERNEL_DOMAIN).unwrap();
    }
    assert!(
        fbs.stats().frames_reclaimed() > 0,
        "pressure exercised pageout"
    );
    // The full alloc/transfer/free/reclaim stream obeys the lifecycle
    // invariants.
    audit_tracer(&fbs.machine().tracer()).assert_clean();
}

#[test]
fn reclaimed_buffers_come_back_zeroed() {
    let mut fbs = small_memory_system();
    let app = fbs.create_domain();
    let path = fbs.create_path(vec![KERNEL_DOMAIN, app]).unwrap();
    let id = fbs
        .alloc(KERNEL_DOMAIN, AllocMode::Cached(path), 8192)
        .unwrap();
    fbs.write_fbuf(KERNEL_DOMAIN, id, 0, b"sensitive secret")
        .unwrap();
    fbs.free(id, KERNEL_DOMAIN).unwrap();
    assert_eq!(fbs.reclaim_frames(2), 2);
    // Reuse: the buffer must not leak the old contents (its frames are
    // fresh and cleared).
    let id2 = fbs
        .alloc(KERNEL_DOMAIN, AllocMode::Cached(path), 8192)
        .unwrap();
    assert_eq!(id2, id);
    let data = fbs.read_fbuf(KERNEL_DOMAIN, id2, 0, 16).unwrap();
    assert_eq!(data, vec![0u8; 16], "old contents must be discarded");
}

#[test]
fn chunks_recycle_through_domain_generations() {
    // Domains come and go; the fbuf region must not leak chunks.
    let mut fbs = small_memory_system();
    for generation in 0..10 {
        let app = fbs.create_domain();
        let id = fbs.alloc(app, AllocMode::Uncached, 16 << 10).unwrap();
        fbs.write_fbuf(app, id, 0, &[generation as u8]).unwrap();
        fbs.terminate_domain(app).unwrap();
    }
    // If chunks leaked, ten generations of 64 KB-chunk allocators would
    // eat 640 KB of a small region; instead everything was reclaimed.
    let app = fbs.create_domain();
    assert!(fbs.alloc(app, AllocMode::Uncached, 16 << 10).is_ok());
}

#[test]
fn notices_flow_back_through_regular_traffic() {
    let mut fbs = FbufSystem::new(MachineConfig::decstation_5000_200());
    let producer = fbs.create_domain();
    let consumer = fbs.create_domain();
    for _ in 0..200 {
        let id = fbs.alloc(producer, AllocMode::Uncached, 4096).unwrap();
        fbs.rpc_mut().call(producer, consumer);
        fbs.send(id, producer, consumer, SendMode::Volatile)
            .unwrap();
        fbs.free(id, consumer).unwrap();
        fbs.free(id, producer).unwrap();
    }
    let s = fbs.stats().snapshot();
    assert!(
        s.piggybacked_notices >= 190,
        "steady traffic piggybacks notices: {}",
        s.piggybacked_notices
    );
    assert_eq!(
        s.explicit_notice_messages, 0,
        "no explicit messages needed under regular RPC traffic"
    );
}

#[test]
fn mixed_cached_uncached_traffic_coexists() {
    let mut fbs = FbufSystem::new(MachineConfig::decstation_5000_200());
    let app = fbs.create_domain();
    let path = fbs.create_path(vec![KERNEL_DOMAIN, app]).unwrap();
    for i in 0..20u64 {
        let mode = if i % 3 == 0 {
            AllocMode::Uncached
        } else {
            AllocMode::Cached(path)
        };
        let id = fbs.alloc(KERNEL_DOMAIN, mode, 4096 + i * 100).unwrap();
        fbs.write_fbuf(KERNEL_DOMAIN, id, 0, &i.to_le_bytes())
            .unwrap();
        fbs.send(id, KERNEL_DOMAIN, app, SendMode::Volatile)
            .unwrap();
        assert_eq!(
            fbs.read_fbuf(app, id, 0, 8).unwrap(),
            i.to_le_bytes().to_vec()
        );
        fbs.free(id, app).unwrap();
        fbs.free(id, KERNEL_DOMAIN).unwrap();
    }
    let s = fbs.stats().snapshot();
    assert!(s.fbuf_cache_hits > 0);
    // Distinct sizes form distinct free-list size classes; all coexist.
    assert!(fbs.live_fbufs() > 0, "cached buffers parked");
}

#[test]
fn many_paths_are_independent() {
    let mut fbs = FbufSystem::new(MachineConfig::decstation_5000_200());
    let apps: Vec<_> = (0..8).map(|_| fbs.create_domain()).collect();
    let paths: Vec<_> = apps
        .iter()
        .map(|&a| fbs.create_path(vec![KERNEL_DOMAIN, a]).unwrap())
        .collect();
    // Interleave traffic over all paths.
    for round in 0..5 {
        for (i, (&app, &path)) in apps.iter().zip(&paths).enumerate() {
            let id = fbs
                .alloc(KERNEL_DOMAIN, AllocMode::Cached(path), 4096)
                .unwrap();
            fbs.write_fbuf(KERNEL_DOMAIN, id, 0, &[round, i as u8])
                .unwrap();
            fbs.send(id, KERNEL_DOMAIN, app, SendMode::Volatile)
                .unwrap();
            assert_eq!(fbs.read_fbuf(app, id, 0, 2).unwrap(), vec![round, i as u8]);
            fbs.free(id, app).unwrap();
            fbs.free(id, KERNEL_DOMAIN).unwrap();
        }
    }
    // Killing one path's app doesn't disturb the others.
    fbs.terminate_domain(apps[3]).unwrap();
    for (i, (&app, &path)) in apps.iter().zip(&paths).enumerate() {
        if i == 3 {
            assert!(fbs
                .alloc(KERNEL_DOMAIN, AllocMode::Cached(path), 4096)
                .is_err());
            continue;
        }
        let id = fbs
            .alloc(KERNEL_DOMAIN, AllocMode::Cached(path), 4096)
            .unwrap();
        fbs.send(id, KERNEL_DOMAIN, app, SendMode::Volatile)
            .unwrap();
        fbs.free(id, app).unwrap();
        fbs.free(id, KERNEL_DOMAIN).unwrap();
    }
}
