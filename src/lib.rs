//! Umbrella crate for the fbufs reproduction.
//!
//! Re-exports the workspace crates so examples and integration tests can
//! use one coherent namespace.
//!
//! Where to read more:
//!
//! * `README.md` — tour, build/repro commands, report schema;
//! * `DESIGN.md` — the system inventory (§4), experiment index (§5),
//!   calibration (§6), observability (§8), hot paths (§9), sharding
//!   (§10), fault injection and the lockstep model (§11), and the
//!   event-loop transfer engine (§12);
//! * `EXPERIMENTS.md` — paper-vs-measured results and the command
//!   matrix for regenerating every artifact.

pub use fbuf;
pub use fbuf_ipc as ipc;
pub use fbuf_model as model;
pub use fbuf_net as net;
pub use fbuf_sim as sim;
pub use fbuf_vm as vm;
pub use fbuf_xkernel as xkernel;
