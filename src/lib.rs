//! Umbrella crate for the fbufs reproduction.
//!
//! Re-exports the workspace crates so examples and integration tests can
//! use one coherent namespace. See `README.md` for a tour and `DESIGN.md`
//! for the system inventory.

pub use fbuf;
pub use fbuf_ipc as ipc;
pub use fbuf_model as model;
pub use fbuf_net as net;
pub use fbuf_sim as sim;
pub use fbuf_vm as vm;
pub use fbuf_xkernel as xkernel;
