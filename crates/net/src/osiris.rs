//! The Osiris ATM driver model and the two-host end-to-end harness
//! (Figures 5 and 6, and the §4 CPU-load experiment).
//!
//! The model captures the three bandwidth ceilings the paper identifies —
//! 516 Mb/s net link rate after ATM cell overhead, 367 Mb/s from per-cell
//! DMA start-up latency, and ≈285 Mb/s once CPU/memory traffic contends
//! for the TurboChannel — plus the driver's buffer strategy: "queues of
//! preallocated cached fbufs for the 16 most recently used data paths,
//! plus a single queue of preallocated uncached fbufs", selected by the
//! VCI of the arriving PDU *before* DMA.

use std::collections::VecDeque;

use fbuf::{FbufResult, SendMode};
use fbuf_sim::{CostCategory, EventKind, MachineConfig, Ns};
use fbuf_xkernel::Msg;

use crate::host::{AllocStrategy, DomainSetup, Fill, Host};
use crate::ip::{fragment, Reassembler};
use crate::pdu::WirePdu;
use crate::udp::{PortTable, UdpHeader};

/// Latency of an acknowledgement returning to the sender.
const ACK_LATENCY: Ns = Ns(100_000);

/// LRU table of the most recently used VCIs (data paths) for which the
/// driver keeps preallocated cached fbufs.
#[derive(Debug)]
pub struct VciTable {
    cap: usize,
    entries: Vec<u32>,
}

impl VciTable {
    /// Creates a table of `cap` entries (the paper's driver uses 16).
    pub fn new(cap: usize) -> VciTable {
        VciTable {
            cap,
            entries: Vec::new(),
        }
    }

    /// Records traffic on `vci`; returns whether it was already cached
    /// (a preallocated cached fbuf is available).
    pub fn touch(&mut self, vci: u32) -> bool {
        if let Some(pos) = self.entries.iter().position(|&v| v == vci) {
            let v = self.entries.remove(pos);
            self.entries.push(v);
            return true;
        }
        if self.entries.len() == self.cap {
            self.entries.remove(0);
        }
        self.entries.push(vci);
        false
    }

    /// Currently cached VCIs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no VCI is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Configuration of one end-to-end experiment.
#[derive(Debug, Clone)]
pub struct EndToEndConfig {
    /// Domain placement (same on both hosts).
    pub setup: DomainSetup,
    /// Receive-side driver buffers: per-VCI cached queues vs the uncached
    /// pool. ("Uncached fbufs incur additional cost only in the receiving
    /// host.")
    pub rx_cached: bool,
    /// Transmit-side protection: volatile vs eagerly secured. ("The use of
    /// non-volatile fbufs has a cost only in the transmitting host.")
    pub send_mode: SendMode,
    /// IP PDU size (16 KB in Figures 5/6; 32 KB in the CPU-load variant).
    pub pdu: u64,
    /// Sliding-window size in messages.
    pub window: usize,
    /// Model TurboChannel bus contention (285 Mb/s ceiling); disabling it
    /// is the A-series ablation exposing the raw 367 Mb/s DMA ceiling.
    pub contended: bool,
}

impl EndToEndConfig {
    /// The paper's Figure 5 configuration (cached/volatile).
    pub fn fig5(setup: DomainSetup) -> EndToEndConfig {
        EndToEndConfig {
            setup,
            rx_cached: true,
            send_mode: SendMode::Volatile,
            pdu: 16 << 10,
            window: 8,
            contended: true,
        }
    }

    /// The paper's Figure 6 configuration (uncached/non-volatile).
    pub fn fig6(setup: DomainSetup) -> EndToEndConfig {
        EndToEndConfig {
            rx_cached: false,
            send_mode: SendMode::Secure,
            ..EndToEndConfig::fig5(setup)
        }
    }
}

/// Results of a run.
#[derive(Debug, Clone)]
pub struct EndToEndReport {
    /// Application-to-application throughput in Mb/s.
    pub throughput_mbps: f64,
    /// Receive-host CPU utilization over the measured interval.
    pub rx_cpu: f64,
    /// Transmit-host CPU utilization over the measured interval.
    pub tx_cpu: f64,
    /// Elapsed simulated time of the measured interval.
    pub elapsed: Ns,
    /// PDUs received into cached fbufs.
    pub cached_rx: u64,
    /// PDUs received into uncached fbufs.
    pub uncached_rx: u64,
}

/// Two hosts joined by an Osiris null modem.
///
/// # Examples
///
/// ```
/// use fbuf_net::{DomainSetup, EndToEnd, EndToEndConfig};
/// use fbuf_sim::MachineConfig;
///
/// let mut cfg = MachineConfig::decstation_5000_200();
/// cfg.phys_mem = 16 << 20;
/// let mut e = EndToEnd::new(cfg, EndToEndConfig::fig5(DomainSetup::User));
/// // Verified payload: what the app sent is what the sink got.
/// e.send_message(50_000, 1, true)?;
/// assert_eq!(e.received[0].len(), 50_000);
/// # Ok::<(), fbuf::FbufError>(())
/// ```
#[derive(Debug)]
pub struct EndToEnd {
    /// The transmitting host.
    pub tx: Host,
    /// The receiving host.
    pub rx: Host,
    cfg: EndToEndConfig,
    wire_free: Ns,
    datagram: u64,
    reasm: Reassembler,
    vci_table: VciTable,
    ports: PortTable<()>,
    acks: VecDeque<Ns>,
    /// Gathered payloads in verify mode.
    pub received: Vec<Vec<u8>>,
}

impl EndToEnd {
    /// The UDP port the sink listens on.
    pub const SINK_PORT: u16 = 7777;

    /// Builds the pair of hosts.
    pub fn new(machine: MachineConfig, cfg: EndToEndConfig) -> EndToEnd {
        let mut tx = Host::new(
            machine.clone(),
            cfg.setup,
            AllocStrategy::Cached,
            cfg.send_mode,
        );
        let mut rx = Host::new(
            machine,
            cfg.setup,
            AllocStrategy::Cached,
            SendMode::Volatile,
        );
        // Disjoint span-id spaces: the RX machine's child spans must not
        // collide with the TX machine's datagram spans they link to.
        tx.fbs.set_span_salt(1);
        rx.fbs.set_span_salt(2);
        let mut ports = PortTable::new();
        ports.bind(Self::SINK_PORT, ());
        EndToEnd {
            tx,
            rx,
            cfg,
            wire_free: Ns::ZERO,
            datagram: 0,
            reasm: Reassembler::new(64),
            vci_table: VciTable::new(16),
            ports,
            acks: VecDeque::new(),
            received: Vec::new(),
        }
    }

    fn wire_time(&self, bytes: u64) -> Ns {
        let costs = &self.tx.fbs.machine().config().costs;
        if self.cfg.contended {
            costs.wire_time(bytes)
        } else {
            costs.dma_time_uncontended(bytes)
        }
    }

    /// Sends one message of `size` bytes on `vci`; `verify` fills it with
    /// real bytes and records what arrives.
    ///
    /// Each datagram is one causal span on the TX machine; receive-side
    /// processing runs in a per-machine child span linked to it, so a
    /// merged trace decomposes per datagram across both machines.
    pub fn send_message(&mut self, size: u64, vci: u32, verify: bool) -> FbufResult<()> {
        let span = self.tx.fbs.mint_span();
        let tracer = self.tx.fbs.machine().tracer();
        tracer.span_start(span, self.tx.app.0, None, None);
        let prev = tracer.set_current_span(Some(span));
        let out = self.send_message_in_span(size, vci, verify, span);
        tracer.set_current_span(prev);
        out
    }

    fn send_message_in_span(
        &mut self,
        size: u64,
        vci: u32,
        verify: bool,
        span: u64,
    ) -> FbufResult<()> {
        // Sliding window: block until an ack frees a slot.
        while self.acks.len() >= self.cfg.window {
            let done = self.acks.pop_front().expect("non-empty");
            self.tx.fbs.machine().clock().wait_until(done + ACK_LATENCY);
        }
        self.datagram += 1;
        let datagram = self.datagram;
        let fill = if verify {
            Fill::Bytes(
                (0..size)
                    .map(|i| (i.wrapping_mul(131).wrapping_add(datagram)) as u8)
                    .collect(),
            )
        } else {
            Fill::Touch
        };
        let msg = self.tx.build_message(size, &fill)?;
        let test_cost = self.tx.fbs.machine().costs().proto_test_msg;
        self.tx
            .fbs
            .machine_mut()
            .charge(CostCategory::Protocol, test_cost);

        // Outbound crossings: every layer below the test protocol passes
        // the message by reference (the kernel DMAs straight from the
        // frames).
        let out = self.tx.out_domains();
        for pair in out.windows(2) {
            self.tx.cross(&msg, pair[0], pair[1], false)?;
        }

        // UDP + IP on the way down.
        let costs = self.tx.fbs.machine().costs().clone();
        self.tx
            .fbs
            .machine_mut()
            .charge(CostCategory::Protocol, costs.proto_udp_pdu);
        if size > self.cfg.pdu {
            self.tx
                .fbs
                .machine_mut()
                .charge(CostCategory::Protocol, costs.proto_frag_setup);
        }
        let frags = fragment(&msg, datagram, self.cfg.pdu);
        let n = frags.len();
        for (i, (hdr, body)) in frags.into_iter().enumerate() {
            self.tx
                .fbs
                .machine_mut()
                .charge(CostCategory::Protocol, costs.proto_ip_pdu);
            self.tx
                .fbs
                .machine_mut()
                .charge(CostCategory::Driver, costs.driver_pdu);
            let payload = self.tx.dma_out_of_msg(&body)?;
            let pdu = WirePdu {
                vci,
                ip: hdr,
                udp: (i == 0).then_some(UdpHeader {
                    src_port: 1234,
                    dst_port: Self::SINK_PORT,
                    len: size,
                }),
                payload,
            };
            // Serialize onto the wire.
            self.tx.fbs.machine().tracer().instant(
                EventKind::PduTx,
                self.tx.kernel().0,
                None,
                None,
            );
            let ready = self.tx.fbs.machine().clock().now();
            let arrive = ready.max(self.wire_free) + self.wire_time(pdu.wire_bytes());
            self.wire_free = arrive;
            self.receive_pdu(pdu, arrive, verify, span)?;
            let _ = n;
        }

        // The test protocol is done with the message on the TX side.
        let mut doms = out;
        doms.dedup();
        for dom in doms {
            self.tx.release(dom, &msg)?;
        }
        Ok(())
    }

    /// Receive-side processing of one PDU arriving at `arrive`, in a
    /// child span of the TX datagram span `parent`.
    fn receive_pdu(&mut self, pdu: WirePdu, arrive: Ns, verify: bool, parent: u64) -> FbufResult<()> {
        let child = self.rx.fbs.mint_span();
        let tracer = self.rx.fbs.machine().tracer();
        tracer.span_link(child, parent, self.rx.kernel().0);
        let prev = tracer.set_current_span(Some(child));
        let out = self.receive_pdu_in_span(pdu, arrive, verify);
        tracer.set_current_span(prev);
        out
    }

    fn receive_pdu_in_span(&mut self, pdu: WirePdu, arrive: Ns, verify: bool) -> FbufResult<()> {
        let clock = self.rx.fbs.machine().clock();
        clock.wait_until(arrive);
        let costs = self.rx.fbs.machine().costs().clone();
        self.rx.fbs.machine_mut().charge(
            CostCategory::Driver,
            costs.driver_interrupt + costs.driver_pdu,
        );

        // VCI demux before DMA: cached per-path queue or uncached pool.
        let cached = self.cfg.rx_cached && self.vci_table.touch(pdu.vci);
        let stats = self.rx.fbs.stats();
        if cached {
            stats.inc_driver_cached_rx();
        } else {
            stats.inc_driver_uncached_rx();
        }
        stats.inc_pdus_sent();
        let id = self.rx.alloc_rx(pdu.payload.len() as u64, cached)?;
        self.rx.dma_into_fbuf(id, &pdu.payload)?;
        let m = Msg::from_fbuf(id, 0, pdu.payload.len() as u64);
        let kernel = self.rx.kernel();
        self.rx
            .fbs
            .machine()
            .tracer()
            .instant(EventKind::PduRx, kernel.0, None, Some(id.0));
        self.rx.refs.adopt(kernel, &m);

        // IP up.
        self.rx
            .fbs
            .machine_mut()
            .charge(CostCategory::Protocol, costs.proto_ip_pdu);
        let Some(full) = self.reasm.add(pdu.ip, m) else {
            return Ok(());
        };

        // UDP up: demux to the sink port.
        self.rx
            .fbs
            .machine_mut()
            .charge(CostCategory::Protocol, costs.proto_udp_pdu);
        if self.ports.demux(Self::SINK_PORT).is_none() {
            // Nobody listening: drop (releases the kernel's references).
            self.rx.release(kernel, &full)?;
            return Ok(());
        }

        // Up through the domains; only the app touches the body.
        let in_doms = self.rx.in_domains();
        for pair in in_doms.windows(2) {
            let body = pair[1] == *in_doms.last().expect("non-empty");
            self.rx.cross(&full, pair[0], pair[1], body)?;
        }
        let app = self.rx.app;
        if verify {
            let data = self.rx.gather(app, &full)?;
            self.received.push(data);
            let test = costs.proto_test_msg;
            self.rx
                .fbs
                .machine_mut()
                .charge(CostCategory::Protocol, test);
            self.rx.release(app, &full)?;
        } else {
            self.rx.consume(app, &full)?;
        }
        // Intermediate domains drop their references.
        let mut doms = in_doms;
        doms.dedup();
        for dom in doms {
            if dom != app {
                self.rx.release(dom, &full)?;
            } else if self.cfg.setup == DomainSetup::KernelOnly {
                // app == kernel already released by consume.
            }
        }
        self.acks.push_back(self.rx.fbs.machine().clock().now());
        Ok(())
    }

    /// Runs `count` messages of `size` bytes after a warm-up, returning
    /// throughput and CPU loads over the measured interval.
    pub fn run(&mut self, size: u64, count: usize) -> FbufResult<EndToEndReport> {
        // Warm-up: populate caches and pipelines.
        for _ in 0..2 {
            self.send_message(size, 1, false)?;
        }
        let tx_mark = self.tx.fbs.machine().clock().mark();
        let rx_mark = self.rx.fbs.machine().clock().mark();
        let rx_before = self.rx.fbs.stats().snapshot();
        for _ in 0..count {
            self.send_message(size, 1, false)?;
        }
        let rx_clock = self.rx.fbs.machine().clock();
        let elapsed = rx_clock.since(rx_mark);
        let rx_after = self.rx.fbs.stats().snapshot().delta(&rx_before);
        Ok(EndToEndReport {
            throughput_mbps: elapsed.mbps(size * count as u64),
            rx_cpu: rx_clock.utilization_since(rx_mark),
            tx_cpu: self.tx.fbs.machine().clock().utilization_since(tx_mark),
            elapsed,
            cached_rx: rx_after.driver_cached_rx,
            uncached_rx: rx_after.driver_uncached_rx,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> MachineConfig {
        let mut cfg = MachineConfig::decstation_5000_200();
        cfg.phys_mem = 16 << 20;
        cfg
    }

    #[test]
    fn vci_table_lru() {
        let mut t = VciTable::new(2);
        assert!(!t.touch(1));
        assert!(!t.touch(2));
        assert!(t.touch(1)); // 1 now most recent
        assert!(!t.touch(3)); // evicts 2
        assert!(!t.touch(2));
        assert!(t.touch(3));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn end_to_end_data_integrity() {
        for setup in [
            DomainSetup::KernelOnly,
            DomainSetup::User,
            DomainSetup::UserNetserver,
        ] {
            for cfg in [EndToEndConfig::fig5(setup), EndToEndConfig::fig6(setup)] {
                let mut e = EndToEnd::new(machine(), cfg);
                e.send_message(50_000, 1, true).unwrap();
                assert_eq!(e.received.len(), 1, "{setup:?}");
                let expected: Vec<u8> = (0..50_000u64)
                    .map(|i| (i.wrapping_mul(131).wrapping_add(1)) as u8)
                    .collect();
                assert_eq!(e.received[0], expected, "{setup:?}");
            }
        }
    }

    #[test]
    fn plateau_near_285_mbps_for_large_cached_messages() {
        // Figure 5: "the maximal throughput achieved is 285 Mb/s ... due to
        // the capacity of the DecStation's TurboChannel bus".
        let mut e = EndToEnd::new(machine(), EndToEndConfig::fig5(DomainSetup::KernelOnly));
        let r = e.run(1 << 20, 4).unwrap();
        assert!(
            (r.throughput_mbps - 285.0).abs() < 20.0,
            "got {:.0} Mb/s",
            r.throughput_mbps
        );
        assert!(r.rx_cpu < 1.0, "IO-bound, not CPU-saturated");
    }

    #[test]
    fn crossings_nearly_free_for_large_messages() {
        // "Domain crossings have virtually no effect on end-to-end
        // throughput for large messages (>256KB) when cached/volatile
        // fbufs are used."
        let size = 512 << 10;
        let mut kk = EndToEnd::new(machine(), EndToEndConfig::fig5(DomainSetup::KernelOnly));
        let mut unu = EndToEnd::new(machine(), EndToEndConfig::fig5(DomainSetup::UserNetserver));
        let t_kk = kk.run(size, 4).unwrap().throughput_mbps;
        let t_unu = unu.run(size, 4).unwrap().throughput_mbps;
        assert!(
            t_unu > 0.95 * t_kk,
            "user-netserver-user {t_unu:.0} vs kernel-kernel {t_kk:.0} Mb/s"
        );
    }

    #[test]
    fn uncached_rx_fbufs_cost_throughput() {
        // Figure 6: uncached/non-volatile fbufs degrade user-user
        // throughput by roughly 12%.
        let size = 1 << 20;
        let mut cached = EndToEnd::new(machine(), EndToEndConfig::fig5(DomainSetup::User));
        let mut uncached = EndToEnd::new(machine(), EndToEndConfig::fig6(DomainSetup::User));
        let tc = cached.run(size, 4).unwrap();
        let tu = uncached.run(size, 4).unwrap();
        assert!(tu.throughput_mbps < tc.throughput_mbps);
        let degradation = 1.0 - tu.throughput_mbps / tc.throughput_mbps;
        assert!(
            (0.05..0.30).contains(&degradation),
            "degradation {degradation:.2}"
        );
        // The uncached receiver is CPU-saturated; the cached one is not.
        assert!(tu.rx_cpu > 0.98, "uncached rx load {:.2}", tu.rx_cpu);
        assert!(tc.rx_cpu < 0.95, "cached rx load {:.2}", tc.rx_cpu);
    }

    #[test]
    fn driver_uses_uncached_pool_for_unknown_vcis() {
        let mut e = EndToEnd::new(machine(), EndToEndConfig::fig5(DomainSetup::User));
        // 20 distinct VCIs > 16-entry table: evictions force uncached use.
        for vci in 0..20u32 {
            e.send_message(4096, vci, false).unwrap();
        }
        let s = e.rx.fbs.stats().snapshot();
        assert!(s.driver_uncached_rx >= 20, "first touch of each VCI misses");
        // Re-touching a recent VCI hits the cached queue.
        e.send_message(4096, 19, false).unwrap();
        let s2 = e.rx.fbs.stats().snapshot();
        assert_eq!(s2.driver_cached_rx, s.driver_cached_rx + 1);
    }

    #[test]
    fn window_paces_the_sender() {
        let mut cfg = EndToEndConfig::fig5(DomainSetup::KernelOnly);
        cfg.window = 1;
        let mut e = EndToEnd::new(machine(), cfg);
        let r = e.run(64 << 10, 4).unwrap();
        // With a window of one, the sender idles waiting for acks.
        assert!(r.tx_cpu < 0.9, "tx load {:.2}", r.tx_cpu);
    }
}
