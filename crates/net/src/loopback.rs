//! The Figure 4 harness: UDP/IP local loopback throughput.
//!
//! "A test protocol in the originator domain repeatedly creates an
//! x-kernel message, and sends it using a UDP/IP protocol stack that
//! resides in a network server domain. IP fragments large messages into
//! PDUs of 4 KBytes. A local loopback protocol is configured below IP; it
//! turns PDUs around and sends them back up the protocol stack. Finally,
//! IP reassembles the message on the way back up, and sends it to a
//! receiver domain that contains the dummy protocol. ... The use of a
//! loopback protocol rather than a real device driver simulates an
//! infinitely fast network."

use fbuf::{AllocMode, FbufResult, FbufSystem, PathId, SendMode};
use fbuf_sim::{CostCategory, EventKind, MachineConfig, Ns};
use fbuf_vm::{DomainId, KERNEL_DOMAIN};
use fbuf_xkernel::{integrated, Msg, MsgRefs};

use crate::ip::{fragment, Reassembler};

/// Configuration of one loopback experiment.
#[derive(Debug, Clone)]
pub struct LoopbackConfig {
    /// Three protection domains (originator / network server / receiver)
    /// versus everything in a single domain.
    pub three_domains: bool,
    /// Cached (per-path) versus uncached (default-allocator) fbufs.
    pub cached: bool,
    /// Volatile versus eagerly secured transfers.
    pub send_mode: SendMode,
    /// IP PDU size (the paper uses 4 KB here).
    pub pdu: u64,
    /// Outgoing buffers are allocated at PDU granularity ("an incoming ADU
    /// is typically stored as a sequence of non-contiguous, PDU-sized
    /// buffers"); uncached per-buffer costs scale accordingly.
    pub fbuf_granularity: u64,
}

impl LoopbackConfig {
    /// The paper's configuration with 4 KB PDUs.
    pub fn paper(three_domains: bool, cached: bool) -> LoopbackConfig {
        LoopbackConfig {
            three_domains,
            cached,
            send_mode: SendMode::Volatile,
            pdu: 4096,
            fbuf_granularity: 4096,
        }
    }
}

/// The loopback protocol stack.
///
/// # Examples
///
/// ```
/// use fbuf_net::{LoopbackConfig, LoopbackStack};
/// use fbuf_sim::MachineConfig;
///
/// let mut cfg = MachineConfig::decstation_5000_200();
/// cfg.phys_mem = 16 << 20;
/// // Three domains, cached fbufs, the paper's 4 KB PDUs.
/// let mut stack = LoopbackStack::new(cfg, LoopbackConfig::paper(true, true));
/// let mbps = stack.throughput(64 << 10, 3)?;
/// assert!(mbps > 200.0);
/// # Ok::<(), fbuf::FbufError>(())
/// ```
#[derive(Debug)]
pub struct LoopbackStack {
    /// The fbuf facility.
    pub fbs: FbufSystem,
    /// Message references.
    pub refs: MsgRefs,
    cfg: LoopbackConfig,
    originator: DomainId,
    netserver: DomainId,
    receiver: DomainId,
    path: Option<PathId>,
    datagram: u64,
}

impl LoopbackStack {
    /// Builds the stack over a fresh machine.
    pub fn new(machine: MachineConfig, cfg: LoopbackConfig) -> LoopbackStack {
        let mut fbs = FbufSystem::new(machine);
        integrated::install_null_template(&mut fbs);
        let (originator, netserver, receiver) = if cfg.three_domains {
            (
                fbs.create_domain(),
                fbs.create_domain(),
                fbs.create_domain(),
            )
        } else {
            (KERNEL_DOMAIN, KERNEL_DOMAIN, KERNEL_DOMAIN)
        };
        let path = cfg.cached.then(|| {
            fbs.create_path(vec![originator, netserver, receiver])
                .expect("fresh domains")
        });
        LoopbackStack {
            fbs,
            refs: MsgRefs::new(),
            cfg,
            originator,
            netserver,
            receiver,
            path,
            datagram: 0,
        }
    }

    fn charge(&mut self, c: Ns) {
        self.fbs.machine_mut().charge(CostCategory::Protocol, c);
    }

    /// Sends one message through the stack; returns the elapsed simulated
    /// time. When `verify` is set the payload round-trip is checked
    /// byte-for-byte.
    ///
    /// Each message is one causal span: every event the stack records
    /// while it is in flight (allocs, PDU tx/rx, transfers, hops) is
    /// tagged with it, so a trace decomposes per message.
    pub fn send_message(&mut self, size: u64, verify: bool) -> FbufResult<Ns> {
        let span = self.fbs.mint_span();
        let tracer = self.fbs.machine().tracer();
        tracer.span_start(span, self.originator.0, self.path.map(|p| p.0), None);
        let prev = tracer.set_current_span(Some(span));
        let out = self.send_message_in_span(size, verify);
        tracer.set_current_span(prev);
        out
    }

    fn send_message_in_span(&mut self, size: u64, verify: bool) -> FbufResult<Ns> {
        let t0 = self.fbs.machine().clock().now();
        let costs = self.fbs.machine().costs().clone();

        // Test protocol: build the message.
        let payload: Option<Vec<u8>> = verify.then(|| {
            (0..size)
                .map(|i| (i.wrapping_mul(31).wrapping_add(self.datagram)) as u8)
                .collect()
        });
        let msg = self.build(size, payload.as_deref())?;
        self.charge(costs.proto_test_msg);

        // Cross into the network server domain.
        self.cross(&msg, self.originator, self.netserver, false)?;

        // UDP down.
        self.charge(costs.proto_udp_pdu);

        // IP down: fragment.
        self.datagram += 1;
        if size > self.cfg.pdu {
            self.charge(costs.proto_frag_setup);
        }
        let frags = fragment(&msg, self.datagram, self.cfg.pdu);
        let tracer = self.fbs.machine().tracer();
        let path = self.path.map(|p| p.0);
        let mut reasm = Reassembler::new(0);
        let mut reassembled = None;
        for (hdr, body) in frags {
            self.charge(costs.proto_ip_pdu); // IP send processing
            tracer.instant(EventKind::PduTx, self.netserver.0, path, None);
            self.charge(costs.proto_loopback_pdu); // loopback turnaround
            tracer.instant(EventKind::PduRx, self.netserver.0, path, None);
            self.charge(costs.proto_ip_pdu); // IP receive processing
            if let Some(done) = reasm.add(hdr, body) {
                reassembled = Some(done);
            }
        }
        let up = reassembled.expect("loopback reassembly always completes");

        // UDP up.
        self.charge(costs.proto_udp_pdu);

        // Cross to the receiver and consume (dummy protocol).
        // The reassembled message references the same fbufs, so adopt it in
        // the netserver before the original is dropped there.
        self.refs.adopt(self.netserver, &up);
        self.refs.release(&mut self.fbs, self.netserver, &msg)?;
        self.cross(&up, self.netserver, self.receiver, true)?;
        self.charge(costs.proto_test_msg);
        if let Some(expected) = payload {
            let got = up.gather(&mut self.fbs, self.receiver)?;
            assert_eq!(got, expected, "loopback corrupted the payload");
        } else {
            self.touch(self.receiver, &up)?;
        }

        // Tear down references: receiver, netserver (up), originator.
        self.refs.release(&mut self.fbs, self.receiver, &up)?;
        self.refs.release(&mut self.fbs, self.netserver, &up)?;
        self.refs.release(&mut self.fbs, self.originator, &msg)?;
        Ok(self.fbs.machine().clock().now() - t0)
    }

    /// Steady-state throughput in Mb/s at `size` bytes (after warm-up).
    pub fn throughput(&mut self, size: u64, iters: usize) -> FbufResult<f64> {
        for _ in 0..2 {
            self.send_message(size, false)?;
        }
        let t0 = self.fbs.machine().clock().now();
        for _ in 0..iters {
            self.send_message(size, false)?;
        }
        let dt = self.fbs.machine().clock().now() - t0;
        Ok(dt.mbps(size * iters as u64))
    }

    fn build(&mut self, size: u64, payload: Option<&[u8]>) -> FbufResult<Msg> {
        let granule = self.cfg.fbuf_granularity;
        let mode = match self.path {
            Some(p) => AllocMode::Cached(p),
            None => AllocMode::Uncached,
        };
        let page = self.fbs.machine().page_size();
        let mut msg = Msg::empty();
        let mut pos = 0u64;
        while pos < size {
            let this = granule.min(size - pos);
            let id = self.fbs.alloc(self.originator, mode, this)?;
            match payload {
                Some(data) => {
                    self.fbs.write_fbuf(
                        self.originator,
                        id,
                        0,
                        &data[pos as usize..(pos + this) as usize],
                    )?;
                }
                None => {
                    // Touch one word per page, as the paper's test does.
                    let mut off = 0;
                    while off < this {
                        self.fbs.write_fbuf(self.originator, id, off, &[0xA7])?;
                        off += page;
                    }
                }
            }
            msg = msg.concat(&Msg::from_fbuf(id, 0, this));
            pos += this;
        }
        self.refs.adopt(self.originator, &msg);
        Ok(msg)
    }

    fn cross(
        &mut self,
        msg: &Msg,
        from: DomainId,
        to: DomainId,
        body_access: bool,
    ) -> FbufResult<()> {
        if from == to {
            self.refs.adopt(to, msg);
            return Ok(());
        }
        self.fbs.hop(from, to);
        // Uncached transfers follow the base mechanism of §3.1: the
        // receive step updates the physical page tables eagerly in every
        // receiving domain ("VM map manipulations are necessary for each
        // domain transfer"). Cached transfers map only domains that access
        // the body — pass-through layers keep bare references.
        let full = body_access || !self.cfg.cached;
        for id in msg.distinct_fbufs() {
            if full {
                self.fbs.send(id, from, to, SendMode::Volatile)?;
            } else {
                self.fbs.send_reference(id, from, to)?;
            }
            if self.cfg.send_mode == SendMode::Secure {
                self.fbs.secure(id, to)?;
            }
        }
        self.refs.adopt(to, msg);
        Ok(())
    }

    fn touch(&mut self, dom: DomainId, msg: &Msg) -> FbufResult<()> {
        let page = self.fbs.machine().page_size();
        for e in msg.extents() {
            let mut off = 0;
            while off < e.len {
                self.fbs.read_fbuf(dom, e.fbuf, e.off + off, 1)?;
                off += page;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> MachineConfig {
        let mut cfg = MachineConfig::decstation_5000_200();
        cfg.phys_mem = 16 << 20;
        cfg
    }

    #[test]
    fn single_domain_roundtrip_verified() {
        let mut s = LoopbackStack::new(machine(), LoopbackConfig::paper(false, true));
        s.send_message(20_000, true).unwrap();
        s.send_message(100, true).unwrap();
    }

    #[test]
    fn three_domain_roundtrip_verified() {
        for cached in [true, false] {
            let mut s = LoopbackStack::new(machine(), LoopbackConfig::paper(true, cached));
            s.send_message(20_000, true).unwrap();
        }
    }

    #[test]
    fn no_fbuf_leaks_across_messages() {
        let mut s = LoopbackStack::new(machine(), LoopbackConfig::paper(true, false));
        for _ in 0..5 {
            s.send_message(10_000, false).unwrap();
        }
        // Uncached buffers are fully retired after each message.
        assert_eq!(s.fbs.live_fbufs(), 0);
        assert_eq!(s.refs.outstanding(), 0);
    }

    #[test]
    fn cached_buffers_park_not_leak() {
        let mut s = LoopbackStack::new(machine(), LoopbackConfig::paper(true, true));
        for _ in 0..5 {
            s.send_message(10_000, false).unwrap();
        }
        assert_eq!(s.refs.outstanding(), 0);
        // Parked on the free list, bounded by one message's worth.
        assert!(s.fbs.live_fbufs() <= 3);
        assert!(s.fbs.stats().fbuf_cache_hits() > 0);
    }

    #[test]
    fn cached_beats_uncached_by_over_2x() {
        // "The use of cached fbufs leads to a more than twofold improvement
        // in throughput over uncached fbufs for the entire range of message
        // sizes." Our calibration reaches 2x from 64 KB up; below that,
        // IPC latency (common to both curves) compresses the ratio — see
        // EXPERIMENTS.md.
        for size in [65_536u64, 1 << 20] {
            let mut c = LoopbackStack::new(machine(), LoopbackConfig::paper(true, true));
            let mut u = LoopbackStack::new(machine(), LoopbackConfig::paper(true, false));
            let tc = c.throughput(size, 3).unwrap();
            let tu = u.throughput(size, 3).unwrap();
            assert!(
                tc > 2.0 * tu,
                "cached {tc:.0} vs uncached {tu:.0} Mb/s at {size} bytes"
            );
        }
        // Cached still clearly ahead for small messages.
        let mut c = LoopbackStack::new(machine(), LoopbackConfig::paper(true, true));
        let mut u = LoopbackStack::new(machine(), LoopbackConfig::paper(true, false));
        let tc = c.throughput(4096, 3).unwrap();
        let tu = u.throughput(4096, 3).unwrap();
        assert!(
            tc > 1.2 * tu,
            "cached {tc:.0} vs uncached {tu:.0} Mb/s at 4 KB"
        );
    }

    #[test]
    fn fragmentation_anomaly_in_single_domain_curve() {
        // The single-domain curve dips just past the 4 KB PDU size because
        // a fixed fragmentation overhead sets in.
        let mut s = LoopbackStack::new(machine(), LoopbackConfig::paper(false, true));
        let at_4k = s.throughput(4096, 3).unwrap();
        let at_8k = s.throughput(8192, 3).unwrap();
        assert!(
            at_4k > at_8k,
            "expected a dip: 4KB {at_4k:.0} vs 8KB {at_8k:.0} Mb/s"
        );
        // Amortized away for much larger messages.
        let at_1m = s.throughput(1 << 20, 2).unwrap();
        assert!(at_1m > at_4k);
    }

    #[test]
    fn large_message_crossings_nearly_free_with_cached_fbufs() {
        // Cached 3-domain throughput approaches the single-domain curve for
        // large messages.
        let size = 1 << 20;
        let mut one = LoopbackStack::new(machine(), LoopbackConfig::paper(false, true));
        let mut three = LoopbackStack::new(machine(), LoopbackConfig::paper(true, true));
        let t1 = one.throughput(size, 2).unwrap();
        let t3 = three.throughput(size, 2).unwrap();
        assert!(
            t3 > 0.9 * t1,
            "3-domain {t3:.0} should be >90% of single-domain {t1:.0} Mb/s"
        );
    }
}
