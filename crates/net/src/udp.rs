//! UDP: port demultiplexing and an optional real checksum.

use std::collections::HashMap;

use fbuf::{FbufResult, FbufSystem};
use fbuf_sim::{CostCategory, Ns};
use fbuf_vm::DomainId;
use fbuf_xkernel::Msg;

/// The UDP header fields the reproduction carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Datagram length.
    pub len: u64,
}

/// A UDP endpoint table: destination port → opaque endpoint token.
///
/// Real demultiplexing matters for the driver's path identification: "an
/// application can easily identify the I/O data path of a buffer at the
/// time of allocation by referring to the communication endpoint it
/// intends to use."
#[derive(Debug, Default)]
pub struct PortTable<T> {
    ports: HashMap<u16, T>,
    /// Datagrams dropped for want of a bound port.
    pub dropped: u64,
}

impl<T> PortTable<T> {
    /// Creates an empty table.
    pub fn new() -> PortTable<T> {
        PortTable {
            ports: HashMap::new(),
            dropped: 0,
        }
    }

    /// Binds `port`; returns `false` if already bound.
    pub fn bind(&mut self, port: u16, endpoint: T) -> bool {
        if self.ports.contains_key(&port) {
            return false;
        }
        self.ports.insert(port, endpoint);
        true
    }

    /// Unbinds a port, returning its endpoint.
    pub fn unbind(&mut self, port: u16) -> Option<T> {
        self.ports.remove(&port)
    }

    /// Demuxes a datagram; `None` counts a drop.
    pub fn demux(&mut self, port: u16) -> Option<&T> {
        if self.ports.contains_key(&port) {
            self.ports.get(&port)
        } else {
            self.dropped += 1;
            None
        }
    }
}

/// Computes the UDP checksum over a message by actually reading every byte
/// through `dom`'s mappings, charging the per-byte cost. Used by the
/// CPU-load experiments to model a protocol that inspects payloads.
pub fn checksum(fbs: &mut FbufSystem, dom: DomainId, msg: &Msg) -> FbufResult<u16> {
    let per_byte = fbs.machine().costs().checksum_per_byte;
    let bytes = msg.gather(fbs, dom)?;
    fbs.machine_mut().charge(
        CostCategory::Protocol,
        Ns(per_byte.as_ns() * bytes.len() as u64),
    );
    // Internet one's-complement sum.
    let mut sum: u32 = 0;
    for chunk in bytes.chunks(2) {
        let word = u16::from_be_bytes([chunk[0], *chunk.get(1).unwrap_or(&0)]) as u32;
        sum += word;
        sum = (sum & 0xffff) + (sum >> 16);
    }
    Ok(!(sum as u16))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbuf::AllocMode;
    use fbuf_sim::MachineConfig;

    #[test]
    fn bind_demux_unbind() {
        let mut t: PortTable<u32> = PortTable::new();
        assert!(t.bind(53, 1));
        assert!(!t.bind(53, 2), "double bind rejected");
        assert_eq!(t.demux(53), Some(&1));
        assert_eq!(t.demux(99), None);
        assert_eq!(t.dropped, 1);
        assert_eq!(t.unbind(53), Some(1));
        assert_eq!(t.demux(53), None);
    }

    #[test]
    fn checksum_reads_and_charges() {
        let mut fbs = FbufSystem::new(MachineConfig::decstation_5000_200());
        let a = fbs.create_domain();
        let id = fbs.alloc(a, AllocMode::Uncached, 1000).unwrap();
        fbs.write_fbuf(a, id, 0, &[0xABu8; 1000]).unwrap();
        let msg = Msg::from_fbuf(id, 0, 1000);
        let t0 = fbs.machine().clock().now();
        let sum = checksum(&mut fbs, a, &msg).unwrap();
        let dt = fbs.machine().clock().now() - t0;
        // Charged at least the per-byte cost for every byte.
        assert!(dt.as_ns() >= 15 * 1000, "checksum too cheap: {dt}");
        // Deterministic value for a constant payload.
        let again = checksum(&mut fbs, a, &msg).unwrap();
        assert_eq!(sum, again);
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut fbs = FbufSystem::new(MachineConfig::tiny());
        let a = fbs.create_domain();
        let id = fbs.alloc(a, AllocMode::Uncached, 100).unwrap();
        fbs.write_fbuf(a, id, 0, &[1u8; 100]).unwrap();
        let msg = Msg::from_fbuf(id, 0, 100);
        let before = checksum(&mut fbs, a, &msg).unwrap();
        fbs.write_fbuf(a, id, 50, &[2u8]).unwrap();
        let after = checksum(&mut fbs, a, &msg).unwrap();
        assert_ne!(before, after);
    }
}
