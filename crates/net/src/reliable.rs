//! A reliable transport over a lossy link: why copy semantics matter.
//!
//! §2.1.3: "Copy semantics are required when the passing layer needs to
//! retain access to the buffer, for example, because it may need to
//! retransmit it sometime in the future. Note that there are no
//! performance advantages in providing move rather than copy semantics
//! since buffers are immutable" — and conversely, §2.2.1 faults page
//! remapping because "move ... semantics limits its utility to situations
//! where the sender needs no further access to the transferred data."
//!
//! [`ReliableChannel`] is a selective-repeat ARQ transport built on fbufs:
//! the sender *retains its reference* to every in-flight segment (free —
//! the buffer is shared, not copied) and retransmits from the very same
//! fbuf on loss. The companion test shows the same protocol is
//! unimplementable over the move-semantics remap facility.

use core::fmt;
use std::collections::BTreeMap;

use fbuf::{AllocMode, FbufError, FbufResult, FbufSystem, PathId, SendMode};
use fbuf_sim::{CostCategory, Ns};
use fbuf_vm::DomainId;
use fbuf_xkernel::{Msg, MsgRefs};

/// Retransmission timeout charged (as sender idle time) per lost segment.
const RTO: Ns = Ns(2_000_000);

/// Transport-level failures.
#[derive(Debug, PartialEq, Eq)]
pub enum TransportError {
    /// A segment exceeded its retry budget.
    RetriesExhausted {
        /// Sequence number of the abandoned segment.
        seq: u64,
        /// Transmission attempts made.
        attempts: u32,
    },
    /// An underlying buffer operation failed.
    Fbuf(FbufError),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::RetriesExhausted { seq, attempts } => {
                write!(f, "segment {seq} abandoned after {attempts} attempts")
            }
            TransportError::Fbuf(e) => write!(f, "buffer error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<FbufError> for TransportError {
    fn from(e: FbufError) -> TransportError {
        TransportError::Fbuf(e)
    }
}

/// Configuration of the lossy reliable channel.
#[derive(Debug, Clone)]
pub struct ReliableConfig {
    /// Drop every Nth transmission on the simulated wire (0 = lossless).
    pub drop_every: u64,
    /// Give up after this many retransmissions of one segment.
    pub max_retries: u32,
    /// Segment size in bytes.
    pub segment: u64,
}

impl Default for ReliableConfig {
    fn default() -> ReliableConfig {
        ReliableConfig {
            drop_every: 0,
            max_retries: 8,
            segment: 4096,
        }
    }
}

/// Per-channel statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReliableStats {
    /// Segments handed to the wire (including retransmissions).
    pub transmissions: u64,
    /// Segments the wire dropped.
    pub drops: u64,
    /// Retransmissions performed.
    pub retransmissions: u64,
    /// Segments delivered to the receiver, in order.
    pub delivered: u64,
}

/// A reliable, in-order byte channel between two domains over a lossy
/// simulated wire.
#[derive(Debug)]
pub struct ReliableChannel {
    cfg: ReliableConfig,
    sender: DomainId,
    receiver: DomainId,
    path: PathId,
    next_seq: u64,
    next_expected: u64,
    /// Out-of-order segments parked at the receiver.
    reorder: BTreeMap<u64, Msg>,
    /// In-order payload the receiver has accepted.
    received: Vec<u8>,
    tx_count: u64,
    /// Statistics.
    pub stats: ReliableStats,
}

impl ReliableChannel {
    /// Creates a channel (and its data path) between two registered
    /// domains.
    pub fn new(
        fbs: &mut FbufSystem,
        sender: DomainId,
        receiver: DomainId,
        cfg: ReliableConfig,
    ) -> FbufResult<ReliableChannel> {
        let path = fbs.create_path(vec![sender, receiver])?;
        Ok(ReliableChannel {
            cfg,
            sender,
            receiver,
            path,
            next_seq: 0,
            next_expected: 0,
            reorder: BTreeMap::new(),
            received: Vec::new(),
            tx_count: 0,
            stats: ReliableStats::default(),
        })
    }

    /// True if the wire eats this transmission.
    fn wire_drops(&mut self) -> bool {
        self.tx_count += 1;
        self.cfg.drop_every > 0 && self.tx_count.is_multiple_of(self.cfg.drop_every)
    }

    /// Sends `data` reliably; returns when every segment has been
    /// delivered and acknowledged (or fails after `max_retries`).
    pub fn send(
        &mut self,
        fbs: &mut FbufSystem,
        refs: &mut MsgRefs,
        data: &[u8],
    ) -> Result<(), TransportError> {
        for chunk in data.chunks(self.cfg.segment as usize) {
            let seq = self.next_seq;
            self.next_seq += 1;
            // Build the segment in a cached fbuf and keep our reference —
            // that *is* the retransmission buffer; no copy is ever made.
            let id = fbs.alloc(
                self.sender,
                AllocMode::Cached(self.path),
                chunk.len() as u64,
            )?;
            fbs.write_fbuf(self.sender, id, 0, chunk)?;
            let msg = Msg::from_fbuf(id, 0, chunk.len() as u64);
            refs.adopt(self.sender, &msg);

            let mut attempt = 0;
            loop {
                self.stats.transmissions += 1;
                fbs.hop(self.sender, self.receiver);
                if self.wire_drops() {
                    self.stats.drops += 1;
                    attempt += 1;
                    if attempt > self.cfg.max_retries {
                        // Give up; release our retained reference.
                        refs.release(fbs, self.sender, &msg)?;
                        return Err(TransportError::RetriesExhausted {
                            seq,
                            attempts: attempt,
                        });
                    }
                    // Timeout, then retransmit *the same fbuf*.
                    fbs.machine().clock().idle_for(RTO);
                    self.stats.retransmissions += 1;
                    continue;
                }
                // Delivered: grant the receiver its reference.
                fbs.send(id, self.sender, self.receiver, SendMode::Volatile)?;
                refs.adopt(self.receiver, &msg);
                self.deliver(fbs, refs, seq, msg.clone())?;
                break;
            }
            // Acked (the synchronous model acknowledges on delivery): the
            // sender releases its retained reference; the cached buffer
            // parks for reuse.
            let ack_cost = fbs.machine().costs().ipc_dispatch;
            fbs.machine_mut().charge(CostCategory::Protocol, ack_cost);
            refs.release(fbs, self.sender, &msg)?;
        }
        Ok(())
    }

    /// Receiver-side segment processing with in-order delivery.
    fn deliver(
        &mut self,
        fbs: &mut FbufSystem,
        refs: &mut MsgRefs,
        seq: u64,
        msg: Msg,
    ) -> FbufResult<()> {
        self.reorder.insert(seq, msg);
        while let Some(msg) = self.reorder.remove(&self.next_expected) {
            // The receiver distrusts the (volatile) contents only at the
            // moment it commits them; a paranoid receiver would secure —
            // here it consumes immediately, which is equivalent.
            self.received.extend(msg.gather(fbs, self.receiver)?);
            refs.release(fbs, self.receiver, &msg)?;
            self.next_expected += 1;
            self.stats.delivered += 1;
        }
        Ok(())
    }

    /// Everything delivered in order so far.
    pub fn received(&self) -> &[u8] {
        &self.received
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbuf_sim::MachineConfig;
    use fbuf_vm::facility::{RemapFacility, TransferMechanism};
    use fbuf_vm::Machine;

    fn setup() -> (FbufSystem, MsgRefs, DomainId, DomainId) {
        let mut fbs = FbufSystem::new(MachineConfig::decstation_5000_200());
        let a = fbs.create_domain();
        let b = fbs.create_domain();
        (fbs, MsgRefs::new(), a, b)
    }

    #[test]
    fn lossless_delivery() {
        let (mut fbs, mut refs, a, b) = setup();
        let mut ch = ReliableChannel::new(&mut fbs, a, b, ReliableConfig::default()).unwrap();
        let data: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        ch.send(&mut fbs, &mut refs, &data).unwrap();
        assert_eq!(ch.received(), &data[..]);
        assert_eq!(ch.stats.retransmissions, 0);
        assert_eq!(ch.stats.delivered, 5);
    }

    #[test]
    fn lossy_wire_retransmits_from_the_retained_buffer() {
        let (mut fbs, mut refs, a, b) = setup();
        let cfg = ReliableConfig {
            drop_every: 3,
            ..ReliableConfig::default()
        };
        let mut ch = ReliableChannel::new(&mut fbs, a, b, cfg).unwrap();
        let data: Vec<u8> = (0..40_000u32).map(|i| (i % 241) as u8).collect();
        let copies0 = fbs.stats().pages_copied();
        ch.send(&mut fbs, &mut refs, &data).unwrap();
        assert_eq!(ch.received(), &data[..]);
        assert!(ch.stats.drops > 0);
        assert_eq!(ch.stats.retransmissions, ch.stats.drops);
        // Retransmission never copied a byte: the retained fbuf is shared.
        assert_eq!(fbs.stats().pages_copied(), copies0);
        // And no buffers leaked: everything parked back on the path cache.
        assert_eq!(refs.outstanding(), 0);
    }

    #[test]
    fn heavy_loss_eventually_gives_up_cleanly() {
        let (mut fbs, mut refs, a, b) = setup();
        let cfg = ReliableConfig {
            drop_every: 1, // the wire drops everything
            max_retries: 3,
            ..ReliableConfig::default()
        };
        let mut ch = ReliableChannel::new(&mut fbs, a, b, cfg).unwrap();
        assert!(matches!(
            ch.send(&mut fbs, &mut refs, b"doomed"),
            Err(TransportError::RetriesExhausted {
                seq: 0,
                attempts: 4
            })
        ));
        // The failed segment's buffer was released, not leaked.
        assert_eq!(refs.outstanding(), 0);
        assert_eq!(ch.stats.delivered, 0);
    }

    #[test]
    fn retained_references_bound_not_grow() {
        let (mut fbs, mut refs, a, b) = setup();
        let cfg = ReliableConfig {
            drop_every: 4,
            ..ReliableConfig::default()
        };
        let mut ch = ReliableChannel::new(&mut fbs, a, b, cfg).unwrap();
        for round in 0..10u8 {
            ch.send(&mut fbs, &mut refs, &[round; 10_000]).unwrap();
        }
        // The cached path recycles segments: live buffers stay bounded by
        // one message's worth, not 10 rounds' worth.
        assert!(fbs.live_fbufs() <= 4, "live: {}", fbs.live_fbufs());
        assert_eq!(ch.stats.delivered, 30);
    }

    #[test]
    fn move_semantics_cannot_retransmit() {
        // The §2.2.1 argument, demonstrated: after a remap transfer the
        // sender has lost access, so a retransmission source is gone.
        let mut m = Machine::new(MachineConfig::decstation_5000_200());
        let a = m.create_domain();
        let b = m.create_domain();
        let mut remap = RemapFacility::new(0.0);
        let va = remap.alloc(&mut m, a, 4096).unwrap();
        m.write(a, va, b"segment").unwrap();
        remap.transfer(&mut m, a, va, 4096, b).unwrap();
        // Suppose the wire dropped it: the sender tries to read its copy
        // for retransmission — and faults.
        assert!(m.read(a, va, 7).is_err(), "move semantics lost the data");
        // Whereas fbufs retain it for free.
        let (mut fbs, mut refs, a, b) = setup();
        let mut ch = ReliableChannel::new(&mut fbs, a, b, ReliableConfig::default()).unwrap();
        ch.send(&mut fbs, &mut refs, b"segment").unwrap();
        assert_eq!(ch.received(), b"segment");
    }
}
