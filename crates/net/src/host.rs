//! A simulated host: fbuf system + protocol-stack domain placement.

use fbuf::{AllocMode, FbufId, FbufResult, FbufSystem, PathId, SendMode};
use fbuf_sim::{CostCategory, MachineConfig};
use fbuf_vm::{DomainId, KERNEL_DOMAIN};
use fbuf_xkernel::{integrated, Msg, MsgRefs};

/// Where the protocol stack's layers live (paper §4, Figures 5/6 legends).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainSetup {
    /// Everything — driver, IP, UDP, test protocol — in the kernel
    /// ("kernel-kernel", the no-crossing baseline).
    KernelOnly,
    /// Driver, IP, UDP in the kernel; test protocol in a user domain
    /// ("user-user": one kernel/user crossing per host).
    User,
    /// Driver and IP in the kernel; UDP in a user-level network server;
    /// test protocol in a user application ("user-netserver-user": a
    /// kernel/user and a user/user crossing per host).
    UserNetserver,
}

impl DomainSetup {
    /// Number of protection domains the data path intersects.
    pub fn domains(self) -> usize {
        match self {
            DomainSetup::KernelOnly => 1,
            DomainSetup::User => 2,
            DomainSetup::UserNetserver => 3,
        }
    }
}

/// Which allocator the app's outgoing buffers come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocStrategy {
    /// Per-path allocator (cached fbufs).
    Cached,
    /// Default allocator (uncached fbufs).
    Uncached,
}

/// How outgoing messages are filled.
#[derive(Debug, Clone)]
pub enum Fill {
    /// Write one marker word per page (the paper's throughput tests:
    /// "writes one word in each VM page").
    Touch,
    /// Write real payload bytes (integrity tests).
    Bytes(Vec<u8>),
}

/// One simulated host.
#[derive(Debug)]
pub struct Host {
    /// The fbuf facility (owns machine + RPC).
    pub fbs: FbufSystem,
    /// Message reference counts.
    pub refs: MsgRefs,
    /// Domain placement.
    pub setup: DomainSetup,
    /// Outgoing-buffer allocation strategy.
    pub alloc: AllocStrategy,
    /// Outgoing-transfer protection mode (volatile vs eagerly secured).
    pub send_mode: SendMode,
    /// The application domain (== kernel for [`DomainSetup::KernelOnly`]).
    pub app: DomainId,
    /// The network-server domain, if any.
    pub netserver: Option<DomainId>,
    out_path: Option<PathId>,
    in_path: Option<PathId>,
}

impl Host {
    /// Builds a host with the given placement and buffer regime.
    pub fn new(
        cfg: MachineConfig,
        setup: DomainSetup,
        alloc: AllocStrategy,
        send_mode: SendMode,
    ) -> Host {
        let mut fbs = FbufSystem::new(cfg);
        integrated::install_null_template(&mut fbs);
        let (app, netserver) = match setup {
            DomainSetup::KernelOnly => (KERNEL_DOMAIN, None),
            DomainSetup::User => (fbs.create_domain(), None),
            DomainSetup::UserNetserver => {
                let ns = fbs.create_domain();
                let app = fbs.create_domain();
                (app, Some(ns))
            }
        };
        let mut host = Host {
            fbs,
            refs: MsgRefs::new(),
            setup,
            alloc,
            send_mode,
            app,
            netserver,
            out_path: None,
            in_path: None,
        };
        if alloc == AllocStrategy::Cached {
            host.out_path = Some(
                host.fbs
                    .create_path(host.out_domains())
                    .expect("fresh domains"),
            );
        }
        // The inbound path is always available: the driver identifies it
        // from the PDU's VCI; whether it *uses* it is the driver's choice.
        host.in_path = Some(
            host.fbs
                .create_path(host.in_domains())
                .expect("fresh domains"),
        );
        host
    }

    /// The kernel domain.
    pub fn kernel(&self) -> DomainId {
        KERNEL_DOMAIN
    }

    /// Outbound hop sequence: app, (netserver), kernel. Degenerates to
    /// `[kernel, kernel]` for the kernel-only setup so a data path can
    /// still be declared.
    pub fn out_domains(&self) -> Vec<DomainId> {
        match self.setup {
            DomainSetup::KernelOnly => vec![KERNEL_DOMAIN, KERNEL_DOMAIN],
            DomainSetup::User => vec![self.app, KERNEL_DOMAIN],
            DomainSetup::UserNetserver => vec![
                self.app,
                self.netserver.expect("netserver setup"),
                KERNEL_DOMAIN,
            ],
        }
    }

    /// Inbound hop sequence: kernel, (netserver), app.
    pub fn in_domains(&self) -> Vec<DomainId> {
        let mut v = self.out_domains();
        v.reverse();
        v
    }

    /// The inbound (driver-side) data path.
    pub fn in_path(&self) -> PathId {
        self.in_path.expect("in path always created")
    }

    /// Maximum bytes per fbuf (one chunk).
    fn max_fbuf(&self) -> u64 {
        self.fbs.machine().config().chunk_size
    }

    /// Builds an outgoing message of `size` bytes in the app domain,
    /// spread over as many fbufs as the chunk size requires, and fills it.
    pub fn build_message(&mut self, size: u64, fill: &Fill) -> FbufResult<Msg> {
        let max = self.max_fbuf();
        let mode = match (self.alloc, self.out_path) {
            (AllocStrategy::Cached, Some(p)) => AllocMode::Cached(p),
            _ => AllocMode::Uncached,
        };
        let mut msg = Msg::empty();
        let mut remaining = size;
        let mut written = 0u64;
        while remaining > 0 {
            let this = remaining.min(max);
            let id = self.fbs.alloc(self.app, mode, this)?;
            self.fill_fbuf(id, this, written, fill)?;
            msg = msg.concat(&Msg::from_fbuf(id, 0, this));
            remaining -= this;
            written += this;
        }
        self.refs.adopt(self.app, &msg);
        Ok(msg)
    }

    fn fill_fbuf(&mut self, id: FbufId, len: u64, base: u64, fill: &Fill) -> FbufResult<()> {
        match fill {
            Fill::Touch => {
                let page = self.fbs.machine().page_size();
                let mut off = 0;
                while off < len {
                    self.fbs.write_fbuf(self.app, id, off, &[0xA7])?;
                    off += page;
                }
                Ok(())
            }
            Fill::Bytes(data) => {
                let slice = &data[base as usize..(base + len) as usize];
                self.fbs.write_fbuf(self.app, id, 0, slice)
            }
        }
    }

    /// Carries a message across one domain boundary: one RPC plus a
    /// transfer per distinct fbuf. `body_access` decides whether the
    /// receiver gets mappings (false models pass-through layers like the
    /// netserver's UDP, which "does not access the message's body").
    /// Same-domain hops are free.
    pub fn cross(
        &mut self,
        msg: &Msg,
        from: DomainId,
        to: DomainId,
        body_access: bool,
    ) -> FbufResult<()> {
        if from == to {
            return Ok(());
        }
        self.fbs.hop(from, to);
        if self.setup.domains() >= 3 {
            // Cache/TLB pollution of the third domain (paper §4).
            let penalty = self.fbs.machine().costs().crossing_cache_penalty;
            self.fbs.machine_mut().charge(CostCategory::Other, penalty);
        }
        for id in msg.distinct_fbufs() {
            if body_access {
                self.fbs.send(id, from, to, SendMode::Volatile)?;
            } else {
                self.fbs.send_reference(id, from, to)?;
            }
            if self.send_mode == SendMode::Secure {
                self.fbs.secure(id, to)?;
            }
        }
        self.refs.adopt(to, msg);
        Ok(())
    }

    /// The dummy protocol: touches (reads) one word in each page of the
    /// message, then releases the domain's reference.
    pub fn consume(&mut self, dom: DomainId, msg: &Msg) -> FbufResult<()> {
        let test_cost = self.fbs.machine().costs().proto_test_msg;
        self.fbs
            .machine_mut()
            .charge(CostCategory::Protocol, test_cost);
        let page = self.fbs.machine().page_size();
        for e in msg.extents() {
            let mut off = 0;
            while off < e.len {
                self.fbs.read_fbuf(dom, e.fbuf, e.off + off, 1)?;
                off += page;
            }
        }
        self.release(dom, msg)
    }

    /// Gathers the full message contents as `dom` (integrity checks).
    pub fn gather(&mut self, dom: DomainId, msg: &Msg) -> FbufResult<Vec<u8>> {
        msg.gather(&mut self.fbs, dom)
    }

    /// Releases `dom`'s message reference.
    pub fn release(&mut self, dom: DomainId, msg: &Msg) -> FbufResult<()> {
        self.refs.release(&mut self.fbs, dom, msg)
    }

    /// Allocates a driver receive buffer in the kernel: from the inbound
    /// path's cache if `cached`, else from the default allocator. Clearing
    /// is never charged — an arriving PDU overwrites the whole buffer by
    /// DMA.
    pub fn alloc_rx(&mut self, len: u64, cached: bool) -> FbufResult<FbufId> {
        let mode = if cached {
            AllocMode::Cached(self.in_path())
        } else {
            AllocMode::Uncached
        };
        let was = self.fbs.charge_clearing;
        self.fbs.charge_clearing = false;
        let r = self.fbs.alloc(KERNEL_DOMAIN, mode, len);
        self.fbs.charge_clearing = was;
        r
    }

    /// Writes arriving payload bytes into an fbuf by DMA (no CPU charge;
    /// the caller accounts for wire/DMA time).
    pub fn dma_into_fbuf(&mut self, id: FbufId, bytes: &[u8]) -> FbufResult<()> {
        let page = self.fbs.machine().page_size() as usize;
        let frames: Vec<_> = {
            let f = self.fbs.fbuf(id)?;
            f.frames
                .iter()
                .map(|s| s.expect("rx fbuf resident"))
                .collect()
        };
        for (i, chunk) in bytes.chunks(page).enumerate() {
            self.fbs.machine_mut().dma_write(frames[i], 0, chunk);
        }
        Ok(())
    }

    /// Reads a message's payload out by DMA (transmit side; no CPU
    /// charge).
    pub fn dma_out_of_msg(&mut self, msg: &Msg) -> FbufResult<Vec<u8>> {
        let page = self.fbs.machine().page_size();
        let mut out = Vec::with_capacity(msg.len() as usize);
        for e in msg.extents() {
            let (va0, frames) = {
                let f = self.fbs.fbuf(e.fbuf)?;
                (f.va, f.frames.clone())
            };
            let mut pos = 0;
            while pos < e.len {
                let addr = va0 + e.off + pos;
                let page_idx = ((addr - va0) / page) as usize;
                let page_off = (addr % page) as usize;
                let n = ((page - addr % page).min(e.len - pos)) as usize;
                let mut buf = vec![0u8; n];
                let frame = frames[page_idx].expect("tx fbuf resident");
                self.fbs.machine().dma_read(frame, page_off, &mut buf);
                out.extend(buf);
                pos += n as u64;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_host(setup: DomainSetup) -> Host {
        Host::new(
            MachineConfig::tiny(),
            setup,
            AllocStrategy::Cached,
            SendMode::Volatile,
        )
    }

    #[test]
    fn domain_placement() {
        let h = tiny_host(DomainSetup::KernelOnly);
        assert_eq!(h.app, KERNEL_DOMAIN);
        assert_eq!(h.setup.domains(), 1);

        let h = tiny_host(DomainSetup::User);
        assert_ne!(h.app, KERNEL_DOMAIN);
        assert_eq!(h.out_domains(), vec![h.app, KERNEL_DOMAIN]);

        let h = tiny_host(DomainSetup::UserNetserver);
        let ns = h.netserver.unwrap();
        assert_eq!(h.out_domains(), vec![h.app, ns, KERNEL_DOMAIN]);
        assert_eq!(h.in_domains(), vec![KERNEL_DOMAIN, ns, h.app]);
    }

    #[test]
    fn build_message_spans_chunks() {
        let mut h = tiny_host(DomainSetup::User);
        // tiny chunk = 16 KB; a 40 KB message needs 3 fbufs.
        let msg = h.build_message(40 << 10, &Fill::Touch).unwrap();
        assert_eq!(msg.len(), 40 << 10);
        assert_eq!(msg.distinct_fbufs().len(), 3);
        h.release(h.app, &msg).unwrap();
    }

    #[test]
    fn message_bytes_roundtrip_through_dma() {
        let mut h = tiny_host(DomainSetup::User);
        let data: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        let msg = h.build_message(20_000, &Fill::Bytes(data.clone())).unwrap();
        assert_eq!(h.gather(h.app, &msg).unwrap(), data);
        // What the wire would carry matches exactly.
        assert_eq!(h.dma_out_of_msg(&msg).unwrap(), data);
        h.release(h.app, &msg).unwrap();
    }

    #[test]
    fn cross_moves_references_and_mappings() {
        let mut h = tiny_host(DomainSetup::User);
        let msg = h.build_message(100, &Fill::Bytes(vec![9; 100])).unwrap();
        let (app, kernel) = (h.app, h.kernel());
        h.cross(&msg, app, kernel, true).unwrap();
        assert_eq!(h.gather(kernel, &msg).unwrap(), vec![9; 100]);
        h.release(kernel, &msg).unwrap();
        h.release(app, &msg).unwrap();
    }

    #[test]
    fn same_domain_cross_is_free() {
        let mut h = tiny_host(DomainSetup::KernelOnly);
        let msg = h.build_message(100, &Fill::Touch).unwrap();
        let msgs0 = h.fbs.stats().ipc_messages();
        let k = h.kernel();
        h.cross(&msg, k, k, true).unwrap();
        assert_eq!(h.fbs.stats().ipc_messages(), msgs0);
        h.release(k, &msg).unwrap();
    }

    #[test]
    fn rx_alloc_cached_vs_uncached() {
        let mut h = tiny_host(DomainSetup::User);
        let cached = h.alloc_rx(4096, true).unwrap();
        assert!(h.fbs.fbuf_hot(cached).unwrap().is_cached());
        let uncached = h.alloc_rx(4096, false).unwrap();
        assert!(!h.fbs.fbuf_hot(uncached).unwrap().is_cached());
        // DMA never charges clearing.
        assert_eq!(h.fbs.stats().pages_cleared(), 0);
    }

    #[test]
    fn dma_into_rx_fbuf_delivers_bytes() {
        let mut h = tiny_host(DomainSetup::User);
        let id = h.alloc_rx(10_000, true).unwrap();
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 13) as u8).collect();
        h.dma_into_fbuf(id, &payload).unwrap();
        let msg = Msg::from_fbuf(id, 0, 10_000);
        h.refs.adopt(h.kernel(), &msg);
        assert_eq!(h.gather(h.kernel(), &msg).unwrap(), payload);
        let k = h.kernel();
        h.release(k, &msg).unwrap();
    }

    #[test]
    fn secure_mode_protects_after_first_cross() {
        let mut h = Host::new(
            MachineConfig::tiny(),
            DomainSetup::User,
            AllocStrategy::Cached,
            SendMode::Secure,
        );
        let msg = h.build_message(100, &Fill::Bytes(vec![1; 100])).unwrap();
        let (app, kernel) = (h.app, h.kernel());
        h.cross(&msg, app, kernel, true).unwrap();
        // The app (a user-domain originator) has lost write access.
        let id = msg.distinct_fbufs()[0];
        assert!(h.fbs.write_fbuf(app, id, 0, &[2]).is_err());
        h.release(kernel, &msg).unwrap();
        h.release(app, &msg).unwrap();
    }
}
