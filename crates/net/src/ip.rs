//! IP-style fragmentation and reassembly over message aggregates.
//!
//! "IP fragments large messages into PDUs of 4 KBytes. ... Fragmentation
//! need not disturb the original buffer holding the ADU; each fragment can
//! be represented by an offset/length into the original buffer." (§2.1.1,
//! §4) — fragments here are zero-copy [`Msg::split`] descriptors, and
//! reassembly is a zero-copy concatenation of fragment messages.

use std::collections::HashMap;

use fbuf_xkernel::Msg;

/// Per-fragment IP header (the fields the reproduction needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IpHeader {
    /// Datagram identifier (shared by all fragments of one datagram).
    pub datagram: u64,
    /// Byte offset of this fragment within the datagram.
    pub offset: u64,
    /// Total datagram length in bytes.
    pub total_len: u64,
    /// More fragments follow.
    pub more: bool,
}

/// Splits `msg` into fragments of at most `pdu` bytes. Returns the
/// header/body pairs in order. Zero-copy: bodies are descriptor splits of
/// the original message.
pub fn fragment(msg: &Msg, datagram: u64, pdu: u64) -> Vec<(IpHeader, Msg)> {
    assert!(pdu > 0, "PDU size must be positive");
    let total = msg.len();
    if total == 0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut rest = msg.clone();
    let mut offset = 0u64;
    while !rest.is_empty() {
        let (head, tail) = rest.split(pdu);
        let len = head.len();
        out.push((
            IpHeader {
                datagram,
                offset,
                total_len: total,
                more: !tail.is_empty(),
            },
            head,
        ));
        offset += len;
        rest = tail;
    }
    out
}

#[derive(Debug, Default)]
struct Partial {
    fragments: HashMap<u64, Msg>,
    total_len: Option<u64>,
    have: u64,
}

/// Reassembles datagrams from (possibly out-of-order, possibly duplicated)
/// fragments.
#[derive(Debug, Default)]
pub struct Reassembler {
    partials: HashMap<u64, Partial>,
    /// Maximum concurrent partial datagrams before the oldest is dropped
    /// (a denial-of-service bound; 0 = unlimited).
    pub capacity: usize,
    dropped: u64,
}

impl Reassembler {
    /// Creates a reassembler with the given partial-datagram capacity
    /// (0 = unlimited).
    pub fn new(capacity: usize) -> Reassembler {
        Reassembler {
            partials: HashMap::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Offers a fragment; returns the reassembled datagram when complete.
    pub fn add(&mut self, hdr: IpHeader, body: Msg) -> Option<Msg> {
        if self.capacity > 0
            && !self.partials.contains_key(&hdr.datagram)
            && self.partials.len() >= self.capacity
        {
            // Evict an arbitrary partial (simple DoS bound).
            if let Some(&victim) = self.partials.keys().next() {
                self.partials.remove(&victim);
                self.dropped += 1;
            }
        }
        let p = self.partials.entry(hdr.datagram).or_default();
        p.total_len = Some(hdr.total_len);
        let len = body.len();
        if p.fragments.insert(hdr.offset, body).is_none() {
            p.have += len;
        }
        if p.total_len == Some(p.have) {
            let p = self.partials.remove(&hdr.datagram).expect("just inserted");
            let mut offsets: Vec<u64> = p.fragments.keys().copied().collect();
            offsets.sort_unstable();
            let mut msg = Msg::empty();
            for off in offsets {
                msg = msg.concat(&p.fragments[&off]);
            }
            Some(msg)
        } else {
            None
        }
    }

    /// Datagrams dropped by the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Partial datagrams currently buffered.
    pub fn pending(&self) -> usize {
        self.partials.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbuf::FbufId;
    use fbuf_xkernel::Extent;

    fn msg(len: u64) -> Msg {
        Msg::from_extents(vec![Extent {
            fbuf: FbufId(1),
            off: 0,
            len,
        }])
    }

    #[test]
    fn fragment_sizes_and_flags() {
        let frags = fragment(&msg(10_000), 1, 4096);
        assert_eq!(frags.len(), 3);
        assert_eq!(frags[0].1.len(), 4096);
        assert_eq!(frags[1].1.len(), 4096);
        assert_eq!(frags[2].1.len(), 1808);
        assert!(frags[0].0.more && frags[1].0.more && !frags[2].0.more);
        assert_eq!(frags[1].0.offset, 4096);
        assert!(frags.iter().all(|(h, _)| h.total_len == 10_000));
    }

    #[test]
    fn small_message_single_fragment() {
        let frags = fragment(&msg(100), 1, 4096);
        assert_eq!(frags.len(), 1);
        assert!(!frags[0].0.more);
        assert!(fragment(&Msg::empty(), 1, 4096).is_empty());
    }

    #[test]
    fn reassembly_in_order() {
        let mut r = Reassembler::new(0);
        let frags = fragment(&msg(10_000), 42, 4096);
        let n = frags.len();
        for (i, (h, b)) in frags.into_iter().enumerate() {
            let done = r.add(h, b);
            if i + 1 == n {
                assert_eq!(done.unwrap().len(), 10_000);
            } else {
                assert!(done.is_none());
            }
        }
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn reassembly_out_of_order_and_duplicates() {
        let mut r = Reassembler::new(0);
        let mut frags = fragment(&msg(12_288), 7, 4096);
        frags.reverse();
        let dup = frags[1].clone();
        assert!(r.add(frags[0].0, frags[0].1.clone()).is_none());
        assert!(r.add(frags[1].0, frags[1].1.clone()).is_none());
        // Duplicate fragment must not complete the datagram early.
        assert!(r.add(dup.0, dup.1).is_none());
        let done = r.add(frags[2].0, frags[2].1.clone()).unwrap();
        assert_eq!(done.len(), 12_288);
        // Offsets restored in order despite reversed arrival.
        assert_eq!(done.extents()[0].off, 0);
    }

    #[test]
    fn interleaved_datagrams() {
        let mut r = Reassembler::new(0);
        let a = fragment(&msg(8192), 1, 4096);
        let b = fragment(&msg(8192), 2, 4096);
        assert!(r.add(a[0].0, a[0].1.clone()).is_none());
        assert!(r.add(b[0].0, b[0].1.clone()).is_none());
        assert!(r.add(b[1].0, b[1].1.clone()).is_some());
        assert!(r.add(a[1].0, a[1].1.clone()).is_some());
    }

    #[test]
    fn capacity_bound_drops() {
        let mut r = Reassembler::new(2);
        for d in 0..5u64 {
            let frags = fragment(&msg(8192), d, 4096);
            r.add(frags[0].0, frags[0].1.clone());
        }
        assert!(r.pending() <= 2);
        assert_eq!(r.dropped(), 3);
    }

    #[test]
    #[should_panic(expected = "PDU size")]
    fn zero_pdu_rejected() {
        fragment(&msg(1), 1, 0);
    }
}
