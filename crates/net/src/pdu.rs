//! Wire-format protocol data units.
//!
//! A [`WirePdu`] is what travels between the two simulated hosts (or
//! around the loopback): an ATM-level VCI for demultiplexing, the IP
//! fragment header, the UDP header on the first fragment, and the payload
//! bytes. On the wire the payload is plain bytes — it left the sender's
//! frames by DMA and will enter the receiver's fbuf frames by DMA.

use crate::ip::IpHeader;
use crate::udp::UdpHeader;

/// One PDU on the wire.
#[derive(Debug, Clone)]
pub struct WirePdu {
    /// ATM virtual circuit identifier — what the Osiris board demuxes on
    /// *before* DMA ("the adapter board checks to see if there is a
    /// preallocated fbuf for the virtual circuit identifier of the
    /// incoming PDU").
    pub vci: u32,
    /// IP fragmentation header.
    pub ip: IpHeader,
    /// UDP header (first fragment of each datagram only, as in real IP
    /// fragmentation).
    pub udp: Option<UdpHeader>,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl WirePdu {
    /// Bytes this PDU occupies on the wire (payload + header overhead).
    pub fn wire_bytes(&self) -> u64 {
        // 20-byte IP header per fragment + 8-byte UDP header on the first.
        self.payload.len() as u64 + 20 + if self.udp.is_some() { 8 } else { 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_counts_headers() {
        let ip = IpHeader {
            datagram: 1,
            offset: 0,
            total_len: 100,
            more: false,
        };
        let with_udp = WirePdu {
            vci: 7,
            ip,
            udp: Some(UdpHeader {
                src_port: 1,
                dst_port: 2,
                len: 100,
            }),
            payload: vec![0; 100],
        };
        assert_eq!(with_udp.wire_bytes(), 128);
        let without = WirePdu {
            udp: None,
            ..with_udp
        };
        assert_eq!(without.wire_bytes(), 120);
    }
}
