//! Network substrate: the protocol stack and drivers of the paper's
//! evaluation.
//!
//! The paper measures fbufs under an x-kernel protocol graph: a test
//! protocol over UDP/IP, with either a local loopback protocol below IP
//! (simulating an infinitely fast network — Figure 4) or a driver for the
//! Osiris ATM board connected by a null modem (Figures 5 and 6). This
//! crate rebuilds that stack over the fbuf facility:
//!
//! * [`ip`] — fragmentation and reassembly at a configurable PDU size
//!   (4 KB for loopback, 16/32 KB for Osiris), all zero-copy via message
//!   splits and joins;
//! * [`udp`] — port demultiplexing (and an optional checksum that really
//!   touches every byte, for CPU-load experiments);
//! * [`host`] — a simulated host: an [`fbuf::FbufSystem`] plus the domain
//!   placement of the protocol stack (kernel-only, user, or
//!   user-netserver-user) and the buffer regime (cached/uncached ×
//!   volatile/secured);
//! * [`loopback`] — the Figure 4 harness: UDP/IP local loopback across one
//!   or three protection domains;
//! * [`osiris`] — the Osiris driver model (per-VCI queues of preallocated
//!   cached fbufs for the 16 most recent paths, per-cell DMA ceilings, bus
//!   contention) and the two-host end-to-end harness with sliding-window
//!   flow control (Figures 5 and 6, and the §4 CPU-load experiment).
//!
//! Every cross-domain hop in this stack goes through
//! `fbuf::FbufSystem::hop`, i.e. the event-loop transfer engine —
//! counter-exact with the synchronous descent, pinned per workload by
//! `tests/counter_exactness.rs`.
//!
//! Design notes: `DESIGN.md` §4 (system inventory), §5 (which harness
//! regenerates which figure), and §12 (the event-loop engine).

pub mod host;
pub mod ip;
pub mod loopback;
pub mod osiris;
pub mod pdu;
pub mod reliable;
pub mod transform;
pub mod udp;

pub use host::{AllocStrategy, DomainSetup, Fill, Host};
pub use loopback::{LoopbackConfig, LoopbackStack};
pub use osiris::{EndToEnd, EndToEndConfig, EndToEndReport};
pub use pdu::WirePdu;
pub use reliable::{ReliableChannel, ReliableConfig, ReliableStats, TransportError};
