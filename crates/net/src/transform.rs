//! Presentation-layer transformations under the immutability discipline.
//!
//! §5.2: "Since fbufs are immutable, data modifications require the use of
//! a new buffer. Within the network subsystem, this does not incur a
//! performance penalty, since data manipulations are either applied to the
//! entire data (presentation conversions, encryption), or they are
//! localized to the header/trailer. In the latter case, the buffer editing
//! functions — e.g., join, split, clip — can be used to logically
//! concatenate a new header with the remaining, unchanged buffer."
//!
//! This module implements both patterns:
//!
//! * [`transform_whole`] — a whole-data manipulation (an XOR stream cipher
//!   standing in for encryption/presentation conversion): reads the input
//!   aggregate, writes a *new* fbuf, leaves the original untouched;
//! * [`rewrite_prefix`] — a localized manipulation: a new buffer holds
//!   only the rewritten prefix, logically joined with the unchanged tail
//!   of the original (zero bytes of the tail are copied).

use fbuf::{AllocMode, FbufResult, FbufSystem};
use fbuf_vm::DomainId;
use fbuf_xkernel::{Msg, MsgRefs};

/// Applies a whole-data transformation, producing a new aggregate in a
/// fresh buffer. The input message is not consumed (the caller still owns
/// its reference) and its bytes are never modified.
pub fn transform_whole(
    fbs: &mut FbufSystem,
    refs: &mut MsgRefs,
    dom: DomainId,
    msg: &Msg,
    mode: AllocMode,
    f: impl Fn(u8, u64) -> u8,
) -> FbufResult<Msg> {
    let bytes = msg.gather(fbs, dom)?;
    let out: Vec<u8> = bytes
        .iter()
        .enumerate()
        .map(|(i, &b)| f(b, i as u64))
        .collect();
    let id = fbs.alloc(dom, mode, out.len().max(1) as u64)?;
    fbs.write_fbuf(dom, id, 0, &out)?;
    let result = Msg::from_fbuf(id, 0, out.len() as u64);
    refs.adopt(dom, &result);
    Ok(result)
}

/// An XOR stream "cipher" keyed by `key` — a stand-in for encryption that
/// is trivially verifiable (applying it twice is the identity).
pub fn xor_cipher(key: u8) -> impl Fn(u8, u64) -> u8 {
    move |b, i| b ^ key ^ (i as u8)
}

/// Rewrites the first `prefix_len` bytes of a message through `f`,
/// returning a new aggregate that shares every byte after the prefix with
/// the original — the localized-manipulation pattern. Only the prefix is
/// copied.
pub fn rewrite_prefix(
    fbs: &mut FbufSystem,
    refs: &mut MsgRefs,
    dom: DomainId,
    msg: &Msg,
    mode: AllocMode,
    prefix_len: u64,
    f: impl Fn(u8, u64) -> u8,
) -> FbufResult<Msg> {
    let prefix_len = prefix_len.min(msg.len());
    let (head, tail) = msg.split(prefix_len);
    let new_head = transform_whole(fbs, refs, dom, &head, mode, f)?;
    // Logical concatenation: the tail's extents are shared, not copied.
    // Adopt the result (one reference per distinct fbuf: the new head
    // buffer and the original tail buffers), then drop the standalone
    // head reference transform_whole created.
    let result = new_head.concat(&tail);
    refs.adopt(dom, &result);
    refs.release(fbs, dom, &new_head)?;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbuf_sim::MachineConfig;

    fn setup() -> (FbufSystem, MsgRefs, DomainId) {
        let mut fbs = FbufSystem::new(MachineConfig::tiny());
        let d = fbs.create_domain();
        (fbs, MsgRefs::new(), d)
    }

    fn msg_with(fbs: &mut FbufSystem, refs: &mut MsgRefs, d: DomainId, data: &[u8]) -> Msg {
        let id = fbs
            .alloc(d, AllocMode::Uncached, data.len() as u64)
            .unwrap();
        fbs.write_fbuf(d, id, 0, data).unwrap();
        let m = Msg::from_fbuf(id, 0, data.len() as u64);
        refs.adopt(d, &m);
        m
    }

    #[test]
    fn cipher_roundtrips_and_preserves_original() {
        let (mut fbs, mut refs, d) = setup();
        let plain = msg_with(&mut fbs, &mut refs, d, b"attack at dawn");
        let cipher = xor_cipher(0x5A);
        let enc =
            transform_whole(&mut fbs, &mut refs, d, &plain, AllocMode::Uncached, &cipher).unwrap();
        // The ciphertext differs; the plaintext is untouched (immutable).
        assert_ne!(enc.gather(&mut fbs, d).unwrap(), b"attack at dawn");
        assert_eq!(plain.gather(&mut fbs, d).unwrap(), b"attack at dawn");
        // Decrypting recovers the message.
        let dec =
            transform_whole(&mut fbs, &mut refs, d, &enc, AllocMode::Uncached, &cipher).unwrap();
        assert_eq!(dec.gather(&mut fbs, d).unwrap(), b"attack at dawn");
        for m in [plain, enc, dec] {
            refs.release(&mut fbs, d, &m).unwrap();
        }
        assert_eq!(fbs.live_fbufs(), 0);
    }

    #[test]
    fn prefix_rewrite_shares_the_tail() {
        let (mut fbs, mut refs, d) = setup();
        let original = msg_with(&mut fbs, &mut refs, d, b"HDR|unchanged body bytes");
        let rewritten = rewrite_prefix(
            &mut fbs,
            &mut refs,
            d,
            &original,
            AllocMode::Uncached,
            4,
            |b, _| b.to_ascii_lowercase(),
        )
        .unwrap();
        assert_eq!(
            rewritten.gather(&mut fbs, d).unwrap(),
            b"hdr|unchanged body bytes"
        );
        // The tail extent still points into the *original* fbuf: shared,
        // not copied.
        let orig_fbuf = original.extents()[0].fbuf;
        assert!(rewritten
            .extents()
            .iter()
            .any(|e| e.fbuf == orig_fbuf && e.off == 4));
        refs.release(&mut fbs, d, &rewritten).unwrap();
        // The original is still fully intact and referenced.
        assert_eq!(
            original.gather(&mut fbs, d).unwrap(),
            b"HDR|unchanged body bytes"
        );
        refs.release(&mut fbs, d, &original).unwrap();
        assert_eq!(fbs.live_fbufs(), 0);
    }

    #[test]
    fn prefix_longer_than_message_is_whole_transform() {
        let (mut fbs, mut refs, d) = setup();
        let m = msg_with(&mut fbs, &mut refs, d, b"short");
        let out = rewrite_prefix(
            &mut fbs,
            &mut refs,
            d,
            &m,
            AllocMode::Uncached,
            100,
            |b, _| b ^ 0xFF,
        )
        .unwrap();
        assert_eq!(out.len(), 5);
        assert_ne!(out.gather(&mut fbs, d).unwrap(), b"short");
        refs.release(&mut fbs, d, &out).unwrap();
        refs.release(&mut fbs, d, &m).unwrap();
    }

    #[test]
    fn transform_of_multi_fragment_message() {
        let (mut fbs, mut refs, d) = setup();
        let a = msg_with(&mut fbs, &mut refs, d, b"frag-one|");
        let b = msg_with(&mut fbs, &mut refs, d, b"frag-two");
        let joined = a.concat(&b);
        refs.adopt(d, &joined);
        let out = transform_whole(
            &mut fbs,
            &mut refs,
            d,
            &joined,
            AllocMode::Uncached,
            |byte, _| byte,
        )
        .unwrap();
        // Identity transform gathers the fragments into one contiguous
        // buffer.
        assert_eq!(out.gather(&mut fbs, d).unwrap(), b"frag-one|frag-two");
        assert_eq!(out.fragments(), 1);
        for m in [&joined, &a, &b, &out] {
            refs.release(&mut fbs, d, m).unwrap();
        }
        assert_eq!(fbs.live_fbufs(), 0);
    }
}
