//! Per-domain message reference counting.
//!
//! x-kernel messages are reference counted: splits and fragmentation create
//! several messages sharing the same underlying buffers, and a buffer is
//! released only when the last message referencing it in a domain goes
//! away. The fbuf facility itself tracks one reference per *domain* (the
//! holder list); this table maps many message-level references down to that
//! single domain-level reference.

use std::collections::HashMap;

use fbuf::{FbufId, FbufResult, FbufSystem};
use fbuf_vm::DomainId;

use crate::msg::Msg;

/// Message-level reference counts, keyed by (domain, fbuf).
#[derive(Debug, Default)]
pub struct MsgRefs {
    counts: HashMap<(u32, FbufId), usize>,
}

impl MsgRefs {
    /// Creates an empty table.
    pub fn new() -> MsgRefs {
        MsgRefs::default()
    }

    /// Registers one message-level reference in `dom` for every distinct
    /// fbuf in `msg`. Call when a message is created (from freshly
    /// allocated fbufs), received from another domain, or duplicated by a
    /// structural operation (split halves, retransmission copies).
    pub fn adopt(&mut self, dom: DomainId, msg: &Msg) {
        for id in msg.distinct_fbufs() {
            *self.counts.entry((dom.0, id)).or_insert(0) += 1;
        }
    }

    /// Drops one message-level reference in `dom` for every distinct fbuf
    /// in `msg`; fbufs whose count reaches zero are freed in the fbuf
    /// system (which may trigger deallocation notices, free-list parking,
    /// or full retirement).
    pub fn release(&mut self, fbs: &mut FbufSystem, dom: DomainId, msg: &Msg) -> FbufResult<()> {
        for id in msg.distinct_fbufs() {
            let count = self
                .counts
                .get_mut(&(dom.0, id))
                .unwrap_or_else(|| panic!("release without adopt: {dom} fbuf {}", id.0));
            *count -= 1;
            if *count == 0 {
                self.counts.remove(&(dom.0, id));
                fbs.free(id, dom)?;
            }
        }
        Ok(())
    }

    /// Current count for (dom, fbuf) — diagnostics.
    pub fn count(&self, dom: DomainId, id: FbufId) -> usize {
        self.counts.get(&(dom.0, id)).copied().unwrap_or(0)
    }

    /// Total outstanding message references (diagnostics; 0 when every
    /// message has been released — a leak detector for tests).
    pub fn outstanding(&self) -> usize {
        self.counts.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbuf::AllocMode;
    use fbuf_sim::MachineConfig;

    #[test]
    fn split_halves_share_until_both_released() {
        let mut fbs = FbufSystem::new(MachineConfig::tiny());
        let a = fbs.create_domain();
        let id = fbs.alloc(a, AllocMode::Uncached, 8192).unwrap();
        let msg = Msg::from_fbuf(id, 0, 8192);
        let mut refs = MsgRefs::new();
        refs.adopt(a, &msg);

        let (h, t) = msg.split(4096);
        refs.adopt(a, &h);
        refs.adopt(a, &t);
        refs.release(&mut fbs, a, &msg).unwrap();
        assert_eq!(refs.count(a, id), 2);
        assert!(fbs.fbuf(id).is_ok());

        refs.release(&mut fbs, a, &h).unwrap();
        assert!(fbs.fbuf(id).is_ok(), "tail still references the fbuf");
        refs.release(&mut fbs, a, &t).unwrap();
        assert!(fbs.fbuf(id).is_err(), "last release frees the fbuf");
        assert_eq!(refs.outstanding(), 0);
    }

    #[test]
    fn multi_extent_same_fbuf_counts_once() {
        let mut fbs = FbufSystem::new(MachineConfig::tiny());
        let a = fbs.create_domain();
        let id = fbs.alloc(a, AllocMode::Uncached, 4096).unwrap();
        // Two extents over the same fbuf in one message: one reference.
        let msg = Msg::from_extents(vec![
            crate::msg::Extent {
                fbuf: id,
                off: 0,
                len: 100,
            },
            crate::msg::Extent {
                fbuf: id,
                off: 200,
                len: 100,
            },
        ]);
        let mut refs = MsgRefs::new();
        refs.adopt(a, &msg);
        assert_eq!(refs.count(a, id), 1);
        refs.release(&mut fbs, a, &msg).unwrap();
        assert!(fbs.fbuf(id).is_err());
    }

    #[test]
    #[should_panic(expected = "release without adopt")]
    fn release_without_adopt_panics() {
        let mut fbs = FbufSystem::new(MachineConfig::tiny());
        let a = fbs.create_domain();
        let id = fbs.alloc(a, AllocMode::Uncached, 64).unwrap();
        let msg = Msg::from_fbuf(id, 0, 64);
        MsgRefs::new().release(&mut fbs, a, &msg).unwrap();
    }
}
