//! A composable protocol graph.
//!
//! "The x-kernel based network subsystem consists of a protocol graph that
//! can span multiple protection domains" (§4). This module provides the
//! infrastructure: a [`Protocol`] trait, a [`Graph`] of protocol nodes
//! each pinned to a protection domain, and a driver that moves messages
//! down (send) and up (receive) through the graph — automatically
//! performing an fbuf transfer plus one RPC whenever adjacent nodes live
//! in different domains.
//!
//! The concrete stacks used by the paper's experiments (`fbuf-net`) are
//! hand-driven for measurement fidelity; this graph is the library-facing
//! way to compose new stacks.

use fbuf::{FbufResult, FbufSystem, SendMode};
use fbuf_sim::EventKind;
use fbuf_vm::DomainId;

use crate::msg::Msg;
use crate::proxy;
use crate::refs::MsgRefs;

/// What a protocol asks the graph to do with a message it has processed.
#[derive(Debug)]
pub enum Verdict {
    /// Pass the (possibly rewritten) message to the node below (send
    /// path) or above (receive path).
    Continue(Msg),
    /// Split into several messages, each continuing independently
    /// (fragmentation on the way down, or batching on the way up).
    Fan(Vec<Msg>),
    /// The protocol consumed the message (e.g. buffered a fragment until
    /// reassembly completes, or absorbed a control message).
    Absorb,
}

/// Execution context handed to protocols.
pub struct Ctx<'a> {
    /// The buffer facility.
    pub fbs: &'a mut FbufSystem,
    /// Message reference counts.
    pub refs: &'a mut MsgRefs,
    /// The domain this protocol executes in.
    pub dom: DomainId,
}

/// One protocol layer.
pub trait Protocol {
    /// Layer name (diagnostics).
    fn name(&self) -> &'static str;

    /// Processes a message travelling down toward the device. The default
    /// passes it through unchanged.
    fn push(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) -> FbufResult<Verdict> {
        Ok(Verdict::Continue(msg))
    }

    /// Processes a message travelling up toward the application. The
    /// default passes it through unchanged.
    fn demux(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) -> FbufResult<Verdict> {
        Ok(Verdict::Continue(msg))
    }
}

struct Node {
    proto: Box<dyn Protocol>,
    dom: DomainId,
}

/// A linear protocol stack spanning protection domains (index 0 is the
/// topmost layer; the last node is the bottom/driver).
pub struct Graph {
    nodes: Vec<Node>,
    /// Messages that fell off the bottom of the stack (handed to the
    /// "device").
    pub to_device: Vec<Msg>,
    /// Messages that emerged at the top (delivered to the application).
    pub to_app: Vec<Msg>,
    /// Protection mode used for inter-domain hops.
    pub send_mode: SendMode,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Graph {
        Graph {
            nodes: Vec::new(),
            to_device: Vec::new(),
            to_app: Vec::new(),
            send_mode: SendMode::Volatile,
        }
    }

    /// Appends a layer below the current bottom; returns its index.
    pub fn add(&mut self, proto: Box<dyn Protocol>, dom: DomainId) -> usize {
        self.nodes.push(Node { proto, dom });
        self.nodes.len() - 1
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no layers.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The domain sequence, top to bottom.
    pub fn domains(&self) -> Vec<DomainId> {
        self.nodes.iter().map(|n| n.dom).collect()
    }

    /// Injects a message at layer `from` travelling down; terminal
    /// messages accumulate in [`Graph::to_device`]. The caller must have
    /// adopted the message in layer `from`'s domain.
    pub fn push_down(
        &mut self,
        fbs: &mut FbufSystem,
        refs: &mut MsgRefs,
        from: usize,
        msg: Msg,
    ) -> FbufResult<()> {
        self.drive(fbs, refs, from, msg, true)
    }

    /// Injects a message at layer `from` travelling up; terminal messages
    /// accumulate in [`Graph::to_app`].
    pub fn push_up(
        &mut self,
        fbs: &mut FbufSystem,
        refs: &mut MsgRefs,
        from: usize,
        msg: Msg,
    ) -> FbufResult<()> {
        self.drive(fbs, refs, from, msg, false)
    }

    fn drive(
        &mut self,
        fbs: &mut FbufSystem,
        refs: &mut MsgRefs,
        start: usize,
        msg: Msg,
        down: bool,
    ) -> FbufResult<()> {
        assert!(start < self.nodes.len(), "no such layer");
        // Work list of (layer, message) pairs; depth-first keeps fan-out
        // ordering intuitive.
        let mut work = vec![(start, msg)];
        while let Some((i, msg)) = work.pop() {
            let dom = self.nodes[i].dom;
            let mut ctx = Ctx { fbs, refs, dom };
            let verdict = if down {
                self.nodes[i].proto.push(&mut ctx, msg)?
            } else {
                self.nodes[i].proto.demux(&mut ctx, msg)?
            };
            let outputs: Vec<Msg> = match verdict {
                Verdict::Continue(m) => vec![m],
                Verdict::Fan(ms) => ms,
                Verdict::Absorb => continue,
            };
            let next = if down {
                (i + 1 < self.nodes.len()).then_some(i + 1)
            } else {
                i.checked_sub(1)
            };
            for m in outputs.into_iter().rev() {
                match next {
                    Some(j) => {
                        let next_dom = self.nodes[j].dom;
                        if next_dom != dom {
                            // Cross the protection boundary: one RPC plus
                            // fbuf transfers; the receiving domain adopts.
                            fbs.machine().tracer().instant_peer(
                                EventKind::Hop,
                                dom.0,
                                next_dom.0,
                                None,
                                None,
                            );
                            proxy::deliver(fbs, refs, &m, dom, next_dom, self.send_mode)?;
                            refs.release(fbs, dom, &m)?;
                        }
                        work.push((j, m));
                    }
                    None => {
                        if down {
                            self.to_device.push(m);
                        } else {
                            self.to_app.push(m);
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

impl Default for Graph {
    fn default() -> Graph {
        Graph::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbuf::AllocMode;
    use fbuf_sim::MachineConfig;

    /// Records every message length it sees.
    struct Tracer {
        label: &'static str,
        seen: Vec<(bool, u64)>,
    }

    impl Protocol for Tracer {
        fn name(&self) -> &'static str {
            self.label
        }
        fn push(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) -> FbufResult<Verdict> {
            self.seen.push((true, msg.len()));
            Ok(Verdict::Continue(msg))
        }
        fn demux(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) -> FbufResult<Verdict> {
            self.seen.push((false, msg.len()));
            Ok(Verdict::Continue(msg))
        }
    }

    /// Splits messages into `unit`-byte pieces on the way down and
    /// reassembles by simple concatenation on the way up.
    struct Chopper {
        unit: u64,
        partial: Msg,
        expected: u64,
    }

    impl Protocol for Chopper {
        fn name(&self) -> &'static str {
            "chopper"
        }
        fn push(&mut self, ctx: &mut Ctx<'_>, msg: Msg) -> FbufResult<Verdict> {
            let mut pieces = Vec::new();
            let mut rest = msg.clone();
            while !rest.is_empty() {
                let (head, tail) = rest.split(self.unit);
                ctx.refs.adopt(ctx.dom, &head);
                pieces.push(head);
                rest = tail;
            }
            ctx.refs.release(ctx.fbs, ctx.dom, &msg)?;
            Ok(Verdict::Fan(pieces))
        }
        fn demux(&mut self, ctx: &mut Ctx<'_>, msg: Msg) -> FbufResult<Verdict> {
            let joined = self.partial.concat(&msg);
            ctx.refs.adopt(ctx.dom, &joined);
            ctx.refs.release(ctx.fbs, ctx.dom, &self.partial.clone())?;
            ctx.refs.release(ctx.fbs, ctx.dom, &msg)?;
            if joined.len() >= self.expected {
                self.partial = Msg::empty();
                Ok(Verdict::Continue(joined))
            } else {
                self.partial = joined;
                Ok(Verdict::Absorb)
            }
        }
    }

    fn setup() -> (FbufSystem, MsgRefs, DomainId, DomainId) {
        let mut fbs = FbufSystem::new(MachineConfig::tiny());
        let app = fbs.create_domain();
        let kernel = fbuf_vm::KERNEL_DOMAIN;
        (fbs, MsgRefs::new(), app, kernel)
    }

    fn make_msg(fbs: &mut FbufSystem, refs: &mut MsgRefs, dom: DomainId, data: &[u8]) -> Msg {
        let id = fbs
            .alloc(dom, AllocMode::Uncached, data.len() as u64)
            .unwrap();
        fbs.write_fbuf(dom, id, 0, data).unwrap();
        let m = Msg::from_fbuf(id, 0, data.len() as u64);
        refs.adopt(dom, &m);
        m
    }

    #[test]
    fn passthrough_stack_traverses_all_layers() {
        let (mut fbs, mut refs, app, kernel) = setup();
        let mut g = Graph::new();
        g.add(
            Box::new(Tracer {
                label: "top",
                seen: Vec::new(),
            }),
            app,
        );
        g.add(
            Box::new(Tracer {
                label: "mid",
                seen: Vec::new(),
            }),
            app,
        );
        g.add(
            Box::new(Tracer {
                label: "bot",
                seen: Vec::new(),
            }),
            kernel,
        );
        let msg = make_msg(&mut fbs, &mut refs, app, b"hello");
        g.push_down(&mut fbs, &mut refs, 0, msg).unwrap();
        assert_eq!(g.to_device.len(), 1);
        assert_eq!(g.to_device[0].len(), 5);
        assert_eq!(g.domains(), vec![app, app, kernel]);
    }

    #[test]
    fn domain_crossing_happens_between_layers() {
        let (mut fbs, mut refs, app, kernel) = setup();
        let mut g = Graph::new();
        g.add(
            Box::new(Tracer {
                label: "user",
                seen: Vec::new(),
            }),
            app,
        );
        g.add(
            Box::new(Tracer {
                label: "kern",
                seen: Vec::new(),
            }),
            kernel,
        );
        let msgs0 = fbs.stats().ipc_messages();
        let msg = make_msg(&mut fbs, &mut refs, app, b"cross");
        g.push_down(&mut fbs, &mut refs, 0, msg).unwrap();
        // Exactly one RPC for the one boundary.
        assert_eq!(fbs.stats().ipc_messages(), msgs0 + 1);
        // The kernel can read the data that fell out of the bottom.
        let out = g.to_device.pop().unwrap();
        assert_eq!(out.gather(&mut fbs, kernel).unwrap(), b"cross");
    }

    #[test]
    fn fragmenting_layer_fans_out_and_reassembles() {
        let (mut fbs, mut refs, app, kernel) = setup();
        let mut g = Graph::new();
        let top = g.add(
            Box::new(Tracer {
                label: "top",
                seen: Vec::new(),
            }),
            app,
        );
        g.add(
            Box::new(Chopper {
                unit: 4,
                partial: Msg::empty(),
                expected: 10,
            }),
            app,
        );
        let bottom = g.add(
            Box::new(Tracer {
                label: "drv",
                seen: Vec::new(),
            }),
            kernel,
        );
        // Down: one 10-byte message becomes three PDUs at the device.
        let msg = make_msg(&mut fbs, &mut refs, app, b"0123456789");
        g.push_down(&mut fbs, &mut refs, top, msg).unwrap();
        assert_eq!(g.to_device.len(), 3);
        let lens: Vec<u64> = g.to_device.iter().map(|m| m.len()).collect();
        assert_eq!(lens, vec![4, 4, 2]);
        // Up: replay the three PDUs; the chopper reassembles and one
        // message reaches the app.
        let pdus: Vec<Msg> = g.to_device.drain(..).collect();
        for p in pdus {
            // Device hands PDUs to the bottom layer in the kernel.
            g.push_up(&mut fbs, &mut refs, bottom, p).unwrap();
        }
        assert_eq!(g.to_app.len(), 1);
        assert_eq!(g.to_app[0].gather(&mut fbs, app).unwrap(), b"0123456789");
    }

    #[test]
    fn absorb_stops_propagation() {
        struct BlackHole;
        impl Protocol for BlackHole {
            fn name(&self) -> &'static str {
                "blackhole"
            }
            fn push(&mut self, ctx: &mut Ctx<'_>, msg: Msg) -> FbufResult<Verdict> {
                ctx.refs.release(ctx.fbs, ctx.dom, &msg)?;
                Ok(Verdict::Absorb)
            }
        }
        let (mut fbs, mut refs, app, _) = setup();
        let mut g = Graph::new();
        g.add(Box::new(BlackHole), app);
        g.add(
            Box::new(Tracer {
                label: "below",
                seen: Vec::new(),
            }),
            app,
        );
        let msg = make_msg(&mut fbs, &mut refs, app, b"gone");
        g.push_down(&mut fbs, &mut refs, 0, msg).unwrap();
        assert!(g.to_device.is_empty());
        assert_eq!(refs.outstanding(), 0);
    }

    #[test]
    #[should_panic(expected = "no such layer")]
    fn bad_layer_index_panics() {
        let (mut fbs, mut refs, app, _) = setup();
        let mut g = Graph::new();
        g.add(
            Box::new(Tracer {
                label: "only",
                seen: Vec::new(),
            }),
            app,
        );
        let msg = make_msg(&mut fbs, &mut refs, app, b"x");
        let _ = g.push_down(&mut fbs, &mut refs, 5, msg);
    }
}
