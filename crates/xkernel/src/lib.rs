//! x-kernel-style message aggregates over fbufs.
//!
//! The paper layers an *aggregate object* abstraction (x-kernel messages)
//! on top of fbufs: immutable buffer aggregates supporting join, split,
//! clip, and header push/pop — so protocols never mutate data in place and
//! fragmentation/reassembly never copy payload bytes.
//!
//! Two representations are implemented, matching §3.2.3:
//!
//! * [`msg::Msg`] — the *external* representation: the aggregate structure
//!   lives in domain-private memory; a cross-domain transfer passes a list
//!   of fbuf extents and the structure is rebuilt on the receiving side.
//! * [`integrated::IntegratedMsg`] — the *integrated* representation: the
//!   DAG's interior nodes themselves live in fbuf memory at
//!   position-independent (globally identical) virtual addresses, so a
//!   transfer passes only the root address. Receivers defend themselves
//!   with range checks, cycle detection, and the null-read policy
//!   ("invalid DAG references appear to the receiver as the absence of
//!   data", §3.2.4).
//!
//! [`generator`] implements the §5.2 application interface: retrieving
//! application-defined data units from an aggregate with copies only at
//! fragment boundaries. [`proxy`] moves messages across domains, charging
//! IPC and using the configured transfer regime — its hops route through
//! the event-loop transfer engine (`fbuf::engine`). [`refs::MsgRefs`]
//! gives messages x-kernel reference-counting semantics per domain.
//!
//! Design notes: `DESIGN.md` §4 (aggregate machinery in the system
//! inventory) and §12 (how proxy hops are scheduled).

pub mod generator;
pub mod graph;
pub mod hbio;
pub mod integrated;
pub mod msg;
pub mod proxy;
pub mod refs;

pub use generator::{DataUnit, Generator};
pub use graph::{Ctx, Graph, Protocol, Verdict};
pub use hbio::{HbioEndpoint, WriteBuffer};
pub use integrated::{IntegratedMsg, TraverseLimits, TraverseOutcome};
pub use msg::{Extent, Msg};
pub use proxy::deliver;
pub use refs::MsgRefs;
