//! The §5.2 proposed high-bandwidth I/O interface.
//!
//! "The semantics of the UNIX read/write interface make it difficult to
//! use fbufs (or any other VM based technique). This is because the UNIX
//! interface has copy semantics, and it allows the application to specify
//! an unaligned buffer address anywhere in its address space. We therefore
//! propose the addition of an interface for high-bandwidth I/O that uses
//! immutable buffer aggregates. New high-bandwidth applications can use
//! this interface; existing applications can continue to use the old
//! interface, which requires copying."
//!
//! [`HbioEndpoint`] is that interface: aggregate-valued `write`/`read`
//! with zero copies, plus the legacy copy-semantics [`HbioEndpoint::read_copy`]
//! and [`HbioEndpoint::write_copy`] for un-ported applications — priced
//! with a real per-byte copy so the difference is measurable.

use std::collections::VecDeque;

use fbuf::{AllocMode, FbufId, FbufResult, FbufSystem, PathId};
use fbuf_sim::{CostCategory, Ns};
use fbuf_vm::DomainId;

use crate::generator::Generator;
use crate::msg::Msg;
use crate::refs::MsgRefs;

/// A buffer being filled by the application before it becomes immutable.
#[derive(Debug)]
pub struct WriteBuffer {
    /// The underlying fbuf.
    pub fbuf: FbufId,
    /// Requested length.
    pub len: u64,
}

/// An application endpoint for high-bandwidth I/O.
///
/// The endpoint belongs to one domain and (optionally) one I/O data path;
/// outgoing buffers come from that path's cached allocator, so steady-state
/// writes cost no mapping work at all.
#[derive(Debug)]
pub struct HbioEndpoint {
    dom: DomainId,
    path: Option<PathId>,
    inbound: VecDeque<Msg>,
    /// Bytes delivered to this endpoint so far.
    pub delivered: u64,
    /// Bytes consumed through the legacy copying interface.
    pub copied_out: u64,
}

impl HbioEndpoint {
    /// Creates an endpoint for `dom`, allocating from `path` when known.
    pub fn new(dom: DomainId, path: Option<PathId>) -> HbioEndpoint {
        HbioEndpoint {
            dom,
            path,
            inbound: VecDeque::new(),
            delivered: 0,
            copied_out: 0,
        }
    }

    /// The owning domain.
    pub fn domain(&self) -> DomainId {
        self.dom
    }

    // ------------------------------------------------------------------
    // Write side
    // ------------------------------------------------------------------

    /// Allocates an output buffer the application may fill in place.
    pub fn alloc_buffer(&mut self, fbs: &mut FbufSystem, len: u64) -> FbufResult<WriteBuffer> {
        let mode = match self.path {
            Some(p) => AllocMode::Cached(p),
            None => AllocMode::Uncached,
        };
        let fbuf = fbs.alloc(self.dom, mode, len)?;
        Ok(WriteBuffer { fbuf, len })
    }

    /// Fills (part of) an output buffer.
    pub fn fill(
        &mut self,
        fbs: &mut FbufSystem,
        buf: &WriteBuffer,
        off: u64,
        bytes: &[u8],
    ) -> FbufResult<()> {
        fbs.write_fbuf(self.dom, buf.fbuf, off, bytes)
    }

    /// Seals the buffer into an immutable aggregate ready to hand to the
    /// protocol stack — zero copies; the aggregate *is* the buffer.
    pub fn write(&mut self, refs: &mut MsgRefs, buf: WriteBuffer) -> Msg {
        let msg = Msg::from_fbuf(buf.fbuf, 0, buf.len);
        refs.adopt(self.dom, &msg);
        msg
    }

    /// Legacy write: copies the application's private bytes (at any
    /// alignment, anywhere in its address space) into a fresh aggregate —
    /// "the old interface, which requires copying". Charges the copy.
    pub fn write_copy(
        &mut self,
        fbs: &mut FbufSystem,
        refs: &mut MsgRefs,
        bytes: &[u8],
    ) -> FbufResult<Msg> {
        let buf = self.alloc_buffer(fbs, bytes.len() as u64)?;
        charge_copy(fbs, bytes.len() as u64);
        self.fill(fbs, &buf, 0, bytes)?;
        Ok(self.write(refs, buf))
    }

    // ------------------------------------------------------------------
    // Read side
    // ------------------------------------------------------------------

    /// The stack delivers an inbound aggregate (the endpoint assumes the
    /// caller has already granted `dom` its references).
    pub fn deliver(&mut self, msg: Msg) {
        self.delivered += msg.len();
        self.inbound.push_back(msg);
    }

    /// Zero-copy read: the next aggregate, possibly non-contiguous — "an
    /// application that reads input data must be prepared to deal with the
    /// potentially non-contiguous storage of buffers".
    pub fn read_aggregate(&mut self) -> Option<Msg> {
        self.inbound.pop_front()
    }

    /// Zero-copy read of fixed-size records via the generator interface
    /// (§5.2's convenience for applications that want units, not buffers).
    pub fn read_records(&mut self, unit: u64) -> Option<Generator> {
        self.inbound.pop_front().map(|m| Generator::new(m, unit))
    }

    /// Legacy read with UNIX copy semantics: fills the caller's private
    /// buffer, consuming queued data; returns bytes read (0 when no data
    /// is queued). The caller must release the *consumed* portion's fbufs
    /// itself — this helper returns the consumed message so reference
    /// accounting stays explicit.
    pub fn read_copy(
        &mut self,
        fbs: &mut FbufSystem,
        out: &mut [u8],
    ) -> FbufResult<(usize, Option<Msg>)> {
        let Some(mut msg) = self.inbound.pop_front() else {
            return Ok((0, None));
        };
        let want = (out.len() as u64).min(msg.len());
        let head = msg.pop(want).expect("want <= len");
        charge_copy(fbs, want);
        let bytes = head.gather(fbs, self.dom)?;
        out[..want as usize].copy_from_slice(&bytes);
        self.copied_out += want;
        // Anything unread goes back to the queue; the consumed head is
        // handed to the caller for release.
        if !msg.is_empty() {
            self.inbound.push_front(msg);
        }
        Ok((want as usize, Some(head)))
    }

    /// Queued inbound bytes.
    pub fn pending(&self) -> u64 {
        self.inbound.iter().map(|m| m.len()).sum()
    }
}

/// Charges the memory-bandwidth cost of a UNIX-style copy of `len` bytes.
fn charge_copy(fbs: &mut FbufSystem, len: u64) {
    let page = fbs.machine().page_size();
    let per_page = fbs.machine().costs().page_copy;
    let cost = Ns((per_page.as_ns() as u128 * len as u128 / page as u128) as u64);
    fbs.machine_mut().charge(CostCategory::DataMove, cost);
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbuf::SendMode;
    use fbuf_sim::MachineConfig;
    use fbuf_vm::KERNEL_DOMAIN;

    fn setup() -> (FbufSystem, MsgRefs, DomainId, PathId) {
        let mut fbs = FbufSystem::new(MachineConfig::decstation_5000_200());
        fbs.charge_clearing = false;
        let app = fbs.create_domain();
        let out_path = fbs.create_path(vec![app, KERNEL_DOMAIN]).unwrap();
        (fbs, MsgRefs::new(), app, out_path)
    }

    #[test]
    fn aggregate_write_is_zero_copy() {
        let (mut fbs, mut refs, app, path) = setup();
        let mut ep = HbioEndpoint::new(app, Some(path));
        let buf = ep.alloc_buffer(&mut fbs, 8192).unwrap();
        ep.fill(&mut fbs, &buf, 0, b"high bandwidth").unwrap();
        let copies0 = fbs.stats().pages_copied();
        let move0 = fbs.machine().clock().spent_on(CostCategory::DataMove);
        let msg = ep.write(&mut refs, buf);
        assert_eq!(msg.len(), 8192);
        assert_eq!(fbs.stats().pages_copied(), copies0);
        assert_eq!(
            fbs.machine().clock().spent_on(CostCategory::DataMove),
            move0
        );
        refs.release(&mut fbs, app, &msg).unwrap();
    }

    #[test]
    fn legacy_write_pays_the_copy() {
        let (mut fbs, mut refs, app, path) = setup();
        let mut ep = HbioEndpoint::new(app, Some(path));
        let move0 = fbs.machine().clock().spent_on(CostCategory::DataMove);
        let msg = ep.write_copy(&mut fbs, &mut refs, &[7u8; 8192]).unwrap();
        let copied = fbs.machine().clock().spent_on(CostCategory::DataMove) - move0;
        // Two pages' worth of copy time.
        assert_eq!(copied, Ns(2 * 115_000));
        assert_eq!(msg.gather(&mut fbs, app).unwrap(), vec![7u8; 8192]);
        refs.release(&mut fbs, app, &msg).unwrap();
    }

    #[test]
    fn zero_copy_read_hands_out_the_aggregate() {
        let (mut fbs, mut refs, app, _) = setup();
        // The "stack" (kernel) produces a message and delivers it.
        let in_path = fbs.create_path(vec![KERNEL_DOMAIN, app]).unwrap();
        let id = fbs
            .alloc(KERNEL_DOMAIN, AllocMode::Cached(in_path), 100)
            .unwrap();
        fbs.write_fbuf(KERNEL_DOMAIN, id, 0, b"payload").unwrap();
        fbs.send(id, KERNEL_DOMAIN, app, SendMode::Volatile)
            .unwrap();
        let msg = Msg::from_fbuf(id, 0, 100);
        refs.adopt(app, &msg);

        let mut ep = HbioEndpoint::new(app, None);
        ep.deliver(msg);
        assert_eq!(ep.pending(), 100);
        let got = ep.read_aggregate().unwrap();
        assert_eq!(&got.gather(&mut fbs, app).unwrap()[..7], b"payload");
        assert_eq!(ep.pending(), 0);
        refs.release(&mut fbs, app, &got).unwrap();
        fbs.free(id, KERNEL_DOMAIN).unwrap();
    }

    #[test]
    fn legacy_read_copies_and_supports_partial_reads() {
        let (mut fbs, mut refs, app, _) = setup();
        let id = fbs.alloc(app, AllocMode::Uncached, 10).unwrap();
        fbs.write_fbuf(app, id, 0, b"0123456789").unwrap();
        let msg = Msg::from_fbuf(id, 0, 10);
        refs.adopt(app, &msg);

        let mut ep = HbioEndpoint::new(app, None);
        ep.deliver(msg.clone());
        let mut out = [0u8; 4];
        let (n, head1) = ep.read_copy(&mut fbs, &mut out).unwrap();
        assert_eq!((n, &out), (4, b"0123"));
        assert_eq!(ep.pending(), 6);
        let mut out = [0u8; 16];
        let (n, head2) = ep.read_copy(&mut fbs, &mut out).unwrap();
        assert_eq!(n, 6);
        assert_eq!(&out[..6], b"456789");
        assert_eq!(ep.copied_out, 10);
        // Empty queue reads zero.
        assert_eq!(ep.read_copy(&mut fbs, &mut out).unwrap().0, 0);
        // Release accounting: the two consumed heads share the fbuf with
        // the original adoption.
        for h in [head1, head2].into_iter().flatten() {
            refs.adopt(app, &h);
            refs.release(&mut fbs, app, &h).unwrap();
        }
        refs.release(&mut fbs, app, &msg).unwrap();
        assert!(fbs.fbuf(id).is_err());
    }

    #[test]
    fn record_reader_over_delivered_aggregate() {
        let (mut fbs, mut refs, app, _) = setup();
        let id = fbs.alloc(app, AllocMode::Uncached, 12).unwrap();
        fbs.write_fbuf(app, id, 0, b"aabbccddeeff").unwrap();
        let msg = Msg::from_fbuf(id, 0, 12);
        refs.adopt(app, &msg);
        let mut ep = HbioEndpoint::new(app, None);
        ep.deliver(msg.clone());
        let mut gen = ep.read_records(2).unwrap();
        let mut records = Vec::new();
        while let Some(u) = gen.next_unit(&mut fbs, app).unwrap() {
            records.push(u.bytes(&mut fbs, app).unwrap());
        }
        assert_eq!(records.len(), 6);
        assert_eq!(records[2], b"cc");
        refs.release(&mut fbs, app, &msg).unwrap();
    }

    #[test]
    fn steady_state_aggregate_io_beats_legacy_by_memory_bandwidth() {
        // The point of §5.2: the legacy interface's copies dominate once
        // transfers themselves are free.
        let (mut fbs, mut refs, app, path) = setup();
        let mut ep = HbioEndpoint::new(app, Some(path));
        let size = 64 << 10;
        // Warm the path cache.
        for _ in 0..2 {
            let b = ep.alloc_buffer(&mut fbs, size).unwrap();
            let m = ep.write(&mut refs, b);
            refs.release(&mut fbs, app, &m).unwrap();
        }
        let t0 = fbs.machine().clock().now();
        let b = ep.alloc_buffer(&mut fbs, size).unwrap();
        let m = ep.write(&mut refs, b);
        refs.release(&mut fbs, app, &m).unwrap();
        let aggregate_time = fbs.machine().clock().now() - t0;

        let t0 = fbs.machine().clock().now();
        let m = ep
            .write_copy(&mut fbs, &mut refs, &vec![0u8; size as usize])
            .unwrap();
        refs.release(&mut fbs, app, &m).unwrap();
        let legacy_time = fbs.machine().clock().now() - t0;
        assert!(
            legacy_time.as_ns() > 20 * aggregate_time.as_ns().max(1),
            "aggregate {aggregate_time} vs legacy {legacy_time}"
        );
    }
}
