//! Cross-domain message delivery (proxy objects).
//!
//! "Proxy objects are used in the x-kernel to forward cross-domain
//! invocations using Mach IPC." A proxy invocation charges one RPC and
//! hands the message's fbufs to the receiving domain using the fbuf
//! transfer facility; with the integrated representation only the root
//! address crosses.

use fbuf::{FbufResult, FbufSystem, SendMode};
use fbuf_vm::DomainId;

use crate::integrated::{self, IntegratedMsg, TraverseLimits};
use crate::msg::Msg;
use crate::refs::MsgRefs;

/// Delivers `msg` from `from` to `to`: one RPC (charged) plus an fbuf
/// transfer per distinct buffer. The receiver gains a message-level
/// reference; the sender keeps its own (copy semantics) and releases it
/// when its stack is done with the message.
pub fn deliver(
    fbs: &mut FbufSystem,
    refs: &mut MsgRefs,
    msg: &Msg,
    from: DomainId,
    to: DomainId,
    mode: SendMode,
) -> FbufResult<()> {
    fbs.hop(from, to);
    for id in msg.distinct_fbufs() {
        fbs.send(id, from, to, mode)?;
    }
    refs.adopt(to, msg);
    Ok(())
}

/// Delivers an integrated message: one RPC carrying only the root address;
/// the kernel inspects the aggregate and transfers every reachable fbuf
/// "unless shared mappings already exist" (which `FbufSystem::send` already
/// skips for cached buffers).
pub fn deliver_integrated(
    fbs: &mut FbufSystem,
    msg: IntegratedMsg,
    from: DomainId,
    to: DomainId,
    mode: SendMode,
    limits: TraverseLimits,
) -> FbufResult<()> {
    fbs.hop(from, to);
    for id in integrated::reachable_fbufs(fbs, from, msg, limits)? {
        fbs.send(id, from, to, mode)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbuf::AllocMode;
    use fbuf_sim::MachineConfig;

    #[test]
    fn deliver_charges_ipc_and_transfers() {
        let mut fbs = FbufSystem::new(MachineConfig::tiny());
        let mut refs = MsgRefs::new();
        let a = fbs.create_domain();
        let b = fbs.create_domain();
        let id = fbs.alloc(a, AllocMode::Uncached, 100).unwrap();
        fbs.write_fbuf(a, id, 0, b"proxied").unwrap();
        let msg = Msg::from_fbuf(id, 0, 100);
        refs.adopt(a, &msg);
        let msgs0 = fbs.stats().ipc_messages();
        deliver(&mut fbs, &mut refs, &msg, a, b, SendMode::Volatile).unwrap();
        assert_eq!(fbs.stats().ipc_messages(), msgs0 + 1);
        assert_eq!(&msg.gather(&mut fbs, b).unwrap()[..7], b"proxied");
        // Both sides release; buffer fully retired.
        refs.release(&mut fbs, a, &msg).unwrap();
        refs.release(&mut fbs, b, &msg).unwrap();
        assert!(fbs.fbuf(id).is_err());
    }

    #[test]
    fn integrated_delivery_moves_root_only() {
        let mut fbs = FbufSystem::new(MachineConfig::tiny());
        integrated::install_null_template(&mut fbs);
        let a = fbs.create_domain();
        let b = fbs.create_domain();
        let data = fbs.alloc(a, AllocMode::Uncached, 64).unwrap();
        fbs.write_fbuf(a, data, 0, b"dag!").unwrap();
        let data_va = fbs.fbuf(data).unwrap().va;
        let mut builder = integrated::DagBuilder::new(&mut fbs, a, AllocMode::Uncached, 4).unwrap();
        let leaf = builder.leaf(&mut fbs, data_va, 4).unwrap();
        let msg = IntegratedMsg { root: leaf };
        deliver_integrated(
            &mut fbs,
            msg,
            a,
            b,
            SendMode::Volatile,
            TraverseLimits::default(),
        )
        .unwrap();
        let got = integrated::gather(&mut fbs, b, msg, TraverseLimits::default()).unwrap();
        assert_eq!(got, b"dag!");
    }
}
