//! Integrated buffer management: the aggregate DAG stored *in* fbufs.
//!
//! "Consider now an optimization that incorporates knowledge about the
//! aggregate object into the transfer facility ... by placing the entire
//! aggregate object into fbufs. Since the fbuf region is mapped at the same
//! virtual address in all domains, no internal pointer translations are
//! required. During a send operation, a reference to the root node of the
//! aggregate object is passed to the kernel." (§3.2.3)
//!
//! Because a receiver traverses a DAG whose memory a (possibly malicious)
//! originator may still be able to write, §3.2.4 requires three defenses,
//! all implemented by [`traverse`]:
//!
//! 1. child pointers are range-checked against the fbuf region;
//! 2. traversals detect cycles (and bound total node count);
//! 3. reads of fbuf-region addresses the receiver has no mapping for
//!    complete against a synthetic page stamped with empty leaf nodes
//!    (installed by [`install_null_template`]).
//!
//! # Node format
//!
//! Nodes are 24-byte records of three little-endian `u64` words:
//!
//! | word 0 (kind) | word 1 | word 2 |
//! |---|---|---|
//! | 1 = leaf | data virtual address | data length |
//! | 2 = concat | left child address | right child address |
//!
//! Any other kind tag — including the zeros produced by reading a null
//! page at an unaligned offset — parses as an empty leaf.

use std::collections::HashSet;

use fbuf::{AllocMode, FbufId, FbufResult, FbufSystem};
use fbuf_sim::EventKind;
use fbuf_vm::DomainId;

/// Node record size in bytes.
pub const NODE_SIZE: u64 = 24;
const KIND_LEAF: u64 = 1;
const KIND_CONCAT: u64 = 2;

/// An integrated message: just the root node's (globally valid) virtual
/// address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntegratedMsg {
    /// Virtual address of the root DAG node, inside the fbuf region.
    pub root: u64,
}

/// Stamps the machine's null-read template with empty leaf records so that
/// wild DAG reads decode as the absence of data. Call once at system
/// setup.
pub fn install_null_template(fbs: &mut FbufSystem) {
    let mut rec = Vec::with_capacity(NODE_SIZE as usize);
    rec.extend_from_slice(&KIND_LEAF.to_le_bytes());
    rec.extend_from_slice(&0u64.to_le_bytes());
    rec.extend_from_slice(&0u64.to_le_bytes());
    fbs.machine_mut().set_null_template(rec);
}

/// Builds DAG nodes inside an fbuf.
#[derive(Debug)]
pub struct DagBuilder {
    dom: DomainId,
    node_fbuf: FbufId,
    cursor: u64,
    capacity: u64,
}

impl DagBuilder {
    /// Allocates a node fbuf (from `mode`) with room for `max_nodes`
    /// records.
    pub fn new(
        fbs: &mut FbufSystem,
        dom: DomainId,
        mode: AllocMode,
        max_nodes: u64,
    ) -> FbufResult<DagBuilder> {
        let node_fbuf = fbs.alloc(dom, mode, max_nodes * NODE_SIZE)?;
        Ok(DagBuilder {
            dom,
            node_fbuf,
            cursor: 0,
            capacity: max_nodes,
        })
    }

    /// The fbuf holding the node records.
    pub fn node_fbuf(&self) -> FbufId {
        self.node_fbuf
    }

    fn write_node(&mut self, fbs: &mut FbufSystem, words: [u64; 3]) -> FbufResult<u64> {
        assert!(self.cursor < self.capacity, "node fbuf full");
        let off = self.cursor * NODE_SIZE;
        self.cursor += 1;
        let mut bytes = Vec::with_capacity(NODE_SIZE as usize);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        fbs.write_fbuf(self.dom, self.node_fbuf, off, &bytes)?;
        Ok(fbs.fbuf(self.node_fbuf)?.va + off)
    }

    /// Emits a leaf node describing `len` bytes at `data_va`; returns the
    /// node's address.
    pub fn leaf(&mut self, fbs: &mut FbufSystem, data_va: u64, len: u64) -> FbufResult<u64> {
        self.write_node(fbs, [KIND_LEAF, data_va, len])
    }

    /// Emits a concat node over two child node addresses.
    pub fn concat(&mut self, fbs: &mut FbufSystem, left: u64, right: u64) -> FbufResult<u64> {
        self.write_node(fbs, [KIND_CONCAT, left, right])
    }

    /// Emits a raw node (tests use this to forge hostile records).
    pub fn raw(&mut self, fbs: &mut FbufSystem, words: [u64; 3]) -> FbufResult<u64> {
        self.write_node(fbs, words)
    }
}

/// Traversal safety limits.
#[derive(Debug, Clone, Copy)]
pub struct TraverseLimits {
    /// Maximum nodes visited before aborting (bounds hostile deep DAGs).
    pub max_nodes: usize,
}

impl Default for TraverseLimits {
    fn default() -> TraverseLimits {
        TraverseLimits { max_nodes: 4096 }
    }
}

/// What a receive-side traversal found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraverseOutcome {
    /// In-order (virtual address, length) data extents.
    pub extents: Vec<(u64, u64)>,
    /// Nodes visited.
    pub nodes: usize,
    /// Whether a cycle (revisited node) was detected and skipped.
    pub cycle_detected: bool,
    /// Child or data pointers rejected by the fbuf-region range check.
    pub range_failures: usize,
    /// Whether the node budget was exhausted.
    pub truncated: bool,
}

impl TraverseOutcome {
    /// Total data length described.
    pub fn len(&self) -> u64 {
        self.extents.iter().map(|&(_, l)| l).sum()
    }

    /// True when no data extents were found.
    pub fn is_empty(&self) -> bool {
        self.extents.is_empty()
    }
}

/// Traverses the DAG rooted at `root` as domain `dom`, applying the §3.2.4
/// defenses. Never panics on hostile input; anomalies are reported in the
/// outcome and counted in the machine statistics.
pub fn traverse(
    fbs: &mut FbufSystem,
    dom: DomainId,
    root: u64,
    limits: TraverseLimits,
) -> FbufResult<TraverseOutcome> {
    let mut out = TraverseOutcome::default();
    let mut visited: HashSet<u64> = HashSet::new();
    // Explicit stack of node addresses; children pushed right-first so the
    // left child is processed first (in-order data).
    let mut stack = vec![root];
    let stats = fbs.stats();
    while let Some(va) = stack.pop() {
        if out.nodes >= limits.max_nodes {
            out.truncated = true;
            break;
        }
        // Defense 1: range check before dereferencing anything.
        if !fbs.machine().config().in_fbuf_region(va, NODE_SIZE) {
            out.range_failures += 1;
            stats.inc_dag_range_check_failures();
            continue;
        }
        // Defense 2: cycle check.
        if !visited.insert(va) {
            out.cycle_detected = true;
            stats.inc_dag_cycles_detected();
            continue;
        }
        out.nodes += 1;
        stats.inc_dag_nodes_visited();
        fbs.machine()
            .tracer()
            .instant(EventKind::DagVisit, dom.0, None, fbs.fbuf_at_va(va).map(|f| f.0));
        // Defense 3 happens inside the VM: if `dom` has no mapping, the
        // read faults to a null page stamped with empty leaves.
        let bytes = fbs.machine_mut().read(dom, va, NODE_SIZE)?;
        let word =
            |i: usize| u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().expect("8 bytes"));
        match word(0) {
            KIND_CONCAT => {
                stack.push(word(2));
                stack.push(word(1));
            }
            KIND_LEAF => {
                let (data_va, len) = (word(1), word(2));
                if len == 0 {
                    continue; // empty leaf: the absence of data
                }
                if !fbs.machine().config().in_fbuf_region(data_va, len) {
                    out.range_failures += 1;
                    stats.inc_dag_range_check_failures();
                    continue;
                }
                out.extents.push((data_va, len));
            }
            _ => {
                // Garbage kind (e.g. unaligned read of a null page):
                // treated as an empty leaf.
            }
        }
    }
    Ok(out)
}

/// Gathers the data content of an integrated message as `dom` (reads
/// charged through the VM; unmapped data pages read as zeros via the null
/// page).
pub fn gather(
    fbs: &mut FbufSystem,
    dom: DomainId,
    msg: IntegratedMsg,
    limits: TraverseLimits,
) -> FbufResult<Vec<u8>> {
    let outcome = traverse(fbs, dom, msg.root, limits)?;
    let mut data = Vec::with_capacity(outcome.len() as usize);
    for (va, len) in outcome.extents {
        data.extend(fbs.machine_mut().read(dom, va, len)?);
    }
    Ok(data)
}

/// The distinct fbufs reachable from an integrated message in `from`'s
/// view — node fbufs and data fbufs — in the order encountered. Used by
/// the send path: "the kernel inspects the aggregate and transfers all
/// fbufs in which reachable nodes reside, unless shared mappings already
/// exist."
pub fn reachable_fbufs(
    fbs: &mut FbufSystem,
    from: DomainId,
    msg: IntegratedMsg,
    limits: TraverseLimits,
) -> FbufResult<Vec<FbufId>> {
    let mut result: Vec<FbufId> = Vec::new();
    let push = |id: Option<FbufId>, result: &mut Vec<FbufId>| {
        if let Some(id) = id {
            if !result.contains(&id) {
                result.push(id);
            }
        }
    };
    // Re-walk the DAG tracking the fbufs the *nodes* live in as well as the
    // data extents.
    let mut visited: HashSet<u64> = HashSet::new();
    let mut nodes = 0usize;
    let mut stack = vec![msg.root];
    while let Some(va) = stack.pop() {
        if nodes >= limits.max_nodes {
            break;
        }
        if !fbs.machine().config().in_fbuf_region(va, NODE_SIZE) || !visited.insert(va) {
            continue;
        }
        nodes += 1;
        push(fbs.fbuf_at_va(va), &mut result);
        let bytes = fbs.machine_mut().read(from, va, NODE_SIZE)?;
        let word =
            |i: usize| u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().expect("8 bytes"));
        match word(0) {
            KIND_CONCAT => {
                stack.push(word(2));
                stack.push(word(1));
            }
            KIND_LEAF if word(2) > 0 => {
                push(fbs.fbuf_at_va(word(1)), &mut result);
            }
            _ => {}
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbuf::SendMode;
    use fbuf_sim::MachineConfig;

    fn setup() -> (FbufSystem, DomainId, DomainId) {
        let mut fbs = FbufSystem::new(MachineConfig::tiny());
        install_null_template(&mut fbs);
        let a = fbs.create_domain();
        let b = fbs.create_domain();
        (fbs, a, b)
    }

    /// Builds a 2-leaf message: concat(leaf(data1), leaf(data2)).
    fn two_leaf_msg(fbs: &mut FbufSystem, dom: DomainId) -> (IntegratedMsg, FbufId, FbufId) {
        let data = fbs.alloc(dom, AllocMode::Uncached, 8192).unwrap();
        fbs.write_fbuf(dom, data, 0, b"hello ").unwrap();
        fbs.write_fbuf(dom, data, 4096, b"world").unwrap();
        let data_va = fbs.fbuf(data).unwrap().va;
        let mut b = DagBuilder::new(fbs, dom, AllocMode::Uncached, 8).unwrap();
        let l1 = b.leaf(fbs, data_va, 6).unwrap();
        let l2 = b.leaf(fbs, data_va + 4096, 5).unwrap();
        let root = b.concat(fbs, l1, l2).unwrap();
        (IntegratedMsg { root }, data, b.node_fbuf())
    }

    #[test]
    fn build_and_gather_in_originator() {
        let (mut fbs, a, _) = setup();
        let (msg, _, _) = two_leaf_msg(&mut fbs, a);
        let data = gather(&mut fbs, a, msg, TraverseLimits::default()).unwrap();
        assert_eq!(data, b"hello world");
    }

    #[test]
    fn transfer_by_root_pointer_only() {
        let (mut fbs, a, b) = setup();
        let (msg, data, nodes) = two_leaf_msg(&mut fbs, a);
        // Send: inspect the aggregate, transfer every reachable fbuf.
        let reach = reachable_fbufs(&mut fbs, a, msg, TraverseLimits::default()).unwrap();
        assert_eq!(reach.len(), 2);
        assert!(reach.contains(&data) && reach.contains(&nodes));
        for id in reach {
            fbs.send(id, a, b, SendMode::Volatile).unwrap();
        }
        // Receiver needs nothing but the root va.
        let got = gather(&mut fbs, b, msg, TraverseLimits::default()).unwrap();
        assert_eq!(got, b"hello world");
    }

    #[test]
    fn cycle_is_detected_not_looped() {
        let (mut fbs, a, _) = setup();
        let mut b = DagBuilder::new(&mut fbs, a, AllocMode::Uncached, 4).unwrap();
        // node0 = concat(node1, node1), node1 = concat(node0, node0):
        // build node1 first pointing at where node0 will be.
        let base = fbs.fbuf(b.node_fbuf()).unwrap().va;
        let node0_va = base; // first record
        let node1 = b.raw(&mut fbs, [KIND_CONCAT, node0_va, node0_va]).unwrap();
        assert_eq!(node1, base); // builder writes sequentially
        let node2 = b.raw(&mut fbs, [KIND_CONCAT, node1, node1]).unwrap();
        let out = traverse(&mut fbs, a, node2, TraverseLimits::default()).unwrap();
        assert!(out.cycle_detected);
        assert!(out.extents.is_empty());
        assert!(fbs.stats().dag_cycles_detected() > 0);
    }

    #[test]
    fn wild_pointer_outside_region_rejected() {
        let (mut fbs, a, _) = setup();
        let mut b = DagBuilder::new(&mut fbs, a, AllocMode::Uncached, 4).unwrap();
        let evil = b.raw(&mut fbs, [KIND_CONCAT, 0xdead_beef, 0x10]).unwrap();
        let out = traverse(&mut fbs, a, evil, TraverseLimits::default()).unwrap();
        assert_eq!(out.range_failures, 2);
        assert!(out.extents.is_empty());
        assert!(fbs.stats().dag_range_check_failures() >= 2);
    }

    #[test]
    fn unmapped_fbuf_region_pointer_reads_as_empty_leaf() {
        let (mut fbs, a, b) = setup();
        let region_base = fbs.machine().config().fbuf_region_base;
        let mut builder = DagBuilder::new(&mut fbs, a, AllocMode::Uncached, 4).unwrap();
        // Points into the fbuf region at an address nobody mapped — the
        // receiver's read faults to a null page stamped with empty leaves.
        let wild_in_region = region_base + 512 * 1024 - 4096;
        let root = builder
            .raw(
                &mut fbs,
                [KIND_CONCAT, wild_in_region, wild_in_region + NODE_SIZE],
            )
            .unwrap();
        fbs.send(builder.node_fbuf(), a, b, SendMode::Volatile)
            .unwrap();
        let out = traverse(&mut fbs, b, root, TraverseLimits::default()).unwrap();
        assert!(!out.cycle_detected);
        assert!(
            out.extents.is_empty(),
            "wild refs look like absence of data"
        );
        assert!(fbs.stats().wild_reads_nullified() >= 1);
    }

    #[test]
    fn hostile_deep_chain_is_bounded() {
        let (mut fbs, a, _) = setup();
        let mut b = DagBuilder::new(&mut fbs, a, AllocMode::Uncached, 64).unwrap();
        // A long right-leaning chain.
        let data = fbs.alloc(a, AllocMode::Uncached, 64).unwrap();
        let data_va = fbs.fbuf(data).unwrap().va;
        let mut node = b.leaf(&mut fbs, data_va, 1).unwrap();
        for _ in 0..50 {
            node = b.concat(&mut fbs, node, node).unwrap();
        }
        // Shared-substructure DAG: visited-set makes this linear, and the
        // budget caps it regardless.
        let out = traverse(&mut fbs, a, node, TraverseLimits { max_nodes: 10 }).unwrap();
        assert!(out.truncated);
        assert!(out.nodes <= 10);
    }

    #[test]
    fn unaligned_null_page_read_parses_as_empty() {
        let (mut fbs, _, b) = setup();
        let region_base = fbs.machine().config().fbuf_region_base;
        // Traverse a root at an unaligned offset in an unmapped page.
        let out = traverse(
            &mut fbs,
            b,
            region_base + 1_000_001,
            TraverseLimits::default(),
        )
        .unwrap();
        assert!(out.extents.is_empty());
        assert_eq!(out.nodes, 1);
    }

    #[test]
    fn shared_subtree_data_counted_once_per_visit() {
        let (mut fbs, a, _) = setup();
        let data = fbs.alloc(a, AllocMode::Uncached, 64).unwrap();
        fbs.write_fbuf(a, data, 0, b"xy").unwrap();
        let data_va = fbs.fbuf(data).unwrap().va;
        let mut b = DagBuilder::new(&mut fbs, a, AllocMode::Uncached, 4).unwrap();
        let leaf = b.leaf(&mut fbs, data_va, 2).unwrap();
        // concat(leaf, leaf): the leaf node is visited once (it is the same
        // node), so the data appears once — a DAG, not a tree.
        let root = b.concat(&mut fbs, leaf, leaf).unwrap();
        let out = traverse(&mut fbs, a, root, TraverseLimits::default()).unwrap();
        assert_eq!(out.extents.len(), 1);
    }
}
