//! The external message aggregate: an immutable sequence of fbuf extents.
//!
//! All editing operations are logical — they produce new descriptor
//! sequences and never touch payload bytes. "An intermediate layer that
//! prepends or appends new data to a buffer ... instead allocates a new
//! buffer and logically concatenates it to the original buffer" (§2.1.3).

use fbuf::{FbufId, FbufResult, FbufSystem};
use fbuf_vm::DomainId;

/// A contiguous byte range within one fbuf.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// The buffer.
    pub fbuf: FbufId,
    /// Byte offset within the fbuf.
    pub off: u64,
    /// Length in bytes (never zero in a normalized message).
    pub len: u64,
}

/// An immutable message: an ordered aggregate of extents.
///
/// Cheap to clone (descriptors only). Reference counting of the underlying
/// fbufs is explicit via [`crate::refs::MsgRefs`].
///
/// # Examples
///
/// Editing never touches payload bytes — headers join, fragments split:
///
/// ```
/// use fbuf::FbufId;
/// use fbuf_xkernel::{Extent, Msg};
///
/// let body = Msg::from_fbuf(FbufId(1), 0, 100);
/// let with_header = body.push_header(Extent { fbuf: FbufId(2), off: 0, len: 8 });
/// assert_eq!(with_header.len(), 108);
///
/// // Fragment at byte 64 (possibly mid-extent) and rejoin losslessly.
/// let (head, tail) = with_header.split(64);
/// assert_eq!(head.len(), 64);
/// assert_eq!(head.concat(&tail).len(), 108);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Msg {
    extents: Vec<Extent>,
}

impl Msg {
    /// The empty message.
    pub fn empty() -> Msg {
        Msg::default()
    }

    /// A message covering `[off, off+len)` of one fbuf.
    pub fn from_fbuf(fbuf: FbufId, off: u64, len: u64) -> Msg {
        if len == 0 {
            return Msg::empty();
        }
        Msg {
            extents: vec![Extent { fbuf, off, len }],
        }
    }

    /// Builds a message from raw extents (zero-length extents dropped).
    pub fn from_extents(extents: Vec<Extent>) -> Msg {
        Msg {
            extents: extents.into_iter().filter(|e| e.len > 0).collect(),
        }
    }

    /// Total length in bytes.
    pub fn len(&self) -> u64 {
        self.extents.iter().map(|e| e.len).sum()
    }

    /// True when the message carries no bytes.
    pub fn is_empty(&self) -> bool {
        self.extents.is_empty()
    }

    /// The extent list.
    pub fn extents(&self) -> &[Extent] {
        &self.extents
    }

    /// Number of fragments (extents).
    pub fn fragments(&self) -> usize {
        self.extents.len()
    }

    /// The distinct fbufs referenced, in first-appearance order.
    pub fn distinct_fbufs(&self) -> Vec<FbufId> {
        let mut seen = Vec::new();
        for e in &self.extents {
            if !seen.contains(&e.fbuf) {
                seen.push(e.fbuf);
            }
        }
        seen
    }

    /// Logical join: `self` followed by `other` (x-kernel `msgJoin`).
    pub fn concat(&self, other: &Msg) -> Msg {
        let mut extents = self.extents.clone();
        extents.extend(other.extents.iter().copied());
        Msg { extents }
    }

    /// Prepends a header extent (protocols pushing a header allocate a new
    /// buffer and join it in front).
    pub fn push_header(&self, header: Extent) -> Msg {
        Msg::from_extents(
            std::iter::once(header)
                .chain(self.extents.iter().copied())
                .collect(),
        )
    }

    /// Splits at byte position `at`: returns (`[0, at)`, `[at, len)`)
    /// (x-kernel `msgSplit` / `msgBreak`).
    pub fn split(&self, at: u64) -> (Msg, Msg) {
        let mut head = Vec::new();
        let mut tail = Vec::new();
        let mut pos = 0u64;
        for e in &self.extents {
            if pos >= at {
                tail.push(*e);
            } else if pos + e.len <= at {
                head.push(*e);
            } else {
                let take = at - pos;
                head.push(Extent {
                    fbuf: e.fbuf,
                    off: e.off,
                    len: take,
                });
                tail.push(Extent {
                    fbuf: e.fbuf,
                    off: e.off + take,
                    len: e.len - take,
                });
            }
            pos += e.len;
        }
        (Msg { extents: head }, Msg { extents: tail })
    }

    /// Removes and returns the first `n` bytes (x-kernel `msgPop`, used to
    /// strip headers). Returns `None` if the message is shorter than `n`.
    pub fn pop(&mut self, n: u64) -> Option<Msg> {
        if self.len() < n {
            return None;
        }
        let (head, tail) = self.split(n);
        *self = tail;
        Some(head)
    }

    /// Keeps only the first `n` bytes (x-kernel `msgTruncate`).
    pub fn truncate(&mut self, n: u64) {
        let (head, _) = self.split(n);
        *self = head;
    }

    /// Gathers the message contents by reading through `dom`'s mappings
    /// (charged like any other access; faults if `dom` lacks permission).
    pub fn gather(&self, fbs: &mut FbufSystem, dom: DomainId) -> FbufResult<Vec<u8>> {
        let mut out = Vec::with_capacity(self.len() as usize);
        for e in &self.extents {
            out.extend(fbs.read_fbuf(dom, e.fbuf, e.off, e.len)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ext(f: u64, off: u64, len: u64) -> Extent {
        Extent {
            fbuf: FbufId(f),
            off,
            len,
        }
    }

    #[test]
    fn empty_and_single() {
        assert!(Msg::empty().is_empty());
        assert_eq!(Msg::from_fbuf(FbufId(1), 0, 0), Msg::empty());
        let m = Msg::from_fbuf(FbufId(1), 100, 50);
        assert_eq!(m.len(), 50);
        assert_eq!(m.fragments(), 1);
    }

    #[test]
    fn concat_preserves_order_and_length() {
        let a = Msg::from_fbuf(FbufId(1), 0, 10);
        let b = Msg::from_fbuf(FbufId(2), 5, 20);
        let c = a.concat(&b);
        assert_eq!(c.len(), 30);
        assert_eq!(c.extents()[0], ext(1, 0, 10));
        assert_eq!(c.extents()[1], ext(2, 5, 20));
    }

    #[test]
    fn split_on_extent_boundary() {
        let m = Msg::from_extents(vec![ext(1, 0, 10), ext(2, 0, 10)]);
        let (h, t) = m.split(10);
        assert_eq!(h.extents(), &[ext(1, 0, 10)]);
        assert_eq!(t.extents(), &[ext(2, 0, 10)]);
    }

    #[test]
    fn split_mid_extent() {
        let m = Msg::from_extents(vec![ext(1, 100, 10)]);
        let (h, t) = m.split(4);
        assert_eq!(h.extents(), &[ext(1, 100, 4)]);
        assert_eq!(t.extents(), &[ext(1, 104, 6)]);
        // Degenerate splits.
        let (h, t) = m.split(0);
        assert!(h.is_empty());
        assert_eq!(t.len(), 10);
        let (h, t) = m.split(10);
        assert_eq!(h.len(), 10);
        assert!(t.is_empty());
        let (h, t) = m.split(999);
        assert_eq!(h.len(), 10);
        assert!(t.is_empty());
    }

    #[test]
    fn pop_strips_header() {
        let mut m = Msg::from_extents(vec![ext(1, 0, 8), ext(2, 0, 100)]);
        let hdr = m.pop(8).unwrap();
        assert_eq!(hdr.extents(), &[ext(1, 0, 8)]);
        assert_eq!(m.len(), 100);
        assert!(m.clone().pop(101).is_none());
    }

    #[test]
    fn push_header_prepends() {
        let m = Msg::from_fbuf(FbufId(2), 0, 100);
        let with = m.push_header(ext(1, 0, 8));
        assert_eq!(with.len(), 108);
        assert_eq!(with.extents()[0].fbuf, FbufId(1));
    }

    #[test]
    fn truncate_clips_tail() {
        let mut m = Msg::from_extents(vec![ext(1, 0, 10), ext(2, 0, 10)]);
        m.truncate(15);
        assert_eq!(m.len(), 15);
        assert_eq!(m.extents()[1], ext(2, 0, 5));
        m.truncate(100);
        assert_eq!(m.len(), 15);
    }

    #[test]
    fn distinct_fbufs_dedupes() {
        let m = Msg::from_extents(vec![ext(1, 0, 4), ext(2, 0, 4), ext(1, 8, 4)]);
        assert_eq!(m.distinct_fbufs(), vec![FbufId(1), FbufId(2)]);
    }

    #[test]
    fn split_never_loses_bytes() {
        let m = Msg::from_extents(vec![ext(1, 0, 7), ext(2, 3, 11), ext(3, 1, 5)]);
        for at in 0..=m.len() {
            let (h, t) = m.split(at);
            assert_eq!(h.len(), at);
            assert_eq!(h.len() + t.len(), m.len());
            // Rejoining restores the logical byte sequence.
            let rejoined = h.concat(&t);
            let flat: Vec<(u64, u64, u64)> = rejoined
                .extents()
                .iter()
                .map(|e| (e.fbuf.0, e.off, e.len))
                .collect();
            // Verify coverage by walking both descriptors.
            let orig_bytes: u64 = m.extents().iter().map(|e| e.len).sum();
            let new_bytes: u64 = flat.iter().map(|&(_, _, l)| l).sum();
            assert_eq!(orig_bytes, new_bytes);
        }
    }
}
