//! The §5.2 application interface: data units out of buffer aggregates.
//!
//! "To minimize inconvenience to application programmers, our proposed
//! interface supports a generator-like operation that retrieves data from a
//! buffer aggregate at the granularity of an application-defined data unit,
//! such as a structure or a line of text. Copying only occurs when a data
//! unit crosses a buffer fragment boundary."

use fbuf::{FbufResult, FbufSystem};
use fbuf_vm::DomainId;

use crate::msg::Msg;

/// One application data unit retrieved from an aggregate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataUnit {
    /// The unit lies inside a single fragment: the application reads it in
    /// place (zero copy). The address is globally valid (fbuf region).
    Borrowed {
        /// Virtual address of the unit.
        va: u64,
        /// Length in bytes.
        len: u64,
    },
    /// The unit straddled a fragment boundary and was copied into
    /// contiguous storage.
    Copied(Vec<u8>),
}

impl DataUnit {
    /// Materializes the unit's bytes (reading through `dom` if borrowed).
    pub fn bytes(&self, fbs: &mut FbufSystem, dom: DomainId) -> FbufResult<Vec<u8>> {
        match self {
            DataUnit::Borrowed { va, len } => Ok(fbs.machine_mut().read(dom, *va, *len)?),
            DataUnit::Copied(v) => Ok(v.clone()),
        }
    }

    /// True when no copy was needed.
    pub fn is_zero_copy(&self) -> bool {
        matches!(self, DataUnit::Borrowed { .. })
    }
}

/// Iterates fixed-size records out of a message.
#[derive(Debug)]
pub struct Generator {
    msg: Msg,
    unit: u64,
    pos: u64,
}

impl Generator {
    /// Creates a generator yielding `unit`-byte records.
    pub fn new(msg: Msg, unit: u64) -> Generator {
        assert!(unit > 0, "unit size must be positive");
        Generator { msg, unit, pos: 0 }
    }

    /// Retrieves the next record as `dom`, or `None` past the end. A final
    /// partial record is returned with its true (shorter) length.
    pub fn next_unit(
        &mut self,
        fbs: &mut FbufSystem,
        dom: DomainId,
    ) -> FbufResult<Option<DataUnit>> {
        let total = self.msg.len();
        if self.pos >= total {
            return Ok(None);
        }
        let len = self.unit.min(total - self.pos);
        let unit = slice_unit(fbs, dom, &self.msg, self.pos, len)?;
        self.pos += len;
        Ok(Some(unit))
    }
}

/// Extracts `[pos, pos+len)` from the message: borrowed if it fits in one
/// fragment, copied otherwise.
fn slice_unit(
    fbs: &mut FbufSystem,
    dom: DomainId,
    msg: &Msg,
    pos: u64,
    len: u64,
) -> FbufResult<DataUnit> {
    let mut cursor = 0u64;
    for e in msg.extents() {
        if pos >= cursor + e.len {
            cursor += e.len;
            continue;
        }
        let within = pos - cursor;
        if within + len <= e.len {
            // Entirely inside this fragment: zero copy.
            let va = fbs.fbuf(e.fbuf)?.va + e.off + within;
            return Ok(DataUnit::Borrowed { va, len });
        }
        // Straddles: gather with a real copy.
        fbs.stats().inc_generator_copies();
        let (_, tail) = msg.split(pos);
        let (unit, _) = tail.split(len);
        return Ok(DataUnit::Copied(unit.gather(fbs, dom)?));
    }
    Ok(DataUnit::Copied(Vec::new()))
}

/// Splits a message into newline-delimited lines (delimiter included),
/// copying only lines that straddle fragment boundaries. A trailing
/// fragment without a newline is yielded as a final line.
pub fn lines(fbs: &mut FbufSystem, dom: DomainId, msg: &Msg) -> FbufResult<Vec<DataUnit>> {
    let bytes = msg.gather(fbs, dom)?;
    let mut out = Vec::new();
    let mut start = 0u64;
    let mut i = 0u64;
    for &b in &bytes {
        i += 1;
        if b == b'\n' {
            out.push(slice_unit(fbs, dom, msg, start, i - start)?);
            start = i;
        }
    }
    if start < bytes.len() as u64 {
        out.push(slice_unit(
            fbs,
            dom,
            msg,
            start,
            bytes.len() as u64 - start,
        )?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbuf::AllocMode;
    use fbuf_sim::MachineConfig;
    use fbuf_vm::DomainId as D;

    fn setup() -> (FbufSystem, D) {
        let mut fbs = FbufSystem::new(MachineConfig::tiny());
        let a = fbs.create_domain();
        (fbs, a)
    }

    /// A message split across two fbufs: "ABCDEFGH" + "IJKLMNOP".
    fn fragmented(fbs: &mut FbufSystem, a: D) -> Msg {
        let f1 = fbs.alloc(a, AllocMode::Uncached, 8).unwrap();
        let f2 = fbs.alloc(a, AllocMode::Uncached, 8).unwrap();
        fbs.write_fbuf(a, f1, 0, b"ABCDEFGH").unwrap();
        fbs.write_fbuf(a, f2, 0, b"IJKLMNOP").unwrap();
        Msg::from_fbuf(f1, 0, 8).concat(&Msg::from_fbuf(f2, 0, 8))
    }

    #[test]
    fn aligned_units_are_zero_copy() {
        let (mut fbs, a) = setup();
        let msg = fragmented(&mut fbs, a);
        let mut g = Generator::new(msg, 4);
        let mut seen = Vec::new();
        while let Some(u) = g.next_unit(&mut fbs, a).unwrap() {
            assert!(u.is_zero_copy(), "4-byte units never straddle");
            seen.extend(u.bytes(&mut fbs, a).unwrap());
        }
        assert_eq!(seen, b"ABCDEFGHIJKLMNOP");
        assert_eq!(fbs.stats().generator_copies(), 0);
    }

    #[test]
    fn straddling_units_copy_exactly_once_each() {
        let (mut fbs, a) = setup();
        let msg = fragmented(&mut fbs, a);
        // 5-byte units over a 8+8 split: unit [5,10) straddles.
        let mut g = Generator::new(msg, 5);
        let mut copies = 0;
        let mut seen = Vec::new();
        while let Some(u) = g.next_unit(&mut fbs, a).unwrap() {
            if !u.is_zero_copy() {
                copies += 1;
            }
            seen.extend(u.bytes(&mut fbs, a).unwrap());
        }
        assert_eq!(seen, b"ABCDEFGHIJKLMNOP");
        assert_eq!(copies, 1);
        assert_eq!(fbs.stats().generator_copies(), 1);
    }

    #[test]
    fn final_partial_unit() {
        let (mut fbs, a) = setup();
        let msg = fragmented(&mut fbs, a);
        let mut g = Generator::new(msg, 7);
        let mut lens = Vec::new();
        while let Some(u) = g.next_unit(&mut fbs, a).unwrap() {
            lens.push(u.bytes(&mut fbs, a).unwrap().len());
        }
        assert_eq!(lens, vec![7, 7, 2]);
    }

    #[test]
    fn lines_copy_only_straddlers() {
        let (mut fbs, a) = setup();
        let f1 = fbs.alloc(a, AllocMode::Uncached, 8).unwrap();
        let f2 = fbs.alloc(a, AllocMode::Uncached, 8).unwrap();
        fbs.write_fbuf(a, f1, 0, b"ab\ncdef\n").unwrap();
        fbs.write_fbuf(a, f2, 0, b"gh\nij\nkl").unwrap();
        let msg = Msg::from_fbuf(f1, 0, 8).concat(&Msg::from_fbuf(f2, 0, 8));
        let ls = lines(&mut fbs, a, &msg).unwrap();
        let texts: Vec<Vec<u8>> = ls.iter().map(|u| u.bytes(&mut fbs, a).unwrap()).collect();
        assert_eq!(
            texts,
            vec![
                b"ab\n".to_vec(),
                b"cdef\n".to_vec(),
                b"gh\n".to_vec(),
                b"ij\n".to_vec(),
                b"kl".to_vec()
            ]
        );
        // Every line here is inside one fragment: zero copies.
        assert!(ls.iter().all(|u| u.is_zero_copy()));
    }

    #[test]
    fn straddling_line_is_copied() {
        let (mut fbs, a) = setup();
        let f1 = fbs.alloc(a, AllocMode::Uncached, 8).unwrap();
        let f2 = fbs.alloc(a, AllocMode::Uncached, 8).unwrap();
        fbs.write_fbuf(a, f1, 0, b"abcdefgh").unwrap();
        fbs.write_fbuf(a, f2, 0, b"ij\nklmn\n").unwrap();
        let msg = Msg::from_fbuf(f1, 0, 8).concat(&Msg::from_fbuf(f2, 0, 8));
        let ls = lines(&mut fbs, a, &msg).unwrap();
        assert_eq!(ls.len(), 2);
        assert!(!ls[0].is_zero_copy(), "line crosses the fragment boundary");
        assert!(ls[1].is_zero_copy());
        assert_eq!(ls[0].bytes(&mut fbs, a).unwrap(), b"abcdefghij\n");
    }

    #[test]
    #[should_panic(expected = "unit size")]
    fn zero_unit_rejected() {
        Generator::new(Msg::empty(), 0);
    }
}
