//! The pure reference model of the fbuf lifecycle.
//!
//! [`Oracle`] re-implements every observable transition of
//! [`fbuf::FbufSystem`] — ownership, protection bits, park/cache state,
//! per-path quota, chunk granting, pageout reclaim, domain termination —
//! over plain vectors and maps, with **no** machine, clock, tracer, or
//! arena underneath. It is deliberately boring: where the real system
//! has an intrusive linked list, the model has a `Vec`; where the real
//! system has a generational slab, the model has indices that are never
//! reused. The two implementations share no code, so a bug must be made
//! *twice* (and identically) to escape the lockstep differ.
//!
//! # Observable state
//!
//! "Observable" means everything the lockstep harness diffs after each
//! command (see `crate::lockstep`):
//!
//! * per-buffer: existence, base VA, pages, byte length, originator,
//!   path, secured bit, residency, park linkage, the exact *order* of
//!   holders and of installed mappings;
//! * per-path: liveness and the exact cold-to-hot order of the parked
//!   free list;
//! * the eight lifecycle counters (cache hits/misses, secures,
//!   transfers, chunk grants, quota denials, frames reclaimed, pages
//!   cleared);
//! * every operation's outcome, collapsed to an error *kind* ([`MErr`]).
//!
//! Anything not in this list (simulated time, trace events, TLB state,
//! RPC notice queues) is a cost-model concern, not a lifecycle concern,
//! and is checked by other suites.
//!
//! # Fault lockstep
//!
//! The real system consults its armed [`fbuf_sim::FaultPlan`] at named
//! sites; with logging enabled the plan records every consult as a
//! [`FaultDecision`]. The harness drains that log into a [`Feed`] and
//! the model *replays* the recorded decisions positionally: each mirror
//! transition that corresponds to a real consult calls [`Feed::take`]
//! with the site it expects. A site mismatch, a missing decision, or a
//! leftover decision at the end of a command is itself a divergence —
//! the model proves not just *what* the system did, but that it asked
//! the fault plan exactly the questions it was supposed to ask.

use std::collections::{BTreeMap, VecDeque};

use fbuf::FbufError;
use fbuf_sim::{FaultDecision, FaultSite};

/// Error *kinds*, collapsing [`FbufError`] for outcome comparison. All
/// VM-level faults (dead domain, access violation, unmapped page, out of
/// memory) fold into [`MErr::Vm`]: the model predicts *that* the VM
/// refuses, not the refusal's exact flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MErr {
    /// Unknown or dead domain.
    UnknownDomain,
    /// Dead or never-created path.
    NoSuchPath,
    /// Retired or never-created fbuf.
    NoSuchFbuf,
    /// Caller does not hold the buffer.
    NotHolder,
    /// Per-path chunk quota exhausted (organic or injected).
    QuotaExceeded,
    /// Global fbuf region exhausted (organic or injected).
    RegionExhausted,
    /// Request exceeds a hard size limit.
    TooLarge,
    /// The allocating tenant is jailed by the hoard detector.
    Jailed,
    /// Any machine-level fault.
    Vm,
}

impl MErr {
    /// The kind of a real error.
    pub fn of(e: &FbufError) -> MErr {
        match e {
            FbufError::UnknownDomain(_) => MErr::UnknownDomain,
            FbufError::NoSuchPath(_) => MErr::NoSuchPath,
            FbufError::NoSuchFbuf(_) => MErr::NoSuchFbuf,
            FbufError::NotHolder { .. } => MErr::NotHolder,
            FbufError::QuotaExceeded { .. } => MErr::QuotaExceeded,
            FbufError::RegionExhausted => MErr::RegionExhausted,
            FbufError::TooLarge { .. } => MErr::TooLarge,
            FbufError::TenantJailed(_) => MErr::Jailed,
            FbufError::Vm(_) => MErr::Vm,
        }
    }
}

/// The recorded fault decisions of one real command, consumed
/// positionally by the model's mirror transitions.
#[derive(Debug, Default)]
pub struct Feed {
    q: VecDeque<FaultDecision>,
    poisoned: Option<String>,
}

impl Feed {
    /// Appends the decisions drained from the real plan's consult log.
    pub fn load(&mut self, decisions: Vec<FaultDecision>) {
        self.q.extend(decisions);
    }

    /// Takes the next decision, which must be for `site`. On mismatch or
    /// exhaustion the feed is poisoned (a divergence the harness reports)
    /// and the fault is treated as not fired.
    pub fn take(&mut self, site: FaultSite) -> bool {
        match self.q.pop_front() {
            Some(d) if d.site == site => d.fired,
            Some(d) => {
                self.poison(format!(
                    "model consulted {} but the real system consulted {}",
                    site.name(),
                    d.site.name()
                ));
                false
            }
            None => {
                self.poison(format!(
                    "model consulted {} but the real system consulted nothing",
                    site.name()
                ));
                false
            }
        }
    }

    fn poison(&mut self, why: String) {
        if self.poisoned.is_none() {
            self.poisoned = Some(why);
        }
    }

    /// Ends a command: every recorded decision must have been consumed
    /// and every model consult must have found its decision.
    pub fn finish(&mut self) -> Result<(), String> {
        if let Some(why) = self.poisoned.take() {
            self.q.clear();
            return Err(why);
        }
        if !self.q.is_empty() {
            let leftover: Vec<&'static str> = self.q.drain(..).map(|d| d.site.name()).collect();
            return Err(format!(
                "the real system consulted {} site(s) the model never reached: {}",
                leftover.len(),
                leftover.join(", ")
            ));
        }
        Ok(())
    }
}

/// A deliberately planted model bug, for proving the differ catches and
/// shrinks real divergences (the fuzzer's own acceptance test).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sabotage {
    /// The model reuses parked buffers FIFO while the real system is
    /// LIFO — visible as soon as two same-size buffers are parked and
    /// one is reallocated.
    FifoReuse,
}

/// Structural parameters the model shares with the real machine.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Page size in bytes.
    pub page_size: u64,
    /// Chunk size in bytes.
    pub chunk_size: u64,
    /// Fbuf region base virtual address.
    pub region_base: u64,
    /// Fbuf region size in bytes.
    pub region_size: u64,
    /// Maximum chunks per (domain, path) allocator (the static cap; the
    /// active [`MPolicy`] decides whether it is the binding limit).
    pub quota: usize,
    /// Free-list reuse order of the real system (`true` = LIFO, the
    /// paper's policy).
    pub lifo: bool,
    /// The chunk-admission policy the real system runs.
    pub policy: MPolicy,
    /// Frames one pageout pass tries to reclaim on an injected frame
    /// allocation failure (mirror of `MachineConfig::reclaim_batch`).
    pub reclaim_batch: usize,
}

/// Mirror of the real system's chunk-admission policy
/// (`fbuf::QuotaPolicy`). The threshold arithmetic below is
/// reimplemented from scratch — the model must not call the real
/// implementation, or the differ would compare it against itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MPolicy {
    /// Static per-allocator cap at `quota` chunks.
    Static,
    /// FB-style dynamic threshold: cap = `num × free_chunks / den`,
    /// floored at one chunk.
    FbDynamic {
        /// Alpha numerator.
        num: u64,
        /// Alpha denominator.
        den: u64,
    },
    /// The dynamic threshold scaled by a per-priority-class percent
    /// weight (class indices wrap at the weight count).
    PriorityWeighted {
        /// Alpha numerator.
        num: u64,
        /// Alpha denominator.
        den: u64,
        /// Per-class weight, percent of base alpha.
        weights: [u64; 4],
    },
}

/// Mirror of the real hoard-detector configuration
/// (`fbuf::JailConfig`). Parameters cross the boundary; the detection
/// arithmetic below is reimplemented from scratch, like [`MPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MJail {
    /// Charged bytes at or above which a tenant is a hoard suspect.
    pub hoard_bytes: u64,
    /// Allocation rounds without a free before the suspect is jailed.
    pub hoard_age: u64,
    /// Jail denials before the escalation revokes the tenant's parked
    /// buffers.
    pub revoke_strikes: u32,
}

/// Model state of one buffer. Fields mirror the observable slice of
/// [`fbuf::Fbuf`].
#[derive(Debug, Clone)]
pub struct MBuf {
    /// Base virtual address.
    pub va: u64,
    /// Size in pages.
    pub pages: u64,
    /// Requested byte length.
    pub len: u64,
    /// Allocating domain.
    pub originator: u32,
    /// Owning path (`None` = uncached).
    pub path: Option<u64>,
    /// Originator write permission removed.
    pub secured: bool,
    /// Current holders, in acquisition order.
    pub holders: Vec<u32>,
    /// Back-pointers into the per-domain held index (parallel to
    /// `holders`).
    held_pos: Vec<usize>,
    /// Domains with installed mappings, in installation order.
    pub mapped_in: Vec<u32>,
    /// Frames present (binary: reclaim takes all, rematerialize restores
    /// all).
    pub resident: bool,
    /// Linked into the pageout daemon's parked list.
    pub park_linked: bool,
}

/// Model state of one data path.
#[derive(Debug, Clone)]
pub struct MPath {
    /// Member domains, traversal order.
    pub domains: Vec<u32>,
    /// Parked free list, cold to hot: `(pages, buffer index)`.
    pub free: Vec<(u64, usize)>,
    /// Still live.
    pub live: bool,
    /// Priority class (feeds [`MPolicy::PriorityWeighted`]).
    pub class: u8,
}

/// One (domain, path) local allocator.
#[derive(Debug, Default, Clone)]
struct MAlloc {
    chunks: Vec<u64>,
    bump: u64,
    free_slots: Vec<(u64, u64)>,
}

/// The eight lifecycle counters the differ compares against
/// [`fbuf_sim::Stats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counters {
    /// Cached allocations satisfied from a free list.
    pub hits: u64,
    /// Cached allocations that had to build a new buffer.
    pub misses: u64,
    /// Buffers secured (write permission removed).
    pub secured: u64,
    /// Reference transfers.
    pub transfers: u64,
    /// Chunks granted by the kernel dispenser.
    pub chunks_granted: u64,
    /// Allocation failures denied organically by the admission policy.
    /// Injected `QuotaExhausted` faults are *not* counted here — they
    /// are the fault plan's tally (`faults_injected`).
    pub quota_denials: u64,
    /// Frames reclaimed by pageout.
    pub frames_reclaimed: u64,
    /// Pages zero-filled.
    pub pages_cleared: u64,
    /// Allocations denied because the tenant was jailed by the hoard
    /// detector.
    pub jail_denials: u64,
    /// Buffers forcibly revoked (jail escalations and stalled-receiver
    /// timeouts alike).
    pub revoked: u64,
    /// Forged or stale tokens rejected before any dereference.
    pub rejected_tokens: u64,
}

/// How a buffer is allocated (mirror of [`fbuf::AllocMode`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MAllocMode {
    /// From path `0`'s allocator, free list first.
    Cached(u64),
    /// From the default allocator.
    Uncached,
}

/// The reference model. See the [module docs](self) for what it mirrors
/// and how fault decisions reach it.
#[derive(Debug)]
pub struct Oracle {
    cfg: OracleConfig,
    /// Kernel chunk dispenser: bump cursor + recycled stack.
    chunk_next: u64,
    chunk_recycled: Vec<u64>,
    total_chunks: u64,
    /// (domain, path) → local allocator. A `BTreeMap` so zombie-chunk
    /// release iterates in sorted key order, exactly like the real
    /// system's sorted-key sweep.
    allocators: BTreeMap<(u32, Option<u64>), MAlloc>,
    /// Paths by id.
    pub paths: Vec<MPath>,
    /// Buffers by model index; indices are never reused, a retired
    /// buffer leaves `None` (the analogue of a stale generational id).
    pub bufs: Vec<Option<MBuf>>,
    held: Vec<Vec<usize>>,
    originated_live: Vec<u64>,
    registered: Vec<bool>,
    terminated: Vec<bool>,
    alive: Vec<bool>,
    /// The pageout daemon's parked list, coldest first.
    pub park: Vec<usize>,
    /// Lifecycle counters.
    pub counters: Counters,
    /// Planted model bug, if any.
    pub sabotage: Option<Sabotage>,
    /// The hoard detector, when armed. The bookkeeping below is always
    /// on, exactly like the real system's.
    jail: Option<MJail>,
    alloc_seq: u64,
    jail_charged: Vec<u64>,
    jail_progress: Vec<u64>,
    jail_strikes: Vec<u32>,
    next_dom: u32,
}

impl Oracle {
    /// A fresh model with the kernel domain (id 0) registered.
    pub fn new(cfg: OracleConfig) -> Oracle {
        assert!(cfg.region_size.is_multiple_of(cfg.chunk_size));
        let total_chunks = cfg.region_size / cfg.chunk_size;
        Oracle {
            cfg,
            chunk_next: 0,
            chunk_recycled: Vec::new(),
            total_chunks,
            allocators: BTreeMap::new(),
            paths: Vec::new(),
            bufs: Vec::new(),
            held: vec![Vec::new()],
            originated_live: vec![0],
            registered: vec![true],
            terminated: vec![false],
            alive: vec![true],
            park: Vec::new(),
            counters: Counters::default(),
            sabotage: None,
            jail: None,
            alloc_seq: 0,
            jail_charged: vec![0],
            jail_progress: vec![0],
            jail_strikes: vec![0],
            next_dom: 1,
        }
    }

    /// Arms (or disarms) the mirror hoard detector.
    pub fn set_jail(&mut self, jail: Option<MJail>) {
        self.jail = jail;
    }

    /// Mirror of `FbufSystem::charged_bytes`.
    pub fn charged_bytes(&self, dom: u32) -> u64 {
        self.jail_charged.get(dom as usize).copied().unwrap_or(0)
    }

    /// Mirror of `FbufSystem::jail_strikes_of`.
    pub fn jail_strikes_of(&self, dom: u32) -> u32 {
        self.jail_strikes.get(dom as usize).copied().unwrap_or(0)
    }

    /// Creates and registers a new domain, returning its id (sequential,
    /// mirroring the real machine).
    pub fn create_domain(&mut self) -> u32 {
        let d = self.next_dom;
        self.next_dom += 1;
        let need = d as usize + 1;
        self.registered.resize(need, false);
        self.terminated.resize(need, false);
        self.alive.resize(need, false);
        self.held.resize_with(need, Vec::new);
        self.originated_live.resize(need, 0);
        self.jail_charged.resize(need, 0);
        self.jail_progress.resize(need, 0);
        self.jail_strikes.resize(need, 0);
        self.registered[d as usize] = true;
        self.alive[d as usize] = true;
        // A fresh tenant starts with a clean hoard clock (mirror of the
        // real `register`).
        self.jail_progress[d as usize] = self.alloc_seq;
        self.jail_strikes[d as usize] = 0;
        d
    }

    /// Declares a path over `domains`.
    pub fn create_path(&mut self, domains: Vec<u32>) -> Result<u64, MErr> {
        for &d in &domains {
            if !self.dom_ok(d) {
                return Err(MErr::UnknownDomain);
            }
        }
        self.paths.push(MPath {
            domains,
            free: Vec::new(),
            live: true,
            class: 0,
        });
        Ok(self.paths.len() as u64 - 1)
    }

    /// Assigns a priority class to a path (mirror of
    /// `FbufSystem::set_path_class`).
    pub fn set_path_class(&mut self, pid: u64, class: u8) -> Result<(), MErr> {
        match self.paths.get_mut(pid as usize) {
            Some(p) => {
                p.class = class;
                Ok(())
            }
            None => Err(MErr::NoSuchPath),
        }
    }

    /// Buffers currently live (parked included).
    pub fn live_count(&self) -> usize {
        self.bufs.iter().filter(|b| b.is_some()).count()
    }

    /// The buffer at model index `ix`, if still live.
    pub fn buf(&self, ix: usize) -> Option<&MBuf> {
        self.bufs.get(ix).and_then(|b| b.as_ref())
    }

    /// Whether domain `d` is registered and alive.
    pub fn dom_ok(&self, d: u32) -> bool {
        let i = d as usize;
        self.registered.get(i).copied().unwrap_or(false)
            && self.alive.get(i).copied().unwrap_or(false)
    }

    fn check_domain(&self, d: u32) -> Result<(), MErr> {
        if self.dom_ok(d) {
            Ok(())
        } else {
            Err(MErr::UnknownDomain)
        }
    }

    fn pages_for(&self, len: u64) -> u64 {
        len.div_ceil(self.cfg.page_size).max(1)
    }

    // ------------------------------------------------------------------
    // Allocation
    // ------------------------------------------------------------------

    /// Mirror of `FbufSystem::alloc`. Returns the model index of the
    /// buffer handed out (an existing index on a cache hit, `bufs.len()`
    /// minus one on a build).
    pub fn alloc(
        &mut self,
        dom: u32,
        mode: MAllocMode,
        len: u64,
        feed: &mut Feed,
    ) -> Result<usize, MErr> {
        self.check_domain(dom)?;
        // Hoard-detector mirror: the round counter always ticks; the
        // check only runs when the jail is armed. Same order as the real
        // `alloc` — a jailed tenant is denied before the path lookup.
        self.alloc_seq += 1;
        if let Some(cfg) = self.jail {
            let d = dom as usize;
            let charged = self.jail_charged.get(d).copied().unwrap_or(0);
            let progress = self.jail_progress.get(d).copied().unwrap_or(0);
            if charged >= cfg.hoard_bytes && self.alloc_seq - progress >= cfg.hoard_age {
                self.jail_strikes[d] += 1;
                self.counters.jail_denials += 1;
                if self.jail_strikes[d] >= cfg.revoke_strikes {
                    self.revoke_hoard(dom)?;
                    self.jail_strikes[d] = 0;
                    self.jail_progress[d] = self.alloc_seq;
                }
                return Err(MErr::Jailed);
            }
        }
        let pages = self.pages_for(len);
        match mode {
            MAllocMode::Cached(pid) => {
                let lifo = self.cfg.lifo ^ (self.sabotage == Some(Sabotage::FifoReuse));
                let taken = {
                    let path = self
                        .paths
                        .get_mut(pid as usize)
                        .filter(|p| p.live)
                        .ok_or(MErr::NoSuchPath)?;
                    if path.domains[0] != dom {
                        return Err(MErr::NotHolder);
                    }
                    let pos = if lifo {
                        path.free.iter().rposition(|&(p, _)| p == pages)
                    } else {
                        path.free.iter().position(|&(p, _)| p == pages)
                    };
                    pos.map(|i| path.free.remove(i).1)
                };
                if let Some(ix) = taken {
                    self.park_remove(ix);
                    self.counters.hits += 1;
                    if !self.bufs[ix].as_ref().expect("parked buf exists").resident {
                        if let Err(e) = self.rematerialize(ix, dom, feed) {
                            // Mirror of the real re-park on failed
                            // rematerialization: back to the hot end.
                            let pages = self.bufs[ix].as_ref().expect("parked").pages;
                            self.paths[pid as usize].free.push((pages, ix));
                            self.park_push(ix);
                            return Err(e);
                        }
                    }
                    let b = self.bufs[ix].as_mut().expect("parked buf exists");
                    debug_assert!(b.holders.is_empty());
                    b.len = len;
                    self.add_holder(ix, dom);
                    Ok(ix)
                } else {
                    self.counters.misses += 1;
                    self.build(dom, Some(pid), pages, len, feed)
                }
            }
            MAllocMode::Uncached => self.build(dom, None, pages, len, feed),
        }
    }

    /// Mirror of `Machine::alloc_frame` behind `frame_with_reclaim`:
    /// consumes one `FrameAlloc` decision per real attempt, and on an
    /// injected failure mirrors the reclaim-then-retry path.
    fn frame_alloc(&mut self, feed: &mut Feed) -> Result<(), MErr> {
        if !feed.take(FaultSite::FrameAlloc) {
            return Ok(());
        }
        if self.reclaim(self.cfg.reclaim_batch, feed) == 0 {
            return Err(MErr::Vm);
        }
        if feed.take(FaultSite::FrameAlloc) {
            return Err(MErr::Vm);
        }
        Ok(())
    }

    fn rematerialize(&mut self, ix: usize, dom: u32, feed: &mut Feed) -> Result<(), MErr> {
        let pages = self.bufs[ix].as_ref().expect("live buf").pages;
        for _ in 0..pages {
            self.frame_alloc(feed)?;
            self.counters.pages_cleared += 1;
        }
        let b = self.bufs[ix].as_mut().expect("live buf");
        b.resident = true;
        if !b.mapped_in.contains(&dom) {
            b.mapped_in.push(dom);
        }
        Ok(())
    }

    fn build(
        &mut self,
        dom: u32,
        path: Option<u64>,
        pages: u64,
        len: u64,
        feed: &mut Feed,
    ) -> Result<usize, MErr> {
        let key = (dom, path);
        self.allocators.entry(key).or_default();
        let va = loop {
            // Mirror of LocalAllocator::carve.
            let bytes = pages * self.cfg.page_size;
            if bytes > self.cfg.chunk_size {
                return Err(MErr::TooLarge);
            }
            let a = self.allocators.get_mut(&key).expect("inserted above");
            if let Some(i) = a.free_slots.iter().position(|&(_, p)| p == pages) {
                break a.free_slots.swap_remove(i).0;
            }
            if let Some(&chunk) = a.chunks.last() {
                if a.bump + bytes <= self.cfg.chunk_size {
                    let va = chunk + a.bump;
                    a.bump += bytes;
                    break va;
                }
            }
            // Needs a chunk: the admission policy rules first (an
            // organic denial short-circuits the fault consult, exactly
            // like the real order in `FbufSystem::build`).
            let held = a.chunks.len() as u64;
            let free = self.total_chunks - self.chunk_next + self.chunk_recycled.len() as u64;
            let class = path
                .and_then(|p| self.paths.get(p as usize))
                .map_or(0, |p| p.class);
            if held >= self.threshold(free, class) {
                self.counters.quota_denials += 1;
                return Err(MErr::QuotaExceeded);
            }
            if feed.take(FaultSite::QuotaExhausted) {
                // Injected denial: the fault plan's tally, not the
                // organic quota counter's.
                return Err(MErr::QuotaExceeded);
            }
            if feed.take(FaultSite::ChunkGrant) {
                return Err(MErr::RegionExhausted);
            }
            let chunk = self.chunk_grant()?;
            self.counters.chunks_granted += 1;
            let a = self.allocators.get_mut(&key).expect("inserted above");
            a.chunks.push(chunk);
            a.bump = 0;
        };
        for _ in 0..pages {
            if let Err(e) = self.frame_alloc(feed) {
                // Mirror of the real build's cleanup: the carved window
                // returns to the allocator as a free slot.
                self.allocators
                    .get_mut(&key)
                    .expect("inserted above")
                    .free_slots
                    .push((va, pages));
                return Err(e);
            }
            self.counters.pages_cleared += 1;
        }
        let ix = self.bufs.len();
        let held_pos = self.held[dom as usize].len();
        self.bufs.push(Some(MBuf {
            va,
            pages,
            len,
            originator: dom,
            path,
            secured: false,
            holders: vec![dom],
            held_pos: vec![held_pos],
            mapped_in: vec![dom],
            resident: true,
            park_linked: false,
        }));
        self.held[dom as usize].push(ix);
        self.originated_live[dom as usize] += 1;
        self.jail_charged[dom as usize] += pages * self.cfg.page_size;
        Ok(ix)
    }

    /// The policy's current allocator-size cap. Deliberately NOT a call
    /// into `fbuf::QuotaPolicy::threshold` — the math is rewritten here
    /// so lockstep runs cross-check the real arithmetic instead of
    /// comparing it against itself.
    fn threshold(&self, free: u64, class: u8) -> u64 {
        match self.cfg.policy {
            MPolicy::Static => self.cfg.quota as u64,
            MPolicy::FbDynamic { num, den } => (num * free / den.max(1)).max(1),
            MPolicy::PriorityWeighted { num, den, weights } => {
                let w = weights[class as usize % weights.len()];
                (num * free * w / (den.max(1) * 100)).max(1)
            }
        }
    }

    /// Mirror of `ChunkAllocator::grant`.
    fn chunk_grant(&mut self) -> Result<u64, MErr> {
        if let Some(va) = self.chunk_recycled.pop() {
            return Ok(va);
        }
        if self.chunk_next == self.total_chunks {
            return Err(MErr::RegionExhausted);
        }
        let va = self.cfg.region_base + self.chunk_next * self.cfg.chunk_size;
        self.chunk_next += 1;
        Ok(va)
    }

    fn add_holder(&mut self, ix: usize, dom: u32) {
        let b = self.bufs[ix].as_mut().expect("live buf");
        if b.holders.contains(&dom) {
            return;
        }
        let hd = &mut self.held[dom as usize];
        b.held_pos.push(hd.len());
        b.holders.push(dom);
        hd.push(ix);
    }

    // ------------------------------------------------------------------
    // Transfer
    // ------------------------------------------------------------------

    /// Mirror of `FbufSystem::send`.
    pub fn send(&mut self, ix: usize, from: u32, to: u32, secure: bool) -> Result<(), MErr> {
        self.check_domain(to)?;
        let b = self
            .bufs
            .get_mut(ix)
            .and_then(|b| b.as_mut())
            .ok_or(MErr::NoSuchFbuf)?;
        if !b.holders.contains(&from) {
            return Err(MErr::NotHolder);
        }
        // Counted before any later failure, exactly like the real path.
        self.counters.transfers += 1;
        let needs_secure = secure && !b.secured && b.originator != 0;
        let needs_map = !b.mapped_in.contains(&to);
        if !needs_secure && !needs_map {
            self.add_holder(ix, to);
            return Ok(());
        }
        if secure {
            self.do_secure(ix)?;
        }
        if needs_map {
            self.bufs[ix]
                .as_mut()
                .expect("checked above")
                .mapped_in
                .push(to);
        }
        self.add_holder(ix, to);
        Ok(())
    }

    /// Mirror of `FbufSystem::secure`.
    pub fn secure(&mut self, ix: usize, requester: u32) -> Result<(), MErr> {
        let b = self
            .bufs
            .get(ix)
            .and_then(|b| b.as_ref())
            .ok_or(MErr::NoSuchFbuf)?;
        if !b.holders.contains(&requester) {
            return Err(MErr::NotHolder);
        }
        self.do_secure(ix)
    }

    fn do_secure(&mut self, ix: usize) -> Result<(), MErr> {
        let b = self.bufs[ix].as_ref().expect("caller checked");
        if b.secured || b.originator == 0 {
            return Ok(());
        }
        // protect_range on a dead originator's mapping is a VM fault and
        // leaves the state (and the counter) untouched.
        if !self.dom_ok(b.originator) {
            return Err(MErr::Vm);
        }
        self.counters.secured += 1;
        self.bufs[ix].as_mut().expect("caller checked").secured = true;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Deallocation
    // ------------------------------------------------------------------

    /// Mirror of `FbufSystem::free`.
    pub fn free(&mut self, ix: usize, dom: u32) -> Result<(), MErr> {
        let b = self
            .bufs
            .get_mut(ix)
            .and_then(|b| b.as_mut())
            .ok_or(MErr::NoSuchFbuf)?;
        let Some(i) = b.holders.iter().position(|&d| d == dom) else {
            return Err(MErr::NotHolder);
        };
        b.holders.swap_remove(i);
        let pos = b.held_pos.swap_remove(i);
        let now_empty = b.holders.is_empty();
        // O(1) held-index removal with back-pointer re-aim, mirroring
        // the real swap_remove dance move for move.
        let hd = &mut self.held[dom as usize];
        debug_assert_eq!(hd[pos], ix);
        hd.swap_remove(pos);
        if pos < hd.len() {
            let moved = hd[pos];
            let mb = self.bufs[moved].as_mut().expect("held buf is live");
            let j = mb
                .holders
                .iter()
                .position(|&d| d == dom)
                .expect("held index consistent");
            mb.held_pos[j] = pos;
        }
        if now_empty {
            self.dealloc(ix)?;
        }
        // Any successful free is progress for the hoard detector.
        self.jail_progress[dom as usize] = self.alloc_seq;
        Ok(())
    }

    /// Mirror of `FbufSystem::revoke`: forcibly release `dom`'s
    /// reference (the timeout-revocation transition).
    pub fn revoke(&mut self, ix: usize, dom: u32) -> Result<(), MErr> {
        let b = self
            .bufs
            .get(ix)
            .and_then(|b| b.as_ref())
            .ok_or(MErr::NoSuchFbuf)?;
        if !b.holders.contains(&dom) {
            return Err(MErr::NotHolder);
        }
        self.counters.revoked += 1;
        self.free(ix, dom)
    }

    /// Mirror of `FbufSystem::revoke_hoard`: the jail escalation retires
    /// every parked buffer the jailed tenant originated, coldest first.
    fn revoke_hoard(&mut self, dom: u32) -> Result<(), MErr> {
        let victims: Vec<usize> = self
            .park
            .iter()
            .copied()
            .filter(|&ix| self.bufs[ix].as_ref().expect("parked buf exists").originator == dom)
            .collect();
        for ix in victims {
            let path = self.bufs[ix]
                .as_ref()
                .expect("parked buf exists")
                .path
                .expect("parked buf is cached");
            self.paths[path as usize].free.retain(|&(_, i)| i != ix);
            self.counters.revoked += 1;
            self.retire(ix)?;
        }
        Ok(())
    }

    /// Mirror of `FbufSystem::check_token` on the rejecting path: a
    /// forged or stale token is counted and nothing else changes.
    pub fn reject_token(&mut self) {
        self.counters.rejected_tokens += 1;
    }

    fn dealloc(&mut self, ix: usize) -> Result<(), MErr> {
        let (path, originator, pages, secured) = {
            let b = self.bufs[ix].as_ref().expect("dealloc of live buf");
            (b.path, b.originator, b.pages, b.secured)
        };
        let cached_live = path
            .and_then(|p| self.paths.get(p as usize))
            .map(|p| p.live)
            .unwrap_or(false)
            && self.alive[originator as usize];
        if cached_live {
            if secured {
                self.bufs[ix].as_mut().expect("live buf").secured = false;
            }
            self.paths[path.expect("cached buf has a path") as usize]
                .free
                .push((pages, ix));
            self.park_push(ix);
            return Ok(());
        }
        self.retire(ix)
    }

    fn retire(&mut self, ix: usize) -> Result<(), MErr> {
        self.park_remove(ix);
        let b = self.bufs[ix].take().expect("retire of live buf");
        debug_assert!(b.holders.is_empty());
        if let Some(a) = self.allocators.get_mut(&(b.originator, b.path)) {
            a.free_slots.push((b.va, b.pages));
        }
        self.originated_live[b.originator as usize] -= 1;
        let charge = b.pages * self.cfg.page_size;
        let c = &mut self.jail_charged[b.originator as usize];
        *c = c.saturating_sub(charge);
        if self.terminated[b.originator as usize] {
            self.maybe_release_zombie_chunks(b.originator);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Pageout
    // ------------------------------------------------------------------

    /// Mirror of `FbufSystem::reclaim_frames`: coldest parked victims
    /// first, one `ReclaimRefusal` consult per victim considered.
    pub fn reclaim(&mut self, want: usize, feed: &mut Feed) -> usize {
        let mut reclaimed = 0;
        while reclaimed < want {
            if self.park.is_empty() {
                break;
            }
            if feed.take(FaultSite::ReclaimRefusal) {
                break;
            }
            let ix = self.park.remove(0);
            let b = self.bufs[ix].as_mut().expect("parked buf exists");
            b.park_linked = false;
            b.mapped_in.clear();
            let took = if b.resident { b.pages } else { 0 };
            b.resident = false;
            if took > 0 {
                self.counters.frames_reclaimed += took;
                reclaimed += took as usize;
            }
        }
        reclaimed
    }

    fn park_push(&mut self, ix: usize) {
        let b = self.bufs[ix].as_mut().expect("parked buf exists");
        debug_assert!(!b.park_linked, "double park");
        b.park_linked = true;
        self.park.push(ix);
    }

    fn park_remove(&mut self, ix: usize) {
        let b = self.bufs[ix].as_mut().expect("buf exists");
        if !b.park_linked {
            return;
        }
        b.park_linked = false;
        self.park.retain(|&p| p != ix);
    }

    // ------------------------------------------------------------------
    // Termination
    // ------------------------------------------------------------------

    /// Mirror of `FbufSystem::terminate_domain`.
    pub fn terminate(&mut self, dom: u32) -> Result<(), MErr> {
        self.check_domain(dom)?;
        // 1. Release every held reference, last acquired first.
        while let Some(&ix) = self.held[dom as usize].last() {
            self.free(ix, dom)?;
        }
        // 2. Kill paths through the domain; retire their parked buffers
        //    cold-first.
        let dead: Vec<usize> = self
            .paths
            .iter()
            .enumerate()
            .filter(|(_, p)| p.live && p.domains.contains(&dom))
            .map(|(i, _)| i)
            .collect();
        for pid in dead {
            let drained: Vec<usize> = {
                let p = &mut self.paths[pid];
                p.live = false;
                p.free.drain(..).map(|(_, ix)| ix).collect()
            };
            for ix in drained {
                self.retire(ix)?;
            }
        }
        // 3. Machine-level death, then zombie-chunk bookkeeping.
        self.alive[dom as usize] = false;
        self.registered[dom as usize] = false;
        self.terminated[dom as usize] = true;
        self.maybe_release_zombie_chunks(dom);
        Ok(())
    }

    fn maybe_release_zombie_chunks(&mut self, dom: u32) {
        if self
            .originated_live
            .get(dom as usize)
            .copied()
            .unwrap_or(0)
            > 0
        {
            return;
        }
        // BTreeMap range iteration is sorted, matching the real system's
        // sorted-key sweep — chunk recycling order is identical.
        let keys: Vec<(u32, Option<u64>)> = self
            .allocators
            .range((dom, None)..=(dom, Some(u64::MAX)))
            .map(|(k, _)| *k)
            .collect();
        for k in keys {
            let a = self.allocators.remove(&k).expect("key just listed");
            for chunk in a.chunks {
                self.chunk_recycled.push(chunk);
            }
        }
    }

    // ------------------------------------------------------------------
    // Data-access predictions
    // ------------------------------------------------------------------

    /// Predicted outcome of `FbufSystem::write_fbuf` for a write of
    /// `len >= 1` bytes at `off` (zero-length writes are excluded: the
    /// real machine trivially accepts them without touching any page).
    pub fn write(&mut self, dom: u32, ix: usize, off: u64, len: u64) -> Result<(), MErr> {
        debug_assert!(len >= 1);
        let b = self
            .bufs
            .get(ix)
            .and_then(|b| b.as_ref())
            .ok_or(MErr::NoSuchFbuf)?;
        if off + len > b.len {
            return Err(MErr::TooLarge);
        }
        if !self.dom_ok(dom) {
            return Err(MErr::Vm);
        }
        if !b.mapped_in.contains(&dom) {
            // Writes never trigger the null-read policy: an unmapped
            // fbuf-region page faults.
            return Err(MErr::Vm);
        }
        if dom == b.originator && !b.secured {
            Ok(())
        } else {
            Err(MErr::Vm)
        }
    }

    /// Predicted outcome of a read of `len` bytes at `off` by a domain
    /// with an installed mapping (`Ok` means the bytes come back).
    pub fn read_predict(&self, dom: u32, ix: usize, off: u64, len: u64) -> Result<(), MErr> {
        let b = self
            .bufs
            .get(ix)
            .and_then(|b| b.as_ref())
            .ok_or(MErr::NoSuchFbuf)?;
        if off + len > b.len {
            return Err(MErr::TooLarge);
        }
        if !self.dom_ok(dom) {
            return Err(MErr::Vm);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> OracleConfig {
        OracleConfig {
            page_size: 4096,
            chunk_size: 16 << 10,
            region_base: 0x4000_0000,
            region_size: 1 << 20,
            quota: 8,
            lifo: true,
            policy: MPolicy::Static,
            reclaim_batch: 8,
        }
    }

    fn quiet_feed() -> Feed {
        Feed::default()
    }

    fn dec(site: FaultSite, fired: bool) -> FaultDecision {
        FaultDecision { site, fired }
    }

    /// A feed that answers `n` FrameAlloc consults with "not fired" —
    /// the consult stream of a build inside an already-granted chunk.
    fn frames_ok(n: usize) -> Feed {
        let mut f = Feed::default();
        f.load((0..n).map(|_| dec(FaultSite::FrameAlloc, false)).collect());
        f
    }

    /// The consult stream of a build that must be granted a new chunk:
    /// quota check, chunk grant, then one frame per page.
    fn chunked_build(pages: usize) -> Feed {
        let mut f = Feed::default();
        let mut ds = vec![
            dec(FaultSite::QuotaExhausted, false),
            dec(FaultSite::ChunkGrant, false),
        ];
        ds.extend((0..pages).map(|_| dec(FaultSite::FrameAlloc, false)));
        f.load(ds);
        f
    }

    #[test]
    fn build_park_and_lifo_reuse() {
        let mut o = Oracle::new(cfg());
        let a = o.create_domain();
        let b = o.create_domain();
        let p = o.create_path(vec![a, b]).unwrap();
        let mut f = chunked_build(1);
        let i1 = o.alloc(a, MAllocMode::Cached(p), 4096, &mut f).unwrap();
        f.finish().unwrap();
        let mut f = frames_ok(1);
        let i2 = o.alloc(a, MAllocMode::Cached(p), 4096, &mut f).unwrap();
        f.finish().unwrap();
        assert_eq!((i1, i2), (0, 1));
        assert_eq!(o.counters.misses, 2);
        o.free(i1, a).unwrap();
        o.free(i2, a).unwrap();
        assert_eq!(o.paths[p as usize].free.len(), 2);
        assert_eq!(o.park, vec![0, 1]);
        // LIFO: the hot buffer (i2) comes back first.
        let mut f = quiet_feed();
        let got = o.alloc(a, MAllocMode::Cached(p), 4096, &mut f).unwrap();
        assert_eq!(got, i2);
        assert_eq!(o.counters.hits, 1);
        f.finish().unwrap();
    }

    #[test]
    fn fifo_sabotage_flips_reuse_order() {
        let mut o = Oracle::new(cfg());
        o.sabotage = Some(Sabotage::FifoReuse);
        let a = o.create_domain();
        let b = o.create_domain();
        let p = o.create_path(vec![a, b]).unwrap();
        let mut f = chunked_build(1);
        let i1 = o.alloc(a, MAllocMode::Cached(p), 4096, &mut f).unwrap();
        f.finish().unwrap();
        let mut f = frames_ok(1);
        let i2 = o.alloc(a, MAllocMode::Cached(p), 4096, &mut f).unwrap();
        f.finish().unwrap();
        o.free(i1, a).unwrap();
        o.free(i2, a).unwrap();
        let mut f = quiet_feed();
        let got = o.alloc(a, MAllocMode::Cached(p), 4096, &mut f).unwrap();
        f.finish().unwrap();
        assert_eq!(got, i1, "sabotaged model takes the cold buffer");
    }

    #[test]
    fn quota_and_region_mirror_counters() {
        let mut o = Oracle::new(cfg());
        let a = o.create_domain();
        // 8-chunk quota × 4 pages per chunk = 32 one-page buffers.
        let mut ixs = Vec::new();
        for i in 0..32 {
            // Every 4th allocation opens a fresh chunk (4 pages each).
            let mut f = if i % 4 == 0 {
                chunked_build(1)
            } else {
                frames_ok(1)
            };
            ixs.push(o.alloc(a, MAllocMode::Uncached, 4096, &mut f).unwrap());
            f.finish().unwrap();
        }
        assert_eq!(o.counters.chunks_granted, 8);
        let mut f = quiet_feed();
        // Organic quota denial consumes no fault decision.
        assert_eq!(
            o.alloc(a, MAllocMode::Uncached, 4096, &mut f),
            Err(MErr::QuotaExceeded)
        );
        f.finish().unwrap();
        assert_eq!(o.counters.quota_denials, 1);
        // Retiring a buffer frees its exact-fit slot for reuse (no new
        // chunk consults: the slot satisfies the request).
        o.free(ixs[5], a).unwrap();
        let mut f = frames_ok(1);
        let re = o.alloc(a, MAllocMode::Uncached, 4096, &mut f).unwrap();
        f.finish().unwrap();
        let want_va = o.buf(ixs[4]).unwrap().va + 4096;
        assert_eq!(o.buf(re).unwrap().va, want_va, "exact-fit slot reused");
    }

    #[test]
    fn injected_quota_and_chunk_grant_decisions() {
        let mut o = Oracle::new(cfg());
        let a = o.create_domain();
        let mut f = Feed::default();
        f.load(vec![FaultDecision {
            site: FaultSite::QuotaExhausted,
            fired: true,
        }]);
        assert_eq!(
            o.alloc(a, MAllocMode::Uncached, 4096, &mut f),
            Err(MErr::QuotaExceeded)
        );
        f.finish().unwrap();
        // An injected denial is the fault plan's tally, not an organic
        // quota denial.
        assert_eq!(o.counters.quota_denials, 0);
        let mut f = Feed::default();
        f.load(vec![
            FaultDecision {
                site: FaultSite::QuotaExhausted,
                fired: false,
            },
            FaultDecision {
                site: FaultSite::ChunkGrant,
                fired: true,
            },
        ]);
        assert_eq!(
            o.alloc(a, MAllocMode::Uncached, 4096, &mut f),
            Err(MErr::RegionExhausted)
        );
        f.finish().unwrap();
        assert_eq!(o.counters.chunks_granted, 0);
    }

    #[test]
    fn dynamic_policy_tracks_the_free_pool_not_the_quota() {
        let mut c = cfg();
        c.policy = MPolicy::FbDynamic { num: 1, den: 1 };
        let mut o = Oracle::new(c);
        let a = o.create_domain();
        // Each 16 KB allocation consumes a whole chunk. 64 chunks total;
        // with alpha = 1 the k-th grant is admitted iff k < 64 - k, so
        // exactly 32 succeed — way past the static quota of 8.
        for _ in 0..32 {
            let mut f = chunked_build(4);
            o.alloc(a, MAllocMode::Uncached, 16 << 10, &mut f).unwrap();
            f.finish().unwrap();
        }
        assert_eq!(o.counters.chunks_granted, 32);
        // The 33rd is denied organically, consuming no fault decision.
        let mut f = quiet_feed();
        assert_eq!(
            o.alloc(a, MAllocMode::Uncached, 16 << 10, &mut f),
            Err(MErr::QuotaExceeded)
        );
        f.finish().unwrap();
        assert_eq!(o.counters.quota_denials, 1);
    }

    #[test]
    fn priority_class_scales_the_dynamic_threshold() {
        let mut c = cfg();
        c.policy = MPolicy::PriorityWeighted {
            num: 1,
            den: 1,
            weights: [50, 100, 150, 200],
        };
        let mut o = Oracle::new(c);
        let a = o.create_domain();
        let b = o.create_domain();
        let p = o.create_path(vec![a, b]).unwrap();
        o.set_path_class(p, 0).unwrap();
        // Class 0 halves alpha: the k-th grant is admitted iff
        // k < ⌊(64 - k) / 2⌋, so 21 chunk grants succeed before the
        // organic denial.
        for i in 0..21 {
            let mut f = chunked_build(4);
            let ix = o.alloc(a, MAllocMode::Cached(p), 16 << 10, &mut f).unwrap();
            f.finish().unwrap();
            assert_eq!(ix, i, "every allocation builds fresh");
        }
        let mut f = quiet_feed();
        assert_eq!(
            o.alloc(a, MAllocMode::Cached(p), 16 << 10, &mut f),
            Err(MErr::QuotaExceeded)
        );
        f.finish().unwrap();
        assert_eq!(o.counters.chunks_granted, 21);
        assert_eq!(o.counters.quota_denials, 1);
        assert_eq!(o.set_path_class(99, 1), Err(MErr::NoSuchPath));
    }

    #[test]
    fn secure_send_write_protection() {
        let mut o = Oracle::new(cfg());
        let a = o.create_domain();
        let b = o.create_domain();
        let mut f = chunked_build(1);
        let ix = o.alloc(a, MAllocMode::Uncached, 100, &mut f).unwrap();
        f.finish().unwrap();
        assert_eq!(o.write(a, ix, 0, 4), Ok(()));
        assert_eq!(o.write(b, ix, 0, 4), Err(MErr::Vm), "not mapped yet");
        o.send(ix, a, b, true).unwrap();
        assert_eq!(o.counters.secured, 1);
        assert_eq!(o.counters.transfers, 1);
        assert_eq!(o.write(a, ix, 0, 4), Err(MErr::Vm), "secured");
        assert_eq!(o.write(b, ix, 0, 4), Err(MErr::Vm), "read-only map");
        assert_eq!(o.write(a, ix, 99, 4), Err(MErr::TooLarge));
    }

    #[test]
    fn terminate_parks_then_releases_zombie_chunks() {
        let mut o = Oracle::new(cfg());
        let a = o.create_domain();
        let b = o.create_domain();
        let mut f = chunked_build(1);
        let ix = o.alloc(a, MAllocMode::Uncached, 100, &mut f).unwrap();
        f.finish().unwrap();
        o.send(ix, a, b, false).unwrap();
        let granted = o.chunk_next;
        o.terminate(a).unwrap();
        // b's reference keeps the buffer (and a's chunks) alive.
        assert!(o.buf(ix).is_some());
        assert_eq!(o.chunk_recycled.len(), 0);
        o.free(ix, b).unwrap();
        assert!(o.buf(ix).is_none());
        assert_eq!(o.chunk_recycled.len() as u64, granted);
        // The terminated domain errors out of everything.
        assert_eq!(
            o.alloc(a, MAllocMode::Uncached, 100, &mut quiet_feed()),
            Err(MErr::UnknownDomain)
        );
    }

    #[test]
    fn reclaim_strips_residency_and_mappings() {
        let mut o = Oracle::new(cfg());
        let a = o.create_domain();
        let b = o.create_domain();
        let p = o.create_path(vec![a, b]).unwrap();
        let mut f = chunked_build(2);
        let ix = o.alloc(a, MAllocMode::Cached(p), 2 * 4096, &mut f).unwrap();
        f.finish().unwrap();
        o.free(ix, a).unwrap();
        let mut f = Feed::default();
        f.load(vec![FaultDecision {
            site: FaultSite::ReclaimRefusal,
            fired: false,
        }]);
        assert_eq!(o.reclaim(2, &mut f), 2);
        f.finish().unwrap();
        let bf = o.buf(ix).unwrap();
        assert!(!bf.resident && !bf.park_linked && bf.mapped_in.is_empty());
        assert_eq!(o.counters.frames_reclaimed, 2);
        // Still parked on the path: a later alloc rematerializes.
        let mut f = frames_ok(2);
        let got = o.alloc(a, MAllocMode::Cached(p), 2 * 4096, &mut f).unwrap();
        f.finish().unwrap();
        assert_eq!(got, ix);
        assert!(o.buf(ix).unwrap().resident);
        assert_eq!(o.counters.pages_cleared, 4, "2 at build + 2 at remat");
    }

    #[test]
    fn reclaim_refusal_decision_stops_the_sweep() {
        let mut o = Oracle::new(cfg());
        let a = o.create_domain();
        let b = o.create_domain();
        let p = o.create_path(vec![a, b]).unwrap();
        let mut f = chunked_build(1);
        let i1 = o.alloc(a, MAllocMode::Cached(p), 4096, &mut f).unwrap();
        f.finish().unwrap();
        let mut f = frames_ok(1);
        let i2 = o.alloc(a, MAllocMode::Cached(p), 4096, &mut f).unwrap();
        f.finish().unwrap();
        o.free(i1, a).unwrap();
        o.free(i2, a).unwrap();
        let mut f = Feed::default();
        f.load(vec![FaultDecision {
            site: FaultSite::ReclaimRefusal,
            fired: true,
        }]);
        assert_eq!(o.reclaim(8, &mut f), 0, "pinned head blocks the pass");
        f.finish().unwrap();
        assert!(o.buf(i1).unwrap().resident);
    }

    #[test]
    fn feed_mismatch_poisons_instead_of_firing() {
        let mut f = Feed::default();
        f.load(vec![FaultDecision {
            site: FaultSite::RingFull,
            fired: true,
        }]);
        assert!(!f.take(FaultSite::FrameAlloc), "mismatch never fires");
        let err = f.finish().unwrap_err();
        assert!(err.contains("frame_alloc"), "{err}");
        // Leftover decisions are their own divergence.
        let mut f = Feed::default();
        f.load(vec![FaultDecision {
            site: FaultSite::ChunkGrant,
            fired: false,
        }]);
        let err = f.finish().unwrap_err();
        assert!(err.contains("chunk_grant"), "{err}");
    }
}
