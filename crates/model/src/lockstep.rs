//! Lockstep execution of the real system and the reference model.
//!
//! A [`Harness`] owns one real [`FbufSystem`] (with an armed, logging
//! [`FaultPlan`]) and one [`crate::Oracle`], and drives both with the
//! same [`Cmd`] stream:
//!
//! 1. the real operation runs, logging every fault-plan consult;
//! 2. the consult log is drained into the model's [`Feed`];
//! 3. the model's mirror transition runs, replaying the decisions;
//! 4. outcome kinds are compared, the feed must come up exactly empty,
//!    and the **entire observable state** is diffed (see
//!    [`crate::oracle`] for the definition).
//!
//! Any mismatch — a different error, a buffer field off by one, a parked
//! list in a different order, a counter drifting, a fault consult the
//! model did not predict — is a divergence, reported with the failing
//! step index so the fuzzer can shrink the sequence.
//!
//! # Topology
//!
//! Six domains on three paths: `P0 = [d0, d1, d2]`, `P1 = [d1, d3]`, and
//! an egress pair `PE = [d4, d5]` reserved for the cross-ring traffic.
//! The harness owns both ends of two small SPSC rings (data payloads,
//! and deallocation notices coalesced into [`NoticeBatch`] slots of up
//! to [`NOTICE_COALESCE`] tokens — flushed when the window fills or on
//! an explicit [`Cmd::FlushBatch`]), capacity [`RING_CAP`], and mirrors
//! their occupancy in plain `VecDeque`s — so ring-full backpressure at
//! batch boundaries, dropped batches, and crash-while-tokens-in-flight
//! are all part of the diffed state. Domains may be terminated (by command or by an injected crash)
//! and a bounded number respawned; every error path this opens up
//! (stale ids, dead paths, unknown domains) must reproduce identically
//! on both sides.

use std::collections::VecDeque;
use std::rc::Rc;

use fbuf::shard::{NoticeBatch, NOTICE_BATCH_MAX};
use fbuf::{
    AllocMode, FbufError, FbufId, FbufState, FbufSystem, JailConfig, PathId, QuotaPolicy, SendMode,
};
use fbuf_sim::spsc::{self, Consumer, Producer};
use fbuf_sim::{audit_tracer, FaultPlan, FaultSite, FaultSpec, MachineConfig};
use fbuf_vm::DomainId;

use crate::cmd::{Cmd, SLOTS};
use crate::oracle::{Feed, MAllocMode, MErr, MJail, MPolicy, Oracle, OracleConfig, Sabotage};

/// Priority classes the harness pins on its three paths (`P0`, `P1`,
/// `PE` in declaration order). Always assigned — [`QuotaPolicy::Static`]
/// and [`QuotaPolicy::FbDynamic`] ignore them, so the class plumbing is
/// lockstep-exercised under every policy.
pub const PATH_CLASSES: [u8; 3] = [1, 2, 3];

/// Translates the real policy into the model's independent mirror. Only
/// the *parameters* cross this boundary — the threshold math on the
/// model side is a from-scratch reimplementation.
fn mirror_policy(p: QuotaPolicy) -> MPolicy {
    match p {
        QuotaPolicy::Static => MPolicy::Static,
        QuotaPolicy::FbDynamic { alpha_num, alpha_den } => MPolicy::FbDynamic {
            num: alpha_num,
            den: alpha_den,
        },
        QuotaPolicy::PriorityWeighted {
            alpha_num,
            alpha_den,
            weights,
        } => MPolicy::PriorityWeighted {
            num: alpha_num,
            den: alpha_den,
            weights,
        },
    }
}

/// Capacity of the data and notice rings.
pub const RING_CAP: usize = 4;

/// Notice-coalescing window of the harness: tokens staged per
/// [`NoticeBatch`] before an automatic flush. Deliberately small (and
/// below [`NOTICE_BATCH_MAX`]) so command streams routinely exercise
/// partial batches, threshold flushes, and explicit [`Cmd::FlushBatch`]
/// flushes of leftovers.
pub const NOTICE_COALESCE: usize = 3;

/// A stamped payload in flight on the data ring: token, real id, model
/// index.
type CrossMsg = (u64, FbufId, usize);

/// The lockstep differ. See the [module docs](self).
pub struct Harness {
    sys: FbufSystem,
    model: Oracle,
    plan: Rc<FaultPlan>,
    feed: Feed,
    /// Counter baseline at construction (the real system clears pages
    /// during setup; the model starts at zero).
    base: [u64; 11],
    /// Model index → real id. Model indices are never reused, so this
    /// only grows.
    ids: Vec<FbufId>,
    slots: [Option<(FbufId, usize)>; SLOTS],
    roster: Vec<DomainId>,
    alloc_paths: [PathId; 2],
    egress: PathId,
    d4: DomainId,
    data_tx: Producer<CrossMsg>,
    data_rx: Consumer<CrossMsg>,
    notice_tx: Producer<NoticeBatch>,
    notice_rx: Consumer<NoticeBatch>,
    model_data: VecDeque<u64>,
    /// Mirror of the notice ring: one entry per in-flight batch, each
    /// the exact token sequence the real `NoticeBatch` slot carries.
    model_notice: VecDeque<Vec<u64>>,
    /// Tokens staged toward the next notice batch (host-plane state the
    /// real and model sides share by construction; what is diffed is the
    /// ring occupancy and every lifecycle effect of the acks).
    notice_stage: Vec<u64>,
    /// Tokens pushed but not yet acknowledged. A dropped notice leaves
    /// its entry (and its held buffer) here until the egress domain dies.
    pending: Vec<CrossMsg>,
    /// The hostile producer's stash: buffers allocated by [`Cmd::Hoard`]
    /// and never freed (until the jail revokes around them or their
    /// tenant dies). Bounded at [`SLOTS`] entries.
    hoard: [Option<(FbufId, usize)>; SLOTS],
    step: u64,
    respawns: u32,
}

impl Harness {
    /// Builds the pair under the [`QuotaPolicy::Static`] admission
    /// policy. See [`Harness::with_policy`].
    pub fn new(spec: &FaultSpec, sabotage: Option<Sabotage>) -> Harness {
        Harness::with_policy(spec, sabotage, QuotaPolicy::Static)
    }

    /// Builds the pair: a real system on a roomy `tiny()` machine (extra
    /// physical memory so out-of-memory only happens when injected), six
    /// domains, three paths (classes per [`PATH_CLASSES`]), armed fault
    /// plan, mirrored model running `policy` on both sides — parameters
    /// shared, arithmetic independent.
    pub fn with_policy(
        spec: &FaultSpec,
        sabotage: Option<Sabotage>,
        policy: QuotaPolicy,
    ) -> Harness {
        let mut cfg = MachineConfig::tiny();
        // The fbuf region holds at most 256 pages; 4096 frames make
        // organic frame exhaustion impossible, so every allocation
        // failure is either injected or a region/quota condition the
        // model predicts exactly.
        cfg.phys_mem = 16 << 20;
        let mut sys = FbufSystem::new(cfg.clone());
        sys.machine().tracer_ref().set_enabled(true);
        sys.set_quota_policy(policy);
        let mut model = Oracle::new(OracleConfig {
            page_size: cfg.page_size,
            chunk_size: cfg.chunk_size,
            region_base: cfg.fbuf_region_base,
            region_size: cfg.fbuf_region_size,
            quota: cfg.max_chunks_per_path,
            lifo: true,
            policy: mirror_policy(policy),
            reclaim_batch: cfg.reclaim_batch,
        });
        model.sabotage = sabotage;

        let doms: Vec<DomainId> = (0..6).map(|_| sys.create_domain()).collect();
        for d in &doms {
            assert_eq!(model.create_domain(), d.0, "domain numbering lockstep");
        }
        let p0 = sys.create_path(vec![doms[0], doms[1], doms[2]]).unwrap();
        let p1 = sys.create_path(vec![doms[1], doms[3]]).unwrap();
        let pe = sys.create_path(vec![doms[4], doms[5]]).unwrap();
        for (pid, members) in [(p0, vec![0, 1, 2]), (p1, vec![1, 3]), (pe, vec![4, 5])] {
            let mdoms = members.iter().map(|&i: &usize| doms[i].0).collect();
            assert_eq!(model.create_path(mdoms), Ok(pid.0), "path numbering lockstep");
        }
        for (p, class) in [p0, p1, pe].into_iter().zip(PATH_CLASSES) {
            sys.set_path_class(p, class).unwrap();
            model.set_path_class(p.0, class).unwrap();
        }

        let plan = Rc::new(spec.arm());
        plan.set_log(true);
        sys.arm_faults(Rc::clone(&plan));

        let (data_tx, data_rx) = spsc::ring(RING_CAP);
        let (notice_tx, notice_rx) = spsc::ring(RING_CAP);
        let base = Self::counters_of(&sys);
        Harness {
            sys,
            model,
            plan,
            feed: Feed::default(),
            base,
            ids: Vec::new(),
            slots: [None; SLOTS],
            roster: doms.clone(),
            alloc_paths: [p0, p1],
            egress: pe,
            d4: doms[4],
            data_tx,
            data_rx,
            notice_tx,
            notice_rx,
            model_data: VecDeque::new(),
            model_notice: VecDeque::new(),
            notice_stage: Vec::new(),
            pending: Vec::new(),
            hoard: [None; SLOTS],
            step: 0,
            respawns: 0,
        }
    }

    /// Arms the hoard detector on both sides with thresholds aggressive
    /// enough that a fuzzed hostile producer actually trips it (charged
    /// bytes a third of the fbuf region, a short no-free window, two
    /// strikes to escalation). Only adversarial runs call this — the
    /// recorded benign corpus replays with the jail disarmed, so its
    /// byte-exact behavior is untouched.
    pub fn arm_containment(&mut self) {
        let cfg = JailConfig {
            hoard_bytes: 24 * 4096,
            hoard_age: 8,
            revoke_strikes: 2,
        };
        self.sys.set_jail(Some(cfg));
        self.model.set_jail(Some(MJail {
            hoard_bytes: cfg.hoard_bytes,
            hoard_age: cfg.hoard_age,
            revoke_strikes: cfg.revoke_strikes,
        }));
    }

    /// Containment counters after a run: `[jail_denials,
    /// fbufs_revoked, tokens_rejected]`. Both sides agree by the time a
    /// case finishes (the per-command diff covers all three), so
    /// reading the real side is authoritative.
    pub fn containment_counters(&self) -> [u64; 3] {
        let s = self.sys.stats();
        [s.jail_denials(), s.fbufs_revoked(), s.tokens_rejected()]
    }

    /// Total faults the armed plan injected so far, per site.
    pub fn injected(&self) -> [u64; fbuf_sim::fault::SITE_COUNT] {
        let mut out = [0; fbuf_sim::fault::SITE_COUNT];
        for (i, s) in FaultSite::ALL.iter().enumerate() {
            out[i] = self.plan.injected(*s);
        }
        out
    }

    /// Runs the whole sequence; `Err((index, why))` names the first
    /// diverging command (index `cmds.len()` = the end-of-case audit).
    pub fn run(&mut self, cmds: &[Cmd]) -> Result<(), (usize, String)> {
        for (i, &cmd) in cmds.iter().enumerate() {
            self.step_cmd(cmd).map_err(|e| (i, format!("{cmd:?}: {e}")))?;
        }
        self.finish_case().map_err(|e| (cmds.len(), e))
    }

    /// Executes one command on both sides and diffs everything.
    pub fn step_cmd(&mut self, cmd: Cmd) -> Result<(), String> {
        if self.plan.crash_due(self.step) && !self.roster.is_empty() {
            let victim = self.roster[self.step as usize % self.roster.len()];
            self.terminate(victim)?;
        }
        self.exec(cmd)?;
        self.sweep_slots();
        self.step += 1;
        self.diff()
    }

    /// End-of-case checks: the trace auditor replays every recorded
    /// lifecycle event, the per-tenant ledger must still conserve
    /// against the fleet counters (revocations and token rejections
    /// included — an adversarial run that unbalanced either is a bug),
    /// and the final states must still agree.
    pub fn finish_case(&mut self) -> Result<(), String> {
        let report = audit_tracer(self.sys.machine().tracer_ref());
        if !report.is_clean() {
            let list: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
            return Err(format!(
                "replay audit found {} violation(s): {}",
                list.len(),
                list.join("; ")
            ));
        }
        let unbalanced = self
            .sys
            .ledger_snapshot()
            .conserves(&self.sys.stats().snapshot());
        if !unbalanced.is_empty() {
            return Err(format!("ledger conservation broken: {}", unbalanced.join("; ")));
        }
        self.diff()
    }

    // ------------------------------------------------------------------
    // Command execution
    // ------------------------------------------------------------------

    fn exec(&mut self, cmd: Cmd) -> Result<(), String> {
        match cmd {
            Cmd::Alloc {
                slot,
                cached,
                path_sel,
                pages,
                dom_sel,
            } => self.do_alloc(slot, cached, path_sel, pages, dom_sel),
            Cmd::Send {
                slot,
                from_sel,
                to_sel,
                secure,
            } => self.do_send(slot, from_sel, to_sel, secure),
            Cmd::Free { slot, holder_sel } => self.do_free(slot, holder_sel),
            Cmd::Write {
                slot,
                dom_sel,
                off,
                len,
            } => self.do_write(slot, dom_sel, off, len),
            Cmd::Secure { slot, holder_sel } => self.do_secure_cmd(slot, holder_sel),
            Cmd::Pageout { want } => self.do_pageout(want),
            Cmd::CrossSend => self.do_cross_send(),
            Cmd::CrossPoll => self.do_cross_poll(),
            Cmd::FlushBatch => self.flush_notices(),
            Cmd::Terminate { dom_sel } => match self.pick(dom_sel) {
                Some(d) => {
                    self.terminate(d)?;
                    Ok(())
                }
                None => Ok(()),
            },
            Cmd::Respawn => self.do_respawn(),
            Cmd::Hop { from_sel, to_sel } => self.do_hop(from_sel, to_sel),
            Cmd::Hoard { slot, pages } => self.do_hoard(slot, pages),
            Cmd::Expire { slot } => self.do_expire(slot),
            Cmd::Forge { salt } => self.do_forge(salt),
        }
    }

    /// Hostile-producer persona: a cached allocation by `P0`'s
    /// originator that lands on the hoard list and is never freed. Once
    /// the hoarder's charged bytes cross the jail threshold and its
    /// no-free window ages out, both sides must deny with
    /// `TenantJailed` — and, at the strike limit, revoke the tenant's
    /// parked buffers identically.
    fn do_hoard(&mut self, slot: u8, pages: u8) -> Result<(), String> {
        let hs = slot as usize % SLOTS;
        if self.hoard[hs].is_some() {
            return Ok(());
        }
        let dom = DomainId(1); // P0's declared originator
        let pid = self.alloc_paths[0];
        let len = pages.clamp(1, 4) as u64 * 4096;
        let real = self.sys.alloc(dom, AllocMode::Cached(pid), len);
        self.sync();
        let model = self.model.alloc(dom.0, MAllocMode::Cached(pid.0), len, &mut self.feed);
        self.outcome("hoard alloc", &real, &model)?;
        self.feed.finish()?;
        if let (Ok(id), Ok(ix)) = (real, model) {
            if ix == self.ids.len() {
                self.ids.push(id);
            } else if self.ids[ix] != id {
                return Err(format!(
                    "hoard cache hit identity mismatch: model index {ix} is {:?}, real {id:?}",
                    self.ids[ix]
                ));
            }
            self.hoard[hs] = Some((id, ix));
        }
        Ok(())
    }

    /// Stalled-receiver persona: the revocation deadline fires on the
    /// buffer in `slot`, forcibly revoking its deepest holder — the same
    /// transition the engine's timeout takes, driven deterministically
    /// so both sides see the exact command position it happens at.
    fn do_expire(&mut self, slot: u8) -> Result<(), String> {
        let Some((id, ix)) = self.slots[slot as usize % SLOTS] else {
            return Ok(());
        };
        let Some(dom) = self.model.buf(ix).and_then(|b| b.holders.last().copied()) else {
            return Ok(());
        };
        let real = self.sys.revoke(id, DomainId(dom));
        self.sync();
        let model = self.model.revoke(ix, dom);
        self.outcome("expire revoke", &real, &model)?;
        self.feed.finish()
    }

    /// Token-forger persona: presents a stale handle — a live buffer's
    /// id with its generation bits perturbed, or a never-issued handle
    /// when nothing is live. The defense must refuse to resolve it,
    /// mutate nothing the differ tracks, and count exactly one
    /// rejection per attempt on each side.
    fn do_forge(&mut self, salt: u8) -> Result<(), String> {
        let raw = match self.slots.iter().flatten().next() {
            // Same arena slot, guaranteed-different generation.
            Some(&(id, _)) => id.0 ^ ((salt as u64 + 1) << 32),
            // Generation 0xffff_ffff is never reached by any slot.
            None => (0xffff_ffffu64 << 32) | salt as u64,
        };
        if self.sys.check_token(self.d4, None, raw) {
            return Err(format!("forged token {raw:#x} resolved to a live buffer"));
        }
        self.sync();
        self.model.reject_token();
        self.feed.finish()
    }

    /// Drives one bare hop through the event-loop engine. The oracle
    /// transition is the identity (RPC charging is outside the diffed
    /// state), so this command checks that scheduling a hop as an event
    /// — enqueue, dequeue, handler, completion — leaves every model-
    /// tracked observable untouched, drains the loop, and never takes
    /// the overload path on a sequential post.
    fn do_hop(&mut self, from_sel: u8, to_sel: u8) -> Result<(), String> {
        let Some(from) = self.pick(from_sel) else {
            return Ok(());
        };
        let Some(to) = self.pick(to_sel) else {
            return Ok(());
        };
        if from == to {
            return Ok(());
        }
        self.sys.hop(from, to);
        self.sync();
        if self.sys.engine_pending() != 0 {
            return Err(format!(
                "hop left {} event(s) pending — the loop must drain to completion",
                self.sys.engine_pending()
            ));
        }
        if self.sys.stats().overload_drops() != 0 {
            return Err("a sequential hop tripped the overload path".to_string());
        }
        self.feed.finish()
    }

    fn do_alloc(
        &mut self,
        slot: u8,
        cached: bool,
        path_sel: u8,
        pages: u8,
        dom_sel: u8,
    ) -> Result<(), String> {
        let (dom, mode, mmode) = if cached {
            let pi = path_sel as usize % 2;
            let pid = self.alloc_paths[pi];
            // Mostly the path's declared originator (so cached allocation
            // actually exercises the free lists); occasionally any roster
            // domain, to hit the NotHolder path.
            let originator = DomainId(if pi == 0 { 1 } else { 2 });
            let dom = if dom_sel.is_multiple_of(4) {
                match self.pick(dom_sel / 4) {
                    Some(d) => d,
                    None => originator,
                }
            } else {
                originator
            };
            (dom, AllocMode::Cached(pid), MAllocMode::Cached(pid.0))
        } else {
            let Some(dom) = self.pick(dom_sel) else {
                return Ok(());
            };
            (dom, AllocMode::Uncached, MAllocMode::Uncached)
        };
        let trim = (slot as u64 * 13) % 100;
        let len = (pages as u64 * 4096).saturating_sub(trim).max(1);
        let real = self.sys.alloc(dom, mode, len);
        self.sync();
        let model = self.model.alloc(dom.0, mmode, len, &mut self.feed);
        self.outcome("alloc", &real, &model)?;
        self.feed.finish()?;
        if let (Ok(id), Ok(ix)) = (real, model) {
            if ix == self.ids.len() {
                self.ids.push(id);
            } else if self.ids[ix] != id {
                return Err(format!(
                    "cache hit identity mismatch: model index {ix} is {:?}, real returned {id:?}",
                    self.ids[ix]
                ));
            }
            self.slots[slot as usize % SLOTS] = Some((id, ix));
        }
        Ok(())
    }

    fn do_send(&mut self, slot: u8, from_sel: u8, to_sel: u8, secure: bool) -> Result<(), String> {
        let Some((id, ix)) = self.slots[slot as usize % SLOTS] else {
            return Ok(());
        };
        let Some(from) = self.holder_or_roster(ix, from_sel) else {
            return Ok(());
        };
        let Some(to) = self.pick(to_sel) else {
            return Ok(());
        };
        let mode = if secure {
            SendMode::Secure
        } else {
            SendMode::Volatile
        };
        let real = self.sys.send(id, from, to, mode);
        self.sync();
        let model = self.model.send(ix, from.0, to.0, secure);
        self.outcome("send", &real, &model)?;
        self.feed.finish()
    }

    fn do_free(&mut self, slot: u8, holder_sel: u8) -> Result<(), String> {
        let Some((id, ix)) = self.slots[slot as usize % SLOTS] else {
            return Ok(());
        };
        let Some(dom) = self.holder_or_roster(ix, holder_sel) else {
            return Ok(());
        };
        let real = self.sys.free(id, dom);
        self.sync();
        let model = self.model.free(ix, dom.0);
        self.outcome("free", &real, &model)?;
        self.feed.finish()
    }

    fn do_write(&mut self, slot: u8, dom_sel: u8, off: u16, len: u8) -> Result<(), String> {
        let Some((id, ix)) = self.slots[slot as usize % SLOTS] else {
            return Ok(());
        };
        let Some(dom) = self.holder_or_roster(ix, dom_sel) else {
            return Ok(());
        };
        let bytes = vec![0xabu8; len as usize];
        let real = self.sys.write_fbuf(dom, id, off as u64, &bytes);
        self.sync();
        let model = self.model.write(dom.0, ix, off as u64, len as u64);
        self.outcome("write", &real, &model)?;
        self.feed.finish()
    }

    fn do_secure_cmd(&mut self, slot: u8, holder_sel: u8) -> Result<(), String> {
        let Some((id, ix)) = self.slots[slot as usize % SLOTS] else {
            return Ok(());
        };
        let Some(dom) = self.holder_or_roster(ix, holder_sel) else {
            return Ok(());
        };
        let real = self.sys.secure(id, dom);
        self.sync();
        let model = self.model.secure(ix, dom.0);
        self.outcome("secure", &real, &model)?;
        self.feed.finish()
    }

    fn do_pageout(&mut self, want: u8) -> Result<(), String> {
        let real = self.sys.reclaim_frames(want as usize);
        self.sync();
        let model = self.model.reclaim(want as usize, &mut self.feed);
        if real != model {
            return Err(format!("pageout reclaimed {real} frames, model {model}"));
        }
        self.feed.finish()
    }

    fn do_cross_send(&mut self) -> Result<(), String> {
        let real = self.sys.alloc(self.d4, AllocMode::Cached(self.egress), 64);
        self.sync();
        let model = self
            .model
            .alloc(self.d4.0, MAllocMode::Cached(self.egress.0), 64, &mut self.feed);
        self.outcome("cross alloc", &real, &model)?;
        self.feed.finish()?;
        let (Ok(id), Ok(ix)) = (real, model) else {
            return Ok(());
        };
        if ix == self.ids.len() {
            self.ids.push(id);
        } else if self.ids[ix] != id {
            return Err(format!(
                "cross cache hit identity mismatch: model index {ix} is {:?}, real {id:?}",
                self.ids[ix]
            ));
        }
        let token = 0x7000_0000_0000_0000 | self.step;
        let real_w = self.sys.write_fbuf(self.d4, id, 0, &token.to_le_bytes());
        self.sync();
        let model_w = self.model.write(self.d4.0, ix, 0, 8);
        self.outcome("cross stamp", &real_w, &model_w)?;
        self.feed.finish()?;
        // Backpressure: one consult guards the push attempt; an injected
        // "full" and an organically full ring both bounce the buffer back
        // to its free list.
        let real_fired = self.plan.fires(FaultSite::RingFull);
        self.sync();
        let model_fired = self.feed.take(FaultSite::RingFull);
        self.feed.finish()?;
        if real_fired != model_fired {
            return Err("ring-full decision desynchronized".into());
        }
        let real_full = real_fired || self.data_tx.push((token, id, ix)).is_err();
        let model_full = model_fired || self.model_data.len() == RING_CAP;
        if real_full != model_full {
            return Err(format!(
                "data-ring occupancy diverged: real full={real_full}, model len={}",
                self.model_data.len()
            ));
        }
        if real_full {
            let real_f = self.sys.free(id, self.d4);
            self.sync();
            let model_f = self.model.free(ix, self.d4.0);
            self.outcome("cross bounce free", &real_f, &model_f)?;
            self.feed.finish()?;
        } else {
            self.pending.push((token, id, ix));
            self.model_data.push_back(token);
        }
        Ok(())
    }

    fn do_cross_poll(&mut self) -> Result<(), String> {
        // Data ring first: verify stamps and stage each token toward the
        // next coalesced notice batch; the window filling forces a
        // flush. A dropped batch (injected ring-full at the flush
        // boundary) pins every buffer it acknowledged until the egress
        // domain dies.
        while let Some((token, id, ix)) = self.data_rx.pop() {
            if self.model_data.pop_front() != Some(token) {
                return Err(format!("data ring order diverged at token {token:#x}"));
            }
            let real_r = self.sys.read_fbuf(self.d4, id, 0, 8);
            self.sync();
            let model_r = self.model.read_predict(self.d4.0, ix, 0, 8);
            self.outcome("cross read", &real_r, &model_r)?;
            self.feed.finish()?;
            if let Ok(bytes) = &real_r {
                if bytes.as_slice() != token.to_le_bytes() {
                    return Err(format!("payload corrupted: token {token:#x}, got {bytes:?}"));
                }
            }
            self.notice_stage.push(token);
            if self.notice_stage.len() >= NOTICE_COALESCE {
                self.flush_notices()?;
            }
        }
        // Notice ring second: each drained batch releases its pending
        // buffers in staged order (a buffer may already be gone if the
        // holder was terminated — that error must reproduce on both
        // sides).
        while let Some(batch) = self.notice_rx.pop() {
            let Some(model_batch) = self.model_notice.pop_front() else {
                return Err("notice ring holds a batch the model lacks".into());
            };
            if batch.tokens() != model_batch.as_slice() {
                return Err(format!(
                    "notice batch diverged: real {:?}, model {model_batch:?}",
                    batch.tokens()
                ));
            }
            for &token in batch.tokens() {
                let Some(p) = self.pending.iter().position(|&(t, _, _)| t == token) else {
                    return Err(format!("notice for unknown token {token:#x}"));
                };
                let (_, id, ix) = self.pending.swap_remove(p);
                let real = self.sys.free(id, self.d4);
                self.sync();
                let model = self.model.free(ix, self.d4.0);
                self.outcome("cross ack free", &real, &model)?;
                self.feed.finish()?;
            }
        }
        Ok(())
    }

    /// Flushes the staged notice tokens as one batch: a single
    /// ring-full consult guards the whole batch. Injected full drops the
    /// batch (every staged ack is lost, exactly like the per-token drops
    /// before coalescing, but at batch granularity); organic full keeps
    /// the stage intact for a later retry. A no-op when nothing is
    /// staged — [`Cmd::FlushBatch`] on an empty stage consults nothing.
    fn flush_notices(&mut self) -> Result<(), String> {
        if self.notice_stage.is_empty() {
            return Ok(());
        }
        debug_assert!(self.notice_stage.len() <= NOTICE_BATCH_MAX);
        let real_fired = self.plan.fires(FaultSite::RingFull);
        self.sync();
        let model_fired = self.feed.take(FaultSite::RingFull);
        self.feed.finish()?;
        if real_fired != model_fired {
            return Err("notice-ring decision desynchronized".into());
        }
        if real_fired {
            self.notice_stage.clear();
            return Ok(());
        }
        let mut batch = NoticeBatch::empty();
        for &t in &self.notice_stage {
            assert!(batch.push(t), "stage never outgrows a batch");
        }
        let real_full = self.notice_tx.push(batch).is_err();
        let model_full = self.model_notice.len() == RING_CAP;
        if real_full != model_full {
            return Err("notice-ring occupancy diverged".into());
        }
        if !real_full {
            self.model_notice
                .push_back(std::mem::take(&mut self.notice_stage));
        }
        Ok(())
    }

    fn terminate(&mut self, dom: DomainId) -> Result<(), String> {
        let real = self.sys.terminate_domain(dom);
        self.sync();
        let model = self.model.terminate(dom.0);
        self.outcome("terminate", &real, &model)?;
        self.feed.finish()?;
        self.roster.retain(|&d| d != dom);
        self.sweep_slots();
        Ok(())
    }

    fn do_respawn(&mut self) -> Result<(), String> {
        if self.respawns >= 10 {
            return Ok(());
        }
        self.respawns += 1;
        let d = self.sys.create_domain();
        self.sync();
        let m = self.model.create_domain();
        self.feed.finish()?;
        if d.0 != m {
            return Err(format!("domain numbering diverged: real {d:?}, model {m}"));
        }
        self.roster.push(d);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Plumbing
    // ------------------------------------------------------------------

    /// Roster pick; `None` when every domain is dead.
    fn pick(&self, sel: u8) -> Option<DomainId> {
        if self.roster.is_empty() {
            None
        } else {
            Some(self.roster[sel as usize % self.roster.len()])
        }
    }

    /// Resolves an actor for a buffer operation: one of the buffer's
    /// current holders when it has any (so the happy path dominates),
    /// otherwise any roster domain (so NotHolder/NoSuchFbuf paths are
    /// exercised too). Resolution reads only the model, so both sides
    /// see the same actor.
    fn holder_or_roster(&self, ix: usize, sel: u8) -> Option<DomainId> {
        if let Some(b) = self.model.buf(ix) {
            if !b.holders.is_empty() {
                return Some(DomainId(b.holders[sel as usize % b.holders.len()]));
            }
        }
        self.pick(sel)
    }

    /// Drains the plan's consult log into the model's feed.
    fn sync(&mut self) {
        self.feed.load(self.plan.drain_log());
    }

    /// Drops slot (and hoard) entries whose buffer has been retired.
    fn sweep_slots(&mut self) {
        for s in self.slots.iter_mut().chain(self.hoard.iter_mut()) {
            if let Some((_, ix)) = *s {
                if self.model.buf(ix).is_none() {
                    *s = None;
                }
            }
        }
    }

    fn outcome<T, U>(
        &self,
        what: &str,
        real: &Result<T, FbufError>,
        model: &Result<U, MErr>,
    ) -> Result<(), String> {
        let rk = real.as_ref().err().map(MErr::of);
        let mk = model.as_ref().err().copied();
        if rk == mk {
            return Ok(());
        }
        Err(format!(
            "{what} outcome mismatch: real {}, model {}",
            match real.as_ref().err() {
                Some(e) => format!("Err({e:?})"),
                None => "Ok".into(),
            },
            match mk {
                Some(e) => format!("Err({e:?})"),
                None => "Ok".into(),
            }
        ))
    }

    fn counters_of(sys: &FbufSystem) -> [u64; 11] {
        let s = sys.stats();
        [
            s.fbuf_cache_hits(),
            s.fbuf_cache_misses(),
            s.fbufs_secured(),
            s.fbuf_transfers(),
            s.chunks_granted(),
            s.chunk_quota_denials(),
            s.frames_reclaimed(),
            s.pages_cleared(),
            s.jail_denials(),
            s.fbufs_revoked(),
            s.tokens_rejected(),
        ]
    }

    // ------------------------------------------------------------------
    // The differ
    // ------------------------------------------------------------------

    /// Compares the entire observable state of the two implementations.
    pub fn diff(&self) -> Result<(), String> {
        if self.ids.len() != self.model.bufs.len() {
            return Err(format!(
                "buffer population diverged: harness tracked {} ids, model has {}",
                self.ids.len(),
                self.model.bufs.len()
            ));
        }
        let live = self.model.live_count();
        if self.sys.live_fbufs() != live {
            return Err(format!(
                "live count diverged: real {}, model {live}",
                self.sys.live_fbufs()
            ));
        }
        for (ix, &id) in self.ids.iter().enumerate() {
            match (self.sys.fbuf(id), self.model.buf(ix)) {
                (Ok(f), Some(m)) => {
                    let h = self.sys.fbuf_hot(id).expect("cold half was live");
                    let holders: Vec<u32> = f.holders.iter().map(|d| d.0).collect();
                    let mapped: Vec<u32> = f.mapped_in.iter().map(|d| d.0).collect();
                    let pairs: [(&str, String, String); 10] = [
                        ("va", format!("{:#x}", f.va), format!("{:#x}", m.va)),
                        ("pages", f.pages.to_string(), m.pages.to_string()),
                        ("len", f.len.to_string(), m.len.to_string()),
                        ("originator", f.originator.0.to_string(), m.originator.to_string()),
                        (
                            "path",
                            format!("{:?}", h.path.map(|p| p.0)),
                            format!("{:?}", m.path),
                        ),
                        (
                            "secured",
                            (h.state == FbufState::Secured).to_string(),
                            m.secured.to_string(),
                        ),
                        ("resident", f.resident().to_string(), m.resident.to_string()),
                        ("parked", h.park_linked.to_string(), m.park_linked.to_string()),
                        ("holders", format!("{holders:?}"), format!("{:?}", m.holders)),
                        ("mapped_in", format!("{mapped:?}"), format!("{:?}", m.mapped_in)),
                    ];
                    for (field, r, mm) in pairs {
                        if r != mm {
                            return Err(format!(
                                "buffer {id:?} (model {ix}) field `{field}` diverged: real {r}, model {mm}"
                            ));
                        }
                    }
                }
                (Err(_), None) => {}
                (Ok(_), None) => {
                    return Err(format!("buffer {id:?} live in real, retired in model"));
                }
                (Err(_), Some(_)) => {
                    return Err(format!("buffer {id:?} retired in real, live in model"));
                }
            }
        }
        for (i, mp) in self.model.paths.iter().enumerate() {
            let p = self
                .sys
                .path(PathId(i as u64))
                .map_err(|e| format!("path {i} missing in real: {e:?}"))?;
            if p.live != mp.live {
                return Err(format!(
                    "path {i} liveness diverged: real {}, model {}",
                    p.live, mp.live
                ));
            }
            let real_parked: Vec<FbufId> = p.parked_cold_first().collect();
            let model_parked: Vec<FbufId> =
                mp.free.iter().map(|&(_, ix)| self.ids[ix]).collect();
            if real_parked != model_parked {
                return Err(format!(
                    "path {i} free list diverged: real {real_parked:?}, model {model_parked:?}"
                ));
            }
        }
        let now = Self::counters_of(&self.sys);
        let got: Vec<u64> = now.iter().zip(self.base).map(|(n, b)| n - b).collect();
        let c = &self.model.counters;
        let want = [
            c.hits,
            c.misses,
            c.secured,
            c.transfers,
            c.chunks_granted,
            c.quota_denials,
            c.frames_reclaimed,
            c.pages_cleared,
            c.jail_denials,
            c.revoked,
            c.rejected_tokens,
        ];
        const NAMES: [&str; 11] = [
            "fbuf_cache_hits",
            "fbuf_cache_misses",
            "fbufs_secured",
            "fbuf_transfers",
            "chunks_granted",
            "chunk_quota_denials",
            "frames_reclaimed",
            "pages_cleared",
            "jail_denials",
            "fbufs_revoked",
            "tokens_rejected",
        ];
        for i in 0..11 {
            if got[i] != want[i] {
                return Err(format!(
                    "counter `{}` diverged: real {}, model {}",
                    NAMES[i], got[i], want[i]
                ));
            }
        }
        if self.data_rx.len() != self.model_data.len()
            || self.notice_rx.len() != self.model_notice.len()
        {
            return Err(format!(
                "ring occupancy diverged: data real {} vs model {}, notice real {} vs model {}",
                self.data_rx.len(),
                self.model_data.len(),
                self.notice_rx.len(),
                self.model_notice.len()
            ));
        }
        Ok(())
    }
}

impl std::fmt::Debug for Harness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("lockstep::Harness")
            .field("step", &self.step)
            .field("buffers", &self.ids.len())
            .field("roster", &self.roster.len())
            .field("pending_tokens", &self.pending.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmd;

    #[test]
    fn quiet_plan_long_sequence_stays_in_lockstep() {
        let spec = FaultSpec::new(0x1ead_beef);
        let mut h = Harness::new(&spec, None);
        let cmds = cmd::generate(0xfeed_0001, 400);
        h.run(&cmds).unwrap_or_else(|(i, e)| {
            panic!("diverged at command {i}: {e}");
        });
    }

    #[test]
    fn noisy_plan_stays_in_lockstep() {
        let spec = FaultSpec::new(7)
            .rate(FaultSite::ChunkGrant, 2000)
            .rate(FaultSite::QuotaExhausted, 2000)
            .rate(FaultSite::FrameAlloc, 1500)
            .rate(FaultSite::ReclaimRefusal, 3000)
            .rate(FaultSite::RingFull, 8000)
            .crash_after(120);
        let mut h = Harness::new(&spec, None);
        let cmds = cmd::generate(0xfeed_0002, 400);
        h.run(&cmds).unwrap_or_else(|(i, e)| {
            panic!("diverged at command {i}: {e}");
        });
    }

    #[test]
    fn dynamic_policies_stay_in_lockstep() {
        // The same noisy stream under each non-static policy: the
        // model's independent threshold math must agree with the real
        // implementation on every admission, organic denial included.
        for policy in [QuotaPolicy::fb_dynamic(), QuotaPolicy::priority_weighted()] {
            let spec = FaultSpec::new(21)
                .rate(FaultSite::ChunkGrant, 1500)
                .rate(FaultSite::QuotaExhausted, 1500)
                .rate(FaultSite::FrameAlloc, 1000);
            let mut h = Harness::with_policy(&spec, None, policy);
            let cmds = cmd::generate(0xfeed_0003, 400);
            h.run(&cmds).unwrap_or_else(|(i, e)| {
                panic!("{} diverged at command {i}: {e}", policy.name());
            });
        }
    }

    #[test]
    fn sabotaged_model_is_caught() {
        // The FIFO sabotage needs two same-size parked buffers and a
        // reallocation; scan a few seeds so the test does not depend on
        // one particular stream shape.
        let caught = (0..8u64).any(|s| {
            let spec = FaultSpec::new(s);
            let mut h = Harness::new(&spec, Some(Sabotage::FifoReuse));
            let cmds = cmd::generate(0xbad0_0000 + s, 300);
            h.run(&cmds).is_err()
        });
        assert!(caught, "planted FIFO divergence never detected");
    }

    #[test]
    fn adversarial_personas_stay_in_lockstep() {
        // Hostile producer, stalled receiver, and token forger riding a
        // noisy benign stream with the jail armed: every jail denial,
        // escalation revocation, and token rejection must reproduce
        // bit-identically on both sides.
        for seed in [0xadb0_0001u64, 0xadb0_0002, 0xadb0_0003] {
            let spec = cmd::fault_spec(seed, 500);
            let mut h = Harness::with_policy(&spec, None, cmd::policy_spec(seed));
            h.arm_containment();
            let cmds = cmd::generate_adversarial(seed, 500, 3);
            h.run(&cmds).unwrap_or_else(|(i, e)| {
                panic!("seed {seed:#x} diverged at command {i}: {e}");
            });
        }
    }

    #[test]
    fn jail_actually_trips_under_a_dedicated_hoarder() {
        // A pure hoard loop must cross the threshold, strike out, and
        // revoke — exercising the whole escalation, not just the happy
        // path. The harness diffing after every command is the assert.
        let spec = FaultSpec::new(0);
        let mut h = Harness::new(&spec, None);
        h.arm_containment();
        let mut cmds = Vec::new();
        // Benign warm-up: park some of the hoarder's buffers so the
        // escalation has victims to revoke. Every free resets the hoard
        // clock, so this phase must come entirely before the hoard run.
        for _ in 0..8 {
            cmds.push(Cmd::Alloc {
                slot: 0,
                cached: true,
                path_sel: 0,
                pages: 2,
                dom_sel: 1,
            });
            cmds.push(Cmd::Free {
                slot: 0,
                holder_sel: 0,
            });
        }
        // Pure hoard pressure: charged bytes cross the threshold within
        // a few allocations and the no-free window ages out.
        for i in 0..60u32 {
            cmds.push(Cmd::Hoard {
                slot: (i % 16) as u8,
                pages: 4,
            });
        }
        h.run(&cmds).unwrap_or_else(|(i, e)| {
            panic!("diverged at command {i}: {e}");
        });
        assert!(
            h.sys.stats().jail_denials() > 0,
            "the hoarder was never jailed"
        );
        assert!(
            h.sys.stats().fbufs_revoked() > 0,
            "the jail never escalated to revocation"
        );
    }

    #[test]
    fn crash_mid_flight_keeps_cross_state_consistent() {
        // An early crash with cross traffic armed: tokens in flight when
        // their holder dies must not desynchronize the rings.
        let spec = FaultSpec::new(99).crash_after(10).rate(FaultSite::RingFull, 4000);
        let mut h = Harness::new(&spec, None);
        let mut cmds = Vec::new();
        for i in 0..120 {
            cmds.push(if i % 3 == 0 {
                Cmd::CrossSend
            } else if i % 7 == 0 {
                Cmd::CrossPoll
            } else {
                cmd::generate(i as u64, 1)[0]
            });
        }
        h.run(&cmds).unwrap_or_else(|(i, e)| {
            panic!("diverged at command {i}: {e}");
        });
    }
}
