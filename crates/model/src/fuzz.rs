//! Seeded lockstep campaigns, shrinking, and the replayable corpus.
//!
//! A *case* is a seed: it determines the command stream
//! ([`crate::cmd::generate`]), the fault plan ([`crate::cmd::fault_spec`])
//! and therefore — because both the system and the model are
//! deterministic — the entire execution. A campaign runs many cases; a
//! diverging case is shrunk with [`fbuf_sim::minimize`] to a 1-minimal
//! failing subsequence and recorded as a corpus file that regression
//! tests replay forever.
//!
//! # Corpus format
//!
//! Commands are never serialized: a corpus file stores the *seed*, the
//! original stream length, and (after shrinking) the indices kept:
//!
//! ```text
//! # fbuf-fuzz corpus case
//! seed = 0x1f2e3d4c
//! cmds = 200
//! keep = 3 17 42
//! ```
//!
//! Replay regenerates the stream from the seed and selects the kept
//! indices. The fault plan is always derived from `(seed, cmds)` — the
//! *original* length, not the kept count — so a shrunk case replays the
//! very same injected faults its full-length parent saw.

use fbuf_sim::fault::SITE_COUNT;
use fbuf_sim::rng::splitmix64;
use fbuf_sim::{minimize, FaultSite};

use crate::cmd::{self, Cmd};
use crate::lockstep::Harness;
use crate::oracle::Sabotage;

/// A completed (non-diverging) case.
#[derive(Debug, Clone, Copy)]
pub struct CaseOutcome {
    /// Commands executed.
    pub commands: usize,
    /// Faults injected, per site.
    pub injected: [u64; SITE_COUNT],
}

/// A diverging case.
#[derive(Debug, Clone)]
pub struct CaseFailure {
    /// Index of the first diverging command (`== len` means the
    /// end-of-case audit failed).
    pub fail_index: usize,
    /// The divergence, as reported by the differ.
    pub message: String,
}

/// Runs one explicit command list under the fault plan and admission
/// policy of `(seed, base_n)`. `base_n` is the length of the case's
/// *original* stream: shrinking shortens the list but must not change
/// the plan. The policy is a pure function of the seed too
/// ([`cmd::policy_spec`]), so a corpus case replays under the very
/// policy its campaign ran.
pub fn run_list(
    seed: u64,
    base_n: usize,
    cmds: &[Cmd],
    sabotage: Option<Sabotage>,
) -> Result<CaseOutcome, CaseFailure> {
    let spec = cmd::fault_spec(seed, base_n);
    let mut h = Harness::with_policy(&spec, sabotage, cmd::policy_spec(seed));
    match h.run(cmds) {
        Ok(()) => Ok(CaseOutcome {
            commands: cmds.len(),
            injected: h.injected(),
        }),
        Err((fail_index, message)) => Err(CaseFailure {
            fail_index,
            message,
        }),
    }
}

/// Generates and runs the full stream of one case seed.
pub fn run_case(
    seed: u64,
    n: usize,
    sabotage: Option<Sabotage>,
) -> Result<CaseOutcome, CaseFailure> {
    run_list(seed, n, &cmd::generate(seed, n), sabotage)
}

/// Shrinks a diverging case to the indices of a 1-minimal failing
/// subsequence (each index names a command in the regenerated stream).
pub fn shrink(
    seed: u64,
    n: usize,
    failure: &CaseFailure,
    sabotage: Option<Sabotage>,
) -> Vec<usize> {
    let full = cmd::generate(seed, n);
    let upto = failure.fail_index.min(full.len().saturating_sub(1));
    let prefix: Vec<(usize, Cmd)> = full
        .iter()
        .copied()
        .enumerate()
        .take(upto + 1)
        .collect();
    let fails = |items: &[(usize, Cmd)]| {
        let list: Vec<Cmd> = items.iter().map(|&(_, c)| c).collect();
        run_list(seed, n, &list, sabotage).is_err()
    };
    match minimize(&prefix, fails) {
        Some(min) => min.into_iter().map(|(i, _)| i).collect(),
        // A non-reproducing failure (impossible for a deterministic
        // divergence) degrades to the unshrunk prefix.
        None => prefix.into_iter().map(|(i, _)| i).collect(),
    }
}

/// Renders a corpus file for a (possibly shrunk) case.
pub fn corpus_entry(seed: u64, n: usize, keep: Option<&[usize]>, note: &str) -> String {
    let mut out = String::from("# fbuf-fuzz corpus case\n");
    if !note.is_empty() {
        for line in note.lines() {
            out.push_str(&format!("# {line}\n"));
        }
    }
    out.push_str(&format!("seed = {seed:#x}\ncmds = {n}\n"));
    if let Some(keep) = keep {
        let list: Vec<String> = keep.iter().map(|i| i.to_string()).collect();
        out.push_str(&format!("keep = {}\n", list.join(" ")));
    }
    out
}

/// A parsed corpus file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusCase {
    /// Case seed.
    pub seed: u64,
    /// Original stream length.
    pub cmds: usize,
    /// Kept indices; `None` replays the full stream.
    pub keep: Option<Vec<usize>>,
}

/// Parses the corpus format (see the [module docs](self)).
pub fn parse_corpus(text: &str) -> Result<CorpusCase, String> {
    let mut seed = None;
    let mut cmds = None;
    let mut keep = None;
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {}: expected `key = value`", ln + 1))?;
        let value = value.trim();
        match key.trim() {
            "seed" => {
                let v = value.strip_prefix("0x").unwrap_or(value);
                let radix = if v.len() < value.len() { 16 } else { 10 };
                seed = Some(
                    u64::from_str_radix(v, radix)
                        .map_err(|e| format!("line {}: bad seed: {e}", ln + 1))?,
                );
            }
            "cmds" => {
                cmds = Some(
                    value
                        .parse::<usize>()
                        .map_err(|e| format!("line {}: bad cmds: {e}", ln + 1))?,
                );
            }
            "keep" => {
                let mut list = Vec::new();
                for tok in value.split_whitespace() {
                    list.push(
                        tok.parse::<usize>()
                            .map_err(|e| format!("line {}: bad keep index: {e}", ln + 1))?,
                    );
                }
                keep = Some(list);
            }
            other => return Err(format!("line {}: unknown key `{other}`", ln + 1)),
        }
    }
    Ok(CorpusCase {
        seed: seed.ok_or("missing `seed`")?,
        cmds: cmds.ok_or("missing `cmds`")?,
        keep,
    })
}

/// Replays a corpus case; `Ok` means the (once-failing, now-fixed, or
/// regression-pinning) case stays in lockstep.
pub fn replay(case: &CorpusCase, sabotage: Option<Sabotage>) -> Result<CaseOutcome, CaseFailure> {
    let full = cmd::generate(case.seed, case.cmds);
    let list: Vec<Cmd> = match &case.keep {
        Some(keep) => keep
            .iter()
            .filter_map(|&i| full.get(i).copied())
            .collect(),
        None => full,
    };
    run_list(case.seed, case.cmds, &list, sabotage)
}

/// Summary of a multi-case campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Cases executed.
    pub cases: usize,
    /// Commands executed across all cases.
    pub commands: usize,
    /// Faults injected across all cases, per site.
    pub injected: [u64; SITE_COUNT],
    /// Diverging cases: `(case seed, failure)`.
    pub failures: Vec<(u64, CaseFailure)>,
}

impl CampaignReport {
    /// One line per fault site, for the bin's output.
    pub fn injected_lines(&self) -> Vec<String> {
        FaultSite::ALL
            .iter()
            .enumerate()
            .map(|(i, s)| format!("{:>16}: {}", s.name(), self.injected[i]))
            .collect()
    }
}

/// Runs `cases` seeded cases of `n` commands each. Case seeds derive
/// from `seed0` by SplitMix64, so a campaign is reproducible from one
/// number and any case can be re-run in isolation by its own seed.
pub fn campaign(
    seed0: u64,
    cases: usize,
    n: usize,
    sabotage: Option<Sabotage>,
) -> CampaignReport {
    let mut state = seed0;
    let mut report = CampaignReport {
        cases,
        commands: 0,
        injected: [0; SITE_COUNT],
        failures: Vec::new(),
    };
    for _ in 0..cases {
        let seed = splitmix64(&mut state);
        match run_case(seed, n, sabotage) {
            Ok(out) => {
                report.commands += out.commands;
                for i in 0..SITE_COUNT {
                    report.injected[i] += out.injected[i];
                }
            }
            Err(fail) => {
                report.commands += fail.fail_index;
                report.failures.push((seed, fail));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_is_divergence_free() {
        let report = campaign(0x5eed_cafe, 6, 120, None);
        assert!(
            report.failures.is_empty(),
            "divergences: {:?}",
            report.failures
        );
        assert_eq!(report.commands, 6 * 120);
    }

    #[test]
    fn corpus_round_trip() {
        let text = corpus_entry(0xabc, 200, Some(&[3, 17, 42]), "planted case\nsecond line");
        let case = parse_corpus(&text).unwrap();
        assert_eq!(
            case,
            CorpusCase {
                seed: 0xabc,
                cmds: 200,
                keep: Some(vec![3, 17, 42]),
            }
        );
        let text = corpus_entry(12, 50, None, "");
        assert_eq!(
            parse_corpus(&text).unwrap(),
            CorpusCase {
                seed: 12,
                cmds: 50,
                keep: None,
            }
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(parse_corpus("cmds = 10").is_err(), "missing seed");
        assert!(parse_corpus("seed = xyz\ncmds = 10").is_err());
        assert!(parse_corpus("seed = 1\ncmds = 10\nbogus = 3").is_err());
    }

    #[test]
    fn planted_divergence_is_caught_and_shrinks_small() {
        // The sabotaged model swaps LIFO reuse for FIFO; some seed in a
        // short scan must diverge, and the minimal witness is a handful
        // of commands (two allocs, two frees, one realloc — plus
        // whatever the selectors need).
        let sab = Some(Sabotage::FifoReuse);
        let mut caught = None;
        for s in 0..16u64 {
            if let Err(fail) = run_case(s, 250, sab) {
                caught = Some((s, fail));
                break;
            }
        }
        let (seed, fail) = caught.expect("sabotage never diverged in 16 seeds");
        let keep = shrink(seed, 250, &fail, sab);
        assert!(
            keep.len() <= 10,
            "shrunk witness has {} commands: {keep:?}",
            keep.len()
        );
        // The shrunk keep-list must still fail, and must replay from a
        // corpus entry.
        let entry = corpus_entry(seed, 250, Some(&keep), "planted");
        let case = parse_corpus(&entry).unwrap();
        assert!(replay(&case, sab).is_err(), "shrunk case no longer fails");
        // ... and the same case is clean once the sabotage is removed.
        assert!(replay(&case, None).is_ok(), "case fails without sabotage");
    }
}
