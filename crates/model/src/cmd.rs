//! The fuzzer's command language.
//!
//! A [`Cmd`] is a *state-independent* description of one lifecycle
//! operation: selectors (`slot`, `dom_sel`, …) are raw draws that the
//! lockstep harness resolves against current model state at execution
//! time. State-independence is what makes shrinking sound — removing a
//! command from a sequence never invalidates the commands after it, it
//! only changes what their selectors resolve to (identically on both
//! sides of the diff, since resolution consults only the model).

use fbuf::QuotaPolicy;
use fbuf_sim::{FaultSite, FaultSpec, Rng};

/// Number of buffer slots the harness tracks.
pub const SLOTS: usize = 16;

/// One fuzzer command. All fields are raw selector material; see
/// `crate::lockstep` for how each resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmd {
    /// Allocate an fbuf into `slot`.
    Alloc {
        /// Target slot (`% SLOTS`).
        slot: u8,
        /// Cached (per-path) or uncached allocation.
        cached: bool,
        /// Which path (`%` the harness's path count).
        path_sel: u8,
        /// Buffer size in pages (1..=5; 5 exceeds a chunk → `TooLarge`).
        pages: u8,
        /// Allocating-domain selector.
        dom_sel: u8,
    },
    /// Transfer the buffer in `slot` to another domain.
    Send {
        /// Source slot.
        slot: u8,
        /// Sender selector (resolved against current holders).
        from_sel: u8,
        /// Receiver selector (resolved against the roster).
        to_sel: u8,
        /// Secure (eagerly immutable) transfer.
        secure: bool,
    },
    /// Release one reference to the buffer in `slot`.
    Free {
        /// Source slot.
        slot: u8,
        /// Holder selector.
        holder_sel: u8,
    },
    /// Write bytes into the buffer in `slot`.
    Write {
        /// Source slot.
        slot: u8,
        /// Writing-domain selector.
        dom_sel: u8,
        /// Byte offset.
        off: u16,
        /// Byte count (1..=16; zero-length writes are excluded — the
        /// machine accepts them without touching a page).
        len: u8,
    },
    /// Secure the buffer in `slot`.
    Secure {
        /// Source slot.
        slot: u8,
        /// Requesting-holder selector.
        holder_sel: u8,
    },
    /// Run the pageout daemon for up to `want` frames.
    Pageout {
        /// Frames wanted.
        want: u8,
    },
    /// Allocate, stamp, and push a buffer onto the cross-shard data ring
    /// (fixed egress pair of domains).
    CrossSend,
    /// Drain the data ring (verifying stamps and staging coalesced
    /// notice tokens), then the notice ring (freeing acknowledged
    /// buffers batch by batch).
    CrossPoll,
    /// Flush the staged notice tokens as one [`fbuf::shard::NoticeBatch`]
    /// onto the notice ring, consulting ring-full backpressure once at
    /// the batch boundary. A no-op when nothing is staged.
    FlushBatch,
    /// Terminate a roster domain.
    Terminate {
        /// Victim selector.
        dom_sel: u8,
    },
    /// Create a fresh domain and add it to the roster (bounded).
    Respawn,
    /// Drive one bare cross-domain hop through the event-loop engine
    /// (`FbufSystem::hop`: post → dequeue → handler → completion). The
    /// oracle's mirror transition is the identity — RPC charging is not
    /// part of the diffed state — so what this fuzzes is that routing
    /// hops through the scheduler perturbs *nothing* the model tracks,
    /// drains the loop completely, and never trips the overload path.
    Hop {
        /// Sender selector (resolved against the roster).
        from_sel: u8,
        /// Receiver selector (resolved against the roster).
        to_sel: u8,
    },
    /// Adversarial hostile-producer persona: allocate a cached buffer
    /// and park it on the harness's hoard list, never to be freed — the
    /// pressure that trips the quota jail. Only
    /// [`generate_adversarial`] emits this.
    Hoard {
        /// Target hoard-list slot (`% SLOTS`; an occupied slot makes
        /// this a no-op, keeping the hoard bounded).
        slot: u8,
        /// Buffer size in pages (1..=4).
        pages: u8,
    },
    /// Adversarial stalled-receiver persona: the revocation deadline
    /// fires on the buffer in `slot` — its deepest holder is forcibly
    /// revoked (`FbufSystem::revoke`, mirrored by `Oracle::revoke`).
    /// Only [`generate_adversarial`] emits this.
    Expire {
        /// Source slot.
        slot: u8,
    },
    /// Adversarial token-forger persona: present a stale handle (a live
    /// buffer's id with its generation bits flipped by `salt`) to the
    /// defense. It must never resolve, never mutate diffed state, and
    /// count exactly one rejection. Only [`generate_adversarial`] emits
    /// this.
    Forge {
        /// Generation perturbation (`% 0xffff`, +1 so it never aliases
        /// the genuine generation).
        salt: u8,
    },
}

/// Draws `n` commands from `seed`. The stream is a pure function of the
/// seed: replaying a seed reproduces the exact sequence, and a corpus
/// file only needs the seed plus the indices kept by shrinking.
pub fn generate(seed: u64, n: usize) -> Vec<Cmd> {
    // Domain-separated from the fault-plan stream below: the same case
    // seed drives both without correlation.
    let mut rng = Rng::new(seed ^ 0xc0dd_5717_ea44_0001);
    (0..n).map(|_| draw(&mut rng)).collect()
}

/// Draws `n` commands from `seed` and overlays `k` adversary personas.
///
/// The base stream is [`generate`] verbatim — same RNG, same draws — so
/// `k = 0` is the identity and the adversarial dimension can never
/// perturb an existing corpus case. A *separate*, domain-separated
/// adversary RNG then substitutes hostile commands ([`Cmd::Hoard`],
/// [`Cmd::Expire`], [`Cmd::Forge`]) into the stream at a density that
/// scales with `k`, modelling `k` concurrent hostile tenants riding a
/// benign workload.
pub fn generate_adversarial(seed: u64, n: usize, k: u32) -> Vec<Cmd> {
    let mut cmds = generate(seed, n);
    if k == 0 {
        return cmds;
    }
    // Adversary stream tag: domain-separated from the command, fault,
    // and policy streams.
    let mut rng = Rng::new(seed ^ 0xadbe_ef01_7e44_0004);
    let sel = |rng: &mut Rng| rng.below(256) as u8;
    let density = (k as u64 * 8).min(40); // percent of commands replaced
    for c in cmds.iter_mut() {
        if rng.below(100) >= density {
            continue;
        }
        *c = match rng.below(3) {
            0 => Cmd::Hoard {
                slot: sel(&mut rng),
                pages: rng.range(1, 4) as u8,
            },
            1 => Cmd::Expire { slot: sel(&mut rng) },
            _ => Cmd::Forge { salt: sel(&mut rng) },
        };
    }
    cmds
}

fn draw(rng: &mut Rng) -> Cmd {
    let sel = |rng: &mut Rng| rng.below(256) as u8;
    match rng.below(1000) {
        // 25% allocations, 80% of them cached; rare oversized requests
        // exercise the TooLarge path.
        0..=249 => Cmd::Alloc {
            slot: sel(rng),
            cached: rng.chance(0.8),
            path_sel: sel(rng),
            pages: if rng.chance(0.05) {
                5
            } else {
                rng.range(1, 5) as u8
            },
            dom_sel: sel(rng),
        },
        250..=449 => Cmd::Send {
            slot: sel(rng),
            from_sel: sel(rng),
            to_sel: sel(rng),
            secure: rng.chance(0.4),
        },
        450..=699 => Cmd::Free {
            slot: sel(rng),
            holder_sel: sel(rng),
        },
        700..=779 => Cmd::Write {
            slot: sel(rng),
            dom_sel: sel(rng),
            off: rng.below(5000) as u16,
            len: rng.range(1, 17) as u8,
        },
        780..=829 => Cmd::Secure {
            slot: sel(rng),
            holder_sel: sel(rng),
        },
        830..=869 => Cmd::Pageout {
            want: rng.range(1, 9) as u8,
        },
        870..=929 => Cmd::CrossSend,
        // CrossPoll's original 930..=964 bucket, split so FlushBatch
        // costs no extra RNG draw — streams from seeds recorded before
        // the split keep every other command (and the fault plan)
        // bit-aligned.
        930..=949 => Cmd::CrossPoll,
        950..=964 => Cmd::FlushBatch,
        965..=984 => Cmd::Hop {
            from_sel: sel(rng),
            to_sel: sel(rng),
        },
        985..=994 => Cmd::Terminate { dom_sel: sel(rng) },
        _ => Cmd::Respawn,
    }
}

/// Derives the per-case fault plan from the case seed. Rates come from a
/// small menu (off / rare / occasional / frequent per 64 Ki draws) so
/// most cases mix a few active sites; ~30% of cases also schedule a
/// domain crash.
pub fn fault_spec(seed: u64, cmds: usize) -> FaultSpec {
    let mut rng = Rng::new(seed ^ 0xfa17_91a4_0000_0002); // fault-plan stream tag
    let menu = [0u16, 300, 1200, 3000];
    let mut spec = FaultSpec::new(seed ^ 0xd1ce);
    for site in [
        FaultSite::ChunkGrant,
        FaultSite::QuotaExhausted,
        FaultSite::FrameAlloc,
        FaultSite::ReclaimRefusal,
        FaultSite::RingFull,
    ] {
        spec = spec.rate(site, menu[rng.index(menu.len())]);
    }
    if rng.chance(0.3) && cmds > 0 {
        spec = spec.crash_after(rng.below(cmds as u64));
    }
    spec
}

/// Derives the per-case chunk-admission policy from the case seed.
/// Domain-separated from the command and fault streams (its own tag, its
/// own RNG), so adding the policy dimension left every pre-existing
/// stream — and therefore the recorded corpus — bit-aligned. Half the
/// cases keep the static quota; the rest fuzz the dynamic families over
/// a small alpha menu.
pub fn policy_spec(seed: u64) -> QuotaPolicy {
    let mut rng = Rng::new(seed ^ 0x9011_c75e_ed00_0003); // policy stream tag
    let menu = [(1u64, 1u64), (1, 2), (2, 1), (1, 4)];
    match rng.below(10) {
        0..=4 => QuotaPolicy::Static,
        5..=7 => {
            let (alpha_num, alpha_den) = menu[rng.index(menu.len())];
            QuotaPolicy::FbDynamic { alpha_num, alpha_den }
        }
        _ => {
            let (alpha_num, alpha_den) = menu[rng.index(menu.len())];
            QuotaPolicy::PriorityWeighted {
                alpha_num,
                alpha_den,
                weights: fbuf::policy::DEFAULT_WEIGHTS,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_a_pure_function_of_the_seed() {
        let a = generate(42, 500);
        let b = generate(42, 500);
        assert_eq!(a, b);
        let c = generate(43, 500);
        assert_ne!(a, c);
    }

    #[test]
    fn every_variant_appears_in_a_long_stream() {
        let cmds = generate(7, 4000);
        let mut seen = [false; 13];
        for c in &cmds {
            let i = match c {
                Cmd::Alloc { cached: true, .. } => 0,
                Cmd::Alloc { cached: false, .. } => 1,
                Cmd::Send { secure: false, .. } => 2,
                Cmd::Send { secure: true, .. } => 3,
                Cmd::Free { .. } => 4,
                Cmd::Write { .. } => 5,
                Cmd::Secure { .. } => 6,
                Cmd::Pageout { .. } => 7,
                Cmd::CrossSend => 8,
                Cmd::CrossPoll => 9,
                Cmd::Terminate { .. } | Cmd::Respawn => 10,
                Cmd::Hop { .. } => 11,
                Cmd::FlushBatch => 12,
                Cmd::Hoard { .. } | Cmd::Expire { .. } | Cmd::Forge { .. } => {
                    panic!("generate never emits adversarial commands")
                }
            };
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "coverage gap: {seen:?}");
    }

    #[test]
    fn adversarial_generation_is_an_overlay_on_the_base_stream() {
        // k = 0 is the identity: the adversary RNG is never even seeded.
        assert_eq!(generate_adversarial(42, 500, 0), generate(42, 500));
        // k > 0 substitutes in place: same length, untouched positions
        // bit-identical to the base stream, and every persona appears.
        let base = generate(42, 2000);
        let adv = generate_adversarial(42, 2000, 3);
        assert_eq!(adv.len(), base.len());
        let (mut hoard, mut expire, mut forge, mut benign) = (0, 0, 0, 0);
        for (a, b) in adv.iter().zip(&base) {
            match a {
                Cmd::Hoard { .. } => hoard += 1,
                Cmd::Expire { .. } => expire += 1,
                Cmd::Forge { .. } => forge += 1,
                _ => {
                    assert_eq!(a, b, "benign positions must ride the base stream");
                    benign += 1;
                }
            }
        }
        assert!(hoard > 0 && expire > 0 && forge > 0, "{hoard}/{expire}/{forge}");
        assert!(benign > adv.len() / 2, "adversaries ride a benign majority");
        // Deterministic: same seed, same overlay.
        assert_eq!(adv, generate_adversarial(42, 2000, 3));
    }

    #[test]
    fn fault_spec_is_deterministic_and_sometimes_noisy() {
        assert_eq!(
            format!("{:?}", fault_spec(9, 100)),
            format!("{:?}", fault_spec(9, 100))
        );
        let noisy = (0..64).filter(|&s| !fault_spec(s, 100).is_quiet()).count();
        assert!(noisy > 32, "most cases should inject something: {noisy}");
    }

    #[test]
    fn policy_spec_is_deterministic_and_covers_every_family() {
        let mut names = std::collections::BTreeSet::new();
        for s in 0..64u64 {
            assert_eq!(policy_spec(s), policy_spec(s));
            names.insert(policy_spec(s).name());
        }
        assert_eq!(
            names.into_iter().collect::<Vec<_>>(),
            vec!["fb-dynamic", "priority", "static"]
        );
    }

    #[test]
    fn write_lengths_are_never_zero() {
        for c in generate(11, 4000) {
            if let Cmd::Write { len, .. } = c {
                assert!(len >= 1);
            }
        }
    }
}
