//! Executable oracle and lockstep fuzzer for the fbuf lifecycle.
//!
//! The real facility (`fbuf::FbufSystem` over `fbuf_vm::Machine`) is
//! optimized: intrusive park lists, generational slabs, batched VM range
//! operations, per-path caches. This crate holds its deliberately
//! *unoptimized* twin and the machinery to prove the two agree:
//!
//! * [`oracle`] — a pure reference model of ownership, protection,
//!   park/cache state, quotas, and chunk accounting, written with plain
//!   `Vec`s and `BTreeMap`s and sharing no code with the real system.
//!   Injected fault decisions reach it through a replay [`Feed`], so the
//!   model also verifies *which questions* the system asked its fault
//!   plan, not just what state resulted.
//! * [`cmd`] — a state-independent command language plus seeded stream
//!   and fault-plan generators (pure functions of a case seed).
//! * [`lockstep`] — the [`Harness`] that drives both implementations
//!   command by command, diffing every observable field, counter, free
//!   list, and ring occupancy after each step, and running the trace
//!   replay auditor at the end of every case.
//! * [`fuzz`] — campaigns over many case seeds, ddmin-style shrinking of
//!   diverging cases to 1-minimal witnesses, and the seed+keep-list
//!   corpus format replayed forever by regression tests.
//!
//! The deliberate-bug switch ([`Sabotage`]) plants a known model
//! divergence (FIFO instead of LIFO reuse) so the whole detection and
//! shrinking pipeline is itself under test.
//!
//! Design notes: `DESIGN.md` §11 (the lockstep architecture, the feed,
//! shrinking, and the corpus format) and §12 (the `Hop` command that
//! routes fuzzed hops through the event-loop engine).

#![deny(missing_docs)]
#![deny(overflowing_literals)]

pub mod cmd;
pub mod fuzz;
pub mod lockstep;
pub mod oracle;

pub use cmd::Cmd;
pub use fuzz::{campaign, replay, run_case, run_list, shrink, CampaignReport, CorpusCase};
pub use lockstep::Harness;
pub use oracle::{Counters, Feed, MErr, MPolicy, Oracle, OracleConfig, Sabotage};
