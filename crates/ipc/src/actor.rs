//! Domains as actors, transfers as events: the per-shard event loop.
//!
//! The recursive engine modelled every cross-domain transfer as a
//! synchronous depth-first descent — `rpc.call(a, b)` followed inline by
//! the next hop's `rpc.call(b, c)` — so exactly one message could be in
//! flight per engine and queueing, backpressure, and overload could not
//! even be expressed. This module replaces the call stack with an
//! explicit scheduler:
//!
//! * every protection domain is an **actor** with a bounded FIFO
//!   **inbox**;
//! * a hop is **posted** as an event ([`EventLoop::post`]): it lands in
//!   the destination actor's inbox and a wake token enters the
//!   [`EventHeap`], stamped with the simulated now;
//! * the loop ([`EventLoop::step`] / [`EventLoop::run`]) pops tokens in
//!   deterministic `(time, id)` order, dequeues the matching envelope,
//!   records its **queueing delay** (dequeue instant minus enqueue
//!   instant) into a [`Histogram`], and hands it to the caller's
//!   handler, which performs the hop's charges and may post follow-up
//!   events (the next leg, a completion, …);
//! * a post to a **full inbox** is refused with the explicit
//!   [`SendOutcome::Overload`] — counted in `Stats::overload_drops`,
//!   traced as [`EventKind::Overload`] — instead of growing without
//!   bound or recursing.
//!
//! Determinism: the heap orders by `(simulated time, insertion id)` with
//! FIFO tie-break (see [`fbuf_sim::event`]), posts stamp the shared
//! monotone [`Clock`], and nothing consults the wall clock, so a seeded
//! workload replays its event schedule bit-identically.
//!
//! The loop itself never charges the clock: all simulated cost stays in
//! the handler (RPC latency, VM work, protocol processing). That is what
//! makes the engine *counter-exact* with the recursive descent — driving
//! the same hop sequence through [`EventLoop::run`] performs the same
//! charges in the same order, pinned by `tests/counter_exactness.rs`.

use std::collections::VecDeque;

use fbuf_sim::{Clock, EventHeap, EventId, EventKind, Histogram, Ns, Stats, Tracer};
use fbuf_vm::DomainId;

/// Default bound on each actor's inbox. Deep enough that a drained
/// pipeline never trips it, shallow enough that a runaway producer hits
/// [`SendOutcome::Overload`] long before memory does.
pub const DEFAULT_INBOX_DEPTH: usize = 64;

/// One event sitting in (or dequeued from) an actor's inbox.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// The posting domain.
    pub from: DomainId,
    /// The destination actor.
    pub to: DomainId,
    /// Simulated instant the event was enqueued (queueing delay is
    /// measured from here).
    pub enqueued_at: Ns,
    /// The scheduler id assigned at post time.
    pub id: EventId,
    /// The transfer span in scope when the event was posted (captured
    /// from [`Tracer::current_span`]); restored as the ambient span
    /// while the handler runs, so one transfer's events stay causally
    /// linked across hops.
    pub span: Option<u64>,
    /// The fbuf path this event works on behalf of, when the poster
    /// knows it ([`EventLoop::post_on`]) — threads per-path attribution
    /// through `Enqueue`/`Dequeue`/`Overload` trace events.
    pub path: Option<u64>,
    /// The event payload.
    pub msg: M,
}

/// What happened to a posted event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// The event entered the destination's inbox and will be processed.
    Queued(EventId),
    /// The destination's bounded inbox was full: the event was dropped,
    /// counted (`Stats::overload_drops`), and traced. The caller decides
    /// what the drop means (abort the transfer, retry later, shed load).
    Overload,
}

impl SendOutcome {
    /// True when the post was refused.
    pub fn is_overload(&self) -> bool {
        matches!(self, SendOutcome::Overload)
    }
}

/// The per-shard event loop. See the [module docs](self).
///
/// `M` is the event payload; the loop is generic so the transfer engine
/// (`fbuf::engine`), the workload drivers, and the tests can each speak
/// their own message language over the same scheduling core.
///
/// # Examples
///
/// ```
/// use fbuf_ipc::actor::EventLoop;
/// use fbuf_sim::{Clock, Stats, Tracer};
/// use fbuf_vm::DomainId;
///
/// let clock = Clock::new();
/// let mut evl: EventLoop<&str> = EventLoop::new(
///     clock.clone(),
///     Stats::new(),
///     Tracer::new(clock),
/// );
/// let (a, b) = (DomainId(1), DomainId(2));
/// evl.post(a, b, "ping");
/// let mut seen = Vec::new();
/// evl.run(&mut seen, &mut |evl, seen: &mut Vec<String>, env| {
///     seen.push(format!("{} -> {}: {}", env.from.0, env.to.0, env.msg));
///     if env.msg == "ping" {
///         evl.post(env.to, env.from, "pong");
///     }
/// });
/// assert_eq!(seen, vec!["1 -> 2: ping", "2 -> 1: pong"]);
/// ```
#[derive(Debug)]
pub struct EventLoop<M> {
    /// Global order of pending events: wake tokens naming the actor
    /// whose inbox front is due.
    heap: EventHeap<DomainId>,
    /// Per-domain bounded FIFO inboxes, indexed by `DomainId.0`.
    inboxes: Vec<VecDeque<Envelope<M>>>,
    depth: usize,
    clock: Clock,
    stats: Stats,
    tracer: Tracer,
    queue_delay: Histogram,
    /// Queueing delay (simulated ns) accumulated per destination
    /// domain, indexed by `DomainId.0` — the ledger's "queueing delay
    /// contributed" column.
    delay_by_dom: Vec<u64>,
    overloads: u64,
    enqueued: u64,
    dequeued: u64,
}

impl<M> EventLoop<M> {
    /// An empty loop over the engine's shared clock/stats/tracer
    /// handles, with the [default inbox depth](DEFAULT_INBOX_DEPTH).
    pub fn new(clock: Clock, stats: Stats, tracer: Tracer) -> EventLoop<M> {
        EventLoop {
            heap: EventHeap::new(),
            inboxes: Vec::new(),
            depth: DEFAULT_INBOX_DEPTH,
            clock,
            stats,
            tracer,
            queue_delay: Histogram::new(),
            delay_by_dom: Vec::new(),
            overloads: 0,
            enqueued: 0,
            dequeued: 0,
        }
    }

    /// Sets the per-actor inbox bound (applies to subsequent posts;
    /// clamped to at least 1 so a drained loop can always make
    /// progress).
    pub fn set_inbox_depth(&mut self, depth: usize) {
        self.depth = depth.max(1);
    }

    /// The current per-actor inbox bound.
    pub fn inbox_depth(&self) -> usize {
        self.depth
    }

    /// Posts an event from `from` to `to`'s inbox, stamped with the
    /// simulated now. Full inbox → [`SendOutcome::Overload`]: dropped,
    /// counted, traced — never queued, never recursed into.
    pub fn post(&mut self, from: DomainId, to: DomainId, msg: M) -> SendOutcome {
        self.post_on(from, to, None, msg)
    }

    /// [`EventLoop::post`] with the fbuf path the event works on behalf
    /// of, so `Enqueue`/`Dequeue`/`Overload` trace events attribute to
    /// that path. The ambient transfer span (if any) is captured into
    /// the envelope either way.
    pub fn post_on(
        &mut self,
        from: DomainId,
        to: DomainId,
        path: Option<u64>,
        msg: M,
    ) -> SendOutcome {
        let slot = to.0 as usize;
        if self.inboxes.len() <= slot {
            self.inboxes.resize_with(slot + 1, VecDeque::new);
        }
        if self.inboxes[slot].len() >= self.depth {
            self.overloads += 1;
            self.stats.inc_overload_drops();
            self.tracer
                .instant_peer(EventKind::Overload, from.0, to.0, path, None);
            return SendOutcome::Overload;
        }
        let now = self.clock.now();
        let id = self.heap.push(now, to);
        self.inboxes[slot].push_back(Envelope {
            from,
            to,
            enqueued_at: now,
            id,
            span: self.tracer.current_span(),
            path,
            msg,
        });
        self.enqueued += 1;
        self.tracer
            .instant_peer(EventKind::Enqueue, from.0, to.0, path, None);
        SendOutcome::Queued(id)
    }

    /// Processes the earliest pending event: dequeues it, records its
    /// queueing delay, and hands it to `handler` (which may post
    /// follow-ups through the `&mut EventLoop` it receives). Returns
    /// `false` when nothing was pending.
    pub fn step<C>(
        &mut self,
        ctx: &mut C,
        handler: &mut impl FnMut(&mut EventLoop<M>, &mut C, Envelope<M>),
    ) -> bool {
        let Some(token) = self.heap.pop() else {
            return false;
        };
        let dom = token.payload;
        let env = self.inboxes[dom.0 as usize]
            .pop_front()
            .expect("a wake token always has a matching inbox entry");
        debug_assert_eq!(env.id, token.id, "tokens and envelopes stay FIFO-aligned");
        let delay = self.clock.now() - env.enqueued_at;
        self.queue_delay.record(delay.as_ns());
        let dslot = env.to.0 as usize;
        if self.delay_by_dom.len() <= dslot {
            self.delay_by_dom.resize(dslot + 1, 0);
        }
        self.delay_by_dom[dslot] += delay.as_ns();
        self.dequeued += 1;
        // The envelope's transfer span becomes ambient for the Dequeue
        // record and the whole handler, so every event the hop records
        // (IPC descent, VM work, follow-up posts) stays on the tree.
        let prev = self.tracer.set_current_span(env.span);
        // Dequeue span: `dur` is the queueing delay (enqueue → dequeue).
        self.tracer.span_peer(
            env.enqueued_at,
            EventKind::Dequeue,
            env.to.0,
            Some(env.from.0),
            env.path,
            None,
        );
        handler(self, ctx, env);
        self.tracer.set_current_span(prev);
        true
    }

    /// Runs [`EventLoop::step`] until the loop drains; returns how many
    /// events were processed.
    pub fn run<C>(
        &mut self,
        ctx: &mut C,
        handler: &mut impl FnMut(&mut EventLoop<M>, &mut C, Envelope<M>),
    ) -> usize {
        let mut n = 0;
        while self.step(ctx, handler) {
            n += 1;
        }
        n
    }

    /// Events currently pending across all inboxes.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Events currently pending in one actor's inbox.
    pub fn inbox_len(&self, dom: DomainId) -> usize {
        self.inboxes
            .get(dom.0 as usize)
            .map_or(0, VecDeque::len)
    }

    /// Posts refused with [`SendOutcome::Overload`] so far.
    pub fn overloads(&self) -> u64 {
        self.overloads
    }

    /// Events successfully enqueued so far.
    pub fn enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Events dequeued and handled so far.
    pub fn dequeued(&self) -> u64 {
        self.dequeued
    }

    /// Per-hop queueing-delay histogram (simulated ns between enqueue
    /// and dequeue), over the loop's whole lifetime.
    pub fn queue_delay(&self) -> &Histogram {
        &self.queue_delay
    }

    /// Queueing delay (simulated ns) accumulated by events handled *in*
    /// each domain, indexed by `DomainId.0` — the per-tenant ledger's
    /// "queueing delay contributed" column.
    pub fn queue_delay_by_dom(&self) -> &[u64] {
        &self.delay_by_dom
    }

    /// Resets the queueing-delay histogram and the overload/enqueue/
    /// dequeue counters (pending events are untouched) — used by bench
    /// sweeps that measure each offered-load point separately.
    pub fn reset_metrics(&mut self) {
        self.queue_delay = Histogram::new();
        self.delay_by_dom.clear();
        self.overloads = 0;
        self.enqueued = 0;
        self.dequeued = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbuf_sim::{audit_tracer, CostCategory};

    fn evl<M>() -> (EventLoop<M>, Clock, Stats, Tracer) {
        let clock = Clock::new();
        let stats = Stats::new();
        let tracer = Tracer::new(clock.clone());
        let e = EventLoop::new(clock.clone(), stats.clone(), tracer.clone());
        (e, clock, stats, tracer)
    }

    #[test]
    fn events_process_in_post_order_at_equal_time() {
        let (mut e, _, _, _) = evl();
        for i in 0..5u32 {
            e.post(DomainId(0), DomainId(1), i);
        }
        let mut order = Vec::new();
        e.run(&mut order, &mut |_, order: &mut Vec<u32>, env| {
            order.push(env.msg)
        });
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn handler_posts_drive_multi_hop_chains() {
        // A three-leg chain: 0 → 1 → 2 → 3, each leg charging the clock,
        // so each dequeue sees the time the previous leg's charge left.
        let (mut e, clock, _, _) = evl();
        e.post(DomainId(0), DomainId(1), 0u32);
        let mut legs = Vec::new();
        let c = clock.clone();
        e.run(&mut legs, &mut move |evl, legs: &mut Vec<(u32, Ns)>, env| {
            legs.push((env.to.0, c.now() - env.enqueued_at));
            c.charge(CostCategory::Ipc, Ns(100));
            if env.to.0 < 3 {
                evl.post(env.to, DomainId(env.to.0 + 1), env.msg + 1);
            }
        });
        // Each leg was enqueued right after the previous handler's
        // charge, so its queueing delay is zero — a drained pipeline
        // queues nothing.
        assert_eq!(
            legs,
            vec![
                (1, Ns::ZERO),
                (2, Ns::ZERO),
                (3, Ns::ZERO),
            ]
        );
        assert_eq!(clock.now(), Ns(300));
    }

    #[test]
    fn full_inbox_overloads_explicitly() {
        let (mut e, _, stats, _) = evl();
        e.set_inbox_depth(2);
        assert!(matches!(
            e.post(DomainId(0), DomainId(1), ()),
            SendOutcome::Queued(_)
        ));
        assert!(matches!(
            e.post(DomainId(0), DomainId(1), ()),
            SendOutcome::Queued(_)
        ));
        assert!(e.post(DomainId(0), DomainId(1), ()).is_overload());
        assert_eq!(e.overloads(), 1);
        assert_eq!(stats.overload_drops(), 1);
        assert_eq!(e.inbox_len(DomainId(1)), 2, "the drop never queued");
        // Draining frees the slot again.
        e.run(&mut (), &mut |_, _, _| {});
        assert!(matches!(
            e.post(DomainId(0), DomainId(1), ()),
            SendOutcome::Queued(_)
        ));
    }

    #[test]
    fn queue_delay_measures_backlog_service_time() {
        // Two events posted back-to-back; the handler charges 1 µs per
        // event, so the second waits exactly one service time.
        let (mut e, clock, _, _) = evl();
        e.post(DomainId(0), DomainId(1), ());
        e.post(DomainId(0), DomainId(1), ());
        let c = clock.clone();
        e.run(&mut (), &mut move |_, _, _| {
            c.charge(CostCategory::Ipc, Ns(1_000));
        });
        let h = e.queue_delay();
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 0, "first event is served immediately");
        assert_eq!(h.max(), 1_000, "second waited one service time");
    }

    #[test]
    fn trace_records_enqueue_dequeue_overload_and_audits_clean() {
        let (mut e, _, _, tracer) = evl();
        tracer.set_enabled(true);
        e.set_inbox_depth(1);
        e.post(DomainId(0), DomainId(1), ());
        e.post(DomainId(0), DomainId(1), ()); // overload
        e.run(&mut (), &mut |_, _, _| {});
        assert_eq!(tracer.count_of(EventKind::Enqueue), 1);
        assert_eq!(tracer.count_of(EventKind::Overload), 1);
        assert_eq!(tracer.count_of(EventKind::Dequeue), 1);
        audit_tracer(&tracer).assert_clean();
    }

    #[test]
    fn loop_itself_is_free_in_simulated_time() {
        // Posting and dequeuing charge nothing; only handlers move the
        // clock. (The engine is bookkeeping, not simulated work.)
        let (mut e, clock, _, _) = evl();
        for _ in 0..100 {
            e.post(DomainId(0), DomainId(1), ());
        }
        e.run(&mut (), &mut |_, _, _| {});
        assert_eq!(clock.now(), Ns::ZERO);
    }

    #[test]
    fn posts_capture_the_ambient_span_and_steps_restore_it() {
        let (mut e, _, _, tracer) = evl();
        tracer.set_enabled(true);
        tracer.set_current_span(Some(42));
        e.post(DomainId(0), DomainId(1), ());
        tracer.set_current_span(None);
        let t = tracer.clone();
        e.run(&mut (), &mut move |_, _, env: Envelope<()>| {
            assert_eq!(env.span, Some(42));
            assert_eq!(t.current_span(), Some(42), "handler runs in the span");
        });
        assert_eq!(
            tracer.current_span(),
            None,
            "step restores the previous ambient span"
        );
        // The Dequeue record itself carries the envelope's span.
        let deq = tracer
            .events()
            .into_iter()
            .find(|ev| ev.kind == EventKind::Dequeue)
            .unwrap();
        assert_eq!(deq.span, Some(42));
    }

    #[test]
    fn post_on_threads_the_path_through_enqueue_dequeue_and_overload() {
        let (mut e, _, _, tracer) = evl();
        tracer.set_enabled(true);
        e.set_inbox_depth(1);
        e.post_on(DomainId(0), DomainId(1), Some(7), ());
        e.post_on(DomainId(0), DomainId(1), Some(7), ()); // overload
        e.run(&mut (), &mut |_, _, _| {});
        for kind in [EventKind::Enqueue, EventKind::Dequeue, EventKind::Overload] {
            let ev = tracer
                .events()
                .into_iter()
                .find(|ev| ev.kind == kind)
                .unwrap();
            assert_eq!(ev.path, Some(7), "{kind:?} attributes to the path");
        }
    }

    #[test]
    fn queue_delay_is_attributed_to_the_handling_domain() {
        let (mut e, clock, _, _) = evl();
        e.post(DomainId(0), DomainId(2), ());
        e.post(DomainId(0), DomainId(2), ());
        let c = clock.clone();
        e.run(&mut (), &mut move |_, _, _| {
            c.charge(CostCategory::Ipc, Ns(500));
        });
        assert_eq!(e.queue_delay_by_dom().get(2), Some(&500));
        assert_eq!(e.queue_delay_by_dom().first(), Some(&0));
    }

    #[test]
    fn reset_metrics_clears_measurements_only() {
        let (mut e, _, _, _) = evl();
        e.set_inbox_depth(1);
        e.post(DomainId(0), DomainId(1), ());
        e.post(DomainId(0), DomainId(1), ());
        e.run(&mut (), &mut |_, _, _| {});
        e.reset_metrics();
        assert_eq!(e.overloads(), 0);
        assert_eq!(e.enqueued(), 0);
        assert_eq!(e.dequeued(), 0);
        assert!(e.queue_delay().is_empty());
        assert!(e.queue_delay_by_dom().is_empty());
    }
}
