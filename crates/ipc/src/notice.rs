//! Deallocation-notice bookkeeping (paper §3.3).
//!
//! "When a message is deallocated and the corresponding fbufs are owned by
//! a different domain, the reference is put on a list of deallocated
//! external references. When an RPC call from the owning domain occurs, the
//! reply message is used to carry deallocation notices from this list. When
//! too many freed references have accumulated, an explicit message must be
//! sent notifying the owning domain of the deallocations."

use std::collections::HashMap;

use fbuf_vm::DomainId;

/// Default number of pending notices per (owner, holder) pair before an
/// explicit message is forced. Sized so that ordinary bursts (freeing a
/// large message's worth of PDU-sized buffers at once) ride the next RPC
/// reply — the paper: "in practice, it is rarely necessary to send
/// additional messages for the purpose of deallocation."
pub const DEFAULT_THRESHOLD: usize = 1024;

/// Per-domain-pair lists of deallocated external references.
#[derive(Debug)]
pub struct NoticeBoard {
    /// (owner, holder) → queued tokens.
    pending: HashMap<(u32, u32), Vec<u64>>,
    threshold: usize,
}

impl NoticeBoard {
    /// Creates an empty board with the default threshold.
    pub fn new() -> NoticeBoard {
        NoticeBoard {
            pending: HashMap::new(),
            threshold: DEFAULT_THRESHOLD,
        }
    }

    /// Changes the explicit-message threshold.
    pub fn set_threshold(&mut self, threshold: usize) {
        assert!(threshold > 0);
        self.threshold = threshold;
    }

    /// Queues a token; returns `true` if the backlog for this pair has
    /// reached the threshold (the caller must send an explicit message and
    /// [`NoticeBoard::drain`]).
    pub fn queue(&mut self, owner: DomainId, holder: DomainId, token: u64) -> bool {
        let list = self.pending.entry((owner.0, holder.0)).or_default();
        list.push(token);
        list.len() >= self.threshold
    }

    /// Removes and returns the backlog for (owner, holder).
    pub fn drain(&mut self, owner: DomainId, holder: DomainId) -> Vec<u64> {
        self.pending
            .remove(&(owner.0, holder.0))
            .unwrap_or_default()
    }

    /// Number of pending tokens for (owner, holder).
    pub fn pending(&self, owner: DomainId, holder: DomainId) -> usize {
        self.pending
            .get(&(owner.0, holder.0))
            .map(|v| v.len())
            .unwrap_or(0)
    }

    /// Drains every backlog owed to `owner` (endpoint/domain teardown).
    pub fn drain_all_for(&mut self, owner: DomainId) -> Vec<u64> {
        let keys: Vec<(u32, u32)> = self
            .pending
            .keys()
            .filter(|(o, _)| *o == owner.0)
            .copied()
            .collect();
        let mut out = Vec::new();
        for k in keys {
            out.extend(self.pending.remove(&k).unwrap_or_default());
        }
        out
    }
}

impl Default for NoticeBoard {
    fn default() -> NoticeBoard {
        NoticeBoard::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_and_drain_fifo() {
        let mut b = NoticeBoard::new();
        let o = DomainId(1);
        let h = DomainId(2);
        assert!(!b.queue(o, h, 1));
        assert!(!b.queue(o, h, 2));
        assert_eq!(b.pending(o, h), 2);
        assert_eq!(b.drain(o, h), vec![1, 2]);
        assert_eq!(b.pending(o, h), 0);
        assert!(b.drain(o, h).is_empty());
    }

    #[test]
    fn pairs_are_independent() {
        let mut b = NoticeBoard::new();
        b.queue(DomainId(1), DomainId(2), 1);
        b.queue(DomainId(1), DomainId(3), 2);
        b.queue(DomainId(2), DomainId(1), 3);
        assert_eq!(b.drain(DomainId(1), DomainId(2)), vec![1]);
        assert_eq!(b.pending(DomainId(1), DomainId(3)), 1);
        assert_eq!(b.pending(DomainId(2), DomainId(1)), 1);
    }

    #[test]
    fn threshold_signal() {
        let mut b = NoticeBoard::new();
        b.set_threshold(2);
        let o = DomainId(1);
        let h = DomainId(2);
        assert!(!b.queue(o, h, 1));
        assert!(b.queue(o, h, 2));
    }

    #[test]
    #[should_panic]
    fn zero_threshold_rejected() {
        NoticeBoard::new().set_threshold(0);
    }
}
