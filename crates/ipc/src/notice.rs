//! Deallocation-notice bookkeeping (paper §3.3).
//!
//! "When a message is deallocated and the corresponding fbufs are owned by
//! a different domain, the reference is put on a list of deallocated
//! external references. When an RPC call from the owning domain occurs, the
//! reply message is used to carry deallocation notices from this list. When
//! too many freed references have accumulated, an explicit message must be
//! sent notifying the owning domain of the deallocations."
//!
//! The board sits on the free/RPC hot path (every external-reference free
//! queues a notice; every RPC drains them), so it is indexed directly by
//! owner domain id with per-holder token lists that retain their capacity
//! across drains: the steady-state queue → drain cycle does no hashing and
//! no allocation beyond the drained result itself, and draining an owner
//! with nothing pending is a single counter check.

use fbuf_vm::DomainId;

/// Default number of pending notices per (owner, holder) pair before an
/// explicit message is forced. Sized so that ordinary bursts (freeing a
/// large message's worth of PDU-sized buffers at once) ride the next RPC
/// reply — the paper: "in practice, it is rarely necessary to send
/// additional messages for the purpose of deallocation."
pub const DEFAULT_THRESHOLD: usize = 1024;

/// One owner's backlog: per-holder token lists plus a total for the O(1)
/// emptiness check. Token `Vec`s are cleared, never dropped, so their
/// capacity survives the steady-state drain cycle.
#[derive(Debug, Default)]
struct OwnerBoard {
    lists: Vec<(u32, Vec<u64>)>,
    total: usize,
}

/// Per-domain-pair lists of deallocated external references.
#[derive(Debug)]
pub struct NoticeBoard {
    /// Indexed by owner domain id.
    owners: Vec<OwnerBoard>,
    threshold: usize,
}

impl NoticeBoard {
    /// Creates an empty board with the default threshold.
    pub fn new() -> NoticeBoard {
        NoticeBoard {
            owners: Vec::new(),
            threshold: DEFAULT_THRESHOLD,
        }
    }

    /// Changes the explicit-message threshold.
    pub fn set_threshold(&mut self, threshold: usize) {
        assert!(threshold > 0);
        self.threshold = threshold;
    }

    /// Queues a token; returns `true` if the backlog for this pair has
    /// reached the threshold (the caller must send an explicit message and
    /// [`NoticeBoard::drain`]).
    pub fn queue(&mut self, owner: DomainId, holder: DomainId, token: u64) -> bool {
        let o = owner.0 as usize;
        if self.owners.len() <= o {
            self.owners.resize_with(o + 1, OwnerBoard::default);
        }
        let board = &mut self.owners[o];
        let list = match board.lists.iter_mut().position(|(h, _)| *h == holder.0) {
            Some(i) => &mut board.lists[i].1,
            None => {
                board.lists.push((holder.0, Vec::new()));
                &mut board.lists.last_mut().expect("just pushed").1
            }
        };
        list.push(token);
        board.total += 1;
        list.len() >= self.threshold
    }

    /// Removes and returns the backlog for (owner, holder).
    pub fn drain(&mut self, owner: DomainId, holder: DomainId) -> Vec<u64> {
        let Some(board) = self.owners.get_mut(owner.0 as usize) else {
            return Vec::new();
        };
        let Some((_, list)) = board.lists.iter_mut().find(|(h, _)| *h == holder.0) else {
            return Vec::new();
        };
        board.total -= list.len();
        let mut out = Vec::with_capacity(list.len());
        out.append(list); // leaves `list`'s capacity in place
        out
    }

    /// Number of pending tokens for (owner, holder).
    pub fn pending(&self, owner: DomainId, holder: DomainId) -> usize {
        self.owners
            .get(owner.0 as usize)
            .and_then(|b| b.lists.iter().find(|(h, _)| *h == holder.0))
            .map(|(_, list)| list.len())
            .unwrap_or(0)
    }

    /// Drains every backlog owed to `owner` (RPC replies and
    /// endpoint/domain teardown). Returns an empty `Vec` (no allocation)
    /// when nothing is pending.
    pub fn drain_all_for(&mut self, owner: DomainId) -> Vec<u64> {
        let Some(board) = self.owners.get_mut(owner.0 as usize) else {
            return Vec::new();
        };
        if board.total == 0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(board.total);
        for (_, list) in board.lists.iter_mut() {
            out.append(list);
        }
        board.total = 0;
        out
    }
}

impl Default for NoticeBoard {
    fn default() -> NoticeBoard {
        NoticeBoard::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_and_drain_fifo() {
        let mut b = NoticeBoard::new();
        let o = DomainId(1);
        let h = DomainId(2);
        assert!(!b.queue(o, h, 1));
        assert!(!b.queue(o, h, 2));
        assert_eq!(b.pending(o, h), 2);
        assert_eq!(b.drain(o, h), vec![1, 2]);
        assert_eq!(b.pending(o, h), 0);
        assert!(b.drain(o, h).is_empty());
    }

    #[test]
    fn pairs_are_independent() {
        let mut b = NoticeBoard::new();
        b.queue(DomainId(1), DomainId(2), 1);
        b.queue(DomainId(1), DomainId(3), 2);
        b.queue(DomainId(2), DomainId(1), 3);
        assert_eq!(b.drain(DomainId(1), DomainId(2)), vec![1]);
        assert_eq!(b.pending(DomainId(1), DomainId(3)), 1);
        assert_eq!(b.pending(DomainId(2), DomainId(1)), 1);
    }

    #[test]
    fn threshold_signal() {
        let mut b = NoticeBoard::new();
        b.set_threshold(2);
        let o = DomainId(1);
        let h = DomainId(2);
        assert!(!b.queue(o, h, 1));
        assert!(b.queue(o, h, 2));
    }

    #[test]
    fn drain_all_collects_every_holder_and_resets() {
        let mut b = NoticeBoard::new();
        let o = DomainId(1);
        b.queue(o, DomainId(2), 1);
        b.queue(o, DomainId(3), 2);
        b.queue(o, DomainId(2), 3);
        let mut all = b.drain_all_for(o);
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 3]);
        assert!(b.drain_all_for(o).is_empty());
        assert_eq!(b.pending(o, DomainId(2)), 0);
        // Re-queue after a full drain works (capacity is retained).
        assert!(!b.queue(o, DomainId(2), 4));
        assert_eq!(b.pending(o, DomainId(2)), 1);
    }

    #[test]
    #[should_panic]
    fn zero_threshold_rejected() {
        NoticeBoard::new().set_threshold(0);
    }
}
