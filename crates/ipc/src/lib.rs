//! Cross-domain IPC for the fbufs reproduction.
//!
//! The paper's platform used Mach 3.0 IPC with x-kernel proxy objects
//! forwarding cross-domain invocations. The experiments depend on IPC in
//! exactly two ways, both reproduced here:
//!
//! * **control-transfer latency** — "the throughput rates shown for small
//!   messages ... are strongly influenced by the control transfer latency
//!   of the IPC mechanism" ([`Rpc::call`] charges the calibrated latency per
//!   domain pair);
//! * **deallocation notices** — "when an RPC call from the owning domain
//!   occurs, the reply message is used to carry deallocation notices from
//!   this list. When too many freed references have accumulated, an explicit
//!   message must be sent" (paper §3.3; [`NoticeBoard`]).
//!
//! Two execution models share those charging primitives:
//!
//! * [`Rpc::call`] alone models the original **synchronous** descent — the
//!   caller charges the full round trip inline, matching a single-CPU
//!   DecStation where caller and callee cannot overlap;
//! * [`actor::EventLoop`] schedules hops as **events** against bounded
//!   per-domain inboxes, with [`Rpc::call`] invoked from the event handler
//!   so each hop charges identically — plus explicit queueing delay,
//!   backpressure, and [`actor::SendOutcome::Overload`] that the recursive
//!   model cannot express. See `DESIGN.md` §12.

pub mod actor;
pub mod notice;
pub mod rpc;

pub use actor::{Envelope, EventLoop, SendOutcome, DEFAULT_INBOX_DEPTH};
pub use notice::NoticeBoard;
pub use rpc::{Payload, Rpc};
