//! Synchronous RPC with calibrated control-transfer latency.

use fbuf_sim::{Clock, CostCategory, CostModel, EventKind, Ns, Stats, Tracer};
use fbuf_vm::DomainId;

use crate::notice::NoticeBoard;

/// What a cross-domain invocation carries, besides control transfer.
///
/// Inline bytes model Mach's in-line data (the *copy* baseline path);
/// fbuf payloads carry only references — the whole point of the facility is
/// that "in the common case, no kernel involvement is required during
/// cross-domain data transfer".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// No data (a pure control transfer).
    Control,
    /// Data copied through the message itself.
    Inline(Vec<u8>),
    /// A reference to a single fbuf extent: (virtual address, length).
    FbufExtent(u64, u64),
    /// References to a list of fbuf extents (external aggregate
    /// representation).
    FbufList(Vec<(u64, u64)>),
    /// The root virtual address of an integrated aggregate stored entirely
    /// in fbufs (paper §3.2.3).
    AggregateRoot(u64),
}

/// The RPC layer: charges per-call latency and drains deallocation notices
/// into replies.
#[derive(Debug)]
pub struct Rpc {
    clock: Clock,
    stats: Stats,
    tracer: Tracer,
    costs: CostModel,
    notices: NoticeBoard,
    /// IPC calls originated per domain, indexed by `DomainId.0` — the
    /// per-tenant ledger's "ipc_calls" column (explicit notice messages
    /// count against the holder that forced them).
    calls_by_dom: Vec<u64>,
}

impl Rpc {
    /// Creates the RPC layer over the shared clock/stats/tracer handles
    /// and cost model.
    pub fn new(clock: Clock, stats: Stats, tracer: Tracer, costs: CostModel) -> Rpc {
        Rpc {
            clock,
            stats,
            tracer,
            costs,
            notices: NoticeBoard::new(),
            calls_by_dom: Vec::new(),
        }
    }

    fn count_call_from(&mut self, from: DomainId) {
        let slot = from.0 as usize;
        if self.calls_by_dom.len() <= slot {
            self.calls_by_dom.resize(slot + 1, 0);
        }
        self.calls_by_dom[slot] += 1;
    }

    /// Round-trip latency between two domains: crossing into or out of the
    /// kernel is cheaper than a user-to-user RPC (which passes through the
    /// kernel twice).
    pub fn latency(&self, a: DomainId, b: DomainId) -> Ns {
        if a.is_kernel() || b.is_kernel() {
            self.costs.rpc_kernel_user
        } else {
            self.costs.rpc_user_user
        }
    }

    /// Performs a synchronous RPC from `from` to `to`: charges the control
    /// transfer and per-message dispatch, counts the message, and returns
    /// the deallocation notices the reply carries back to `from` (tokens
    /// previously queued by receivers freeing fbufs owned by `from`; the
    /// kernel mediates every RPC, so the reply aggregates notices from all
    /// holders).
    ///
    /// This is the per-hop *charging primitive* for both execution models:
    /// the recursive engine invokes it inline at each level of its descent,
    /// and the event-loop engine ([`crate::actor::EventLoop`]) invokes it
    /// from the dequeue handler of each hop. Because the charge sequence is
    /// identical either way, the two engines stay counter-exact (pinned by
    /// `tests/counter_exactness.rs`).
    pub fn call(&mut self, from: DomainId, to: DomainId) -> Vec<u64> {
        self.clock.charge(
            CostCategory::Ipc,
            self.latency(from, to) + self.costs.ipc_dispatch,
        );
        self.stats.inc_ipc_messages();
        self.count_call_from(from);
        self.tracer
            .instant_peer(EventKind::IpcCall, from.0, to.0, None, None);
        let drained = self.notices.drain_all_for(from);
        if !drained.is_empty() {
            self.stats.add_piggybacked_notices(drained.len() as u64);
            for &token in &drained {
                // The notice reaches the owner (`from`) on this reply.
                self.tracer
                    .instant_peer(EventKind::Notice, to.0, from.0, None, Some(token));
            }
        }
        drained
    }

    /// Queues a deallocation notice: `holder` has released its reference to
    /// an fbuf owned by `owner`; the token identifies the fbuf to the
    /// owner's allocator.
    ///
    /// If too many notices have accumulated for this domain pair, an
    /// explicit notice message is sent immediately (charged like an RPC)
    /// and the backlog is returned for the caller to apply; otherwise
    /// `None` — the backlog will ride a future reply.
    pub fn queue_dealloc_notice(
        &mut self,
        owner: DomainId,
        holder: DomainId,
        token: u64,
    ) -> Option<Vec<u64>> {
        if self.notices.queue(owner, holder, token) {
            // Threshold exceeded: explicit message.
            self.clock.charge(
                CostCategory::Ipc,
                self.latency(holder, owner) + self.costs.ipc_dispatch,
            );
            self.stats.inc_ipc_messages();
            self.count_call_from(holder);
            self.stats.inc_explicit_notice_messages();
            self.tracer
                .instant_peer(EventKind::Notice, holder.0, owner.0, None, Some(token));
            Some(self.notices.drain(owner, holder))
        } else {
            None
        }
    }

    /// Pending notices for (`owner`, `holder`) — e.g. to flush on domain
    /// termination.
    pub fn pending_notices(&self, owner: DomainId, holder: DomainId) -> usize {
        self.notices.pending(owner, holder)
    }

    /// Drains all pending notices owed to `owner` regardless of holder
    /// (used during endpoint/domain teardown).
    pub fn drain_all_for(&mut self, owner: DomainId) -> Vec<u64> {
        self.notices.drain_all_for(owner)
    }

    /// Sets the explicit-message threshold (notices pending per domain pair
    /// before an explicit message is forced).
    pub fn set_notice_threshold(&mut self, threshold: usize) {
        self.notices.set_threshold(threshold);
    }

    /// IPC calls originated per domain, indexed by `DomainId.0` — feeds
    /// the per-tenant accounting ledger.
    pub fn calls_by_dom(&self) -> &[u64] {
        &self.calls_by_dom
    }

    /// The shared clock (for callers that need to idle).
    pub fn clock(&self) -> Clock {
        self.clock.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbuf_vm::KERNEL_DOMAIN;

    fn rpc() -> (Rpc, Clock, Stats) {
        let clock = Clock::new();
        let stats = Stats::new();
        let tracer = Tracer::new(clock.clone());
        let r = Rpc::new(
            clock.clone(),
            stats.clone(),
            tracer,
            CostModel::decstation_5000_200(),
        );
        (r, clock, stats)
    }

    #[test]
    fn kernel_user_cheaper_than_user_user() {
        let (mut r, clock, stats) = rpc();
        let u1 = DomainId(1);
        let u2 = DomainId(2);
        r.call(KERNEL_DOMAIN, u1);
        let ku = clock.now();
        r.call(u1, u2);
        let uu = clock.now() - ku;
        assert!(uu > ku, "user-user {uu} should exceed kernel-user {ku}");
        assert_eq!(stats.ipc_messages(), 2);
    }

    #[test]
    fn latency_is_symmetric() {
        let (r, _, _) = rpc();
        assert_eq!(
            r.latency(KERNEL_DOMAIN, DomainId(1)),
            r.latency(DomainId(1), KERNEL_DOMAIN)
        );
        assert_eq!(
            r.latency(DomainId(1), DomainId(2)),
            r.latency(DomainId(2), DomainId(1))
        );
    }

    #[test]
    fn notices_ride_the_next_reply_to_the_owner() {
        let (mut r, _, stats) = rpc();
        let owner = DomainId(1);
        let holder = DomainId(2);
        assert!(r.queue_dealloc_notice(owner, holder, 7).is_none());
        assert!(r.queue_dealloc_notice(owner, holder, 8).is_none());
        // A call from someone else's pair carries nothing.
        assert!(r.call(DomainId(3), holder).is_empty());
        // The owner's next call to the holder gets both notices in the
        // reply.
        let got = r.call(owner, holder);
        assert_eq!(got, vec![7, 8]);
        assert_eq!(stats.piggybacked_notices(), 2);
        assert_eq!(stats.explicit_notice_messages(), 0);
        // Drained: nothing left.
        assert!(r.call(owner, holder).is_empty());
    }

    #[test]
    fn explicit_message_after_threshold() {
        let (mut r, _, stats) = rpc();
        r.set_notice_threshold(3);
        let owner = DomainId(1);
        let holder = DomainId(2);
        assert!(r.queue_dealloc_notice(owner, holder, 1).is_none());
        assert!(r.queue_dealloc_notice(owner, holder, 2).is_none());
        let flushed = r.queue_dealloc_notice(owner, holder, 3).unwrap();
        assert_eq!(flushed, vec![1, 2, 3]);
        assert_eq!(stats.explicit_notice_messages(), 1);
    }

    #[test]
    fn explicit_messages_rare_under_rpc_traffic() {
        // The paper: "in practice, it is rarely necessary to send
        // additional messages for the purpose of deallocation" — because
        // steady RPC traffic keeps draining the list.
        let (mut r, _, stats) = rpc();
        r.set_notice_threshold(8);
        let owner = DomainId(1);
        let holder = DomainId(2);
        for i in 0..1000 {
            let flushed = r.queue_dealloc_notice(owner, holder, i);
            assert!(flushed.is_none());
            // Steady traffic: the owner RPCs the holder after every couple
            // of frees.
            if i % 2 == 0 {
                r.call(owner, holder);
            }
        }
        assert_eq!(stats.explicit_notice_messages(), 0);
        assert_eq!(
            stats.piggybacked_notices(),
            1000 - r.pending_notices(owner, holder) as u64
        );
    }

    #[test]
    fn calls_are_attributed_to_the_originating_domain() {
        let (mut r, _, stats) = rpc();
        r.call(DomainId(1), DomainId(2));
        r.call(DomainId(1), DomainId(2));
        r.call(DomainId(2), DomainId(1));
        // Forced explicit notice counts against the holder who sent it.
        r.set_notice_threshold(1);
        r.queue_dealloc_notice(DomainId(1), DomainId(3), 99).unwrap();
        assert_eq!(r.calls_by_dom().get(1), Some(&2));
        assert_eq!(r.calls_by_dom().get(2), Some(&1));
        assert_eq!(r.calls_by_dom().get(3), Some(&1));
        assert_eq!(
            r.calls_by_dom().iter().sum::<u64>(),
            stats.ipc_messages(),
            "per-domain attribution conserves the fleet counter"
        );
    }

    #[test]
    fn drain_all_for_owner_collects_all_holders() {
        let (mut r, _, _) = rpc();
        let owner = DomainId(1);
        r.queue_dealloc_notice(owner, DomainId(2), 10);
        r.queue_dealloc_notice(owner, DomainId(3), 11);
        let mut all = r.drain_all_for(owner);
        all.sort_unstable();
        assert_eq!(all, vec![10, 11]);
        assert_eq!(r.pending_notices(owner, DomainId(2)), 0);
    }

    #[test]
    fn payload_variants_carry_descriptors() {
        let p = Payload::FbufList(vec![(0x4000_0000, 4096), (0x4000_2000, 100)]);
        match p {
            Payload::FbufList(l) => assert_eq!(l.len(), 2),
            _ => unreachable!(),
        }
        assert_eq!(Payload::Control, Payload::Control);
    }
}
