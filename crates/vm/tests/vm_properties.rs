//! Property tests of the VM substrate against a reference model: after
//! any sequence of map/unmap/protect operations, every access must behave
//! exactly as the model predicts — regardless of what the (finite,
//! LRU-evicting, lazily refreshed) TLB has cached. Driven by the in-repo
//! harness (`fbuf_sim::Checker`) at the old proptest case counts (128);
//! failures print a replayable seed.

use std::collections::HashMap;

use fbuf_sim::{Checker, MachineConfig, Rng};
use fbuf_vm::{FrameId, Machine, Prot};

const CASES: u64 = 128;

#[derive(Debug, Clone)]
enum Op {
    Map { dom: usize, page: u64, prot: Prot },
    Unmap { dom: usize, page: u64 },
    Protect { dom: usize, page: u64, prot: Prot },
    Read { dom: usize, page: u64 },
    Write { dom: usize, page: u64 },
}

fn arb_prot(rng: &mut Rng) -> Prot {
    match rng.below(3) {
        0 => Prot::Read,
        1 => Prot::ReadWrite,
        _ => Prot::None,
    }
}

fn arb_op(rng: &mut Rng) -> Op {
    let dom = rng.index(3);
    let page = rng.below(6);
    match rng.below(5) {
        0 => Op::Map {
            dom,
            page,
            prot: arb_prot(rng),
        },
        1 => Op::Unmap { dom, page },
        2 => Op::Protect {
            dom,
            page,
            prot: arb_prot(rng),
        },
        3 => Op::Read { dom, page },
        _ => Op::Write { dom, page },
    }
}

const BASE: u64 = 0x2000_0000;

#[test]
fn machine_matches_reference_model() {
    Checker::new("machine_matches_reference_model")
        .cases(CASES)
        .run(|rng| {
            let ops = rng.vec_with(1, 60, arb_op);
            // A deliberately tiny TLB maximizes eviction/staleness traffic.
            let mut cfg = MachineConfig::tiny();
            cfg.tlb_entries = 2;
            let mut m = Machine::new(cfg);
            let doms = [m.create_domain(), m.create_domain(), m.create_domain()];
            for &d in &doms {
                m.map_explicit_region(d, BASE, 8, Prot::ReadWrite).unwrap();
            }
            // One shared frame per page index; the machine-independent model.
            let frames: Vec<FrameId> = (0..6).map(|_| m.alloc_frame().unwrap()).collect();
            for &f in &frames {
                m.zero_frame(f);
            }
            let mut model: HashMap<(usize, u64), Prot> = HashMap::new();

            for op in ops {
                match op {
                    Op::Map { dom, page, prot } => {
                        m.map_page(doms[dom], BASE + page * 4096, frames[page as usize], prot)
                            .unwrap();
                        model.insert((dom, page), prot);
                    }
                    Op::Unmap { dom, page } => {
                        let got = m.unmap_page(doms[dom], BASE + page * 4096).unwrap();
                        let expected = model.remove(&(dom, page));
                        assert_eq!(got.is_some(), expected.is_some());
                    }
                    Op::Protect { dom, page, prot } => {
                        let res = m.protect_page(doms[dom], BASE + page * 4096, prot);
                        match model.get_mut(&(dom, page)) {
                            Some(cur) => {
                                assert_eq!(res.unwrap(), *cur);
                                *cur = prot;
                            }
                            None => assert!(res.is_err()),
                        }
                    }
                    Op::Read { dom, page } => {
                        let res = m.read(doms[dom], BASE + page * 4096, 1);
                        let allowed = model
                            .get(&(dom, page))
                            .map(|p| p.allows(fbuf_vm::Access::Read))
                            .unwrap_or(false);
                        assert_eq!(res.is_ok(), allowed, "read d{} p{}: {:?}", dom, page, model);
                    }
                    Op::Write { dom, page } => {
                        let res = m.write(doms[dom], BASE + page * 4096, &[1]);
                        let allowed = model
                            .get(&(dom, page))
                            .map(|p| p.allows(fbuf_vm::Access::Write))
                            .unwrap_or(false);
                        assert_eq!(res.is_ok(), allowed, "write d{} p{}: {:?}", dom, page, model);
                    }
                }
            }
            // Frame accounting: tear everything down and verify all frames
            // come home.
            let live_before = m.free_frames();
            for (&(dom, page), _) in model.clone().iter() {
                m.unmap_page(doms[dom], BASE + page * 4096).unwrap();
            }
            for f in frames {
                m.release_frame(f);
            }
            assert!(m.free_frames() > live_before);
            assert_eq!(m.free_frames(), m.config().frames());
        });
}

#[test]
fn data_written_is_data_read_across_domains() {
    Checker::new("data_written_is_data_read_across_domains")
        .cases(CASES)
        .run(|rng| {
            let writes = rng.vec_with(1, 20, |r| (r.below(4), r.below(4000), r.range(1, 64) as usize));
            // Writes through one domain's RW mappings are visible through
            // another domain's RO mappings of the same frames, byte-exactly.
            let mut m = Machine::new(MachineConfig::tiny());
            let w = m.create_domain();
            let r = m.create_domain();
            m.map_explicit_region(w, BASE, 4, Prot::ReadWrite).unwrap();
            m.map_explicit_region(r, BASE, 4, Prot::Read).unwrap();
            for page in 0..4u64 {
                let f = m.alloc_frame().unwrap();
                m.zero_frame(f);
                m.map_page(w, BASE + page * 4096, f, Prot::ReadWrite).unwrap();
                m.map_page(r, BASE + page * 4096, f, Prot::Read).unwrap();
                m.release_frame(f);
            }
            let mut shadow = vec![0u8; 4 * 4096];
            for (page, off, len) in writes {
                let off = off.min(4095);
                let len = len.min((4096 - off) as usize);
                let pattern: Vec<u8> = (0..len).map(|i| (i as u8) ^ (page as u8)).collect();
                let va = BASE + page * 4096 + off;
                m.write(w, va, &pattern).unwrap();
                let base = (page * 4096 + off) as usize;
                shadow[base..base + len].copy_from_slice(&pattern);
                // The reader domain sees exactly the shadow.
                let got = m.read(r, BASE, 4 * 4096).unwrap();
                assert_eq!(&got, &shadow);
            }
        });
}

#[test]
fn cow_isolation_under_random_write_interleavings() {
    Checker::new("cow_isolation_under_random_write_interleavings")
        .cases(CASES)
        .run(|rng| {
            let writer_turns = rng.vec_with(1, 12, |r| r.chance(0.5));
            // Sender and receiver interleave writes after a COW share; each
            // side must only ever see its own mutations plus the original.
            let mut m = Machine::new(MachineConfig::tiny());
            let a = m.create_domain();
            let b = m.create_domain();
            m.map_anon_region(a, BASE, 1).unwrap();
            m.write(a, BASE, b"base").unwrap();
            m.cow_share_region(a, BASE, b).unwrap();
            let mut a_val = b"base".to_vec();
            let mut b_val = b"base".to_vec();
            for (i, a_writes) in writer_turns.into_iter().enumerate() {
                let tag = [i as u8; 2];
                if a_writes {
                    m.write(a, BASE, &tag).unwrap();
                    a_val[..2].copy_from_slice(&tag);
                } else {
                    m.write(b, BASE, &tag).unwrap();
                    b_val[..2].copy_from_slice(&tag);
                }
                assert_eq!(m.read(a, BASE, 4).unwrap(), a_val.clone());
                assert_eq!(m.read(b, BASE, 4).unwrap(), b_val.clone());
            }
        });
}
