//! The simulated machine: domains, translation, faults, and charged
//! mapping primitives.

use std::cell::RefCell;
use std::rc::Rc;

use fbuf_sim::{
    Arena, Clock, CostCategory, CostModel, EventKind, FaultPlan, FaultSite, MachineConfig,
    Metrics, Ns, Stats, Tracer,
};

use crate::phys::{FrameId, PhysMem};
use crate::space::{AddressSpace, RegionPolicy};
use crate::tlb::Tlb;
use crate::types::{Access, DomainId, Fault, Prot, VmResult, Vpn};

/// A shared handle to a [`Machine`]. The simulation is single-threaded;
/// layers take short-lived borrows for individual operations.
pub type MachineRef = Rc<RefCell<Machine>>;

#[derive(Debug)]
struct Domain {
    space: AddressSpace,
    alive: bool,
}

/// An anonymous memory object backing one or more `LazyZero` regions
/// (a much-simplified Mach VM object, sufficient for the copy/COW
/// baselines).
#[derive(Debug)]
struct VmObject {
    frames: Vec<Option<FrameId>>,
    refs: u32,
}

/// Identifier of an anonymous memory object; stored in region
/// bookkeeping. Generational: the arena slot half names where the object
/// lives, the generation half makes a retired id unresolvable even after
/// its slot is recycled for a new object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObjectId(u64);

/// The simulated machine: physical memory, TLB, and per-domain address
/// spaces, with every operation charged to the shared clock.
///
/// # Examples
///
/// Protection is real — a downgraded page faults on write:
///
/// ```
/// use fbuf_sim::MachineConfig;
/// use fbuf_vm::{Machine, Prot};
///
/// let mut m = Machine::new(MachineConfig::tiny());
/// let dom = m.create_domain();
/// m.map_explicit_region(dom, 0x10000, 1, Prot::ReadWrite)?;
/// let frame = m.alloc_frame()?;
/// m.zero_frame(frame);
/// m.map_page(dom, 0x10000, frame, Prot::ReadWrite)?;
/// m.write(dom, 0x10000, b"data")?;
/// m.protect_page(dom, 0x10000, Prot::Read)?;
/// assert!(m.write(dom, 0x10000, b"nope").is_err());
/// assert_eq!(m.read(dom, 0x10000, 4)?, b"data");
/// # m.release_frame(frame);
/// # Ok::<(), fbuf_vm::Fault>(())
/// ```
///
/// # Threading
///
/// A `Machine` is **intentionally `!Send`**: its clock, counters, and
/// tracer are `Rc`-shared with the layers above, so a whole engine is
/// pinned to the thread that built it. The sharded multi-core design
/// (`fbuf::shard`) relies on this — each OS thread constructs its own
/// `Machine` *inside* the thread, and only plain data (config, snapshots,
/// trace events, payload bytes) ever crosses a thread boundary:
///
/// ```compile_fail
/// fn assert_send<T: Send>() {}
/// assert_send::<fbuf_vm::Machine>(); // must not compile: Rc inside
/// ```
#[derive(Debug)]
pub struct Machine {
    cfg: MachineConfig,
    clock: Clock,
    stats: Stats,
    tracer: Tracer,
    /// Time-series gauge sampler (disabled by default, like the tracer).
    metrics: Metrics,
    phys: PhysMem,
    tlb: Tlb,
    /// Domain slots are never recycled (a `DomainId` stays meaningful for
    /// the life of the machine); termination just clears `alive`.
    domains: Vec<Domain>,
    /// Anonymous objects live in a generational slab: O(1) deref, and a
    /// stale `ObjectId` fails to resolve instead of aliasing a recycled
    /// slot.
    objects: Arena<VmObject>,
    /// Region start-vpn keyed object attachment: (domain, start vpn) → object.
    region_objects: std::collections::HashMap<(u32, u64), ObjectId>,
    /// Per-(domain, region start, page index) private post-COW frames.
    cow_private: std::collections::HashMap<(u32, u64, u64), FrameId>,
    null_template: Vec<u8>,
    /// Armed fault-injection plan, if any (`None` in production: the hook
    /// in [`Machine::alloc_frame`] is then a single branch, like `trace`).
    fault: Option<Rc<FaultPlan>>,
}

impl Machine {
    /// Builds a machine from `cfg` with the kernel (domain 0) created.
    pub fn new(cfg: MachineConfig) -> Machine {
        cfg.validate().expect("invalid machine configuration");
        let clock = Clock::new();
        let stats = Stats::new();
        let tracer = Tracer::new(clock.clone());
        let metrics = Metrics::new();
        let phys = PhysMem::new(
            cfg.frames(),
            cfg.page_size as usize,
            clock.clone(),
            stats.clone(),
            cfg.costs.clone(),
        );
        let tlb = Tlb::new(cfg.tlb_entries);
        let mut m = Machine {
            cfg,
            clock,
            stats,
            tracer,
            metrics,
            phys,
            tlb,
            domains: Vec::new(),
            objects: Arena::new(),
            region_objects: std::collections::HashMap::new(),
            cow_private: std::collections::HashMap::new(),
            null_template: Vec::new(),
            fault: None,
        };
        let kernel = m.create_domain();
        debug_assert!(kernel.is_kernel());
        m
    }

    /// Convenience: a shared handle.
    pub fn new_ref(cfg: MachineConfig) -> MachineRef {
        Rc::new(RefCell::new(Machine::new(cfg)))
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The calibrated cost model.
    pub fn costs(&self) -> &CostModel {
        &self.cfg.costs
    }

    /// The shared clock handle.
    pub fn clock(&self) -> Clock {
        self.clock.clone()
    }

    /// The shared statistics handle.
    pub fn stats(&self) -> Stats {
        self.stats.clone()
    }

    /// The shared lifecycle tracer handle (disabled by default).
    pub fn tracer(&self) -> Tracer {
        self.tracer.clone()
    }

    /// The shared telemetry sampler handle (disabled by default).
    pub fn metrics(&self) -> Metrics {
        self.metrics.clone()
    }

    /// Borrowed statistics handle — the hot-path alternative to
    /// [`Machine::stats`], which clones an `Rc` per call.
    pub fn stats_ref(&self) -> &Stats {
        &self.stats
    }

    /// Borrowed tracer handle (see [`Machine::stats_ref`]).
    pub fn tracer_ref(&self) -> &Tracer {
        &self.tracer
    }

    /// Borrowed telemetry sampler handle (see [`Machine::stats_ref`]).
    pub fn metrics_ref(&self) -> &Metrics {
        &self.metrics
    }

    /// Current simulated time, without cloning the clock handle.
    pub fn now(&self) -> Ns {
        self.clock.now()
    }

    /// Page size shorthand.
    pub fn page_size(&self) -> u64 {
        self.cfg.page_size
    }

    /// Charges an arbitrary cost (used by higher layers for their own
    /// primitives, e.g. protocol processing).
    pub fn charge(&self, category: CostCategory, cost: Ns) {
        self.clock.charge(category, cost);
    }

    /// Sets the byte pattern used to stamp null pages for the fbuf-region
    /// read-fault policy (paper §3.2.4). The integrated-aggregate layer sets
    /// this to a serialized empty leaf node.
    pub fn set_null_template(&mut self, template: Vec<u8>) {
        self.null_template = template;
    }

    // ------------------------------------------------------------------
    // Domains
    // ------------------------------------------------------------------

    /// Creates a new protection domain.
    pub fn create_domain(&mut self) -> DomainId {
        let id = DomainId(self.domains.len() as u32);
        self.domains.push(Domain {
            space: AddressSpace::new(),
            alive: true,
        });
        id
    }

    /// True if `dom` exists and has not terminated.
    pub fn domain_alive(&self, dom: DomainId) -> bool {
        self.domains
            .get(dom.0 as usize)
            .map(|d| d.alive)
            .unwrap_or(false)
    }

    /// Number of domains ever created.
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }

    /// Terminates a domain: removes all its regions (dropping mapping and
    /// object references) and flushes its TLB entries. Higher layers
    /// (the fbuf system) perform their own cleanup around this call.
    pub fn terminate_domain(&mut self, dom: DomainId) -> VmResult<()> {
        let starts: Vec<Vpn> = self.domain(dom)?.space.regions().map(|r| r.start).collect();
        for start in starts {
            self.unmap_region(dom, start.base(self.cfg.page_size))?;
        }
        self.tlb.invalidate_domain(dom);
        self.domains[dom.0 as usize].alive = false;
        Ok(())
    }

    fn domain(&self, dom: DomainId) -> VmResult<&Domain> {
        self.domains
            .get(dom.0 as usize)
            .filter(|d| d.alive)
            .ok_or(Fault::BadDomain(dom))
    }

    fn domain_mut(&mut self, dom: DomainId) -> VmResult<&mut Domain> {
        self.domains
            .get_mut(dom.0 as usize)
            .filter(|d| d.alive)
            .ok_or(Fault::BadDomain(dom))
    }

    // ------------------------------------------------------------------
    // Regions (machine-independent map level)
    // ------------------------------------------------------------------

    /// Maps an anonymous, lazily zero-filled region (the buffer memory the
    /// copy/COW baselines use).
    pub fn map_anon_region(&mut self, dom: DomainId, va: u64, pages: u64) -> VmResult<()> {
        let vpn = self.vpn_of(va);
        self.domain_mut(dom)?.space.map_region(
            vpn,
            pages,
            Prot::ReadWrite,
            RegionPolicy::LazyZero,
        )?;
        let obj = self.alloc_object(pages);
        self.region_objects.insert((dom.0, vpn.0), obj);
        Ok(())
    }

    /// Maps the globally shared fbuf region into `dom` with the null-read
    /// policy: explicit mappings only, reads elsewhere inside the region
    /// return synthetic null pages, writes elsewhere fault.
    pub fn map_fbuf_region(&mut self, dom: DomainId) -> VmResult<()> {
        let base = self.cfg.fbuf_region_base;
        let pages = self.cfg.fbuf_region_size / self.cfg.page_size;
        let vpn = self.vpn_of(base);
        self.domain_mut(dom)?
            .space
            .map_region(vpn, pages, Prot::ReadWrite, RegionPolicy::NullRead)
    }

    /// Maps a region whose pages are only ever installed explicitly.
    pub fn map_explicit_region(
        &mut self,
        dom: DomainId,
        va: u64,
        pages: u64,
        max_prot: Prot,
    ) -> VmResult<()> {
        let vpn = self.vpn_of(va);
        self.domain_mut(dom)?
            .space
            .map_region(vpn, pages, max_prot, RegionPolicy::Explicit)
    }

    /// Removes the region starting at `va`, tearing down resident mappings
    /// (charged) and dropping object/private frame references.
    pub fn unmap_region(&mut self, dom: DomainId, va: u64) -> VmResult<()> {
        let vpn = self.vpn_of(va);
        let entry = self.domain_mut(dom)?.space.unmap_region(vpn)?;
        // Tear down resident pmap entries, batched per contiguous run.
        let resident = {
            let d = self.domain(dom)?;
            d.space.pmap.resident_in(entry.start, entry.pages)
        };
        self.unmap_resident_runs(dom, &resident)?;
        // Drop private COW frames.
        let keys: Vec<(u32, u64, u64)> = self
            .cow_private
            .keys()
            .filter(|(d, s, _)| *d == dom.0 && *s == entry.start.0)
            .copied()
            .collect();
        for k in keys {
            let frame = self.cow_private.remove(&k).expect("key just listed");
            self.phys.drop_ref(frame);
        }
        // Drop the object reference.
        if let Some(obj) = self.region_objects.remove(&(dom.0, entry.start.0)) {
            self.deref_object(obj);
        }
        Ok(())
    }

    fn alloc_object(&mut self, pages: u64) -> ObjectId {
        ObjectId(self.objects.insert(VmObject {
            frames: vec![None; pages as usize],
            refs: 1,
        }))
    }

    fn object(&self, id: ObjectId) -> &VmObject {
        self.objects.get(id.0).expect("live object")
    }

    fn object_mut(&mut self, id: ObjectId) -> &mut VmObject {
        self.objects.get_mut(id.0).expect("live object")
    }

    fn deref_object(&mut self, id: ObjectId) {
        let obj = self.object_mut(id);
        obj.refs -= 1;
        if obj.refs == 0 {
            let obj = self.objects.remove(id.0).expect("live object");
            for f in obj.frames.into_iter().flatten() {
                self.phys.drop_ref(f);
            }
        }
    }

    /// The object backing the anonymous region at `va` in `dom`, if any
    /// (diagnostics/tests; no cost).
    pub fn region_object(&self, dom: DomainId, va: u64) -> Option<ObjectId> {
        let vpn = Vpn::containing(va, self.cfg.page_size);
        let start = self.domain(dom).ok()?.space.region_at(vpn)?.start;
        self.region_objects.get(&(dom.0, start.0)).copied()
    }

    /// True while `id` resolves to a live object. A retired id stays false
    /// forever, even after its arena slot is reused.
    pub fn object_live(&self, id: ObjectId) -> bool {
        self.objects.contains(id.0)
    }

    /// Number of live anonymous objects (diagnostics/tests).
    pub fn live_objects(&self) -> usize {
        self.objects.len()
    }

    /// Shares the object backing the region at `src_va` in `src` with a new
    /// copy-on-write region at the same address in `dst`, Mach-style.
    ///
    /// Per the paper, Mach's lazy physical-page-table update strategy means
    /// the transfer itself only manipulates map entries and invalidates the
    /// sender's resident mappings; the receiver's mappings (and the sender's
    /// restored mappings) are established by page faults later — "two page
    /// faults for each transfer".
    pub fn cow_share_region(&mut self, src: DomainId, va: u64, dst: DomainId) -> VmResult<()> {
        let vpn = self.vpn_of(va);
        let (start, pages) = {
            let d = self.domain(src)?;
            let r = d.space.region_at(vpn).ok_or(Fault::NoSuchRegion { va })?;
            if r.policy != RegionPolicy::LazyZero {
                return Err(Fault::NoSuchRegion { va });
            }
            (r.start, r.pages)
        };
        let obj = *self
            .region_objects
            .get(&(src.0, start.0))
            .expect("anon region has object");
        // Create the receiver region first so an overlap fails before any
        // sender state has been disturbed.
        self.domain_mut(dst)?.space.map_region(
            start,
            pages,
            Prot::ReadWrite,
            RegionPolicy::LazyZero,
        )?;
        self.domain_mut(dst)?
            .space
            .region_at_mut(vpn)
            .expect("region just created")
            .cow = true;
        // If the sender has privatized (post-COW) pages, or its object is
        // already shared with an earlier receiver, the receiver must get a
        // snapshot *view* object capturing the sender's current contents —
        // sharing the base object would leak pre-COW data. Otherwise the
        // base object is shared directly (the common fast path).
        let has_private = self
            .cow_private
            .keys()
            .any(|(d, s, _)| *d == src.0 && *s == start.0);
        let base_shared = self.object(obj).refs > 1;
        let dst_obj = if has_private || base_shared {
            let view = self.alloc_object(pages);
            for idx in 0..pages {
                let frame = self
                    .cow_private
                    .get(&(src.0, start.0, idx))
                    .copied()
                    .or(self.object(obj).frames[idx as usize]);
                if let Some(f) = frame {
                    self.phys.add_ref(f);
                    self.object_mut(view).frames[idx as usize] = Some(f);
                }
            }
            view
        } else {
            self.object_mut(obj).refs += 1;
            obj
        };
        self.region_objects.insert((dst.0, start.0), dst_obj);
        // Mark the sender copy-on-write and lazily invalidate its resident
        // mappings (charged per resident page: unmap + TLB consistency).
        self.domain_mut(src)?
            .space
            .region_at_mut(vpn)
            .expect("region present")
            .cow = true;
        let resident = self.domain(src)?.space.pmap.resident_in(start, pages);
        self.unmap_resident_runs(src, &resident)?;
        Ok(())
    }

    /// Unmaps a sorted resident-page listing via [`Machine::unmap_range`],
    /// one call per contiguous VPN run (identical charges to the per-page
    /// loop, since every page in a run is resident).
    fn unmap_resident_runs(
        &mut self,
        dom: DomainId,
        resident: &[(Vpn, crate::space::PmapEntry)],
    ) -> VmResult<()> {
        let mut i = 0;
        while i < resident.len() {
            let run_start = resident[i].0;
            let mut len: u64 = 1;
            while i + (len as usize) < resident.len()
                && resident[i + len as usize].0 .0 == run_start.0 + len
            {
                len += 1;
            }
            self.unmap_range(dom, run_start.base(self.cfg.page_size), len)?;
            i += len as usize;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Page-level primitives (machine-dependent pmap level, charged)
    // ------------------------------------------------------------------

    /// Installs a mapping of `frame` at `va` with protection `prot`,
    /// charging the two-level page-table update. Adds a mapping reference
    /// to the frame. Replaces (and dereferences) any previous mapping.
    pub fn map_page(&mut self, dom: DomainId, va: u64, frame: FrameId, prot: Prot) -> VmResult<()> {
        let vpn = self.vpn_of(va);
        self.clock.charge(CostCategory::Vm, self.cfg.costs.pte_map);
        self.stats.inc_pte_updates();
        let old = {
            let d = self.domain_mut(dom)?;
            let old = d.space.pmap.remove(vpn);
            d.space.pmap.enter(vpn, frame, prot);
            old
        };
        self.phys.add_ref(frame);
        if let Some(old) = old {
            if self.tlb.invalidate(dom, vpn) {
                self.charge_tlb_flush();
            }
            self.phys.drop_ref(old.frame);
        }
        Ok(())
    }

    /// Removes the mapping at `va`, charging the page-table update and a
    /// TLB consistency flush if a translation was resident. Drops the
    /// mapping's frame reference. Returns the frame that was mapped.
    pub fn unmap_page(&mut self, dom: DomainId, va: u64) -> VmResult<Option<FrameId>> {
        let vpn = self.vpn_of(va);
        let old = self.domain_mut(dom)?.space.pmap.remove(vpn);
        let Some(old) = old else { return Ok(None) };
        self.clock
            .charge(CostCategory::Vm, self.cfg.costs.pte_unmap);
        self.stats.inc_pte_updates();
        // The consistency action (TLB probe + flush) is performed per
        // removed page whether or not a translation happens to be resident.
        self.tlb.invalidate(dom, vpn);
        self.charge_tlb_flush();
        let frame = old.frame;
        self.phys.drop_ref(frame);
        Ok(Some(frame))
    }

    /// Changes the protection of the resident page at `va`. Downgrades
    /// charge the (expensive) protect path plus a TLB consistency flush;
    /// upgrades charge the unprotect path and may leave a stale (more
    /// restrictive) TLB entry to be refreshed on next use.
    pub fn protect_page(&mut self, dom: DomainId, va: u64, prot: Prot) -> VmResult<Prot> {
        let vpn = self.vpn_of(va);
        let old = self
            .domain_mut(dom)?
            .space
            .pmap
            .protect(vpn, prot)
            .ok_or(Fault::Unmapped { domain: dom, va })?;
        self.stats.inc_pte_updates();
        if prot < old {
            self.clock
                .charge(CostCategory::Vm, self.cfg.costs.pte_protect);
            // Downgrades require the TLB consistency action per page.
            self.tlb.invalidate(dom, vpn);
            self.charge_tlb_flush();
        } else {
            self.clock
                .charge(CostCategory::Vm, self.cfg.costs.pte_unprotect);
        }
        Ok(old)
    }

    // ------------------------------------------------------------------
    // Batched range primitives
    //
    // Each is semantically identical to the per-page loop it replaces:
    // the simulated time charged and the counters incremented are
    // byte-for-byte the same totals (Ns addition is associative, so
    // `cost * n` equals n separate `cost` charges), and the pmap/TLB/frame
    // reference state afterwards is the same. What changes is the host
    // work — one charge per category instead of n, one TLB sweep instead
    // of n probes — and the trace: one ranged event instead of n (the
    // per-page primitives emit none; the ranged ops record page counts).
    //
    // The one deliberate divergence is on *error* paths: a per-page loop
    // charges page-by-page and can stop half-way through a bad range,
    // while a range op validates up front and charges nothing on failure.
    // No test pins error-path costs; the all-or-nothing behaviour is the
    // more defensible contract.
    // ------------------------------------------------------------------

    /// Installs `frames.len()` consecutive mappings starting at `va`, all
    /// with protection `prot` — the batched equivalent of that many
    /// [`Machine::map_page`] calls. Adds a mapping reference per frame;
    /// replaced mappings are dereferenced and, where resident, flushed
    /// (charged per flushed entry, exactly as `map_page` does).
    pub fn map_range(
        &mut self,
        dom: DomainId,
        va: u64,
        frames: &[FrameId],
        prot: Prot,
    ) -> VmResult<()> {
        let n = frames.len() as u64;
        if n == 0 {
            return Ok(());
        }
        let start = self.vpn_of(va);
        self.domain(dom)?;
        self.clock
            .charge(CostCategory::Vm, self.cfg.costs.pte_map * n);
        self.stats.add_pte_updates(n);
        let mut replaced: Vec<(Vpn, FrameId)> = Vec::new();
        {
            let d = self.domain_mut(dom)?;
            for (i, &frame) in frames.iter().enumerate() {
                let vpn = Vpn(start.0 + i as u64);
                if let Some(old) = d.space.pmap.remove(vpn) {
                    replaced.push((vpn, old.frame));
                }
                d.space.pmap.enter(vpn, frame, prot);
            }
        }
        for &frame in frames {
            self.phys.add_ref(frame);
        }
        let mut flushes = 0u64;
        for (vpn, old_frame) in replaced {
            if self.tlb.invalidate(dom, vpn) {
                flushes += 1;
            }
            self.phys.drop_ref(old_frame);
        }
        if flushes > 0 {
            self.charge_tlb_flushes(flushes);
        }
        self.tracer.range_op(EventKind::MapRange, dom.0, n);
        Ok(())
    }

    /// Removes up to `pages` consecutive mappings starting at `va` — the
    /// batched equivalent of that many [`Machine::unmap_page`] calls.
    /// Unmapped holes in the window cost nothing (as with `unmap_page`'s
    /// `Ok(None)` path); each removed page is charged a page-table update
    /// plus the unconditional TLB consistency flush. Returns the number
    /// of mappings removed.
    pub fn unmap_range(&mut self, dom: DomainId, va: u64, pages: u64) -> VmResult<u64> {
        if pages == 0 {
            self.domain(dom)?;
            return Ok(0);
        }
        let start = self.vpn_of(va);
        let mut dropped: Vec<FrameId> = Vec::new();
        {
            let d = self.domain_mut(dom)?;
            for i in 0..pages {
                if let Some(old) = d.space.pmap.remove(Vpn(start.0 + i)) {
                    dropped.push(old.frame);
                }
            }
        }
        let n = dropped.len() as u64;
        if n == 0 {
            return Ok(0);
        }
        self.clock
            .charge(CostCategory::Vm, self.cfg.costs.pte_unmap * n);
        self.stats.add_pte_updates(n);
        // One sweep over the TLB replaces n individual probes; the
        // consistency action is still charged once per removed page,
        // resident or not, exactly as the per-page loop does.
        self.tlb.invalidate_range(dom, start, pages);
        self.charge_tlb_flushes(n);
        for f in dropped {
            self.phys.drop_ref(f);
        }
        self.tracer.range_op(EventKind::UnmapRange, dom.0, n);
        Ok(n)
    }

    /// Changes the protection of `pages` consecutive resident pages
    /// starting at `va` — the batched equivalent of that many
    /// [`Machine::protect_page`] calls. Downgrades charge the protect
    /// path plus a per-page TLB flush; upgrades (and no-op re-protects)
    /// charge the unprotect path, per page, exactly as the loop would.
    /// Fails without charging if any page in the window is not resident.
    pub fn protect_range(
        &mut self,
        dom: DomainId,
        va: u64,
        pages: u64,
        prot: Prot,
    ) -> VmResult<()> {
        if pages == 0 {
            self.domain(dom)?;
            return Ok(());
        }
        let start = self.vpn_of(va);
        {
            let d = self.domain(dom)?;
            for i in 0..pages {
                if d.space.pmap.lookup(Vpn(start.0 + i)).is_none() {
                    return Err(Fault::Unmapped {
                        domain: dom,
                        va: va + i * self.cfg.page_size,
                    });
                }
            }
        }
        let mut downgrades: Vec<Vpn> = Vec::new();
        let mut upgrades = 0u64;
        {
            let d = self.domain_mut(dom)?;
            for i in 0..pages {
                let vpn = Vpn(start.0 + i);
                let old = d
                    .space
                    .pmap
                    .protect(vpn, prot)
                    .expect("validated resident above");
                if prot < old {
                    downgrades.push(vpn);
                } else {
                    upgrades += 1;
                }
            }
        }
        self.stats.add_pte_updates(pages);
        if upgrades > 0 {
            self.clock
                .charge(CostCategory::Vm, self.cfg.costs.pte_unprotect * upgrades);
        }
        let downs = downgrades.len() as u64;
        if downs > 0 {
            self.clock
                .charge(CostCategory::Vm, self.cfg.costs.pte_protect * downs);
            if downs == pages {
                self.tlb.invalidate_range(dom, start, pages);
            } else {
                for vpn in downgrades {
                    self.tlb.invalidate(dom, vpn);
                }
            }
            self.charge_tlb_flushes(downs);
        }
        self.tracer.range_op(EventKind::ProtectRange, dom.0, pages);
        Ok(())
    }

    /// The resident translation at `va`, if any (no cost; for assertions).
    pub fn mapping_of(&self, dom: DomainId, va: u64) -> Option<(FrameId, Prot)> {
        let vpn = Vpn::containing(va, self.cfg.page_size);
        self.domain(dom)
            .ok()?
            .space
            .pmap
            .lookup(vpn)
            .map(|e| (e.frame, e.prot))
    }

    fn charge_tlb_flush(&mut self) {
        self.clock
            .charge(CostCategory::Tlb, self.cfg.costs.tlb_flush_entry);
        self.stats.inc_tlb_flushes();
    }

    fn charge_tlb_flushes(&mut self, n: u64) {
        self.clock
            .charge(CostCategory::Tlb, self.cfg.costs.tlb_flush_entry * n);
        self.stats.add_tlb_flushes(n);
    }

    // ------------------------------------------------------------------
    // Physical frames (for layers that manage frames explicitly)
    // ------------------------------------------------------------------

    /// Arms a fault-injection plan: [`Machine::alloc_frame`] starts
    /// consulting it at [`FaultSite::FrameAlloc`].
    pub fn arm_faults(&mut self, plan: Rc<FaultPlan>) {
        self.fault = Some(plan);
    }

    /// Disarms fault injection.
    pub fn disarm_faults(&mut self) {
        self.fault = None;
    }

    /// The armed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&Rc<FaultPlan>> {
        self.fault.as_ref()
    }

    /// Allocates a frame; the caller owns one reference.
    pub fn alloc_frame(&mut self) -> VmResult<FrameId> {
        if let Some(plan) = &self.fault {
            if plan.fires(FaultSite::FrameAlloc) {
                return Err(Fault::OutOfMemory);
            }
        }
        self.phys.alloc()
    }

    /// Zero-fills a frame (charges the page-clear cost).
    pub fn zero_frame(&mut self, frame: FrameId) {
        self.phys.zero(frame);
    }

    /// Zero-fills a frame *without* charging the page-clear cost, for
    /// callers that model clearing time themselves (e.g. the remap
    /// facility's partial-clear accounting). The frame is still always
    /// functionally cleared — a partially dirty page would be a security
    /// bug, not a cost optimization.
    pub fn zero_frame_quietly(&mut self, frame: FrameId) {
        self.phys.fill_with_template(frame, &[]);
    }

    /// Drops a caller-held frame reference.
    pub fn release_frame(&mut self, frame: FrameId) {
        self.phys.drop_ref(frame);
    }

    /// Adds a caller-held frame reference.
    pub fn retain_frame(&mut self, frame: FrameId) {
        self.phys.add_ref(frame);
    }

    /// Number of free physical frames (for pageout-pressure tests).
    pub fn free_frames(&self) -> usize {
        self.phys.free_frames()
    }

    /// Direct frame write (device DMA path: the adapter writes physical
    /// memory without a domain mapping). No translation cost is charged;
    /// the driver charges DMA costs itself.
    pub fn dma_write(&mut self, frame: FrameId, offset: usize, bytes: &[u8]) {
        self.phys.write(frame, offset, bytes);
    }

    /// Direct frame read (device DMA path).
    pub fn dma_read(&self, frame: FrameId, offset: usize, out: &mut [u8]) {
        self.phys.read(frame, offset, out);
    }

    // ------------------------------------------------------------------
    // The access engine
    // ------------------------------------------------------------------

    /// Writes `bytes` at `va` in `dom`, translating (and faulting) per page.
    pub fn write(&mut self, dom: DomainId, va: u64, bytes: &[u8]) -> VmResult<()> {
        let page = self.cfg.page_size;
        let len = bytes.len() as u64;
        let mut pos: u64 = 0;
        while pos < len {
            let cur = va + pos;
            let off = cur % page;
            let n = (page - off).min(len - pos);
            let frame = self.resolve(dom, cur, Access::Write)?;
            // One cold-line stall per page per access operation.
            self.clock
                .charge(CostCategory::DataTouch, self.cfg.costs.cache_fill_word);
            self.phys.write(
                frame,
                off as usize,
                &bytes[pos as usize..(pos + n) as usize],
            );
            pos += n;
        }
        Ok(())
    }

    /// Reads `len` bytes at `va` in `dom`.
    pub fn read(&mut self, dom: DomainId, va: u64, len: u64) -> VmResult<Vec<u8>> {
        let mut out = vec![0u8; len as usize];
        self.read_into(dom, va, &mut out)?;
        Ok(out)
    }

    /// Reads into a caller-provided buffer.
    pub fn read_into(&mut self, dom: DomainId, va: u64, out: &mut [u8]) -> VmResult<()> {
        let page = self.cfg.page_size;
        let len = out.len() as u64;
        let mut pos: u64 = 0;
        while pos < len {
            let cur = va + pos;
            let off = cur % page;
            let n = (page - off).min(len - pos);
            let frame = self.resolve(dom, cur, Access::Read)?;
            self.clock
                .charge(CostCategory::DataTouch, self.cfg.costs.cache_fill_word);
            self.phys.read(
                frame,
                off as usize,
                &mut out[pos as usize..(pos + n) as usize],
            );
            pos += n;
        }
        Ok(())
    }

    /// Translates a single access, taking faults as needed. Returns the
    /// backing frame.
    pub fn resolve(&mut self, dom: DomainId, va: u64, access: Access) -> VmResult<FrameId> {
        self.domain(dom)?;
        let vpn = self.vpn_of(va);
        // 1. TLB.
        let mut stale_hit = false;
        if let Some((frame, prot)) = self.tlb.lookup(dom, vpn) {
            if prot.allows(access) {
                return Ok(frame);
            }
            // Stale entry (e.g. after an upgrade): fall through to the pmap.
            stale_hit = true;
        } else {
            self.clock
                .charge(CostCategory::Tlb, self.cfg.costs.tlb_refill);
            self.stats.inc_tlb_refills();
        }
        // 2. Pmap.
        if let Some(e) = self.domain(dom)?.space.pmap.lookup(vpn) {
            if e.prot.allows(access) {
                if stale_hit {
                    // Refreshing a stale entry takes the software refill
                    // path just like a miss.
                    self.clock
                        .charge(CostCategory::Tlb, self.cfg.costs.tlb_refill);
                    self.stats.inc_tlb_refills();
                }
                self.tlb.insert(dom, vpn, e.frame, e.prot);
                return Ok(e.frame);
            }
        }
        // 3. Fault.
        self.fault(dom, vpn, va, access)
    }

    fn fault(&mut self, dom: DomainId, vpn: Vpn, va: u64, access: Access) -> VmResult<FrameId> {
        let region = {
            let d = self.domain(dom)?;
            d.space.region_at(vpn).cloned()
        };
        let Some(region) = region else {
            self.stats.inc_access_violations();
            self.tracer.instant(EventKind::Fault, dom.0, None, None);
            return Err(Fault::Unmapped { domain: dom, va });
        };
        if !region.max_prot.allows(access) {
            self.stats.inc_access_violations();
            self.tracer.instant(EventKind::Fault, dom.0, None, None);
            return Err(Fault::AccessViolation {
                domain: dom,
                va,
                access,
            });
        }
        let idx = vpn.0 - region.start.0;
        match region.policy {
            RegionPolicy::LazyZero | RegionPolicy::FbufChunk => {
                let obj = *self
                    .region_objects
                    .get(&(dom.0, region.start.0))
                    .ok_or(Fault::Unmapped { domain: dom, va })?;
                if region.cow && access == Access::Write {
                    return self.cow_write_fault(dom, vpn, region.start, obj, idx);
                }
                // Soft fault: find or create the object page, then map it.
                // Faults in COW regions pay the extra object-chain lookup
                // (the paper's "lazy update strategy ... causes two page
                // faults for each transfer" — this is one of them).
                let mut trap = self.cfg.costs.fault_trap;
                if region.cow {
                    trap += self.cfg.costs.cow_fault;
                    self.stats.inc_cow_faults();
                }
                self.clock.charge(CostCategory::Vm, trap);
                self.stats.inc_soft_faults();
                self.tracer.instant(EventKind::Fault, dom.0, None, None);
                // A domain that privatized this page post-COW must keep
                // seeing its private copy, not the shared object page.
                let frame = match self.cow_private.get(&(dom.0, region.start.0, idx)).copied() {
                    Some(private) => private,
                    None => self.object_page(obj, idx)?,
                };
                let prot = if region.cow {
                    Prot::Read
                } else {
                    region.max_prot
                };
                self.map_page(dom, vpn.base(self.cfg.page_size), frame, prot)?;
                self.tlb.insert(dom, vpn, frame, prot);
                Ok(frame)
            }
            RegionPolicy::NullRead => {
                if access == Access::Write {
                    self.stats.inc_access_violations();
                    self.tracer.instant(EventKind::Fault, dom.0, None, None);
                    return Err(Fault::AccessViolation {
                        domain: dom,
                        va,
                        access,
                    });
                }
                // Map a synthetic null page so the read completes; "invalid
                // DAG references appear to the receiver as the absence of
                // data" (§3.2.4).
                self.clock
                    .charge(CostCategory::Vm, self.cfg.costs.fault_trap);
                self.stats.inc_wild_reads_nullified();
                self.tracer.instant(EventKind::Fault, dom.0, None, None);
                let frame = self.phys.alloc()?;
                let template = self.null_template.clone();
                self.phys.fill_with_template(frame, &template);
                self.map_page(dom, vpn.base(self.cfg.page_size), frame, Prot::Read)?;
                // The mapping holds the only reference.
                self.phys.drop_ref(frame);
                self.tlb.insert(dom, vpn, frame, Prot::Read);
                Ok(frame)
            }
            RegionPolicy::Explicit => {
                self.stats.inc_access_violations();
                self.tracer.instant(EventKind::Fault, dom.0, None, None);
                Err(Fault::AccessViolation {
                    domain: dom,
                    va,
                    access,
                })
            }
        }
    }

    /// Resolves a write fault in a COW region: if the backing object is
    /// shared, fork the page into a domain-private frame; otherwise write in
    /// place. Charges the Mach COW fault path.
    fn cow_write_fault(
        &mut self,
        dom: DomainId,
        vpn: Vpn,
        region_start: Vpn,
        obj: ObjectId,
        idx: u64,
    ) -> VmResult<FrameId> {
        self.clock.charge(
            CostCategory::Vm,
            self.cfg.costs.fault_trap + self.cfg.costs.cow_fault,
        );
        self.stats.inc_cow_faults();
        self.tracer.instant(EventKind::Fault, dom.0, None, None);
        let key = (dom.0, region_start.0, idx);
        let candidate = match self.cow_private.get(&key).copied() {
            Some(p) => p,
            None => self.object_page(obj, idx)?,
        };
        // The page may be written in place only when nothing else can see
        // it: the object is not shared with another region, and the frame
        // itself is not referenced by a snapshot view or a foreign mapping.
        let obj_shared = self.object(obj).refs > 1;
        let frame_shared = self.phys.refs(candidate) > 1;
        let frame = if !obj_shared && !frame_shared {
            candidate
        } else {
            let fresh = self.phys.fork(candidate)?;
            if let Some(old) = self.cow_private.remove(&key) {
                self.phys.drop_ref(old);
            }
            self.cow_private.insert(key, fresh);
            fresh
        };
        self.map_page(dom, vpn.base(self.cfg.page_size), frame, Prot::ReadWrite)?;
        self.tlb.insert(dom, vpn, frame, Prot::ReadWrite);
        Ok(frame)
    }

    /// Returns the frame backing object page `idx`, allocating and zeroing
    /// it on first use.
    fn object_page(&mut self, obj: ObjectId, idx: u64) -> VmResult<FrameId> {
        // Consult any private override first? Private frames are per-domain
        // and handled by the COW path; the object itself is shared.
        let existing = self.object(obj).frames[idx as usize];
        if let Some(f) = existing {
            return Ok(f);
        }
        let f = self.phys.alloc()?;
        self.phys.zero(f);
        self.object_mut(obj).frames[idx as usize] = Some(f);
        Ok(f)
    }

    /// Reads from a domain-private COW page if one exists (used by tests to
    /// verify fork isolation).
    pub fn has_private_cow_page(&self, dom: DomainId, region_va: u64, idx: u64) -> bool {
        let start = Vpn::containing(region_va, self.cfg.page_size);
        self.cow_private.contains_key(&(dom.0, start.0, idx))
    }

    /// Copies `len` bytes from (`src`, `src_va`) to (`dst`, `dst_va`)
    /// through the kernel, charging proportional copy cost. Both sides are
    /// translated (and may fault).
    pub fn copy_data(
        &mut self,
        src: DomainId,
        src_va: u64,
        dst: DomainId,
        dst_va: u64,
        len: u64,
    ) -> VmResult<()> {
        let data = self.read(src, src_va, len)?;
        // `read`/`write` charge touch costs; charge the bulk copy cost on
        // top, proportional to the bytes moved.
        let cost = Ns((self.cfg.costs.page_copy.as_ns() as u128 * len as u128
            / self.cfg.page_size as u128) as u64);
        self.clock.charge(CostCategory::DataMove, cost);
        for _ in 0..len.div_ceil(self.cfg.page_size).max(1) {
            self.stats.inc_pages_copied();
        }
        self.write(dst, dst_va, &data)
    }

    fn vpn_of(&self, va: u64) -> Vpn {
        Vpn::containing(va, self.cfg.page_size)
    }

    /// TLB hit/miss counters (diagnostics).
    pub fn tlb_hit_miss(&self) -> (u64, u64) {
        self.tlb.hit_miss()
    }

    /// Flushes the whole TLB (used by context-switch-heavy experiments).
    pub fn flush_tlb(&mut self) {
        self.tlb.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::new(MachineConfig::tiny())
    }

    fn machine_costed() -> Machine {
        let mut cfg = MachineConfig::decstation_5000_200();
        cfg.phys_mem = 4 << 20;
        Machine::new(cfg)
    }

    #[test]
    fn anon_region_lazy_zero_roundtrip() {
        let mut m = machine();
        let d = m.create_domain();
        m.map_anon_region(d, 0x10000, 4).unwrap();
        m.write(d, 0x10010, b"hello world").unwrap();
        assert_eq!(m.read(d, 0x10010, 11).unwrap(), b"hello world");
        // Untouched bytes of a lazily zeroed page read as zero.
        assert_eq!(m.read(d, 0x10000, 4).unwrap(), vec![0; 4]);
        assert_eq!(m.stats().soft_faults(), 1);
    }

    #[test]
    fn access_crossing_pages() {
        let mut m = machine();
        let d = m.create_domain();
        m.map_anon_region(d, 0x10000, 4).unwrap();
        let data: Vec<u8> = (0..9000).map(|i| (i % 251) as u8).collect();
        m.write(d, 0x10100, &data).unwrap();
        assert_eq!(m.read(d, 0x10100, 9000).unwrap(), data);
        // Three pages were faulted in.
        assert_eq!(m.stats().soft_faults(), 3);
    }

    #[test]
    fn unmapped_access_faults() {
        let mut m = machine();
        let d = m.create_domain();
        assert!(matches!(
            m.read(d, 0xdead000, 1),
            Err(Fault::Unmapped { .. })
        ));
        assert_eq!(m.stats().access_violations(), 1);
    }

    #[test]
    fn bad_domain_rejected() {
        let mut m = machine();
        assert!(matches!(
            m.read(DomainId(42), 0, 1),
            Err(Fault::BadDomain(_))
        ));
    }

    #[test]
    fn explicit_mapping_and_protection() {
        let mut m = machine();
        let d = m.create_domain();
        m.map_explicit_region(d, 0x20000, 8, Prot::ReadWrite)
            .unwrap();
        let f = m.alloc_frame().unwrap();
        m.zero_frame(f);
        m.map_page(d, 0x20000, f, Prot::ReadWrite).unwrap();
        m.write(d, 0x20000, b"data").unwrap();
        // Downgrade to read-only: writes fault, reads work.
        m.protect_page(d, 0x20000, Prot::Read).unwrap();
        assert!(matches!(
            m.write(d, 0x20000, b"x"),
            Err(Fault::AccessViolation { .. })
        ));
        assert_eq!(m.read(d, 0x20000, 4).unwrap(), b"data");
        // Upgrade back: writes work again.
        m.protect_page(d, 0x20000, Prot::ReadWrite).unwrap();
        m.write(d, 0x20000, b"XY").unwrap();
        assert_eq!(m.read(d, 0x20000, 4).unwrap(), b"XYta");
        m.release_frame(f);
    }

    #[test]
    fn downgrade_flushes_tlb_upgrade_does_not() {
        let mut m = machine_costed();
        let d = m.create_domain();
        m.map_explicit_region(d, 0x20000, 1, Prot::ReadWrite)
            .unwrap();
        let f = m.alloc_frame().unwrap();
        m.zero_frame(f);
        m.map_page(d, 0x20000, f, Prot::ReadWrite).unwrap();
        m.write(d, 0x20000, b"a").unwrap(); // loads the TLB
        let flushes0 = m.stats().tlb_flushes();
        m.protect_page(d, 0x20000, Prot::Read).unwrap();
        assert_eq!(m.stats().tlb_flushes(), flushes0 + 1);
        m.protect_page(d, 0x20000, Prot::ReadWrite).unwrap();
        assert_eq!(m.stats().tlb_flushes(), flushes0 + 1);
        m.release_frame(f);
    }

    #[test]
    fn stale_tlb_after_upgrade_recovers() {
        let mut m = machine();
        let d = m.create_domain();
        m.map_explicit_region(d, 0x20000, 1, Prot::ReadWrite)
            .unwrap();
        let f = m.alloc_frame().unwrap();
        m.zero_frame(f);
        m.map_page(d, 0x20000, f, Prot::Read).unwrap();
        m.read(d, 0x20000, 1).unwrap(); // TLB now caches Read
        m.protect_page(d, 0x20000, Prot::ReadWrite).unwrap(); // no flush
                                                              // The stale read-only TLB entry must not deny the now-legal write.
        m.write(d, 0x20000, b"ok").unwrap();
        m.release_frame(f);
    }

    #[test]
    fn shared_frame_two_domains() {
        let mut m = machine();
        let d1 = m.create_domain();
        let d2 = m.create_domain();
        m.map_explicit_region(d1, 0x20000, 1, Prot::ReadWrite)
            .unwrap();
        m.map_explicit_region(d2, 0x20000, 1, Prot::Read).unwrap();
        let f = m.alloc_frame().unwrap();
        m.zero_frame(f);
        m.map_page(d1, 0x20000, f, Prot::ReadWrite).unwrap();
        m.map_page(d2, 0x20000, f, Prot::Read).unwrap();
        m.write(d1, 0x20000, b"shared").unwrap();
        assert_eq!(m.read(d2, 0x20000, 6).unwrap(), b"shared");
        // Receiver cannot write.
        assert!(matches!(
            m.write(d2, 0x20000, b"x"),
            Err(Fault::AccessViolation { .. })
        ));
        m.release_frame(f);
    }

    #[test]
    fn unmap_page_returns_frame_and_flushes() {
        let mut m = machine_costed();
        let d = m.create_domain();
        m.map_explicit_region(d, 0x20000, 1, Prot::ReadWrite)
            .unwrap();
        let f = m.alloc_frame().unwrap();
        m.map_page(d, 0x20000, f, Prot::ReadWrite).unwrap();
        m.write(d, 0x20000, b"x").unwrap();
        let flushes0 = m.stats().tlb_flushes();
        assert_eq!(m.unmap_page(d, 0x20000).unwrap(), Some(f));
        assert_eq!(m.stats().tlb_flushes(), flushes0 + 1);
        assert_eq!(m.unmap_page(d, 0x20000).unwrap(), None);
        m.release_frame(f);
    }

    #[test]
    fn fbuf_region_null_read_policy() {
        let mut m = machine();
        m.set_null_template(vec![0xEE]);
        let d = m.create_domain();
        m.map_fbuf_region(d).unwrap();
        let base = m.config().fbuf_region_base;
        // A read of an unmapped fbuf-region page completes with the null
        // template rather than faulting.
        let data = m.read(d, base + 0x2000, 4).unwrap();
        assert_eq!(data, vec![0xEE; 4]);
        assert_eq!(m.stats().wild_reads_nullified(), 1);
        // Writes still fault.
        assert!(matches!(
            m.write(d, base + 0x3000, b"x"),
            Err(Fault::AccessViolation { .. })
        ));
    }

    #[test]
    fn null_page_replaced_by_real_mapping() {
        let mut m = machine();
        m.set_null_template(vec![0xEE]);
        let d = m.create_domain();
        m.map_fbuf_region(d).unwrap();
        let base = m.config().fbuf_region_base;
        let free0 = m.free_frames();
        assert_eq!(m.read(d, base, 1).unwrap(), vec![0xEE]);
        assert_eq!(m.free_frames(), free0 - 1);
        // Installing a real mapping over the null page releases the null
        // frame (its only reference was the mapping).
        let f = m.alloc_frame().unwrap();
        m.zero_frame(f);
        m.map_page(d, base, f, Prot::Read).unwrap();
        assert_eq!(m.read(d, base, 1).unwrap(), vec![0]);
        assert_eq!(m.free_frames(), free0 - 1); // null freed, f in use
        m.release_frame(f);
    }

    #[test]
    fn cow_transfer_shares_then_forks() {
        let mut m = machine();
        let a = m.create_domain();
        let b = m.create_domain();
        m.map_anon_region(a, 0x40000, 2).unwrap();
        m.write(a, 0x40000, b"original").unwrap();
        m.cow_share_region(a, 0x40000, b).unwrap();
        // Receiver sees the data (read fault installs a shared mapping).
        assert_eq!(m.read(b, 0x40000, 8).unwrap(), b"original");
        // Receiver writes: forks a private page; sender's view unchanged.
        // Two COW faults so far: the receiver's read fault through the COW
        // object plus its write (fork) fault.
        m.write(b, 0x40000, b"MUTATED!").unwrap();
        assert_eq!(m.stats().cow_faults(), 2);
        assert!(m.has_private_cow_page(b, 0x40000, 0));
        assert_eq!(m.read(b, 0x40000, 8).unwrap(), b"MUTATED!");
        assert_eq!(m.read(a, 0x40000, 8).unwrap(), b"original");
    }

    #[test]
    fn cow_sender_write_after_transfer_forks() {
        let mut m = machine();
        let a = m.create_domain();
        let b = m.create_domain();
        m.map_anon_region(a, 0x40000, 1).unwrap();
        m.write(a, 0x40000, b"v1").unwrap();
        m.cow_share_region(a, 0x40000, b).unwrap();
        m.write(a, 0x40000, b"v2").unwrap();
        // Copy semantics: the receiver still sees v1.
        assert_eq!(m.read(b, 0x40000, 2).unwrap(), b"v1");
        assert_eq!(m.read(a, 0x40000, 2).unwrap(), b"v2");
    }

    #[test]
    fn cow_unshared_writes_in_place() {
        let mut m = machine();
        let a = m.create_domain();
        let b = m.create_domain();
        m.map_anon_region(a, 0x40000, 1).unwrap();
        m.write(a, 0x40000, b"v1").unwrap();
        m.cow_share_region(a, 0x40000, b).unwrap();
        // Receiver unmaps its region: object no longer shared.
        m.unmap_region(b, 0x40000).unwrap();
        let copies0 = m.stats().pages_copied();
        m.write(a, 0x40000, b"v2").unwrap();
        // No fork was needed.
        assert_eq!(m.stats().pages_copied(), copies0);
        assert_eq!(m.read(a, 0x40000, 2).unwrap(), b"v2");
    }

    #[test]
    fn copy_data_between_domains() {
        let mut m = machine();
        let a = m.create_domain();
        let b = m.create_domain();
        m.map_anon_region(a, 0x40000, 2).unwrap();
        m.map_anon_region(b, 0x80000, 2).unwrap();
        let payload: Vec<u8> = (0..5000u32).map(|i| (i % 256) as u8).collect();
        m.write(a, 0x40000, &payload).unwrap();
        m.copy_data(a, 0x40000, b, 0x80000, 5000).unwrap();
        assert_eq!(m.read(b, 0x80000, 5000).unwrap(), payload);
    }

    #[test]
    fn terminate_domain_releases_memory() {
        let mut m = machine();
        let d = m.create_domain();
        m.map_anon_region(d, 0x40000, 8).unwrap();
        let free0 = m.free_frames();
        m.write(d, 0x40000, &vec![1u8; 8 * 4096]).unwrap();
        assert_eq!(m.free_frames(), free0 - 8);
        m.terminate_domain(d).unwrap();
        assert_eq!(m.free_frames(), free0);
        assert!(!m.domain_alive(d));
        assert!(matches!(m.read(d, 0x40000, 1), Err(Fault::BadDomain(_))));
    }

    #[test]
    fn frame_shared_across_termination_survives() {
        // A frame mapped in two domains survives the death of one.
        let mut m = machine();
        let d1 = m.create_domain();
        let d2 = m.create_domain();
        m.map_explicit_region(d1, 0x20000, 1, Prot::ReadWrite)
            .unwrap();
        m.map_explicit_region(d2, 0x20000, 1, Prot::Read).unwrap();
        let f = m.alloc_frame().unwrap();
        m.zero_frame(f);
        m.map_page(d1, 0x20000, f, Prot::ReadWrite).unwrap();
        m.map_page(d2, 0x20000, f, Prot::Read).unwrap();
        m.write(d1, 0x20000, b"persist").unwrap();
        m.release_frame(f); // now held only by the two mappings
        m.terminate_domain(d1).unwrap();
        assert_eq!(m.read(d2, 0x20000, 7).unwrap(), b"persist");
        m.terminate_domain(d2).unwrap();
    }

    #[test]
    fn soft_fault_costs_are_charged() {
        let mut m = machine_costed();
        let d = m.create_domain();
        m.map_anon_region(d, 0x40000, 1).unwrap();
        let t0 = m.clock().now();
        m.write(d, 0x40000, b"x").unwrap();
        let dt = m.clock().now() - t0;
        let c = m.costs();
        // fault trap + phys alloc + zero + pte map + tlb refill + touch.
        let expected = c.fault_trap
            + c.phys_alloc
            + c.page_zero
            + c.pte_map
            + c.tlb_refill
            + c.cache_fill_word;
        assert_eq!(dt, expected, "got {dt}, expected {expected}");
    }

    #[test]
    fn range_ops_charge_identically_to_per_page_loops() {
        // The same mixed workload driven through the per-page primitives
        // and the batched range ops must land on the same simulated time
        // and the same counter totals, byte for byte.
        let run = |batched: bool| -> (Ns, fbuf_sim::StatsSnapshot) {
            let mut m = machine_costed();
            let d = m.create_domain();
            m.map_explicit_region(d, 0x20000, 8, Prot::ReadWrite)
                .unwrap();
            let frames: Vec<FrameId> = (0..4).map(|_| m.alloc_frame().unwrap()).collect();
            let page = m.page_size();
            // Fresh map, touch (loads the TLB), downgrade, upgrade,
            // replacement map, then unmap.
            if batched {
                m.map_range(d, 0x20000, &frames, Prot::ReadWrite).unwrap();
                for i in 0..4 {
                    m.write(d, 0x20000 + i * page, b"x").unwrap();
                }
                m.protect_range(d, 0x20000, 4, Prot::Read).unwrap();
                m.protect_range(d, 0x20000, 4, Prot::ReadWrite).unwrap();
                let repl: Vec<FrameId> = frames.iter().rev().copied().collect();
                m.map_range(d, 0x20000, &repl, Prot::ReadWrite).unwrap();
                assert_eq!(m.unmap_range(d, 0x20000, 8).unwrap(), 4);
            } else {
                for (i, &f) in frames.iter().enumerate() {
                    m.map_page(d, 0x20000 + i as u64 * page, f, Prot::ReadWrite)
                        .unwrap();
                }
                for i in 0..4 {
                    m.write(d, 0x20000 + i * page, b"x").unwrap();
                }
                for i in 0..4 {
                    m.protect_page(d, 0x20000 + i * page, Prot::Read).unwrap();
                }
                for i in 0..4 {
                    m.protect_page(d, 0x20000 + i * page, Prot::ReadWrite)
                        .unwrap();
                }
                for (i, &f) in frames.iter().rev().enumerate() {
                    m.map_page(d, 0x20000 + i as u64 * page, f, Prot::ReadWrite)
                        .unwrap();
                }
                for i in 0..8 {
                    m.unmap_page(d, 0x20000 + i * page).unwrap();
                }
            }
            for f in frames {
                m.release_frame(f);
            }
            (m.clock().now(), m.stats().snapshot())
        };
        let (t_loop, s_loop) = run(false);
        let (t_range, s_range) = run(true);
        assert_eq!(t_range, t_loop);
        assert_eq!(s_range, s_loop);
        assert!(s_loop.pte_updates > 0 && s_loop.tlb_flushes > 0);
    }

    #[test]
    fn unmap_range_skips_holes_for_free() {
        let mut m = machine_costed();
        let d = m.create_domain();
        m.map_explicit_region(d, 0x20000, 8, Prot::ReadWrite)
            .unwrap();
        let f = m.alloc_frame().unwrap();
        let page = m.page_size();
        // Only page 2 of the 8-page window is mapped.
        m.map_page(d, 0x20000 + 2 * page, f, Prot::ReadWrite).unwrap();
        let t0 = m.clock().now();
        let pte0 = m.stats().pte_updates();
        assert_eq!(m.unmap_range(d, 0x20000, 8).unwrap(), 1);
        // Exactly one page's unmap + flush was charged; the holes cost 0.
        assert_eq!(
            m.clock().now() - t0,
            m.costs().pte_unmap + m.costs().tlb_flush_entry
        );
        assert_eq!(m.stats().pte_updates(), pte0 + 1);
        // A fully-empty window charges nothing and removes nothing.
        let t1 = m.clock().now();
        assert_eq!(m.unmap_range(d, 0x20000, 8).unwrap(), 0);
        assert_eq!(m.clock().now(), t1);
        m.release_frame(f);
    }

    #[test]
    fn protect_range_validates_whole_window_before_charging() {
        let mut m = machine_costed();
        let d = m.create_domain();
        m.map_explicit_region(d, 0x20000, 4, Prot::ReadWrite)
            .unwrap();
        let f = m.alloc_frame().unwrap();
        m.map_page(d, 0x20000, f, Prot::ReadWrite).unwrap();
        let t0 = m.clock().now();
        let s0 = m.stats().snapshot();
        // Page 1 of the window is not resident: the whole op fails with no
        // charge and no protection change.
        assert!(matches!(
            m.protect_range(d, 0x20000, 2, Prot::Read),
            Err(Fault::Unmapped { .. })
        ));
        assert_eq!(m.clock().now(), t0);
        assert_eq!(m.stats().snapshot(), s0);
        assert_eq!(m.mapping_of(d, 0x20000).unwrap().1, Prot::ReadWrite);
        m.release_frame(f);
    }

    #[test]
    fn range_ops_emit_one_ranged_trace_event() {
        let mut m = machine_costed();
        m.tracer().set_enabled(true);
        let d = m.create_domain();
        m.map_explicit_region(d, 0x20000, 4, Prot::ReadWrite)
            .unwrap();
        let frames: Vec<FrameId> = (0..4).map(|_| m.alloc_frame().unwrap()).collect();
        m.map_range(d, 0x20000, &frames, Prot::ReadWrite).unwrap();
        m.protect_range(d, 0x20000, 4, Prot::Read).unwrap();
        m.unmap_range(d, 0x20000, 4).unwrap();
        let tracer = m.tracer();
        assert_eq!(tracer.count_of(EventKind::MapRange), 1);
        assert_eq!(tracer.count_of(EventKind::ProtectRange), 1);
        assert_eq!(tracer.count_of(EventKind::UnmapRange), 1);
        let ev: Vec<_> = tracer.events();
        let map_ev = ev
            .iter()
            .find(|e| e.kind == EventKind::MapRange)
            .expect("map event");
        assert_eq!(map_ev.pages, Some(4));
        for f in frames {
            m.release_frame(f);
        }
    }

    #[test]
    fn stale_object_id_never_resolves_after_slot_reuse() {
        let mut m = machine();
        let d = m.create_domain();
        m.map_anon_region(d, 0x40000, 2).unwrap();
        let old = m.region_object(d, 0x40000).expect("object attached");
        assert!(m.object_live(old));
        let live0 = m.live_objects();
        m.unmap_region(d, 0x40000).unwrap();
        assert!(!m.object_live(old));
        assert_eq!(m.live_objects(), live0 - 1);
        // A new region recycles the arena slot; the retired id still
        // refuses to resolve (generation mismatch) and the new region gets
        // a distinct id.
        m.map_anon_region(d, 0x40000, 2).unwrap();
        let new = m.region_object(d, 0x40000).expect("object attached");
        assert!(!m.object_live(old));
        assert!(m.object_live(new));
        assert_ne!(old, new);
    }

    #[test]
    fn tlb_hit_is_free() {
        let mut m = machine_costed();
        let d = m.create_domain();
        m.map_anon_region(d, 0x40000, 1).unwrap();
        m.write(d, 0x40000, b"x").unwrap();
        let t0 = m.clock().now();
        m.write(d, 0x40000, b"y").unwrap();
        let dt = m.clock().now() - t0;
        // Only the cache-fill touch is charged on a warm TLB.
        assert_eq!(dt, m.costs().cache_fill_word);
    }
}
