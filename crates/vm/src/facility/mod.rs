//! Baseline cross-domain transfer facilities.
//!
//! The paper's Table 1 and Figure 3 compare fbufs against the transfer
//! mechanisms of contemporary systems. This module implements those
//! baselines over the same simulated substrate:
//!
//! * [`CopyFacility`] — kernel-mediated data copy (what Mach uses for
//!   messages under 2 KB);
//! * [`CowFacility`] — Mach-style lazy copy-on-write (what Mach uses above
//!   2 KB), exhibiting the paper's "two page faults for each transfer";
//! * [`RemapFacility`] — a DASH-style page-remapping facility with move
//!   semantics, supporting both the ping-pong measurement (22 µs/page) and
//!   the streaming measurement including allocate/clear/deallocate costs
//!   (42–99 µs/page depending on the cleared fraction);
//! * [`MachNative`] — the size-switching composite (copy < 2 KB, COW
//!   otherwise) that the paper plots as "Mach" in Figure 3.

mod copy;
mod cow;
mod remap;

pub use copy::CopyFacility;
pub use cow::CowFacility;
pub use remap::RemapFacility;

use crate::machine::Machine;
use crate::types::{DomainId, VmResult};

/// A cross-domain buffer transfer mechanism with copy semantics at the
/// interface level (the sender may keep using its buffer after `transfer`;
/// the receiver sees a stable snapshot).
///
/// The one exception is [`RemapFacility`], which has *move* semantics — the
/// paper's §2.2.1 point that "page remapping has move rather than copy
/// semantics, which limits its utility".
pub trait TransferMechanism {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Allocates a buffer of `len` bytes in `dom`; returns its virtual
    /// address.
    fn alloc(&mut self, m: &mut Machine, dom: DomainId, len: u64) -> VmResult<u64>;

    /// Transfers the buffer at `va` to `dst`; returns the receiver-side
    /// virtual address.
    fn transfer(
        &mut self,
        m: &mut Machine,
        src: DomainId,
        va: u64,
        len: u64,
        dst: DomainId,
    ) -> VmResult<u64>;

    /// Releases `dom`'s reference to the buffer at `va`.
    fn free(&mut self, m: &mut Machine, dom: DomainId, va: u64, len: u64) -> VmResult<()>;
}

/// Base of the per-domain private buffer windows used by the copy and COW
/// facilities. Each domain gets a disjoint 64 MB window so that COW's
/// same-address receive mapping can never collide with the receiver's own
/// allocations.
pub(crate) const BUF_WINDOW_BASE: u64 = 0x1000_0000;
pub(crate) const BUF_WINDOW_SIZE: u64 = 64 << 20;

pub(crate) fn window_base(dom: DomainId) -> u64 {
    BUF_WINDOW_BASE + dom.0 as u64 * BUF_WINDOW_SIZE
}

/// The composite "Mach native" mechanism of Figure 3: plain copy for small
/// messages, COW for messages of 2 KB and above.
pub struct MachNative {
    copy: CopyFacility,
    cow: CowFacility,
    /// Switch-over size in bytes (Mach: 2 KB).
    pub threshold: u64,
}

impl MachNative {
    /// Creates the composite with the 2 KB threshold. The two
    /// sub-facilities carve from disjoint halves of each domain's buffer
    /// window.
    pub fn new() -> MachNative {
        MachNative {
            copy: CopyFacility::new(),
            cow: CowFacility::with_offset(BUF_WINDOW_SIZE / 2),
            threshold: 2048,
        }
    }
}

impl Default for MachNative {
    fn default() -> MachNative {
        MachNative::new()
    }
}

impl TransferMechanism for MachNative {
    fn name(&self) -> &'static str {
        "mach-native"
    }

    fn alloc(&mut self, m: &mut Machine, dom: DomainId, len: u64) -> VmResult<u64> {
        if len < self.threshold {
            self.copy.alloc(m, dom, len)
        } else {
            self.cow.alloc(m, dom, len)
        }
    }

    fn transfer(
        &mut self,
        m: &mut Machine,
        src: DomainId,
        va: u64,
        len: u64,
        dst: DomainId,
    ) -> VmResult<u64> {
        if len < self.threshold {
            self.copy.transfer(m, src, va, len, dst)
        } else {
            self.cow.transfer(m, src, va, len, dst)
        }
    }

    fn free(&mut self, m: &mut Machine, dom: DomainId, va: u64, len: u64) -> VmResult<()> {
        if len < self.threshold {
            self.copy.free(m, dom, va, len)
        } else {
            self.cow.free(m, dom, va, len)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbuf_sim::MachineConfig;

    fn setup() -> (Machine, DomainId, DomainId) {
        let mut m = Machine::new(MachineConfig::tiny());
        let a = m.create_domain();
        let b = m.create_domain();
        (m, a, b)
    }

    /// Every mechanism must deliver the sender's bytes to the receiver.
    fn roundtrip(mech: &mut dyn TransferMechanism, len: u64) {
        let (mut m, a, b) = setup();
        let payload: Vec<u8> = (0..len).map(|i| (i % 241) as u8).collect();
        let va = mech.alloc(&mut m, a, len).unwrap();
        m.write(a, va, &payload).unwrap();
        let rva = mech.transfer(&mut m, a, va, len, b).unwrap();
        assert_eq!(m.read(b, rva, len).unwrap(), payload, "{}", mech.name());
        mech.free(&mut m, b, rva, len).unwrap();
    }

    #[test]
    fn all_mechanisms_roundtrip() {
        roundtrip(&mut CopyFacility::new(), 5000);
        roundtrip(&mut CowFacility::new(), 5000);
        roundtrip(&mut RemapFacility::new(0.0), 5000);
        roundtrip(&mut MachNative::new(), 1000);
        roundtrip(&mut MachNative::new(), 5000);
    }

    #[test]
    fn mach_native_switches_at_threshold() {
        // Below 2 KB data is physically copied; at or above it is not
        // (COW shares frames until someone writes).
        let (mut m, a, b) = setup();
        let mut mech = MachNative::new();

        let va = mech.alloc(&mut m, a, 1024).unwrap();
        m.write(a, va, &[1u8; 1024]).unwrap();
        let copies0 = m.stats().pages_copied();
        mech.transfer(&mut m, a, va, 1024, b).unwrap();
        assert!(m.stats().pages_copied() > copies0, "small goes via copy");

        let va = mech.alloc(&mut m, a, 8192).unwrap();
        m.write(a, va, &[2u8; 8192]).unwrap();
        let copies1 = m.stats().pages_copied();
        let rva = mech.transfer(&mut m, a, va, 8192, b).unwrap();
        m.read(b, rva, 8192).unwrap();
        assert_eq!(m.stats().pages_copied(), copies1, "large goes via COW");
    }
}
