//! Kernel-mediated copy transfer (the pre-fbuf default path).

use std::collections::HashMap;

use crate::facility::{window_base, TransferMechanism, BUF_WINDOW_SIZE};
use crate::machine::Machine;
use crate::types::{DomainId, Fault, VmResult};
use fbuf_sim::EventKind;

/// Transfers data by physically copying it between per-domain private
/// buffers through the kernel.
///
/// This is the mechanism whose cost the whole paper is about avoiding: "as
/// network bandwidth approaches memory bandwidth, copying data from one
/// domain to another simply cannot keep up with improved network
/// performance."
pub struct CopyFacility {
    /// Offset of this facility's sub-window within each domain window (so
    /// two facilities can coexist, as in [`crate::facility::MachNative`]).
    offset: u64,
    /// Per-domain bump pointer within the domain's buffer window.
    bump: HashMap<u32, u64>,
    /// Live buffers: (domain, va) → pages.
    live: HashMap<(u32, u64), u64>,
    /// Freed buffers kept mapped for reuse, keyed by (domain, pages) — a
    /// realistic sender/receiver reuses its buffers rather than paying
    /// allocation and zero-fill per message.
    cache: HashMap<(u32, u64), Vec<u64>>,
}

impl CopyFacility {
    /// Creates the facility.
    pub fn new() -> CopyFacility {
        CopyFacility::with_offset(0)
    }

    /// Creates the facility carving from `offset` within each domain
    /// window.
    pub fn with_offset(offset: u64) -> CopyFacility {
        assert!(offset < BUF_WINDOW_SIZE);
        CopyFacility {
            offset,
            bump: HashMap::new(),
            live: HashMap::new(),
            cache: HashMap::new(),
        }
    }

    fn carve(&mut self, m: &Machine, dom: DomainId, len: u64) -> VmResult<u64> {
        let pages = m.config().pages_for(len).max(1);
        let bump = self.bump.entry(dom.0).or_insert(0);
        let va = window_base(dom) + self.offset + *bump;
        // One guard page between buffers catches overruns in tests.
        let need = (pages + 1) * m.page_size();
        if self.offset + *bump + need > BUF_WINDOW_SIZE {
            return Err(Fault::OutOfMemory);
        }
        *bump += need;
        Ok(va)
    }
}

impl Default for CopyFacility {
    fn default() -> CopyFacility {
        CopyFacility::new()
    }
}

impl TransferMechanism for CopyFacility {
    fn name(&self) -> &'static str {
        "copy"
    }

    fn alloc(&mut self, m: &mut Machine, dom: DomainId, len: u64) -> VmResult<u64> {
        let t0 = m.now();
        let pages = m.config().pages_for(len).max(1);
        if let Some(va) = self.cache.get_mut(&(dom.0, pages)).and_then(|v| v.pop()) {
            self.live.insert((dom.0, va), pages);
            m.tracer_ref().span(t0, EventKind::Alloc, dom.0, None, None);
            return Ok(va);
        }
        let va = self.carve(m, dom, len)?;
        m.map_anon_region(dom, va, pages)?;
        self.live.insert((dom.0, va), pages);
        m.tracer_ref().span(t0, EventKind::Alloc, dom.0, None, None);
        Ok(va)
    }

    fn transfer(
        &mut self,
        m: &mut Machine,
        src: DomainId,
        va: u64,
        len: u64,
        dst: DomainId,
    ) -> VmResult<u64> {
        let t0 = m.now();
        let dst_va = self.alloc(m, dst, len)?;
        m.copy_data(src, va, dst, dst_va, len)?;
        m.tracer_ref()
            .span_peer(t0, EventKind::Transfer, src.0, Some(dst.0), None, None);
        Ok(dst_va)
    }

    fn free(&mut self, m: &mut Machine, dom: DomainId, va: u64, _len: u64) -> VmResult<()> {
        let pages = self
            .live
            .remove(&(dom.0, va))
            .ok_or(Fault::NoSuchRegion { va })?;
        self.cache.entry((dom.0, pages)).or_default().push(va);
        m.tracer_ref().instant(EventKind::Free, dom.0, None, None);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbuf_sim::MachineConfig;

    #[test]
    fn copy_charges_page_copy_cost() {
        let mut m = Machine::new(MachineConfig::decstation_5000_200());
        let a = m.create_domain();
        let b = m.create_domain();
        let mut f = CopyFacility::new();
        let va = f.alloc(&mut m, a, 4096).unwrap();
        m.write(a, va, &[9u8; 4096]).unwrap();
        let t0 = m.now();
        f.transfer(&mut m, a, va, 4096, b).unwrap();
        let dt = m.now() - t0;
        // At least one full page copy must have been charged.
        assert!(dt >= m.costs().page_copy, "copy too cheap: {dt}");
    }

    #[test]
    fn sender_buffer_unaffected_by_transfer() {
        let mut m = Machine::new(MachineConfig::tiny());
        let a = m.create_domain();
        let b = m.create_domain();
        let mut f = CopyFacility::new();
        let va = f.alloc(&mut m, a, 100).unwrap();
        m.write(a, va, b"before").unwrap();
        let rva = f.transfer(&mut m, a, va, 100, b).unwrap();
        // True copy semantics: mutating either side is invisible to the
        // other.
        m.write(a, va, b"AFTER!").unwrap();
        assert_eq!(m.read(b, rva, 6).unwrap(), b"before");
        f.free(&mut m, b, rva, 100).unwrap();
        assert_eq!(m.read(a, va, 6).unwrap(), b"AFTER!");
    }

    #[test]
    fn double_free_is_an_error() {
        let mut m = Machine::new(MachineConfig::tiny());
        let a = m.create_domain();
        let mut f = CopyFacility::new();
        let va = f.alloc(&mut m, a, 64).unwrap();
        f.free(&mut m, a, va, 64).unwrap();
        assert!(f.free(&mut m, a, va, 64).is_err());
    }

    #[test]
    fn window_exhaustion_reported() {
        let mut m = Machine::new(MachineConfig::tiny());
        let a = m.create_domain();
        let mut f = CopyFacility::new();
        // Each alloc consumes len+guard; a huge request must fail cleanly.
        assert!(matches!(
            f.alloc(&mut m, a, BUF_WINDOW_SIZE),
            Err(Fault::OutOfMemory)
        ));
    }
}
