//! A DASH-style page-remapping transfer facility (move semantics).
//!
//! Reimplements the facility the paper re-measures in §2.2.1: buffers live
//! in a globally reserved window mapped at the same virtual address in every
//! domain; a transfer unmaps the pages from the sender and maps them into
//! the receiver. Unlike fbuf pmap updates, each remap operation goes
//! through *both* levels of the VM system, which is what makes it cost
//! `remap_map`/`remap_unmap` rather than the cheaper `pte_map`/`pte_unmap`.
//!
//! Two measurement modes matter:
//!
//! * **ping-pong** (`transfer` back and forth over a live buffer): the
//!   Tzou/Anderson methodology, ~22 µs/page on the DecStation;
//! * **streaming** (`alloc` → `transfer` → `free` per message, with a
//!   configurable fraction of each page cleared for security): the paper's
//!   corrected methodology, 42–99 µs/page.

use std::collections::HashMap;

use crate::facility::TransferMechanism;
use crate::machine::Machine;
use crate::phys::FrameId;
use crate::types::{DomainId, Fault, Prot, VmResult};
use fbuf_sim::{CostCategory, EventKind, Ns};

/// Base of the globally shared remap window (distinct from the fbuf
/// region).
pub const REMAP_WINDOW_BASE: u64 = 0x8000_0000;
/// Size of the remap window.
pub const REMAP_WINDOW_SIZE: u64 = 64 << 20;

struct RemapBuf {
    frames: Vec<FrameId>,
    holder: DomainId,
}

/// The remapping facility.
pub struct RemapFacility {
    /// Fraction (0.0–1.0) of each freshly allocated page that must be
    /// cleared for security. The paper's 42 µs/page corresponds to 0.0 and
    /// 99 µs/page to 1.0.
    pub clear_fraction: f64,
    bump: u64,
    bufs: HashMap<u64, RemapBuf>,
    prepared: Vec<DomainId>,
}

impl RemapFacility {
    /// Creates the facility with the given security clearing fraction.
    pub fn new(clear_fraction: f64) -> RemapFacility {
        assert!((0.0..=1.0).contains(&clear_fraction));
        RemapFacility {
            clear_fraction,
            bump: 0,
            bufs: HashMap::new(),
            prepared: Vec::new(),
        }
    }

    /// Ensures `dom` has the remap window region installed.
    fn prepare(&mut self, m: &mut Machine, dom: DomainId) -> VmResult<()> {
        if self.prepared.contains(&dom) {
            return Ok(());
        }
        m.map_explicit_region(
            dom,
            REMAP_WINDOW_BASE,
            REMAP_WINDOW_SIZE / m.page_size(),
            Prot::ReadWrite,
        )?;
        self.prepared.push(dom);
        Ok(())
    }

    /// Extra per-page cost of a remap-facility map over a plain pmap
    /// update: the machine-independent layer's share.
    fn extra_map(m: &Machine) -> Ns {
        m.costs().remap_map - m.costs().pte_map
    }

    fn extra_unmap(m: &Machine) -> Ns {
        m.costs().remap_unmap - m.costs().pte_unmap
    }
}

impl TransferMechanism for RemapFacility {
    fn name(&self) -> &'static str {
        "remap"
    }

    fn alloc(&mut self, m: &mut Machine, dom: DomainId, len: u64) -> VmResult<u64> {
        let t0 = m.now();
        self.prepare(m, dom)?;
        let pages = m.config().pages_for(len).max(1);
        let page = m.page_size();
        if self.bump + pages * page > REMAP_WINDOW_SIZE {
            return Err(Fault::OutOfMemory);
        }
        let va = REMAP_WINDOW_BASE + self.bump;
        self.bump += pages * page;
        let mut frames = Vec::with_capacity(pages as usize);
        for _ in 0..pages {
            // Reserve the VA slot, allocate a frame, and clear the
            // configured fraction.
            m.charge(CostCategory::Vm, m.costs().remap_va_alloc);
            let frame = m.alloc_frame()?;
            if self.clear_fraction > 0.0 {
                let cost = Ns((m.costs().page_zero.as_ns() as f64 * self.clear_fraction) as u64);
                m.charge(CostCategory::DataMove, cost);
            }
            // Functionally always clear the whole page: the fraction
            // models how much *time* the partial clear takes, but a
            // partially dirty page would be a security bug.
            m.zero_frame_quietly(frame);
            frames.push(frame);
        }
        // Map writable through both VM levels: the machine-independent
        // layer's share charged per page, the pmap share batched (same
        // totals as the per-page loop).
        m.charge(CostCategory::Vm, Self::extra_map(m) * pages);
        m.map_range(dom, va, &frames, Prot::ReadWrite)?;
        self.bufs.insert(
            va,
            RemapBuf {
                frames,
                holder: dom,
            },
        );
        m.tracer_ref().span(t0, EventKind::Alloc, dom.0, None, None);
        Ok(va)
    }

    fn transfer(
        &mut self,
        m: &mut Machine,
        src: DomainId,
        va: u64,
        len: u64,
        dst: DomainId,
    ) -> VmResult<u64> {
        let t0 = m.now();
        self.prepare(m, dst)?;
        let _ = len;
        let buf = self.bufs.get_mut(&va).ok_or(Fault::NoSuchRegion { va })?;
        if buf.holder != src {
            return Err(Fault::AccessViolation {
                domain: src,
                va,
                access: crate::types::Access::Write,
            });
        }
        buf.holder = dst;
        let frames = &buf.frames;
        let n = frames.len() as u64;
        // Move semantics: unmap the whole buffer from the sender, map it
        // into the receiver at the same address — one range op each way
        // instead of two per page (no frame-list clone, same charges).
        m.charge(CostCategory::Vm, Self::extra_unmap(m) * n);
        m.unmap_range(src, va, n)?;
        m.charge(CostCategory::Vm, Self::extra_map(m) * n);
        m.map_range(dst, va, frames, Prot::ReadWrite)?;
        m.tracer_ref()
            .span_peer(t0, EventKind::Transfer, src.0, Some(dst.0), None, None);
        Ok(va)
    }

    fn free(&mut self, m: &mut Machine, dom: DomainId, va: u64, _len: u64) -> VmResult<()> {
        let buf = self.bufs.remove(&va).ok_or(Fault::NoSuchRegion { va })?;
        if buf.holder != dom {
            self.bufs.insert(va, buf);
            return Err(Fault::BadDomain(dom));
        }
        let n = buf.frames.len() as u64;
        m.charge(CostCategory::Vm, Self::extra_unmap(m) * n);
        m.unmap_range(dom, va, n)?;
        for frame in &buf.frames {
            m.release_frame(*frame);
        }
        m.tracer_ref().instant(EventKind::Free, dom.0, None, None);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbuf_sim::MachineConfig;

    fn setup() -> (Machine, DomainId, DomainId) {
        let mut m = Machine::new(MachineConfig::decstation_5000_200());
        let a = m.create_domain();
        let b = m.create_domain();
        (m, a, b)
    }

    #[test]
    fn move_semantics_sender_loses_access() {
        let (mut m, a, b) = setup();
        let mut f = RemapFacility::new(0.0);
        let va = f.alloc(&mut m, a, 4096).unwrap();
        m.write(a, va, b"moved").unwrap();
        f.transfer(&mut m, a, va, 4096, b).unwrap();
        // The sender's mapping is gone.
        assert!(m.read(a, va, 5).is_err());
        assert_eq!(m.read(b, va, 5).unwrap(), b"moved");
        f.free(&mut m, b, va, 4096).unwrap();
    }

    #[test]
    fn same_virtual_address_both_sides() {
        let (mut m, a, b) = setup();
        let mut f = RemapFacility::new(0.0);
        let va = f.alloc(&mut m, a, 8192).unwrap();
        let rva = f.transfer(&mut m, a, va, 8192, b).unwrap();
        assert_eq!(va, rva);
        f.free(&mut m, b, va, 8192).unwrap();
    }

    #[test]
    fn non_holder_cannot_transfer_or_free() {
        let (mut m, a, b) = setup();
        let mut f = RemapFacility::new(0.0);
        let va = f.alloc(&mut m, a, 4096).unwrap();
        assert!(f.transfer(&mut m, b, va, 4096, a).is_err());
        assert!(f.free(&mut m, b, va, 4096).is_err());
        f.free(&mut m, a, va, 4096).unwrap();
    }

    #[test]
    fn pingpong_page_cost_matches_paper() {
        // Touch-inclusive one-way remap of a hot page: ~22 µs (paper:
        // "it is possible to achieve an incremental overhead of 22 µs/page
        // in the ping-pong test").
        let (mut m, a, b) = setup();
        let mut f = RemapFacility::new(0.0);
        let va = f.alloc(&mut m, a, 4096).unwrap();
        m.write(a, va, &[1]).unwrap();
        // Warm-up bounce.
        f.transfer(&mut m, a, va, 4096, b).unwrap();
        m.read(b, va, 1).unwrap();
        f.transfer(&mut m, b, va, 4096, a).unwrap();
        m.write(a, va, &[2]).unwrap();
        let t0 = m.now();
        f.transfer(&mut m, a, va, 4096, b).unwrap();
        m.read(b, va, 1).unwrap();
        let one_way = (m.now() - t0).as_us_f64();
        assert!(
            (one_way - 22.0).abs() <= 2.0,
            "ping-pong one-way cost {one_way} µs, expected ≈22 µs"
        );
        f.free(&mut m, b, va, 4096).unwrap();
    }

    #[test]
    fn streaming_page_cost_range_matches_paper() {
        // Full allocate/transfer/deallocate cycle: 42 µs/page with no
        // clearing, 99 µs/page with full clearing.
        for (fraction, expect) in [(0.0, 42.0), (1.0, 99.0)] {
            let (mut m, a, b) = setup();
            let mut f = RemapFacility::new(fraction);
            // Warm-up cycle.
            let va = f.alloc(&mut m, a, 4096).unwrap();
            m.write(a, va, &[1]).unwrap();
            f.transfer(&mut m, a, va, 4096, b).unwrap();
            m.read(b, va, 1).unwrap();
            f.free(&mut m, b, va, 4096).unwrap();
            let t0 = m.now();
            let va = f.alloc(&mut m, a, 4096).unwrap();
            m.write(a, va, &[1]).unwrap();
            f.transfer(&mut m, a, va, 4096, b).unwrap();
            m.read(b, va, 1).unwrap();
            f.free(&mut m, b, va, 4096).unwrap();
            let cycle = (m.now() - t0).as_us_f64();
            assert!(
                (cycle - expect).abs() <= 3.0,
                "streaming cost {cycle} µs at clear fraction {fraction}, expected ≈{expect}"
            );
        }
    }

    #[test]
    fn fresh_buffers_are_always_functionally_clean() {
        // Even with clear_fraction 0 (no *charged* clearing) the facility
        // must not leak a previous owner's bytes.
        let (mut m, a, b) = setup();
        let mut f = RemapFacility::new(0.0);
        let va = f.alloc(&mut m, a, 4096).unwrap();
        m.write(a, va, b"secret").unwrap();
        f.transfer(&mut m, a, va, 4096, b).unwrap();
        f.free(&mut m, b, va, 4096).unwrap();
        let va2 = f.alloc(&mut m, b, 4096).unwrap();
        let data = m.read(b, va2, 4096).unwrap();
        assert!(data.iter().all(|&b| b == 0), "stale data leaked");
    }
}
