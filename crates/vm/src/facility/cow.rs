//! Mach-style lazy copy-on-write transfer.

use std::collections::HashMap;

use crate::facility::{window_base, TransferMechanism, BUF_WINDOW_SIZE};
use crate::machine::Machine;
use crate::types::{DomainId, Fault, VmResult};
use fbuf_sim::{CostCategory, EventKind};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    /// Allocated the buffer; keeps it (for reuse) across transfers.
    Owner,
    /// Received the buffer via COW; freeing removes the mapping.
    Receiver,
}

/// Copy-on-write transfer in the style of Mach's `vm_map_copyin`/`copyout`.
///
/// The transfer itself only manipulates map entries and lazily invalidates
/// the sender's resident mappings; both the receiver's first read and the
/// sender's next write then take page faults through the COW machinery —
/// the "two page faults for each transfer" the paper measures. Senders
/// reuse their buffer across messages (a realistic sender does not
/// `vm_allocate` fresh zero-fill memory per message).
pub struct CowFacility {
    offset: u64,
    bump: HashMap<u32, u64>,
    live: HashMap<(u32, u64), Role>,
    /// Reusable sender buffers: (domain, pages) → va.
    cache: HashMap<(u32, u64), Vec<u64>>,
}

impl CowFacility {
    /// Creates the facility.
    pub fn new() -> CowFacility {
        CowFacility::with_offset(0)
    }

    /// Creates the facility carving from `offset` within each domain
    /// window (see [`crate::facility::MachNative`]).
    pub fn with_offset(offset: u64) -> CowFacility {
        assert!(offset < BUF_WINDOW_SIZE);
        CowFacility {
            offset,
            bump: HashMap::new(),
            live: HashMap::new(),
            cache: HashMap::new(),
        }
    }
}

impl Default for CowFacility {
    fn default() -> CowFacility {
        CowFacility::new()
    }
}

impl TransferMechanism for CowFacility {
    fn name(&self) -> &'static str {
        "mach-cow"
    }

    fn alloc(&mut self, m: &mut Machine, dom: DomainId, len: u64) -> VmResult<u64> {
        let t0 = m.now();
        let pages = m.config().pages_for(len).max(1);
        if let Some(va) = self.cache.get_mut(&(dom.0, pages)).and_then(|v| v.pop()) {
            self.live.insert((dom.0, va), Role::Owner);
            m.tracer_ref().span(t0, EventKind::Alloc, dom.0, None, None);
            return Ok(va);
        }
        let bump = self.bump.entry(dom.0).or_insert(0);
        let va = window_base(dom) + self.offset + *bump;
        let need = (pages + 1) * m.page_size();
        if self.offset + *bump + need > BUF_WINDOW_SIZE {
            return Err(Fault::OutOfMemory);
        }
        *bump += need;
        m.map_anon_region(dom, va, pages)?;
        self.live.insert((dom.0, va), Role::Owner);
        m.tracer_ref().span(t0, EventKind::Alloc, dom.0, None, None);
        Ok(va)
    }

    fn transfer(
        &mut self,
        m: &mut Machine,
        src: DomainId,
        va: u64,
        len: u64,
        dst: DomainId,
    ) -> VmResult<u64> {
        let _ = len;
        // The map-entry manipulation enters the kernel VM system once per
        // transfer.
        let t0 = m.now();
        m.charge(CostCategory::Vm, m.costs().vm_invoke);
        m.cow_share_region(src, va, dst)?;
        self.live.insert((dst.0, va), Role::Receiver);
        m.tracer_ref()
            .span_peer(t0, EventKind::Transfer, src.0, Some(dst.0), None, None);
        Ok(va)
    }

    fn free(&mut self, m: &mut Machine, dom: DomainId, va: u64, len: u64) -> VmResult<()> {
        let role = self
            .live
            .remove(&(dom.0, va))
            .ok_or(Fault::NoSuchRegion { va })?;
        m.tracer_ref().instant(EventKind::Free, dom.0, None, None);
        match role {
            Role::Receiver => m.unmap_region(dom, va),
            Role::Owner => {
                // Owners keep the region for reuse by the next alloc.
                let pages = m.config().pages_for(len).max(1);
                self.cache.entry((dom.0, pages)).or_default().push(va);
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbuf_sim::MachineConfig;

    #[test]
    fn two_faults_per_transfer_in_steady_state() {
        let mut m = Machine::new(MachineConfig::decstation_5000_200());
        let a = m.create_domain();
        let b = m.create_domain();
        let mut f = CowFacility::new();

        // Warm up one full cycle so the buffer is in the reuse cache and
        // the region is COW-marked.
        for _ in 0..2 {
            let va = f.alloc(&mut m, a, 4096).unwrap();
            m.write(a, va, &[1u8; 64]).unwrap();
            let rva = f.transfer(&mut m, a, va, 4096, b).unwrap();
            m.read(b, rva, 64).unwrap();
            f.free(&mut m, b, rva, 4096).unwrap();
            f.free(&mut m, a, va, 4096).unwrap();
        }
        // Steady-state cycle: exactly two COW faults (sender re-write +
        // receiver read).
        let cow0 = m.stats().cow_faults();
        let va = f.alloc(&mut m, a, 4096).unwrap();
        m.write(a, va, &[2u8; 64]).unwrap();
        let rva = f.transfer(&mut m, a, va, 4096, b).unwrap();
        m.read(b, rva, 64).unwrap();
        f.free(&mut m, b, rva, 4096).unwrap();
        f.free(&mut m, a, va, 4096).unwrap();
        assert_eq!(m.stats().cow_faults() - cow0, 2);
    }

    #[test]
    fn no_physical_copy_when_receiver_only_reads() {
        let mut m = Machine::new(MachineConfig::tiny());
        let a = m.create_domain();
        let b = m.create_domain();
        let mut f = CowFacility::new();
        let va = f.alloc(&mut m, a, 8192).unwrap();
        m.write(a, va, &[1u8; 8192]).unwrap();
        let copies0 = m.stats().pages_copied();
        let rva = f.transfer(&mut m, a, va, 8192, b).unwrap();
        assert_eq!(m.read(b, rva, 8192).unwrap(), vec![1u8; 8192]);
        f.free(&mut m, b, rva, 8192).unwrap();
        assert_eq!(m.stats().pages_copied(), copies0);
    }

    #[test]
    fn copy_semantics_across_reuse() {
        // The sender's buffer reuse must never leak new contents into a
        // previously transferred message.
        let mut m = Machine::new(MachineConfig::tiny());
        let a = m.create_domain();
        let b = m.create_domain();
        let mut f = CowFacility::new();

        let va = f.alloc(&mut m, a, 64).unwrap();
        m.write(a, va, b"msg-1").unwrap();
        let rva1 = f.transfer(&mut m, a, va, 64, b).unwrap();
        f.free(&mut m, a, va, 64).unwrap();

        // Sender reuses the same buffer for the next message while the
        // receiver still holds the first.
        let va2 = f.alloc(&mut m, a, 64).unwrap();
        assert_eq!(va2, va, "buffer should be reused");
        m.write(a, va2, b"msg-2").unwrap();
        assert_eq!(m.read(b, rva1, 5).unwrap(), b"msg-1");
        f.free(&mut m, b, rva1, 64).unwrap();
    }

    #[test]
    fn sequential_messages_deliver_fresh_contents() {
        let mut m = Machine::new(MachineConfig::tiny());
        let a = m.create_domain();
        let b = m.create_domain();
        let mut f = CowFacility::new();
        for i in 0..5u8 {
            let va = f.alloc(&mut m, a, 64).unwrap();
            m.write(a, va, &[i; 8]).unwrap();
            let rva = f.transfer(&mut m, a, va, 64, b).unwrap();
            assert_eq!(m.read(b, rva, 8).unwrap(), vec![i; 8]);
            f.free(&mut m, b, rva, 64).unwrap();
            f.free(&mut m, a, va, 64).unwrap();
        }
    }
}
