//! Per-domain address spaces: the two-level map/pmap structure.
//!
//! The paper argues that "portability concerns have caused virtually all
//! modern operating systems to employ a two-level virtual memory system",
//! where mapping changes must update both a high-level machine-independent
//! map and low-level machine-dependent page tables — and that this is what
//! makes per-page mapping operations expensive. The structure is reproduced
//! here: region-granularity [`MapEntry`]s over a page-granularity [`Pmap`].
//!
//! This module is pure state; cost charging happens in [`crate::Machine`].

use std::collections::{BTreeMap, HashMap};

use crate::phys::FrameId;
use crate::types::{Fault, Prot, VmResult, Vpn};

/// Policy attached to a machine-independent map entry, deciding how faults
/// within the region are resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionPolicy {
    /// Anonymous memory: first touch takes a soft fault that allocates and
    /// zero-fills a frame.
    LazyZero,
    /// Fbuf-region chunk owned by this domain: like [`RegionPolicy::LazyZero`]
    /// (the fbuf region "is pageable like ordinary virtual memory, with
    /// physical memory allocated lazily upon access").
    FbufChunk,
    /// Fbuf-region address range seen by a *receiver*: reads of pages the
    /// receiver has no mapping for are satisfied by mapping a synthetic
    /// null page ("invalid DAG references appear to the receiver as the
    /// absence of data", paper §3.2.4); writes fault.
    NullRead,
    /// Mappings are only ever installed explicitly; any fault is an error.
    Explicit,
}

/// A machine-independent map entry: a contiguous region of virtual pages
/// with a policy and a maximum protection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapEntry {
    /// First page of the region.
    pub start: Vpn,
    /// Length in pages.
    pub pages: u64,
    /// Upper bound on the protection of any resident mapping inside.
    pub max_prot: Prot,
    /// Fault-resolution policy.
    pub policy: RegionPolicy,
    /// Marked by the COW facility: resident pages are logically shared and
    /// a write inside must fork the frame.
    pub cow: bool,
}

impl MapEntry {
    /// True if `vpn` lies inside this region.
    pub fn contains(&self, vpn: Vpn) -> bool {
        vpn.0 >= self.start.0 && vpn.0 < self.start.0 + self.pages
    }

    /// Exclusive end page.
    pub fn end(&self) -> Vpn {
        Vpn(self.start.0 + self.pages)
    }
}

/// A resident translation in the machine-dependent page tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PmapEntry {
    /// Backing physical frame.
    pub frame: FrameId,
    /// Current protection (≤ the region's `max_prot`).
    pub prot: Prot,
}

/// The machine-dependent level: resident page → frame + protection.
#[derive(Debug, Default)]
pub struct Pmap {
    entries: HashMap<u64, PmapEntry>,
}

impl Pmap {
    /// Installs or replaces a translation.
    pub fn enter(&mut self, vpn: Vpn, frame: FrameId, prot: Prot) {
        self.entries.insert(vpn.0, PmapEntry { frame, prot });
    }

    /// Removes a translation, returning it if present.
    pub fn remove(&mut self, vpn: Vpn) -> Option<PmapEntry> {
        self.entries.remove(&vpn.0)
    }

    /// Looks up a resident translation.
    pub fn lookup(&self, vpn: Vpn) -> Option<PmapEntry> {
        self.entries.get(&vpn.0).copied()
    }

    /// Changes the protection of a resident page, returning the old value.
    pub fn protect(&mut self, vpn: Vpn, prot: Prot) -> Option<Prot> {
        self.entries.get_mut(&vpn.0).map(|e| {
            let old = e.prot;
            e.prot = prot;
            old
        })
    }

    /// Number of resident pages.
    pub fn resident(&self) -> usize {
        self.entries.len()
    }

    /// All resident pages within `[start, start+pages)`, sorted.
    pub fn resident_in(&self, start: Vpn, pages: u64) -> Vec<(Vpn, PmapEntry)> {
        let mut v: Vec<(Vpn, PmapEntry)> = self
            .entries
            .iter()
            .filter(|(&vpn, _)| vpn >= start.0 && vpn < start.0 + pages)
            .map(|(&vpn, &e)| (Vpn(vpn), e))
            .collect();
        v.sort_by_key(|(vpn, _)| vpn.0);
        v
    }
}

/// One domain's address space: regions over a pmap.
#[derive(Debug, Default)]
pub struct AddressSpace {
    regions: BTreeMap<u64, MapEntry>,
    /// The machine-dependent level.
    pub pmap: Pmap,
}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> AddressSpace {
        AddressSpace::default()
    }

    /// Adds a region; fails if it overlaps an existing one.
    pub fn map_region(
        &mut self,
        start: Vpn,
        pages: u64,
        max_prot: Prot,
        policy: RegionPolicy,
    ) -> VmResult<()> {
        assert!(pages > 0, "empty region");
        // Check the candidate against its neighbours on both sides.
        if let Some((_, prev)) = self.regions.range(..=start.0).next_back() {
            if prev.end().0 > start.0 {
                return Err(Fault::RegionOverlap {
                    existing_va: prev.start.0,
                });
            }
        }
        if let Some((_, next)) = self.regions.range(start.0 + 1..).next() {
            if next.start.0 < start.0 + pages {
                return Err(Fault::RegionOverlap {
                    existing_va: next.start.0,
                });
            }
        }
        self.regions.insert(
            start.0,
            MapEntry {
                start,
                pages,
                max_prot,
                policy,
                cow: false,
            },
        );
        Ok(())
    }

    /// Removes the region starting exactly at `start`, returning it.
    pub fn unmap_region(&mut self, start: Vpn) -> VmResult<MapEntry> {
        self.regions
            .remove(&start.0)
            .ok_or(Fault::NoSuchRegion { va: start.0 })
    }

    /// The region containing `vpn`, if any.
    pub fn region_at(&self, vpn: Vpn) -> Option<&MapEntry> {
        self.regions
            .range(..=vpn.0)
            .next_back()
            .map(|(_, e)| e)
            .filter(|e| e.contains(vpn))
    }

    /// Mutable access to the region containing `vpn`.
    pub fn region_at_mut(&mut self, vpn: Vpn) -> Option<&mut MapEntry> {
        self.regions
            .range_mut(..=vpn.0)
            .next_back()
            .map(|(_, e)| e)
            .filter(|e| e.contains(vpn))
    }

    /// All regions, in address order.
    pub fn regions(&self) -> impl Iterator<Item = &MapEntry> {
        self.regions.values()
    }

    /// Number of regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        let mut s = AddressSpace::new();
        s.map_region(Vpn(10), 5, Prot::ReadWrite, RegionPolicy::LazyZero)
            .unwrap();
        // Exactly adjacent regions are fine.
        s.map_region(Vpn(15), 5, Prot::Read, RegionPolicy::Explicit)
            .unwrap();
        s.map_region(Vpn(5), 5, Prot::Read, RegionPolicy::Explicit)
            .unwrap();
        // Overlaps from either side are rejected.
        assert!(matches!(
            s.map_region(Vpn(12), 1, Prot::Read, RegionPolicy::Explicit),
            Err(Fault::RegionOverlap { .. })
        ));
        assert!(matches!(
            s.map_region(Vpn(8), 4, Prot::Read, RegionPolicy::Explicit),
            Err(Fault::RegionOverlap { .. })
        ));
        assert!(matches!(
            s.map_region(Vpn(0), 100, Prot::Read, RegionPolicy::Explicit),
            Err(Fault::RegionOverlap { .. })
        ));
    }

    #[test]
    fn region_lookup_by_page() {
        let mut s = AddressSpace::new();
        s.map_region(Vpn(10), 5, Prot::Read, RegionPolicy::LazyZero)
            .unwrap();
        assert!(s.region_at(Vpn(9)).is_none());
        assert_eq!(s.region_at(Vpn(10)).unwrap().start, Vpn(10));
        assert_eq!(s.region_at(Vpn(14)).unwrap().start, Vpn(10));
        assert!(s.region_at(Vpn(15)).is_none());
    }

    #[test]
    fn unmap_region_returns_entry() {
        let mut s = AddressSpace::new();
        s.map_region(Vpn(10), 5, Prot::Read, RegionPolicy::LazyZero)
            .unwrap();
        let e = s.unmap_region(Vpn(10)).unwrap();
        assert_eq!(e.pages, 5);
        assert!(s.region_at(Vpn(12)).is_none());
        assert!(matches!(
            s.unmap_region(Vpn(10)),
            Err(Fault::NoSuchRegion { .. })
        ));
    }

    #[test]
    fn pmap_enter_lookup_remove() {
        let mut p = Pmap::default();
        p.enter(Vpn(3), FrameId(9), Prot::ReadWrite);
        assert_eq!(
            p.lookup(Vpn(3)),
            Some(PmapEntry {
                frame: FrameId(9),
                prot: Prot::ReadWrite
            })
        );
        assert_eq!(p.resident(), 1);
        let e = p.remove(Vpn(3)).unwrap();
        assert_eq!(e.frame, FrameId(9));
        assert!(p.lookup(Vpn(3)).is_none());
    }

    #[test]
    fn pmap_protect_returns_old() {
        let mut p = Pmap::default();
        p.enter(Vpn(1), FrameId(1), Prot::ReadWrite);
        assert_eq!(p.protect(Vpn(1), Prot::Read), Some(Prot::ReadWrite));
        assert_eq!(p.lookup(Vpn(1)).unwrap().prot, Prot::Read);
        assert_eq!(p.protect(Vpn(99), Prot::Read), None);
    }

    #[test]
    fn pmap_resident_in_range() {
        let mut p = Pmap::default();
        p.enter(Vpn(1), FrameId(1), Prot::Read);
        p.enter(Vpn(5), FrameId(5), Prot::Read);
        p.enter(Vpn(3), FrameId(3), Prot::Read);
        let inside = p.resident_in(Vpn(2), 3);
        assert_eq!(inside.len(), 1);
        assert_eq!(inside[0].0, Vpn(3));
        let all = p.resident_in(Vpn(0), 100);
        assert_eq!(
            all.iter().map(|(v, _)| v.0).collect::<Vec<_>>(),
            vec![1, 3, 5]
        );
    }

    #[test]
    fn cow_flag_travels_with_entry() {
        let mut s = AddressSpace::new();
        s.map_region(Vpn(0), 4, Prot::ReadWrite, RegionPolicy::LazyZero)
            .unwrap();
        assert!(!s.region_at(Vpn(0)).unwrap().cow);
        s.region_at_mut(Vpn(2)).unwrap().cow = true;
        assert!(s.region_at(Vpn(3)).unwrap().cow);
    }
}
