//! Simulated memory and protection substrate for the fbufs reproduction.
//!
//! This crate provides what the paper's Mach 3.0 kernel provided: physical
//! memory, per-protection-domain virtual address spaces, and the primitives
//! a cross-domain transfer facility is built from. The structure mirrors the
//! paper's description of a "two-level virtual memory system":
//!
//! * a **machine-independent map** per domain ([`space::AddressSpace`]):
//!   region-granularity entries describing policy (lazy zero-fill, copy-on-
//!   write inheritance, null-read handling) and maximum protection;
//! * a **machine-dependent pmap** ([`space::Pmap`]): the resident
//!   page → frame + protection table that the (simulated) MMU consults;
//! * a finite, software-refilled, ASID-tagged [`tlb::Tlb`] (R3000-style);
//! * [`phys::PhysMem`]: real byte storage in reference-counted frames, so
//!   data integrity and protection are *testable*, not assumed.
//!
//! Every operation charges calibrated costs from [`fbuf_sim::CostModel`] to
//! the shared [`fbuf_sim::Clock`] and bumps [`fbuf_sim::Stats`] counters.
//!
//! The [`facility`] module implements the paper's three baseline transfer
//! mechanisms over this substrate — bounded copy, DASH-style page remapping,
//! and Mach-style lazy copy-on-write — which Table 1 and Figure 3 compare
//! against fbufs.
//!
//! Design notes: `DESIGN.md` §2 (the hardware the paper ran on and what
//! this substrate substitutes for each piece) and §4 (the full system
//! inventory, module by module).

pub mod facility;
pub mod machine;
pub mod phys;
pub mod space;
pub mod tlb;
pub mod types;

pub use machine::{Machine, MachineRef, ObjectId};
pub use phys::{FrameId, PhysMem};
pub use space::{AddressSpace, MapEntry, Pmap, RegionPolicy};
pub use types::{Access, DomainId, Fault, Prot, VmResult, Vpn, KERNEL_DOMAIN};

#[cfg(test)]
mod send_audit {
    //! The sharded multi-core engine (`fbuf::shard`) moves only plain
    //! data between threads. This pins the `Send` story at compile time:
    //! everything that crosses a shard boundary is `Send` (and stays
    //! that way), while `Machine` itself is `!Send` — see the
    //! `compile_fail` doctest on [`crate::Machine`].

    fn crosses_threads<T: Send>() {}

    #[test]
    fn everything_a_shard_exports_is_send() {
        crosses_threads::<fbuf_sim::MachineConfig>();
        crosses_threads::<fbuf_sim::CostModel>();
        crosses_threads::<fbuf_sim::StatsSnapshot>();
        crosses_threads::<fbuf_sim::TraceEvent>();
        crosses_threads::<Vec<fbuf_sim::TraceEvent>>();
        crosses_threads::<fbuf_sim::Ns>();
        crosses_threads::<crate::DomainId>();
        crosses_threads::<crate::FrameId>();
        crosses_threads::<crate::Prot>();
        crosses_threads::<crate::Fault>();
    }
}
