//! Core identifier, protection, and fault types.

use core::fmt;

/// A protection domain identifier.
///
/// Domain 0 is the kernel ([`KERNEL_DOMAIN`]), which is *trusted*: buffers it
/// originates never need their immutability enforced (paper §2.1.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomainId(pub u32);

/// The kernel's domain id.
pub const KERNEL_DOMAIN: DomainId = DomainId(0);

impl DomainId {
    /// True for the kernel domain.
    pub fn is_kernel(self) -> bool {
        self == KERNEL_DOMAIN
    }
}

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_kernel() {
            write!(f, "kernel")
        } else {
            write!(f, "domain{}", self.0)
        }
    }
}

/// A virtual page number (virtual address divided by the page size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Vpn(pub u64);

impl Vpn {
    /// The page containing virtual address `va`.
    pub fn containing(va: u64, page_size: u64) -> Vpn {
        Vpn(va / page_size)
    }

    /// The base virtual address of this page.
    pub fn base(self, page_size: u64) -> u64 {
        self.0 * page_size
    }

    /// The `n`th page after this one.
    pub fn offset(self, n: u64) -> Vpn {
        Vpn(self.0 + n)
    }
}

/// Page protection, ordered by privilege (`None < Read < ReadWrite`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Prot {
    /// No access.
    None,
    /// Read-only.
    Read,
    /// Read and write.
    ReadWrite,
}

impl Prot {
    /// True if this protection permits `access`.
    pub fn allows(self, access: Access) -> bool {
        match access {
            Access::Read => self >= Prot::Read,
            Access::Write => self == Prot::ReadWrite,
        }
    }
}

/// The kind of memory access being attempted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// A memory-management fault delivered to the accessing domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// The domain attempted an access its protection does not permit —
    /// e.g. a receiver writing an fbuf, or the originator writing a secured
    /// fbuf.
    AccessViolation {
        /// The offending domain.
        domain: DomainId,
        /// The faulting virtual address.
        va: u64,
        /// What was attempted.
        access: Access,
    },
    /// The address is not mapped in the domain and no region policy can
    /// satisfy the access.
    Unmapped {
        /// The offending domain.
        domain: DomainId,
        /// The faulting virtual address.
        va: u64,
    },
    /// Physical memory is exhausted.
    OutOfMemory,
    /// The domain does not exist or has terminated.
    BadDomain(DomainId),
    /// A region operation conflicts with an existing region.
    RegionOverlap {
        /// Start of the conflicting existing region (virtual address).
        existing_va: u64,
    },
    /// The virtual range is not backed by any region.
    NoSuchRegion {
        /// The virtual address that was looked up.
        va: u64,
    },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::AccessViolation { domain, va, access } => {
                write!(f, "{domain}: {access:?} access violation at {va:#x}")
            }
            Fault::Unmapped { domain, va } => {
                write!(f, "{domain}: unmapped address {va:#x}")
            }
            Fault::OutOfMemory => write!(f, "out of physical memory"),
            Fault::BadDomain(d) => write!(f, "no such domain: {d}"),
            Fault::RegionOverlap { existing_va } => {
                write!(f, "region overlaps existing region at {existing_va:#x}")
            }
            Fault::NoSuchRegion { va } => write!(f, "no region at {va:#x}"),
        }
    }
}

impl std::error::Error for Fault {}

/// Result alias for VM operations.
pub type VmResult<T> = Result<T, Fault>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prot_ordering_and_allows() {
        assert!(Prot::None < Prot::Read);
        assert!(Prot::Read < Prot::ReadWrite);
        assert!(!Prot::None.allows(Access::Read));
        assert!(!Prot::None.allows(Access::Write));
        assert!(Prot::Read.allows(Access::Read));
        assert!(!Prot::Read.allows(Access::Write));
        assert!(Prot::ReadWrite.allows(Access::Read));
        assert!(Prot::ReadWrite.allows(Access::Write));
    }

    #[test]
    fn vpn_math() {
        let p = Vpn::containing(0x4000_1234, 4096);
        assert_eq!(p, Vpn(0x4000_1000 / 4096));
        assert_eq!(p.base(4096), 0x4000_1000);
        assert_eq!(p.offset(2).base(4096), 0x4000_3000);
    }

    #[test]
    fn kernel_domain_is_zero() {
        assert!(KERNEL_DOMAIN.is_kernel());
        assert!(!DomainId(3).is_kernel());
        assert_eq!(KERNEL_DOMAIN.to_string(), "kernel");
        assert_eq!(DomainId(3).to_string(), "domain3");
    }

    #[test]
    fn fault_display() {
        let f = Fault::AccessViolation {
            domain: DomainId(2),
            va: 0x1000,
            access: Access::Write,
        };
        assert!(f.to_string().contains("domain2"));
        assert!(f.to_string().contains("0x1000"));
    }
}
