//! Simulated physical memory: reference-counted frames with real contents.

use crate::types::{Fault, VmResult};
use fbuf_sim::{Clock, CostCategory, CostModel, Stats};

/// A physical frame number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameId(pub u32);

/// One physical frame: page-sized byte storage plus a mapping reference
/// count (a frame shared read-only among several domains — the fbuf case —
/// is freed only when the last mapping goes away).
#[derive(Debug)]
struct Frame {
    data: Box<[u8]>,
    refs: u32,
}

/// The machine's physical memory.
///
/// Frames hold real bytes so that higher layers can verify end-to-end data
/// integrity through every mechanism. Allocation, freeing, zero-fill, and
/// copies charge the calibrated costs.
#[derive(Debug)]
pub struct PhysMem {
    page_size: usize,
    frames: Vec<Option<Frame>>,
    free: Vec<FrameId>,
    clock: Clock,
    stats: Stats,
    costs: CostModel,
}

impl PhysMem {
    /// Creates a physical memory of `frames` frames of `page_size` bytes.
    pub fn new(
        frames: usize,
        page_size: usize,
        clock: Clock,
        stats: Stats,
        costs: CostModel,
    ) -> PhysMem {
        PhysMem {
            page_size,
            frames: (0..frames).map(|_| None).collect(),
            free: (0..frames as u32).rev().map(FrameId).collect(),
            clock,
            stats,
            costs,
        }
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of free frames.
    pub fn free_frames(&self) -> usize {
        self.free.len()
    }

    /// Total frames.
    pub fn total_frames(&self) -> usize {
        self.frames.len()
    }

    /// Allocates a frame with one reference. Contents are *not* cleared —
    /// call [`PhysMem::zero`] when security requires it (the paper counts
    /// page clearing as a separate, avoidable cost).
    pub fn alloc(&mut self) -> VmResult<FrameId> {
        let id = self.free.pop().ok_or(Fault::OutOfMemory)?;
        self.clock
            .charge(CostCategory::Alloc, self.costs.phys_alloc);
        self.stats.inc_frames_allocated();
        self.frames[id.0 as usize] = Some(Frame {
            data: vec![0xA5; self.page_size].into_boxed_slice(),
            refs: 1,
        });
        Ok(id)
    }

    /// Zero-fills a frame (charges the 57 µs page-clear cost).
    pub fn zero(&mut self, id: FrameId) {
        self.clock
            .charge(CostCategory::DataMove, self.costs.page_zero);
        self.stats.inc_pages_cleared();
        self.frame_mut(id).data.fill(0);
    }

    /// Adds a mapping reference to `id`.
    pub fn add_ref(&mut self, id: FrameId) {
        self.frame_mut(id).refs += 1;
    }

    /// Current reference count of `id`.
    pub fn refs(&self, id: FrameId) -> u32 {
        self.frame(id).refs
    }

    /// Drops one reference; frees the frame when the count reaches zero.
    /// Returns `true` if the frame was actually freed.
    pub fn drop_ref(&mut self, id: FrameId) -> bool {
        let frame = self.frames[id.0 as usize]
            .as_mut()
            .expect("drop_ref on free frame");
        assert!(frame.refs > 0, "reference count underflow");
        frame.refs -= 1;
        if frame.refs == 0 {
            self.frames[id.0 as usize] = None;
            self.free.push(id);
            self.clock.charge(CostCategory::Alloc, self.costs.phys_free);
            self.stats.inc_frames_freed();
            true
        } else {
            false
        }
    }

    /// Copies the contents of `src` into a newly allocated frame (the COW
    /// fault resolution path). Charges the page-copy cost.
    pub fn fork(&mut self, src: FrameId) -> VmResult<FrameId> {
        let dst = self.alloc()?;
        self.clock
            .charge(CostCategory::DataMove, self.costs.page_copy);
        self.stats.inc_pages_copied();
        let src_data = self.frame(src).data.to_vec();
        self.frame_mut(dst).data.copy_from_slice(&src_data);
        Ok(dst)
    }

    /// Copies `len` bytes between frames (used by the bounded-copy transfer
    /// facility); charges proportionally to whole pages.
    pub fn copy_between(
        &mut self,
        src: FrameId,
        src_off: usize,
        dst: FrameId,
        dst_off: usize,
        len: usize,
    ) {
        assert!(src_off + len <= self.page_size && dst_off + len <= self.page_size);
        let cost_ns =
            (self.costs.page_copy.as_ns() as u128 * len as u128 / self.page_size as u128) as u64;
        self.clock
            .charge(CostCategory::DataMove, fbuf_sim::Ns(cost_ns));
        self.stats.inc_pages_copied();
        let bytes = self.frame(src).data[src_off..src_off + len].to_vec();
        self.frame_mut(dst).data[dst_off..dst_off + len].copy_from_slice(&bytes);
    }

    /// Reads bytes from a frame. No cost is charged here; the access engine
    /// charges TLB/cache costs at the translation layer.
    pub fn read(&self, id: FrameId, offset: usize, out: &mut [u8]) {
        out.copy_from_slice(&self.frame(id).data[offset..offset + out.len()]);
    }

    /// Writes bytes into a frame. No cost is charged here (see
    /// [`PhysMem::read`]).
    pub fn write(&mut self, id: FrameId, offset: usize, bytes: &[u8]) {
        self.frame_mut(id).data[offset..offset + bytes.len()].copy_from_slice(bytes);
    }

    /// Overwrites the whole frame with a repeated template (used by the
    /// null-read policy to stamp empty-leaf pages).
    pub fn fill_with_template(&mut self, id: FrameId, template: &[u8]) {
        let frame = self.frame_mut(id);
        if template.is_empty() {
            frame.data.fill(0);
            return;
        }
        for chunk in frame.data.chunks_mut(template.len()) {
            chunk.copy_from_slice(&template[..chunk.len()]);
        }
    }

    fn frame(&self, id: FrameId) -> &Frame {
        self.frames[id.0 as usize]
            .as_ref()
            .expect("access to free frame")
    }

    fn frame_mut(&mut self, id: FrameId) -> &mut Frame {
        self.frames[id.0 as usize]
            .as_mut()
            .expect("access to free frame")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbuf_sim::Ns;

    fn mem() -> PhysMem {
        PhysMem::new(
            8,
            4096,
            Clock::new(),
            Stats::new(),
            CostModel::decstation_5000_200(),
        )
    }

    #[test]
    fn alloc_and_free_cycle() {
        let mut m = mem();
        assert_eq!(m.free_frames(), 8);
        let f = m.alloc().unwrap();
        assert_eq!(m.free_frames(), 7);
        assert_eq!(m.refs(f), 1);
        assert!(m.drop_ref(f));
        assert_eq!(m.free_frames(), 8);
    }

    #[test]
    fn alloc_exhaustion_is_oom() {
        let mut m = mem();
        let mut held = Vec::new();
        for _ in 0..8 {
            held.push(m.alloc().unwrap());
        }
        assert_eq!(m.alloc(), Err(Fault::OutOfMemory));
        m.drop_ref(held.pop().unwrap());
        assert!(m.alloc().is_ok());
    }

    #[test]
    fn fresh_frames_are_dirty_until_zeroed() {
        // The allocator deliberately hands out dirty frames so tests can
        // catch a mechanism that skips a required clear.
        let mut m = mem();
        let f = m.alloc().unwrap();
        let mut b = [0u8; 4];
        m.read(f, 0, &mut b);
        assert_eq!(b, [0xA5; 4]);
        m.zero(f);
        m.read(f, 0, &mut b);
        assert_eq!(b, [0; 4]);
    }

    #[test]
    fn zero_charges_57us_and_counts() {
        let mut m = mem();
        let f = m.alloc().unwrap();
        let before = m.clock.now();
        m.zero(f);
        assert_eq!(m.clock.now() - before, Ns::from_us(57));
        assert_eq!(m.stats.pages_cleared(), 1);
    }

    #[test]
    fn shared_frame_survives_until_last_ref() {
        let mut m = mem();
        let f = m.alloc().unwrap();
        m.write(f, 0, b"abc");
        m.add_ref(f);
        assert!(!m.drop_ref(f));
        let mut b = [0u8; 3];
        m.read(f, 0, &mut b);
        assert_eq!(&b, b"abc");
        assert!(m.drop_ref(f));
    }

    #[test]
    fn fork_copies_contents_and_charges() {
        let mut m = mem();
        let a = m.alloc().unwrap();
        m.write(a, 100, b"hello");
        let copies_before = m.stats.pages_copied();
        let b = m.fork(a).unwrap();
        assert_eq!(m.stats.pages_copied(), copies_before + 1);
        let mut buf = [0u8; 5];
        m.read(b, 100, &mut buf);
        assert_eq!(&buf, b"hello");
        // The copy is by value: mutating the original leaves the fork alone.
        m.write(a, 100, b"world");
        m.read(b, 100, &mut buf);
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn copy_between_charges_proportionally() {
        let mut m = mem();
        let a = m.alloc().unwrap();
        let b = m.alloc().unwrap();
        m.write(a, 0, &[7u8; 2048]);
        let t0 = m.clock.now();
        m.copy_between(a, 0, b, 1024, 2048);
        let cost = m.clock.now() - t0;
        // Half a page should cost half of page_copy.
        assert_eq!(cost, Ns(115_000 / 2));
        let mut buf = [0u8; 2048];
        m.read(b, 1024, &mut buf);
        assert_eq!(buf, [7u8; 2048]);
    }

    #[test]
    fn template_fill_repeats_pattern() {
        let mut m = mem();
        let f = m.alloc().unwrap();
        m.fill_with_template(f, &[1, 2, 3]);
        let mut b = [0u8; 6];
        m.read(f, 0, &mut b);
        assert_eq!(b, [1, 2, 3, 1, 2, 3]);
        m.fill_with_template(f, &[]);
        m.read(f, 0, &mut b);
        assert_eq!(b, [0; 6]);
    }

    #[test]
    #[should_panic(expected = "drop_ref on free frame")]
    fn double_free_panics() {
        let mut m = mem();
        let f = m.alloc().unwrap();
        let copy = f;
        m.drop_ref(f);
        // Frame is free now; a second drop must be caught.
        m.drop_ref(copy);
    }
}
