//! A finite, ASID-tagged, software-refilled TLB model.
//!
//! The paper attributes the entire 3 µs/page cost of the cached/volatile
//! case to TLB misses ("TLB misses are handled in software in the MIPS
//! architecture"), and attributes part of the user-netserver-user penalty to
//! "the exhaustion of cache and TLB when a third domain is added to the data
//! path" — so the TLB is modelled with real capacity and LRU replacement,
//! not as an always-hit abstraction.
//!
//! The TLB itself is pure state; the [`crate::Machine`] access engine
//! charges refill and flush costs.

use crate::phys::FrameId;
use crate::types::{DomainId, Prot, Vpn};

#[derive(Debug, Clone, Copy)]
struct TlbEntry {
    domain: DomainId,
    vpn: Vpn,
    frame: FrameId,
    prot: Prot,
    last_used: u64,
}

/// The translation lookaside buffer.
#[derive(Debug)]
pub struct Tlb {
    capacity: usize,
    entries: Vec<TlbEntry>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates a TLB with `capacity` entries (R3000: 64).
    pub fn new(capacity: usize) -> Tlb {
        assert!(capacity > 0, "TLB must have at least one entry");
        Tlb {
            capacity,
            entries: Vec::with_capacity(capacity),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up a translation; refreshes the entry's LRU position on a hit.
    pub fn lookup(&mut self, domain: DomainId, vpn: Vpn) -> Option<(FrameId, Prot)> {
        self.tick += 1;
        let tick = self.tick;
        match self
            .entries
            .iter_mut()
            .find(|e| e.domain == domain && e.vpn == vpn)
        {
            Some(e) => {
                e.last_used = tick;
                self.hits += 1;
                Some((e.frame, e.prot))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Installs (or replaces) a translation, evicting the LRU entry if full.
    pub fn insert(&mut self, domain: DomainId, vpn: Vpn, frame: FrameId, prot: Prot) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.domain == domain && e.vpn == vpn)
        {
            e.frame = frame;
            e.prot = prot;
            e.last_used = tick;
            return;
        }
        if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("TLB non-empty when full");
            self.entries.swap_remove(lru);
        }
        self.entries.push(TlbEntry {
            domain,
            vpn,
            frame,
            prot,
            last_used: tick,
        });
    }

    /// Removes one translation; returns whether it was present (a present
    /// entry is what makes a consistency flush necessary and costly).
    pub fn invalidate(&mut self, domain: DomainId, vpn: Vpn) -> bool {
        let before = self.entries.len();
        self.entries
            .retain(|e| !(e.domain == domain && e.vpn == vpn));
        self.entries.len() != before
    }

    /// Batched invalidation: removes every translation for `domain` with a
    /// VPN in `[start, start + pages)` in **one** pass over the entry
    /// array, where per-page [`Tlb::invalidate`] calls would make `pages`
    /// passes. Returns how many entries were removed.
    pub fn invalidate_range(&mut self, domain: DomainId, start: Vpn, pages: u64) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| {
            !(e.domain == domain && e.vpn.0 >= start.0 && e.vpn.0 < start.0 + pages)
        });
        before - self.entries.len()
    }

    /// Removes every translation belonging to `domain` (domain teardown).
    /// Returns how many entries were removed.
    pub fn invalidate_domain(&mut self, domain: DomainId) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.domain != domain);
        before - self.entries.len()
    }

    /// Drops everything (full flush).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of currently resident translations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no translations are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// (hits, misses) since creation.
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D0: DomainId = DomainId(0);
    const D1: DomainId = DomainId(1);

    #[test]
    fn miss_then_hit() {
        let mut tlb = Tlb::new(4);
        assert_eq!(tlb.lookup(D0, Vpn(1)), None);
        tlb.insert(D0, Vpn(1), FrameId(7), Prot::Read);
        assert_eq!(tlb.lookup(D0, Vpn(1)), Some((FrameId(7), Prot::Read)));
        assert_eq!(tlb.hit_miss(), (1, 1));
    }

    #[test]
    fn entries_are_domain_tagged() {
        let mut tlb = Tlb::new(4);
        tlb.insert(D0, Vpn(1), FrameId(7), Prot::ReadWrite);
        // Same VPN, different domain: distinct entry (the fbuf region maps
        // the same VA in every domain with different permissions).
        assert_eq!(tlb.lookup(D1, Vpn(1)), None);
        tlb.insert(D1, Vpn(1), FrameId(7), Prot::Read);
        assert_eq!(tlb.lookup(D0, Vpn(1)), Some((FrameId(7), Prot::ReadWrite)));
        assert_eq!(tlb.lookup(D1, Vpn(1)), Some((FrameId(7), Prot::Read)));
    }

    #[test]
    fn lru_eviction() {
        let mut tlb = Tlb::new(2);
        tlb.insert(D0, Vpn(1), FrameId(1), Prot::Read);
        tlb.insert(D0, Vpn(2), FrameId(2), Prot::Read);
        // Touch vpn 1 so vpn 2 is LRU.
        tlb.lookup(D0, Vpn(1));
        tlb.insert(D0, Vpn(3), FrameId(3), Prot::Read);
        assert!(tlb.lookup(D0, Vpn(1)).is_some());
        assert!(tlb.lookup(D0, Vpn(2)).is_none());
        assert!(tlb.lookup(D0, Vpn(3)).is_some());
    }

    #[test]
    fn insert_existing_updates_in_place() {
        let mut tlb = Tlb::new(2);
        tlb.insert(D0, Vpn(1), FrameId(1), Prot::ReadWrite);
        tlb.insert(D0, Vpn(1), FrameId(1), Prot::Read);
        assert_eq!(tlb.len(), 1);
        assert_eq!(tlb.lookup(D0, Vpn(1)), Some((FrameId(1), Prot::Read)));
    }

    #[test]
    fn invalidate_reports_presence() {
        let mut tlb = Tlb::new(4);
        tlb.insert(D0, Vpn(1), FrameId(1), Prot::Read);
        assert!(tlb.invalidate(D0, Vpn(1)));
        assert!(!tlb.invalidate(D0, Vpn(1)));
        assert!(tlb.is_empty());
    }

    #[test]
    fn invalidate_domain_sweeps_only_that_domain() {
        let mut tlb = Tlb::new(8);
        tlb.insert(D0, Vpn(1), FrameId(1), Prot::Read);
        tlb.insert(D0, Vpn(2), FrameId(2), Prot::Read);
        tlb.insert(D1, Vpn(1), FrameId(1), Prot::Read);
        assert_eq!(tlb.invalidate_domain(D0), 2);
        assert_eq!(tlb.len(), 1);
        assert!(tlb.lookup(D1, Vpn(1)).is_some());
    }

    #[test]
    fn invalidate_range_sweeps_window_in_one_pass() {
        let mut tlb = Tlb::new(8);
        tlb.insert(D0, Vpn(1), FrameId(1), Prot::Read);
        tlb.insert(D0, Vpn(2), FrameId(2), Prot::Read);
        tlb.insert(D0, Vpn(3), FrameId(3), Prot::Read);
        tlb.insert(D0, Vpn(9), FrameId(9), Prot::Read);
        tlb.insert(D1, Vpn(2), FrameId(2), Prot::Read);
        // [1, 4) for D0: removes vpns 1..=3, spares vpn 9 and D1's vpn 2.
        assert_eq!(tlb.invalidate_range(D0, Vpn(1), 3), 3);
        assert_eq!(tlb.len(), 2);
        assert!(tlb.lookup(D0, Vpn(9)).is_some());
        assert!(tlb.lookup(D1, Vpn(2)).is_some());
        // Empty window and re-sweep are no-ops.
        assert_eq!(tlb.invalidate_range(D0, Vpn(1), 0), 0);
        assert_eq!(tlb.invalidate_range(D0, Vpn(1), 3), 0);
    }

    #[test]
    fn thrashing_working_set_misses() {
        // A working set larger than the TLB keeps missing — the effect the
        // paper blames for the third-domain penalty.
        let mut tlb = Tlb::new(4);
        for round in 0..3 {
            for i in 0..8u64 {
                if tlb.lookup(D0, Vpn(i)).is_none() {
                    tlb.insert(D0, Vpn(i), FrameId(i as u32), Prot::Read);
                }
            }
            if round > 0 {
                // After warmup, every access still misses (sequential sweep
                // over 2x capacity with LRU).
                let (_, misses) = tlb.hit_miss();
                assert!(misses >= 8 * (round + 1));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        Tlb::new(0);
    }
}
