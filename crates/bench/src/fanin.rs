//! Massive fan-in under pluggable chunk-admission policies.
//!
//! This is the workload the quota-policy layer (`fbuf::policy`,
//! DESIGN.md §15) exists for: tens of thousands of flows funnel into a
//! sharded fleet of fbuf engines, path popularity follows a Zipf law,
//! and arrivals are bursty on/off processes. Under that shape a static
//! per-path chunk quota fails in both directions at once — the handful
//! of hot paths starve at their cap while hundreds of cold paths
//! strand free chunks behind headroom they never use. The dynamic
//! policies size each path's cap from the free pool instead, so the
//! same total buffer memory absorbs the skew.
//!
//! Structure of one run ([`run_fanin`]):
//!
//! * The coordinator assigns every flow a home path by sampling
//!   [`Zipf`] ranks, then partitions paths across shards by rank
//!   (`rank % shards`), one independent [`FbufSystem`] per shard on
//!   its own OS thread — the sharded event-loop engine of DESIGN.md
//!   §12/§14, with every control transfer posted through
//!   [`FbufSystem::hop`].
//! * Each flow gates its arrivals with an [`OnOff`] burst process.
//!   An active step offers one transfer: allocate a cached fbuf on the
//!   home path, stamp it, send it producer → consumer, and hold the
//!   references for `hold_steps` steps before freeing (the in-flight
//!   window that creates real buffer pressure).
//! * An allocation denied by admission (quota or region) is retried on
//!   subsequent steps; after `retries` failures the transfer is
//!   **dropped**. The wait from arrival to the successful grant is the
//!   **alloc latency** (simulated ns; zero for a first-try grant).
//!
//! Everything is a pure function of [`FaninConfig::seed`]: the Zipf
//! assignment, every gate, and each shard's step loop replay bit for
//! bit, so two runs at the same config produce identical reports
//! (pinned by the tests below).

use std::thread;

use fbuf::{AllocMode, FbufError, FbufId, FbufSystem, PathId, QuotaPolicy, SendMode};
use fbuf_sim::metrics::DEFAULT_CADENCE_NS;
use fbuf_sim::workload::{OnOff, Zipf};
use fbuf_sim::{Histogram, MachineConfig, Rng, SeriesSnapshot, StatsSnapshot};
use fbuf_vm::DomainId;

/// Parameters of one fan-in run. All policies are compared at the same
/// config — in particular the same [`MachineConfig`], so every policy
/// works with **equal total buffer memory**.
#[derive(Debug, Clone)]
pub struct FaninConfig {
    /// Total simulated flows across all shards.
    pub flows: usize,
    /// Data paths (each is a producer → consumer domain pair).
    pub paths: usize,
    /// Independent engine shards (one OS thread each).
    pub shards: usize,
    /// Steps of the per-shard arrival loop.
    pub steps: u64,
    /// Zipf skew of path popularity (`s = 0` is uniform).
    pub zipf_s: f64,
    /// Mean burst length of a flow, in steps.
    pub mean_on: u64,
    /// Mean silence between bursts, in steps.
    pub mean_off: u64,
    /// Steps a delivered buffer is held before both references drop.
    pub hold_steps: u64,
    /// Admission-denied retries before an arrival is dropped.
    pub retries: u32,
    /// Pages per fbuf.
    pub pages: u64,
    /// The chunk-admission policy under test.
    pub policy: QuotaPolicy,
    /// Master seed; every random choice derives from it.
    pub seed: u64,
    /// Machine geometry (identical across compared policies).
    pub machine: MachineConfig,
}

impl FaninConfig {
    /// The default fan-in scenario: 20 k flows over 512 paths on
    /// 4 shards, Zipf 1.1, 20% duty cycle in bursts of mean 40 steps.
    pub fn new(policy: QuotaPolicy, seed: u64) -> FaninConfig {
        FaninConfig {
            flows: 20_000,
            paths: 512,
            shards: 4,
            steps: 400,
            zipf_s: 1.1,
            mean_on: 40,
            mean_off: 160,
            hold_steps: 4,
            retries: 3,
            pages: 1,
            policy,
            seed,
            machine: fanin_machine(),
        }
    }

    /// Chunks in one shard's fbuf region.
    pub fn chunks_per_shard(&self) -> u64 {
        self.machine.fbuf_region_size / self.machine.chunk_size
    }
}

/// The fan-in machine: DecStation timing, but a region sized so that
/// **admission policy** is the binding constraint — 1024 chunks per
/// shard against a static per-path quota of 4, with physical memory
/// generous enough that frame reclamation never interferes. The free
/// pool covers the skewed aggregate demand, so what separates the
/// policies is purely how much of it each lets a hot path reach.
pub fn fanin_machine() -> MachineConfig {
    let mut cfg = MachineConfig::decstation_5000_200();
    cfg.phys_mem = 128 << 20;
    cfg.fbuf_region_size = 64 << 20; // 1024 chunks of 64 KB per shard
    cfg.max_chunks_per_path = 4; // the static quota under test
    cfg
}

/// Priority class of a path by popularity rank: the hottest sixteenth
/// of paths are class 3 (highest weight under
/// [`QuotaPolicy::PriorityWeighted`]), the next fractions step down to
/// class 0 for the cold half. Static and FbDynamic ignore the class.
pub fn class_of_rank(rank: usize, paths: usize) -> u8 {
    if rank < paths.div_ceil(16) {
        3
    } else if rank < paths.div_ceil(4) {
        2
    } else if rank < paths.div_ceil(2) {
        1
    } else {
        0
    }
}

/// What one fan-in run measured, merged across shards.
#[derive(Debug, Clone)]
pub struct FaninReport {
    /// Transfers offered (arrivals that reached a first alloc attempt).
    pub offered: u64,
    /// Transfers delivered producer → consumer.
    pub completed: u64,
    /// Arrivals dropped after exhausting admission retries.
    pub drops: u64,
    /// Arrivals still waiting on admission when the run ended.
    pub unresolved: u64,
    /// Organic chunk-admission denials (the `chunk_quota_denials`
    /// counter; one retry loop can accrue several).
    pub denials: u64,
    /// Payload bytes delivered.
    pub goodput_bytes: u64,
    /// Arrival-to-grant wait of every delivered transfer, simulated ns.
    pub alloc_wait: Histogram,
    /// Mean granted chunks across all shards' step samples.
    pub occupancy_mean: f64,
    /// Peak granted chunks on any single shard.
    pub occupancy_peak: u64,
    /// Largest per-shard simulated clock at the end, ns.
    pub sim_ns: u64,
    /// Fleet-merged whole-run counters.
    pub counters: StatsSnapshot,
    /// Shard 0's gauge telemetry (occupancy, thresholds, inboxes).
    pub telemetry: Vec<SeriesSnapshot>,
}

impl FaninReport {
    /// `offered` must equal `completed + drops + unresolved`; returns
    /// the conservation violation if it does not.
    pub fn check_conservation(&self) -> Result<(), String> {
        let accounted = self.completed + self.drops + self.unresolved;
        if self.offered != accounted {
            return Err(format!(
                "fan-in lost arrivals: {} offered != {} completed + {} dropped + {} unresolved",
                self.offered, self.completed, self.drops, self.unresolved
            ));
        }
        Ok(())
    }
}

/// An arrival waiting for admission: when it first asked, and how many
/// times it has been refused.
struct Pending {
    first_ns: u64,
    tries: u32,
}

/// One flow's per-shard state.
struct Flow {
    /// Index into the shard's local path table.
    local_path: usize,
    gate: OnOff,
    pending: Option<Pending>,
}

/// A delivered buffer waiting out its hold window.
struct Held {
    id: FbufId,
    prod: DomainId,
    cons: DomainId,
}

struct ShardOutcome {
    offered: u64,
    completed: u64,
    drops: u64,
    unresolved: u64,
    bytes: u64,
    alloc_wait: Histogram,
    occ_sum: u128,
    occ_samples: u64,
    occ_peak: u64,
    sim_ns: u64,
    counters: StatsSnapshot,
    telemetry: Vec<SeriesSnapshot>,
}

/// Runs the fan-in workload and merges every shard's outcome.
///
/// Errors only on structural failure (a path refused, an unexpected
/// fault); admission denials are data, not errors.
pub fn run_fanin(cfg: &FaninConfig) -> Result<FaninReport, String> {
    assert!(cfg.flows >= 1 && cfg.paths >= 1 && cfg.shards >= 1);
    assert!(cfg.paths >= cfg.shards, "every shard needs a path");

    // Coordinator: Zipf-assign each flow a home path rank, then hand
    // each shard the ranks it owns. Domain-separated stream tag so the
    // assignment never correlates with the per-shard loops.
    let zipf = Zipf::new(cfg.paths, cfg.zipf_s);
    let mut rng = Rng::new(cfg.seed ^ 0xfa91_0a55_1697_0001);
    let mut shard_flows: Vec<Vec<usize>> = vec![Vec::new(); cfg.shards];
    for _ in 0..cfg.flows {
        let rank = zipf.sample(&mut rng);
        shard_flows[rank % cfg.shards].push(rank);
    }

    let outcomes: Vec<Result<ShardOutcome, String>> = thread::scope(|scope| {
        let handles: Vec<_> = shard_flows
            .into_iter()
            .enumerate()
            .map(|(shard, ranks)| {
                scope.spawn(move || run_shard(cfg, shard, &ranks))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard thread panicked"))
            .collect()
    });

    let mut report = FaninReport {
        offered: 0,
        completed: 0,
        drops: 0,
        unresolved: 0,
        denials: 0,
        goodput_bytes: 0,
        alloc_wait: Histogram::new(),
        occupancy_mean: 0.0,
        occupancy_peak: 0,
        sim_ns: 0,
        counters: StatsSnapshot::default(),
        telemetry: Vec::new(),
    };
    let (mut occ_sum, mut occ_samples) = (0u128, 0u64);
    for outcome in outcomes {
        let o = outcome?;
        report.offered += o.offered;
        report.completed += o.completed;
        report.drops += o.drops;
        report.unresolved += o.unresolved;
        report.goodput_bytes += o.bytes;
        report.alloc_wait.merge(&o.alloc_wait);
        occ_sum += o.occ_sum;
        occ_samples += o.occ_samples;
        report.occupancy_peak = report.occupancy_peak.max(o.occ_peak);
        report.sim_ns = report.sim_ns.max(o.sim_ns);
        report.counters = report.counters.merge(&o.counters);
        if report.telemetry.is_empty() {
            report.telemetry = o.telemetry;
        }
    }
    report.denials = report.counters.chunk_quota_denials;
    report.occupancy_mean = if occ_samples == 0 {
        0.0
    } else {
        occ_sum as f64 / occ_samples as f64
    };
    report.check_conservation()?;
    Ok(report)
}

/// One shard's whole run: build its engine, its slice of the path
/// table, and its flows, then drive the arrival loop to completion.
fn run_shard(cfg: &FaninConfig, shard: usize, ranks: &[usize]) -> Result<ShardOutcome, String> {
    let mut sys = FbufSystem::new(cfg.machine.clone());
    sys.set_quota_policy(cfg.policy);
    if shard == 0 {
        // Gauge telemetry from one shard is representative; the series
        // registry's capacity bounds the per-path explosion by refusing
        // (and counting) the excess.
        let m = sys.machine().metrics_ref();
        m.set_enabled(true);
        m.set_cadence(DEFAULT_CADENCE_NS);
    }

    // Local path table: every rank this shard owns, densely indexed.
    let mut paths: Vec<(PathId, DomainId, DomainId)> = Vec::new();
    let mut local_of = vec![usize::MAX; cfg.paths];
    for rank in (shard..cfg.paths).step_by(cfg.shards) {
        let prod = sys.create_domain();
        let cons = sys.create_domain();
        let path = sys
            .create_path(vec![prod, cons])
            .map_err(|e| format!("shard {shard}: create_path rank {rank}: {e}"))?;
        sys.set_path_class(path, class_of_rank(rank, cfg.paths))
            .map_err(|e| format!("shard {shard}: set_path_class rank {rank}: {e}"))?;
        local_of[rank] = paths.len();
        paths.push((path, prod, cons));
    }

    let mut rng = Rng::new(cfg.seed ^ 0xfa91_5bad_0000_0002 ^ ((shard as u64) << 32));
    let mut flows: Vec<Flow> = ranks
        .iter()
        .map(|&rank| Flow {
            local_path: local_of[rank],
            gate: OnOff::new(&mut rng, cfg.mean_on, cfg.mean_off),
            pending: None,
        })
        .collect();

    let len = cfg.pages * cfg.machine.page_size;
    let total_chunks = cfg.chunks_per_shard();
    let ring_len = (cfg.hold_steps + 1) as usize;
    let mut release_ring: Vec<Vec<Held>> = (0..ring_len).map(|_| Vec::new()).collect();

    let mut out = ShardOutcome {
        offered: 0,
        completed: 0,
        drops: 0,
        unresolved: 0,
        bytes: 0,
        alloc_wait: Histogram::new(),
        occ_sum: 0,
        occ_samples: 0,
        occ_peak: 0,
        sim_ns: 0,
        counters: StatsSnapshot::default(),
        telemetry: Vec::new(),
    };

    for step in 0..cfg.steps {
        // Buffers whose hold window expires this step drop both
        // references (consumer first, then the originating producer,
        // which parks the cached buffer on its path free list).
        for held in release_ring[(step as usize) % ring_len].drain(..) {
            sys.free(held.id, held.cons)
                .map_err(|e| format!("shard {shard}: consumer free: {e}"))?;
            sys.free(held.id, held.prod)
                .map_err(|e| format!("shard {shard}: producer free: {e}"))?;
        }

        for flow in &mut flows {
            // A refused arrival retries before the gate may offer new
            // work — it is head-of-line for its flow.
            let arrival = match flow.pending.take() {
                Some(p) => p,
                None => {
                    if !flow.gate.step(&mut rng) {
                        continue;
                    }
                    out.offered += 1;
                    Pending {
                        first_ns: sys.machine().now().0,
                        tries: 0,
                    }
                }
            };
            let (path, prod, cons) = paths[flow.local_path];
            let wait = sys.machine().now().0 - arrival.first_ns;
            match sys.alloc(prod, AllocMode::Cached(path), len) {
                Ok(id) => {
                    sys.write_fbuf(prod, id, 0, &arrival.first_ns.to_le_bytes())
                        .map_err(|e| format!("shard {shard}: stamp: {e}"))?;
                    sys.send(id, prod, cons, SendMode::Volatile)
                        .map_err(|e| format!("shard {shard}: send: {e}"))?;
                    // The control transfer rides the event-loop engine.
                    let _notices = sys.hop(prod, cons);
                    out.alloc_wait.record(wait);
                    out.completed += 1;
                    out.bytes += len;
                    release_ring[((step + cfg.hold_steps) as usize) % ring_len]
                        .push(Held { id, prod, cons });
                }
                Err(FbufError::QuotaExceeded { .. }) | Err(FbufError::RegionExhausted) => {
                    if arrival.tries >= cfg.retries {
                        out.drops += 1;
                    } else {
                        flow.pending = Some(Pending {
                            first_ns: arrival.first_ns,
                            tries: arrival.tries + 1,
                        });
                    }
                }
                Err(e) => return Err(format!("shard {shard}: alloc: {e}")),
            }
        }

        let occ = total_chunks - sys.free_chunks();
        out.occ_sum += u128::from(occ);
        out.occ_samples += 1;
        out.occ_peak = out.occ_peak.max(occ);
        sys.sample_metrics();

        debug_assert_eq!(sys.engine_pending(), 0, "hop() drains the loop");
    }

    // Drain the hold windows so every delivered buffer is freed; the
    // arrivals still mid-retry are reported, not silently forgotten.
    for bucket in &mut release_ring {
        for held in bucket.drain(..) {
            sys.free(held.id, held.cons)
                .map_err(|e| format!("shard {shard}: drain consumer free: {e}"))?;
            sys.free(held.id, held.prod)
                .map_err(|e| format!("shard {shard}: drain producer free: {e}"))?;
        }
    }
    out.unresolved = flows.iter().filter(|f| f.pending.is_some()).count() as u64;
    out.sim_ns = sys.machine().now().0;
    out.counters = sys.stats().snapshot();
    if shard == 0 {
        out.telemetry = sys.machine().metrics_ref().series();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(policy: QuotaPolicy) -> FaninConfig {
        let mut cfg = FaninConfig::new(policy, 0xfa21_0001);
        cfg.flows = 600;
        cfg.paths = 32;
        cfg.shards = 2;
        cfg.steps = 80;
        cfg.machine.fbuf_region_size = 8 << 20; // 128 chunks per shard
        cfg
    }

    #[test]
    fn fan_in_conserves_arrivals_and_replays_deterministically() {
        let cfg = small(QuotaPolicy::Static);
        let a = run_fanin(&cfg).unwrap();
        let b = run_fanin(&cfg).unwrap();
        assert!(a.offered > 0 && a.completed > 0, "workload must do work");
        a.check_conservation().unwrap();
        assert_eq!(a.offered, b.offered);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.drops, b.drops);
        assert_eq!(a.denials, b.denials);
        assert_eq!(a.sim_ns, b.sim_ns);
        assert_eq!(a.alloc_wait.count(), b.alloc_wait.count());
        assert_eq!(a.alloc_wait.max(), b.alloc_wait.max());
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn skewed_fan_in_favours_the_dynamic_policy() {
        // The acceptance scenario in miniature: same memory, same
        // flows, Zipf-hot paths. The static quota must drop strictly
        // more arrivals and stall the tail strictly longer.
        let st = run_fanin(&small(QuotaPolicy::Static)).unwrap();
        let dy = run_fanin(&small(QuotaPolicy::fb_dynamic())).unwrap();
        assert!(
            dy.drops < st.drops,
            "dynamic {} drops vs static {}",
            dy.drops,
            st.drops
        );
        assert!(
            dy.alloc_wait.p99() < st.alloc_wait.p99(),
            "dynamic p99 {} vs static {}",
            dy.alloc_wait.p99(),
            st.alloc_wait.p99()
        );
    }

    #[test]
    fn telemetry_and_occupancy_are_populated() {
        let r = run_fanin(&small(QuotaPolicy::priority_weighted())).unwrap();
        assert!(!r.telemetry.is_empty(), "shard 0 samples gauges");
        assert!(r.telemetry.iter().any(|s| s.name == "free_chunks"));
        assert!(r.occupancy_peak > 0);
        assert!(r.occupancy_mean > 0.0);
        assert!(r.goodput_bytes > 0);
    }

    #[test]
    fn priority_classes_cover_the_popularity_buckets() {
        let classes: Vec<u8> = (0..64).map(|r| class_of_rank(r, 64)).collect();
        assert_eq!(classes[0], 3);
        assert_eq!(classes[8], 2);
        assert_eq!(classes[20], 1);
        assert_eq!(classes[40], 0);
        assert!(classes.windows(2).all(|w| w[0] >= w[1]), "monotone");
    }
}
