//! Trace-driven workloads: mixed message sizes and multi-flow traffic.
//!
//! The paper's figures sweep one size at a time; a real server sees a mix.
//! This module generates reproducible traces (seeded `fbuf_sim::Rng`) modelling the
//! applications the paper motivates — bulk transfers with interleaved
//! small control messages across several connections — and replays them
//! through the end-to-end harness, comparing the buffer regimes under a
//! realistic interleaving.

use fbuf_net::{DomainSetup, EndToEnd, EndToEndConfig};
use fbuf_sim::{Json, MachineConfig, Rng, ToJson};

/// One message of a trace.
#[derive(Debug, Clone, Copy)]
pub struct TraceEntry {
    /// Message size in bytes.
    pub size: u64,
    /// The flow (VCI) it belongs to.
    pub vci: u32,
}

/// A reproducible mixed workload.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Seed used.
    pub seed: u64,
    /// Messages in arrival order.
    pub entries: Vec<TraceEntry>,
}

impl Trace {
    /// Generates `n` messages over `flows` flows: 80% small control
    /// messages (256 B – 4 KB), 20% bulk transfers (64 KB – 512 KB),
    /// log-uniform within each class.
    pub fn generate(seed: u64, n: usize, flows: u32) -> Trace {
        assert!(flows > 0);
        let mut rng = Rng::new(seed);
        let entries = (0..n)
            .map(|_| {
                let bulk = rng.chance(0.2);
                let (lo, hi) = if bulk {
                    (16u64, 19u64) // 2^16 .. 2^19
                } else {
                    (8u64, 12u64) // 2^8 .. 2^12
                };
                let exp = rng.range(lo, hi + 1);
                let size = (1u64 << exp) + rng.below(1u64 << exp);
                TraceEntry {
                    size: size.min(1 << 19),
                    vci: rng.below(flows as u64) as u32,
                }
            })
            .collect();
        Trace { seed, entries }
    }

    /// Total bytes in the trace.
    pub fn bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.size).sum()
    }
}

impl ToJson for TraceEntry {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("size", self.size.to_json()),
            ("vci", self.vci.to_json()),
        ])
    }
}

impl ToJson for Trace {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("seed", self.seed.to_json()),
            ("entries", self.entries.to_json()),
        ])
    }
}

impl ToJson for TraceReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("regime", self.regime.to_json()),
            ("messages", self.messages.to_json()),
            ("bytes", self.bytes.to_json()),
            ("throughput_mbps", self.throughput_mbps.to_json()),
            ("rx_cpu", self.rx_cpu.to_json()),
        ])
    }
}

/// Result of replaying a trace.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// `cached` or `uncached`.
    pub regime: String,
    /// Messages replayed.
    pub messages: usize,
    /// Application bytes moved.
    pub bytes: u64,
    /// Aggregate throughput in Mb/s.
    pub throughput_mbps: f64,
    /// Receive-host CPU utilization.
    pub rx_cpu: f64,
}

/// Replays a trace through the end-to-end harness under both buffer
/// regimes.
pub fn replay(trace: &Trace) -> Vec<TraceReport> {
    let mut cfg = MachineConfig::decstation_5000_200();
    cfg.phys_mem = 24 << 20;
    [true, false]
        .into_iter()
        .map(|cached| {
            let e2e_cfg = if cached {
                EndToEndConfig::fig5(DomainSetup::User)
            } else {
                EndToEndConfig::fig6(DomainSetup::User)
            };
            let mut e = EndToEnd::new(cfg.clone(), e2e_cfg);
            // Warm up each flow once.
            let flows: u32 = trace.entries.iter().map(|t| t.vci).max().unwrap_or(0) + 1;
            for v in 0..flows {
                e.send_message(4096, v, false).expect("warm");
            }
            let mark = e.rx.fbs.machine().clock().mark();
            for entry in &trace.entries {
                e.send_message(entry.size, entry.vci, false)
                    .expect("replay");
            }
            let clock = e.rx.fbs.machine().clock();
            let elapsed = clock.since(mark);
            TraceReport {
                regime: if cached { "cached" } else { "uncached" }.to_string(),
                messages: trace.entries.len(),
                bytes: trace.bytes(),
                throughput_mbps: elapsed.mbps(trace.bytes()),
                rx_cpu: clock.utilization_since(mark),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_reproducible() {
        let a = Trace::generate(42, 50, 4);
        let b = Trace::generate(42, 50, 4);
        assert_eq!(a.entries.len(), b.entries.len());
        for (x, y) in a.entries.iter().zip(&b.entries) {
            assert_eq!((x.size, x.vci), (y.size, y.vci));
        }
        let c = Trace::generate(43, 50, 4);
        assert_ne!(a.bytes(), c.bytes());
    }

    #[test]
    fn trace_has_the_advertised_mix() {
        let t = Trace::generate(7, 400, 8);
        let bulk = t.entries.iter().filter(|e| e.size >= 64 << 10).count();
        let small = t.entries.iter().filter(|e| e.size < 8 << 10).count();
        assert!(bulk > 40 && bulk < 150, "bulk {bulk}");
        assert!(small > 250, "small {small}");
        assert!(t.entries.iter().all(|e| e.vci < 8));
    }

    #[test]
    fn cached_regime_wins_on_mixed_traffic_too() {
        let t = Trace::generate(1, 30, 2);
        let reports = replay(&t);
        let cached = &reports[0];
        let uncached = &reports[1];
        assert_eq!(cached.messages, 30);
        assert!(
            cached.throughput_mbps > uncached.throughput_mbps,
            "cached {:.0} vs uncached {:.0}",
            cached.throughput_mbps,
            uncached.throughput_mbps
        );
    }
}
