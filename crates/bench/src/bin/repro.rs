//! Regenerates the paper's tables and figures on the simulated machine.
//!
//! ```text
//! repro all                 # everything below, in order
//! repro table1              # Table 1
//! repro fig3|fig4|fig5|fig6 # throughput curves
//! repro cpuload             # §4 receive-side CPU load
//! repro remap               # §2.2.1 DASH-style remap measurements
//! repro ablate-opts         # optimization-stack ablation
//! repro ablate-lifo         # LIFO vs FIFO free lists
//! repro ablate-paths        # driver VCI-cache sweep
//! repro ablate-notices      # deallocation-notice thresholds
//! repro ablate-bus          # TurboChannel contention ablation
//! ```

use fbuf_bench::report::{print_cost_rows, print_curves};
use fbuf_bench::{ablations, cpuload, fig3, fig4, fig5, remap, table1, workload};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    let known = [
        "table1",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "cpuload",
        "remap",
        "trace",
        "ablate-opts",
        "ablate-lifo",
        "ablate-paths",
        "ablate-notices",
        "ablate-bus",
        "all",
    ];
    if !known.contains(&what) {
        eprintln!("unknown experiment '{what}'; one of: {}", known.join(", "));
        std::process::exit(2);
    }
    let run = |name: &str| what == "all" || what == name;

    if run("table1") {
        print_cost_rows(
            "Table 1: incremental per-page costs and asymptotic throughput",
            &table1::run(),
        );
    }
    if run("fig3") {
        let curves = fig3::run(&fig3::default_sizes(), 4);
        print_curves(
            "Figure 3: throughput of a single domain boundary crossing",
            &curves,
        );
    }
    if run("fig4") {
        let curves = fig4::run(&fig4::default_sizes(), 3);
        print_curves(
            "Figure 4: throughput of a UDP/IP local loopback test",
            &curves,
        );
    }
    if run("fig5") {
        let curves = fig5::run(true, &fig5::default_sizes(), 4);
        print_curves(
            "Figure 5: UDP/IP end-to-end throughput, cached/volatile fbufs",
            &curves,
        );
    }
    if run("fig6") {
        let curves = fig5::run(false, &fig5::default_sizes(), 4);
        print_curves(
            "Figure 6: UDP/IP end-to-end throughput, uncached/non-volatile fbufs",
            &curves,
        );
    }
    if run("cpuload") {
        println!("\n== §4: receive-host CPU load, 1 MB messages (user-user) ==");
        println!(
            "{:<10} {:>8} {:>10} {:>14}",
            "regime", "PDU", "CPU load", "throughput"
        );
        for r in cpuload::run() {
            println!(
                "{:<10} {:>6}KB {:>9.0}% {:>9.0} Mb/s",
                r.regime,
                r.pdu >> 10,
                r.rx_cpu * 100.0,
                r.throughput_mbps
            );
        }
    }
    if run("remap") {
        println!("\n== §2.2.1: DASH-style page remapping, re-measured ==");
        println!("{:<12} {:>10} {:>14}", "mode", "cleared", "per-page cost");
        for r in remap::run() {
            println!(
                "{:<12} {:>9.0}% {:>11.2} us",
                r.mode,
                r.clear_fraction * 100.0,
                r.per_page_us
            );
        }
    }
    if run("trace") {
        println!("\n== Trace replay: 120 mixed messages, 4 flows (user-user) ==");
        let trace = workload::Trace::generate(2026, 120, 4);
        println!(
            "trace: {} messages, {:.1} MB total (seed {})",
            trace.entries.len(),
            trace.bytes() as f64 / (1 << 20) as f64,
            trace.seed
        );
        for r in workload::replay(&trace) {
            println!(
                "{:<10} {:>7.0} Mb/s, rx CPU {:>3.0}%",
                r.regime,
                r.throughput_mbps,
                r.rx_cpu * 100.0
            );
        }
    }
    if run("ablate-opts") {
        print_cost_rows(
            "Ablation: the §3.2 optimization stack, cumulatively",
            &ablations::optimization_stack(),
        );
    }
    if run("ablate-lifo") {
        println!("\n== Ablation: LIFO vs FIFO free-list order under memory pressure ==");
        println!(
            "{:<8} {:>14} {:>20}",
            "policy", "resident hits", "rematerializations"
        );
        for r in ablations::lifo_vs_fifo(12) {
            println!(
                "{:<8} {:>14} {:>20}",
                r.policy, r.resident_hits, r.rematerializations
            );
        }
    }
    if run("ablate-paths") {
        println!("\n== Ablation: driver path cache (16-entry VCI LRU) ==");
        println!(
            "{:<12} {:>16} {:>14}",
            "active VCIs", "cached fraction", "throughput"
        );
        for r in ablations::path_cache(&[1, 8, 16, 24, 32], 64) {
            println!(
                "{:<12} {:>15.0}% {:>9.0} Mb/s",
                r.active_vcis,
                r.cached_fraction * 100.0,
                r.throughput_mbps
            );
        }
    }
    if run("ablate-notices") {
        println!("\n== Ablation: deallocation-notice threshold (1000 frees, RPC every 16) ==");
        println!(
            "{:<10} {:>12} {:>10}",
            "threshold", "piggybacked", "explicit"
        );
        for r in ablations::notice_thresholds(&[4, 16, 64, 256, 1024], 1000, 16) {
            println!(
                "{:<10} {:>12} {:>10}",
                r.threshold, r.piggybacked, r.explicit
            );
        }
    }
    if run("ablate-bus") {
        println!("\n== Ablation: TurboChannel bus contention ==");
        for (label, mbps) in ablations::bus_contention() {
            println!("{label:<38} {mbps:>8.0} Mb/s");
        }
    }
}
