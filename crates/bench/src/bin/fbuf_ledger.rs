//! `fbuf-ledger`: the per-tenant accounting view of a fleet run.
//!
//! Every counter the engine keeps ([`fbuf_sim::Stats`]) answers *how
//! much work happened*; the ledger answers *on whose behalf*. This
//! target runs a sharded fleet (the same workload shape `fbuf-stress`
//! measures), folds each shard's always-on [`fbuf::Ledger`] into one
//! fleet table with [`fbuf::fleet_ledger`], and renders it two ways:
//!
//! * a top-style table on stdout — one row per tenant (protection
//!   domains, then I/O data paths), sorted by bytes carried, with
//!   transfer/alloc counts, buffer-hold time, queueing delay, IPC calls
//!   originated, and faults absorbed;
//! * `LEDGER_fleet.json` in the report directory — the full tables plus
//!   the fleet counter snapshot, a `notice_plane` summary (batches,
//!   tokens, orphans from the coalesced cross-shard notice rings), and
//!   the **conservation** verdict.
//!
//! Conservation is the whole point: summed over every tenant, the
//! ledger's bytes / transfers / IPC-call columns must reproduce the
//! fleet's whole-life counter totals exactly (the ledger is updated
//! inline on the same operations that bump the counters). This binary
//! exits non-zero if conservation fails, and `fbuf-stress --check`
//! re-validates the written artifact.
//!
//! Environment knobs:
//!
//! * `FBUF_LEDGER_SHARDS` — fleet width (default 2);
//! * `FBUF_LEDGER_CYCLES` — total local cycles across the fleet
//!   (default 4000);
//! * `FBUF_BENCH_DIR`     — report directory (default
//!   `target/bench-reports`).

use std::process::ExitCode;

use fbuf::shard::{fleet_ledger, run_fleet, FleetConfig};
use fbuf::{Ledger, TenantRow};
use fbuf_sim::{Json, MachineConfig, StatsSnapshot, ToJson};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// One formatted table row; `tenant` is e.g. `dom 3` or `path 1`.
fn print_row(tenant: &str, r: &TenantRow) {
    println!(
        "{tenant:>8} {:>12} {:>10} {:>8} {:>12} {:>12} {:>8} {:>7}",
        r.bytes, r.transfers, r.allocs, r.hold_ns, r.queue_ns, r.ipc_calls, r.faults
    );
}

/// Renders the ledger as a top-style table: domains then paths, each
/// sorted by bytes carried (busiest tenant first), empty rows skipped.
fn print_table(ledger: &Ledger) {
    println!(
        "{:>8} {:>12} {:>10} {:>8} {:>12} {:>12} {:>8} {:>7}",
        "tenant", "bytes", "transfers", "allocs", "hold_ns", "queue_ns", "ipc", "faults"
    );
    let sorted = |rows: &[TenantRow], label: &str| {
        let mut v: Vec<(usize, TenantRow)> = rows
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.is_empty())
            .map(|(i, r)| (i, *r))
            .collect();
        v.sort_by(|a, b| b.1.bytes.cmp(&a.1.bytes).then(a.0.cmp(&b.0)));
        for (i, r) in v {
            print_row(&format!("{label} {i}"), &r);
        }
    };
    sorted(&ledger.domains, "dom");
    sorted(&ledger.paths, "path");
    print_row("total", &ledger.totals());
}

fn main() -> ExitCode {
    let shards = env_u64("FBUF_LEDGER_SHARDS", 2) as usize;
    let cycles = env_u64("FBUF_LEDGER_CYCLES", 4_000);

    let mut machine = MachineConfig::decstation_5000_200();
    machine.phys_mem = 64 << 20;
    machine.chunk_size = 1 << 20;
    let cfg = FleetConfig {
        metrics: true,
        ..FleetConfig::new(shards, machine, cycles)
    };
    println!("== fbuf-ledger: {shards} shard(s), {cycles} cycles ==");
    let reports = run_fleet(&cfg);

    let ledger = fleet_ledger(&reports);
    let life = StatsSnapshot::merge_all(reports.iter().map(|r| &r.life));
    print_table(&ledger);

    // The batched notice plane, summed across shards. The coalescing
    // factor (tokens per batch) is the realized win of batch-boundary
    // flushing; orphans are protocol violations and fail the run.
    let batches: u64 = reports.iter().map(|r| r.notice_batches).sum();
    let tokens: u64 = reports.iter().map(|r| r.notice_tokens).sum();
    let orphans: u64 = reports.iter().map(|r| r.orphan_notices).sum();
    #[allow(clippy::cast_precision_loss)]
    let coalesce = if batches > 0 {
        tokens as f64 / batches as f64
    } else {
        0.0
    };
    println!(
        "notice plane: {tokens} token(s) in {batches} batch(es), coalesce x{coalesce:.2}, {orphans} orphan(s)"
    );

    let violations = ledger.conserves(&life);
    let doc = Json::obj(vec![
        ("name", "ledger_fleet".to_json()),
        ("shards", (shards as u64).to_json()),
        ("cycles", cycles.to_json()),
        ("ledger", ledger.to_json()),
        ("counters", life.to_json()),
        (
            "notice_plane",
            Json::obj(vec![
                ("batches", batches.to_json()),
                ("tokens", tokens.to_json()),
                ("orphans", orphans.to_json()),
            ]),
        ),
        (
            "conservation",
            Json::obj(vec![(
                "violations",
                Json::Arr(violations.iter().map(|v| v.as_str().to_json()).collect()),
            )]),
        ),
    ]);

    let dir = std::env::var("FBUF_BENCH_DIR").unwrap_or_else(|_| "target/bench-reports".into());
    let path = format!("{dir}/LEDGER_fleet.json");
    if let Err(e) = std::fs::create_dir_all(&dir)
        .map_err(|e| e.to_string())
        .and_then(|()| std::fs::write(&path, doc.render()).map_err(|e| e.to_string()))
    {
        eprintln!("fbuf-ledger FAILED: could not write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {path}");

    if !violations.is_empty() {
        eprintln!("fbuf-ledger FAILED: conservation violated:");
        for v in &violations {
            eprintln!("  {v}");
        }
        return ExitCode::FAILURE;
    }
    if orphans > 0 {
        eprintln!("fbuf-ledger FAILED: {orphans} notice token(s) arrived without a pending send");
        return ExitCode::FAILURE;
    }
    println!(
        "conservation: {} tenant bytes == fleet bytes_transferred; transfers and ipc_calls conserved",
        ledger.totals().bytes
    );
    ExitCode::SUCCESS
}
