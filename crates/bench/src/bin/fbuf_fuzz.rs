//! `fbuf-fuzz`: long seeded lockstep campaigns against the reference
//! model, with automatic shrinking of divergences.
//!
//! Each case is one seed: it fixes the command stream, the fault plan
//! (which sites can fail, how often, whether a domain crash is
//! scheduled), and therefore the whole execution on both sides of the
//! differ (`fbuf_model::Harness`). A campaign runs many cases; any
//! divergence is shrunk to a 1-minimal failing subsequence and written
//! to the corpus directory as a replayable `.case` file, and the run
//! exits nonzero.
//!
//! Environment knobs:
//!
//! * `FBUF_FUZZ_CASES` — cases per campaign (default 64);
//! * `FBUF_FUZZ_CMDS`  — commands per case (default 200);
//! * `FBUF_FUZZ_SEED`  — campaign seed (default a fixed constant, so CI
//!   runs are reproducible; set a fresh value to explore);
//! * `FBUF_FUZZ_CORPUS` — where to write shrunk failures (default
//!   `tests/corpus` under the current directory);
//! * `FBUF_FUZZ_ADV` — hostile personas overlaid on every case's
//!   command stream (default 0 = benign). Nonzero arms the harness's
//!   containment machinery (quota jail, revocation, token defense) and
//!   records `adv` in any shrunk corpus case so replay is bit-identical.
//!
//! Replay mode: `fbuf-fuzz --replay <dir>` re-runs every `*.case` file
//! in `<dir>` and fails if any of them diverges — the regression gate
//! that keeps once-found bugs fixed forever.

use std::path::Path;
use std::process::ExitCode;

use fbuf_model::fuzz;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| {
            let s = s.trim();
            match s.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => s.parse().ok(),
            }
        })
        .unwrap_or(default)
}

fn replay_dir(dir: &Path) -> ExitCode {
    let mut entries: Vec<_> = match std::fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "case"))
            .collect(),
        Err(e) => {
            eprintln!("fbuf-fuzz: cannot read {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    entries.sort();
    if entries.is_empty() {
        eprintln!("fbuf-fuzz: no .case files in {}", dir.display());
        return ExitCode::FAILURE;
    }
    let mut bad = 0;
    for path in &entries {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("fbuf-fuzz: {}: {e}", path.display());
                bad += 1;
                continue;
            }
        };
        let case = match fuzz::parse_corpus(&text) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("fbuf-fuzz: {}: malformed: {e}", path.display());
                bad += 1;
                continue;
            }
        };
        match fuzz::replay(&case, None) {
            Ok(out) => println!(
                "replay {} — OK ({} commands, seed {:#x})",
                path.file_name().unwrap_or_default().to_string_lossy(),
                out.commands,
                case.seed
            ),
            Err(fail) => {
                eprintln!(
                    "replay {} — DIVERGED at command {}: {}",
                    path.display(),
                    fail.fail_index,
                    fail.message
                );
                bad += 1;
            }
        }
    }
    if bad > 0 {
        eprintln!("fbuf-fuzz: {bad}/{} corpus case(s) failed", entries.len());
        ExitCode::FAILURE
    } else {
        println!("fbuf-fuzz: all {} corpus case(s) clean", entries.len());
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--replay") {
        let Some(dir) = args.get(1) else {
            eprintln!("usage: fbuf-fuzz --replay <corpus-dir>");
            return ExitCode::FAILURE;
        };
        return replay_dir(Path::new(dir));
    }

    let cases = env_u64("FBUF_FUZZ_CASES", 64) as usize;
    let cmds = env_u64("FBUF_FUZZ_CMDS", 200) as usize;
    let seed = env_u64("FBUF_FUZZ_SEED", 0xfb0f_5eed_2026_0801);
    let corpus = std::env::var("FBUF_FUZZ_CORPUS").unwrap_or_else(|_| "tests/corpus".into());
    let adv = env_u64("FBUF_FUZZ_ADV", 0) as u32;

    println!("fbuf-fuzz: {cases} case(s) × {cmds} command(s), seed {seed:#x}, adv {adv}");
    let report = fuzz::campaign(seed, cases, cmds, None, adv);
    println!(
        "fbuf-fuzz: {} command(s) executed across {} case(s)",
        report.commands, report.cases
    );
    println!("faults injected:");
    for line in report.injected_lines() {
        println!("{line}");
    }
    if report.failures.is_empty() {
        println!("fbuf-fuzz: zero divergences");
        return ExitCode::SUCCESS;
    }

    for (case_seed, fail) in &report.failures {
        eprintln!(
            "fbuf-fuzz: case seed {case_seed:#x} DIVERGED at command {}: {}",
            fail.fail_index, fail.message
        );
        let keep = fuzz::shrink(*case_seed, cmds, fail, None, adv);
        eprintln!("fbuf-fuzz: shrunk to {} command(s): {keep:?}", keep.len());
        let note = format!(
            "found by campaign seed {seed:#x}\ndiverged: {}",
            fail.message
        );
        let entry = fuzz::corpus_entry(*case_seed, cmds, Some(&keep), &note, adv);
        let dir = Path::new(&corpus);
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("fbuf-fuzz: cannot create {}: {e}", dir.display());
            continue;
        }
        let file = dir.join(format!("fuzz-{case_seed:016x}.case"));
        match std::fs::write(&file, entry) {
            Ok(()) => eprintln!("fbuf-fuzz: wrote {}", file.display()),
            Err(e) => eprintln!("fbuf-fuzz: cannot write {}: {e}", file.display()),
        }
    }
    eprintln!(
        "fbuf-fuzz: {} divergence(s) in {} case(s)",
        report.failures.len(),
        report.cases
    );
    ExitCode::FAILURE
}
