//! `fbuf-stress`: wall-clock throughput of the engine's cached hot path,
//! single- and multi-core.
//!
//! Every other target in this crate reports *simulated* time — the paper's
//! question. This one answers the engineering question underneath: how many
//! cached loopback alloc→send→send→free cycles per second can the engine
//! itself execute on the host? It drives a fleet of sharded engines
//! ([`fbuf::shard`]): each OS thread owns a complete machine running the
//! canonical three-domain (originator → netserver → receiver) pattern over
//! its partition of the data paths, with cross-shard payloads flowing over
//! SPSC rings. For every thread count the harness asserts the §3.2.2
//! steady-state invariant **per shard** (zero PTE updates, zero page
//! clears, every allocation — local, egress, and ingress — a cache hit)
//! over the measured window, then records the wall-clock scaling curve
//! (ops/sec, speedup, efficiency vs linear) under `host.scaling` in
//! `BENCH_stress.json`.
//!
//! Environment knobs:
//!
//! * `FBUF_STRESS_OPS`     — steady-state cycles per run, split across the
//!   shards (default 200000; each cycle is 1 alloc + 2 sends + 3 frees =
//!   6 fbuf operations);
//! * `FBUF_STRESS_THREADS` — comma-separated shard counts to sweep, e.g.
//!   `1,2,4,8` (default: 1,2,4,8 capped to the host's available cores —
//!   a fixed total workload, so the curve measures strong scaling);
//! * `FBUF_STRESS_PATHS`   — total logical data paths, partitioned across
//!   shards by path id (default 4 per shard at the largest thread count);
//! * `FBUF_STRESS_PAGES`   — pages per buffer (default 1);
//! * `FBUF_STRESS_CROSS`   — send one cross-shard payload every N local
//!   cycles (default 64; 0 disables cross-shard traffic);
//! * `FBUF_STRESS_BASELINE_NS` — ns per fbuf operation of a reference
//!   engine build; when set, the report carries the speedup against it;
//! * `FBUF_STRESS_MIN_SPEEDUP` — `<threads>:<factor>` (e.g. `4:2.5`);
//!   fail unless the run at `<threads>` reached `<factor>`× the first
//!   (lowest) thread count's ops/sec. Only meaningful on a host with at
//!   least `<threads>` cores, hence opt-in (`ci.sh` sets it adaptively
//!   from the core count);
//! * `FBUF_STRESS_EFF_FLOOR` — `<threads>:<efficiency>` (e.g. `2:0.6`);
//!   fail unless parallel efficiency at `<threads>` is at least
//!   `<efficiency>`, and record the floor under `host.scaling_floor` so
//!   `--check` re-enforces it against the report forever after. Opt-in
//!   for the same reason as the speedup gate;
//! * `FBUF_BENCH_DIR`      — report directory (default
//!   `target/bench-reports`).
//!
//! Check mode: `fbuf-stress --check <dir>` validates every `BENCH_*.json`
//! in `<dir>` with the in-repo parser and fails unless each carries a
//! `host` block, a `repro` header (seed, thread count, workload params
//! including the chunk-admission `policy` in force — a string, or a
//! non-empty array of strings for multi-policy sweeps like fbuf-fanin),
//! **and** a `telemetry` block (positive cadence, well-formed time-ordered
//! series; the stress report must additionally carry the batched-plane
//! gauges `ring_batch_occupancy` and `notice_coalesce_factor`); any
//! `host.scaling` block must be
//! well-formed (strictly increasing thread counts, positive ops/sec,
//! efficiency in (0, 1.05]) and still satisfy any recorded
//! `host.scaling_floor`, and the stress report itself must carry a
//! non-empty curve. `LEDGER_*.json`
//! artifacts (written by `fbuf-ledger`) are validated too: tables present
//! and the embedded conservation check clean.

use std::process::ExitCode;

use fbuf::shard::{
    fleet_ledger, fleet_snapshot, fleet_telemetry, run_fleet, FleetConfig, ShardReport,
};
use fbuf_sim::bench::{BenchRunner, ScalingPoint, Unit};
use fbuf_sim::{metrics, Json, MachineConfig, Ns, ToJson};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Like [`env_u64`] but 0 is a meaningful value (e.g. "no cross traffic").
fn env_u64_or_zero(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str) -> Option<f64> {
    std::env::var(name)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&n: &f64| n > 0.0)
}

/// The shard counts to sweep: `FBUF_STRESS_THREADS` as a comma list, or
/// 1,2,4,8 capped to the host's cores (always at least `[1]`), sorted
/// and deduplicated so the scaling curve is well-ordered.
fn thread_counts() -> Vec<usize> {
    let mut counts: Vec<usize> = match std::env::var("FBUF_STRESS_THREADS") {
        Ok(s) => s
            .split(',')
            .filter_map(|t| t.trim().parse().ok())
            .filter(|&n: &usize| n > 0)
            .collect(),
        Err(_) => {
            let cores = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
            [1, 2, 4, 8].into_iter().filter(|&n| n <= cores).collect()
        }
    };
    if counts.is_empty() {
        counts.push(1);
    }
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// `FBUF_STRESS_NOTICE_BATCH`: the notice-coalescing window (tokens per
/// reverse-ring slot; 1 = the per-element plane, default 8).
fn notice_batch() -> usize {
    std::env::var("FBUF_STRESS_NOTICE_BATCH")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
}

/// `FBUF_STRESS_MIN_SPEEDUP` as `(threads, factor)`, e.g. `4:2.5`.
fn min_speedup_gate() -> Option<(u64, f64)> {
    parse_gate(&std::env::var("FBUF_STRESS_MIN_SPEEDUP").ok()?)
}

/// `FBUF_STRESS_EFF_FLOOR` as `(threads, efficiency)`, e.g. `2:0.6`.
fn eff_floor_gate() -> Option<(u64, f64)> {
    parse_gate(&std::env::var("FBUF_STRESS_EFF_FLOOR").ok()?)
}

fn parse_gate(raw: &str) -> Option<(u64, f64)> {
    let (t, f) = raw.split_once(':')?;
    Some((t.trim().parse().ok()?, f.trim().parse().ok()?))
}

/// Fleet wall-clock throughput of one run.
fn ops_per_sec(r: &FleetRun) -> f64 {
    r.ops as f64 * 1e9 / r.host_ns as f64
}

/// One thread count's worth of fleet results.
struct FleetRun {
    threads: u64,
    reports: Vec<ShardReport>,
    /// Total fbuf operations across the fleet.
    ops: u64,
    /// Fleet wall-clock: max across shards (they start barrier-aligned).
    host_ns: u64,
    /// Simulated time of the slowest shard.
    sim_elapsed: Ns,
}

/// Runs the fleet at one thread count and asserts the per-shard
/// steady-state invariants plus cross-shard payload conservation.
fn run_at(threads: usize, machine: &MachineConfig, paths: usize, pages: u64, cycles: u64, cross_every: u64) -> Result<FleetRun, String> {
    let cfg = FleetConfig {
        shards: threads,
        machine: machine.clone(),
        paths,
        pages,
        cycles,
        cross_every,
        channel_capacity: 16,
        notice_batch: notice_batch(),
        trace: false,
        // Telemetry rides along: sampling is cadence-gated on simulated
        // time and never touches the counters the steady-state
        // invariant asserts (it does cost a little host time, uniformly
        // across thread counts).
        metrics: true,
        fault: None,
    };
    let reports = run_fleet(&cfg);
    for r in &reports {
        let violations = r.steady_state_violations();
        if !violations.is_empty() {
            return Err(format!(
                "shard {}/{threads} left §3.2.2 steady state: {}",
                r.shard,
                violations.join("; ")
            ));
        }
    }
    let sent: u64 = reports.iter().map(|r| r.sent).sum();
    let received: u64 = reports.iter().map(|r| r.received).sum();
    if sent != received {
        return Err(format!(
            "cross-shard payloads not conserved: {sent} sent, {received} received"
        ));
    }
    Ok(FleetRun {
        threads: threads as u64,
        ops: reports.iter().map(|r| r.fbuf_ops).sum(),
        host_ns: reports.iter().map(|r| r.host_ns).max().unwrap_or(0).max(1),
        sim_elapsed: reports
            .iter()
            .map(|r| r.sim_elapsed)
            .max()
            .unwrap_or(Ns::ZERO),
        reports,
    })
}

/// Validates one well-formed `host.scaling` array. `required` makes an
/// empty (or absent) block an error — the stress report must carry one.
fn check_scaling(name: &str, doc: &Json, required: bool) -> Result<(), String> {
    let scaling = doc
        .get("host")
        .and_then(|h| h.get("scaling"))
        .and_then(|s| s.as_arr().map(<[Json]>::to_vec))
        .unwrap_or_default();
    if scaling.is_empty() {
        if required {
            return Err(format!("{name}: stress report lacks a host.scaling curve"));
        }
        return Ok(());
    }
    let mut prev_threads = 0.0;
    for (i, point) in scaling.iter().enumerate() {
        let threads = point
            .get("threads")
            .and_then(|v| v.as_f64())
            .ok_or(format!("{name}: scaling[{i}] lacks a numeric `threads`"))?;
        if threads <= prev_threads {
            return Err(format!(
                "{name}: scaling thread counts not strictly increasing at index {i}"
            ));
        }
        prev_threads = threads;
        let ops_per_sec = point
            .get("ops_per_sec")
            .and_then(|v| v.as_f64())
            .ok_or(format!("{name}: scaling[{i}] lacks `ops_per_sec`"))?;
        if ops_per_sec <= 0.0 {
            return Err(format!("{name}: scaling[{i}] ops_per_sec = {ops_per_sec} (want > 0)"));
        }
        let efficiency = point
            .get("efficiency")
            .and_then(|v| v.as_f64())
            .ok_or(format!("{name}: scaling[{i}] lacks `efficiency`"))?;
        if efficiency <= 0.0 || efficiency > 1.05 {
            return Err(format!(
                "{name}: scaling[{i}] efficiency = {efficiency} (want in (0, 1.05])"
            ));
        }
    }
    // A recorded floor is a ratchet: the report promised this parallel
    // efficiency when it was written, so it must still hold every time
    // the artifact is validated.
    if let Some(floor) = doc.get("host").and_then(|h| h.get("scaling_floor")) {
        let ft = floor
            .get("threads")
            .and_then(|v| v.as_f64())
            .ok_or(format!("{name}: `scaling_floor.threads` is not a number"))?;
        let fe = floor
            .get("efficiency")
            .and_then(|v| v.as_f64())
            .ok_or(format!("{name}: `scaling_floor.efficiency` is not a number"))?;
        let eff = scaling
            .iter()
            .find(|p| p.get("threads").and_then(|v| v.as_f64()) == Some(ft))
            .and_then(|p| p.get("efficiency"))
            .and_then(|v| v.as_f64())
            .ok_or(format!(
                "{name}: scaling_floor names {ft} thread(s), absent from the scaling curve"
            ))?;
        if eff < fe {
            return Err(format!(
                "{name}: efficiency {eff:.3} at {ft} thread(s) is below the recorded floor {fe:.3}"
            ));
        }
    }
    Ok(())
}

/// Validates the `telemetry` block every report must carry: a positive
/// sampling cadence and a (possibly empty) series array whose entries
/// each name a gauge and hold `[t, v]` points with non-decreasing
/// timestamps. `shard_gauges` additionally requires the batched-plane
/// gauges — only the stress report runs a shard fleet, so only it can
/// carry them.
fn check_telemetry(name: &str, doc: &Json, shard_gauges: bool) -> Result<(), String> {
    let tel = doc
        .get("telemetry")
        .ok_or(format!("{name}: missing `telemetry` block"))?;
    let cadence = tel
        .get("cadence_ns")
        .and_then(|v| v.as_f64())
        .ok_or(format!("{name}: `telemetry.cadence_ns` is not a number"))?;
    if cadence <= 0.0 {
        return Err(format!("{name}: telemetry cadence {cadence} (want > 0)"));
    }
    let series = tel
        .get("series")
        .and_then(|s| s.as_arr().map(<[Json]>::to_vec))
        .ok_or(format!("{name}: `telemetry.series` is not an array"))?;
    let mut names = Vec::new();
    for s in &series {
        let sname = s
            .get("name")
            .and_then(|v| v.as_str().map(str::to_owned))
            .ok_or(format!("{name}: a telemetry series lacks a name"))?;
        names.push(sname.clone());
        let points = s
            .get("points")
            .and_then(|p| p.as_arr().map(<[Json]>::to_vec))
            .ok_or(format!("{name}: series {sname} lacks points"))?;
        let mut prev = f64::NEG_INFINITY;
        for (i, p) in points.iter().enumerate() {
            let t = p
                .as_arr()
                .and_then(|pair| pair.first())
                .and_then(|v| v.as_f64())
                .ok_or(format!("{name}: series {sname} point {i} lacks a timestamp"))?;
            if t < prev {
                return Err(format!(
                    "{name}: series {sname} timestamps go backwards at point {i}"
                ));
            }
            prev = t;
        }
    }
    // The batched data plane must prove it was observed: the stress
    // report samples the burst-drain and coalescing gauges (per shard,
    // namespace-prefixed `s<N>.<gauge>`).
    if shard_gauges {
        for gauge in [
            metrics::GAUGE_RING_BATCH_OCCUPANCY,
            metrics::GAUGE_NOTICE_COALESCE_FACTOR,
        ] {
            if !names.iter().any(|n| n.ends_with(gauge)) {
                return Err(format!("{name}: telemetry lacks a `{gauge}` series"));
            }
        }
    }
    Ok(())
}

/// Validates one `LEDGER_*.json` artifact: it must parse, carry the
/// domain/path tables with totals, and declare conservation against the
/// counters it embeds (an empty `conservation.violations` array).
fn check_ledger(name: &str, doc: &Json) -> Result<(), String> {
    let ledger = doc.get("ledger").ok_or(format!("{name}: missing `ledger`"))?;
    for key in ["domains", "paths", "totals"] {
        if ledger.get(key).is_none() {
            return Err(format!("{name}: `ledger.{key}` missing"));
        }
    }
    doc.get("counters")
        .ok_or(format!("{name}: missing `counters` snapshot"))?;
    let violations = doc
        .get("conservation")
        .and_then(|c| c.get("violations"))
        .and_then(|v| v.as_arr().map(<[Json]>::len))
        .ok_or(format!("{name}: missing `conservation.violations`"))?;
    if violations > 0 {
        return Err(format!(
            "{name}: ledger does not conserve its counters ({violations} violation(s))"
        ));
    }
    Ok(())
}

/// Validates the `repro` header every report must carry: a numeric seed,
/// a thread count of at least 1, and a params object that names the
/// chunk-admission policy the run executed under (a string, or a
/// non-empty array of strings for multi-policy sweeps).
fn check_repro(name: &str, doc: &Json) -> Result<(), String> {
    let repro = doc.get("repro").ok_or(format!("{name}: missing `repro` header"))?;
    repro
        .get("seed")
        .and_then(|v| v.as_f64())
        .ok_or(format!("{name}: `repro.seed` is not a number"))?;
    let threads = repro
        .get("threads")
        .and_then(|v| v.as_f64())
        .ok_or(format!("{name}: `repro.threads` is not a number"))?;
    if threads < 1.0 {
        return Err(format!("{name}: `repro.threads` = {threads} (want >= 1)"));
    }
    let params = match repro.get("params") {
        Some(p @ Json::Obj(_)) => p,
        _ => return Err(format!("{name}: `repro.params` is not an object")),
    };
    let policy_ok = match params.get("policy") {
        Some(Json::Str(_)) => true,
        Some(Json::Arr(a)) => !a.is_empty() && a.iter().all(|v| v.as_str().is_some()),
        _ => false,
    };
    if !policy_ok {
        return Err(format!(
            "{name}: `repro.params.policy` must name the admission policy (string or non-empty string array)"
        ));
    }
    Ok(())
}

/// Validates every `BENCH_*.json` in `dir`: parses with the in-repo
/// parser, requires the `host` block and `repro` header, and checks any
/// scaling curve. Returns the number of reports checked.
fn check_reports(dir: &str) -> Result<usize, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {dir}: {e}"))?;
    let mut checked = 0;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir entry: {e}"))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        let is_bench = name.starts_with("BENCH_") && name.ends_with(".json");
        let is_ledger = name.starts_with("LEDGER_") && name.ends_with(".json");
        if !is_bench && !is_ledger {
            continue;
        }
        let path = entry.path();
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        let doc = Json::parse(&text)
            .map_err(|e| format!("{name}: JSON parse failed: {e:?}"))?;
        if name.starts_with("LEDGER_") {
            check_ledger(&name, &doc)?;
            checked += 1;
            continue;
        }
        let host = doc.get("host").ok_or(format!("{name}: missing `host` block"))?;
        host.get("timebase")
            .and_then(|t| t.as_str())
            .filter(|&t| t == "wall_clock_ns")
            .ok_or(format!("{name}: `host.timebase` is not wall_clock_ns"))?;
        check_repro(&name, &doc)?;
        check_telemetry(&name, &doc, name == "BENCH_stress.json")?;
        check_scaling(&name, &doc, name == "BENCH_stress.json")?;
        checked += 1;
    }
    if checked == 0 {
        return Err(format!("no BENCH_*.json reports found in {dir}"));
    }
    Ok(checked)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--check") {
        let dir = args.get(2).map(String::as_str).unwrap_or("target/bench-reports");
        return match check_reports(dir) {
            Ok(n) => {
                println!(
                    "fbuf-stress --check: {n} report(s) in {dir} parse, carry host + repro + telemetry blocks, scaling curves well-formed, ledgers conserved"
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("fbuf-stress --check FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let cycles = env_u64("FBUF_STRESS_OPS", 200_000);
    let threads = thread_counts();
    let max_threads = *threads.last().expect("at least one thread count");
    let npaths = env_u64("FBUF_STRESS_PATHS", 4 * max_threads as u64) as usize;
    let pages = env_u64("FBUF_STRESS_PAGES", 1);
    let cross_every = env_u64_or_zero("FBUF_STRESS_CROSS", 64);
    let baseline = env_f64("FBUF_STRESS_BASELINE_NS");

    let mut cfg = MachineConfig::decstation_5000_200();
    // Enough physical memory and chunk space that every path's working
    // set stays resident: the workload must never fall off the cached
    // fast path into reclamation. Each shard instantiates its own copy.
    cfg.phys_mem = 64 << 20;
    cfg.chunk_size = 1 << 20;
    let len = pages * cfg.page_size;

    println!(
        "== fbuf-stress: {} cycles across {} path(s), {} page(s)/buffer, threads {:?}, cross-shard every {} ==",
        cycles, npaths, pages, threads, cross_every
    );

    let mut runs = Vec::with_capacity(threads.len());
    for &n in &threads {
        match run_at(n, &cfg, npaths, pages, cycles, cross_every) {
            Ok(run) => {
                println!(
                    "{:>2} thread(s): {:>10} fbuf ops in {:>8.1} ms host ({:.3} us/cycle simulated, {} cross-shard payloads)",
                    n,
                    run.ops,
                    run.host_ns as f64 / 1e6,
                    run.sim_elapsed.as_us_f64() / (cycles.max(1) as f64 / n as f64),
                    run.reports.iter().map(|r| r.sent).sum::<u64>(),
                );
                runs.push(run);
            }
            Err(e) => {
                eprintln!("fbuf-stress FAILED at {n} thread(s): {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some((gate_threads, factor)) = min_speedup_gate() {
        let base = &runs[0];
        match runs.iter().find(|r| r.threads == gate_threads) {
            Some(run) => {
                let speedup = ops_per_sec(run) / ops_per_sec(base);
                if speedup < factor {
                    eprintln!(
                        "fbuf-stress FAILED: {gate_threads}-thread speedup {speedup:.2}x < required {factor:.2}x (vs {} thread(s))",
                        base.threads
                    );
                    return ExitCode::FAILURE;
                }
                println!(
                    "speedup gate: {gate_threads} thread(s) at {speedup:.2}x >= {factor:.2}x vs {} thread(s)",
                    base.threads
                );
            }
            None => {
                eprintln!(
                    "fbuf-stress FAILED: FBUF_STRESS_MIN_SPEEDUP names {gate_threads} thread(s), but the sweep ran {threads:?}"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some((gate_threads, floor)) = eff_floor_gate() {
        let base = &runs[0];
        match runs.iter().find(|r| r.threads == gate_threads) {
            Some(run) => {
                let speedup = ops_per_sec(run) / ops_per_sec(base);
                let efficiency =
                    speedup / (run.threads as f64 / base.threads.max(1) as f64);
                if efficiency < floor {
                    eprintln!(
                        "fbuf-stress FAILED: {gate_threads}-thread efficiency {efficiency:.2} < floor {floor:.2}"
                    );
                    return ExitCode::FAILURE;
                }
                println!(
                    "efficiency gate: {gate_threads} thread(s) at {:.0}% of linear >= floor {:.0}%",
                    efficiency * 100.0,
                    floor * 100.0
                );
            }
            None => {
                eprintln!(
                    "fbuf-stress FAILED: FBUF_STRESS_EFF_FLOOR names {gate_threads} thread(s), but the sweep ran {threads:?}"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let first = &runs[0];
    let sim_us_per_cycle = first.sim_elapsed.as_us_f64()
        / (cycles.max(1) as f64 / first.threads as f64);

    let mut runner = BenchRunner::new("stress");
    runner.set_threads(max_threads as u64);
    runner.param("policy", fbuf::QuotaPolicy::default().name().to_json());
    runner.param("ops", cycles);
    runner.param("paths", npaths as u64);
    runner.param("pages_per_buffer", pages);
    runner.param("bytes_per_buffer", len);
    runner.param("cross_every", cross_every);
    runner.param(
        "threads",
        Json::Arr(threads.iter().map(|&n| (n as u64).to_json()).collect()),
    );
    runner.measure("cached_cycle", Unit::SimUs, || sim_us_per_cycle);
    runner.host_throughput("cached_fbuf_ops", first.ops, first.host_ns, baseline);
    for run in &runs[1..] {
        runner.host_throughput(
            &format!("cached_fbuf_ops_t{}", run.threads),
            run.ops,
            run.host_ns,
            None,
        );
    }
    let curve: Vec<ScalingPoint> = runs
        .iter()
        .map(|r| ScalingPoint { threads: r.threads, ops: r.ops, elapsed_ns: r.host_ns })
        .collect();
    runner.host_scaling(&curve);
    if let Some((gate_threads, floor)) = eff_floor_gate() {
        runner.host_scaling_floor(gate_threads, floor);
    }
    // One coherent fleet snapshot: the counter merge of the largest run.
    let widest = runs.last().expect("at least one run");
    runner.counters(&fleet_snapshot(&widest.reports));
    runner.telemetry(metrics::DEFAULT_CADENCE_NS, &fleet_telemetry(&widest.reports));
    runner.artifact("ledger", fleet_ledger(&widest.reports).to_json());
    let per_run: Vec<Json> = runs
        .iter()
        .map(|run| {
            Json::obj(vec![
                ("threads", run.threads.to_json()),
                ("fbuf_ops", run.ops.to_json()),
                ("host_ns", run.host_ns.to_json()),
                ("sim_us", run.sim_elapsed.as_us_f64().to_json()),
                (
                    "shards",
                    Json::Arr(
                        run.reports
                            .iter()
                            .map(|r| {
                                Json::obj(vec![
                                    ("shard", (r.shard as u64).to_json()),
                                    ("paths", (r.paths as u64).to_json()),
                                    ("cycles", r.cycles.to_json()),
                                    ("sent", r.sent.to_json()),
                                    ("received", r.received.to_json()),
                                    ("fbuf_ops", r.fbuf_ops.to_json()),
                                    ("cache_hits", r.delta.fbuf_cache_hits.to_json()),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    runner.artifact("fleet", Json::Arr(per_run));

    let path = match runner.finish() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("fbuf-stress FAILED: could not write report: {e}");
            return ExitCode::FAILURE;
        }
    };

    // The report must satisfy the same contract `--check` enforces.
    let text = std::fs::read_to_string(&path).expect("just-written report");
    let doc = Json::parse(&text).expect("report parses");
    assert!(doc.get("host").is_some(), "stress report carries a host block");
    if let Err(e) = check_repro("BENCH_stress.json", &doc)
        .and_then(|()| check_scaling("BENCH_stress.json", &doc, true))
    {
        eprintln!("fbuf-stress FAILED: own report rejected: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
