//! `fbuf-stress`: wall-clock throughput of the engine's cached hot path.
//!
//! Every other target in this crate reports *simulated* time — the paper's
//! question. This one answers the engineering question underneath: how many
//! cached loopback alloc→send→send→free cycles per second can the engine
//! itself execute on the host? It drives the canonical three-domain
//! (originator → netserver → receiver) pattern across a configurable
//! number of paths, asserts the §3.2.2 steady-state invariant (zero PTE
//! updates, zero page clears, every allocation a cache hit) over the
//! measured window, and records both simulated and host throughput in
//! `BENCH_stress.json` under the report's `host` block.
//!
//! Environment knobs:
//!
//! * `FBUF_STRESS_OPS`   — steady-state cycles to run (default 200000;
//!   each cycle is 1 alloc + 2 sends + 3 frees = 6 fbuf operations);
//! * `FBUF_STRESS_PATHS` — concurrent data paths (default 4, each with
//!   its own originator/netserver/receiver domain triple);
//! * `FBUF_STRESS_PAGES` — pages per buffer (default 1);
//! * `FBUF_STRESS_BASELINE_NS` — ns per fbuf operation of a reference
//!   engine build; when set, the report and summary line carry the
//!   speedup against it;
//! * `FBUF_BENCH_DIR`    — report directory (default `target/bench-reports`).
//!
//! Check mode: `fbuf-stress --check <dir>` validates every `BENCH_*.json`
//! in `<dir>` with the in-repo parser and fails unless each carries a
//! `host` block (used by `ci.sh`).

use std::process::ExitCode;
use std::time::Instant;

use fbuf::{AllocMode, FbufSystem, SendMode};
use fbuf_sim::bench::{BenchRunner, Unit};
use fbuf_sim::{Json, MachineConfig};
use fbuf_vm::DomainId;
use fbuf::PathId;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

fn env_f64(name: &str) -> Option<f64> {
    std::env::var(name)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&n: &f64| n > 0.0)
}

/// One path's cast: the three domains of the paper's loopback experiment.
struct PathTriple {
    path: PathId,
    originator: DomainId,
    netserver: DomainId,
    receiver: DomainId,
}

/// One full cached loopback cycle on `p`: alloc at the originator, hand
/// the buffer down to the netserver and up to the receiver (with the two
/// RPCs the real stack makes, so dealloc notices keep draining), then
/// free in every holding domain. 6 fbuf operations.
fn cycle(s: &mut FbufSystem, p: &PathTriple, len: u64) {
    let id = s.alloc(p.originator, AllocMode::Cached(p.path), len).expect("cached alloc");
    s.rpc_mut().call(p.originator, p.netserver);
    s.send(id, p.originator, p.netserver, SendMode::Volatile).expect("send down");
    s.rpc_mut().call(p.netserver, p.receiver);
    s.send(id, p.netserver, p.receiver, SendMode::Volatile).expect("send up");
    s.free(id, p.receiver).expect("free receiver");
    s.free(id, p.netserver).expect("free netserver");
    s.free(id, p.originator).expect("free originator");
}

/// Validates every `BENCH_*.json` in `dir`: parses with the in-repo
/// parser and requires the `host` block. Returns the number of reports
/// checked, or an error description.
fn check_reports(dir: &str) -> Result<usize, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {dir}: {e}"))?;
    let mut checked = 0;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir entry: {e}"))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let path = entry.path();
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        let doc = Json::parse(&text)
            .map_err(|e| format!("{name}: JSON parse failed: {e:?}"))?;
        let host = doc.get("host").ok_or(format!("{name}: missing `host` block"))?;
        host.get("timebase")
            .and_then(|t| t.as_str())
            .filter(|&t| t == "wall_clock_ns")
            .ok_or(format!("{name}: `host.timebase` is not wall_clock_ns"))?;
        checked += 1;
    }
    if checked == 0 {
        return Err(format!("no BENCH_*.json reports found in {dir}"));
    }
    Ok(checked)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--check") {
        let dir = args.get(2).map(String::as_str).unwrap_or("target/bench-reports");
        return match check_reports(dir) {
            Ok(n) => {
                println!("fbuf-stress --check: {n} report(s) in {dir} parse and carry a host block");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("fbuf-stress --check FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let cycles = env_u64("FBUF_STRESS_OPS", 200_000);
    let npaths = env_u64("FBUF_STRESS_PATHS", 4) as usize;
    let pages = env_u64("FBUF_STRESS_PAGES", 1);
    let baseline = env_f64("FBUF_STRESS_BASELINE_NS");

    let mut cfg = MachineConfig::decstation_5000_200();
    // Enough physical memory and chunk space that every path's working
    // set stays resident: the workload must never fall off the cached
    // fast path into reclamation.
    cfg.phys_mem = 64 << 20;
    cfg.chunk_size = 1 << 20;
    let page_size = cfg.page_size;
    let len = pages * page_size;

    let mut s = FbufSystem::new(cfg);
    let mut triples = Vec::with_capacity(npaths);
    for _ in 0..npaths {
        let originator = s.create_domain();
        let netserver = s.create_domain();
        let receiver = s.create_domain();
        let path = s
            .create_path(vec![originator, netserver, receiver])
            .expect("fresh domains make a path");
        triples.push(PathTriple { path, originator, netserver, receiver });
    }

    // Warm every path: the first cycle per path builds the buffer and
    // installs its mappings; afterwards the engine is in §3.2.2 steady
    // state and stays there.
    for t in &triples {
        cycle(&mut s, t, len);
    }

    let mark = s.stats().snapshot();
    let sim_t0 = s.machine().clock().now();
    let host_t0 = Instant::now();
    for i in 0..cycles {
        let t = &triples[(i as usize) % npaths];
        cycle(&mut s, t, len);
    }
    let host_elapsed = host_t0.elapsed();
    let sim_elapsed = s.machine().clock().now() - sim_t0;
    let delta = s.stats().snapshot().delta(&mark);

    // The measured window must be pure steady state — otherwise the
    // number is not the cached hot path and the run is meaningless.
    let mut violations = Vec::new();
    if delta.pte_updates != 0 {
        violations.push(format!("pte_updates = {} (want 0)", delta.pte_updates));
    }
    if delta.pages_cleared != 0 {
        violations.push(format!("pages_cleared = {} (want 0)", delta.pages_cleared));
    }
    if delta.fbuf_cache_misses != 0 {
        violations.push(format!("fbuf_cache_misses = {} (want 0)", delta.fbuf_cache_misses));
    }
    if delta.fbuf_cache_hits != cycles {
        violations.push(format!("fbuf_cache_hits = {} (want {cycles})", delta.fbuf_cache_hits));
    }
    if !violations.is_empty() {
        eprintln!("fbuf-stress FAILED: measured window left §3.2.2 steady state:");
        for v in &violations {
            eprintln!("  {v}");
        }
        return ExitCode::FAILURE;
    }

    // 6 fbuf operations per cycle: 1 alloc + 2 sends + 3 frees.
    let fbuf_ops = cycles * 6;
    let host_ns = host_elapsed.as_nanos() as u64;
    let sim_us_per_cycle = sim_elapsed.as_us_f64() / cycles as f64;

    println!(
        "== fbuf-stress: {} cycles ({} fbuf ops) across {} path(s), {} page(s)/buffer ==",
        cycles, fbuf_ops, npaths, pages
    );
    println!(
        "simulated: {:.1} us total, {:.3} us/cycle, {:.0} Mb/s",
        sim_elapsed.as_us_f64(),
        sim_us_per_cycle,
        sim_elapsed.mbps(len * cycles)
    );

    let mut runner = BenchRunner::new("stress");
    runner.measure("cached_cycle", Unit::SimUs, || sim_us_per_cycle);
    runner.host_throughput("cached_fbuf_ops", fbuf_ops, host_ns, baseline);
    runner.host_throughput("cached_cycles", cycles, host_ns, None);
    runner.counters(&delta);
    runner.artifact(
        "config",
        Json::obj(vec![
            ("cycles", fbuf_sim::ToJson::to_json(&cycles)),
            ("paths", fbuf_sim::ToJson::to_json(&(npaths as u64))),
            ("pages_per_buffer", fbuf_sim::ToJson::to_json(&pages)),
            ("bytes_per_buffer", fbuf_sim::ToJson::to_json(&len)),
            ("ops_per_cycle", fbuf_sim::ToJson::to_json(&6u64)),
        ]),
    );
    let path = match runner.finish() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("fbuf-stress FAILED: could not write report: {e}");
            return ExitCode::FAILURE;
        }
    };

    // The report must round-trip through the in-repo parser and satisfy
    // the same contract `--check` enforces.
    let text = std::fs::read_to_string(&path).expect("just-written report");
    let doc = Json::parse(&text).expect("report parses");
    assert!(doc.get("host").is_some(), "stress report carries a host block");
    ExitCode::SUCCESS
}
