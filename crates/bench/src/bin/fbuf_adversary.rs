//! `fbuf-adversary`: hostile-tenant containment under load.
//!
//! Runs the same benign transfer schedule twice through the per-shard
//! event-loop engine at **identical** machine config (same region, same
//! path caches, containment armed both times):
//!
//! 1. **baseline** — N benign tenants only;
//! 2. **contested** — the same N benign tenants interleaved with K = 3
//!    hostile personas:
//!    * a **hoarder** that parks a pile of cached fbufs and then
//!      allocates without ever freeing, until the quota jail escalates
//!      from admission denial to forced revocation of its cache;
//!    * a **stalled receiver** that lets deadline-stamped transfers rot
//!      in its inbox until the engine's timeout revocation reclaims
//!      them mid-route;
//!    * a **token forger** that probes the system with
//!      generation-flipped fbuf tokens, which must be rejected and
//!      counted — never dereferenced.
//!
//! The run fails unless all of the following hold:
//!
//! * benign goodput in the contested run is ≥ 95% of baseline —
//!   containment, not collapse, is what isolates the benign tenants;
//! * **zero** forged tokens dereferenced (every probe rejected);
//! * each persona demonstrably fired: jail denials, forced and timeout
//!   revocations, and token rejections are all nonzero;
//! * the per-tenant ledger still conserves against the fleet counters —
//!   revocations and rejected tokens included — and the baseline run
//!   never tripped the jail.
//!
//! Environment knobs:
//!
//! * `FBUF_ADV_TENANTS` — benign tenants N (default 8);
//! * `FBUF_ADV_ROUNDS`  — transfers per benign tenant (default 64);
//! * `FBUF_ADV_PAGES`   — pages per transfer (default 2);
//! * `FBUF_BENCH_DIR`   — report directory (default
//!   `target/bench-reports`).
//!
//! Report: `BENCH_adversary.json`.

use std::process::ExitCode;
use std::time::Instant;

use fbuf::{AllocMode, FbufError, FbufId, FbufSystem, JailConfig, PathId, TransferMode};
use fbuf_sim::bench::{BenchRunner, Unit};
use fbuf_sim::{Json, MachineConfig, Ns, ToJson};
use fbuf_vm::DomainId;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

struct Config {
    tenants: usize,
    rounds: u64,
    pages: u64,
}

/// One benign tenant: its own originator and sink domains and a
/// dedicated two-domain path, so ledger rows and jail charges are
/// attributable per tenant.
struct Tenant {
    route: [DomainId; 2],
    path: PathId,
}

struct RunReport {
    /// Payload bytes delivered end to end on benign routes.
    benign_goodput: u64,
    /// Benign transfers completed / refused admission.
    benign_completed: u64,
    benign_refused: u64,
    jail_denials: u64,
    fbufs_revoked: u64,
    timeout_revocations: u64,
    tokens_rejected: u64,
    /// Forged probes that resolved to a live buffer — must stay 0.
    forged_derefs: u64,
    ledger_violations: Vec<String>,
    sim_ns: u64,
}

/// The containment configuration both runs arm: tight enough that the
/// hoarder trips it within its schedule, generous enough that a benign
/// tenant — which frees every buffer promptly — never comes close.
fn containment() -> JailConfig {
    JailConfig {
        hoard_bytes: 48 * 4096,
        hoard_age: 12,
        revoke_strikes: 2,
    }
}

fn run(cfg: &Config, hostile: bool) -> Result<RunReport, FbufError> {
    let mut sys = FbufSystem::new(MachineConfig::decstation_5000_200());
    sys.set_transfer_mode(TransferMode::EventLoop);
    sys.set_jail(Some(containment()));
    // 800 µs: far above a drained benign hop's queueing delay, far
    // below what a deliberately un-pumped 16-transfer burst at the
    // stalled receiver accumulates.
    sys.set_revoke_timeout(Some(Ns(800_000)));

    let tenants: Vec<Tenant> = (0..cfg.tenants)
        .map(|_| {
            let a = sys.create_domain();
            let b = sys.create_domain();
            let path = sys.create_path(vec![a, b])?;
            Ok(Tenant { route: [a, b], path })
        })
        .collect::<Result<_, FbufError>>()?;

    // The hostile cast is created either way so domain numbering — and
    // therefore the benign schedule — is identical in both runs.
    let hoarder = sys.create_domain();
    let hoard_sink = sys.create_domain();
    let hoard_path = sys.create_path(vec![hoarder, hoard_sink])?;
    let stall_origin = sys.create_domain();
    let stalled = sys.create_domain();
    let stall_path = sys.create_path(vec![stall_origin, stalled])?;
    let forger = sys.create_domain();

    let len = cfg.pages * sys.machine().page_size();
    let t0 = sys.machine().now();
    let mut benign_completed_before = 0u64;
    let mut benign_goodput = 0u64;
    let mut benign_refused = 0u64;
    let mut timeout_revocations = 0u64;
    let mut forged_derefs = 0u64;
    let mut hoard_pile: Vec<FbufId> = Vec::new();

    for round in 0..cfg.rounds {
        // The benign schedule: every tenant moves one buffer through
        // its path, each drained promptly (a well-behaved receiver
        // services its inbox). Identical in both runs.
        for t in &tenants {
            let buf = match sys.alloc(t.route[0], AllocMode::Cached(t.path), len) {
                Ok(b) => b,
                Err(FbufError::TenantJailed(_) | FbufError::QuotaExceeded { .. }) => {
                    benign_refused += 1;
                    continue;
                }
                Err(e) => return Err(e),
            };
            if sys.submit_transfer(buf, &t.route).is_overload() {
                sys.free(buf, t.route[0])?;
                benign_refused += 1;
            }
            sys.pump();
        }
        let done = sys.transfers_completed();
        benign_goodput += (done - benign_completed_before) * len;
        benign_completed_before = done;

        if !hostile {
            continue;
        }

        // Hoarder: round 0 parks a pile of eight distinct cached fbufs
        // on its path (pinning region memory through cache retention);
        // after that it switches to the default allocator and holds
        // everything it touches — no frees, so its jail age runs out
        // while its charge stays over threshold, and escalation
        // forcibly reclaims the parked pile.
        if round == 0 {
            let pile: Vec<FbufId> = (0..8)
                .map(|_| sys.alloc(hoarder, AllocMode::Cached(hoard_path), len))
                .collect::<Result<_, FbufError>>()?;
            for b in pile {
                sys.free(b, hoarder)?;
            }
        } else {
            match sys.alloc(hoarder, AllocMode::Uncached, len) {
                Ok(b) => hoard_pile.push(b),
                Err(FbufError::TenantJailed(_)) => {}
                Err(FbufError::QuotaExceeded { .. } | FbufError::RegionExhausted) => {}
                Err(e) => return Err(e),
            }
        }

        // Stalled receiver: every few rounds, burst transfers at a
        // domain that is never pumped between posts; the queueing delay
        // the burst accumulates blows the revocation deadline and the
        // engine reclaims the in-flight frames.
        if round % 8 == 7 {
            let before = sys.transfers_revoked();
            for _ in 0..16 {
                match sys.alloc(stall_origin, AllocMode::Cached(stall_path), len) {
                    Ok(b) => {
                        if sys.submit_transfer(b, &[stall_origin, stalled]).is_overload() {
                            sys.free(b, stall_origin)?;
                        }
                    }
                    Err(
                        FbufError::TenantJailed(_)
                        | FbufError::QuotaExceeded { .. }
                        | FbufError::RegionExhausted,
                    ) => {}
                    Err(e) => return Err(e),
                }
            }
            sys.pump();
            timeout_revocations += sys.transfers_revoked() - before;
            benign_completed_before = sys.transfers_completed();
        }

        // Forger: flip generation bits on a token shape it could have
        // observed on the wire. The probe must never resolve.
        let probe = FbufId(((round + 1) << 32) ^ 0x5a5a_0000_0000_0000 | (round % 7));
        if sys.check_token(forger, None, probe.0) {
            forged_derefs += 1;
        }
    }
    sys.pump();

    let stats = sys.stats();
    let ledger_violations = sys.ledger_snapshot().conserves(&stats.snapshot());
    Ok(RunReport {
        benign_goodput,
        benign_completed: benign_goodput / len,
        benign_refused,
        jail_denials: stats.jail_denials(),
        fbufs_revoked: stats.fbufs_revoked(),
        timeout_revocations,
        tokens_rejected: stats.tokens_rejected(),
        forged_derefs,
        ledger_violations,
        sim_ns: (sys.machine().now() - t0).as_ns(),
    })
}

fn main() -> ExitCode {
    let cfg = Config {
        tenants: env_u64("FBUF_ADV_TENANTS", 8) as usize,
        rounds: env_u64("FBUF_ADV_ROUNDS", 64),
        pages: env_u64("FBUF_ADV_PAGES", 2),
    };
    println!(
        "== fbuf-adversary: {} benign tenant(s) × {} round(s) × {} page(s) vs 3 hostile personas ==",
        cfg.tenants, cfg.rounds, cfg.pages
    );

    let host_t0 = Instant::now();
    let (base, adv) = match (run(&cfg, false), run(&cfg, true)) {
        (Ok(b), Ok(a)) => (b, a),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("fbuf-adversary FAILED: {e}");
            return ExitCode::FAILURE;
        }
    };
    let host_ns = host_t0.elapsed().as_nanos().max(1) as u64;

    for (name, r) in [("baseline", &base), ("contested", &adv)] {
        println!(
            "{name:>10}: goodput {} KiB ({} transfer(s), {} refused), jail denials {}, revoked {} ({} by timeout), tokens rejected {}, forged derefs {}",
            r.benign_goodput / 1024,
            r.benign_completed,
            r.benign_refused,
            r.jail_denials,
            r.fbufs_revoked,
            r.timeout_revocations,
            r.tokens_rejected,
            r.forged_derefs,
        );
    }

    let ratio = adv.benign_goodput as f64 / base.benign_goodput.max(1) as f64;
    let mut failures: Vec<String> = Vec::new();
    if ratio < 0.95 {
        failures.push(format!(
            "benign goodput under attack is {:.1}% of baseline (< 95%)",
            ratio * 100.0
        ));
    }
    if base.jail_denials != 0 || base.fbufs_revoked != 0 || base.tokens_rejected != 0 {
        failures.push(format!(
            "baseline tripped containment with no adversary present: jail {}, revoked {}, rejected {}",
            base.jail_denials, base.fbufs_revoked, base.tokens_rejected
        ));
    }
    if adv.forged_derefs != 0 || base.forged_derefs != 0 {
        failures.push(format!(
            "{} forged token(s) dereferenced — must be zero",
            adv.forged_derefs + base.forged_derefs
        ));
    }
    if adv.jail_denials == 0 {
        failures.push("the hoarder never hit the quota jail".into());
    }
    let forced = adv.fbufs_revoked.saturating_sub(adv.timeout_revocations);
    if forced == 0 || adv.timeout_revocations == 0 {
        failures.push(format!(
            "a revocation path never fired ({} forced by the jail, {} by timeout)",
            forced, adv.timeout_revocations
        ));
    }
    if adv.tokens_rejected == 0 {
        failures.push("the forger's probes were never counted".into());
    }
    for (name, r) in [("baseline", &base), ("contested", &adv)] {
        for v in &r.ledger_violations {
            failures.push(format!("{name} ledger does not conserve: {v}"));
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("fbuf-adversary FAILED: {f}");
        }
        return ExitCode::FAILURE;
    }
    println!(
        "gate: benign goodput {:.1}% of baseline, zero forged derefs, jail + both revocation paths exercised, ledger conserves",
        ratio * 100.0
    );

    let mut runner = BenchRunner::named("adversary", 1);
    runner.set_threads(1);
    runner.param("policy", fbuf::QuotaPolicy::default().name().to_json());
    runner.param("tenants", cfg.tenants as u64);
    runner.param("rounds", cfg.rounds);
    runner.param("pages", cfg.pages);
    runner.param("hostile_personas", 3u64);
    runner.param("jail_hoard_bytes", containment().hoard_bytes);
    runner.param("jail_hoard_age", containment().hoard_age);
    runner.param("jail_revoke_strikes", containment().revoke_strikes as u64);
    runner.measure("benign_goodput_ratio", Unit::Fraction, || ratio);
    runner.measure("baseline_goodput_mbps", Unit::Mbps, || {
        Ns(base.sim_ns).mbps(base.benign_goodput)
    });
    runner.measure("contested_goodput_mbps", Unit::Mbps, || {
        Ns(adv.sim_ns).mbps(adv.benign_goodput)
    });
    runner.host_throughput(
        "benign_transfers_completed",
        base.benign_completed + adv.benign_completed,
        host_ns,
        None,
    );
    let side = |r: &RunReport| {
        Json::obj(vec![
            ("benign_goodput_bytes", r.benign_goodput.to_json()),
            ("benign_completed", r.benign_completed.to_json()),
            ("benign_refused", r.benign_refused.to_json()),
            ("jail_denials", r.jail_denials.to_json()),
            ("fbufs_revoked", r.fbufs_revoked.to_json()),
            ("timeout_revocations", r.timeout_revocations.to_json()),
            ("tokens_rejected", r.tokens_rejected.to_json()),
            ("forged_derefs", r.forged_derefs.to_json()),
            ("sim_elapsed_us", Ns(r.sim_ns).as_us_f64().to_json()),
        ])
    };
    runner.artifact("baseline", side(&base));
    runner.artifact("contested", side(&adv));

    match runner.finish() {
        Ok(path) => {
            println!("report: {}", path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fbuf-adversary FAILED: could not write report: {e}");
            ExitCode::FAILURE
        }
    }
}
