//! `fbuf-trace`: runs the canonical cached three-domain loopback
//! workload with the structured tracer enabled, prints a per-path
//! breakdown, audits the event stream against the fbuf lifecycle
//! invariants, and writes `TRACE_<name>.json` in Chrome `trace_event`
//! format (load it in `about://tracing` or Perfetto).
//!
//! Environment knobs:
//!
//! * `FBUF_TRACE_MSGS` — messages after warm-up (default 16);
//! * `FBUF_TRACE_SIZE` — message size in bytes (default 16384);
//! * `FBUF_BENCH_DIR`  — output directory (default `target/bench-reports`).
//!
//! Exits nonzero if the audit finds a violation or the written JSON
//! fails to round-trip through the in-repo parser.

use std::path::PathBuf;
use std::process::ExitCode;

use fbuf_net::{LoopbackConfig, LoopbackStack};
use fbuf_sim::{audit_tracer, EventKind, Json, MachineConfig};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

fn main() -> ExitCode {
    let msgs = env_u64("FBUF_TRACE_MSGS", 16);
    let size = env_u64("FBUF_TRACE_SIZE", 16 << 10);

    let mut cfg = MachineConfig::decstation_5000_200();
    cfg.phys_mem = 24 << 20;
    let mut stack = LoopbackStack::new(cfg, LoopbackConfig::paper(true, true));
    let tracer = stack.fbs.machine().tracer();
    tracer.set_enabled(true);

    // Warm the per-path cache, then the measured section.
    for _ in 0..2 {
        stack.send_message(size, false).expect("warm-up message");
    }
    let mark = stack.fbs.stats().snapshot();
    let t0 = stack.fbs.machine().clock().now();
    for _ in 0..msgs {
        stack.send_message(size, false).expect("traced message");
    }
    let elapsed = stack.fbs.machine().clock().now() - t0;
    let delta = stack.fbs.stats().snapshot().delta(&mark);

    println!(
        "== fbuf-trace: {} x {} B cached loopback, {} events ({} dropped) ==",
        msgs,
        size,
        tracer.len(),
        tracer.dropped()
    );
    println!(
        "simulated elapsed: {:.1} us, throughput {:.0} Mb/s",
        elapsed.as_us_f64(),
        elapsed.mbps(size * msgs)
    );

    // Per-path breakdown. Events carry the path key; latency histograms
    // are keyed the same way (None = uncached / pathless).
    let events = tracer.events();
    println!(
        "\n{:<10} {:>9} {:>6} {:>8} {:>6} {:>6} {:>5} {:>12} {:>12} {:>12} {:>12}",
        "path", "transfers", "hits", "misses", "enq", "deq", "ovl", "alloc_p50", "alloc_p99",
        "xfer_p50", "xfer_p99"
    );
    // Rows: every path with a latency histogram, plus any key that only
    // appears on queue events (hop events are pathless, so the queue
    // audit trail lands on the "-" row).
    let mut keys = tracer.latency_paths();
    for e in &events {
        if !keys.contains(&e.path) {
            keys.push(e.path);
        }
    }
    keys.sort_unstable();
    for key in keys {
        let count = |kind: EventKind| {
            events
                .iter()
                .filter(|e| e.kind == kind && e.path == key)
                .count()
        };
        let label = key.map_or_else(|| "-".to_string(), |p| format!("path{p}"));
        let fmt = |h: Option<fbuf_sim::Histogram>, pick: fn(&fbuf_sim::Histogram) -> u64| {
            h.filter(|h| !h.is_empty())
                .map_or_else(|| "-".to_string(), |h| format!("{:.1}us", pick(&h) as f64 / 1_000.0))
        };
        println!(
            "{:<10} {:>9} {:>6} {:>8} {:>6} {:>6} {:>5} {:>12} {:>12} {:>12} {:>12}",
            label,
            count(EventKind::Transfer),
            count(EventKind::CacheHit),
            count(EventKind::CacheMiss),
            count(EventKind::Enqueue),
            count(EventKind::Dequeue),
            count(EventKind::Overload),
            fmt(tracer.alloc_latency(key), |h| h.p50()),
            fmt(tracer.alloc_latency(key), |h| h.p99()),
            fmt(tracer.transfer_latency(key), |h| h.p50()),
            fmt(tracer.transfer_latency(key), |h| h.p99()),
        );
    }
    let total_ovl = events
        .iter()
        .filter(|e| e.kind == EventKind::Overload)
        .count();
    if total_ovl > 0 {
        println!("overload drops in trace: {total_ovl} (see the ovl column for the per-path split)");
    }
    println!("\ncounter deltas over the measured section:\n{delta}");

    // Replay-audit the whole ring against the lifecycle invariants.
    let report = audit_tracer(&tracer);
    if !report.is_clean() {
        eprintln!("fbuf-trace: AUDIT FAILED");
        for v in &report.violations {
            eprintln!("  {v}");
        }
        return ExitCode::FAILURE;
    }
    // Non-fatal caveats: an overflowed ring truncates histograms and
    // makes the lifecycle replay incomplete — say so loudly.
    for w in &report.warnings {
        println!("audit WARNING: {w}");
    }
    println!(
        "audit: clean ({} events, {} fbufs tracked, complete={}, {} dropped)",
        report.events, report.fbufs_tracked, report.complete, report.dropped
    );

    // Export, then prove the artifact parses with the in-repo parser and
    // carries the event kinds the acceptance gate names.
    let dir = std::env::var("FBUF_BENCH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/bench-reports"));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("fbuf-trace: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let path = dir.join("TRACE_loopback.json");
    let rendered = tracer.chrome_trace().render();
    if let Err(e) = std::fs::write(&path, &rendered) {
        eprintln!("fbuf-trace: cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    let parsed = match Json::parse(&rendered) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("fbuf-trace: written trace does not parse: {e:?}");
            return ExitCode::FAILURE;
        }
    };
    let names: Vec<&str> = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .map(|evs| {
            evs.iter()
                .filter_map(|e| e.get("name").and_then(Json::as_str))
                .collect()
        })
        .unwrap_or_default();
    for required in ["Alloc", "Transfer", "CacheHit", "Free"] {
        if !names.contains(&required) {
            eprintln!("fbuf-trace: trace is missing required event kind {required}");
            return ExitCode::FAILURE;
        }
    }
    if parsed.get("dropped_events").and_then(Json::as_f64).is_none() {
        eprintln!("fbuf-trace: trace is missing the dropped_events counter");
        return ExitCode::FAILURE;
    }
    println!("wrote {} ({} events)", path.display(), names.len());
    ExitCode::SUCCESS
}
