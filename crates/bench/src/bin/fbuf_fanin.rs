//! `fbuf-fanin`: massive fan-in across chunk-admission policies.
//!
//! Drives the fan-in workload (`fbuf_bench::fanin`, DESIGN.md §15) —
//! tens of thousands of Zipf-skewed, bursty flows through the sharded
//! event-loop engine — once per admission policy at **identical**
//! config (same seed, same machine, same total buffer memory), and
//! compares what each policy made of the same offered load:
//!
//! * **drops** — arrivals refused admission past the retry budget;
//! * **goodput** — payload bytes delivered producer → consumer;
//! * **occupancy** — mean/peak granted chunks (how much of the region
//!   the policy actually put to work);
//! * **alloc latency** — p50/p99 arrival-to-grant wait in simulated ns
//!   (under `latency` in the report).
//!
//! The run fails unless every policy conserves arrivals
//! (`offered == completed + drops + unresolved`) and — when both are in
//! the sweep — `fb-dynamic` beats `static` on **both** drops and p99
//! alloc latency, strictly. That is the paper's §3.3 argument as an
//! executable gate: under skewed fan-in, sizing per-path caps from the
//! free pool must dominate a fixed cap at equal memory.
//!
//! Environment knobs:
//!
//! * `FBUF_FANIN_FLOWS`  — total flows (default 20000);
//! * `FBUF_FANIN_PATHS`  — data paths (default 512);
//! * `FBUF_FANIN_SHARDS` — engine shards / OS threads (default 4);
//! * `FBUF_FANIN_STEPS`  — arrival-loop steps (default 400);
//! * `FBUF_FANIN_SKEW`   — Zipf skew `s` (default 1.1);
//! * `FBUF_FANIN_QUOTA`  — static per-path chunk quota (default 4);
//! * `FBUF_FANIN_POLICY` — `all` (default) or one of
//!   `static,fb-dynamic,priority` (comma-separated subset);
//! * `FBUF_FANIN_SEED`   — master seed (default 0xfa21);
//! * `FBUF_BENCH_DIR`    — report directory (default
//!   `target/bench-reports`).

use std::process::ExitCode;
use std::time::Instant;

use fbuf::QuotaPolicy;
use fbuf_bench::fanin::{run_fanin, FaninConfig, FaninReport};
use fbuf_sim::bench::{BenchRunner, Unit};
use fbuf_sim::metrics::DEFAULT_CADENCE_NS;
use fbuf_sim::{Json, Ns, ToJson};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|n: &f64| n.is_finite() && *n >= 0.0)
        .unwrap_or(default)
}

/// `FBUF_FANIN_POLICY` as a policy list; `all` (default) sweeps the
/// three families in a fixed order.
fn policies() -> Result<Vec<QuotaPolicy>, String> {
    let raw = std::env::var("FBUF_FANIN_POLICY").unwrap_or_else(|_| "all".into());
    if raw.trim() == "all" {
        return Ok(vec![
            QuotaPolicy::Static,
            QuotaPolicy::fb_dynamic(),
            QuotaPolicy::priority_weighted(),
        ]);
    }
    raw.split(',')
        .map(|t| {
            QuotaPolicy::parse(t.trim())
                .ok_or_else(|| format!("FBUF_FANIN_POLICY: unknown policy `{}`", t.trim()))
        })
        .collect()
}

fn main() -> ExitCode {
    let seed = env_u64("FBUF_FANIN_SEED", 0xfa21);
    let policies = match policies() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("fbuf-fanin FAILED: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut base = FaninConfig::new(QuotaPolicy::Static, seed);
    base.flows = env_u64("FBUF_FANIN_FLOWS", base.flows as u64) as usize;
    base.paths = env_u64("FBUF_FANIN_PATHS", base.paths as u64) as usize;
    base.shards = env_u64("FBUF_FANIN_SHARDS", base.shards as u64) as usize;
    base.steps = env_u64("FBUF_FANIN_STEPS", base.steps);
    base.zipf_s = env_f64("FBUF_FANIN_SKEW", base.zipf_s);
    base.machine.max_chunks_per_path =
        env_u64("FBUF_FANIN_QUOTA", base.machine.max_chunks_per_path as u64) as usize;
    if base.paths < base.shards {
        eprintln!(
            "fbuf-fanin FAILED: {} paths cannot cover {} shards",
            base.paths, base.shards
        );
        return ExitCode::FAILURE;
    }

    println!(
        "== fbuf-fanin: {} flows over {} paths on {} shard(s), zipf {}, {} steps, static quota {} of {} chunks/shard ==",
        base.flows,
        base.paths,
        base.shards,
        base.zipf_s,
        base.steps,
        base.machine.max_chunks_per_path,
        base.chunks_per_shard(),
    );
    println!(
        "{:>10} {:>9} {:>9} {:>8} {:>9} {:>10} {:>9} {:>9} {:>11} {:>11}",
        "policy",
        "offered",
        "completed",
        "drops",
        "denials",
        "goodput_mb",
        "occ_mean",
        "occ_peak",
        "wait_p50_ns",
        "wait_p99_ns"
    );

    let host_t0 = Instant::now();
    let mut runs: Vec<(QuotaPolicy, FaninReport)> = Vec::with_capacity(policies.len());
    for &policy in &policies {
        let mut cfg = base.clone();
        cfg.policy = policy;
        let r = match run_fanin(&cfg) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("fbuf-fanin FAILED under {}: {e}", policy.name());
                return ExitCode::FAILURE;
            }
        };
        println!(
            "{:>10} {:>9} {:>9} {:>8} {:>9} {:>10.1} {:>9.1} {:>9} {:>11} {:>11}",
            policy.name(),
            r.offered,
            r.completed,
            r.drops,
            r.denials,
            r.goodput_bytes as f64 / (1 << 20) as f64,
            r.occupancy_mean,
            r.occupancy_peak,
            r.alloc_wait.p50(),
            r.alloc_wait.p99(),
        );
        runs.push((policy, r));
    }
    let host_ns = host_t0.elapsed().as_nanos().max(1) as u64;

    // The tentpole gate: at equal total buffer memory under Zipf
    // fan-in, the free-pool-scaled cap must strictly beat the static
    // cap on both drops and tail alloc latency.
    let find = |name: &str| runs.iter().find(|(p, _)| p.name() == name).map(|(_, r)| r);
    if let (Some(st), Some(dy)) = (find("static"), find("fb-dynamic")) {
        if dy.drops >= st.drops {
            eprintln!(
                "fbuf-fanin FAILED: fb-dynamic dropped {} >= static {} — dynamic sizing must shed the skew",
                dy.drops, st.drops
            );
            return ExitCode::FAILURE;
        }
        if dy.alloc_wait.p99() >= st.alloc_wait.p99() {
            eprintln!(
                "fbuf-fanin FAILED: fb-dynamic p99 wait {} ns >= static {} ns",
                dy.alloc_wait.p99(),
                st.alloc_wait.p99()
            );
            return ExitCode::FAILURE;
        }
        println!(
            "gate: fb-dynamic beats static — drops {} < {}, p99 wait {} ns < {} ns",
            dy.drops,
            st.drops,
            dy.alloc_wait.p99(),
            st.alloc_wait.p99()
        );
    }

    let mut runner = BenchRunner::named("fanin", 1);
    runner.set_seed(seed);
    runner.set_threads(base.shards as u64);
    runner.param(
        "policy",
        Json::Arr(runs.iter().map(|(p, _)| p.name().to_json()).collect()),
    );
    runner.param("flows", base.flows as u64);
    runner.param("paths", base.paths as u64);
    runner.param("shards", base.shards as u64);
    runner.param("steps", base.steps);
    runner.param("zipf_s", base.zipf_s);
    runner.param("mean_on", base.mean_on);
    runner.param("mean_off", base.mean_off);
    runner.param("hold_steps", base.hold_steps);
    runner.param("retries", base.retries as u64);
    runner.param("static_quota", base.machine.max_chunks_per_path as u64);
    runner.param("chunks_per_shard", base.chunks_per_shard());
    for (policy, r) in &runs {
        let name = policy.name();
        runner.latency(&format!("alloc_wait_{name}"), &r.alloc_wait);
        runner.measure(&format!("goodput_mbps_{name}"), Unit::Mbps, || {
            Ns(r.sim_ns).mbps(r.goodput_bytes)
        });
        runner.measure(&format!("drop_fraction_{name}"), Unit::Fraction, || {
            r.drops as f64 / r.offered.max(1) as f64
        });
    }
    let total_completed: u64 = runs.iter().map(|(_, r)| r.completed).sum();
    runner.host_throughput("transfers_completed", total_completed, host_ns, None);
    if let Some((_, r)) = runs.last() {
        runner.telemetry(DEFAULT_CADENCE_NS, &r.telemetry);
    }
    let sweep: Vec<Json> = runs
        .iter()
        .map(|(policy, r)| {
            Json::obj(vec![
                ("policy", policy.name().to_json()),
                ("offered", r.offered.to_json()),
                ("completed", r.completed.to_json()),
                ("drops", r.drops.to_json()),
                ("unresolved", r.unresolved.to_json()),
                ("quota_denials", r.denials.to_json()),
                ("goodput_bytes", r.goodput_bytes.to_json()),
                ("occupancy_mean_chunks", r.occupancy_mean.to_json()),
                ("occupancy_peak_chunks", r.occupancy_peak.to_json()),
                ("alloc_wait_p50_ns", r.alloc_wait.p50().to_json()),
                ("alloc_wait_p99_ns", r.alloc_wait.p99().to_json()),
                ("alloc_wait_max_ns", r.alloc_wait.max().to_json()),
                ("sim_elapsed_us", Ns(r.sim_ns).as_us_f64().to_json()),
            ])
        })
        .collect();
    runner.artifact("policies", Json::Arr(sweep));

    match runner.finish() {
        Ok(path) => {
            println!("report: {}", path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fbuf-fanin FAILED: could not write report: {e}");
            ExitCode::FAILURE
        }
    }
}
