//! `fbuf-queue`: per-hop queueing delay and overload under offered load.
//!
//! Every synchronous target measures drained transfers — one in flight at
//! a time, so queueing delay is identically zero. This target drives the
//! event-loop engine (`fbuf::engine`, DESIGN.md §12) the way the
//! recursive descent never could: it posts **bursts** of transfers before
//! letting the per-shard loop drain, so events genuinely wait in the
//! bounded per-domain inboxes. For each offered-load point (burst size)
//! it reports:
//!
//! * the per-hop **queueing delay** percentiles (p50/p90/p99, simulated
//!   ns from enqueue to dequeue) under `latency`;
//! * **completed / aborted / overload** counts — past the inbox depth,
//!   admission control refuses work with the explicit `Overload` outcome
//!   instead of queueing without bound;
//! * delivered throughput in simulated Mb/s.
//!
//! The run fails unless transfers are conserved at every point
//! (`completed + aborted == offered`), burst 1 shows zero queueing (the
//! drained regime the counter-exactness tests pin), and delay grows with
//! offered load once bursts exceed 1.
//!
//! Environment knobs:
//!
//! * `FBUF_QUEUE_TRANSFERS` — transfers offered per sweep point
//!   (default 512);
//! * `FBUF_QUEUE_BURSTS`    — comma-separated burst sizes to sweep,
//!   e.g. `1,4,16,64` (default; each burst is posted before the loop
//!   drains — the offered load);
//! * `FBUF_QUEUE_HOPS`      — transfer legs per route (default 2: the
//!   canonical originator → netserver → receiver chain);
//! * `FBUF_QUEUE_DEPTH`     — bounded inbox depth (default 64; sweep
//!   points past it show explicit overload);
//! * `FBUF_QUEUE_PAGES`     — pages per fbuf (default 1);
//! * `FBUF_QUEUE_SLO_P99_NS` — p99 per-hop queueing-delay SLO for the
//!   drained (burst 1) regime, in simulated ns; the run fails if the
//!   drained p99 exceeds it (a regression tripwire: queueing leaking
//!   into the sequential path shows up here first);
//! * `FBUF_BENCH_DIR`       — report directory (default
//!   `target/bench-reports`).

use std::process::ExitCode;
use std::time::Instant;

use fbuf::{run_offered_load, QueueConfig, QueueReport};
use fbuf_sim::bench::{BenchRunner, Unit};
use fbuf_sim::{Json, ToJson};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// `FBUF_QUEUE_BURSTS` as a sorted, deduplicated list (default 1,4,16,64).
fn burst_sizes() -> Vec<usize> {
    let mut bursts: Vec<usize> = match std::env::var("FBUF_QUEUE_BURSTS") {
        Ok(s) => s
            .split(',')
            .filter_map(|t| t.trim().parse().ok())
            .filter(|&n: &usize| n > 0)
            .collect(),
        Err(_) => vec![1, 4, 16, 64],
    };
    if bursts.is_empty() {
        bursts.push(1);
    }
    bursts.sort_unstable();
    bursts.dedup();
    bursts
}

/// One sweep point's invariants; the engine must conserve transfers and
/// only ever refuse work explicitly.
fn check_point(burst: usize, r: &QueueReport) -> Result<(), String> {
    if r.completed + r.aborted != r.offered {
        return Err(format!(
            "burst {burst}: {} completed + {} aborted != {} offered — transfers lost",
            r.completed, r.aborted, r.offered
        ));
    }
    if burst == 1 && r.queue_delay.max() != 0 {
        return Err(format!(
            "burst 1: max queue delay {} ns — the drained regime must queue nothing",
            r.queue_delay.max()
        ));
    }
    if burst == 1 && (r.aborted != 0 || r.overloads != 0) {
        return Err(format!(
            "burst 1: {} aborts / {} overloads in the drained regime",
            r.aborted, r.overloads
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let transfers = env_u64("FBUF_QUEUE_TRANSFERS", 512);
    let bursts = burst_sizes();
    let hops = env_u64("FBUF_QUEUE_HOPS", 2) as usize;
    let depth = env_u64("FBUF_QUEUE_DEPTH", 64) as usize;
    let pages = env_u64("FBUF_QUEUE_PAGES", 1);

    println!(
        "== fbuf-queue: {transfers} transfers/point, bursts {bursts:?}, {hops} hop(s), inbox depth {depth}, {pages} page(s)/fbuf =="
    );
    println!(
        "{:>6} {:>9} {:>9} {:>9} {:>10} {:>10} {:>10} {:>10}",
        "burst", "completed", "aborted", "overload", "p50_ns", "p90_ns", "p99_ns", "mbps"
    );

    let host_t0 = Instant::now();
    let mut points: Vec<(usize, QueueReport)> = Vec::with_capacity(bursts.len());
    for &burst in &bursts {
        let cfg = QueueConfig {
            transfers,
            burst,
            hops,
            pages,
            inbox_depth: depth,
        };
        let r = match run_offered_load(&cfg) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("fbuf-queue FAILED at burst {burst}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = check_point(burst, &r) {
            eprintln!("fbuf-queue FAILED: {e}");
            return ExitCode::FAILURE;
        }
        let mbps = r.elapsed.mbps(r.bytes_delivered);
        println!(
            "{:>6} {:>9} {:>9} {:>9} {:>10} {:>10} {:>10} {:>10.1}",
            burst,
            r.completed,
            r.aborted,
            r.overloads,
            r.queue_delay.p50(),
            r.queue_delay.p90(),
            r.queue_delay.p99(),
            mbps,
        );
        points.push((burst, r));
    }
    let host_ns = host_t0.elapsed().as_nanos().max(1) as u64;

    // Where the heaviest point's transfer time went, per causal span.
    if let Some((burst, r)) = points.last() {
        println!(
            "span stages at burst {burst}: {} spans, queueing p50/p99 {}/{} ns, service p50/p99 {}/{} ns",
            r.spans.spans,
            r.spans.queueing.p50(),
            r.spans.queueing.p99(),
            r.spans.service.p50(),
            r.spans.service.p99(),
        );
    }

    // Optional SLO gate on the drained regime's tail: with one transfer
    // in flight, per-hop queueing delay must stay within the threshold.
    if let Ok(raw) = std::env::var("FBUF_QUEUE_SLO_P99_NS") {
        match raw.trim().parse::<u64>() {
            Ok(slo) => {
                let Some((_, drained)) = points.iter().find(|(b, _)| *b == 1) else {
                    eprintln!(
                        "fbuf-queue FAILED: FBUF_QUEUE_SLO_P99_NS set, but the sweep has no burst-1 (drained) point"
                    );
                    return ExitCode::FAILURE;
                };
                let p99 = drained.queue_delay.p99();
                if p99 > slo {
                    eprintln!(
                        "fbuf-queue FAILED: drained p99 queueing delay {p99} ns exceeds the SLO of {slo} ns"
                    );
                    return ExitCode::FAILURE;
                }
                println!("SLO: drained p99 queueing delay {p99} ns <= {slo} ns");
            }
            Err(_) => {
                eprintln!("fbuf-queue FAILED: FBUF_QUEUE_SLO_P99_NS={raw} is not a number");
                return ExitCode::FAILURE;
            }
        }
    }

    // Queueing delay must actually respond to offered load: the largest
    // burst waits strictly longer at the tail than the drained regime.
    if bursts.len() > 1 {
        let first = &points.first().expect("at least one point").1;
        let last = &points.last().expect("at least one point").1;
        if last.queue_delay.p99() <= first.queue_delay.p99() && last.queue_delay.max() == 0 {
            eprintln!(
                "fbuf-queue FAILED: offered load {}x never built queueing delay",
                bursts.last().expect("non-empty")
            );
            return ExitCode::FAILURE;
        }
    }

    let mut runner = BenchRunner::new("queue");
    runner.set_threads(1);
    runner.param("policy", fbuf::QuotaPolicy::default().name().to_json());
    runner.param("transfers", transfers);
    runner.param("hops", hops as u64);
    runner.param("inbox_depth", depth as u64);
    runner.param("pages_per_fbuf", pages);
    runner.param(
        "bursts",
        Json::Arr(bursts.iter().map(|&b| (b as u64).to_json()).collect()),
    );
    let total_completed: u64 = points.iter().map(|(_, r)| r.completed).sum();
    for (burst, r) in &points {
        runner.latency(&format!("queue_delay_b{burst}"), &r.queue_delay);
        runner.measure(&format!("xfer_sim_us_b{burst}"), Unit::SimUs, || {
            r.elapsed.as_us_f64() / r.completed.max(1) as f64
        });
        runner.measure(&format!("delivered_mbps_b{burst}"), Unit::Mbps, || {
            r.elapsed.mbps(r.bytes_delivered)
        });
    }
    runner.host_throughput("transfers_completed", total_completed, host_ns, None);
    // The highest-load point's telemetry (inbox depths, pending events,
    // overload drops over simulated time) is the interesting one.
    if let Some((_, r)) = points.last() {
        runner.telemetry(fbuf_sim::metrics::DEFAULT_CADENCE_NS, &r.telemetry);
    }
    let sweep: Vec<Json> = points
        .iter()
        .map(|(burst, r)| {
            Json::obj(vec![
                ("burst", (*burst as u64).to_json()),
                ("offered", r.offered.to_json()),
                ("completed", r.completed.to_json()),
                ("aborted", r.aborted.to_json()),
                ("overloads", r.overloads.to_json()),
                ("queue_delay_p50_ns", r.queue_delay.p50().to_json()),
                ("queue_delay_p90_ns", r.queue_delay.p90().to_json()),
                ("queue_delay_p99_ns", r.queue_delay.p99().to_json()),
                ("queue_delay_max_ns", r.queue_delay.max().to_json()),
                ("sim_elapsed_us", r.elapsed.as_us_f64().to_json()),
                ("bytes_delivered", r.bytes_delivered.to_json()),
            ])
        })
        .collect();
    runner.artifact("sweep", Json::Arr(sweep));
    // Where each point's transfer time went, stage by stage (spans
    // reconstructed from the engine's causal trace — DESIGN.md §13).
    let stages: Vec<Json> = points
        .iter()
        .map(|(burst, r)| {
            Json::obj(vec![
                ("burst", (*burst as u64).to_json()),
                ("decomposition", r.spans.to_json()),
            ])
        })
        .collect();
    runner.artifact("span_stages", Json::Arr(stages));

    match runner.finish() {
        Ok(path) => {
            println!("report: {}", path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fbuf-queue FAILED: could not write report: {e}");
            ExitCode::FAILURE
        }
    }
}
