//! Shared observation helpers for bench targets.
//!
//! Every `BENCH_*.json` report carries two observability blocks next to
//! its timing results: the operation-**counter delta** of a
//! representative workload, and **latency percentiles** from the
//! tracer's span histograms. The helpers here run such a workload with
//! the tracer enabled and hand both back, so each target attaches them
//! with [`BenchRunner::counters`] and [`BenchRunner::latency`] in two
//! lines.
//!
//! [`BenchRunner::counters`]: fbuf_sim::bench::BenchRunner::counters
//! [`BenchRunner::latency`]: fbuf_sim::bench::BenchRunner::latency

use fbuf::{AllocMode, FbufSystem, SendMode};
use fbuf_net::{EndToEnd, EndToEndConfig, LoopbackConfig, LoopbackStack};
use fbuf_sim::bench::BenchRunner;
use fbuf_sim::{Histogram, MachineConfig, StatsSnapshot};
use fbuf_vm::facility::TransferMechanism;
use fbuf_vm::Machine;

/// What a representative traced workload yields: the counter delta over
/// its measured section plus the merged span histograms.
pub struct Observation {
    /// Counter delta (measured section only, after warm-up).
    pub counters: StatsSnapshot,
    /// Allocation service time, merged across paths.
    pub alloc: Histogram,
    /// Transfer latency, merged across paths.
    pub transfer: Histogram,
}

/// Attaches an observation to a report the standard way: the counter
/// delta accumulates into the `counters` object, and the two span
/// histograms land under `latency` as `alloc_<label>` and
/// `transfer_<label>`. Every target uses this instead of hand-rolling
/// the same three calls.
pub fn attach(r: &mut BenchRunner, label: &str, obs: &Observation) {
    r.counters(&obs.counters);
    r.latency(&format!("alloc_{label}"), &obs.alloc);
    r.latency(&format!("transfer_{label}"), &obs.transfer);
}

fn bench_config() -> MachineConfig {
    let mut cfg = MachineConfig::decstation_5000_200();
    cfg.phys_mem = 24 << 20;
    cfg.chunk_size = 1 << 20;
    cfg
}

/// A Table-1/Figure-3-style single boundary crossing: alloc, touch every
/// page, one RPC, send, touch, free on both sides.
pub fn crossing(cached: bool, send: SendMode, size: u64, iters: usize) -> Observation {
    let mut s = FbufSystem::new(bench_config());
    s.charge_clearing = false;
    let a = s.create_domain();
    let b = s.create_domain();
    let mode = if cached {
        AllocMode::Cached(s.create_path(vec![a, b]).expect("fresh domains"))
    } else {
        AllocMode::Uncached
    };
    let page = s.machine().page_size();
    let cycle = |s: &mut FbufSystem| {
        let id = s.alloc(a, mode, size).expect("alloc");
        let mut off = 0;
        while off < size {
            s.write_fbuf(a, id, off, &[7u8]).expect("write");
            off += page;
        }
        s.hop(a, b);
        s.send(id, a, b, send).expect("send");
        s.free(id, b).expect("free b");
        s.free(id, a).expect("free a");
    };
    for _ in 0..2 {
        cycle(&mut s);
    }
    let tracer = s.machine().tracer();
    tracer.set_enabled(true);
    let mark = s.stats().snapshot();
    for _ in 0..iters {
        cycle(&mut s);
    }
    Observation {
        counters: s.stats().snapshot().delta(&mark),
        alloc: tracer.merged_alloc_latency(),
        transfer: tracer.merged_transfer_latency(),
    }
}

/// The Figure-4 loopback workload (warm-up excluded from the delta).
pub fn loopback(cfg: LoopbackConfig, size: u64, msgs: usize) -> Observation {
    let mut s = LoopbackStack::new(bench_config(), cfg);
    for _ in 0..2 {
        s.send_message(size, false).expect("warm-up");
    }
    let tracer = s.fbs.machine().tracer();
    tracer.set_enabled(true);
    let mark = s.fbs.stats().snapshot();
    for _ in 0..msgs {
        s.send_message(size, false).expect("message");
    }
    Observation {
        counters: s.fbs.stats().snapshot().delta(&mark),
        alloc: tracer.merged_alloc_latency(),
        transfer: tracer.merged_transfer_latency(),
    }
}

/// The Figure-5/6 end-to-end workload; counters and histograms are
/// summed over the two hosts.
pub fn endtoend(cfg: EndToEndConfig, size: u64, msgs: usize) -> Observation {
    let mut e = EndToEnd::new(bench_config(), cfg);
    e.send_message(size, 0, false).expect("warm-up");
    let (tx, rx) = (e.tx.fbs.machine().tracer(), e.rx.fbs.machine().tracer());
    tx.set_enabled(true);
    rx.set_enabled(true);
    let tx_mark = e.tx.fbs.stats().snapshot();
    let rx_mark = e.rx.fbs.stats().snapshot();
    for _ in 0..msgs {
        e.send_message(size, 0, false).expect("message");
    }
    let tx_delta = e.tx.fbs.stats().snapshot().delta(&tx_mark);
    let rx_delta = e.rx.fbs.stats().snapshot().delta(&rx_mark);
    let mut alloc = tx.merged_alloc_latency();
    alloc.merge(&rx.merged_alloc_latency());
    let mut transfer = tx.merged_transfer_latency();
    transfer.merge(&rx.merged_transfer_latency());
    Observation {
        counters: tx_delta.plus(&rx_delta),
        alloc,
        transfer,
    }
}

/// A baseline-facility streaming workload (alloc → touch → transfer →
/// free per round), for the §2.2.1 remap target.
pub fn facility(mech: &mut dyn TransferMechanism, pages: u64, rounds: usize) -> Observation {
    let mut m = Machine::new(bench_config());
    let a = m.create_domain();
    let b = m.create_domain();
    let page = m.page_size();
    let len = pages * page;
    let mut cycle = |m: &mut Machine| {
        let va = mech.alloc(m, a, len).expect("alloc");
        for i in 0..pages {
            m.write(a, va + i * page, &[1]).expect("write");
        }
        let rva = mech.transfer(m, a, va, len, b).expect("transfer");
        for i in 0..pages {
            m.read(b, rva + i * page, 1).expect("read");
        }
        mech.free(m, b, rva, len).expect("free");
    };
    cycle(&mut m);
    let tracer = m.tracer();
    tracer.set_enabled(true);
    let mark = m.stats().snapshot();
    for _ in 0..rounds {
        cycle(&mut m);
    }
    Observation {
        counters: m.stats().snapshot().delta(&mark),
        alloc: tracer.merged_alloc_latency(),
        transfer: tracer.merged_transfer_latency(),
    }
}
