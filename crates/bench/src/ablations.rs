//! Design-choice ablations.
//!
//! The paper's design (§3.2) is a stack of optimizations over a base
//! remapping mechanism; §3.3 adds policy choices (LIFO free lists, the
//! 16-entry driver path cache, piggybacked deallocation notices). Each
//! ablation here isolates one of those choices.

use fbuf::{AllocMode, FbufSystem, ReusePolicy, SendMode};
use fbuf_ipc::Rpc;
use fbuf_net::{DomainSetup, EndToEnd, EndToEndConfig};
use fbuf_sim::{Json, MachineConfig, ToJson};
use fbuf_vm::facility::{RemapFacility, TransferMechanism};
use fbuf_vm::{DomainId, Machine};

use crate::report::CostRow;
use crate::table1;

fn machine_cfg() -> MachineConfig {
    let mut cfg = MachineConfig::decstation_5000_200();
    cfg.phys_mem = 24 << 20;
    cfg.chunk_size = 1 << 20;
    cfg
}

// ---------------------------------------------------------------------
// A2: the optimization stack
// ---------------------------------------------------------------------

/// Cumulative per-page cost as each §3.2 optimization is applied:
/// base remap with clearing → drop clearing → fbufs uncached/secured
/// (restricted dynamic read sharing) → uncached/volatile → cached/secured
/// (fbuf caching) → cached/volatile (the full design).
pub fn optimization_stack() -> Vec<CostRow> {
    let remap = |fraction: f64| {
        let mut m = Machine::new(machine_cfg());
        let a = m.create_domain();
        let b = m.create_domain();
        let mut f = RemapFacility::new(fraction);
        let page = m.page_size();
        let mut cycle = |m: &mut Machine, pages: u64| {
            let len = pages * page;
            let t0 = m.clock().now();
            let va = f.alloc(m, a, len).expect("alloc");
            for i in 0..pages {
                m.write(a, va + i * page, &[1]).expect("write");
            }
            f.transfer(m, a, va, len, b).expect("transfer");
            for i in 0..pages {
                m.read(b, va + i * page, 1).expect("read");
            }
            f.free(m, b, va, len).expect("free");
            (m.clock().now() - t0).as_us_f64()
        };
        for _ in 0..2 {
            cycle(&mut m, table1::SMALL_PAGES);
            cycle(&mut m, table1::LARGE_PAGES);
        }
        (cycle(&mut m, table1::LARGE_PAGES) - cycle(&mut m, table1::SMALL_PAGES))
            / (table1::LARGE_PAGES - table1::SMALL_PAGES) as f64
    };
    vec![
        CostRow::new("base remap, full clearing", remap(1.0)),
        CostRow::new("+ no security clearing", remap(0.0)),
        CostRow::new(
            "+ shared fbuf region (uncached, secured)",
            table1::fbuf_slope(false, SendMode::Secure),
        ),
        CostRow::new(
            "+ volatile fbufs (uncached)",
            table1::fbuf_slope(false, SendMode::Volatile),
        ),
        CostRow::new(
            "+ fbuf caching (full design)",
            table1::fbuf_slope(true, SendMode::Volatile),
        ),
    ]
}

// ---------------------------------------------------------------------
// A1: LIFO vs FIFO free lists under memory pressure
// ---------------------------------------------------------------------

/// Result of the free-list-order ablation.
#[derive(Debug, Clone)]
pub struct LifoRow {
    /// `lifo` or `fifo`.
    pub policy: String,
    /// Allocations that found a fully resident buffer.
    pub resident_hits: u64,
    /// Allocations that had to re-materialize reclaimed frames (each one
    /// pays allocation + clearing + mapping again).
    pub rematerializations: u64,
}

impl ToJson for LifoRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("policy", self.policy.to_json()),
            ("resident_hits", self.resident_hits.to_json()),
            ("rematerializations", self.rematerializations.to_json()),
        ])
    }
}

/// Runs a pool of parked fbufs under pageout pressure: each round
/// allocates/frees a few buffers while the pageout daemon reclaims from
/// the cold end. LIFO keeps reusing the hot (resident) buffers; FIFO
/// churns through reclaimed ones.
pub fn lifo_vs_fifo(rounds: usize) -> Vec<LifoRow> {
    [ReusePolicy::Lifo, ReusePolicy::Fifo]
        .into_iter()
        .map(|policy| {
            let mut s = FbufSystem::new(machine_cfg());
            s.charge_clearing = true;
            s.reuse_policy = policy;
            let a = s.create_domain();
            let b = s.create_domain();
            let path = s.create_path(vec![a, b]).expect("fresh domains");
            // Build a pool of 8 parked one-page buffers.
            let mut ids = Vec::new();
            for _ in 0..8 {
                ids.push(s.alloc(a, AllocMode::Cached(path), 4096).expect("alloc"));
            }
            for id in ids {
                s.free(id, a).expect("free");
            }
            let mut hits = 0;
            let mut remat = 0;
            for _ in 0..rounds {
                // Memory pressure: reclaim two frames from the cold end.
                s.reclaim_frames(2);
                // The workload reuses two buffers per round.
                for _ in 0..2 {
                    let before = s.stats().frames_allocated();
                    let id = s.alloc(a, AllocMode::Cached(path), 4096).expect("alloc");
                    if s.stats().frames_allocated() > before {
                        remat += 1;
                    } else {
                        hits += 1;
                    }
                    s.send(id, a, b, SendMode::Volatile).expect("send");
                    s.free(id, b).expect("free b");
                    s.free(id, a).expect("free a");
                }
            }
            LifoRow {
                policy: match policy {
                    ReusePolicy::Lifo => "lifo".to_string(),
                    ReusePolicy::Fifo => "fifo".to_string(),
                },
                resident_hits: hits,
                rematerializations: remat,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// A3: driver path-cache size vs offered working set
// ---------------------------------------------------------------------

/// Result of the VCI-cache ablation.
#[derive(Debug, Clone)]
pub struct PathCacheRow {
    /// Number of concurrently active VCIs.
    pub active_vcis: u32,
    /// Fraction of PDUs received into cached fbufs.
    pub cached_fraction: f64,
    /// Achieved throughput in Mb/s.
    pub throughput_mbps: f64,
}

impl ToJson for PathCacheRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("active_vcis", self.active_vcis.to_json()),
            ("cached_fraction", self.cached_fraction.to_json()),
            ("throughput_mbps", self.throughput_mbps.to_json()),
        ])
    }
}

/// Sweeps the number of active VCIs across the driver's 16-entry cache.
pub fn path_cache(vcis: &[u32], messages: usize) -> Vec<PathCacheRow> {
    vcis.iter()
        .map(|&n| {
            let mut e = EndToEnd::new(machine_cfg(), EndToEndConfig::fig5(DomainSetup::User));
            // Warm all VCIs once.
            for v in 0..n {
                e.send_message(16 << 10, v, false).expect("warm");
            }
            let before = e.rx.fbs.stats().snapshot();
            let mark = e.rx.fbs.machine().clock().mark();
            for i in 0..messages {
                e.send_message(16 << 10, (i as u32) % n, false)
                    .expect("send");
            }
            let elapsed = e.rx.fbs.machine().clock().since(mark);
            let d = e.rx.fbs.stats().snapshot().delta(&before);
            let total = d.driver_cached_rx + d.driver_uncached_rx;
            PathCacheRow {
                active_vcis: n,
                cached_fraction: d.driver_cached_rx as f64 / total.max(1) as f64,
                throughput_mbps: elapsed.mbps((16 << 10) * messages as u64),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// A4: deallocation-notice threshold
// ---------------------------------------------------------------------

/// Result of the notice-threshold ablation.
#[derive(Debug, Clone)]
pub struct NoticeRow {
    /// Explicit-message threshold.
    pub threshold: usize,
    /// Notices that rode RPC replies.
    pub piggybacked: u64,
    /// Explicit messages that had to be sent.
    pub explicit: u64,
}

impl ToJson for NoticeRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("threshold", self.threshold.to_json()),
            ("piggybacked", self.piggybacked.to_json()),
            ("explicit", self.explicit.to_json()),
        ])
    }
}

/// Queues `frees` deallocation notices with an owner RPC every
/// `rpc_every` frees, across thresholds.
pub fn notice_thresholds(thresholds: &[usize], frees: u64, rpc_every: u64) -> Vec<NoticeRow> {
    thresholds
        .iter()
        .map(|&threshold| {
            let m = Machine::new(machine_cfg());
            let mut rpc = Rpc::new(m.clock(), m.stats(), m.tracer(), m.costs().clone());
            rpc.set_notice_threshold(threshold);
            let owner = DomainId(1);
            let holder = DomainId(2);
            for i in 0..frees {
                rpc.queue_dealloc_notice(owner, holder, i);
                if i % rpc_every == rpc_every - 1 {
                    rpc.call(owner, holder);
                }
            }
            NoticeRow {
                threshold,
                piggybacked: m.stats().piggybacked_notices(),
                explicit: m.stats().explicit_notice_messages(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Bus contention (Osiris ceilings)
// ---------------------------------------------------------------------

/// Throughput with and without the TurboChannel bus-contention derating,
/// exposing the 367 Mb/s DMA ceiling the paper derives.
pub fn bus_contention() -> Vec<(String, f64)> {
    [true, false]
        .into_iter()
        .map(|contended| {
            let mut cfg = EndToEndConfig::fig5(DomainSetup::KernelOnly);
            cfg.contended = contended;
            let mut e = EndToEnd::new(machine_cfg(), cfg);
            let r = e.run(1 << 20, 4).expect("run");
            (
                if contended {
                    "contended (285 Mb/s ceiling)".to_string()
                } else {
                    "uncontended (367 Mb/s DMA ceiling)".to_string()
                },
                r.throughput_mbps,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimization_stack_is_monotone() {
        let rows = optimization_stack();
        for w in rows.windows(2) {
            assert!(
                w[1].per_page_us < w[0].per_page_us,
                "each optimization must help: {} ({:.1}) -> {} ({:.1})",
                w[0].mechanism,
                w[0].per_page_us,
                w[1].mechanism,
                w[1].per_page_us
            );
        }
        // Full design an order of magnitude better than the base.
        assert!(rows[0].per_page_us > 10.0 * rows.last().expect("rows").per_page_us);
    }

    #[test]
    fn lifo_avoids_rematerialization() {
        let rows = lifo_vs_fifo(12);
        let lifo = &rows[0];
        let fifo = &rows[1];
        assert!(
            lifo.rematerializations < fifo.rematerializations,
            "LIFO {lifo:?} vs FIFO {fifo:?}"
        );
        assert!(lifo.resident_hits > fifo.resident_hits);
    }

    #[test]
    fn path_cache_degrades_past_16_vcis() {
        let rows = path_cache(&[8, 16, 24], 48);
        assert!(rows[0].cached_fraction > 0.95, "{:?}", rows[0]);
        assert!(rows[1].cached_fraction > 0.95, "{:?}", rows[1]);
        // Round-robin over 24 VCIs with a 16-entry LRU misses every time.
        assert!(rows[2].cached_fraction < 0.1, "{:?}", rows[2]);
        assert!(rows[2].throughput_mbps < rows[0].throughput_mbps);
    }

    #[test]
    fn small_thresholds_force_explicit_messages() {
        let rows = notice_thresholds(&[4, 64, 1024], 1000, 16);
        assert!(rows[0].explicit > 0);
        assert_eq!(rows[2].explicit, 0);
        assert!(rows[2].piggybacked > 900);
        // Higher thresholds monotonically reduce explicit traffic.
        assert!(rows[0].explicit >= rows[1].explicit);
        assert!(rows[1].explicit >= rows[2].explicit);
    }

    #[test]
    fn contention_ablation_exposes_dma_ceiling() {
        let rows = bus_contention();
        let contended = rows[0].1;
        let free = rows[1].1;
        assert!((contended - 285.0).abs() < 25.0, "contended {contended:.0}");
        assert!(free > contended + 40.0, "uncontended {free:.0}");
        assert!((free - 367.0).abs() < 40.0, "uncontended {free:.0}");
    }
}
