//! Row formats shared by the `repro` binary and the benches, with their
//! JSON encodings for the `BENCH_*.json` reports.

use fbuf_sim::{Json, ToJson};

/// One mechanism row of Table 1.
#[derive(Debug, Clone)]
pub struct CostRow {
    /// Mechanism name as the paper labels it.
    pub mechanism: String,
    /// Incremental per-page cost in microseconds.
    pub per_page_us: f64,
    /// Asymptotic throughput in Mb/s (page bits / per-page cost).
    pub mbps: f64,
}

impl CostRow {
    /// Builds a row from a per-page cost, deriving the asymptotic
    /// throughput for a 4 KB page.
    pub fn new(mechanism: &str, per_page_us: f64) -> CostRow {
        CostRow {
            mechanism: mechanism.to_string(),
            per_page_us,
            mbps: 4096.0 * 8.0 / per_page_us,
        }
    }
}

impl ToJson for CostRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("mechanism", self.mechanism.to_json()),
            ("per_page_us", self.per_page_us.to_json()),
            ("mbps", self.mbps.to_json()),
        ])
    }
}

/// One point of a throughput-vs-size curve.
#[derive(Debug, Clone, Copy)]
pub struct CurvePoint {
    /// Message size in bytes.
    pub size: u64,
    /// Throughput in Mb/s.
    pub mbps: f64,
}

/// A named curve.
#[derive(Debug, Clone)]
pub struct Curve {
    /// Legend label.
    pub label: String,
    /// The series.
    pub points: Vec<CurvePoint>,
}

impl ToJson for CurvePoint {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("size", self.size.to_json()),
            ("mbps", self.mbps.to_json()),
        ])
    }
}

impl ToJson for Curve {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("label", self.label.to_json()),
            ("points", self.points.to_json()),
        ])
    }
}

/// Prints a set of curves as an aligned text table (sizes down, curves
/// across).
pub fn print_curves(title: &str, curves: &[Curve]) {
    println!("\n== {title} ==");
    print!("{:>10}", "size");
    for c in curves {
        print!("  {:>24}", c.label);
    }
    println!();
    let n = curves.first().map(|c| c.points.len()).unwrap_or(0);
    for i in 0..n {
        print!("{:>10}", human_size(curves[0].points[i].size));
        for c in curves {
            print!("  {:>19.1} Mb/s", c.points[i].mbps);
        }
        println!();
    }
}

/// Prints Table-1-style cost rows.
pub fn print_cost_rows(title: &str, rows: &[CostRow]) {
    println!("\n== {title} ==");
    println!(
        "{:<28} {:>18} {:>22}",
        "mechanism", "per-page cost", "asymptotic throughput"
    );
    for r in rows {
        println!(
            "{:<28} {:>12.2} us/page {:>17.0} Mb/s",
            r.mechanism, r.per_page_us, r.mbps
        );
    }
}

/// Human-readable byte size.
pub fn human_size(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{}MB", bytes >> 20)
    } else if bytes >= 1 << 10 {
        format!("{}KB", bytes >> 10)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_row_derives_throughput() {
        let r = CostRow::new("x", 3.0);
        assert!((r.mbps - 10_922.0).abs() < 1.0);
    }

    #[test]
    fn rows_encode_to_json_and_back() {
        let row = CostRow::new("fbufs, cached/volatile", 3.0);
        let doc = Json::parse(&row.to_json().render()).unwrap();
        assert_eq!(
            doc.get("mechanism").unwrap().as_str(),
            Some("fbufs, cached/volatile")
        );
        assert_eq!(doc.get("per_page_us").unwrap().as_f64(), Some(3.0));
        let curve = Curve {
            label: "user-user".to_string(),
            points: vec![CurvePoint {
                size: 4096,
                mbps: 284.7,
            }],
        };
        let doc = Json::parse(&curve.to_json().render()).unwrap();
        let pt = &doc.get("points").unwrap().as_arr().unwrap()[0];
        assert_eq!(pt.get("size").unwrap().as_f64(), Some(4096.0));
        assert_eq!(pt.get("mbps").unwrap().as_f64(), Some(284.7));
    }

    #[test]
    fn human_sizes() {
        assert_eq!(human_size(512), "512B");
        assert_eq!(human_size(8192), "8KB");
        assert_eq!(human_size(2 << 20), "2MB");
    }
}
