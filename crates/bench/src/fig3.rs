//! Figure 3: throughput of a single domain-boundary crossing as a
//! function of message size.
//!
//! "Unlike Table 1, the throughput rates shown for small messages in these
//! graphs are strongly influenced by the control transfer latency of the
//! IPC mechanism." Five curves: Mach native (copy below 2 KB, COW above),
//! and the four fbuf regimes.

use fbuf::{AllocMode, FbufSystem, SendMode};
use fbuf_ipc::Rpc;
use fbuf_sim::MachineConfig;
use fbuf_vm::facility::{MachNative, TransferMechanism};
use fbuf_vm::Machine;

use crate::report::{Curve, CurvePoint};
use crate::sweep_sizes;

fn bench_config() -> MachineConfig {
    let mut cfg = MachineConfig::decstation_5000_200();
    cfg.phys_mem = 24 << 20;
    cfg.chunk_size = 1 << 20;
    cfg
}

/// Default size sweep: 64 B to 1 MB.
pub fn default_sizes() -> Vec<u64> {
    sweep_sizes(64, 1 << 20)
}

/// Throughput of one fbuf regime at one size (one IPC round trip per
/// message, as through an x-kernel proxy).
pub fn fbuf_throughput(cached: bool, send: SendMode, size: u64, iters: usize) -> f64 {
    let mut s = FbufSystem::new(bench_config());
    s.charge_clearing = false;
    let a = s.create_domain();
    let b = s.create_domain();
    let mode = if cached {
        AllocMode::Cached(s.create_path(vec![a, b]).expect("fresh domains"))
    } else {
        AllocMode::Uncached
    };
    let page = s.machine().page_size();
    let cycle = |s: &mut FbufSystem| {
        let id = s.alloc(a, mode, size).expect("alloc");
        let mut off = 0;
        loop {
            s.write_fbuf(a, id, off, &[7u8]).expect("write");
            if off + page >= size {
                break;
            }
            off += page;
        }
        s.hop(a, b);
        s.send(id, a, b, send).expect("send");
        let mut off = 0;
        loop {
            s.read_fbuf(b, id, off, 1).expect("read");
            if off + page >= size {
                break;
            }
            off += page;
        }
        s.free(id, b).expect("free b");
        s.free(id, a).expect("free a");
    };
    for _ in 0..2 {
        cycle(&mut s);
    }
    let t0 = s.machine().clock().now();
    for _ in 0..iters {
        cycle(&mut s);
    }
    (s.machine().clock().now() - t0).mbps(size * iters as u64)
}

/// Throughput of the Mach-native composite at one size.
pub fn mach_throughput(size: u64, iters: usize) -> f64 {
    let mut m = Machine::new(bench_config());
    let a = m.create_domain();
    let b = m.create_domain();
    let mut rpc = Rpc::new(m.clock(), m.stats(), m.tracer(), m.costs().clone());
    let mut mech = MachNative::new();
    let page = m.page_size();
    let mut cycle = |m: &mut Machine| {
        let va = mech.alloc(m, a, size).expect("alloc");
        let mut off = 0;
        loop {
            m.write(a, va + off, &[7u8]).expect("write");
            if off + page >= size {
                break;
            }
            off += page;
        }
        rpc.call(a, b);
        let rva = mech.transfer(m, a, va, size, b).expect("transfer");
        let mut off = 0;
        loop {
            m.read(b, rva + off, 1).expect("read");
            if off + page >= size {
                break;
            }
            off += page;
        }
        mech.free(m, b, rva, size).expect("free b");
        mech.free(m, a, va, size).expect("free a");
    };
    for _ in 0..2 {
        cycle(&mut m);
    }
    let t0 = m.clock().now();
    for _ in 0..iters {
        cycle(&mut m);
    }
    (m.clock().now() - t0).mbps(size * iters as u64)
}

/// Produces the five Figure 3 curves over `sizes`.
pub fn run(sizes: &[u64], iters: usize) -> Vec<Curve> {
    let regimes: [(&str, Option<(bool, SendMode)>); 5] = [
        ("Mach", None),
        ("cached, volatile fbufs", Some((true, SendMode::Volatile))),
        (
            "volatile, uncached fbufs",
            Some((false, SendMode::Volatile)),
        ),
        ("non-volatile, cached fbufs", Some((true, SendMode::Secure))),
        (
            "non-volatile, uncached fbufs",
            Some((false, SendMode::Secure)),
        ),
    ];
    regimes
        .iter()
        .map(|(label, regime)| Curve {
            label: label.to_string(),
            points: sizes
                .iter()
                .map(|&size| CurvePoint {
                    size,
                    mbps: match regime {
                        None => mach_throughput(size, iters),
                        Some((cached, send)) => fbuf_throughput(*cached, *send, size, iters),
                    },
                })
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_volatile_dominates_everywhere() {
        // "cached/volatile fbufs outperform Mach's transfer facility even
        // for very small message sizes. Consequently, no special-casing is
        // necessary to efficiently transfer small messages."
        for size in [256u64, 1024, 65_536, 1 << 20] {
            let fb = fbuf_throughput(true, SendMode::Volatile, size, 3);
            let mach = mach_throughput(size, 3);
            assert!(fb > mach, "size {size}: fbufs {fb:.1} vs Mach {mach:.1}");
        }
    }

    #[test]
    fn mach_beats_uncached_fbufs_below_2kb() {
        // "For message sizes under 2KB, Mach's native data transfer
        // facility is slightly faster than uncached or non-volatile fbufs;
        // this is due to the latency associated with invoking the virtual
        // memory system."
        let mach = mach_throughput(1024, 3);
        let uncached = fbuf_throughput(false, SendMode::Volatile, 1024, 3);
        assert!(
            mach > uncached,
            "Mach {mach:.1} vs uncached fbufs {uncached:.1} at 1KB"
        );
        // But the relationship flips by 8 KB.
        let mach = mach_throughput(8192, 3);
        let uncached = fbuf_throughput(false, SendMode::Volatile, 8192, 3);
        assert!(uncached > mach);
    }

    #[test]
    fn throughput_grows_with_size() {
        let small = fbuf_throughput(true, SendMode::Volatile, 4096, 3);
        let big = fbuf_throughput(true, SendMode::Volatile, 1 << 20, 2);
        assert!(big > 3.0 * small, "amortizing IPC: {small:.1} -> {big:.1}");
    }
}
