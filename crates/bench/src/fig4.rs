//! Figure 4: throughput of a UDP/IP local loopback test.

use fbuf_net::{LoopbackConfig, LoopbackStack};
use fbuf_sim::MachineConfig;

use crate::report::{Curve, CurvePoint};
use crate::sweep_sizes;

fn machine() -> MachineConfig {
    let mut cfg = MachineConfig::decstation_5000_200();
    cfg.phys_mem = 24 << 20;
    cfg
}

/// Default size sweep: 1 KB to 1 MB.
pub fn default_sizes() -> Vec<u64> {
    sweep_sizes(1 << 10, 1 << 20)
}

/// One curve: loopback throughput over `sizes` for a configuration.
pub fn curve(label: &str, cfg: LoopbackConfig, sizes: &[u64], iters: usize) -> Curve {
    Curve {
        label: label.to_string(),
        points: sizes
            .iter()
            .map(|&size| {
                let mut stack = LoopbackStack::new(machine(), cfg.clone());
                CurvePoint {
                    size,
                    mbps: stack.throughput(size, iters).expect("loopback run"),
                }
            })
            .collect(),
    }
}

/// Produces the three Figure 4 curves.
pub fn run(sizes: &[u64], iters: usize) -> Vec<Curve> {
    vec![
        curve(
            "single domain",
            LoopbackConfig::paper(false, true),
            sizes,
            iters,
        ),
        curve(
            "3 domains, cached fbufs",
            LoopbackConfig::paper(true, true),
            sizes,
            iters,
        ),
        curve(
            "3 domains, uncached fbufs",
            LoopbackConfig::paper(true, false),
            sizes,
            iters,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_shape() {
        let sizes = [4096u64, 8192, 65_536, 1 << 20];
        let curves = run(&sizes, 2);
        let get = |c: usize, i: usize| curves[c].points[i].mbps;
        // Single-domain anomaly: dip just past the 4 KB PDU size.
        assert!(get(0, 0) > get(0, 1), "expected 4KB->8KB dip");
        // Cached 3-domain > 2x uncached 3-domain at 64 KB and 1 MB.
        assert!(get(1, 2) > 2.0 * get(2, 2));
        assert!(get(1, 3) > 2.0 * get(2, 3));
        // Cached converges toward the single-domain curve at 1 MB.
        assert!(get(1, 3) > 0.9 * get(0, 3));
        // Single domain always on top.
        for i in 0..sizes.len() {
            assert!(get(0, i) >= get(1, i));
            assert!(get(1, i) >= get(2, i));
        }
    }
}
