//! The §4 CPU-load experiment: receive-host CPU utilization while
//! receiving 1 MB messages, cached vs uncached fbufs, at 16 KB and 32 KB
//! IP PDU sizes.
//!
//! "The CPU load on the receiving host during the reception of 1 MByte
//! packets is 88% when cached fbufs are used, while the CPU is saturated
//! when uncached fbufs are used. One can shift this effect by setting IP's
//! PDU size to 32 KBytes ... CPU load is only 55% when cached fbufs are
//! used."

use fbuf_net::{DomainSetup, EndToEnd, EndToEndConfig};
use fbuf_sim::{Json, MachineConfig, ToJson};

/// One measurement row.
#[derive(Debug, Clone)]
pub struct CpuLoadRow {
    /// `cached` or `uncached`.
    pub regime: String,
    /// IP PDU size in bytes.
    pub pdu: u64,
    /// Receive-host CPU utilization (0–1).
    pub rx_cpu: f64,
    /// Achieved throughput in Mb/s.
    pub throughput_mbps: f64,
}

impl ToJson for CpuLoadRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("regime", self.regime.to_json()),
            ("pdu", self.pdu.to_json()),
            ("rx_cpu", self.rx_cpu.to_json()),
            ("throughput_mbps", self.throughput_mbps.to_json()),
        ])
    }
}

fn machine() -> MachineConfig {
    let mut cfg = MachineConfig::decstation_5000_200();
    cfg.phys_mem = 24 << 20;
    cfg
}

/// Runs the four cells of the experiment (1 MB messages, user-user).
pub fn run() -> Vec<CpuLoadRow> {
    let mut rows = Vec::new();
    for pdu in [16u64 << 10, 32 << 10] {
        for cached in [true, false] {
            let mut cfg = if cached {
                EndToEndConfig::fig5(DomainSetup::User)
            } else {
                EndToEndConfig::fig6(DomainSetup::User)
            };
            cfg.pdu = pdu;
            let mut e = EndToEnd::new(machine(), cfg);
            let r = e.run(1 << 20, 4).expect("cpu load run");
            rows.push(CpuLoadRow {
                regime: if cached { "cached" } else { "uncached" }.to_string(),
                pdu,
                rx_cpu: r.rx_cpu,
                throughput_mbps: r.throughput_mbps,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_leaves_headroom_uncached_saturates_at_16k() {
        let rows = run();
        let cell = |regime: &str, pdu: u64| {
            rows.iter()
                .find(|r| r.regime == regime && r.pdu == pdu)
                .expect("cell present")
        };
        // 16 KB PDUs: cached leaves CPU headroom; uncached saturates.
        assert!(cell("cached", 16 << 10).rx_cpu < 0.95);
        assert!(cell("uncached", 16 << 10).rx_cpu > 0.98);
        // 32 KB PDUs halve protocol overhead: cached load drops well
        // below the 16 KB case.
        assert!(cell("cached", 32 << 10).rx_cpu < cell("cached", 16 << 10).rx_cpu - 0.1);
        // Cached throughput is IO-bound at both PDU sizes.
        assert!((cell("cached", 16 << 10).throughput_mbps - 285.0).abs() < 25.0);
    }
}
