//! Figures 5 and 6: UDP/IP end-to-end throughput over the Osiris model.
//!
//! Figure 5 uses cached/volatile fbufs, Figure 6 uncached/non-volatile;
//! both plot kernel-kernel, user-user, and user-netserver-user
//! configurations against message size.

use fbuf_net::{DomainSetup, EndToEnd, EndToEndConfig};
use fbuf_sim::MachineConfig;

use crate::report::{Curve, CurvePoint};
use crate::sweep_sizes;

fn machine() -> MachineConfig {
    let mut cfg = MachineConfig::decstation_5000_200();
    cfg.phys_mem = 24 << 20;
    cfg
}

/// Default size sweep: 4 KB to 1 MB.
pub fn default_sizes() -> Vec<u64> {
    sweep_sizes(4 << 10, 1 << 20)
}

/// The three domain placements, with the paper's curve labels.
pub const SETUPS: [(&str, DomainSetup); 3] = [
    ("kernel-kernel", DomainSetup::KernelOnly),
    ("user-user", DomainSetup::User),
    ("user-netserver-user", DomainSetup::UserNetserver),
];

/// End-to-end throughput at one size for one configuration.
pub fn throughput(cfg: EndToEndConfig, size: u64, count: usize) -> f64 {
    let mut e = EndToEnd::new(machine(), cfg);
    e.run(size, count).expect("end-to-end run").throughput_mbps
}

/// Produces the three curves of Figure 5 (`cached = true`) or Figure 6
/// (`cached = false`).
pub fn run(cached: bool, sizes: &[u64], count: usize) -> Vec<Curve> {
    SETUPS
        .iter()
        .map(|(label, setup)| Curve {
            label: label.to_string(),
            points: sizes
                .iter()
                .map(|&size| {
                    let cfg = if cached {
                        EndToEndConfig::fig5(*setup)
                    } else {
                        EndToEndConfig::fig6(*setup)
                    };
                    CurvePoint {
                        size,
                        mbps: throughput(cfg, size, count),
                    }
                })
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_shape() {
        let sizes = [16_384u64, 262_144, 1 << 20];
        let curves = run(true, &sizes, 3);
        let get = |c: usize, i: usize| curves[c].points[i].mbps;
        // Plateau near 285 Mb/s for large messages, all placements.
        for (c, curve) in curves.iter().enumerate() {
            assert!(
                (get(c, 2) - 285.0).abs() < 25.0,
                "{}: {:.0} Mb/s at 1MB",
                curve.label,
                get(c, 2)
            );
        }
        // Medium sizes: each crossing costs, the second more than the
        // first.
        let first = get(0, 0) - get(1, 0);
        let second = get(1, 0) - get(2, 0);
        assert!(
            first > 0.0 && second > first,
            "penalties at 16KB: first {first:.1}, second {second:.1}"
        );
    }

    #[test]
    fn figure6_shape() {
        let sizes = [1u64 << 20];
        let cached = run(true, &sizes, 3);
        let uncached = run(false, &sizes, 3);
        // user-user degraded roughly 12% versus cached.
        let c = cached[1].points[0].mbps;
        let u = uncached[1].points[0].mbps;
        let degradation = 1.0 - u / c;
        assert!(
            (0.05..0.30).contains(&degradation),
            "degradation {degradation:.2} (cached {c:.0}, uncached {u:.0})"
        );
        // user-netserver-user "only marginally lower" than user-user
        // (UDP never maps the body, so the extra hop adds little).
        let unu = uncached[2].points[0].mbps;
        assert!(unu > 0.9 * u, "netserver case {unu:.0} vs user-user {u:.0}");
    }
}
