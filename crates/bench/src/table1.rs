//! Table 1: incremental per-page cost and asymptotic throughput of six
//! transfer mechanisms across a single protection boundary.
//!
//! The methodology follows the paper's first experiment: "a test protocol
//! in the originator domain repeatedly allocates an x-kernel message,
//! writes one word in each VM page of the associated fbuf, and passes the
//! message to a dummy protocol in the receiver domain. The dummy protocol
//! touches (reads) one word in each page of the received message,
//! deallocates the message, and returns." The incremental per-page cost is
//! the slope between two message sizes (both larger than the TLB), which
//! cancels all per-message constants including IPC latency.

use fbuf::{AllocMode, FbufSystem, SendMode};
use fbuf_sim::MachineConfig;
use fbuf_vm::facility::{CopyFacility, CowFacility, TransferMechanism};
use fbuf_vm::Machine;

use crate::report::CostRow;

/// Message sizes (pages) for the slope: both sweeps exceed the 64-entry
/// TLB so every touch misses, as on the real machine under load.
pub const SMALL_PAGES: u64 = 40;
pub const LARGE_PAGES: u64 = 104;

fn bench_config() -> MachineConfig {
    let mut cfg = MachineConfig::decstation_5000_200();
    cfg.phys_mem = 16 << 20;
    // A single fbuf larger than the TLB needs chunks beyond the 64 KB
    // production default.
    cfg.chunk_size = 1 << 20;
    cfg
}

/// Per-page slope of an fbuf regime.
pub fn fbuf_slope(cached: bool, send: SendMode) -> f64 {
    let mut s = FbufSystem::new(bench_config());
    // Table 1 of the paper excludes page-clearing cost ("the cost for
    // clearing pages in the uncached case is not included in the table").
    s.charge_clearing = false;
    let a = s.create_domain();
    let b = s.create_domain();
    let mode = if cached {
        AllocMode::Cached(s.create_path(vec![a, b]).expect("fresh domains"))
    } else {
        AllocMode::Uncached
    };
    let mut cycle = |pages: u64| -> f64 {
        let page = s.machine().page_size();
        let t0 = s.machine().clock().now();
        let id = s.alloc(a, mode, pages * page).expect("alloc");
        for i in 0..pages {
            s.write_fbuf(a, id, i * page, &[7u8]).expect("write");
        }
        s.send(id, a, b, send).expect("send");
        for i in 0..pages {
            s.read_fbuf(b, id, i * page, 1).expect("read");
        }
        s.free(id, b).expect("free b");
        s.free(id, a).expect("free a");
        (s.machine().clock().now() - t0).as_us_f64()
    };
    for _ in 0..2 {
        cycle(SMALL_PAGES);
        cycle(LARGE_PAGES);
    }
    (cycle(LARGE_PAGES) - cycle(SMALL_PAGES)) / (LARGE_PAGES - SMALL_PAGES) as f64
}

/// Per-page slope of a baseline facility (Mach COW or copy).
pub fn facility_slope(mech: &mut dyn TransferMechanism) -> f64 {
    let mut m = Machine::new(bench_config());
    let a = m.create_domain();
    let b = m.create_domain();
    let mut cycle = |m: &mut Machine, pages: u64| -> f64 {
        let page = m.page_size();
        let len = pages * page;
        let t0 = m.clock().now();
        let va = mech.alloc(m, a, len).expect("alloc");
        for i in 0..pages {
            m.write(a, va + i * page, &[7u8]).expect("write");
        }
        let rva = mech.transfer(m, a, va, len, b).expect("transfer");
        for i in 0..pages {
            m.read(b, rva + i * page, 1).expect("read");
        }
        mech.free(m, b, rva, len).expect("free b");
        mech.free(m, a, va, len).expect("free a");
        (m.clock().now() - t0).as_us_f64()
    };
    for _ in 0..2 {
        cycle(&mut m, SMALL_PAGES);
        cycle(&mut m, LARGE_PAGES);
    }
    (cycle(&mut m, LARGE_PAGES) - cycle(&mut m, SMALL_PAGES)) / (LARGE_PAGES - SMALL_PAGES) as f64
}

/// Produces the six Table 1 rows.
pub fn run() -> Vec<CostRow> {
    vec![
        CostRow::new(
            "fbufs, cached/volatile",
            fbuf_slope(true, SendMode::Volatile),
        ),
        CostRow::new("fbufs, volatile", fbuf_slope(false, SendMode::Volatile)),
        CostRow::new("fbufs, cached", fbuf_slope(true, SendMode::Secure)),
        CostRow::new("fbufs", fbuf_slope(false, SendMode::Secure)),
        CostRow::new("Mach COW", facility_slope(&mut CowFacility::new())),
        CostRow::new("Copy", facility_slope(&mut CopyFacility::new())),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_reproduce_paper_anchors_and_ordering() {
        let rows = run();
        let by_name = |n: &str| {
            rows.iter()
                .find(|r| r.mechanism == n)
                .unwrap_or_else(|| panic!("missing row {n}"))
        };
        // Surviving anchors.
        assert!((by_name("fbufs, cached/volatile").per_page_us - 3.0).abs() < 0.3);
        assert!((by_name("fbufs, volatile").per_page_us - 21.0).abs() < 1.0);
        assert!((by_name("fbufs, cached").per_page_us - 29.0).abs() < 1.0);
        // Ordering: each row strictly worse than the previous, and
        // cached/volatile an order of magnitude ahead of everything else.
        let costs: Vec<f64> = rows.iter().map(|r| r.per_page_us).collect();
        for w in costs.windows(2) {
            assert!(w[0] < w[1], "rows out of order: {costs:?}");
        }
        assert!(costs[1] >= 7.0 * costs[0]);
        // Asymptotic throughput of the headline row ≈ 10,922 Mb/s.
        assert!((by_name("fbufs, cached/volatile").mbps - 10_922.0).abs() < 1_000.0);
    }
}
