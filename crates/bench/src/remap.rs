//! §2.2.1: the DASH-style remap facility re-measured.
//!
//! "Our measurements show that it is possible to achieve an incremental
//! overhead of 22 µs/page in the ping-pong test, but that one would expect
//! an incremental overhead of somewhere between 42 and 99 µs/page when
//! considering the costs of allocating, clearing, and deallocating
//! buffers, depending on what percentage of each page needed to be
//! cleared."

use fbuf_sim::{Json, MachineConfig, ToJson};
use fbuf_vm::facility::{RemapFacility, TransferMechanism};
use fbuf_vm::Machine;

/// One remap measurement.
#[derive(Debug, Clone)]
pub struct RemapRow {
    /// Measurement name.
    pub mode: String,
    /// Fraction of each page cleared (streaming only).
    pub clear_fraction: f64,
    /// Per-page cost in microseconds.
    pub per_page_us: f64,
}

impl ToJson for RemapRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("mode", self.mode.to_json()),
            ("clear_fraction", self.clear_fraction.to_json()),
            ("per_page_us", self.per_page_us.to_json()),
        ])
    }
}

fn machine() -> Machine {
    let mut cfg = MachineConfig::decstation_5000_200();
    cfg.phys_mem = 16 << 20;
    Machine::new(cfg)
}

/// Ping-pong: remap the same buffer back and forth (the Tzou/Anderson
/// methodology); returns the one-way per-page cost.
pub fn pingpong(pages: u64, rounds: usize) -> f64 {
    let mut m = machine();
    let a = m.create_domain();
    let b = m.create_domain();
    let mut f = RemapFacility::new(0.0);
    let page = m.page_size();
    let len = pages * page;
    let va = f.alloc(&mut m, a, len).expect("alloc");
    for i in 0..pages {
        m.write(a, va + i * page, &[1]).expect("write");
    }
    // Warm-up bounce.
    f.transfer(&mut m, a, va, len, b).expect("to b");
    f.transfer(&mut m, b, va, len, a).expect("back");
    let t0 = m.clock().now();
    for _ in 0..rounds {
        f.transfer(&mut m, a, va, len, b).expect("to b");
        for i in 0..pages {
            m.read(b, va + i * page, 1).expect("read");
        }
        f.transfer(&mut m, b, va, len, a).expect("back");
        for i in 0..pages {
            m.write(a, va + i * page, &[1]).expect("write");
        }
    }
    let dt = (m.clock().now() - t0).as_us_f64();
    dt / (rounds as f64 * 2.0 * pages as f64)
}

/// Streaming: full allocate → transfer → deallocate per message, with
/// `clear_fraction` of each page cleared for security.
pub fn streaming(clear_fraction: f64, pages: u64, rounds: usize) -> f64 {
    let mut m = machine();
    let a = m.create_domain();
    let b = m.create_domain();
    let mut f = RemapFacility::new(clear_fraction);
    let page = m.page_size();
    let len = pages * page;
    let mut cycle = |m: &mut Machine| {
        let va = f.alloc(m, a, len).expect("alloc");
        for i in 0..pages {
            m.write(a, va + i * page, &[1]).expect("write");
        }
        f.transfer(m, a, va, len, b).expect("transfer");
        for i in 0..pages {
            m.read(b, va + i * page, 1).expect("read");
        }
        f.free(m, b, va, len).expect("free");
    };
    cycle(&mut m);
    let t0 = m.clock().now();
    for _ in 0..rounds {
        cycle(&mut m);
    }
    let dt = (m.clock().now() - t0).as_us_f64();
    dt / (rounds as f64 * pages as f64)
}

/// Produces the §2.2.1 rows: ping-pong plus streaming at 0%, 50%, and
/// 100% clearing.
pub fn run() -> Vec<RemapRow> {
    let mut rows = vec![RemapRow {
        mode: "ping-pong".to_string(),
        clear_fraction: 0.0,
        per_page_us: pingpong(8, 8),
    }];
    for fraction in [0.0, 0.5, 1.0] {
        rows.push(RemapRow {
            mode: "streaming".to_string(),
            clear_fraction: fraction,
            per_page_us: streaming(fraction, 8, 8),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_numbers() {
        let rows = run();
        let pp = &rows[0];
        assert!((pp.per_page_us - 22.0).abs() < 2.5, "ping-pong {pp:?}");
        let s0 = rows
            .iter()
            .find(|r| r.mode == "streaming" && r.clear_fraction == 0.0)
            .expect("row");
        let s100 = rows
            .iter()
            .find(|r| r.mode == "streaming" && r.clear_fraction == 1.0)
            .expect("row");
        assert!((s0.per_page_us - 42.0).abs() < 3.0, "streaming/0 {s0:?}");
        assert!(
            (s100.per_page_us - 99.0).abs() < 3.0,
            "streaming/100 {s100:?}"
        );
        // The 42–99 µs spread is exactly the 57 µs clear cost.
        assert!((s100.per_page_us - s0.per_page_us - 57.0).abs() < 1.0);
    }
}
