//! Experiment runners regenerating every table and figure of the paper.
//!
//! Each module produces structured rows; the `repro` binary prints them in
//! the paper's format, the Criterion benches in `benches/` execute them
//! under measurement, and `EXPERIMENTS.md` records paper-vs-measured.
//!
//! | module | artifact |
//! |---|---|
//! | [`table1`] | Table 1: per-page cost and asymptotic throughput of six mechanisms |
//! | [`fig3`] | Figure 3: throughput vs message size across one boundary |
//! | [`fig4`] | Figure 4: UDP/IP local loopback, 1 vs 3 domains |
//! | [`fig5`] | Figures 5 and 6: end-to-end UDP/IP over the Osiris model |
//! | [`cpuload`] | §4 prose: receive-side CPU load at 16/32 KB PDUs |
//! | [`remap`] | §2.2.1: DASH-style remap, ping-pong vs streaming |
//! | [`ablations`] | design-choice ablations (optimization stack, LIFO, VCI cache, notices, bus contention) |
//!
//! Standalone binaries live in `src/bin/`: `repro` (paper-style text
//! tables), `fbuf-trace` (traced loopback + audit + Chrome export),
//! `fbuf-stress` (wall-clock multi-shard stress), `fbuf-queue`
//! (offered-load sweep through the event-loop engine, queueing-delay
//! percentiles per burst size), and `fbuf-fuzz` (lockstep campaigns).
//!
//! Design notes: `DESIGN.md` §5 (the per-table/per-figure experiment
//! index) and `EXPERIMENTS.md` (paper-vs-measured, command matrix).

pub mod ablations;
pub mod cpuload;
pub mod fanin;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod observe;
pub mod remap;
pub mod report;
pub mod table1;
pub mod workload;

/// The message sizes (bytes) used by the figure sweeps, paper-style
/// powers of two.
pub fn sweep_sizes(from: u64, to: u64) -> Vec<u64> {
    let mut v = Vec::new();
    let mut s = from;
    while s <= to {
        v.push(s);
        s *= 2;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_powers_of_two() {
        assert_eq!(sweep_sizes(1024, 8192), vec![1024, 2048, 4096, 8192]);
        assert_eq!(sweep_sizes(4096, 4096), vec![4096]);
    }
}
