//! Criterion bench for the optimization-stack and policy ablations.

use criterion::{criterion_group, criterion_main, Criterion};
use fbuf_bench::ablations;
use fbuf_bench::report::print_cost_rows;

fn bench(c: &mut Criterion) {
    print_cost_rows(
        "Ablation: the §3.2 optimization stack, cumulatively",
        &ablations::optimization_stack(),
    );
    println!("\n== Ablation: LIFO vs FIFO under memory pressure ==");
    for r in ablations::lifo_vs_fifo(12) {
        println!(
            "{:<6} resident hits {:>3}, rematerializations {:>3}",
            r.policy, r.resident_hits, r.rematerializations
        );
    }
    println!("\n== Ablation: driver VCI cache ==");
    for r in ablations::path_cache(&[8, 16, 24], 48) {
        println!(
            "{:>2} VCIs: cached {:>4.0}%  {:>6.0} Mb/s",
            r.active_vcis,
            r.cached_fraction * 100.0,
            r.throughput_mbps
        );
    }
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("optimization_stack", |b| {
        b.iter(ablations::optimization_stack)
    });
    g.bench_function("lifo_vs_fifo", |b| b.iter(|| ablations::lifo_vs_fifo(12)));
    g.bench_function("bus_contention", |b| b.iter(ablations::bus_contention));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
