//! Bench target for the optimization-stack and policy ablations,
//! reporting **simulated** per-page cost and throughput.

use fbuf::SendMode;
use fbuf_bench::report::print_cost_rows;
use fbuf_bench::{ablations, observe};
use fbuf_sim::bench::{BenchRunner, Unit};
use fbuf_sim::{Json, ToJson};

fn main() {
    let stack = ablations::optimization_stack();
    print_cost_rows("Ablation: the §3.2 optimization stack, cumulatively", &stack);
    let lifo = ablations::lifo_vs_fifo(12);
    println!("\n== Ablation: LIFO vs FIFO under memory pressure ==");
    for row in &lifo {
        println!(
            "{:<6} resident hits {:>3}, rematerializations {:>3}",
            row.policy, row.resident_hits, row.rematerializations
        );
    }
    let paths = ablations::path_cache(&[8, 16, 24], 48);
    println!("\n== Ablation: driver VCI cache ==");
    for row in &paths {
        println!(
            "{:>2} VCIs: cached {:>4.0}%  {:>6.0} Mb/s",
            row.active_vcis,
            row.cached_fraction * 100.0,
            row.throughput_mbps
        );
    }
    let bus = ablations::bus_contention();

    let mut r = BenchRunner::new("optstack");
    // Which chunk-admission policy the run executed under (the system
    // default here; fbuf-stress --check requires the field).
    r.param("policy", fbuf::QuotaPolicy::default().name().to_json());
    r.param("observe_size", 64u64 << 10);
    r.param("observe_iters", 4u64);
    r.param("lifo_rounds", 12u64);
    r.artifact("optimization_stack", stack.to_json());
    r.artifact("lifo_vs_fifo", lifo.to_json());
    r.artifact("path_cache", paths.to_json());
    r.artifact(
        "bus_contention",
        Json::Arr(
            bus.iter()
                .map(|(label, mbps)| {
                    Json::obj(vec![
                        ("label", label.to_json()),
                        ("throughput_mbps", mbps.to_json()),
                    ])
                })
                .collect(),
        ),
    );
    r.measure("base_remap_full_clearing", Unit::SimUs, || {
        ablations::optimization_stack()[0].per_page_us
    });
    r.measure("full_design_cached_volatile", Unit::SimUs, || {
        ablations::optimization_stack()
            .last()
            .expect("rows")
            .per_page_us
    });
    r.measure("bus_contended_throughput", Unit::Mbps, || {
        ablations::bus_contention()[0].1
    });
    r.measure("bus_uncontended_ceiling", Unit::Mbps, || {
        ablations::bus_contention()[1].1
    });
    for (label, send) in [
        ("volatile", SendMode::Volatile),
        ("secured", SendMode::Secure),
    ] {
        let obs = observe::crossing(true, send, 64 << 10, 4);
        observe::attach(&mut r, &format!("cached_{label}_64k"), &obs);
    }
    r.finish().expect("write bench report");
}
