//! Criterion bench regenerating Figure 6 (end-to-end, uncached/
//! non-volatile) and the §4 CPU-load experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use fbuf_bench::report::print_curves;
use fbuf_bench::{cpuload, fig5};
use fbuf_net::{DomainSetup, EndToEndConfig};

fn bench(c: &mut Criterion) {
    let curves = fig5::run(false, &fig5::default_sizes(), 3);
    print_curves(
        "Figure 6: UDP/IP end-to-end throughput, uncached/non-volatile fbufs",
        &curves,
    );
    println!("\n== §4: receive-host CPU load, 1 MB messages (user-user) ==");
    for r in cpuload::run() {
        println!(
            "{:<10} {:>6}KB PDU  load {:>4.0}%  {:>6.0} Mb/s",
            r.regime,
            r.pdu >> 10,
            r.rx_cpu * 100.0,
            r.throughput_mbps
        );
    }
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("user_user_uncached_1m", |b| {
        b.iter(|| fig5::throughput(EndToEndConfig::fig6(DomainSetup::User), 1 << 20, 3))
    });
    g.bench_function("cpuload_all_cells", |b| b.iter(cpuload::run));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
