//! Bench target regenerating Figure 6 (end-to-end, uncached/
//! non-volatile) and the §4 CPU-load experiment, reporting **simulated**
//! Mb/s and receive-host CPU-load fractions.

use fbuf_bench::report::print_curves;
use fbuf_bench::{cpuload, fig5, observe};
use fbuf_net::{DomainSetup, EndToEndConfig};
use fbuf_sim::bench::{BenchRunner, Unit};
use fbuf_sim::ToJson;

fn main() {
    let curves = fig5::run(false, &fig5::default_sizes(), 3);
    print_curves(
        "Figure 6: UDP/IP end-to-end throughput, uncached/non-volatile fbufs",
        &curves,
    );
    let cpu_rows = cpuload::run();
    println!("\n== §4: receive-host CPU load, 1 MB messages (user-user) ==");
    for row in &cpu_rows {
        println!(
            "{:<10} {:>6}KB PDU  load {:>4.0}%  {:>6.0} Mb/s",
            row.regime,
            row.pdu >> 10,
            row.rx_cpu * 100.0,
            row.throughput_mbps
        );
    }
    let mut r = BenchRunner::new("fig6_endtoend_uncached");
    // Which chunk-admission policy the run executed under (the system
    // default here; fbuf-stress --check requires the field).
    r.param("policy", fbuf::QuotaPolicy::default().name().to_json());
    r.param("size", 1u64 << 20);
    r.param("rounds", 3u64);
    r.param("observe_size", 256u64 << 10);
    r.param("observe_msgs", 4u64);
    r.artifact("fig6_curves", curves.to_json());
    r.artifact("cpuload_rows", cpu_rows.to_json());
    r.measure("user_user_uncached_1m", Unit::Mbps, || {
        fig5::throughput(EndToEndConfig::fig6(DomainSetup::User), 1 << 20, 3)
    });
    r.measure("rx_cpu_cached_16k_pdu", Unit::Fraction, || {
        cpuload::run()
            .iter()
            .find(|row| row.regime == "cached" && row.pdu == 16 << 10)
            .expect("cell present")
            .rx_cpu
    });
    r.measure("rx_cpu_uncached_16k_pdu", Unit::Fraction, || {
        cpuload::run()
            .iter()
            .find(|row| row.regime == "uncached" && row.pdu == 16 << 10)
            .expect("cell present")
            .rx_cpu
    });
    let obs = observe::endtoend(EndToEndConfig::fig6(DomainSetup::User), 256 << 10, 4);
    observe::attach(&mut r, "user_user_uncached_256k", &obs);
    r.finish().expect("write bench report");
}
