//! Bench target regenerating Figure 4 (UDP/IP local loopback),
//! reporting **simulated** throughput in Mb/s.

use fbuf_bench::report::print_curves;
use fbuf_bench::{fig4, observe};
use fbuf_net::{LoopbackConfig, LoopbackStack};
use fbuf_sim::bench::{BenchRunner, Unit};
use fbuf_sim::{MachineConfig, ToJson};

fn main() {
    let curves = fig4::run(&fig4::default_sizes(), 3);
    print_curves(
        "Figure 4: throughput of a UDP/IP local loopback test",
        &curves,
    );
    let mut r = BenchRunner::new("fig4_loopback");
    // Which chunk-admission policy the run executed under (the system
    // default here; fbuf-stress --check requires the field).
    r.param("policy", fbuf::QuotaPolicy::default().name().to_json());
    r.param("size", 64u64 << 10);
    r.param("rounds", 3u64);
    r.param("observe_msgs", 8u64);
    r.artifact("fig4_curves", curves.to_json());
    for (label, three, cached) in [
        ("single_domain_64k", false, true),
        ("three_domains_cached_64k", true, true),
        ("three_domains_uncached_64k", true, false),
    ] {
        r.measure(label, Unit::Mbps, || {
            let mut cfg = MachineConfig::decstation_5000_200();
            cfg.phys_mem = 24 << 20;
            let mut s = LoopbackStack::new(cfg, LoopbackConfig::paper(three, cached));
            s.throughput(64 << 10, 3).expect("loopback")
        });
    }
    let obs = observe::loopback(LoopbackConfig::paper(true, true), 64 << 10, 8);
    observe::attach(&mut r, "three_domains_cached_64k", &obs);
    r.finish().expect("write bench report");
}
