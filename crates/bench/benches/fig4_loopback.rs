//! Criterion bench regenerating Figure 4 (UDP/IP local loopback).

use criterion::{criterion_group, criterion_main, Criterion};
use fbuf_bench::fig4;
use fbuf_bench::report::print_curves;
use fbuf_net::{LoopbackConfig, LoopbackStack};
use fbuf_sim::MachineConfig;

fn bench(c: &mut Criterion) {
    let curves = fig4::run(&fig4::default_sizes(), 3);
    print_curves(
        "Figure 4: throughput of a UDP/IP local loopback test",
        &curves,
    );
    let mut g = c.benchmark_group("fig4");
    g.sample_size(20);
    for (label, three, cached) in [
        ("single_domain_64k", false, true),
        ("three_domains_cached_64k", true, true),
        ("three_domains_uncached_64k", true, false),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut cfg = MachineConfig::decstation_5000_200();
                cfg.phys_mem = 24 << 20;
                let mut s = LoopbackStack::new(cfg, LoopbackConfig::paper(three, cached));
                s.throughput(64 << 10, 3).expect("loopback")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
