//! Bench target for the aggregate-object machinery. Message editing and
//! IP fragmentation are pure metadata operations that charge no simulated
//! time, so they are reported as structural artifacts (extent/fragment
//! counts); the integrated-DAG build and traverse go through the VM and
//! are measured in **simulated** µs under DECstation costs.

use fbuf::{AllocMode, FbufId, FbufSystem};
use fbuf_net::ip;
use fbuf_sim::bench::{BenchRunner, Unit};
use fbuf_sim::{Json, MachineConfig, ToJson};
use fbuf_xkernel::integrated::{self, DagBuilder, TraverseLimits};
use fbuf_xkernel::{Extent, Msg};

fn big_msg() -> Msg {
    // 64 extents over 16 fbufs, 1 MB total.
    Msg::from_extents(
        (0..64u64)
            .map(|i| Extent {
                fbuf: FbufId(i % 16),
                off: (i / 16) * 16_384,
                len: 16_384,
            })
            .collect(),
    )
}

/// Builds a 127-node integrated DAG on a DECstation-cost machine and
/// returns (system, domain, root): simulated time then accrues on the
/// system clock as the DAG is traversed.
fn build_dag() -> (FbufSystem, fbuf_vm::DomainId, u64) {
    let mut cfg = MachineConfig::decstation_5000_200();
    cfg.phys_mem = 8 << 20;
    let mut fbs = FbufSystem::new(cfg);
    integrated::install_null_template(&mut fbs);
    let dom = fbs.create_domain();
    let data = fbs
        .alloc(dom, AllocMode::Uncached, 16 << 10)
        .expect("alloc");
    let data_va = fbs.fbuf(data).expect("fbuf").va;
    let mut builder = DagBuilder::new(&mut fbs, dom, AllocMode::Uncached, 128).expect("builder");
    let mut node = builder.leaf(&mut fbs, data_va, 1024).expect("leaf");
    for i in 0..63u64 {
        let l = builder
            .leaf(&mut fbs, data_va + (i % 16) * 1024, 1024)
            .expect("leaf");
        node = builder.concat(&mut fbs, node, l).expect("concat");
    }
    (fbs, dom, node)
}

fn main() {
    let msg = big_msg();
    let (head, tail) = msg.split(512 << 10);
    let joined = msg.concat(&big_msg());
    let frags = ip::fragment(&msg, 1, 4096);
    let mut reasm = ip::Reassembler::new(0);
    let mut done = None;
    for (h, m) in frags.clone() {
        if let Some(d) = reasm.add(h, m) {
            done = Some(d);
        }
    }
    let done = done.expect("complete");

    println!("\n== Aggregate-object machinery: structural checks ==");
    println!(
        "split 1MB at 512KB: {} + {} extents; concat: {} extents",
        head.extents().len(),
        tail.extents().len(),
        joined.extents().len()
    );
    println!(
        "fragment 1MB into 4KB PDUs: {} fragments, reassembled to {} bytes",
        frags.len(),
        done.len()
    );

    let mut r = BenchRunner::new("aggregate_ops");
    // Which chunk-admission policy the run executed under (the system
    // default here; fbuf-stress --check requires the field).
    r.param("policy", fbuf::QuotaPolicy::default().name().to_json());
    r.param("msg_extents", 64u64);
    r.param("msg_fbufs", 16u64);
    r.param("dag_nodes", 127u64);
    r.artifact(
        "editing",
        Json::obj(vec![
            ("msg_extents", msg.extents().len().to_json()),
            ("split_head_extents", head.extents().len().to_json()),
            ("split_tail_extents", tail.extents().len().to_json()),
            ("concat_extents", joined.extents().len().to_json()),
            ("fragments_4k", frags.len().to_json()),
            ("reassembled_len", done.len().to_json()),
        ]),
    );
    r.measure("dag_build_127_nodes", Unit::SimUs, || {
        let (fbs, _, _) = build_dag();
        fbs.machine().clock().now().as_us_f64()
    });
    r.measure("dag_traverse_127_nodes", Unit::SimUs, || {
        let (mut fbs, dom, node) = build_dag();
        let t0 = fbs.machine().clock().now();
        integrated::traverse(&mut fbs, dom, node, TraverseLimits::default()).expect("traverse");
        (fbs.machine().clock().now() - t0).as_us_f64()
    });
    // Observability blocks: a traced build+traverse, counters over the
    // whole run (DagVisit-heavy) and alloc service latency of the node
    // allocations.
    {
        let (mut fbs, dom, node) = build_dag();
        let tracer = fbs.machine().tracer();
        tracer.set_enabled(true);
        let mark = fbs.stats().snapshot();
        integrated::traverse(&mut fbs, dom, node, TraverseLimits::default()).expect("traverse");
        r.counters(&fbs.stats().snapshot().delta(&mark));
        let extra = fbs.alloc(dom, AllocMode::Uncached, 4096).expect("alloc");
        fbs.free(extra, dom).expect("free");
        r.latency("alloc_uncached_4k", &tracer.merged_alloc_latency());
    }
    r.finish().expect("write bench report");
}
