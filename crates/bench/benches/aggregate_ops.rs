//! Criterion micro-benchmarks of the aggregate-object machinery: message
//! editing, IP fragmentation, and integrated-DAG traversal.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fbuf::{AllocMode, FbufId, FbufSystem};
use fbuf_net::ip;
use fbuf_sim::{CostModel, MachineConfig};
use fbuf_xkernel::integrated::{self, DagBuilder, TraverseLimits};
use fbuf_xkernel::{Extent, Msg};

fn big_msg() -> Msg {
    // 64 extents over 16 fbufs, 1 MB total.
    Msg::from_extents(
        (0..64u64)
            .map(|i| Extent {
                fbuf: FbufId(i % 16),
                off: (i / 16) * 16_384,
                len: 16_384,
            })
            .collect(),
    )
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("aggregate");
    let msg = big_msg();
    g.bench_function("split_middle", |b| b.iter(|| msg.split(512 << 10)));
    g.bench_function("concat", |b| {
        let other = big_msg();
        b.iter(|| msg.concat(&other))
    });
    g.bench_function("fragment_1m_into_4k", |b| {
        b.iter(|| ip::fragment(&msg, 1, 4096))
    });
    g.bench_function("fragment_and_reassemble", |b| {
        b.iter_batched(
            || ip::fragment(&msg, 1, 4096),
            |frags| {
                let mut r = ip::Reassembler::new(0);
                let mut done = None;
                for (h, m) in frags {
                    if let Some(d) = r.add(h, m) {
                        done = Some(d);
                    }
                }
                done.expect("complete")
            },
            BatchSize::SmallInput,
        )
    });

    // Integrated DAG build + traverse over a real simulated machine with
    // free costs (measuring host-side mechanics).
    let mut cfg = MachineConfig::tiny();
    cfg.phys_mem = 8 << 20;
    cfg.costs = CostModel::free();
    let mut fbs = FbufSystem::new(cfg);
    integrated::install_null_template(&mut fbs);
    let dom = fbs.create_domain();
    let data = fbs
        .alloc(dom, AllocMode::Uncached, 16 << 10)
        .expect("alloc");
    let data_va = fbs.fbuf(data).expect("fbuf").va;
    let mut builder = DagBuilder::new(&mut fbs, dom, AllocMode::Uncached, 128).expect("builder");
    let mut node = builder.leaf(&mut fbs, data_va, 1024).expect("leaf");
    for i in 0..63u64 {
        let l = builder
            .leaf(&mut fbs, data_va + (i % 16) * 1024, 1024)
            .expect("leaf");
        node = builder.concat(&mut fbs, node, l).expect("concat");
    }
    g.bench_function("dag_traverse_127_nodes", |b| {
        b.iter(|| {
            integrated::traverse(&mut fbs, dom, node, TraverseLimits::default()).expect("traverse")
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
