//! Bench target regenerating Figure 3 (single boundary crossing),
//! reporting **simulated** throughput in Mb/s.

use fbuf::SendMode;
use fbuf_bench::report::print_curves;
use fbuf_bench::{fig3, observe};
use fbuf_sim::bench::{BenchRunner, Unit};
use fbuf_sim::ToJson;

fn main() {
    let curves = fig3::run(&fig3::default_sizes(), 3);
    print_curves(
        "Figure 3: throughput of a single domain boundary crossing",
        &curves,
    );
    let mut r = BenchRunner::new("fig3_single_crossing");
    // Which chunk-admission policy the run executed under (the system
    // default here; fbuf-stress --check requires the field).
    r.param("policy", fbuf::QuotaPolicy::default().name().to_json());
    r.param("size", 64u64 << 10);
    r.param("rounds", 3u64);
    r.param("observe_iters", 4u64);
    r.artifact("fig3_curves", curves.to_json());
    r.measure("fbuf_cached_volatile_64k", Unit::Mbps, || {
        fig3::fbuf_throughput(true, SendMode::Volatile, 64 << 10, 3)
    });
    r.measure("fbuf_uncached_volatile_64k", Unit::Mbps, || {
        fig3::fbuf_throughput(false, SendMode::Volatile, 64 << 10, 3)
    });
    r.measure("mach_native_64k", Unit::Mbps, || {
        fig3::mach_throughput(64 << 10, 3)
    });
    for (label, cached) in [("cached", true), ("uncached", false)] {
        let obs = observe::crossing(cached, SendMode::Volatile, 64 << 10, 4);
        observe::attach(&mut r, &format!("{label}_volatile_64k"), &obs);
    }
    r.finish().expect("write bench report");
}
