//! Criterion bench regenerating Figure 3 (single boundary crossing).

use criterion::{criterion_group, criterion_main, Criterion};
use fbuf::SendMode;
use fbuf_bench::fig3;
use fbuf_bench::report::print_curves;

fn bench(c: &mut Criterion) {
    let curves = fig3::run(&fig3::default_sizes(), 3);
    print_curves(
        "Figure 3: throughput of a single domain boundary crossing",
        &curves,
    );
    let mut g = c.benchmark_group("fig3");
    g.sample_size(20);
    g.bench_function("fbuf_cached_volatile_64k", |b| {
        b.iter(|| fig3::fbuf_throughput(true, SendMode::Volatile, 64 << 10, 3))
    });
    g.bench_function("mach_native_64k", |b| {
        b.iter(|| fig3::mach_throughput(64 << 10, 3))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
