//! Criterion bench regenerating Table 1.
//!
//! The simulated result (per-page costs, asymptotic throughput) is printed
//! once at start; Criterion then measures the host-side cost of running
//! the experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use fbuf::SendMode;
use fbuf_bench::report::print_cost_rows;
use fbuf_bench::table1;

fn bench(c: &mut Criterion) {
    print_cost_rows(
        "Table 1: incremental per-page costs and asymptotic throughput",
        &table1::run(),
    );
    let mut g = c.benchmark_group("table1");
    g.bench_function("cached_volatile_slope", |b| {
        b.iter(|| table1::fbuf_slope(true, SendMode::Volatile))
    });
    g.bench_function("uncached_volatile_slope", |b| {
        b.iter(|| table1::fbuf_slope(false, SendMode::Volatile))
    });
    g.bench_function("all_rows", |b| b.iter(table1::run));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
