//! Bench target regenerating Table 1, reporting **simulated** per-page
//! cost (µs/page) for each fbuf regime — directly comparable against the
//! paper's table, unlike wall-clock timing of the simulator.

use fbuf::SendMode;
use fbuf_bench::report::print_cost_rows;
use fbuf_bench::{observe, table1};
use fbuf_sim::bench::{BenchRunner, Unit};
use fbuf_sim::ToJson;

fn main() {
    let rows = table1::run();
    print_cost_rows(
        "Table 1: incremental per-page costs and asymptotic throughput",
        &rows,
    );
    let mut r = BenchRunner::new("table1");
    // Which chunk-admission policy the run executed under (the system
    // default here; fbuf-stress --check requires the field).
    r.param("policy", fbuf::QuotaPolicy::default().name().to_json());
    r.param("observe_size", 64u64 << 10);
    r.param("observe_iters", 4u64);
    r.artifact("table1_rows", rows.to_json());
    r.measure("cached_volatile_slope", Unit::SimUs, || {
        table1::fbuf_slope(true, SendMode::Volatile)
    });
    r.measure("uncached_volatile_slope", Unit::SimUs, || {
        table1::fbuf_slope(false, SendMode::Volatile)
    });
    r.measure("cached_secured_slope", Unit::SimUs, || {
        table1::fbuf_slope(true, SendMode::Secure)
    });
    r.measure("uncached_secured_slope", Unit::SimUs, || {
        table1::fbuf_slope(false, SendMode::Secure)
    });
    let obs = observe::crossing(true, SendMode::Volatile, 64 << 10, 4);
    observe::attach(&mut r, "cached_volatile_64k", &obs);
    r.finish().expect("write bench report");
}
