//! Criterion bench regenerating Figure 5 (end-to-end, cached/volatile).

use criterion::{criterion_group, criterion_main, Criterion};
use fbuf_bench::fig5;
use fbuf_bench::report::print_curves;
use fbuf_net::{DomainSetup, EndToEndConfig};

fn bench(c: &mut Criterion) {
    let curves = fig5::run(true, &fig5::default_sizes(), 3);
    print_curves(
        "Figure 5: UDP/IP end-to-end throughput, cached/volatile fbufs",
        &curves,
    );
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    for (label, setup) in [
        ("kernel_kernel_1m", DomainSetup::KernelOnly),
        ("user_user_1m", DomainSetup::User),
        ("user_netserver_user_1m", DomainSetup::UserNetserver),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| fig5::throughput(EndToEndConfig::fig5(setup), 1 << 20, 3))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
