//! Bench target regenerating Figure 5 (end-to-end, cached/volatile),
//! reporting **simulated** throughput in Mb/s per domain placement.

use fbuf_bench::report::print_curves;
use fbuf_bench::{fig5, observe};
use fbuf_net::{DomainSetup, EndToEndConfig};
use fbuf_sim::bench::{BenchRunner, Unit};
use fbuf_sim::ToJson;

fn main() {
    let curves = fig5::run(true, &fig5::default_sizes(), 3);
    print_curves(
        "Figure 5: UDP/IP end-to-end throughput, cached/volatile fbufs",
        &curves,
    );
    let mut r = BenchRunner::new("fig5_endtoend_cached");
    // Which chunk-admission policy the run executed under (the system
    // default here; fbuf-stress --check requires the field).
    r.param("policy", fbuf::QuotaPolicy::default().name().to_json());
    r.param("size", 1u64 << 20);
    r.param("rounds", 3u64);
    r.param("observe_size", 256u64 << 10);
    r.param("observe_msgs", 4u64);
    r.artifact("fig5_curves", curves.to_json());
    for (label, setup) in [
        ("kernel_kernel_1m", DomainSetup::KernelOnly),
        ("user_user_1m", DomainSetup::User),
        ("user_netserver_user_1m", DomainSetup::UserNetserver),
    ] {
        r.measure(label, Unit::Mbps, || {
            fig5::throughput(EndToEndConfig::fig5(setup), 1 << 20, 3)
        });
    }
    let obs = observe::endtoend(
        EndToEndConfig::fig5(DomainSetup::UserNetserver),
        256 << 10,
        4,
    );
    observe::attach(&mut r, "user_netserver_user_256k", &obs);
    r.finish().expect("write bench report");
}
