//! Criterion bench regenerating the §2.2.1 remap measurements.

use criterion::{criterion_group, criterion_main, Criterion};
use fbuf_bench::remap;

fn bench(c: &mut Criterion) {
    println!("\n== §2.2.1: DASH-style page remapping, re-measured ==");
    for r in remap::run() {
        println!(
            "{:<12} cleared {:>4.0}%  {:>7.2} us/page",
            r.mode,
            r.clear_fraction * 100.0,
            r.per_page_us
        );
    }
    let mut g = c.benchmark_group("remap");
    g.bench_function("pingpong", |b| b.iter(|| remap::pingpong(8, 8)));
    g.bench_function("streaming_no_clear", |b| {
        b.iter(|| remap::streaming(0.0, 8, 8))
    });
    g.bench_function("streaming_full_clear", |b| {
        b.iter(|| remap::streaming(1.0, 8, 8))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
