//! Bench target regenerating the §2.2.1 remap measurements, reporting
//! **simulated** per-page cost (µs/page).

use fbuf_bench::{observe, remap};
use fbuf_sim::bench::{BenchRunner, Unit};
use fbuf_sim::ToJson;
use fbuf_vm::facility::RemapFacility;

fn main() {
    let rows = remap::run();
    println!("\n== §2.2.1: DASH-style page remapping, re-measured ==");
    for row in &rows {
        println!(
            "{:<12} cleared {:>4.0}%  {:>7.2} us/page",
            row.mode,
            row.clear_fraction * 100.0,
            row.per_page_us
        );
    }
    let mut r = BenchRunner::new("remap");
    // Which chunk-admission policy the run executed under (the system
    // default here; fbuf-stress --check requires the field).
    r.param("policy", fbuf::QuotaPolicy::default().name().to_json());
    r.param("pages", 8u64);
    r.param("rounds", 8u64);
    r.artifact("remap_rows", rows.to_json());
    r.measure("pingpong", Unit::SimUs, || remap::pingpong(8, 8));
    r.measure("streaming_no_clear", Unit::SimUs, || {
        remap::streaming(0.0, 8, 8)
    });
    r.measure("streaming_half_clear", Unit::SimUs, || {
        remap::streaming(0.5, 8, 8)
    });
    r.measure("streaming_full_clear", Unit::SimUs, || {
        remap::streaming(1.0, 8, 8)
    });
    let obs = observe::facility(&mut RemapFacility::new(1.0), 8, 8);
    observe::attach(&mut r, "remap_full_clear", &obs);
    r.finish().expect("write bench report");
}
