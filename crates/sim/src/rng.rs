//! Deterministic pseudo-random numbers (SplitMix64).
//!
//! The workloads and property tests need reproducible randomness without an
//! external crate. [`Rng`] is a SplitMix64 generator: 64 bits of state, full
//! 2^64 period over the state sequence, and strong output mixing — more than
//! enough statistical quality for trace generation and test-case shaping,
//! with bit-for-bit reproducibility from a single `u64` seed on every
//! platform.

/// One step of the SplitMix64 sequence: advances `state` and returns the
/// mixed output. Exposed so the property harness can derive per-case seeds
/// with the same arithmetic the generator uses.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A small deterministic pseudo-random generator.
///
/// Two `Rng`s built from the same seed produce the same sequence forever;
/// that is the property every consumer in this workspace relies on
/// (reproducible traces, replayable property-test cases, shuffled
/// reassembly orders).
///
/// # Examples
///
/// ```
/// use fbuf_sim::Rng;
///
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert!(a.below(10) < 10);
/// assert!((2..=5).contains(&a.range(2, 6)));
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Any seed (including 0) is fine.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform `f64` in `[0, 1)`, with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. `n` must be nonzero.
    ///
    /// Uses 128-bit multiply-shift (Lemire) rather than modulo, so the
    /// tiny bias of `next_u64() % n` never shows up in distribution tests.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Rng::below(0)");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`. Requires `lo < hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "Rng::range: empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Uniform index into a collection of length `len`.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Derives an independent generator (e.g. one per parallel flow)
    /// without correlating with this generator's future output.
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64() ^ 0x6a09_e667_f3bc_c909)
    }

    /// Generates a `Vec` whose length is uniform in `[min_len, max_len)`,
    /// filling each slot from `f`. The bread-and-butter collection
    /// generator for property tests.
    pub fn vec_with<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut f: impl FnMut(&mut Rng) -> T,
    ) -> Vec<T> {
        let n = self.range(min_len as u64, max_len as u64) as usize;
        (0..n).map(|_| f(self)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Rng::new(0xdead_beef);
        let mut b = Rng::new(0xdead_beef);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference values for seed 1234567 from the SplitMix64 paper's
        // public-domain implementation (Vigna).
        let mut s = 1234567u64;
        assert_eq!(splitmix64(&mut s), 6457827717110365317);
        assert_eq!(splitmix64(&mut s), 3203168211198807973);
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = Rng::new(7);
        let mut buckets = [0u32; 10];
        const N: u32 = 100_000;
        for _ in 0..N {
            buckets[rng.below(10) as usize] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            let expect = N / 10;
            assert!(
                (b as i64 - expect as i64).unsigned_abs() < (expect / 10) as u64,
                "bucket {i}: {b} vs {expect}"
            );
        }
    }

    #[test]
    fn chance_matches_probability() {
        let mut rng = Rng::new(99);
        let hits = (0..100_000).filter(|_| rng.chance(0.2)).count();
        assert!((18_000..22_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut rng = Rng::new(3);
        for _ in 0..10_000 {
            let v = rng.range(100, 200);
            assert!((100..200).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::new(5);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "seed 5 should permute");
    }

    #[test]
    fn fork_decorrelates() {
        let mut a = Rng::new(11);
        let mut c = a.fork();
        let overlap = (0..64).filter(|_| a.next_u64() == c.next_u64()).count();
        assert_eq!(overlap, 0);
    }

    #[test]
    fn vec_with_respects_length_bounds() {
        let mut rng = Rng::new(13);
        for _ in 0..100 {
            let v = rng.vec_with(0, 12, |r| r.below(8));
            assert!(v.len() < 12);
        }
    }
}
