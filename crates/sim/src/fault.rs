//! Deterministic fault injection.
//!
//! A [`FaultSpec`] is a plain-data, `Send` description of *which* failures
//! to inject and *how often*: a SplitMix64 seed, a per-site firing rate
//! (numerator over 65 536), and an optional "crash domain after step k"
//! directive. Arming a spec produces a [`FaultPlan`] — the single-threaded
//! runtime object that subsystems consult at named [`FaultSite`]s.
//!
//! The contract mirrors `trace::Tracer`: hook points cost one
//! `Option::is_some()` branch when no plan is armed, and consulting a plan
//! whose rate for that site is zero draws **no** random number, so adding
//! hook points never perturbs the random stream of an existing plan.
//!
//! # Replay
//!
//! Every consult advances shared state deterministically, so the same spec
//! replays the same fault schedule bit-for-bit. When the decision log is
//! enabled ([`FaultPlan::set_log`]), each consult is recorded as a
//! [`FaultDecision`]; the lockstep model fuzzer drains this log after every
//! command and replays the decisions positionally inside its reference
//! model, so the oracle fails exactly where the real system failed.
//!
//! ```
//! use fbuf_sim::fault::{FaultSite, FaultSpec};
//!
//! let plan = FaultSpec::new(42).rate(FaultSite::ChunkGrant, u16::MAX).arm();
//! let fired = (0..16).filter(|_| plan.fires(FaultSite::ChunkGrant)).count();
//! assert!(fired >= 15); // rate ≈ 1.0: (almost) always fires
//! assert!(!plan.fires(FaultSite::FrameAlloc)); // rate = 0: never fires
//! assert_eq!(plan.injected(FaultSite::ChunkGrant) as usize, fired);
//! ```

use std::cell::{Cell, RefCell};

use crate::rng::splitmix64;

/// Named places in the stack where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultSite {
    /// `ChunkAllocator::grant` refuses (simulated fbuf-region exhaustion).
    ChunkGrant = 0,
    /// A per-(domain, path) allocator behaves as if at quota.
    QuotaExhausted = 1,
    /// `Machine::alloc_frame` refuses (simulated physical-memory pressure).
    FrameAlloc = 2,
    /// `reclaim_frames` stops early, as if the coldest parked buffer were
    /// pinned (e.g. wired for DMA) and could not be reclaimed.
    ReclaimRefusal = 3,
    /// A cross-shard SPSC push behaves as if the ring were full.
    RingFull = 4,
    /// A protection domain is torn down after a configured step count.
    DomainCrash = 5,
}

/// Number of distinct [`FaultSite`]s.
pub const SITE_COUNT: usize = 6;

impl FaultSite {
    /// All sites, in discriminant order.
    pub const ALL: [FaultSite; SITE_COUNT] = [
        FaultSite::ChunkGrant,
        FaultSite::QuotaExhausted,
        FaultSite::FrameAlloc,
        FaultSite::ReclaimRefusal,
        FaultSite::RingFull,
        FaultSite::DomainCrash,
    ];

    /// Stable lowercase name for reports and corpus files.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::ChunkGrant => "chunk_grant",
            FaultSite::QuotaExhausted => "quota_exhausted",
            FaultSite::FrameAlloc => "frame_alloc",
            FaultSite::ReclaimRefusal => "reclaim_refusal",
            FaultSite::RingFull => "ring_full",
            FaultSite::DomainCrash => "domain_crash",
        }
    }
}

/// One recorded consult: which site asked, and whether the fault fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultDecision {
    pub site: FaultSite,
    pub fired: bool,
}

/// Plain-data description of a fault schedule. `Send + Clone`, so it can
/// cross into shard threads; arm it on the owning thread with
/// [`FaultSpec::arm`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// SplitMix64 seed for the draw stream.
    pub seed: u64,
    /// Per-site firing probability, as a numerator over 65 536.
    pub rates: [u16; SITE_COUNT],
    /// Crash a domain once the driver's step counter reaches this value.
    /// Interpreted by the harness driving the system, not by the hooks.
    pub crash_after: Option<u64>,
}

impl FaultSpec {
    /// A quiet spec: nothing fires until rates are set.
    pub fn new(seed: u64) -> Self {
        FaultSpec {
            seed,
            rates: [0; SITE_COUNT],
            crash_after: None,
        }
    }

    /// Sets the firing rate for `site` to `per_64k` / 65 536.
    pub fn rate(mut self, site: FaultSite, per_64k: u16) -> Self {
        self.rates[site as usize] = per_64k;
        self
    }

    /// Requests a domain crash once the driver reaches step `k`.
    pub fn crash_after(mut self, k: u64) -> Self {
        self.crash_after = Some(k);
        self
    }

    /// True if this spec can never inject anything.
    pub fn is_quiet(&self) -> bool {
        self.crash_after.is_none() && self.rates.iter().all(|&r| r == 0)
    }

    /// Builds the runtime plan for this spec.
    pub fn arm(&self) -> FaultPlan {
        FaultPlan {
            state: Cell::new(self.seed),
            rates: self.rates,
            crash_after: Cell::new(self.crash_after),
            consulted: Default::default(),
            injected: Default::default(),
            log_enabled: Cell::new(false),
            log: RefCell::new(Vec::new()),
        }
    }
}

/// Runtime fault schedule, shared by `Rc` between the layers of one
/// engine (machine, fbuf system, shard). Single-threaded by design, like
/// `Clock` and `Tracer`.
#[derive(Debug)]
pub struct FaultPlan {
    state: Cell<u64>,
    rates: [u16; SITE_COUNT],
    crash_after: Cell<Option<u64>>,
    consulted: [Cell<u64>; SITE_COUNT],
    injected: [Cell<u64>; SITE_COUNT],
    log_enabled: Cell<bool>,
    log: RefCell<Vec<FaultDecision>>,
}

impl FaultPlan {
    /// Consults the plan at `site`. Returns true if the fault fires.
    ///
    /// Sites with rate zero never draw from the random stream, so they
    /// are both free and invisible to other sites' schedules.
    pub fn fires(&self, site: FaultSite) -> bool {
        let i = site as usize;
        self.consulted[i].set(self.consulted[i].get() + 1);
        let fired = if self.rates[i] == 0 {
            false
        } else {
            let mut s = self.state.get();
            let draw = splitmix64(&mut s);
            self.state.set(s);
            (draw & 0xffff) < u64::from(self.rates[i])
        };
        if fired {
            self.injected[i].set(self.injected[i].get() + 1);
        }
        if self.log_enabled.get() {
            self.log.borrow_mut().push(FaultDecision { site, fired });
        }
        fired
    }

    /// One-shot crash check: true exactly once, the first time `step`
    /// reaches the configured threshold. Driver-level — not logged, since
    /// the lockstep harness handles the crash itself.
    pub fn crash_due(&self, step: u64) -> bool {
        match self.crash_after.get() {
            Some(k) if step >= k => {
                self.crash_after.set(None);
                let i = FaultSite::DomainCrash as usize;
                self.consulted[i].set(self.consulted[i].get() + 1);
                self.injected[i].set(self.injected[i].get() + 1);
                true
            }
            _ => false,
        }
    }

    /// Times `site` has been consulted.
    pub fn consulted(&self, site: FaultSite) -> u64 {
        self.consulted[site as usize].get()
    }

    /// Times `site` actually fired.
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.injected[site as usize].get()
    }

    /// Total faults injected across all sites.
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().map(Cell::get).sum()
    }

    /// Enables or disables the per-consult decision log.
    pub fn set_log(&self, on: bool) {
        self.log_enabled.set(on);
    }

    /// Takes every decision recorded since the last drain.
    pub fn drain_log(&self) -> Vec<FaultDecision> {
        std::mem::take(&mut *self.log.borrow_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_spec_never_fires_and_never_draws() {
        let plan = FaultSpec::new(7).arm();
        for _ in 0..100 {
            for site in FaultSite::ALL {
                assert!(!plan.fires(site));
            }
        }
        assert_eq!(plan.total_injected(), 0);
        assert_eq!(plan.consulted(FaultSite::ChunkGrant), 100);
    }

    #[test]
    fn full_rate_always_fires() {
        let plan = FaultSpec::new(1).rate(FaultSite::FrameAlloc, u16::MAX).arm();
        // u16::MAX / 65536 is not quite 1.0; use a seed-independent check
        // at the true ceiling instead.
        let certain = FaultSpec::new(1).rate(FaultSite::FrameAlloc, u16::MAX).arm();
        let mut fired = 0;
        for _ in 0..1000 {
            if certain.fires(FaultSite::FrameAlloc) {
                fired += 1;
            }
        }
        assert!(fired > 980, "near-certain rate fired only {fired}/1000");
        drop(plan);
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultSpec::new(0xdead_beef).rate(FaultSite::ChunkGrant, 20_000);
        let b = a.clone();
        let (pa, pb) = (a.arm(), b.arm());
        for _ in 0..500 {
            assert_eq!(
                pa.fires(FaultSite::ChunkGrant),
                pb.fires(FaultSite::ChunkGrant)
            );
        }
        assert_eq!(pa.injected(FaultSite::ChunkGrant), pb.injected(FaultSite::ChunkGrant));
    }

    #[test]
    fn zero_rate_sites_do_not_perturb_the_stream() {
        let spec = FaultSpec::new(99).rate(FaultSite::RingFull, 30_000);
        let lone = spec.clone().arm();
        let mixed = spec.arm();
        let mut a = Vec::new();
        let mut b = Vec::new();
        for _ in 0..200 {
            a.push(lone.fires(FaultSite::RingFull));
            // Interleave consults of zero-rate sites: must not shift draws.
            mixed.fires(FaultSite::FrameAlloc);
            mixed.fires(FaultSite::QuotaExhausted);
            b.push(mixed.fires(FaultSite::RingFull));
        }
        assert_eq!(a, b);
    }

    #[test]
    fn crash_due_is_one_shot() {
        let plan = FaultSpec::new(3).crash_after(10).arm();
        assert!(!plan.crash_due(9));
        assert!(plan.crash_due(10));
        assert!(!plan.crash_due(11));
        assert_eq!(plan.injected(FaultSite::DomainCrash), 1);
    }

    #[test]
    fn decision_log_records_consults_in_order() {
        let plan = FaultSpec::new(5).rate(FaultSite::ChunkGrant, u16::MAX).arm();
        plan.set_log(true);
        plan.fires(FaultSite::FrameAlloc);
        plan.fires(FaultSite::ChunkGrant);
        let log = plan.drain_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].site, FaultSite::FrameAlloc);
        assert!(!log[0].fired);
        assert_eq!(log[1].site, FaultSite::ChunkGrant);
        assert!(plan.drain_log().is_empty());
    }

    #[test]
    fn is_quiet_reflects_rates_and_crash() {
        assert!(FaultSpec::new(0).is_quiet());
        assert!(!FaultSpec::new(0).rate(FaultSite::RingFull, 1).is_quiet());
        assert!(!FaultSpec::new(0).crash_after(5).is_quiet());
    }
}
