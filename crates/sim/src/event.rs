//! The binary event heap: deterministic scheduling for the event-driven
//! transfer engine.
//!
//! The recursive transfer engine of the early PRs expressed a
//! cross-domain transfer as a depth-first descent of nested calls — one
//! in-flight message per engine, no way to even *state* queueing or
//! overload. The event-driven engine (`fbuf_ipc::actor`,
//! `fbuf::engine`) replaces the call stack with a scheduler, and this
//! module is its ordering core: a classic array-backed binary min-heap
//! of `(time, sequence)` keys.
//!
//! Determinism rules (DESIGN.md §12):
//!
//! * events pop in **nondecreasing simulated time** — time never runs
//!   backwards;
//! * events scheduled for the **same instant pop in FIFO order** — each
//!   push draws a monotonically increasing [`EventId`], and the heap
//!   orders by `(at, id)`, so ties break by insertion order, never by
//!   allocation address or hash seed;
//! * nothing here reads the wall clock or any other ambient source —
//!   given the same pushes, two runs pop the same sequence, which is
//!   what makes every workload replayable from a seed.

use crate::time::Ns;

/// Identity of a scheduled event: the heap's insertion sequence number.
///
/// Ids are handed out in push order and never reused, so they double as
/// the FIFO tie-break at equal timestamps and as a stable handle for
/// tracing ("which enqueue did this dequeue match?").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u64);

/// One event popped from the heap: when it was scheduled for, its id,
/// and the payload it carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scheduled<T> {
    /// The simulated instant the event was scheduled at.
    pub at: Ns,
    /// Insertion sequence number (the FIFO tie-break).
    pub id: EventId,
    /// The scheduled payload.
    pub payload: T,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    at: Ns,
    id: EventId,
    payload: T,
}

impl<T> Entry<T> {
    fn key(&self) -> (Ns, EventId) {
        (self.at, self.id)
    }
}

/// An array-backed binary min-heap of timestamped events with
/// deterministic FIFO tie-breaking at equal timestamps.
///
/// # Examples
///
/// ```
/// use fbuf_sim::{EventHeap, Ns};
///
/// let mut heap = EventHeap::new();
/// heap.push(Ns(30), "late");
/// heap.push(Ns(10), "first-at-10");
/// heap.push(Ns(10), "second-at-10"); // same instant: FIFO
///
/// assert_eq!(heap.pop().unwrap().payload, "first-at-10");
/// assert_eq!(heap.pop().unwrap().payload, "second-at-10");
/// let last = heap.pop().unwrap();
/// assert_eq!((last.at, last.payload), (Ns(30), "late"));
/// assert!(heap.pop().is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventHeap<T> {
    slots: Vec<Entry<T>>,
    next_id: u64,
}

impl<T> EventHeap<T> {
    /// An empty heap. Ids start at zero.
    pub fn new() -> EventHeap<T> {
        EventHeap {
            slots: Vec::new(),
            next_id: 0,
        }
    }

    /// Schedules `payload` at instant `at`; returns the event's id.
    /// Later pushes always receive larger ids, including pushes for the
    /// same instant — that is the FIFO guarantee.
    pub fn push(&mut self, at: Ns, payload: T) -> EventId {
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.slots.push(Entry { at, id, payload });
        self.sift_up(self.slots.len() - 1);
        id
    }

    /// Removes and returns the earliest event — smallest `(at, id)` key.
    pub fn pop(&mut self) -> Option<Scheduled<T>> {
        if self.slots.is_empty() {
            return None;
        }
        let last = self.slots.len() - 1;
        self.slots.swap(0, last);
        let e = self.slots.pop().expect("nonempty checked above");
        if !self.slots.is_empty() {
            self.sift_down(0);
        }
        Some(Scheduled {
            at: e.at,
            id: e.id,
            payload: e.payload,
        })
    }

    /// The `(at, id)` key of the earliest event, without removing it.
    pub fn peek(&self) -> Option<(Ns, EventId)> {
        self.slots.first().map(Entry::key)
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Discards every scheduled event. The id sequence is *not* reset:
    /// ids stay unique over the heap's whole lifetime.
    pub fn clear(&mut self) {
        self.slots.clear();
    }

    /// Total events ever pushed (the next id to be handed out).
    pub fn pushed(&self) -> u64 {
        self.next_id
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.slots[i].key() >= self.slots[parent].key() {
                break;
            }
            self.slots.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.slots.len();
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut smallest = i;
            if l < n && self.slots[l].key() < self.slots[smallest].key() {
                smallest = l;
            }
            if r < n && self.slots[r].key() < self.slots[smallest].key() {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.slots.swap(i, smallest);
            i = smallest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::Checker;
    use crate::rng::Rng;

    #[test]
    fn pops_in_time_order() {
        let mut h = EventHeap::new();
        h.push(Ns(50), 'c');
        h.push(Ns(10), 'a');
        h.push(Ns(99), 'd');
        h.push(Ns(20), 'b');
        let order: Vec<char> = std::iter::from_fn(|| h.pop().map(|s| s.payload)).collect();
        assert_eq!(order, vec!['a', 'b', 'c', 'd']);
    }

    #[test]
    fn equal_timestamps_pop_fifo() {
        let mut h = EventHeap::new();
        for i in 0..32u32 {
            h.push(Ns(7), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| h.pop().map(|s| s.payload)).collect();
        assert_eq!(order, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn ids_are_unique_and_monotone_across_interleaved_pops() {
        let mut h = EventHeap::new();
        let a = h.push(Ns(5), ());
        h.pop();
        let b = h.push(Ns(1), ());
        let c = h.push(Ns(1), ());
        assert!(a < b && b < c, "ids keep growing after pops");
        assert_eq!(h.pushed(), 3);
    }

    #[test]
    fn peek_matches_next_pop() {
        let mut h = EventHeap::new();
        h.push(Ns(9), "x");
        h.push(Ns(3), "y");
        let (at, id) = h.peek().expect("nonempty");
        let popped = h.pop().expect("nonempty");
        assert_eq!((at, id), (popped.at, popped.id));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn clear_empties_but_keeps_id_sequence() {
        let mut h = EventHeap::new();
        h.push(Ns(1), ());
        h.push(Ns(2), ());
        h.clear();
        assert!(h.is_empty());
        let next = h.push(Ns(0), ());
        assert_eq!(next, EventId(2), "ids never restart");
    }

    /// The ISSUE-6 heap property: under seeded random push/pop
    /// interleavings, pops come out in nondecreasing `(time, id)` order
    /// — time never decreases, and within one timestamp the insertion
    /// order (FIFO) is preserved. A sorted reference model checks that
    /// no event is lost or invented.
    #[test]
    fn property_random_interleavings_pop_sorted_and_fifo() {
        Checker::new("event_heap_order").cases(128).run(|rng: &mut Rng| {
            let mut heap = EventHeap::new();
            let mut reference: Vec<(Ns, u64)> = Vec::new(); // (at, id), kept unsorted
            let mut popped: Vec<(Ns, EventId)> = Vec::new();
            // The simulator contract: nothing is ever scheduled earlier
            // than the instant the loop is currently processing (the
            // clock is monotone), so pushes draw `at >= now`.
            let mut now = Ns::ZERO;
            let ops = rng.range(1, 200);
            for _ in 0..ops {
                if rng.chance(0.6) || heap.is_empty() {
                    // Small offset domain forces plenty of ties.
                    let at = now + Ns(rng.below(4));
                    let id = heap.push(at, ());
                    reference.push((at, id.0));
                } else {
                    let s = heap.pop().expect("nonempty branch");
                    now = s.at;
                    popped.push((s.at, s.id));
                }
            }
            while let Some(s) = heap.pop() {
                popped.push((s.at, s.id));
            }
            // Everything pushed comes back out, exactly once, in global
            // (at, id) order — nondecreasing time, FIFO within a time.
            reference.sort_unstable();
            let got: Vec<(Ns, u64)> = popped.iter().map(|&(at, id)| (at, id.0)).collect();
            assert_eq!(got, reference, "pop order must be the sorted (at, id) sequence");
            for w in popped.windows(2) {
                assert!(w[0].0 <= w[1].0, "time went backwards: {w:?}");
                if w[0].0 == w[1].0 {
                    assert!(w[0].1 < w[1].1, "FIFO broken at equal timestamps: {w:?}");
                }
            }
        });
    }
}
