//! Operation counters.
//!
//! The reproduction verifies mechanisms two ways: by simulated timing (the
//! cost model) and by *operation counts*. Counting lets tests pin statements
//! like "fbuf caching reduces the number of page table updates required to
//! two, irrespective of the number of transfers" (paper §3.2.2) exactly,
//! independent of any calibration.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use crate::json::{Json, ToJson};

/// A single named counter value (snapshot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Counter {
    /// Counter name.
    pub name: &'static str,
    /// Current value.
    pub value: u64,
}

macro_rules! stats_impl {
    ($($(#[$doc:meta])* $name:ident : $inc:ident),* $(,)?) => {
        /// Raw counter storage; obtain via [`Stats::snapshot`].
        #[derive(Debug, Default, Clone, PartialEq, Eq)]
        pub struct StatsSnapshot {
            $( $(#[$doc])* pub $name: u64, )*
        }

        impl StatsSnapshot {
            /// All counters with their names, in declaration order.
            pub fn counters(&self) -> Vec<Counter> {
                vec![ $( Counter { name: stringify!($name), value: self.$name }, )* ]
            }

            /// Per-field difference `self - earlier` (saturating).
            pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
                StatsSnapshot {
                    $( $name: self.$name.saturating_sub(earlier.$name), )*
                }
            }

            /// Per-field sum `self + other` (saturating), for accumulating
            /// deltas across workloads.
            pub fn plus(&self, other: &StatsSnapshot) -> StatsSnapshot {
                StatsSnapshot {
                    $( $name: self.$name.saturating_add(other.$name), )*
                }
            }

            /// Sum of all counters; handy as a quick "anything happened?"
            /// check in tests.
            pub fn total(&self) -> u64 {
                0 $( + self.$name )*
            }

            /// Combines two shards' snapshots into one fleet snapshot.
            ///
            /// Counters are additive, so merging is fieldwise saturating
            /// addition — associative, commutative, with the zeroed
            /// snapshot as identity (properties pinned in
            /// `tests/properties.rs`). [`StatsSnapshot::plus`] is the
            /// same operation under its workload-accumulation name; this
            /// alias exists so sharded-fleet call sites read as what they
            /// are.
            pub fn merge(&self, other: &StatsSnapshot) -> StatsSnapshot {
                self.plus(other)
            }

            /// Merges any number of shard snapshots ([`StatsSnapshot::merge`]
            /// folded over the zero identity).
            pub fn merge_all<'a, I>(snapshots: I) -> StatsSnapshot
            where
                I: IntoIterator<Item = &'a StatsSnapshot>,
            {
                snapshots
                    .into_iter()
                    .fold(StatsSnapshot::default(), |acc, s| acc.merge(s))
            }
        }

        impl Stats {
            $(
                $(#[$doc])*
                pub fn $name(&self) -> u64 {
                    self.inner.borrow().$name
                }

                /// Increments the corresponding counter by one.
                pub fn $inc(&self) {
                    self.inner.borrow_mut().$name += 1;
                }
            )*
        }
    };
}

stats_impl! {
    /// Physical page-table updates (map, unmap, protect, unprotect).
    pte_updates: inc_pte_updates,
    /// Per-entry TLB consistency flushes.
    tlb_flushes: inc_tlb_flushes,
    /// Software TLB refills.
    tlb_refills: inc_tlb_refills,
    /// Pages zero-filled for security.
    pages_cleared: inc_pages_cleared,
    /// Pages physically copied.
    pages_copied: inc_pages_copied,
    /// Lazy zero-fill (soft) faults taken.
    soft_faults: inc_soft_faults,
    /// Copy-on-write faults taken.
    cow_faults: inc_cow_faults,
    /// Access violations (protection faults delivered to the offender).
    access_violations: inc_access_violations,
    /// Reads of unmapped fbuf-region addresses that were satisfied with a
    /// synthetic empty leaf (paper §3.2.4).
    wild_reads_nullified: inc_wild_reads_nullified,
    /// Physical frames allocated.
    frames_allocated: inc_frames_allocated,
    /// Physical frames freed.
    frames_freed: inc_frames_freed,
    /// Frames reclaimed from fbuf free lists by the pageout daemon.
    frames_reclaimed: inc_frames_reclaimed,
    /// IPC messages sent (calls and explicit notices; replies not counted).
    ipc_messages: inc_ipc_messages,
    /// Deallocation notices piggybacked on RPC replies.
    piggybacked_notices: inc_piggybacked_notices,
    /// Explicit deallocation-notice messages ("in practice, it is rarely
    /// necessary to send additional messages").
    explicit_notice_messages: inc_explicit_notice_messages,
    /// Fbuf allocations satisfied from a per-path cached free list.
    fbuf_cache_hits: inc_fbuf_cache_hits,
    /// Fbuf allocations that had to build a new buffer.
    fbuf_cache_misses: inc_fbuf_cache_misses,
    /// Chunks of the fbuf region granted to per-domain allocators.
    chunks_granted: inc_chunks_granted,
    /// Chunk requests denied by the per-path quota.
    chunk_quota_denials: inc_chunk_quota_denials,
    /// Cross-domain fbuf transfers performed.
    fbuf_transfers: inc_fbuf_transfers,
    /// Fbufs secured (write permission removed from the originator).
    fbufs_secured: inc_fbufs_secured,
    /// Aggregate-object DAG nodes visited during receive-side traversal.
    dag_nodes_visited: inc_dag_nodes_visited,
    /// DAG traversals aborted because a cycle was detected.
    dag_cycles_detected: inc_dag_cycles_detected,
    /// DAG child pointers rejected by the fbuf-region range check.
    dag_range_check_failures: inc_dag_range_check_failures,
    /// Bytes copied by the generator interface when a data unit straddled a
    /// fragment boundary (§5.2). Incremented per copy, not per byte.
    generator_copies: inc_generator_copies,
    /// PDUs carried by a driver (loopback or Osiris).
    pdus_sent: inc_pdus_sent,
    /// PDUs received into preallocated *cached* fbufs by the Osiris driver.
    driver_cached_rx: inc_driver_cached_rx,
    /// PDUs received into the uncached fallback pool by the Osiris driver.
    driver_uncached_rx: inc_driver_uncached_rx,
    /// Transfers dropped because a domain actor's bounded inbox was full
    /// (the event-loop engine's explicit `Overload` outcome; always zero
    /// under the recursive/direct engine and under drained pipelines).
    overload_drops: inc_overload_drops,
    /// Bytes carried across domain boundaries by fbuf transfers (the
    /// fleet total the per-tenant ledger must conserve against).
    bytes_transferred: inc_bytes_transferred,
    /// Allocations denied because the requesting tenant was jailed by
    /// the hoard detector (organic containment, never injected faults).
    jail_denials: inc_jail_denials,
    /// Fbufs forcibly revoked from a tenant — either reclaimed from a
    /// jailed hoarder's cached free lists or taken back from a stalled
    /// receiver when a transfer's revocation deadline expired.
    fbufs_revoked: inc_fbufs_revoked,
    /// Forged or stale cross-shard ring tokens rejected before any
    /// dereference (bad shard bits or a stale arena generation).
    tokens_rejected: inc_tokens_rejected,
}

/// Shared operation counters.
///
/// Like [`crate::Clock`], `Stats` is a cheap cloneable handle; every layer of
/// the stack increments the same underlying counters.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    inner: Rc<RefCell<StatsSnapshot>>,
}

impl Stats {
    /// Creates a zeroed counter set.
    pub fn new() -> Stats {
        Stats::default()
    }

    /// Bulk-increments `pte_updates` by `n`. Used by the batched VM range
    /// operations, whose counter totals must be identical to the per-page
    /// sequences they replace (`n` single increments).
    pub fn add_pte_updates(&self, n: u64) {
        self.inner.borrow_mut().pte_updates += n;
    }

    /// Bulk-increments `tlb_flushes` by `n` (see [`Stats::add_pte_updates`]).
    pub fn add_tlb_flushes(&self, n: u64) {
        self.inner.borrow_mut().tlb_flushes += n;
    }

    /// Bulk-increments `frames_reclaimed` by `n` (one per frame taken from
    /// a parked buffer by the pageout daemon).
    pub fn add_frames_reclaimed(&self, n: u64) {
        self.inner.borrow_mut().frames_reclaimed += n;
    }

    /// Bulk-increments `piggybacked_notices` by `n` (one per token drained
    /// into an RPC reply).
    pub fn add_piggybacked_notices(&self, n: u64) {
        self.inner.borrow_mut().piggybacked_notices += n;
    }

    /// Bulk-increments `bytes_transferred` by `n` (the byte length of one
    /// cross-domain transfer).
    pub fn add_bytes_transferred(&self, n: u64) {
        self.inner.borrow_mut().bytes_transferred += n;
    }

    /// Copies out the current values.
    pub fn snapshot(&self) -> StatsSnapshot {
        self.inner.borrow().clone()
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        *self.inner.borrow_mut() = StatsSnapshot::default();
    }
}

impl ToJson for StatsSnapshot {
    /// An object with every counter by name, in declaration order
    /// (zero-valued counters included, so report consumers see a stable
    /// schema).
    fn to_json(&self) -> Json {
        Json::obj(
            self.counters()
                .iter()
                .map(|c| (c.name, c.value.to_json()))
                .collect(),
        )
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in self.counters() {
            if c.value != 0 {
                writeln!(f, "{:>28}: {}", c.name, c.value)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_increment_and_snapshot() {
        let s = Stats::new();
        s.inc_pte_updates();
        s.inc_pte_updates();
        s.inc_tlb_flushes();
        assert_eq!(s.pte_updates(), 2);
        assert_eq!(s.tlb_flushes(), 1);
        let snap = s.snapshot();
        assert_eq!(snap.pte_updates, 2);
        assert_eq!(snap.total(), 3);
    }

    #[test]
    fn handles_share_storage() {
        let a = Stats::new();
        let b = a.clone();
        a.inc_fbuf_cache_hits();
        b.inc_fbuf_cache_hits();
        assert_eq!(a.fbuf_cache_hits(), 2);
    }

    #[test]
    fn delta_subtracts_fieldwise() {
        let s = Stats::new();
        s.inc_pages_cleared();
        let before = s.snapshot();
        s.inc_pages_cleared();
        s.inc_pages_copied();
        let d = s.snapshot().delta(&before);
        assert_eq!(d.pages_cleared, 1);
        assert_eq!(d.pages_copied, 1);
        assert_eq!(d.pte_updates, 0);
    }

    #[test]
    fn merge_is_plus_with_zero_identity() {
        let s = Stats::new();
        s.inc_fbuf_cache_hits();
        s.inc_pte_updates();
        let a = s.snapshot();
        s.reset();
        s.inc_fbuf_cache_hits();
        let b = s.snapshot();
        let merged = a.merge(&b);
        assert_eq!(merged.fbuf_cache_hits, 2);
        assert_eq!(merged.pte_updates, 1);
        assert_eq!(a.merge(&StatsSnapshot::default()), a);
        assert_eq!(StatsSnapshot::merge_all([&a, &b]), merged);
        assert_eq!(
            StatsSnapshot::merge_all(std::iter::empty()),
            StatsSnapshot::default()
        );
    }

    #[test]
    fn reset_zeroes() {
        let s = Stats::new();
        s.inc_cow_faults();
        s.reset();
        assert_eq!(s.snapshot().total(), 0);
    }

    #[test]
    fn display_skips_zero_counters() {
        let s = Stats::new();
        s.inc_soft_faults();
        let text = s.snapshot().to_string();
        assert!(text.contains("soft_faults"));
        assert!(!text.contains("cow_faults"));
    }

    #[test]
    fn json_snapshot_lists_every_counter() {
        let s = Stats::new();
        s.inc_pte_updates();
        let j = s.snapshot().to_json();
        assert_eq!(j.get("pte_updates").and_then(Json::as_f64), Some(1.0));
        // Zero counters stay present: the report schema is stable.
        assert_eq!(j.get("pages_copied").and_then(Json::as_f64), Some(0.0));
        let rendered = j.render();
        let parsed = Json::parse(&rendered).expect("snapshot json parses");
        assert_eq!(parsed.get("pte_updates").and_then(Json::as_f64), Some(1.0));
    }

    #[test]
    fn counters_listing_has_names() {
        let s = Stats::new();
        s.inc_dag_cycles_detected();
        let list = s.snapshot().counters();
        let c = list
            .iter()
            .find(|c| c.name == "dag_cycles_detected")
            .unwrap();
        assert_eq!(c.value, 1);
    }
}
