//! Time-series telemetry: gauges sampled on a simulated-time cadence.
//!
//! A [`Metrics`] handle is shared the same way as the
//! [`Tracer`](crate::Tracer): the machine creates one, every layer
//! borrows it, and it is **disabled by default** behind a single
//! `Cell<bool>` read. Sampling never charges the clock, so enabling
//! telemetry observes a run without moving a simulated nanosecond — the
//! same zero-cost-by-default contract the tracer pins.
//!
//! Instrumented code polls [`Metrics::due`] at natural checkpoints
//! (allocation, hop dispatch, ring polls); when the simulated clock has
//! passed the next sample deadline, it records one gauge reading per
//! series and calls [`Metrics::advance`]. Each named series is a
//! **fixed-capacity ring**: when full, the oldest point is dropped and
//! counted, so a long workload keeps a bounded recent window rather
//! than growing without limit — exactly the trace-ring policy, applied
//! to gauges.
//!
//! Per-shard series are folded fleet-wide by [`merge_shards`] (names
//! prefixed `s<shard>.`, each shard's clock is independent) and
//! exported into every `BENCH_*.json` as the `telemetry` block via
//! [`telemetry_json`]. See `DESIGN.md` §13.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use crate::json::{Json, ToJson};
use crate::time::Ns;

/// Default sampling cadence: one gauge reading per simulated 10 µs —
/// fine enough to resolve per-message dynamics, coarse enough that a
/// full figure sweep stays a few thousand points per series.
pub const DEFAULT_CADENCE_NS: u64 = 10_000;

/// Default points retained per series before the ring evicts.
pub const DEFAULT_POINTS: usize = 4_096;

/// Default cap on distinct series names (beyond it, new names are
/// counted as dropped rather than allocated).
pub const DEFAULT_MAX_SERIES: usize = 64;

/// Well-known gauge: size of the last non-empty burst a shard drained
/// from its ingress data ring in one acquire (`Consumer::drain_into`).
/// A value above 1 means the batched consumer amortized ring
/// synchronization across that many cross-shard payloads.
pub const GAUGE_RING_BATCH_OCCUPANCY: &str = "ring_batch_occupancy";

/// Well-known gauge: average dealloc-notice tokens per flushed
/// `NoticeBatch` ring slot, in fixed-point hundredths (100 = one token
/// per slot, 800 = eight tokens coalesced into each slot). Tracks how
/// much reverse-ring traffic the coalescing plane saves.
pub const GAUGE_NOTICE_COALESCE_FACTOR: &str = "notice_coalesce_factor";

/// One gauge reading: simulated time and value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricPoint {
    /// Simulated time of the sample.
    pub at: Ns,
    /// The gauge value.
    pub value: u64,
}

/// An owned snapshot of one series, safe to move across threads (a
/// shard hands these back in its report).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesSnapshot {
    /// Series name (e.g. `live_fbufs`; fleet-merged names are prefixed
    /// `s<shard>.`).
    pub name: String,
    /// Points evicted from the full ring.
    pub dropped: u64,
    /// Retained points, oldest first.
    pub points: Vec<MetricPoint>,
}

#[derive(Debug)]
struct SeriesRing {
    name: String,
    dropped: u64,
    points: VecDeque<MetricPoint>,
}

#[derive(Debug)]
struct MetricsInner {
    cap: usize,
    max_series: usize,
    /// Series names refused because `max_series` was reached.
    refused_names: u64,
    series: Vec<SeriesRing>,
}

#[derive(Debug)]
struct MetricsShared {
    enabled: Cell<bool>,
    cadence: Cell<u64>,
    next: Cell<u64>,
    inner: RefCell<MetricsInner>,
}

/// Shared telemetry handle. See the [module docs](self).
///
/// # Examples
///
/// ```
/// use fbuf_sim::metrics::Metrics;
/// use fbuf_sim::Ns;
///
/// let m = Metrics::new();
/// assert!(!m.due(Ns(0)), "disabled: never due");
/// m.set_enabled(true);
/// if m.due(Ns(0)) {
///     m.sample(Ns(0), "live_fbufs", 3);
///     m.advance(Ns(0));
/// }
/// assert!(!m.due(Ns(5_000)), "cadence not yet elapsed");
/// assert_eq!(m.series()[0].points.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Metrics {
    shared: Rc<MetricsShared>,
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics::new()
    }
}

impl Metrics {
    /// A disabled metric set with the default cadence and capacities.
    pub fn new() -> Metrics {
        Metrics {
            shared: Rc::new(MetricsShared {
                enabled: Cell::new(false),
                cadence: Cell::new(DEFAULT_CADENCE_NS),
                next: Cell::new(0),
                inner: RefCell::new(MetricsInner {
                    cap: DEFAULT_POINTS,
                    max_series: DEFAULT_MAX_SERIES,
                    refused_names: 0,
                    series: Vec::new(),
                }),
            }),
        }
    }

    /// Turns sampling on or off. Recorded series are kept either way.
    pub fn set_enabled(&self, on: bool) {
        self.shared.enabled.set(on);
    }

    /// Whether gauges are currently sampled.
    pub fn is_enabled(&self) -> bool {
        self.shared.enabled.get()
    }

    /// Sets the simulated-time sampling cadence (clamped to ≥ 1 ns).
    pub fn set_cadence(&self, ns: u64) {
        self.shared.cadence.set(ns.max(1));
    }

    /// The simulated-time sampling cadence in ns.
    pub fn cadence(&self) -> u64 {
        self.shared.cadence.get()
    }

    /// True when a sample is due at simulated time `now`: enabled and
    /// at least one cadence past the previous sample. A disabled set is
    /// never due — one `Cell` read, the whole disabled-path cost.
    pub fn due(&self, now: Ns) -> bool {
        self.shared.enabled.get() && now.0 >= self.shared.next.get()
    }

    /// Arms the next sample deadline one cadence after `now`. Call once
    /// per due-sample batch.
    pub fn advance(&self, now: Ns) {
        self.shared.next.set(now.0.saturating_add(self.shared.cadence.get()));
    }

    /// Records one gauge reading into the named series (created on
    /// first use, up to the series cap). No-op while disabled.
    pub fn sample(&self, now: Ns, name: &str, value: u64) {
        if !self.shared.enabled.get() {
            return;
        }
        let mut inner = self.shared.inner.borrow_mut();
        let cap = inner.cap;
        match inner.series.iter_mut().find(|s| s.name == name) {
            Some(s) => {
                if s.points.len() == cap {
                    s.points.pop_front();
                    s.dropped += 1;
                }
                s.points.push_back(MetricPoint { at: now, value });
            }
            None => {
                if inner.series.len() >= inner.max_series {
                    inner.refused_names += 1;
                    return;
                }
                let mut points = VecDeque::new();
                points.push_back(MetricPoint { at: now, value });
                inner.series.push(SeriesRing {
                    name: name.to_string(),
                    dropped: 0,
                    points,
                });
            }
        }
    }

    /// Resizes every series ring (evicting oldest points if shrinking).
    pub fn set_capacity(&self, cap: usize) {
        let mut inner = self.shared.inner.borrow_mut();
        inner.cap = cap.max(1);
        let cap = inner.cap;
        for s in &mut inner.series {
            while s.points.len() > cap {
                s.points.pop_front();
                s.dropped += 1;
            }
        }
    }

    /// Series names refused because the series cap was reached.
    pub fn refused_names(&self) -> u64 {
        self.shared.inner.borrow().refused_names
    }

    /// Owned snapshots of every series, in first-seen order.
    pub fn series(&self) -> Vec<SeriesSnapshot> {
        self.shared
            .inner
            .borrow()
            .series
            .iter()
            .map(|s| SeriesSnapshot {
                name: s.name.clone(),
                dropped: s.dropped,
                points: s.points.iter().copied().collect(),
            })
            .collect()
    }

    /// Discards every series and re-arms the sample deadline at zero
    /// (keeps enablement, cadence, and capacities).
    pub fn clear(&self) {
        let mut inner = self.shared.inner.borrow_mut();
        inner.series.clear();
        inner.refused_names = 0;
        drop(inner);
        self.shared.next.set(0);
    }

    /// This metric set rendered as a `telemetry` block.
    pub fn to_json(&self) -> Json {
        telemetry_json(self.cadence(), &self.series())
    }
}

/// Folds per-shard series into one fleet-wide set: each shard's series
/// keep their own (independent) simulated timeline and are namespaced
/// `s<shard>.<name>`, preserving order.
pub fn merge_shards(shards: &[(u32, Vec<SeriesSnapshot>)]) -> Vec<SeriesSnapshot> {
    let mut out = Vec::new();
    for (shard, series) in shards {
        for s in series {
            out.push(SeriesSnapshot {
                name: format!("s{shard}.{}", s.name),
                dropped: s.dropped,
                points: s.points.clone(),
            });
        }
    }
    out
}

/// Renders the stable `telemetry` block every `BENCH_*.json` carries:
/// the sampling cadence and one `{name, dropped, points: [[ns, value],
/// ...]}` object per series.
pub fn telemetry_json(cadence_ns: u64, series: &[SeriesSnapshot]) -> Json {
    let arr = series
        .iter()
        .map(|s| {
            let points = s
                .points
                .iter()
                .map(|p| Json::Arr(vec![p.at.0.to_json(), p.value.to_json()]))
                .collect();
            Json::obj(vec![
                ("name", s.name.as_str().to_json()),
                ("dropped", s.dropped.to_json()),
                ("points", Json::Arr(points)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("cadence_ns", cadence_ns.to_json()),
        ("series", Json::Arr(arr)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_metrics_record_nothing_and_are_never_due() {
        let m = Metrics::new();
        assert!(!m.due(Ns(u64::MAX / 2)));
        m.sample(Ns(0), "x", 1);
        assert!(m.series().is_empty());
    }

    #[test]
    fn cadence_gates_sampling() {
        let m = Metrics::new();
        m.set_enabled(true);
        m.set_cadence(1_000);
        assert!(m.due(Ns(0)));
        m.sample(Ns(0), "g", 1);
        m.advance(Ns(0));
        assert!(!m.due(Ns(999)));
        assert!(m.due(Ns(1_000)));
        m.sample(Ns(1_000), "g", 2);
        m.advance(Ns(1_000));
        let s = &m.series()[0];
        assert_eq!(s.points.len(), 2);
        assert_eq!(s.points[1].value, 2);
        assert_eq!(s.points[1].at, Ns(1_000));
    }

    #[test]
    fn series_ring_evicts_oldest_and_counts_drops() {
        let m = Metrics::new();
        m.set_enabled(true);
        m.set_capacity(2);
        for i in 0..5u64 {
            m.sample(Ns(i), "g", i);
        }
        let s = &m.series()[0];
        assert_eq!(s.dropped, 3);
        let vals: Vec<u64> = s.points.iter().map(|p| p.value).collect();
        assert_eq!(vals, vec![3, 4]);
    }

    #[test]
    fn series_cap_refuses_new_names() {
        let m = Metrics::new();
        m.set_enabled(true);
        {
            let mut inner = m.shared.inner.borrow_mut();
            inner.max_series = 1;
        }
        m.sample(Ns(0), "a", 1);
        m.sample(Ns(0), "b", 2);
        assert_eq!(m.series().len(), 1);
        assert_eq!(m.refused_names(), 1);
    }

    #[test]
    fn merge_prefixes_shard_names() {
        let a = vec![SeriesSnapshot {
            name: "g".into(),
            dropped: 0,
            points: vec![MetricPoint { at: Ns(1), value: 10 }],
        }];
        let b = vec![SeriesSnapshot {
            name: "g".into(),
            dropped: 2,
            points: vec![],
        }];
        let merged = merge_shards(&[(0, a), (1, b)]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].name, "s0.g");
        assert_eq!(merged[1].name, "s1.g");
        assert_eq!(merged[1].dropped, 2);
    }

    #[test]
    fn telemetry_block_round_trips_through_parser() {
        let m = Metrics::new();
        m.set_enabled(true);
        m.sample(Ns(5), "live", 2);
        let rendered = m.to_json().render();
        let parsed = Json::parse(&rendered).expect("telemetry parses");
        assert!(parsed.get("cadence_ns").and_then(Json::as_f64).is_some());
        let series = parsed.get("series").and_then(Json::as_arr).expect("series");
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].get("name").and_then(Json::as_str), Some("live"));
        let pts = series[0].get("points").and_then(Json::as_arr).expect("points");
        assert_eq!(pts.len(), 1);
    }
}
