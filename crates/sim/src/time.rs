//! Simulated time: the [`Ns`] unit and the accounting [`Clock`].

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use std::cell::RefCell;
use std::rc::Rc;

/// A span (or instant) of simulated time, in nanoseconds.
///
/// All costs charged by the simulated machine are expressed in `Ns`. The
/// type is a thin wrapper over `u64`; arithmetic saturates on subtraction so
/// interval math never panics in release-mode experiment code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ns(pub u64);

impl Ns {
    /// Zero nanoseconds.
    pub const ZERO: Ns = Ns(0);

    /// Constructs a span from whole microseconds.
    pub const fn from_us(us: u64) -> Ns {
        Ns(us * 1_000)
    }

    /// Constructs a span from whole milliseconds.
    pub const fn from_ms(ms: u64) -> Ns {
        Ns(ms * 1_000_000)
    }

    /// Returns this span in (truncated) microseconds.
    pub const fn as_us(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns this span as fractional microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns this span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the raw nanosecond count.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Throughput, in megabits per second, of moving `bytes` in this span.
    ///
    /// Returns `f64::INFINITY` for a zero span, matching how the paper's
    /// asymptotic-throughput columns are computed (bits per incremental
    /// cost).
    ///
    /// # Examples
    ///
    /// ```
    /// use fbuf_sim::Ns;
    ///
    /// // Table 1's headline: a 4 KB page every 3 µs is ~10.9 Gb/s.
    /// let mbps = Ns::from_us(3).mbps(4096);
    /// assert!((mbps - 10_922.6).abs() < 1.0);
    /// ```
    pub fn mbps(self, bytes: u64) -> f64 {
        if self.0 == 0 {
            return f64::INFINITY;
        }
        (bytes as f64 * 8.0) / (self.0 as f64 / 1e9) / 1e6
    }
}

impl Add for Ns {
    type Output = Ns;
    fn add(self, rhs: Ns) -> Ns {
        Ns(self.0 + rhs.0)
    }
}

impl AddAssign for Ns {
    fn add_assign(&mut self, rhs: Ns) {
        self.0 += rhs.0;
    }
}

impl Sub for Ns {
    type Output = Ns;
    fn sub(self, rhs: Ns) -> Ns {
        Ns(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Ns {
    fn sub_assign(&mut self, rhs: Ns) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for Ns {
    type Output = Ns;
    fn mul(self, rhs: u64) -> Ns {
        Ns(self.0 * rhs)
    }
}

impl Div<u64> for Ns {
    type Output = Ns;
    fn div(self, rhs: u64) -> Ns {
        Ns(self.0 / rhs)
    }
}

impl Sum for Ns {
    fn sum<I: Iterator<Item = Ns>>(iter: I) -> Ns {
        iter.fold(Ns::ZERO, Add::add)
    }
}

impl fmt::Display for Ns {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// Where simulated time went; used to attribute costs in experiment reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum CostCategory {
    /// Virtual-memory map and page-table manipulation.
    Vm,
    /// TLB refills and consistency flushes.
    Tlb,
    /// Page clearing (zero-fill) and physical copies.
    DataMove,
    /// Cache-fill stalls charged when touching buffer data.
    DataTouch,
    /// IPC control transfer (trap, context switch, scheduling).
    Ipc,
    /// Protocol processing (headers, checksums, frag/reassembly bookkeeping).
    Protocol,
    /// Device driver and DMA overheads.
    Driver,
    /// Buffer management bookkeeping (free lists, reference counts).
    Alloc,
    /// Anything else.
    Other,
}

impl CostCategory {
    /// All categories, in `repr` order.
    pub const ALL: [CostCategory; 9] = [
        CostCategory::Vm,
        CostCategory::Tlb,
        CostCategory::DataMove,
        CostCategory::DataTouch,
        CostCategory::Ipc,
        CostCategory::Protocol,
        CostCategory::Driver,
        CostCategory::Alloc,
        CostCategory::Other,
    ];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            CostCategory::Vm => "vm",
            CostCategory::Tlb => "tlb",
            CostCategory::DataMove => "datamove",
            CostCategory::DataTouch => "datatouch",
            CostCategory::Ipc => "ipc",
            CostCategory::Protocol => "protocol",
            CostCategory::Driver => "driver",
            CostCategory::Alloc => "alloc",
            CostCategory::Other => "other",
        }
    }
}

#[derive(Debug, Default)]
struct ClockInner {
    now: Ns,
    busy: Ns,
    by_category: [Ns; CostCategory::ALL.len()],
}

/// The simulated CPU clock.
///
/// Time advances in two ways:
///
/// * [`Clock::charge`] — the CPU does work for `span` (attributed to a
///   [`CostCategory`]); both elapsed and *busy* time advance.
/// * [`Clock::wait_until`] / [`Clock::idle`] — the CPU idles until an
///   external event (DMA completion, the peer host, the network); elapsed
///   time advances, busy time does not.
///
/// The busy/elapsed split is exactly what the paper's CPU-load measurement
/// reports ("CPU load was derived from the rate of a counter that is updated
/// by a low-priority background thread").
///
/// `Clock` is a cheap cloneable handle (`Rc<RefCell<...>>`): the machine, the
/// IPC layer, and the drivers all charge the same underlying clock. The
/// simulation is single-threaded by design, mirroring the uniprocessor
/// DecStation.
#[derive(Debug, Clone, Default)]
pub struct Clock {
    inner: Rc<RefCell<ClockInner>>,
}

impl Clock {
    /// Creates a clock at time zero.
    pub fn new() -> Clock {
        Clock::default()
    }

    /// Current simulated time.
    pub fn now(&self) -> Ns {
        self.inner.borrow().now
    }

    /// Total CPU-busy time charged so far.
    pub fn busy(&self) -> Ns {
        self.inner.borrow().busy
    }

    /// Total idle (waited) time so far.
    pub fn idle(&self) -> Ns {
        let inner = self.inner.borrow();
        inner.now - inner.busy
    }

    /// Charges `span` of CPU work attributed to `category`.
    pub fn charge(&self, category: CostCategory, span: Ns) {
        let mut inner = self.inner.borrow_mut();
        inner.now += span;
        inner.busy += span;
        inner.by_category[category as usize] += span;
    }

    /// Idles (without CPU work) for `span`.
    pub fn idle_for(&self, span: Ns) {
        self.inner.borrow_mut().now += span;
    }

    /// Idles until the instant `t`; no-op if `t` is in the past.
    pub fn wait_until(&self, t: Ns) {
        let mut inner = self.inner.borrow_mut();
        if t > inner.now {
            inner.now = t;
        }
    }

    /// Time charged to `category` so far.
    pub fn spent_on(&self, category: CostCategory) -> Ns {
        self.inner.borrow().by_category[category as usize]
    }

    /// Snapshot of the per-category breakdown.
    pub fn breakdown(&self) -> Vec<(CostCategory, Ns)> {
        let inner = self.inner.borrow();
        CostCategory::ALL
            .iter()
            .map(|&c| (c, inner.by_category[c as usize]))
            .collect()
    }

    /// CPU utilization (busy / elapsed) over the clock's whole lifetime.
    ///
    /// Returns 0.0 for a clock that has never advanced: no elapsed time
    /// means no work was measured, and the guard keeps the 0/0 case from
    /// surfacing as NaN in reports.
    pub fn utilization(&self) -> f64 {
        let inner = self.inner.borrow();
        if inner.now.0 == 0 {
            return 0.0;
        }
        inner.busy.0 as f64 / inner.now.0 as f64
    }

    /// Resets the clock to time zero, clearing all accounting.
    pub fn reset(&self) {
        *self.inner.borrow_mut() = ClockInner::default();
    }
}

/// A point-in-time capture of a [`Clock`], for measuring deltas.
#[derive(Debug, Clone, Copy)]
pub struct ClockMark {
    now: Ns,
    busy: Ns,
}

impl Clock {
    /// Captures the current instant for later [`Clock::since`].
    pub fn mark(&self) -> ClockMark {
        let inner = self.inner.borrow();
        ClockMark {
            now: inner.now,
            busy: inner.busy,
        }
    }

    /// Elapsed time since `mark`.
    pub fn since(&self, mark: ClockMark) -> Ns {
        self.now() - mark.now
    }

    /// Busy time since `mark`.
    pub fn busy_since(&self, mark: ClockMark) -> Ns {
        self.busy() - mark.busy
    }

    /// CPU utilization (busy / elapsed) since `mark`. Returns 0.0 over
    /// a zero-elapsed interval (never NaN).
    pub fn utilization_since(&self, mark: ClockMark) -> f64 {
        let elapsed = self.since(mark);
        if elapsed.0 == 0 {
            return 0.0;
        }
        self.busy_since(mark).0 as f64 / elapsed.0 as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_conversions() {
        assert_eq!(Ns::from_us(3).as_ns(), 3_000);
        assert_eq!(Ns::from_ms(2).as_us(), 2_000);
        assert_eq!(Ns(1_500).as_us(), 1);
        assert!((Ns(1_500).as_us_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn ns_arithmetic_saturates_on_subtraction() {
        assert_eq!(Ns(5) - Ns(10), Ns::ZERO);
        let mut t = Ns(5);
        t -= Ns(10);
        assert_eq!(t, Ns::ZERO);
    }

    #[test]
    fn ns_throughput() {
        // 4096 bytes in 3 us = 10,922.666 Mb/s — the paper's Table 1 anchor.
        let mbps = Ns::from_us(3).mbps(4096);
        assert!((mbps - 10_922.0).abs() < 1.0, "got {mbps}");
        assert!(Ns::ZERO.mbps(1).is_infinite());
    }

    #[test]
    fn ns_display() {
        assert_eq!(Ns(999).to_string(), "999ns");
        assert_eq!(Ns(1_500).to_string(), "1.500us");
        assert_eq!(Ns(2_500_000).to_string(), "2.500ms");
    }

    #[test]
    fn clock_charges_and_categorizes() {
        let clock = Clock::new();
        clock.charge(CostCategory::Vm, Ns(100));
        clock.charge(CostCategory::Tlb, Ns(50));
        clock.charge(CostCategory::Vm, Ns(25));
        assert_eq!(clock.now(), Ns(175));
        assert_eq!(clock.busy(), Ns(175));
        assert_eq!(clock.spent_on(CostCategory::Vm), Ns(125));
        assert_eq!(clock.spent_on(CostCategory::Tlb), Ns(50));
        assert_eq!(clock.spent_on(CostCategory::Ipc), Ns::ZERO);
    }

    #[test]
    fn clock_idle_does_not_count_as_busy() {
        let clock = Clock::new();
        clock.charge(CostCategory::Driver, Ns(300));
        clock.idle_for(Ns(700));
        assert_eq!(clock.now(), Ns(1_000));
        assert_eq!(clock.busy(), Ns(300));
        assert_eq!(clock.idle(), Ns(700));
        assert!((clock.utilization() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn utilization_over_zero_elapsed_is_zero_not_nan() {
        let clock = Clock::new();
        assert_eq!(clock.utilization(), 0.0, "fresh clock");
        let mark = clock.mark();
        let u = clock.utilization_since(mark);
        assert_eq!(u, 0.0, "zero-elapsed interval");
        assert!(!u.is_nan());
        // A real interval afterwards still measures normally.
        clock.charge(CostCategory::Driver, Ns(100));
        assert!((clock.utilization_since(mark) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn clock_wait_until_never_rewinds() {
        let clock = Clock::new();
        clock.charge(CostCategory::Other, Ns(500));
        clock.wait_until(Ns(400));
        assert_eq!(clock.now(), Ns(500));
        clock.wait_until(Ns(900));
        assert_eq!(clock.now(), Ns(900));
    }

    #[test]
    fn clock_marks_measure_deltas() {
        let clock = Clock::new();
        clock.charge(CostCategory::Vm, Ns(100));
        let mark = clock.mark();
        clock.charge(CostCategory::Vm, Ns(40));
        clock.idle_for(Ns(60));
        assert_eq!(clock.since(mark), Ns(100));
        assert_eq!(clock.busy_since(mark), Ns(40));
        assert!((clock.utilization_since(mark) - 0.4).abs() < 1e-9);
    }

    #[test]
    fn clock_handles_are_shared() {
        let a = Clock::new();
        let b = a.clone();
        a.charge(CostCategory::Ipc, Ns(10));
        b.charge(CostCategory::Ipc, Ns(5));
        assert_eq!(a.now(), Ns(15));
        assert_eq!(b.now(), Ns(15));
    }

    #[test]
    fn clock_reset_clears_everything() {
        let clock = Clock::new();
        clock.charge(CostCategory::Vm, Ns(10));
        clock.idle_for(Ns(10));
        clock.reset();
        assert_eq!(clock.now(), Ns::ZERO);
        assert_eq!(clock.busy(), Ns::ZERO);
        assert_eq!(clock.spent_on(CostCategory::Vm), Ns::ZERO);
    }
}
