//! Structured lifecycle tracing: a bounded ring buffer of typed events.
//!
//! The [`Tracer`] is a cheap-clone shared handle, distributed the same
//! way as [`Clock`] and `Stats`: the machine creates one and every layer
//! borrows it. It is **disabled by default** and gated on a single
//! `Cell<bool>` read, and recording never charges the clock, so enabling
//! it observes a run without perturbing a single simulated nanosecond —
//! the "zero-cost-by-default" contract the bench suite pins.
//!
//! Each [`TraceEvent`] carries the simulated time, the acting domain,
//! and the path/fbuf it concerns. Instant events mark points
//! (`CacheHit`, `Fault`, `PduRx`, ...); span events additionally carry a
//! duration measured from a caller-captured start time (`Alloc`,
//! `Transfer`), and those two span kinds feed per-path
//! [`Histogram`]s of allocation service time and transfer latency
//! as a side effect of being recorded.
//!
//! Storage is a fixed-capacity ring: when full, the oldest event is
//! dropped and a counter incremented, so a long workload can run under a
//! small trace window without unbounded memory. [`Tracer::chrome_trace`]
//! exports the ring in Chrome `trace_event` JSON (load it in
//! `about://tracing` or Perfetto); [`Tracer::events`] hands the raw ring
//! to the replay auditor in [`mod@crate::audit`].

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use crate::hist::Histogram;
use crate::json::{Json, ToJson};
use crate::time::{Clock, Ns};

/// Default ring capacity: enough for every integration-test workload to
/// fit untruncated, small enough to be negligible next to simulated
/// physical memory.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// What happened. Instants mark a point; `Alloc` and `Transfer` are
/// recorded as spans with a duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// An fbuf allocation completed (span; feeds the allocation-service
    /// histogram).
    Alloc,
    /// A cached allocation was served from the path's free list.
    CacheHit,
    /// A cached allocation found the free list empty and built fresh.
    CacheMiss,
    /// An fbuf's pages were write-protected in every mapping.
    Secure,
    /// An fbuf was handed from `dom` to `peer` (span; feeds the
    /// transfer-latency histogram).
    Transfer,
    /// A translation fault was serviced (soft, COW, violation, wild read).
    Fault,
    /// A dealloc notice travelled (piggybacked or explicit) to `peer`.
    Notice,
    /// A holder released its reference.
    Free,
    /// A parked cached frame was reclaimed under memory pressure.
    Reclaim,
    /// A PDU left a driver/stack.
    PduTx,
    /// A PDU arrived at a driver/stack.
    PduRx,
    /// An integrated-DAG node was visited during traversal.
    DagVisit,
    /// A domain wrote fbuf bytes (successfully — protection allowed it).
    Write,
    /// A cross-domain RPC from `dom` to `peer`.
    IpcCall,
    /// A message hopped a protocol-graph domain boundary.
    Hop,
    /// A batched `map_range` installed `pages` translations in one VM
    /// call (one event where the per-page sequence would emit N).
    MapRange,
    /// A batched `unmap_range` removed up to `pages` translations.
    UnmapRange,
    /// A batched `protect_range` changed `pages` pages' protection.
    ProtectRange,
    /// A transfer event was enqueued into a domain actor's inbox
    /// (`dom` = poster, `peer` = destination actor).
    Enqueue,
    /// A domain actor dequeued an inbox event for processing (`dom` =
    /// the actor, `peer` = original poster; `dur` = queueing delay).
    Dequeue,
    /// An enqueue was refused because the destination actor's bounded
    /// inbox was full — the transfer was dropped, not recursed into.
    Overload,
    /// A transfer span was minted (`span` = the new span id): the root
    /// of one transfer's causal tree.
    SpanStart,
    /// A parent/child span edge: a transfer crossed into a new context
    /// (e.g. a cross-shard ring) and continued under a child span.
    /// `span` = the child, `fbuf` = the **parent** span id.
    SpanLink,
    /// A cross-shard payload was handled after crossing an SPSC ring
    /// (span; `dur` = receiver-side ingest handling time, `pages` = ring
    /// occupancy observed at the crossing).
    RingCross,
    /// One scheduled transfer hop's handler ran to completion (span;
    /// `dur` = service time from dequeue to handler return).
    HopService,
    /// A dealloc notice arrived with no matching pending egress buffer
    /// (or out of FIFO send order) — `fbuf` carries the orphan token.
    /// Under fault injection this is survivable; the audit rule
    /// `notice-without-pending` turns every occurrence into a typed
    /// violation instead of a fleet abort.
    NoticeOrphan,
    /// An fbuf was forcibly revoked from a tenant: `dom` is the holder
    /// (stalled-receiver timeout) or the originator of a parked buffer
    /// being retired (quota-jail escalation). The audit rule
    /// `revoke-of-dead-buffer` requires the target to still be live —
    /// held by `dom` or parked on its path — at the moment of the event.
    Revoked,
    /// A forged or stale cross-shard ring token was rejected before any
    /// dereference (`fbuf` carries the raw rejected token). Informational:
    /// rejection is the *correct* outcome, so no audit rule fires.
    TokenReject,
}

impl EventKind {
    /// Stable label used in exports and reports.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Alloc => "Alloc",
            EventKind::CacheHit => "CacheHit",
            EventKind::CacheMiss => "CacheMiss",
            EventKind::Secure => "Secure",
            EventKind::Transfer => "Transfer",
            EventKind::Fault => "Fault",
            EventKind::Notice => "Notice",
            EventKind::Free => "Free",
            EventKind::Reclaim => "Reclaim",
            EventKind::PduTx => "PduTx",
            EventKind::PduRx => "PduRx",
            EventKind::DagVisit => "DagVisit",
            EventKind::Write => "Write",
            EventKind::IpcCall => "IpcCall",
            EventKind::Hop => "Hop",
            EventKind::MapRange => "MapRange",
            EventKind::UnmapRange => "UnmapRange",
            EventKind::ProtectRange => "ProtectRange",
            EventKind::Enqueue => "Enqueue",
            EventKind::Dequeue => "Dequeue",
            EventKind::Overload => "Overload",
            EventKind::SpanStart => "SpanStart",
            EventKind::SpanLink => "SpanLink",
            EventKind::RingCross => "RingCross",
            EventKind::HopService => "HopService",
            EventKind::NoticeOrphan => "NoticeOrphan",
            EventKind::Revoked => "Revoked",
            EventKind::TokenReject => "TokenReject",
        }
    }
}

/// One recorded event. `at` is the simulated time the event was
/// recorded (for spans: the end; the start is `at - dur`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotone sequence number (survives ring eviction, so gaps at the
    /// front reveal truncation).
    pub seq: u64,
    /// Simulated timestamp at recording.
    pub at: Ns,
    /// Event kind.
    pub kind: EventKind,
    /// The acting domain.
    pub dom: u32,
    /// The peer domain, where the event has one (receiver of a
    /// `Transfer`, callee of an `IpcCall`, holder a `Notice` reaches).
    pub peer: Option<u32>,
    /// The path concerned, if any.
    pub path: Option<u64>,
    /// The fbuf concerned, if any.
    pub fbuf: Option<u64>,
    /// Span duration; `None` for instants.
    pub dur: Option<Ns>,
    /// Page count, for the ranged VM events (`MapRange`/`UnmapRange`/
    /// `ProtectRange`); for `RingCross`, the ring occupancy observed at
    /// the crossing; `None` otherwise.
    pub pages: Option<u64>,
    /// The causal transfer span this event belongs to, if one was
    /// active when it was recorded (see [`Tracer::set_current_span`]).
    pub span: Option<u64>,
}

#[derive(Debug)]
struct TracerInner {
    cap: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
    seq: u64,
    /// Allocation service time per path (`None` = uncached allocs).
    alloc_hist: Vec<(Option<u64>, Histogram)>,
    /// Transfer latency per path.
    transfer_hist: Vec<(Option<u64>, Histogram)>,
}

impl TracerInner {
    fn push(&mut self, mut e: TraceEvent) {
        e.seq = self.seq;
        self.seq += 1;
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(e);
    }
}

fn hist_entry(
    table: &mut Vec<(Option<u64>, Histogram)>,
    path: Option<u64>,
) -> &mut Histogram {
    if let Some(i) = table.iter().position(|(p, _)| *p == path) {
        return &mut table[i].1;
    }
    table.push((path, Histogram::new()));
    &mut table.last_mut().expect("just pushed").1
}

#[derive(Debug)]
struct TracerShared {
    enabled: Cell<bool>,
    clock: Clock,
    /// The transfer span currently in scope: every event recorded while
    /// it is set is tagged with it. Propagated by the caller across
    /// enqueue/dequeue and ring crossings; orthogonal to `enabled` so
    /// span context survives even while recording is off.
    current_span: Cell<Option<u64>>,
    inner: RefCell<TracerInner>,
}

/// Shared tracing handle. See the [module docs](self).
///
/// # Examples
///
/// ```
/// use fbuf_sim::{Clock, EventKind, Tracer};
///
/// let clock = Clock::new();
/// let t = Tracer::new(clock.clone());
/// t.instant(EventKind::CacheHit, 1, Some(7), Some(3)); // disabled: no-op
/// assert_eq!(t.len(), 0);
/// t.set_enabled(true);
/// let t0 = clock.now();
/// t.span(t0, EventKind::Alloc, 1, Some(7), Some(3));
/// assert_eq!(t.len(), 1);
/// assert_eq!(t.alloc_latency(Some(7)).expect("recorded").count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Tracer {
    shared: Rc<TracerShared>,
}

impl Tracer {
    /// A disabled tracer stamping events from `clock`, with the
    /// [default ring capacity](DEFAULT_CAPACITY).
    pub fn new(clock: Clock) -> Tracer {
        Tracer {
            shared: Rc::new(TracerShared {
                enabled: Cell::new(false),
                clock,
                current_span: Cell::new(None),
                inner: RefCell::new(TracerInner {
                    cap: DEFAULT_CAPACITY,
                    events: VecDeque::new(),
                    dropped: 0,
                    seq: 0,
                    alloc_hist: Vec::new(),
                    transfer_hist: Vec::new(),
                }),
            }),
        }
    }

    /// Turns recording on or off. The ring is kept either way.
    pub fn set_enabled(&self, on: bool) {
        self.shared.enabled.set(on);
    }

    /// Whether events are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.shared.enabled.get()
    }

    /// Resizes the ring (evicting oldest events if shrinking below the
    /// current length).
    pub fn set_capacity(&self, cap: usize) {
        let mut inner = self.shared.inner.borrow_mut();
        inner.cap = cap.max(1);
        while inner.events.len() > inner.cap {
            inner.events.pop_front();
            inner.dropped += 1;
        }
    }

    /// Discards every recorded event and histogram (keeps enablement,
    /// capacity, and the sequence counter).
    pub fn clear(&self) {
        let mut inner = self.shared.inner.borrow_mut();
        inner.events.clear();
        inner.dropped = 0;
        inner.alloc_hist.clear();
        inner.transfer_hist.clear();
    }

    /// The simulated now, for capturing a span start.
    pub fn now(&self) -> Ns {
        self.shared.clock.now()
    }

    /// Sets (or clears) the ambient transfer span: every event recorded
    /// while it is set carries it in [`TraceEvent::span`]. Returns the
    /// previous value so callers can scope-restore. A single `Cell`
    /// write — never charges the clock.
    pub fn set_current_span(&self, span: Option<u64>) -> Option<u64> {
        self.shared.current_span.replace(span)
    }

    /// The ambient transfer span, if one is in scope.
    pub fn current_span(&self) -> Option<u64> {
        self.shared.current_span.get()
    }

    /// Records the root of a new transfer span tree. No-op while
    /// disabled; does **not** change the ambient span.
    pub fn span_start(&self, span: u64, dom: u32, path: Option<u64>, fbuf: Option<u64>) {
        if !self.shared.enabled.get() {
            return;
        }
        self.push_span(EventKind::SpanStart, dom, None, path, fbuf, None, None, Some(span));
    }

    /// Records a parent/child span edge: the transfer identified by
    /// `parent` continues under `child` in a new context (the `fbuf`
    /// field carries the parent id). No-op while disabled.
    pub fn span_link(&self, child: u64, parent: u64, dom: u32) {
        if !self.shared.enabled.get() {
            return;
        }
        self.push_span(EventKind::SpanLink, dom, None, None, Some(parent), None, None, Some(child));
    }

    /// Records a receiver-side ring-crossing span that began at local
    /// time `t0`: `occupancy` is the SPSC ring depth observed at the
    /// crossing. Tagged with the ambient span. No-op while disabled.
    pub fn ring_cross(&self, t0: Ns, dom: u32, occupancy: u64) {
        if !self.shared.enabled.get() {
            return;
        }
        let dur = self.shared.clock.now() - t0;
        self.push(EventKind::RingCross, dom, None, None, None, Some(dur), Some(occupancy));
    }

    /// Records an instant event. No-op while disabled.
    pub fn instant(&self, kind: EventKind, dom: u32, path: Option<u64>, fbuf: Option<u64>) {
        if !self.shared.enabled.get() {
            return;
        }
        self.push(kind, dom, None, path, fbuf, None, None);
    }

    /// Records one ranged VM event (`MapRange`/`UnmapRange`/
    /// `ProtectRange`) covering `pages` pages — the batched replacement
    /// for N per-page events. No-op while disabled.
    pub fn range_op(&self, kind: EventKind, dom: u32, pages: u64) {
        if !self.shared.enabled.get() {
            return;
        }
        self.push(kind, dom, None, None, None, None, Some(pages));
    }

    /// Records an instant event with a peer domain. No-op while
    /// disabled.
    pub fn instant_peer(
        &self,
        kind: EventKind,
        dom: u32,
        peer: u32,
        path: Option<u64>,
        fbuf: Option<u64>,
    ) {
        if !self.shared.enabled.get() {
            return;
        }
        self.push(kind, dom, Some(peer), path, fbuf, None, None);
    }

    /// Records a span that began at simulated time `t0` and ends now.
    /// `Alloc` spans feed the per-path allocation-service histogram and
    /// `Transfer` spans the per-path transfer-latency histogram. No-op
    /// while disabled.
    pub fn span(&self, t0: Ns, kind: EventKind, dom: u32, path: Option<u64>, fbuf: Option<u64>) {
        self.span_peer(t0, kind, dom, None, path, fbuf);
    }

    /// [`Tracer::span`] with a peer domain (e.g. the receiver of a
    /// `Transfer`).
    pub fn span_peer(
        &self,
        t0: Ns,
        kind: EventKind,
        dom: u32,
        peer: Option<u32>,
        path: Option<u64>,
        fbuf: Option<u64>,
    ) {
        if !self.shared.enabled.get() {
            return;
        }
        let dur = self.shared.clock.now() - t0;
        self.push(kind, dom, peer, path, fbuf, Some(dur), None);
        let mut inner = self.shared.inner.borrow_mut();
        match kind {
            EventKind::Alloc => hist_entry(&mut inner.alloc_hist, path).record(dur.0),
            EventKind::Transfer => hist_entry(&mut inner.transfer_hist, path).record(dur.0),
            _ => {}
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &self,
        kind: EventKind,
        dom: u32,
        peer: Option<u32>,
        path: Option<u64>,
        fbuf: Option<u64>,
        dur: Option<Ns>,
        pages: Option<u64>,
    ) {
        self.push_span(kind, dom, peer, path, fbuf, dur, pages, self.shared.current_span.get());
    }

    #[allow(clippy::too_many_arguments)]
    fn push_span(
        &self,
        kind: EventKind,
        dom: u32,
        peer: Option<u32>,
        path: Option<u64>,
        fbuf: Option<u64>,
        dur: Option<Ns>,
        pages: Option<u64>,
        span: Option<u64>,
    ) {
        self.shared.inner.borrow_mut().push(TraceEvent {
            seq: 0, // assigned by TracerInner::push
            at: self.shared.clock.now(),
            kind,
            dom,
            peer,
            path,
            fbuf,
            dur,
            pages,
            span,
        });
    }

    /// Number of events currently in the ring.
    pub fn len(&self) -> usize {
        self.shared.inner.borrow().events.len()
    }

    /// True when the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted from the full ring so far.
    pub fn dropped(&self) -> u64 {
        self.shared.inner.borrow().dropped
    }

    /// A snapshot of the ring, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.shared.inner.borrow().events.iter().copied().collect()
    }

    /// How many ring events are of `kind`.
    pub fn count_of(&self, kind: EventKind) -> usize {
        self.shared
            .inner
            .borrow()
            .events
            .iter()
            .filter(|e| e.kind == kind)
            .count()
    }

    /// Allocation-service histogram for one path key (`None` =
    /// uncached), if any span was recorded for it.
    pub fn alloc_latency(&self, path: Option<u64>) -> Option<Histogram> {
        let inner = self.shared.inner.borrow();
        inner
            .alloc_hist
            .iter()
            .find(|(p, _)| *p == path)
            .map(|(_, h)| h.clone())
    }

    /// Transfer-latency histogram for one path key.
    pub fn transfer_latency(&self, path: Option<u64>) -> Option<Histogram> {
        let inner = self.shared.inner.borrow();
        inner
            .transfer_hist
            .iter()
            .find(|(p, _)| *p == path)
            .map(|(_, h)| h.clone())
    }

    /// All allocation-service spans merged across paths.
    pub fn merged_alloc_latency(&self) -> Histogram {
        let inner = self.shared.inner.borrow();
        let mut out = Histogram::new();
        for (_, h) in &inner.alloc_hist {
            out.merge(h);
        }
        out
    }

    /// All transfer-latency spans merged across paths.
    pub fn merged_transfer_latency(&self) -> Histogram {
        let inner = self.shared.inner.borrow();
        let mut out = Histogram::new();
        for (_, h) in &inner.transfer_hist {
            out.merge(h);
        }
        out
    }

    /// The path keys with at least one recorded latency span, in first-
    /// seen order (transfer paths first, then alloc-only paths).
    pub fn latency_paths(&self) -> Vec<Option<u64>> {
        let inner = self.shared.inner.borrow();
        let mut out: Vec<Option<u64>> = inner.transfer_hist.iter().map(|(p, _)| *p).collect();
        for (p, _) in &inner.alloc_hist {
            if !out.contains(p) {
                out.push(*p);
            }
        }
        out
    }

    /// Exports the ring as Chrome `trace_event` JSON: spans become
    /// complete (`"ph":"X"`) events whose `ts` is the span start, and
    /// instants become thread-scoped instant (`"ph":"i"`) events.
    /// Timestamps are simulated microseconds; `pid` is 1 (one machine)
    /// and `tid` is the acting domain, so each domain renders as its own
    /// track.
    pub fn chrome_trace(&self) -> Json {
        let inner = self.shared.inner.borrow();
        let events = inner
            .events
            .iter()
            .map(|e| {
                let mut args = vec![("seq", e.seq.to_json())];
                if let Some(f) = e.fbuf {
                    args.push(("fbuf", f.to_json()));
                }
                if let Some(p) = e.path {
                    args.push(("path", p.to_json()));
                }
                if let Some(p) = e.peer {
                    args.push(("peer_dom", p.to_json()));
                }
                if let Some(p) = e.pages {
                    args.push(("pages", p.to_json()));
                }
                if let Some(s) = e.span {
                    args.push(("span", s.to_json()));
                }
                let mut pairs = vec![
                    ("name", e.kind.label().to_json()),
                    ("cat", "fbuf".to_json()),
                    ("pid", 1u64.to_json()),
                    ("tid", e.dom.to_json()),
                ];
                match e.dur {
                    Some(d) => {
                        pairs.push(("ph", "X".to_json()));
                        pairs.push(("ts", (e.at - d).as_us_f64().to_json()));
                        pairs.push(("dur", d.as_us_f64().to_json()));
                    }
                    None => {
                        pairs.push(("ph", "i".to_json()));
                        pairs.push(("ts", e.at.as_us_f64().to_json()));
                        pairs.push(("s", "t".to_json()));
                    }
                }
                pairs.push(("args", Json::obj(args)));
                Json::obj(pairs)
            })
            .collect();
        Json::obj(vec![
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", "ms".to_json()),
            ("dropped_events", inner.dropped.to_json()),
        ])
    }
}

/// Merges the trace rings of several shards into one coherent stream.
///
/// Each shard owns an independent machine, so domain ids restart at zero
/// per shard and simulated clocks advance independently; `rings` pairs
/// every shard's events with a **domain-id base** that offsets `dom` and
/// `peer` into a fleet-unique namespace (shard *i*'s base is typically
/// the sum of earlier shards' domain counts). Events are merged by
/// simulated timestamp — each ring is already time-sorted because a
/// shard's clock is monotone, so a stable sort preserves every shard's
/// internal causal order — and re-sequenced `0..n` in merged order.
pub fn merge_rings(rings: &[(u32, Vec<TraceEvent>)]) -> Vec<TraceEvent> {
    let mut out: Vec<TraceEvent> = Vec::with_capacity(rings.iter().map(|(_, r)| r.len()).sum());
    for (dom_base, ring) in rings {
        out.extend(ring.iter().map(|e| TraceEvent {
            dom: e.dom + dom_base,
            peer: e.peer.map(|p| p + dom_base),
            ..*e
        }));
    }
    out.sort_by_key(|e| e.at);
    for (seq, e) in out.iter_mut().enumerate() {
        e.seq = seq as u64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracer() -> (Clock, Tracer) {
        let clock = Clock::new();
        let t = Tracer::new(clock.clone());
        (clock, t)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let (clock, t) = tracer();
        t.instant(EventKind::Fault, 2, None, Some(5));
        t.span(clock.now(), EventKind::Alloc, 1, Some(1), Some(1));
        assert!(t.is_empty());
        assert!(t.merged_alloc_latency().is_empty());
    }

    #[test]
    fn span_measures_simulated_duration() {
        use crate::time::CostCategory;
        let (clock, t) = tracer();
        t.set_enabled(true);
        let t0 = clock.now();
        clock.charge(CostCategory::Vm, Ns(2_500));
        t.span(t0, EventKind::Transfer, 3, Some(9), Some(4));
        let e = t.events()[0];
        assert_eq!(e.dur, Some(Ns(2_500)));
        assert_eq!(e.at, Ns(2_500));
        assert_eq!(e.dom, 3);
        assert_eq!(e.path, Some(9));
        let h = t.transfer_latency(Some(9)).expect("histogram exists");
        assert_eq!(h.count(), 1);
        assert_eq!(h.p50(), 2_500);
    }

    #[test]
    fn range_op_records_one_event_with_page_count() {
        let (_, t) = tracer();
        t.set_enabled(true);
        t.range_op(EventKind::MapRange, 3, 16);
        assert_eq!(t.len(), 1, "one event for the whole range");
        let e = t.events()[0];
        assert_eq!(e.kind, EventKind::MapRange);
        assert_eq!(e.dom, 3);
        assert_eq!(e.pages, Some(16));
        assert_eq!(e.fbuf, None, "ranged events are auditor-neutral");
        // And it renders in the chrome export with the page count.
        let rendered = t.chrome_trace().render();
        assert!(rendered.contains("MapRange"));
        assert!(rendered.contains("\"pages\""));
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let (_, t) = tracer();
        t.set_enabled(true);
        t.set_capacity(3);
        for i in 0..5u64 {
            t.instant(EventKind::Free, 0, None, Some(i));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let seqs: Vec<u64> = t.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4], "oldest evicted, seq monotone");
    }

    #[test]
    fn chrome_trace_round_trips_through_parser() {
        use crate::time::CostCategory;
        let (clock, t) = tracer();
        t.set_enabled(true);
        let t0 = clock.now();
        clock.charge(CostCategory::Ipc, Ns(10_000));
        t.span_peer(t0, EventKind::Transfer, 1, Some(2), Some(7), Some(3));
        t.instant(EventKind::CacheHit, 2, Some(7), Some(3));
        let rendered = t.chrome_trace().render();
        let parsed = Json::parse(&rendered).expect("chrome trace parses");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0].get("ph").and_then(Json::as_str),
            Some("X"),
            "span is a complete event"
        );
        assert_eq!(events[0].get("ts").and_then(Json::as_f64), Some(0.0));
        assert_eq!(events[0].get("dur").and_then(Json::as_f64), Some(10.0));
        assert_eq!(events[1].get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(
            events[1].get("name").and_then(Json::as_str),
            Some("CacheHit")
        );
    }

    #[test]
    fn merge_rings_interleaves_by_time_and_offsets_domains() {
        use crate::time::CostCategory;
        // Shard A records at t=0 and t=200; shard B at t=100.
        let (clock_a, ta) = tracer();
        ta.set_enabled(true);
        ta.instant(EventKind::CacheHit, 0, Some(0), Some(1));
        clock_a.charge(CostCategory::Vm, Ns(200));
        ta.instant(EventKind::Free, 1, Some(0), Some(1));
        let (clock_b, tb) = tracer();
        tb.set_enabled(true);
        clock_b.charge(CostCategory::Vm, Ns(100));
        tb.instant_peer(EventKind::Transfer, 0, 2, Some(1), Some(9));
        let merged = merge_rings(&[(0, ta.events()), (10, tb.events())]);
        assert_eq!(merged.len(), 3);
        let kinds: Vec<EventKind> = merged.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![EventKind::CacheHit, EventKind::Transfer, EventKind::Free],
            "time-ordered across shards"
        );
        assert_eq!(merged[1].dom, 10, "shard B domains offset by its base");
        assert_eq!(merged[1].peer, Some(12));
        let seqs: Vec<u64> = merged.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2], "re-sequenced in merged order");
    }

    #[test]
    fn merge_rings_is_stable_for_equal_timestamps() {
        let (_, ta) = tracer();
        ta.set_enabled(true);
        ta.instant(EventKind::CacheHit, 0, None, Some(1));
        ta.instant(EventKind::Free, 0, None, Some(1));
        let merged = merge_rings(&[(0, ta.events()), (5, ta.events())]);
        // Both rings sit at t=0; within a ring the recorded order must
        // survive the merge.
        let hit_a = merged.iter().position(|e| e.kind == EventKind::CacheHit && e.dom == 0);
        let free_a = merged.iter().position(|e| e.kind == EventKind::Free && e.dom == 0);
        assert!(hit_a.unwrap() < free_a.unwrap());
    }

    #[test]
    fn clear_keeps_sequence_monotone() {
        let (_, t) = tracer();
        t.set_enabled(true);
        t.instant(EventKind::Free, 0, None, None);
        t.clear();
        t.instant(EventKind::Free, 0, None, None);
        assert_eq!(t.events()[0].seq, 1, "seq not reused after clear");
    }
}
