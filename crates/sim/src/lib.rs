//! Simulated time, calibrated cost model, and statistics for the fbufs
//! reproduction.
//!
//! The fbufs paper ([Druschel & Peterson, SOSP '93]) evaluates a kernel
//! virtual-memory mechanism on a DecStation 5000/200. Neither the hardware
//! nor privileged VM operations are available here, so the reproduction runs
//! every mechanism against a *simulated machine*: data lives in simulated
//! physical frames, mappings live in simulated page tables, and every
//! primitive operation (PTE update, TLB refill, page clear, IPC control
//! transfer, DMA start-up, ...) charges a calibrated number of nanoseconds to
//! a [`Clock`].
//!
//! This crate holds the pieces shared by every layer of the stack:
//!
//! * [`Ns`] — simulated time, in nanoseconds.
//! * [`Clock`] — a monotonically advancing clock with per-category cost
//!   accounting and a busy/idle split (used by the CPU-load experiment).
//! * [`CostModel`] — the named constants, with
//!   [`CostModel::decstation_5000_200`] as the calibrated instance.
//! * [`MachineConfig`] — structural parameters (page size, TLB size, memory
//!   size, fbuf region geometry).
//! * [`Stats`] — operation counters that tests assert on, pinning the
//!   *mechanism* (which operations happen) independently of the timing.
//!
//! It also holds the workspace's zero-dependency tooling substrate, so the
//! whole repository builds offline from path crates alone:
//!
//! * [`Rng`] — deterministic SplitMix64 pseudo-random numbers (replaces
//!   `rand` for trace generation and test-case shaping).
//! * [`Checker`] — a seeded, replayable property-test harness (replaces
//!   `proptest`).
//! * [`json`] — a minimal JSON value/writer/parser (replaces `serde` for
//!   the bench reports).
//! * [`mod@bench`] — a bench runner that reports the simulator's **calibrated
//!   simulated time**, plus host wall-clock engine throughput under each
//!   report's `host` block (replaces `criterion`).
//! * [`Arena`] — a generational slab arena backing the hot-path id tables
//!   (fbufs, VM objects): O(1) index derefs, stale handles error instead
//!   of aliasing recycled slots.
//!
//! And the observability layer threaded through every crate:
//!
//! * [`spsc`] — fixed-capacity single-producer/single-consumer ring
//!   channels (bare atomics, no locks), carrying payloads and dealloc
//!   notices between the sharded engines of `fbuf::shard`.
//! * [`trace`] — a bounded ring buffer of typed lifecycle events
//!   ([`Tracer`]), clock-stamped, exportable as Chrome `trace_event` JSON;
//!   [`trace::merge_rings`] folds per-shard rings into one stream.
//! * [`hist`] — log-bucketed latency [`Histogram`]s (p50/p90/p99) fed by
//!   `Alloc`/`Transfer` spans and surfaced in every bench report.
//! * [`mod@audit`] — a replay auditor checking fbuf lifecycle invariants over
//!   a recorded event stream.
//! * [`fault`] — seeded, replayable fault injection ([`FaultPlan`]):
//!   chunk-grant denial, quota exhaustion, frame-allocation failure,
//!   reclaim refusal, ring backpressure, and scheduled domain crashes,
//!   zero-cost at every hook point while no plan is armed.
//! * [`event`] — a deterministic binary [`EventHeap`] ordered by
//!   `(time, admission id)`, the scheduling substrate under the
//!   event-loop transfer engine (`fbuf_ipc::EventLoop`).
//! * [`spans`] — causal transfer spans: hop-tree reconstruction from
//!   span-tagged trace events and critical-path decomposition
//!   (queueing vs. service vs. ring-crossing, p50/p99 per stage).
//! * [`metrics`] — time-series telemetry: gauges sampled on a
//!   simulated-time cadence into fixed-capacity ring-buffer series,
//!   fleet-merged and exported as the `telemetry` block of every bench
//!   report.
//!
//! Design notes: `DESIGN.md` §6 (how the cost constants were
//! calibrated/reconstructed), §8 (tracing, histograms, and the replay
//! auditor), §11 (fault injection), §12 (heap ordering guarantees
//! and the audited fbuf lifecycle state machine), and §13 (spans,
//! telemetry cadence, and the per-tenant ledger).
//!
//! [Druschel & Peterson, SOSP '93]: https://dl.acm.org/doi/10.1145/168619.168634

pub mod arena;
pub mod audit;
pub mod bench;
pub mod check;
pub mod config;
pub mod costs;
pub mod event;
pub mod fault;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod rng;
pub mod spans;
pub mod spsc;
pub mod stats;
pub mod time;
pub mod trace;
pub mod workload;

pub use arena::{slot_of, Arena};
pub use audit::{audit, audit_tracer, AuditReport, Violation};
pub use check::{minimize, shortest_failing_prefix, Checker};
pub use config::MachineConfig;
pub use costs::CostModel;
pub use event::{EventHeap, EventId, Scheduled};
pub use fault::{FaultDecision, FaultPlan, FaultSite, FaultSpec};
pub use hist::Histogram;
pub use json::{Json, ToJson};
pub use metrics::{Metrics, MetricPoint, SeriesSnapshot};
pub use rng::Rng;
pub use spans::{SpanNode, SpanTree, StageDecomposition};
pub use stats::{Counter, Stats, StatsSnapshot};
pub use time::{Clock, CostCategory, Ns};
pub use trace::{EventKind, TraceEvent, Tracer};
