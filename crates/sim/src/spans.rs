//! Causal transfer spans: hop-tree reconstruction and critical-path
//! decomposition.
//!
//! Every transfer submitted to the event-loop engine mints a **span id**
//! (`fbuf::FbufSystem::submit_transfer`); the id rides the transfer's
//! envelopes, `HopMsg` legs, RPC descent, and cross-shard SPSC payloads,
//! and the [`Tracer`](crate::Tracer) tags every event recorded while a
//! span is in scope ([`TraceEvent::span`]). When a transfer crosses into
//! a new context — today, an SPSC ring into another shard — the receiver
//! mints a *child* span and records a `SpanLink` edge back to the
//! parent, so one logical transfer remains a single connected tree even
//! though its two halves were recorded by machines with independent
//! clocks.
//!
//! This module reconstructs those trees from a (possibly merged, see
//! [`merge_rings`](crate::trace::merge_rings)) event stream and
//! decomposes where each transfer's time went, stage by stage:
//!
//! * **queueing** — `Dequeue` span durations: simulated ns an event
//!   waited in a bounded per-domain inbox before its handler ran;
//! * **service** — `HopService` span durations: ns a hop's handler
//!   spent executing (IPC descent, mapping work, the send itself);
//! * **ring-crossing** — `RingCross` span durations: receiver-side ns
//!   spent ingesting a payload that crossed a shard boundary
//!   (cross-shard clocks are independent, so the in-flight gap itself
//!   is not a measurable simulated quantity — the ingest handling cost
//!   is, and that is what this stage reports).
//!
//! Each stage aggregates into a [`Histogram`], so the report carries
//! p50/p99 (with quantization bounds) per stage. See `DESIGN.md` §13.

use crate::hist::Histogram;
use crate::json::{Json, ToJson};
use crate::trace::{EventKind, TraceEvent};

/// One span's worth of evidence inside a [`SpanTree`].
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// The span id.
    pub span: u64,
    /// The parent span, if this span was linked as a child.
    pub parent: Option<u64>,
    /// Child spans linked under this one, in first-seen order.
    pub children: Vec<u64>,
    /// Events tagged with this span, in stream order.
    pub events: Vec<TraceEvent>,
}

/// One transfer's reconstructed causal tree.
#[derive(Debug, Clone)]
pub struct SpanTree {
    /// The root span id (the one minted by `submit_transfer`).
    pub root: u64,
    /// Every node of the tree; index 0 is the root.
    pub nodes: Vec<SpanNode>,
}

impl SpanTree {
    /// Looks up a node by span id.
    pub fn node(&self, span: u64) -> Option<&SpanNode> {
        self.nodes.iter().find(|n| n.span == span)
    }

    /// Total events across every node of the tree.
    pub fn total_events(&self) -> usize {
        self.nodes.iter().map(|n| n.events.len()).sum()
    }

    /// True when every node is reachable from the root via parent
    /// links — i.e. the transfer reconstructed as one connected tree,
    /// not a forest of orphaned fragments.
    pub fn is_connected(&self) -> bool {
        self.nodes.iter().all(|n| {
            let mut cur = n.span;
            let mut steps = 0;
            while cur != self.root {
                match self.node(cur).and_then(|c| c.parent) {
                    Some(p) if steps <= self.nodes.len() => {
                        cur = p;
                        steps += 1;
                    }
                    _ => return false,
                }
            }
            true
        })
    }

    /// Sums this tree's stage durations: `(queueing, service,
    /// ring_crossing)` in simulated ns.
    pub fn stage_totals(&self) -> (u64, u64, u64) {
        let mut q = 0u64;
        let mut s = 0u64;
        let mut r = 0u64;
        for n in &self.nodes {
            for e in &n.events {
                let d = e.dur.map(|d| d.0).unwrap_or(0);
                match e.kind {
                    EventKind::Dequeue => q += d,
                    EventKind::HopService => s += d,
                    EventKind::RingCross => r += d,
                    _ => {}
                }
            }
        }
        (q, s, r)
    }
}

/// Reconstructs every transfer's span tree from an event stream.
///
/// Spans are discovered from tagged events; `SpanLink` events (child in
/// [`TraceEvent::span`], parent in [`TraceEvent::fbuf`]) supply the
/// parent/child edges. A tree is rooted at each span that has no
/// parent, and returned in first-seen order.
pub fn reconstruct(events: &[TraceEvent]) -> Vec<SpanTree> {
    // Span id -> (parent, children, events), insertion-ordered.
    let mut order: Vec<u64> = Vec::new();
    let mut nodes: Vec<SpanNode> = Vec::new();
    let idx_of = |nodes: &mut Vec<SpanNode>, order: &mut Vec<u64>, span: u64| -> usize {
        match order.iter().position(|&s| s == span) {
            Some(i) => i,
            None => {
                order.push(span);
                nodes.push(SpanNode {
                    span,
                    parent: None,
                    children: Vec::new(),
                    events: Vec::new(),
                });
                nodes.len() - 1
            }
        }
    };
    for e in events {
        let Some(span) = e.span else { continue };
        if e.kind == EventKind::SpanLink {
            let parent = e.fbuf.expect("SpanLink carries the parent span in `fbuf`");
            let ci = idx_of(&mut nodes, &mut order, span);
            nodes[ci].parent = Some(parent);
            nodes[ci].events.push(*e);
            let pi = idx_of(&mut nodes, &mut order, parent);
            if !nodes[pi].children.contains(&span) {
                nodes[pi].children.push(span);
            }
        } else {
            let i = idx_of(&mut nodes, &mut order, span);
            nodes[i].events.push(*e);
        }
    }
    // Roots in first-seen order; collect each root's subtree.
    let roots: Vec<u64> = nodes
        .iter()
        .filter(|n| n.parent.is_none())
        .map(|n| n.span)
        .collect();
    roots
        .into_iter()
        .map(|root| {
            let mut tree = Vec::new();
            let mut frontier = vec![root];
            while let Some(span) = frontier.pop() {
                if let Some(n) = nodes.iter().find(|n| n.span == span) {
                    frontier.extend(n.children.iter().copied());
                    tree.push(n.clone());
                }
            }
            SpanTree { root, nodes: tree }
        })
        .collect()
}

/// Per-stage latency decomposition aggregated across transfers. See the
/// [module docs](self) for what each stage measures.
#[derive(Debug, Clone, Default)]
pub struct StageDecomposition {
    /// Number of span trees the samples came from.
    pub spans: u64,
    /// Inbox wait per hop (`Dequeue` durations).
    pub queueing: Histogram,
    /// Handler execution per hop (`HopService` durations).
    pub service: Histogram,
    /// Receiver-side ingest handling per ring crossing (`RingCross`
    /// durations).
    pub ring_crossing: Histogram,
}

/// Builds the critical-path decomposition of every span-tagged event in
/// the stream.
pub fn decompose(events: &[TraceEvent]) -> StageDecomposition {
    let mut out = StageDecomposition::default();
    let mut seen_roots: Vec<u64> = Vec::new();
    for e in events {
        let Some(span) = e.span else { continue };
        let d = e.dur.map(|d| d.0);
        match e.kind {
            EventKind::SpanStart if !seen_roots.contains(&span) => {
                seen_roots.push(span);
            }
            EventKind::Dequeue => out.queueing.record(d.unwrap_or(0)),
            EventKind::HopService => out.service.record(d.unwrap_or(0)),
            EventKind::RingCross => out.ring_crossing.record(d.unwrap_or(0)),
            _ => {}
        }
    }
    out.spans = seen_roots.len() as u64;
    out
}

impl ToJson for StageDecomposition {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("spans", self.spans.to_json()),
            ("queueing", self.queueing.to_json()),
            ("service", self.service.to_json()),
            ("ring_crossing", self.ring_crossing.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Ns;

    fn ev(kind: EventKind, span: Option<u64>, fbuf: Option<u64>, dur: Option<u64>) -> TraceEvent {
        TraceEvent {
            seq: 0,
            at: Ns(0),
            kind,
            dom: 0,
            peer: None,
            path: None,
            fbuf,
            dur: dur.map(Ns),
            pages: None,
            span,
        }
    }

    #[test]
    fn linked_spans_reconstruct_as_one_connected_tree() {
        let events = vec![
            ev(EventKind::SpanStart, Some(10), Some(1), None),
            ev(EventKind::Dequeue, Some(10), None, Some(40)),
            ev(EventKind::HopService, Some(10), None, Some(100)),
            ev(EventKind::SpanLink, Some(20), Some(10), None),
            ev(EventKind::RingCross, Some(20), None, Some(7)),
            ev(EventKind::HopService, Some(20), None, Some(60)),
        ];
        let trees = reconstruct(&events);
        assert_eq!(trees.len(), 1, "child span folds into the parent tree");
        let tree = &trees[0];
        assert_eq!(tree.root, 10);
        assert_eq!(tree.nodes.len(), 2);
        assert!(tree.is_connected());
        assert_eq!(tree.node(20).and_then(|n| n.parent), Some(10));
        assert_eq!(tree.stage_totals(), (40, 160, 7));
    }

    #[test]
    fn unlinked_spans_are_separate_trees() {
        let events = vec![
            ev(EventKind::SpanStart, Some(1), None, None),
            ev(EventKind::SpanStart, Some(2), None, None),
            ev(EventKind::Dequeue, Some(2), None, Some(5)),
        ];
        let trees = reconstruct(&events);
        assert_eq!(trees.len(), 2);
        assert!(trees.iter().all(SpanTree::is_connected));
    }

    #[test]
    fn decompose_feeds_the_three_stage_histograms() {
        let events = vec![
            ev(EventKind::SpanStart, Some(1), None, None),
            ev(EventKind::Dequeue, Some(1), None, Some(10)),
            ev(EventKind::Dequeue, Some(1), None, Some(30)),
            ev(EventKind::HopService, Some(1), None, Some(200)),
            ev(EventKind::RingCross, Some(1), None, Some(4)),
            // Untagged events never contribute.
            ev(EventKind::Dequeue, None, None, Some(999)),
        ];
        let d = decompose(&events);
        assert_eq!(d.spans, 1);
        assert_eq!(d.queueing.count(), 2);
        assert_eq!(d.service.count(), 1);
        assert_eq!(d.ring_crossing.count(), 1);
        assert_eq!(d.queueing.max(), 30);
        let j = d.to_json();
        for key in ["spans", "queueing", "service", "ring_crossing"] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
    }
}
