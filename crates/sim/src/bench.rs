//! An in-repo bench runner reporting **simulated** time (a `criterion`
//! replacement).
//!
//! Criterion measures host wall-clock, which for this workspace answers the
//! wrong question: the system under test is a *simulator*, so wall-clock
//! numbers measure the simulator's implementation, not the mechanisms the
//! paper evaluates. Every scenario here instead returns a sample in the
//! simulator's calibrated timebase — microseconds of simulated machine time,
//! Mb/s of simulated throughput, or a CPU-load fraction — which is directly
//! comparable against the paper's Tables 1–2 and Figures 3–6.
//!
//! Each bench target builds a [`BenchRunner`], records scenarios with
//! [`BenchRunner::measure`], attaches the regenerated paper artifact (rows,
//! curves) with [`BenchRunner::artifact`], and calls
//! [`BenchRunner::finish`], which prints a summary table (median, p10, p90
//! over the iterations) and writes `BENCH_<name>.json`.
//!
//! Environment knobs:
//!
//! * `FBUF_BENCH_ITERS` — iterations per scenario (default 5);
//! * `FBUF_BENCH_DIR` — report directory (default `target/bench-reports`).
//!
//! # Examples
//!
//! ```
//! use fbuf_sim::bench::{summarize, BenchRunner, Unit};
//!
//! let s = summarize(&[3.0, 1.0, 2.0]);
//! assert_eq!((s.median, s.p10, s.p90), (2.0, 1.0, 3.0));
//!
//! let mut runner = BenchRunner::named("doctest", 3);
//! runner.measure("constant_cost", Unit::SimUs, || 21.0);
//! let report = runner.report();
//! let row = report.get("results").unwrap().as_arr().unwrap();
//! assert_eq!(row[0].get("median").unwrap().as_f64(), Some(21.0));
//! ```

use std::path::PathBuf;

use crate::hist::Histogram;
use crate::json::{Json, ToJson};
use crate::metrics::{self, SeriesSnapshot};
use crate::stats::StatsSnapshot;

/// The timebase of a scenario's samples. All units are *simulated*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Microseconds of simulated machine time (per page, per op, …).
    SimUs,
    /// Simulated throughput in megabits per second.
    Mbps,
    /// A dimensionless fraction (e.g. CPU load), 0–1.
    Fraction,
}

impl Unit {
    /// Stable label used in reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Unit::SimUs => "sim_us",
            Unit::Mbps => "mbps",
            Unit::Fraction => "fraction",
        }
    }
}

/// Order statistics over a scenario's samples.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    pub n: usize,
    pub median: f64,
    pub p10: f64,
    pub p90: f64,
}

/// Computes nearest-rank median/p10/p90. Panics on an empty slice.
pub fn summarize(samples: &[f64]) -> Summary {
    assert!(!samples.is_empty(), "summarize of no samples");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN samples"));
    let rank = |p: f64| sorted[(p * (sorted.len() - 1) as f64).round() as usize];
    Summary {
        n: sorted.len(),
        median: rank(0.5),
        p10: rank(0.1),
        p90: rank(0.9),
    }
}

struct Scenario {
    label: String,
    unit: Unit,
    samples: Vec<f64>,
    /// Host wall-clock nanoseconds per `measure` closure call, collected
    /// alongside the simulated samples.
    host_ns: Vec<f64>,
}

/// One engine-throughput record for the report's `host.throughput` array:
/// how fast the *simulator itself* executed a workload in wall-clock terms.
struct HostThroughput {
    label: String,
    ops: u64,
    elapsed_ns: u64,
    /// Reference ns/op of a prior engine build, when the caller has one
    /// (lets a report carry its own before/after comparison).
    baseline_ns_per_op: Option<f64>,
}

/// One point of the wall-clock thread-scaling curve under `host.scaling`:
/// the whole fleet executed `ops` engine operations in `elapsed_ns` of
/// host time at this thread count.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// Shard (OS thread) count of this run.
    pub threads: u64,
    /// Total fbuf operations across all shards.
    pub ops: u64,
    /// Fleet wall-clock for the measured window (max across shards; the
    /// shards start barrier-aligned).
    pub elapsed_ns: u64,
}

/// Collects simulated-time measurements for one bench target and emits the
/// `BENCH_<name>.json` report. See the [module docs](self).
pub struct BenchRunner {
    name: String,
    iters: usize,
    scenarios: Vec<Scenario>,
    artifacts: Vec<(String, Json)>,
    counters: Option<StatsSnapshot>,
    latency: Vec<(String, Histogram)>,
    /// Telemetry gauge series sampled during the run, plus the cadence
    /// they were sampled at (the `telemetry` block; present in every
    /// report, empty when the target recorded no gauges).
    telemetry_cadence_ns: u64,
    telemetry: Vec<SeriesSnapshot>,
    host_throughput: Vec<HostThroughput>,
    host_scaling: Vec<ScalingPoint>,
    /// The parallel-efficiency floor the run was gated on, if any
    /// (`host.scaling_floor`): readers of the report — including
    /// `fbuf-stress --check` — re-enforce it against the scaling curve.
    host_scaling_floor: Option<(u64, f64)>,
    /// RNG seed the workload ran under (the `repro` header).
    seed: u64,
    /// OS threads the workload ran across (the `repro` header).
    threads: u64,
    /// Workload parameters, for bit-for-bit regeneration from the report.
    params: Vec<(String, Json)>,
}

impl BenchRunner {
    /// Creates a runner for the bench target `name`, reading
    /// `FBUF_BENCH_ITERS` (default 5) for the per-scenario iteration count.
    pub fn new(name: &str) -> BenchRunner {
        let iters = std::env::var("FBUF_BENCH_ITERS")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(5);
        BenchRunner::named(name, iters)
    }

    /// Creates a runner with an explicit iteration count (ignores the
    /// environment; used by tests and doctests).
    pub fn named(name: &str, iters: usize) -> BenchRunner {
        let seed = std::env::var("FBUF_BENCH_SEED")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(crate::check::DEFAULT_SEED);
        BenchRunner {
            name: name.to_string(),
            iters,
            scenarios: Vec::new(),
            artifacts: Vec::new(),
            counters: None,
            latency: Vec::new(),
            telemetry_cadence_ns: metrics::DEFAULT_CADENCE_NS,
            telemetry: Vec::new(),
            host_throughput: Vec::new(),
            host_scaling: Vec::new(),
            host_scaling_floor: None,
            seed,
            threads: 1,
            params: Vec::new(),
        }
    }

    /// Records the RNG seed the workload ran under, for the report's
    /// `repro` header. Defaults to `FBUF_BENCH_SEED` or the workspace
    /// property-test seed, so every report carries *a* seed even when the
    /// target never draws random numbers.
    pub fn set_seed(&mut self, seed: u64) {
        self.seed = seed;
    }

    /// Records the OS-thread count the workload ran across (`repro`
    /// header; defaults to 1 — every target before the sharded stress
    /// harness is single-threaded by construction).
    pub fn set_threads(&mut self, threads: u64) {
        self.threads = threads.max(1);
    }

    /// Records one workload parameter in the report's `repro.params`
    /// header. A report whose header lists every knob the run consumed
    /// can be regenerated bit-for-bit from the report alone.
    pub fn param(&mut self, key: &str, value: impl ToJson) {
        self.params.push((key.to_string(), value.to_json()));
    }

    /// Iterations each scenario runs.
    pub fn iters(&self) -> usize {
        self.iters
    }

    /// Runs `f` for this runner's iteration count, recording one simulated
    /// sample per call under `label`. Each call is also timed with the
    /// host's monotonic clock, feeding the report's `host` block — the
    /// simulated numbers answer the paper's questions, the host numbers
    /// answer "how fast is the engine itself".
    pub fn measure(&mut self, label: &str, unit: Unit, mut f: impl FnMut() -> f64) {
        let mut samples = Vec::with_capacity(self.iters);
        let mut host_ns = Vec::with_capacity(self.iters);
        for _ in 0..self.iters {
            let t0 = std::time::Instant::now();
            samples.push(f());
            host_ns.push(t0.elapsed().as_nanos() as f64);
        }
        self.scenarios.push(Scenario {
            label: label.to_string(),
            unit,
            samples,
            host_ns,
        });
    }

    /// Records an engine-throughput measurement under `host.throughput`:
    /// `ops` operations took `elapsed_ns` of host wall-clock. An optional
    /// `baseline_ns_per_op` from a reference engine build adds a
    /// `speedup_vs_baseline` field, so the report carries its own
    /// before/after comparison.
    pub fn host_throughput(
        &mut self,
        label: &str,
        ops: u64,
        elapsed_ns: u64,
        baseline_ns_per_op: Option<f64>,
    ) {
        self.host_throughput.push(HostThroughput {
            label: label.to_string(),
            ops,
            elapsed_ns,
            baseline_ns_per_op,
        });
    }

    /// Records the wall-clock thread-scaling curve under `host.scaling`:
    /// one [`ScalingPoint`] per thread count, in ascending order. Each
    /// point gains derived `ops_per_sec`, `speedup_vs_1t` (vs the first
    /// point), and `efficiency` (speedup over the thread-count ratio;
    /// 1.0 = perfectly linear) fields in the report.
    pub fn host_scaling(&mut self, points: &[ScalingPoint]) {
        self.host_scaling.extend_from_slice(points);
    }

    /// Records the parallel-efficiency floor the run was gated on, under
    /// `host.scaling_floor` (`{threads, efficiency}`). The floor travels
    /// with the report so any later validator can re-enforce it against
    /// the embedded scaling curve, turning the gate into a ratchet.
    pub fn host_scaling_floor(&mut self, threads: u64, efficiency: f64) {
        self.host_scaling_floor = Some((threads, efficiency));
    }

    /// Attaches a regenerated paper artifact (table rows, figure curves) to
    /// the JSON report under `artifacts.<key>`.
    pub fn artifact(&mut self, key: &str, value: Json) {
        self.artifacts.push((key.to_string(), value));
    }

    /// Attaches the operation-counter delta of a representative workload
    /// (a [`StatsSnapshot::delta`] over the measured section) to the
    /// report's `counters` object. Repeated calls accumulate so a target
    /// with several workloads reports their sum.
    pub fn counters(&mut self, delta: &StatsSnapshot) {
        self.counters = Some(match &self.counters {
            None => delta.clone(),
            Some(acc) => acc.plus(delta),
        });
    }

    /// Attaches a latency percentile block (p50/p90/p99 and friends, see
    /// [`Histogram`]'s `ToJson`) under `latency` with the given label.
    /// Empty histograms are skipped — a percentile over nothing is noise.
    pub fn latency(&mut self, label: &str, hist: &Histogram) {
        if !hist.is_empty() {
            self.latency.push((label.to_string(), hist.clone()));
        }
    }

    /// Attaches sampled telemetry series (and the cadence they were
    /// sampled at) to the report's `telemetry` block. Repeated calls
    /// append, so a target with several workloads (or merged shards)
    /// reports them all.
    pub fn telemetry(&mut self, cadence_ns: u64, series: &[SeriesSnapshot]) {
        self.telemetry_cadence_ns = cadence_ns;
        self.telemetry.extend_from_slice(series);
    }

    /// The full report as a JSON value (the exact document `finish` writes).
    pub fn report(&self) -> Json {
        let results: Vec<Json> = self
            .scenarios
            .iter()
            .map(|s| {
                let sum = summarize(&s.samples);
                Json::obj(vec![
                    ("label", s.label.to_json()),
                    ("unit", s.unit.label().to_json()),
                    ("n", sum.n.to_json()),
                    ("median", sum.median.to_json()),
                    ("p10", sum.p10.to_json()),
                    ("p90", sum.p90.to_json()),
                    ("samples", s.samples.to_json()),
                ])
            })
            .collect();
        let latency: Vec<Json> = self
            .latency
            .iter()
            .map(|(label, h)| {
                let mut fields = vec![("label".to_string(), label.to_json())];
                if let Json::Obj(hist_fields) = h.to_json() {
                    fields.extend(hist_fields);
                }
                Json::Obj(fields)
            })
            .collect();
        let host_scenarios: Vec<Json> = self
            .scenarios
            .iter()
            .filter(|s| !s.host_ns.is_empty())
            .map(|s| {
                let sum = summarize(&s.host_ns);
                let ops_per_sec = if sum.median > 0.0 { 1e9 / sum.median } else { 0.0 };
                Json::obj(vec![
                    ("label", s.label.to_json()),
                    ("median_ns", sum.median.to_json()),
                    ("p10_ns", sum.p10.to_json()),
                    ("p90_ns", sum.p90.to_json()),
                    ("calls_per_sec", ops_per_sec.to_json()),
                ])
            })
            .collect();
        let host_tp: Vec<Json> = self
            .host_throughput
            .iter()
            .map(|t| {
                let ns_per_op = if t.ops > 0 { t.elapsed_ns as f64 / t.ops as f64 } else { 0.0 };
                let ops_per_sec = if t.elapsed_ns > 0 {
                    t.ops as f64 * 1e9 / t.elapsed_ns as f64
                } else {
                    0.0
                };
                let mut fields = vec![
                    ("label".to_string(), t.label.to_json()),
                    ("ops".to_string(), t.ops.to_json()),
                    ("elapsed_ns".to_string(), t.elapsed_ns.to_json()),
                    ("ns_per_op".to_string(), ns_per_op.to_json()),
                    ("ops_per_sec".to_string(), ops_per_sec.to_json()),
                ];
                if let Some(base) = t.baseline_ns_per_op {
                    fields.push(("baseline_ns_per_op".to_string(), base.to_json()));
                    if ns_per_op > 0.0 {
                        fields.push((
                            "speedup_vs_baseline".to_string(),
                            (base / ns_per_op).to_json(),
                        ));
                    }
                }
                Json::Obj(fields)
            })
            .collect();
        let base_ops_per_sec = self
            .host_scaling
            .first()
            .filter(|p| p.elapsed_ns > 0)
            .map(|p| p.ops as f64 * 1e9 / p.elapsed_ns as f64);
        let base_threads = self.host_scaling.first().map(|p| p.threads.max(1));
        let host_scaling: Vec<Json> = self
            .host_scaling
            .iter()
            .map(|p| {
                let ops_per_sec = if p.elapsed_ns > 0 {
                    p.ops as f64 * 1e9 / p.elapsed_ns as f64
                } else {
                    0.0
                };
                let speedup = base_ops_per_sec
                    .filter(|&b| b > 0.0)
                    .map(|b| ops_per_sec / b)
                    .unwrap_or(0.0);
                let efficiency = base_threads
                    .map(|b| speedup / (p.threads.max(1) as f64 / b as f64))
                    .unwrap_or(0.0);
                Json::obj(vec![
                    ("threads", p.threads.to_json()),
                    ("ops", p.ops.to_json()),
                    ("elapsed_ns", p.elapsed_ns.to_json()),
                    ("ops_per_sec", ops_per_sec.to_json()),
                    ("speedup_vs_1t", speedup.to_json()),
                    ("efficiency", efficiency.to_json()),
                ])
            })
            .collect();
        let mut host_fields = vec![
            ("timebase", "wall_clock_ns".to_json()),
            ("scenarios", Json::Arr(host_scenarios)),
            ("throughput", Json::Arr(host_tp)),
            ("scaling", Json::Arr(host_scaling)),
        ];
        if let Some((threads, efficiency)) = self.host_scaling_floor {
            host_fields.push((
                "scaling_floor",
                Json::obj(vec![
                    ("threads", threads.to_json()),
                    ("efficiency", efficiency.to_json()),
                ]),
            ));
        }
        let host = Json::obj(host_fields);
        let repro = Json::obj(vec![
            ("seed", self.seed.to_json()),
            ("threads", self.threads.to_json()),
            (
                "params",
                Json::Obj(self.params.iter().map(|(k, v)| (k.clone(), v.clone())).collect()),
            ),
        ]);
        Json::obj(vec![
            ("bench", self.name.to_json()),
            ("timebase", "simulated".to_json()),
            ("iters", self.iters.to_json()),
            ("repro", repro),
            ("results", Json::Arr(results)),
            ("host", host),
            (
                "counters",
                self.counters
                    .as_ref()
                    .map(|c| c.to_json())
                    .unwrap_or(Json::obj(vec![])),
            ),
            ("latency", Json::Arr(latency)),
            (
                "telemetry",
                metrics::telemetry_json(self.telemetry_cadence_ns, &self.telemetry),
            ),
            (
                "artifacts",
                Json::Obj(self.artifacts.iter().map(|(k, v)| (k.clone(), v.clone())).collect()),
            ),
        ])
    }

    /// Prints the summary table, writes `BENCH_<name>.json` into
    /// `FBUF_BENCH_DIR` (default `target/bench-reports`), and returns the
    /// report path.
    pub fn finish(self) -> std::io::Result<PathBuf> {
        println!("\n== bench {} (simulated time) ==", self.name);
        println!(
            "{:<36} {:>9} {:>12} {:>12} {:>12}",
            "scenario", "unit", "median", "p10", "p90"
        );
        for s in &self.scenarios {
            let sum = summarize(&s.samples);
            println!(
                "{:<36} {:>9} {:>12.2} {:>12.2} {:>12.2}",
                s.label,
                s.unit.label(),
                sum.median,
                sum.p10,
                sum.p90
            );
        }
        for t in &self.host_throughput {
            let ns_per_op = if t.ops > 0 { t.elapsed_ns as f64 / t.ops as f64 } else { 0.0 };
            let ops_per_sec = if t.elapsed_ns > 0 {
                t.ops as f64 * 1e9 / t.elapsed_ns as f64
            } else {
                0.0
            };
            print!(
                "host: {:<29} {:>10} ops in {:>8.1} ms -> {:>8.1} ns/op, {:>11.0} ops/s",
                t.label,
                t.ops,
                t.elapsed_ns as f64 / 1e6,
                ns_per_op,
                ops_per_sec
            );
            match t.baseline_ns_per_op {
                Some(base) if ns_per_op > 0.0 => {
                    println!(" ({:.2}x vs baseline {:.1} ns/op)", base / ns_per_op, base)
                }
                _ => println!(),
            }
        }
        if !self.host_scaling.is_empty() {
            let base = self
                .host_scaling
                .first()
                .filter(|p| p.elapsed_ns > 0)
                .map(|p| (p.threads.max(1), p.ops as f64 * 1e9 / p.elapsed_ns as f64));
            println!("host scaling (wall-clock):");
            for p in &self.host_scaling {
                let ops_per_sec = if p.elapsed_ns > 0 {
                    p.ops as f64 * 1e9 / p.elapsed_ns as f64
                } else {
                    0.0
                };
                let (speedup, eff) = base
                    .filter(|&(_, b)| b > 0.0)
                    .map(|(bt, b)| {
                        let s = ops_per_sec / b;
                        (s, s / (p.threads.max(1) as f64 / bt as f64))
                    })
                    .unwrap_or((0.0, 0.0));
                println!(
                    "  {:>2} thread(s): {:>11.0} ops/s  ({:.2}x vs first, {:.0}% of linear)",
                    p.threads,
                    ops_per_sec,
                    speedup,
                    eff * 100.0
                );
            }
        }
        let dir = std::env::var("FBUF_BENCH_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("target/bench-reports"));
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.report().render())?;
        println!("wrote {}", path.display());
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_order_statistics() {
        let s = summarize(&[5.0, 1.0, 4.0, 2.0, 3.0]);
        assert_eq!(s.n, 5);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.p10, 1.0);
        assert_eq!(s.p90, 5.0);
        let one = summarize(&[7.5]);
        assert_eq!((one.median, one.p10, one.p90), (7.5, 7.5, 7.5));
    }

    #[test]
    fn report_schema_has_expected_fields() {
        let mut r = BenchRunner::named("schema_check", 4);
        let mut x = 0.0;
        r.measure("ramp", Unit::Mbps, || {
            x += 10.0;
            x
        });
        r.artifact("rows", Json::Arr(vec![Json::obj(vec![("a", 1u64.to_json())])]));
        let doc = r.report();
        assert_eq!(doc.get("bench").unwrap().as_str(), Some("schema_check"));
        assert_eq!(doc.get("timebase").unwrap().as_str(), Some("simulated"));
        let results = doc.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 1);
        let row = &results[0];
        assert_eq!(row.get("label").unwrap().as_str(), Some("ramp"));
        assert_eq!(row.get("unit").unwrap().as_str(), Some("mbps"));
        assert_eq!(row.get("n").unwrap().as_f64(), Some(4.0));
        assert_eq!(row.get("median").unwrap().as_f64(), Some(30.0));
        assert_eq!(row.get("p10").unwrap().as_f64(), Some(10.0));
        assert_eq!(row.get("p90").unwrap().as_f64(), Some(40.0));
        assert!(doc.get("artifacts").unwrap().get("rows").is_some());
    }

    #[test]
    fn report_carries_counters_and_latency_blocks() {
        use crate::stats::Stats;
        let mut r = BenchRunner::named("observed", 1);
        r.measure("x", Unit::SimUs, || 1.0);
        // Counter delta over a fake measured section.
        let s = Stats::new();
        let before = s.snapshot();
        s.inc_fbuf_cache_hits();
        s.inc_fbuf_cache_hits();
        r.counters(&s.snapshot().delta(&before));
        // Accumulation across workloads.
        let mark = s.snapshot();
        s.inc_pdus_sent();
        r.counters(&s.snapshot().delta(&mark));
        let mut h = Histogram::new();
        h.record(5_000);
        h.record(6_000);
        r.latency("transfer", &h);
        r.latency("empty", &Histogram::new()); // skipped
        let doc = r.report();
        let counters = doc.get("counters").expect("counters object");
        assert!(counters.get("fbuf_cache_hits").unwrap().as_f64().unwrap() >= 2.0);
        let lat = doc.get("latency").unwrap().as_arr().unwrap();
        assert_eq!(lat.len(), 1, "empty histogram skipped");
        assert_eq!(lat[0].get("label").unwrap().as_str(), Some("transfer"));
        assert!(lat[0].get("p50_ns").unwrap().as_f64().unwrap() >= 5_000.0);
        assert!(lat[0].get("p99_ns").is_some());
    }

    #[test]
    fn counters_and_latency_keys_always_present() {
        let mut r = BenchRunner::named("bare", 1);
        r.measure("x", Unit::SimUs, || 1.0);
        let doc = r.report();
        assert!(doc.get("counters").is_some(), "counters key is stable");
        assert_eq!(doc.get("latency").unwrap().as_arr().unwrap().len(), 0);
    }

    #[test]
    fn telemetry_block_always_present_and_carries_series() {
        // Bare report: the block exists with the default cadence and no
        // series, so `--check` can rely on the key unconditionally.
        let mut r = BenchRunner::named("bare_telemetry", 1);
        r.measure("x", Unit::SimUs, || 1.0);
        let doc = r.report();
        let t = doc.get("telemetry").expect("telemetry key is stable");
        assert_eq!(
            t.get("cadence_ns").unwrap().as_f64(),
            Some(metrics::DEFAULT_CADENCE_NS as f64)
        );
        assert_eq!(t.get("series").unwrap().as_arr().unwrap().len(), 0);

        // Attached series come through with name, drop count, and
        // [t, v] points in sampling order.
        let m = metrics::Metrics::new();
        m.set_enabled(true);
        m.sample(crate::Ns(10), "inbox0", 3);
        m.advance(crate::Ns(20_000));
        m.sample(crate::Ns(20_000), "inbox0", 5);
        let mut r = BenchRunner::named("with_telemetry", 1);
        r.measure("x", Unit::SimUs, || 1.0);
        r.telemetry(metrics::DEFAULT_CADENCE_NS, &m.series());
        let doc = r.report();
        let tele = doc.get("telemetry").unwrap();
        let series = tele.get("series").unwrap().as_arr().unwrap();
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].get("name").unwrap().as_str(), Some("inbox0"));
        let points = series[0].get("points").unwrap().as_arr().unwrap();
        assert_eq!(points.len(), 2);
        let ts: Vec<f64> = points
            .iter()
            .map(|p| p.as_arr().unwrap()[0].as_f64().unwrap())
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "points time-ordered");
    }

    #[test]
    fn host_block_reports_wall_clock_for_every_scenario() {
        let mut r = BenchRunner::named("hosted", 3);
        r.measure("work", Unit::SimUs, || 1.0);
        r.host_throughput("steady_state", 1_000, 2_000_000, None);
        let doc = r.report();
        let host = doc.get("host").expect("host block present");
        assert_eq!(host.get("timebase").unwrap().as_str(), Some("wall_clock_ns"));
        let scen = host.get("scenarios").unwrap().as_arr().unwrap();
        assert_eq!(scen.len(), 1);
        assert_eq!(scen[0].get("label").unwrap().as_str(), Some("work"));
        assert!(scen[0].get("median_ns").unwrap().as_f64().is_some());
        let tp = host.get("throughput").unwrap().as_arr().unwrap();
        assert_eq!(tp.len(), 1);
        assert_eq!(tp[0].get("ops").unwrap().as_f64(), Some(1_000.0));
        assert_eq!(tp[0].get("ns_per_op").unwrap().as_f64(), Some(2_000.0));
        assert_eq!(tp[0].get("ops_per_sec").unwrap().as_f64(), Some(500_000.0));
        assert!(tp[0].get("baseline_ns_per_op").is_none());
    }

    #[test]
    fn host_throughput_carries_baseline_speedup() {
        let mut r = BenchRunner::named("speedup", 1);
        r.host_throughput("steady_state", 100, 100_000, Some(4_000.0));
        let doc = r.report();
        let tp = &doc.get("host").unwrap().get("throughput").unwrap().as_arr().unwrap()[0];
        assert_eq!(tp.get("baseline_ns_per_op").unwrap().as_f64(), Some(4_000.0));
        // 1000 ns/op measured vs 4000 ns/op baseline = 4x.
        assert_eq!(tp.get("speedup_vs_baseline").unwrap().as_f64(), Some(4.0));
    }

    #[test]
    fn every_report_carries_a_repro_header() {
        let mut r = BenchRunner::named("reproducible", 1);
        r.measure("x", Unit::SimUs, || 1.0);
        let doc = r.report();
        let repro = doc.get("repro").expect("repro header always present");
        assert!(repro.get("seed").unwrap().as_f64().is_some());
        assert_eq!(repro.get("threads").unwrap().as_f64(), Some(1.0));
        assert!(repro.get("params").is_some(), "params object always present");
    }

    #[test]
    fn repro_header_records_seed_threads_and_params() {
        let mut r = BenchRunner::named("knobs", 1);
        r.set_seed(0xdead_beef);
        r.set_threads(4);
        r.param("msgs", 128u64);
        r.param("size", 65_536u64);
        let doc = Json::parse(&r.report().render()).unwrap();
        let repro = doc.get("repro").unwrap();
        assert_eq!(repro.get("seed").unwrap().as_f64(), Some(0xdead_beefu32 as f64));
        assert_eq!(repro.get("threads").unwrap().as_f64(), Some(4.0));
        let params = repro.get("params").unwrap();
        assert_eq!(params.get("msgs").unwrap().as_f64(), Some(128.0));
        assert_eq!(params.get("size").unwrap().as_f64(), Some(65_536.0));
    }

    #[test]
    fn scaling_block_derives_speedup_and_efficiency() {
        let mut r = BenchRunner::named("scaled", 1);
        r.host_scaling(&[
            ScalingPoint { threads: 1, ops: 1_000, elapsed_ns: 1_000_000 },
            ScalingPoint { threads: 2, ops: 2_000, elapsed_ns: 1_250_000 },
            ScalingPoint { threads: 4, ops: 4_000, elapsed_ns: 1_600_000 },
        ]);
        let doc = r.report();
        let scaling = doc.get("host").unwrap().get("scaling").unwrap().as_arr().unwrap();
        assert_eq!(scaling.len(), 3);
        assert_eq!(scaling[0].get("threads").unwrap().as_f64(), Some(1.0));
        assert_eq!(scaling[0].get("ops_per_sec").unwrap().as_f64(), Some(1e6));
        assert_eq!(scaling[0].get("speedup_vs_1t").unwrap().as_f64(), Some(1.0));
        assert_eq!(scaling[0].get("efficiency").unwrap().as_f64(), Some(1.0));
        // 2 threads: 1.6x speedup -> 80% efficiency.
        assert_eq!(scaling[1].get("speedup_vs_1t").unwrap().as_f64(), Some(1.6));
        assert!((scaling[1].get("efficiency").unwrap().as_f64().unwrap() - 0.8).abs() < 1e-9);
        // 4 threads: 2.5x speedup -> 62.5% efficiency.
        assert_eq!(scaling[2].get("speedup_vs_1t").unwrap().as_f64(), Some(2.5));
        assert!((scaling[2].get("efficiency").unwrap().as_f64().unwrap() - 0.625).abs() < 1e-9);
    }

    #[test]
    fn scaling_floor_travels_in_the_host_block() {
        let mut r = BenchRunner::named("floored", 1);
        r.host_scaling(&[ScalingPoint { threads: 2, ops: 2_000, elapsed_ns: 1_000_000 }]);
        r.host_scaling_floor(2, 0.6);
        let doc = r.report();
        let floor = doc.get("host").unwrap().get("scaling_floor").expect("floor recorded");
        assert_eq!(floor.get("threads").unwrap().as_f64(), Some(2.0));
        assert_eq!(floor.get("efficiency").unwrap().as_f64(), Some(0.6));
        // Absent unless explicitly set.
        let bare = BenchRunner::named("bare", 1).report();
        assert!(bare.get("host").unwrap().get("scaling_floor").is_none());
    }

    #[test]
    fn scaling_block_is_an_empty_array_when_unused() {
        let mut r = BenchRunner::named("unscaled", 1);
        r.measure("x", Unit::SimUs, || 1.0);
        let doc = r.report();
        let scaling = doc.get("host").unwrap().get("scaling").unwrap().as_arr().unwrap();
        assert!(scaling.is_empty());
    }

    #[test]
    fn report_round_trips_through_the_parser() {
        let mut r = BenchRunner::named("roundtrip", 2);
        r.measure("slope", Unit::SimUs, || 21.0);
        let text = r.report().render();
        let back = Json::parse(&text).unwrap();
        let row = &back.get("results").unwrap().as_arr().unwrap()[0];
        assert_eq!(row.get("median").unwrap().as_f64(), Some(21.0));
        assert_eq!(row.get("unit").unwrap().as_str(), Some("sim_us"));
    }
}
