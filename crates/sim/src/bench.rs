//! An in-repo bench runner reporting **simulated** time (a `criterion`
//! replacement).
//!
//! Criterion measures host wall-clock, which for this workspace answers the
//! wrong question: the system under test is a *simulator*, so wall-clock
//! numbers measure the simulator's implementation, not the mechanisms the
//! paper evaluates. Every scenario here instead returns a sample in the
//! simulator's calibrated timebase — microseconds of simulated machine time,
//! Mb/s of simulated throughput, or a CPU-load fraction — which is directly
//! comparable against the paper's Tables 1–2 and Figures 3–6.
//!
//! Each bench target builds a [`BenchRunner`], records scenarios with
//! [`BenchRunner::measure`], attaches the regenerated paper artifact (rows,
//! curves) with [`BenchRunner::artifact`], and calls
//! [`BenchRunner::finish`], which prints a summary table (median, p10, p90
//! over the iterations) and writes `BENCH_<name>.json`.
//!
//! Environment knobs:
//!
//! * `FBUF_BENCH_ITERS` — iterations per scenario (default 5);
//! * `FBUF_BENCH_DIR` — report directory (default `target/bench-reports`).
//!
//! # Examples
//!
//! ```
//! use fbuf_sim::bench::{summarize, BenchRunner, Unit};
//!
//! let s = summarize(&[3.0, 1.0, 2.0]);
//! assert_eq!((s.median, s.p10, s.p90), (2.0, 1.0, 3.0));
//!
//! let mut runner = BenchRunner::named("doctest", 3);
//! runner.measure("constant_cost", Unit::SimUs, || 21.0);
//! let report = runner.report();
//! let row = report.get("results").unwrap().as_arr().unwrap();
//! assert_eq!(row[0].get("median").unwrap().as_f64(), Some(21.0));
//! ```

use std::path::PathBuf;

use crate::hist::Histogram;
use crate::json::{Json, ToJson};
use crate::stats::StatsSnapshot;

/// The timebase of a scenario's samples. All units are *simulated*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Microseconds of simulated machine time (per page, per op, …).
    SimUs,
    /// Simulated throughput in megabits per second.
    Mbps,
    /// A dimensionless fraction (e.g. CPU load), 0–1.
    Fraction,
}

impl Unit {
    /// Stable label used in reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Unit::SimUs => "sim_us",
            Unit::Mbps => "mbps",
            Unit::Fraction => "fraction",
        }
    }
}

/// Order statistics over a scenario's samples.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    pub n: usize,
    pub median: f64,
    pub p10: f64,
    pub p90: f64,
}

/// Computes nearest-rank median/p10/p90. Panics on an empty slice.
pub fn summarize(samples: &[f64]) -> Summary {
    assert!(!samples.is_empty(), "summarize of no samples");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN samples"));
    let rank = |p: f64| sorted[(p * (sorted.len() - 1) as f64).round() as usize];
    Summary {
        n: sorted.len(),
        median: rank(0.5),
        p10: rank(0.1),
        p90: rank(0.9),
    }
}

struct Scenario {
    label: String,
    unit: Unit,
    samples: Vec<f64>,
}

/// Collects simulated-time measurements for one bench target and emits the
/// `BENCH_<name>.json` report. See the [module docs](self).
pub struct BenchRunner {
    name: String,
    iters: usize,
    scenarios: Vec<Scenario>,
    artifacts: Vec<(String, Json)>,
    counters: Option<StatsSnapshot>,
    latency: Vec<(String, Histogram)>,
}

impl BenchRunner {
    /// Creates a runner for the bench target `name`, reading
    /// `FBUF_BENCH_ITERS` (default 5) for the per-scenario iteration count.
    pub fn new(name: &str) -> BenchRunner {
        let iters = std::env::var("FBUF_BENCH_ITERS")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(5);
        BenchRunner::named(name, iters)
    }

    /// Creates a runner with an explicit iteration count (ignores the
    /// environment; used by tests and doctests).
    pub fn named(name: &str, iters: usize) -> BenchRunner {
        BenchRunner {
            name: name.to_string(),
            iters,
            scenarios: Vec::new(),
            artifacts: Vec::new(),
            counters: None,
            latency: Vec::new(),
        }
    }

    /// Iterations each scenario runs.
    pub fn iters(&self) -> usize {
        self.iters
    }

    /// Runs `f` for this runner's iteration count, recording one simulated
    /// sample per call under `label`.
    pub fn measure(&mut self, label: &str, unit: Unit, mut f: impl FnMut() -> f64) {
        let samples = (0..self.iters).map(|_| f()).collect();
        self.scenarios.push(Scenario {
            label: label.to_string(),
            unit,
            samples,
        });
    }

    /// Attaches a regenerated paper artifact (table rows, figure curves) to
    /// the JSON report under `artifacts.<key>`.
    pub fn artifact(&mut self, key: &str, value: Json) {
        self.artifacts.push((key.to_string(), value));
    }

    /// Attaches the operation-counter delta of a representative workload
    /// (a [`StatsSnapshot::delta`] over the measured section) to the
    /// report's `counters` object. Repeated calls accumulate so a target
    /// with several workloads reports their sum.
    pub fn counters(&mut self, delta: &StatsSnapshot) {
        self.counters = Some(match &self.counters {
            None => delta.clone(),
            Some(acc) => acc.plus(delta),
        });
    }

    /// Attaches a latency percentile block (p50/p90/p99 and friends, see
    /// [`Histogram`]'s `ToJson`) under `latency` with the given label.
    /// Empty histograms are skipped — a percentile over nothing is noise.
    pub fn latency(&mut self, label: &str, hist: &Histogram) {
        if !hist.is_empty() {
            self.latency.push((label.to_string(), hist.clone()));
        }
    }

    /// The full report as a JSON value (the exact document `finish` writes).
    pub fn report(&self) -> Json {
        let results: Vec<Json> = self
            .scenarios
            .iter()
            .map(|s| {
                let sum = summarize(&s.samples);
                Json::obj(vec![
                    ("label", s.label.to_json()),
                    ("unit", s.unit.label().to_json()),
                    ("n", sum.n.to_json()),
                    ("median", sum.median.to_json()),
                    ("p10", sum.p10.to_json()),
                    ("p90", sum.p90.to_json()),
                    ("samples", s.samples.to_json()),
                ])
            })
            .collect();
        let latency: Vec<Json> = self
            .latency
            .iter()
            .map(|(label, h)| {
                let mut fields = vec![("label".to_string(), label.to_json())];
                if let Json::Obj(hist_fields) = h.to_json() {
                    fields.extend(hist_fields);
                }
                Json::Obj(fields)
            })
            .collect();
        Json::obj(vec![
            ("bench", self.name.to_json()),
            ("timebase", "simulated".to_json()),
            ("iters", self.iters.to_json()),
            ("results", Json::Arr(results)),
            (
                "counters",
                self.counters
                    .as_ref()
                    .map(|c| c.to_json())
                    .unwrap_or(Json::obj(vec![])),
            ),
            ("latency", Json::Arr(latency)),
            (
                "artifacts",
                Json::Obj(self.artifacts.iter().map(|(k, v)| (k.clone(), v.clone())).collect()),
            ),
        ])
    }

    /// Prints the summary table, writes `BENCH_<name>.json` into
    /// `FBUF_BENCH_DIR` (default `target/bench-reports`), and returns the
    /// report path.
    pub fn finish(self) -> std::io::Result<PathBuf> {
        println!("\n== bench {} (simulated time) ==", self.name);
        println!(
            "{:<36} {:>9} {:>12} {:>12} {:>12}",
            "scenario", "unit", "median", "p10", "p90"
        );
        for s in &self.scenarios {
            let sum = summarize(&s.samples);
            println!(
                "{:<36} {:>9} {:>12.2} {:>12.2} {:>12.2}",
                s.label,
                s.unit.label(),
                sum.median,
                sum.p10,
                sum.p90
            );
        }
        let dir = std::env::var("FBUF_BENCH_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("target/bench-reports"));
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.report().render())?;
        println!("wrote {}", path.display());
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_order_statistics() {
        let s = summarize(&[5.0, 1.0, 4.0, 2.0, 3.0]);
        assert_eq!(s.n, 5);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.p10, 1.0);
        assert_eq!(s.p90, 5.0);
        let one = summarize(&[7.5]);
        assert_eq!((one.median, one.p10, one.p90), (7.5, 7.5, 7.5));
    }

    #[test]
    fn report_schema_has_expected_fields() {
        let mut r = BenchRunner::named("schema_check", 4);
        let mut x = 0.0;
        r.measure("ramp", Unit::Mbps, || {
            x += 10.0;
            x
        });
        r.artifact("rows", Json::Arr(vec![Json::obj(vec![("a", 1u64.to_json())])]));
        let doc = r.report();
        assert_eq!(doc.get("bench").unwrap().as_str(), Some("schema_check"));
        assert_eq!(doc.get("timebase").unwrap().as_str(), Some("simulated"));
        let results = doc.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 1);
        let row = &results[0];
        assert_eq!(row.get("label").unwrap().as_str(), Some("ramp"));
        assert_eq!(row.get("unit").unwrap().as_str(), Some("mbps"));
        assert_eq!(row.get("n").unwrap().as_f64(), Some(4.0));
        assert_eq!(row.get("median").unwrap().as_f64(), Some(30.0));
        assert_eq!(row.get("p10").unwrap().as_f64(), Some(10.0));
        assert_eq!(row.get("p90").unwrap().as_f64(), Some(40.0));
        assert!(doc.get("artifacts").unwrap().get("rows").is_some());
    }

    #[test]
    fn report_carries_counters_and_latency_blocks() {
        use crate::stats::Stats;
        let mut r = BenchRunner::named("observed", 1);
        r.measure("x", Unit::SimUs, || 1.0);
        // Counter delta over a fake measured section.
        let s = Stats::new();
        let before = s.snapshot();
        s.inc_fbuf_cache_hits();
        s.inc_fbuf_cache_hits();
        r.counters(&s.snapshot().delta(&before));
        // Accumulation across workloads.
        let mark = s.snapshot();
        s.inc_pdus_sent();
        r.counters(&s.snapshot().delta(&mark));
        let mut h = Histogram::new();
        h.record(5_000);
        h.record(6_000);
        r.latency("transfer", &h);
        r.latency("empty", &Histogram::new()); // skipped
        let doc = r.report();
        let counters = doc.get("counters").expect("counters object");
        assert!(counters.get("fbuf_cache_hits").unwrap().as_f64().unwrap() >= 2.0);
        let lat = doc.get("latency").unwrap().as_arr().unwrap();
        assert_eq!(lat.len(), 1, "empty histogram skipped");
        assert_eq!(lat[0].get("label").unwrap().as_str(), Some("transfer"));
        assert!(lat[0].get("p50_ns").unwrap().as_f64().unwrap() >= 5_000.0);
        assert!(lat[0].get("p99_ns").is_some());
    }

    #[test]
    fn counters_and_latency_keys_always_present() {
        let mut r = BenchRunner::named("bare", 1);
        r.measure("x", Unit::SimUs, || 1.0);
        let doc = r.report();
        assert!(doc.get("counters").is_some(), "counters key is stable");
        assert_eq!(doc.get("latency").unwrap().as_arr().unwrap().len(), 0);
    }

    #[test]
    fn report_round_trips_through_the_parser() {
        let mut r = BenchRunner::named("roundtrip", 2);
        r.measure("slope", Unit::SimUs, || 21.0);
        let text = r.report().render();
        let back = Json::parse(&text).unwrap();
        let row = &back.get("results").unwrap().as_arr().unwrap()[0];
        assert_eq!(row.get("median").unwrap().as_f64(), Some(21.0));
        assert_eq!(row.get("unit").unwrap().as_str(), Some("sim_us"));
    }
}
