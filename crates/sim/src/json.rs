//! A minimal JSON value, writer, and parser (in-repo `serde` replacement).
//!
//! The bench harness emits machine-readable `BENCH_*.json` reports. The
//! schema is flat and small, so instead of a serialization framework the
//! workspace carries this ~150-line module: a [`Json`] value type with a
//! compact renderer, a [`ToJson`] conversion trait for the report row
//! structs, and a recursive-descent [`Json::parse`] used by tests to check
//! that what was written reads back field-for-field.
//!
//! Numbers are `f64` rendered via Rust's shortest-round-trip `Display`, so
//! parse(render(x)) is exact for every finite value; NaN and infinities
//! render as `null` (JSON has no spelling for them).
//!
//! # Examples
//!
//! ```
//! use fbuf_sim::json::{Json, ToJson};
//!
//! let report = Json::obj(vec![
//!     ("bench", "table1".to_json()),
//!     ("median_us", 3.0.to_json()),
//! ]);
//! let text = report.render();
//! assert_eq!(text, r#"{"bench":"table1","median_us":3}"#);
//! let back = Json::parse(&text).unwrap();
//! assert_eq!(back.get("median_us").unwrap().as_f64(), Some(3.0));
//! ```

/// A JSON value. Object keys keep insertion order (reports stay diffable).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}
impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}
impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}
impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}
impl ToJson for u32 {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}
impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}
impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}
impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}
impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}
impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object field lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Renders compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if !v.is_finite() {
                    out.push_str("null");
                } else if *v == v.trunc() && v.abs() < 9e15 {
                    out.push_str(&format!("{}", *v as i64));
                } else {
                    out.push_str(&format!("{v}"));
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (strict enough for this workspace's reports:
    /// no comments, no trailing commas; `\uXXXX` escapes supported).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes: Vec<char> = text.chars().collect();
        let mut p = Parser { s: &bytes, i: 0 };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.i != p.s.len() {
            return Err(format!("trailing input at char {}", p.i));
        }
        Ok(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    s: &'a [char],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: char) -> Result<(), String> {
        if self.i < self.s.len() && self.s[self.i] == c {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{c}' at char {}", self.i))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        for c in word.chars() {
            self.eat(c)?;
        }
        Ok(v)
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.s.get(self.i) {
            None => Err("unexpected end of input".into()),
            Some('n') => self.lit("null", Json::Null),
            Some('t') => self.lit("true", Json::Bool(true)),
            Some('f') => self.lit("false", Json::Bool(false)),
            Some('"') => self.string().map(Json::Str),
            Some('[') => {
                self.i += 1;
                let mut items = Vec::new();
                self.ws();
                if self.s.get(self.i) == Some(&']') {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.ws();
                    items.push(self.value()?);
                    self.ws();
                    if self.s.get(self.i) == Some(&',') {
                        self.i += 1;
                    } else {
                        self.eat(']')?;
                        return Ok(Json::Arr(items));
                    }
                }
            }
            Some('{') => {
                self.i += 1;
                let mut pairs = Vec::new();
                self.ws();
                if self.s.get(self.i) == Some(&'}') {
                    self.i += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.ws();
                    let k = self.string()?;
                    self.ws();
                    self.eat(':')?;
                    self.ws();
                    pairs.push((k, self.value()?));
                    self.ws();
                    if self.s.get(self.i) == Some(&',') {
                        self.i += 1;
                    } else {
                        self.eat('}')?;
                        return Ok(Json::Obj(pairs));
                    }
                }
            }
            Some(_) => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat('"')?;
        let mut out = String::new();
        loop {
            let c = *self.s.get(self.i).ok_or("unterminated string")?;
            self.i += 1;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let e = *self.s.get(self.i).ok_or("unterminated escape")?;
                    self.i += 1;
                    match e {
                        '"' | '\\' | '/' => out.push(e),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'u' => {
                            if self.i + 4 > self.s.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex: String = self.s[self.i..self.i + 4].iter().collect();
                            self.i += 4;
                            let code = u32::from_str_radix(&hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex}"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{other}")),
                    }
                }
                c => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while self
            .s
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || "+-.eE".contains(*c))
        {
            self.i += 1;
        }
        let text: String = self.s[start..self.i].iter().collect();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at char {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compactly() {
        let v = Json::obj(vec![
            ("a", 1.5.to_json()),
            ("b", vec![1u64, 2, 3].to_json()),
            ("c", Json::Null),
            ("d", true.to_json()),
        ]);
        assert_eq!(v.render(), r#"{"a":1.5,"b":[1,2,3],"c":null,"d":true}"#);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(285.0).render(), "285");
        assert_eq!(Json::Num(3.25).render(), "3.25");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(
            Json::Str("a\"b\\c\nd".into()).render(),
            r#""a\"b\\c\nd""#
        );
    }

    #[test]
    fn round_trips_through_parse() {
        let v = Json::obj(vec![
            ("bench", "fig5".to_json()),
            ("mbps", 284.7.to_json()),
            (
                "rows",
                Json::Arr(vec![Json::obj(vec![
                    ("label", "user-user".to_json()),
                    ("p10", 249.6.to_json()),
                ])]),
            ),
        ]);
        let back = Json::parse(&v.render()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"k\" : [ 1 , \"a\\u0041\" , null ] } ").unwrap();
        let arr = v.get("k").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_str(), Some("aA"));
        assert_eq!(arr[2], Json::Null);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
    }
}
